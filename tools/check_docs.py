#!/usr/bin/env python3
"""Docs gate: internal links and architecture coverage.

Checks, over README.md and every docs/*.md:

  * every relative markdown link resolves to an existing file (or
    directory), and every `#anchor` — standalone or after a path — matches
    a GitHub-style heading slug in the target document;
  * every direct subdirectory of src/ is mentioned in docs/architecture.md
    (the layer map must not silently fall behind the tree);
  * every layer-defining header (LAYER_HEADERS below) exists and is
    mentioned by name in docs/architecture.md — adding a subsystem without
    documenting it fails the gate.

External links (http/https/mailto) are not fetched. Exits nonzero with a
list of every violation.

Usage:  check_docs.py [REPO_ROOT]
"""

import re
import sys
from pathlib import Path

# Headers that define an execution subsystem or a public layer boundary.
# architecture.md must name each one (by filename) so the layer story keeps
# pace with the code.
LAYER_HEADERS = [
    "src/common/thread_pool.hpp",
    "src/gpusim/vec.hpp",
    "src/gpusim/warp.hpp",
    "src/gpusim/launch.hpp",
    "src/gpusim/stream.hpp",
    "src/gpusim/persistent.hpp",
    "src/gpusim/device.hpp",
    "src/core/iterate.hpp",
    "src/core/iterate_persistent.hpp",
    "src/core/chain.hpp",
    "src/core/shard.hpp",
    "src/core/config.hpp",
    "src/core/faultinject.hpp",
    "src/core/job.hpp",
    "src/core/autotune.hpp",
    "src/core/server.hpp",
    "src/perfmodel/latency_model.hpp",
]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def heading_slugs(text):
    """GitHub-style anchor slugs of every heading in a markdown document."""
    slugs = set()
    seen = {}
    for m in HEADING_RE.finditer(CODE_FENCE_RE.sub("", text)):
        title = re.sub(r"`([^`]*)`", r"\1", m.group(1).strip())
        title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)  # strip links
        slug = re.sub(r"[^\w\- ]", "", title.lower(), flags=re.UNICODE)
        slug = slug.replace(" ", "-")
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(doc, root, errors):
    text = doc.read_text(encoding="utf-8")
    slug_cache = {doc: heading_slugs(text)}
    for m in LINK_RE.finditer(CODE_FENCE_RE.sub("", text)):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append(f"{doc}: link escapes the repo: {target}")
                continue
            if not resolved.exists():
                errors.append(f"{doc}: broken link: {target}")
                continue
        else:
            resolved = doc
        if anchor:
            if resolved.is_dir() or resolved.suffix.lower() not in (".md", ".markdown"):
                errors.append(f"{doc}: anchor on non-markdown target: {target}")
                continue
            if resolved not in slug_cache:
                slug_cache[resolved] = heading_slugs(resolved.read_text(encoding="utf-8"))
            if anchor.lower() not in slug_cache[resolved]:
                errors.append(f"{doc}: missing anchor: {target}")


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    docs = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    errors = []
    missing = [str(d) for d in docs if not d.exists()]
    if missing:
        print("missing documents: " + ", ".join(missing))
        return 1

    for doc in docs:
        check_links(doc, root, errors)

    arch = (root / "docs" / "architecture.md").read_text(encoding="utf-8")
    for sub in sorted(p for p in (root / "src").iterdir() if p.is_dir()):
        name = sub.name
        if not re.search(rf"(src/)?{re.escape(name)}/", arch):
            errors.append(f"docs/architecture.md: src/{name}/ is not mentioned")

    for header in LAYER_HEADERS:
        if not (root / header).exists():
            errors.append(f"LAYER_HEADERS: {header} does not exist (stale list?)")
            continue
        # Word-bounded: "persistent.hpp" must not be satisfied by a mention
        # of "iterate_persistent.hpp".
        name = re.escape(Path(header).name)
        if not re.search(rf"(?<![\w_]){name}", arch):
            errors.append(f"docs/architecture.md: {header} is not mentioned")

    checked = len(docs)
    if errors:
        print(f"checked {checked} documents — {len(errors)} problem(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"checked {checked} documents — all internal links resolve, "
          f"architecture.md covers every src/ subdirectory")
    return 0


if __name__ == "__main__":
    sys.exit(main())
