#!/usr/bin/env python3
"""Bench-regression gate for bench_sim_throughput.

Compares a freshly produced sim-throughput JSON against the committed
baseline (BENCH_sim_throughput.json) and fails when any kernel's
blocks_per_sec regressed by more than the allowed fraction. Kernels present
in only one of the two files (new scenarios, retired ones) are reported but
never fail the gate; neither do improvements.

Usage:
  check_bench_regression.py BASELINE.json FRESH.json [--max-regression 0.30]
"""

import argparse
import json
import sys


def load_kernels(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return {k["name"]: k for k in doc.get("kernels", [])}, doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly measured JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop in blocks_per_sec (default 0.30)",
    )
    parser.add_argument(
        "--metric", default="blocks_per_sec", help="kernel field to compare"
    )
    args = parser.parse_args()

    base, base_doc = load_kernels(args.baseline)
    fresh, fresh_doc = load_kernels(args.fresh)
    print(
        f"baseline host_threads={base_doc.get('host_threads')}  "
        f"fresh host_threads={fresh_doc.get('host_threads')}"
    )

    failures = []
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            print(f"  {name:28s} NEW (no baseline) — skipped")
            continue
        if name not in fresh:
            print(f"  {name:28s} MISSING from fresh run — skipped")
            continue
        b = float(base[name][args.metric])
        f = float(fresh[name][args.metric])
        if b <= 0:
            print(f"  {name:28s} baseline {args.metric} <= 0 — skipped")
            continue
        change = f / b - 1.0
        verdict = "ok"
        if change < -args.max_regression:
            verdict = "REGRESSION"
            failures.append((name, b, f, change))
        print(
            f"  {name:28s} {args.metric}: {b:12.1f} -> {f:12.1f}  "
            f"({change:+7.1%})  {verdict}"
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} kernel(s) regressed more than "
            f"{args.max_regression:.0%} in {args.metric}:"
        )
        for name, b, f, change in failures:
            print(f"  {name}: {b:.1f} -> {f:.1f} ({change:+.1%})")
        return 1
    print(f"\nOK: no kernel regressed more than {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
