#!/usr/bin/env python3
"""Bench-regression gate for bench_sim_throughput.

Compares a freshly produced sim-throughput JSON against the committed
baseline (BENCH_sim_throughput.json) and fails when

  * any kernel's blocks_per_sec regressed by more than the allowed fraction
    (the global --max-regression, or a per-kernel --threshold override), or
  * a kernel present in the committed baseline is missing from the fresh run
    (a silently dropped scenario must not pass the gate), or
  * a kernel named with --require is absent from either file — rows the CI
    gate depends on (autotuned_vs_default) must exist before they can be
    compared; without this, a never-added row reads as "NEW — skipped".

Kernels only present in the fresh run (new scenarios) are reported but never
fail; neither do improvements. Retiring a kernel intentionally requires
--allow-missing NAME (and, eventually, removing it from the baseline).

Usage:
  check_bench_regression.py BASELINE.json FRESH.json \
      [--max-regression 0.30] [--threshold NAME=FRAC]... \
      [--allow-missing NAME]... [--require NAME]...
"""

import argparse
import json
import sys


def load_kernels(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return {k["name"]: k for k in doc.get("kernels", [])}, doc


def parse_threshold(spec):
    name, sep, frac = spec.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected NAME=FRACTION, got {spec!r}"
        )
    return name, float(frac)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly measured JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="default maximum tolerated fractional drop in the metric "
        "(default 0.30)",
    )
    parser.add_argument(
        "--threshold",
        type=parse_threshold,
        action="append",
        default=[],
        metavar="NAME=FRAC",
        help="per-kernel override of --max-regression (repeatable), e.g. "
        "--threshold pipeline_blur_sobel_x4=0.50 for scenarios whose "
        "throughput depends on runner core count",
    )
    parser.add_argument(
        "--allow-missing",
        action="append",
        default=[],
        metavar="NAME",
        help="baseline kernel allowed to be absent from the fresh run "
        "(repeatable; for intentionally retired scenarios)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="kernel that MUST be present in both the baseline and the fresh "
        "run (repeatable). Closes the 'NEW — skipped' gap: a scenario the "
        "gate is supposed to watch (e.g. autotuned_vs_default) cannot "
        "silently drop out of either file.",
    )
    parser.add_argument(
        "--metric", default="blocks_per_sec", help="kernel field to compare"
    )
    parser.add_argument(
        "--direction",
        choices=("higher", "lower"),
        default="higher",
        help="whether a higher or a lower metric is better (default higher); "
        "with 'lower' a regression is the metric *growing* past the limit, "
        "e.g. --metric p99_ms --direction lower for latency gates",
    )
    parser.add_argument(
        "--backend-mismatch-factor",
        type=float,
        default=2.0,
        help="multiply every regression limit by this factor when the two "
        "JSONs were produced by different SIMD lane backends (the committed "
        "baseline may carry AVX-512 wins a narrower runner cannot match); "
        "set to 1.0 to compare strictly (default 2.0)",
    )
    args = parser.parse_args()
    thresholds = dict(args.threshold)

    base, base_doc = load_kernels(args.baseline)
    fresh, fresh_doc = load_kernels(args.fresh)
    base_backend = base_doc.get("simd_backend", "?")
    fresh_backend = fresh_doc.get("simd_backend", "?")
    print(
        f"baseline host_threads={base_doc.get('host_threads')} "
        f"backend={base_backend}  "
        f"fresh host_threads={fresh_doc.get('host_threads')} "
        f"backend={fresh_backend}"
    )
    limit_scale = 1.0
    if base_backend != fresh_backend:
        limit_scale = args.backend_mismatch_factor
        print(
            f"SIMD backend mismatch ({base_backend} baseline vs {fresh_backend} "
            f"fresh): regression limits scaled x{limit_scale:g}"
        )

    failures = []
    missing = []
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            print(f"  {name:28s} NEW (no baseline) — skipped")
            continue
        if name not in fresh:
            if name in args.allow_missing:
                print(f"  {name:28s} MISSING from fresh run — allowed")
            else:
                print(f"  {name:28s} MISSING from fresh run — FAIL")
                missing.append(name)
            continue
        if args.metric not in base[name] or args.metric not in fresh[name]:
            # Rows in a mixed file don't all carry every metric (e.g. only
            # the open-loop server row has p99_ms) — not a failure.
            print(f"  {name:28s} no {args.metric} — skipped")
            continue
        b = float(base[name][args.metric])
        f = float(fresh[name][args.metric])
        if b <= 0:
            print(f"  {name:28s} baseline {args.metric} <= 0 — skipped")
            continue
        # Cap the scaled limit so a kernel whose per-kernel threshold is
        # already loose (e.g. the core-count-sensitive pipeline scenario)
        # cannot end up effectively ungated under a backend mismatch.
        limit = min(0.80, thresholds.get(name, args.max_regression) * limit_scale)
        change = f / b - 1.0
        regressed = change > limit if args.direction == "lower" else change < -limit
        verdict = "ok"
        if regressed:
            verdict = "REGRESSION"
            failures.append((name, b, f, change, limit))
        limit_sign = "+" if args.direction == "lower" else "-"
        print(
            f"  {name:28s} {args.metric}: {b:12.1f} -> {f:12.1f}  "
            f"({change:+7.1%}, limit {limit_sign}{limit:.0%})  {verdict}"
        )

    required_absent = []
    for name in args.require:
        where = []
        if name not in base:
            where.append("baseline")
        if name not in fresh:
            where.append("fresh run")
        if where:
            required_absent.append((name, " and ".join(where)))

    ok = True
    if required_absent:
        ok = False
        print(f"\nFAIL: {len(required_absent)} required kernel(s) absent:")
        for name, where in required_absent:
            print(f"  {name}: missing from the {where}")
    if missing:
        ok = False
        print(
            f"\nFAIL: {len(missing)} baseline kernel(s) missing from the fresh "
            f"run: {', '.join(missing)}"
        )
    if failures:
        ok = False
        print(f"\nFAIL: {len(failures)} kernel(s) regressed in {args.metric}:")
        for name, b, f, change, limit in failures:
            print(f"  {name}: {b:.1f} -> {f:.1f} ({change:+.1%}, limit {limit:.0%})")
    if not ok:
        return 1
    print(f"\nOK: all baseline kernels present, none past their regression limit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
