// The execution service: work-stealing pool, launch queue, streams, events.
//
// Pins the contracts the async refactor relies on:
//  * functional results are bit-identical across pool sizes (1, 4, and the
//    machine's hardware_concurrency) for scan, conv2d and the temporal
//    stencil — block scheduling must never leak into results;
//  * async launches match their synchronous counterparts bit for bit;
//  * stream FIFO order and cross-stream event dependencies are honored
//    under stress (interleaved streams sharing an event-ordered buffer);
//  * the pool parallel loops behave (caller participation, nesting, empty
//    and tiny ranges).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/grid.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/conv2d.hpp"
#include "core/iterate.hpp"
#include "core/scan.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/stream.hpp"
#include "test_util.hpp"

namespace {

using namespace ssam;
using ssam::testing::PoolSizeGuard;

// --------------------------------------------------------------- pool basics

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(hardware_concurrency(), 1);
  EXPECT_GE(ThreadPool::global().size(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  PoolSizeGuard guard;
  for (int workers : {1, 4}) {
    ThreadPool::reset_global(workers);
    std::vector<int> hits(10000, 0);
    parallel_for(static_cast<std::int64_t>(hits.size()),
                 [&](std::int64_t i) { hits[static_cast<std::size_t>(i)] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10000) << workers;
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
  }
}

TEST(ThreadPoolTest, ParallelForPooledMakesOneStatePerParticipant) {
  PoolSizeGuard guard;
  ThreadPool::reset_global(4);
  std::atomic<int> states{0};
  std::vector<int> hits(4096, 0);
  parallel_for_pooled(
      static_cast<std::int64_t>(hits.size()),
      [&] {
        states.fetch_add(1);
        return 0;
      },
      [&](std::int64_t i, int&) { hits[static_cast<std::size_t>(i)] += 1; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
  // Caller + at most one helper per worker may participate.
  EXPECT_GE(states.load(), 1);
  EXPECT_LE(states.load(), ThreadPool::global().size() + 1);
}

TEST(ThreadPoolTest, EmptyAndTinyRangesWork) {
  parallel_for(0, [&](std::int64_t) { FAIL() << "no indices expected"; });
  int hit = 0;
  parallel_for(1, [&](std::int64_t) { ++hit; });
  EXPECT_EQ(hit, 1);
}

TEST(ThreadPoolTest, NestedParallelLoopsDoNotDeadlock) {
  PoolSizeGuard guard;
  ThreadPool::reset_global(2);
  std::atomic<long long> total{0};
  parallel_for(8, [&](std::int64_t) {
    parallel_for(64, [&](std::int64_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

// --------------------------------------- determinism across pool sizes

/// Runs `run(out)` at several pool sizes and requires bit-identical output.
template <typename Run>
void expect_pool_size_invariant(Run&& run, const char* what) {
  PoolSizeGuard guard;
  ThreadPool::reset_global(1);
  const std::vector<float> reference = run();
  for (int workers : {4, hardware_concurrency()}) {
    ThreadPool::reset_global(workers);
    const std::vector<float> got = run();
    ASSERT_EQ(got.size(), reference.size());
    EXPECT_EQ(0, std::memcmp(got.data(), reference.data(),
                             got.size() * sizeof(float)))
        << what << " differs at pool size " << workers;
  }
}

TEST(PoolDeterminism, ScanBitIdenticalAcrossPoolSizes) {
  std::vector<float> in(1 << 18);
  SplitMix64 rng(7);
  for (auto& v : in) v = static_cast<float>(rng.next_in(-1.0, 1.0));
  expect_pool_size_invariant(
      [&] {
        std::vector<float> out(in.size());
        (void)core::scan_inclusive<float>(sim::tesla_v100(), in, out);
        return out;
      },
      "scan");
}

TEST(PoolDeterminism, Conv2dBitIdenticalAcrossPoolSizes) {
  Grid2D<float> in(301, 177);
  fill_random(in, 11);
  const std::vector<float> weights(5 * 5, 0.04f);
  expect_pool_size_invariant(
      [&] {
        Grid2D<float> out(in.width(), in.height());
        (void)core::conv2d_ssam<float>(sim::tesla_v100(), in.cview(), weights, 5, 5,
                                       out.view());
        return std::vector<float>(out.data(), out.data() + out.size());
      },
      "conv2d");
}

TEST(PoolDeterminism, TemporalStencilBitIdenticalAcrossPoolSizes) {
  Grid2D<float> in(257, 129);
  fill_random(in, 13);
  const core::StencilShape<float> shape = core::star2d<float>(1);
  expect_pool_size_invariant(
      [&] {
        Grid2D<float> out(in.width(), in.height());
        core::TemporalSsamOptions opt;
        opt.t = 3;
        (void)core::stencil2d_ssam_temporal<float>(sim::tesla_v100(), in.cview(), shape,
                                                   out.view(), opt);
        return std::vector<float>(out.data(), out.data() + out.size());
      },
      "temporal stencil");
}

// ------------------------------------------------------- streams and events

TEST(StreamTest, AsyncConv2dMatchesSync) {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(333, 190);
  fill_random(in, 17);
  const std::vector<float> weights(3 * 3, 0.11f);
  Grid2D<float> sync_out(in.width(), in.height());
  (void)core::conv2d_ssam<float>(arch, in.cview(), weights, 3, 3, sync_out.view());

  Grid2D<float> async_out(in.width(), in.height());
  sim::Stream stream;
  sim::Event done = core::conv2d_ssam_async<float>(stream, arch, in.cview(), weights, 3,
                                                   3, async_out.view());
  done.wait();
  EXPECT_EQ(0, std::memcmp(sync_out.data(), async_out.data(),
                           static_cast<std::size_t>(sync_out.size()) * sizeof(float)));
}

TEST(StreamTest, AsyncScanMatchesSyncIncludingRecursivePasses) {
  const auto& arch = sim::tesla_v100();
  std::vector<float> in(1 << 17);  // > 1 block and > 1 recursion level
  SplitMix64 rng(23);
  for (auto& v : in) v = static_cast<float>(rng.next_in(-1.0, 1.0));
  std::vector<float> sync_out(in.size());
  (void)core::scan_inclusive<float>(arch, in, sync_out);

  std::vector<float> async_out(in.size());
  sim::Stream stream;
  core::scan_inclusive_async<float>(stream, arch, in, async_out);
  stream.synchronize();
  EXPECT_EQ(0, std::memcmp(sync_out.data(), async_out.data(),
                           sync_out.size() * sizeof(float)));
}

TEST(StreamTest, FifoOrderChainsDependentKernels) {
  const auto& arch = sim::tesla_v100();
  const int steps = 6;
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> a(193, 97), b(193, 97);
  fill_random(a, 29);
  Grid2D<float> ref_a = a, ref_b = b;
  core::iterate_stencil2d<float>(arch, ref_a, ref_b, shape, steps);

  sim::Stream stream;
  core::iterate_stencil2d_async<float>(stream, arch, a, b, shape, steps);
  stream.synchronize();
  EXPECT_EQ(0, std::memcmp(a.data(), ref_a.data(),
                           static_cast<std::size_t>(a.size()) * sizeof(float)));
}

TEST(StreamTest, HostOpsRunInStreamOrder) {
  sim::Stream stream;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    stream.host([&order, i] { order.push_back(i); });
  }
  stream.synchronize();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(StreamTest, DefaultEventIsSignalled) {
  sim::Event ev;
  EXPECT_TRUE(ev.ready());
  ev.wait();  // must not block
  sim::Stream stream;
  stream.wait(ev);  // must not wedge the stream
  int ran = 0;
  stream.host([&ran] { ran = 1; });
  stream.synchronize();
  EXPECT_EQ(ran, 1);
}

TEST(StreamTest, CrossStreamEventOrdersProducerConsumer) {
  PoolSizeGuard guard;
  for (int workers : {1, 4}) {  // dependency chains must progress even 1-wide
    ThreadPool::reset_global(workers);
    const auto& arch = sim::tesla_v100();
    Grid2D<float> in(128, 64), mid(128, 64), out(128, 64);
    fill_random(in, 31);
    const std::vector<float> w1(3 * 3, 0.2f);
    const std::vector<float> w2(5 * 5, 0.05f);

    Grid2D<float> ref_mid(128, 64), ref_out(128, 64);
    (void)core::conv2d_ssam<float>(arch, in.cview(), w1, 3, 3, ref_mid.view());
    (void)core::conv2d_ssam<float>(arch, ref_mid.cview(), w2, 5, 5, ref_out.view());

    sim::Stream producer, consumer;
    (void)core::conv2d_ssam_async<float>(producer, arch, in.cview(), w1, 3, 3,
                                         mid.view());
    const sim::Event ready = producer.record();
    consumer.wait(ready);
    (void)core::conv2d_ssam_async<float>(consumer, arch, mid.cview(), w2, 5, 5,
                                         out.view());
    consumer.synchronize();
    producer.synchronize();
    EXPECT_EQ(0, std::memcmp(out.data(), ref_out.data(),
                             static_cast<std::size_t>(out.size()) * sizeof(float)))
        << "pool size " << workers;
  }
}

TEST(StreamTest, InterleavedStreamStressWithSharedEvents) {
  // Two streams ping-pong a buffer chain through shared events for many
  // rounds of small (batched) grids; any ordering violation corrupts the
  // final field. Run at 1 and 4 workers to cover the parked-dependency and
  // the overlapping schedule.
  PoolSizeGuard guard;
  for (int workers : {1, 4}) {
    ThreadPool::reset_global(workers);
    const auto& arch = sim::tesla_v100();
    const int rounds = 12;
    const core::SystolicPlan<float> plan = core::build_plan(core::star2d<float>(1).taps);
    Grid2D<float> x(96, 48), y(96, 48);
    fill_random(x, 37);
    Grid2D<float> ref_x = x, ref_y = y;
    for (int r = 0; r < 2 * rounds; ++r) {
      (void)core::stencil2d_ssam<float>(arch, ref_x.cview(), plan, ref_y.view());
      std::swap(ref_x, ref_y);
    }

    sim::Stream even, odd;
    sim::Event prev;
    for (int r = 0; r < rounds; ++r) {
      even.wait(prev);
      (void)core::stencil2d_ssam_async<float>(even, arch, x.cview(), plan, y.view());
      const sim::Event e1 = even.record();
      odd.wait(e1);
      (void)core::stencil2d_ssam_async<float>(odd, arch, y.cview(), plan, x.view());
      prev = odd.record();
    }
    prev.wait();
    even.synchronize();
    odd.synchronize();
    EXPECT_EQ(0, std::memcmp(x.data(), ref_x.data(),
                             static_cast<std::size_t>(x.size()) * sizeof(float)))
        << "pool size " << workers;
  }
}

TEST(LaunchQueueTest, TracksTrafficAndQuiesces) {
  const std::uint64_t before = sim::LaunchQueue::global().ops_enqueued();
  {
    sim::Stream stream;
    for (int i = 0; i < 10; ++i) stream.host([] {});
    stream.synchronize();
  }
  sim::LaunchQueue::global().quiesce();
  EXPECT_GE(sim::LaunchQueue::global().ops_enqueued(), before + 10);
  EXPECT_EQ(sim::LaunchQueue::global().ops_enqueued(),
            sim::LaunchQueue::global().ops_completed());
}

// ------------------------------------------- stream destruction under churn

TEST(StreamChurnTest, DestroyStreamFromOwnCompletionCallback) {
  // Server-style completion: a continuation on an op's event releases the
  // last handle to the stream. When the op finished just before on_ready
  // is attached the continuation runs here; otherwise it runs inside the
  // stream's own drain — ~Stream must not wait on work only that thread
  // can finish, and the ops queued behind the destroyed handle must still
  // run.
  PoolSizeGuard guard;
  for (int workers : {1, 4}) {
    ThreadPool::reset_global(workers);
    for (int round = 0; round < 16; ++round) {
      std::atomic<int> ran{0};
      auto stream = std::make_unique<sim::Stream>();
      const sim::Event first = stream->host([&ran] { ran.fetch_add(1); });
      (void)stream->host([&ran] { ran.fetch_add(1); });
      (void)stream->host([&ran] { ran.fetch_add(1); });
      first.on_ready([&stream] { stream.reset(); });
      sim::LaunchQueue::global().quiesce();
      EXPECT_EQ(ran.load(), 3) << "workers=" << workers << " round=" << round;
      EXPECT_EQ(stream, nullptr);
    }
  }
}

TEST(StreamChurnTest, DestroyStreamWhileParkedOnCrossStreamEvent) {
  // A consumer stream whose drain is parked on an unsignalled cross-stream
  // event is destroyed; the destructor must block until the producer
  // releases the gate and the parked op runs — never deadlock, never drop
  // the op.
  PoolSizeGuard guard;
  for (int workers : {1, 4}) {
    ThreadPool::reset_global(workers);
    for (int round = 0; round < 8; ++round) {
      sim::Stream producer;
      auto consumer = std::make_unique<sim::Stream>();
      std::atomic<bool> release{false};
      std::atomic<int> ran{0};
      (void)producer.host([&release] {
        while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
      });
      const sim::Event gate = producer.record();
      consumer->wait(gate);
      (void)consumer->host([&ran] { ran.fetch_add(1); });
      std::thread releaser([&release] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        release.store(true, std::memory_order_release);
      });
      consumer.reset();  // destroys while the drain is (likely) parked
      releaser.join();
      producer.synchronize();
      EXPECT_EQ(ran.load(), 1) << "workers=" << workers << " round=" << round;
    }
  }
}

TEST(StreamTest, ManyTinyLaunchesBatchCorrectly) {
  // 64 tiny dependent sweeps on one stream: each is below the batch
  // threshold, so the drain runs them back-to-back on one worker.
  const auto& arch = sim::tesla_v100();
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> a(64, 16), b(64, 16);
  fill_random(a, 41);
  Grid2D<float> ref_a = a, ref_b = b;
  core::iterate_stencil2d<float>(arch, ref_a, ref_b, shape, 64);

  sim::Stream stream;
  core::iterate_stencil2d_async<float>(stream, arch, a, b, shape, 64);
  stream.synchronize();
  EXPECT_EQ(0, std::memcmp(a.data(), ref_a.data(),
                           static_cast<std::size_t>(a.size()) * sizeof(float)));
}

}  // namespace
