// Backend parity suite for the explicit SIMD lane engine (gpusim/simd/).
//
// Every Vec<T> primitive must produce results bit-identical to the portable
// scalar reference (simd::ref), for every backend CMake can select — that is
// the invariant that makes the backend a pure speed knob. Comparisons are
// exact (memcmp over the lane bytes, so float comparisons are bit-pattern
// comparisons, distinguishing -0.0 and NaN payloads).
//
// The KernelGolden tests pin FNV-1a hashes of full functional-mode kernel
// outputs on deterministic inputs. The constants are the same for every
// backend and platform (unfused mad + -ffp-contract=off make the arithmetic
// exactly reproducible), so CI's forced-scalar and explicit-AVX2 jobs
// checking the same constants proves cross-backend bit identity end to end,
// not just per primitive.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "core/conv2d.hpp"
#include "core/gemm.hpp"
#include "core/scan.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/simd/simd.hpp"
#include "test_util.hpp"
#include "gpusim/vec.hpp"

namespace {

using namespace ssam;
using sim::kWarpSize;
using sim::Vec;
namespace simd = sim::simd;

// ---------------------------------------------------------------- fixtures

// Deterministic lane patterns. Floats mix ordinary magnitudes with the
// values that expose semantic drift between backends: signed zeros,
// infinities, NaN, denormals, and magnitudes that round visibly in
// mul/add chains.
std::vector<Vec<float>> float_vectors() {
  std::vector<Vec<float>> out;
  SplitMix64 rng(0x51D0u);
  for (int k = 0; k < 4; ++k) {
    Vec<float> v;
    for (int l = 0; l < kWarpSize; ++l) {
      v[l] = static_cast<float>(rng.next_in(-1e3, 1e3));
    }
    out.push_back(v);
  }
  Vec<float> specials;
  const float kSpecials[] = {0.0f,
                             -0.0f,
                             1.0f,
                             -1.0f,
                             std::numeric_limits<float>::infinity(),
                             -std::numeric_limits<float>::infinity(),
                             std::numeric_limits<float>::quiet_NaN(),
                             std::numeric_limits<float>::denorm_min(),
                             1e-41f,
                             3e38f,
                             -3e38f,
                             1.5f,
                             0.1f,
                             -0.1f,
                             1024.25f,
                             -7.75f};
  for (int l = 0; l < kWarpSize; ++l) specials[l] = kSpecials[l % 16] * (l < 16 ? 1.0f : 3.0f);
  out.push_back(specials);
  return out;
}

std::vector<Vec<std::int32_t>> int32_vectors() {
  std::vector<Vec<std::int32_t>> out;
  SplitMix64 rng(0x32171u);
  for (int k = 0; k < 4; ++k) {
    Vec<std::int32_t> v;
    for (int l = 0; l < kWarpSize; ++l) {
      v[l] = static_cast<std::int32_t>(rng.next_u64());
    }
    out.push_back(v);
  }
  Vec<std::int32_t> specials;
  const std::int32_t kSpecials[] = {0, 1, -1, 2, -2, 31, 32, -32,
                                    std::numeric_limits<std::int32_t>::max(),
                                    std::numeric_limits<std::int32_t>::min(),
                                    1000000, -1000000, 7, -7, 255, -256};
  for (int l = 0; l < kWarpSize; ++l) {
    // Wrap-safe perturbation of the second half (kSpecials holds INT_MAX).
    specials[l] = static_cast<std::int32_t>(static_cast<std::uint32_t>(kSpecials[l % 16]) +
                                            (l >= 16 ? 13u : 0u));
  }
  out.push_back(specials);
  return out;
}

std::vector<Vec<std::int64_t>> int64_vectors() {
  std::vector<Vec<std::int64_t>> out;
  SplitMix64 rng(0x64424u);
  for (int k = 0; k < 4; ++k) {
    Vec<std::int64_t> v;
    for (int l = 0; l < kWarpSize; ++l) {
      v[l] = static_cast<std::int64_t>(rng.next_u64());
    }
    out.push_back(v);
  }
  Vec<std::int64_t> ramp;  // the addressing pattern the kernels actually use
  for (int l = 0; l < kWarpSize; ++l) ramp[l] = 123456789LL + l;
  out.push_back(ramp);
  return out;
}

template <typename T>
std::vector<Vec<T>> vectors_for();
template <>
std::vector<Vec<float>> vectors_for<float>() {
  return float_vectors();
}
template <>
std::vector<Vec<std::int32_t>> vectors_for<std::int32_t>() {
  return int32_vectors();
}
template <>
std::vector<Vec<std::int64_t>> vectors_for<std::int64_t>() {
  return int64_vectors();
}

/// Exact lane comparison: bit patterns, not value equality.
template <typename T>
void expect_lanes_eq(const Vec<T>& actual, const T (&expected)[kWarpSize],
                     const char* what) {
  if (std::memcmp(actual.lane.data(), expected, sizeof(expected)) == 0) return;
  for (int l = 0; l < kWarpSize; ++l) {
    if (std::memcmp(&actual[l], &expected[l], sizeof(T)) != 0) {
      ADD_FAILURE() << what << ": lane " << l << " diverges (backend "
                    << simd::kBackendName << "): got " << actual[l] << ", reference "
                    << expected[l];
      return;
    }
  }
}

/// Scalar predicates come out as Vec<int>.
void expect_lanes_eq(const Vec<int>& actual, const int (&expected)[kWarpSize],
                     const char* what) {
  expect_lanes_eq<int>(actual, expected, what);
}

// ------------------------------------------------------- primitive parity

template <typename T>
void check_arithmetic_parity() {
  const auto vecs = vectors_for<T>();
  T expect[kWarpSize];
  int iexpect[kWarpSize];
  for (std::size_t i = 0; i < vecs.size(); ++i) {
    const Vec<T>& a = vecs[i];
    const Vec<T>& b = vecs[(i + 1) % vecs.size()];
    const Vec<T>& c = vecs[(i + 2) % vecs.size()];
    const T s = b[7];

    simd::ref::add(expect, a.data(), b.data());
    expect_lanes_eq(Vec<T>::add(a, b), expect, "add");
    simd::ref::add_s(expect, a.data(), s);
    expect_lanes_eq(Vec<T>::add(a, s), expect, "add_s");
    simd::ref::sub(expect, a.data(), b.data());
    expect_lanes_eq(Vec<T>::sub(a, b), expect, "sub");
    simd::ref::mul(expect, a.data(), b.data());
    expect_lanes_eq(Vec<T>::mul(a, b), expect, "mul");
    simd::ref::mul_s(expect, a.data(), s);
    expect_lanes_eq(Vec<T>::mul(a, s), expect, "mul_s");
    simd::ref::mad(expect, a.data(), b.data(), c.data());
    expect_lanes_eq(Vec<T>::mad(a, b, c), expect, "mad");
    simd::ref::mad_s(expect, a.data(), s, c.data());
    expect_lanes_eq(Vec<T>::mad(a, s, c), expect, "mad_s");

    for (T scale : {T{1}, T{3}}) {
      // Vec::affine routes scale == 1 through add_s; the reference is the
      // plain affine loop either way — results must agree bit-for-bit.
      simd::ref::affine(expect, a.data(), scale, s);
      expect_lanes_eq(Vec<T>::affine(a, scale, s), expect, "affine");
    }

    const T lo = std::min(b[3], c[9]);
    const T hi = std::max(b[3], c[9]);
    simd::ref::clamp(expect, a.data(), lo, hi);
    expect_lanes_eq(Vec<T>::clamp(a, lo, hi), expect, "clamp");

    simd::ref::ge_s(iexpect, a.data(), s);
    expect_lanes_eq(Vec<T>::ge(a, s), iexpect, "ge_s");
    simd::ref::lt_s(iexpect, a.data(), s);
    expect_lanes_eq(Vec<T>::lt(a, s), iexpect, "lt_s");

    Vec<int> pred;
    for (int l = 0; l < kWarpSize; ++l) pred[l] = (l * 7 + static_cast<int>(i)) % 3 - 1;
    simd::ref::select(expect, pred.data(), a.data(), b.data());
    expect_lanes_eq(Vec<T>::select(pred, a, b), expect, "select");

    simd::ref::splat(expect, s);
    expect_lanes_eq(Vec<T>::splat(s), expect, "splat");
  }
}

template <typename T>
void check_shuffle_parity() {
  const auto vecs = vectors_for<T>();
  T expect[kWarpSize];
  for (const Vec<T>& a : vecs) {
    // shfl_up / shfl_down: delta 0 (identity), 1 (the systolic shift), the
    // Kogge-Stone powers, non-powers, 31, and past-the-warp values; the
    // clamp lanes (low delta lanes for up, high for down) are covered by
    // the reference loop's keep-own branch.
    for (int delta : {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 24, 31, 32, 40}) {
      const int norm = delta <= 0 ? 0 : (delta > kWarpSize ? kWarpSize : delta);
      if (norm == 0) {
        std::memcpy(expect, a.data(), sizeof(expect));
        expect_lanes_eq(Vec<T>::shift_up(a, delta), expect, "shift_up identity");
        expect_lanes_eq(Vec<T>::shift_down(a, delta), expect, "shift_down identity");
        continue;
      }
      simd::ref::shift_up(expect, a.data(), norm);
      expect_lanes_eq(Vec<T>::shift_up(a, delta), expect, "shift_up");
      simd::ref::shift_down(expect, a.data(), norm);
      expect_lanes_eq(Vec<T>::shift_down(a, delta), expect, "shift_down");
    }

    // shfl_xor: all 32 butterfly masks.
    for (int mask = 0; mask < kWarpSize; ++mask) {
      simd::ref::butterfly(expect, a.data(), mask);
      expect_lanes_eq(Vec<T>::butterfly(a, mask), expect, "butterfly");
    }

    // shfl_idx broadcast: powers of two, non-powers, and wrap-around
    // sources (CUDA wraps the source lane modulo the warp).
    for (int src : {0, 1, 2, 5, 11, 17, 23, 31, 33, 37}) {
      simd::ref::splat(expect, a[src & (kWarpSize - 1)]);
      expect_lanes_eq(Vec<T>::broadcast(a, src), expect, "broadcast");
    }
  }
}

TEST(SimdParity, ArithmeticFloat) { check_arithmetic_parity<float>(); }
TEST(SimdParity, ArithmeticInt32) { check_arithmetic_parity<std::int32_t>(); }
TEST(SimdParity, ArithmeticInt64) { check_arithmetic_parity<std::int64_t>(); }

TEST(SimdParity, ShufflesFloat) { check_shuffle_parity<float>(); }
TEST(SimdParity, ShufflesInt32) { check_shuffle_parity<std::int32_t>(); }
TEST(SimdParity, ShufflesInt64) { check_shuffle_parity<std::int64_t>(); }

TEST(SimdParity, LogicalAnd) {
  Vec<int> a;
  Vec<int> b;
  for (int l = 0; l < kWarpSize; ++l) {
    a[l] = (l % 3 == 0) ? 0 : l - 16;  // mixes 0, negatives, positives
    b[l] = (l % 5 == 0) ? 0 : -l;
  }
  int expect[kWarpSize];
  simd::ref::logical_and(expect, a.data(), b.data());
  expect_lanes_eq(Vec<int>::logical_and(a, b), expect, "logical_and");
}

TEST(SimdParity, Iota) {
  float fexpect[kWarpSize];
  simd::ref::iota(fexpect, 2.5f, 0.25f);
  expect_lanes_eq(Vec<float>::iota(2.5f, 0.25f), fexpect, "iota float");

  std::int32_t i32expect[kWarpSize];
  for (std::int32_t base : {0, -100, 2147483600}) {
    for (std::int32_t step : {1, 3, -2}) {
      simd::ref::iota(i32expect, base, step);
      expect_lanes_eq(Vec<std::int32_t>::iota(base, step), i32expect, "iota i32");
    }
  }

  std::int64_t i64expect[kWarpSize];
  for (std::int64_t base : {std::int64_t{0}, std::int64_t{1} << 40, std::int64_t{-7}}) {
    for (std::int64_t step : {std::int64_t{1}, std::int64_t{2048}, std::int64_t{-5}}) {
      simd::ref::iota(i64expect, base, step);
      expect_lanes_eq(Vec<std::int64_t>::iota(base, step), i64expect, "iota i64");
    }
  }
}

TEST(SimdParity, UnitStride) {
  for (std::int64_t base : {std::int64_t{0}, std::int64_t{987654321}}) {
    Vec<std::int64_t> ramp = Vec<std::int64_t>::iota(base, 1);
    EXPECT_TRUE(Vec<float>::unit_stride(ramp));
    for (int broken : {0, 1, 15, 31}) {
      Vec<std::int64_t> v = ramp;
      v[broken] += 1;
      EXPECT_FALSE(Vec<float>::unit_stride(v)) << "lane " << broken;
    }
  }
  Vec<std::int64_t> stride2 = Vec<std::int64_t>::iota(0, 2);
  EXPECT_FALSE(Vec<float>::unit_stride(stride2));

  Vec<int> iramp = Vec<int>::iota(42, 1);
  EXPECT_TRUE(Vec<float>::unit_stride(iramp));
  iramp[17] -= 3;
  EXPECT_FALSE(Vec<float>::unit_stride(iramp));
}

// -------------------------------------------- cross-backend kernel goldens

using ssam::testing::fnv1a;

/// Golden output hashes of the core kernels in functional mode. Identical
/// for every SIMD backend, compiler, and host — the arithmetic is exactly
/// specified (unfused mad, -ffp-contract=off, deterministic fills). CI runs
/// this same test in the forced-scalar and explicit-AVX2 jobs; agreement
/// across those runs is the end-to-end bit-identity guarantee.
/// (Regenerate with SSAM_PRINT_GOLDEN=1 if a kernel's schedule changes.)
struct Golden {
  const char* name;
  std::uint64_t hash;
};

std::uint64_t golden_conv2d() {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(192, 128);
  fill_random(in, 7);
  Grid2D<float> out(192, 128);
  std::vector<float> w(25);
  fill_random(w, 8, -0.2, 0.2);
  core::conv2d_ssam<float>(arch, in.cview(), w, 5, 5, out.view());
  return fnv1a(out.data(), sizeof(float) * static_cast<std::size_t>(out.size()));
}

std::uint64_t golden_stencil2d() {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(256, 96);
  fill_random(in, 9);
  Grid2D<float> out(256, 96);
  core::stencil2d_ssam<float>(arch, in.cview(), core::star2d<float>(2), out.view());
  return fnv1a(out.data(), sizeof(float) * static_cast<std::size_t>(out.size()));
}

std::uint64_t golden_stencil2d_temporal() {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(160, 120);
  fill_random(in, 10);
  Grid2D<float> out(160, 120);
  core::TemporalSsamOptions opt;
  opt.t = 3;
  core::stencil2d_ssam_temporal<float>(arch, in.cview(), core::star2d<float>(1), out.view(),
                                       opt);
  return fnv1a(out.data(), sizeof(float) * static_cast<std::size_t>(out.size()));
}

std::uint64_t golden_stencil3d() {
  const auto& arch = sim::tesla_v100();
  Grid3D<float> in(64, 48, 32);
  fill_random(in, 11);
  Grid3D<float> out(64, 48, 32);
  core::stencil3d_ssam<float>(arch, in.cview(), core::star3d<float>(1), out.view());
  return fnv1a(out.data(), sizeof(float) * static_cast<std::size_t>(out.size()));
}

std::uint64_t golden_gemm() {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> a(96, 80), b(112, 96), c(112, 80);
  fill_random(a, 12);
  fill_random(b, 13);
  core::gemm_ssam<float>(arch, a.cview(), b.cview(), c.view());
  return fnv1a(c.data(), sizeof(float) * static_cast<std::size_t>(c.size()));
}

std::uint64_t golden_scan() {
  const auto& arch = sim::tesla_v100();
  std::vector<float> in(10000);
  fill_random(in, 14);
  std::vector<float> out(in.size());
  core::scan_inclusive<float>(arch, in, out);
  return fnv1a(out.data(), sizeof(float) * out.size());
}

TEST(KernelGolden, BitIdenticalAcrossBackends) {
  const Golden goldens[] = {
      {"conv2d", golden_conv2d()},
      {"stencil2d", golden_stencil2d()},
      {"stencil2d_temporal", golden_stencil2d_temporal()},
      {"stencil3d", golden_stencil3d()},
      {"gemm", golden_gemm()},
      {"scan", golden_scan()},
  };
  if (std::getenv("SSAM_PRINT_GOLDEN") != nullptr) {
    for (const Golden& g : goldens) {
      std::printf("  {\"%s\", 0x%016llxull},\n", g.name,
                  static_cast<unsigned long long>(g.hash));
    }
  }
  const Golden expected[] = {
      {"conv2d", 0x494650514c4928f8ull},
      {"stencil2d", 0xb64c0d89888b8337ull},
      {"stencil2d_temporal", 0x22f7a654458ede3full},
      {"stencil3d", 0xf9026ccf1cdd75b6ull},
      {"gemm", 0x81ae90bc5dd70376ull},
      {"scan", 0xc3b6d6659b933233ull},
  };
  for (std::size_t i = 0; i < std::size(goldens); ++i) {
    EXPECT_EQ(goldens[i].hash, expected[i].hash)
        << goldens[i].name << " output drifted from the cross-backend golden "
        << "(backend " << simd::kBackendName << ")";
  }
}

}  // namespace
