// Stencil baselines (original/reordered/unrolled/Halide, ppcg-tiled, z-march,
// temporal blocking) vs the scalar reference.
#include <gtest/gtest.h>

#include "baselines/stencil_direct.hpp"
#include "baselines/stencil_temporal.hpp"
#include "baselines/stencil_tiled.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil_suite.hpp"
#include "gpusim/arch.hpp"
#include "reference/stencil.hpp"

namespace {

using namespace ssam;

template <typename T>
double diff2d(const Grid2D<T>& got, const Grid2D<T>& want) {
  return normalized_max_diff<T>({got.data(), static_cast<std::size_t>(got.size())},
                                {want.data(), static_cast<std::size_t>(want.size())});
}

class DirectStyles
    : public ::testing::TestWithParam<std::tuple<std::string, base::DirectStyle>> {};

TEST_P(DirectStyles, Matches2D) {
  const auto shape = core::suite_stencil<float>(std::get<0>(GetParam()));
  if (shape.dims != 2) GTEST_SKIP();
  Grid2D<float> in(77, 53), got(77, 53), want(77, 53);
  fill_random(in, 21);
  base::stencil2d_direct<float>(sim::tesla_p100(), in.cview(), shape, got.view(),
                                std::get<1>(GetParam()));
  ref::stencil2d<float>(in.cview(), shape.taps, want.view());
  EXPECT_LE(diff2d(got, want), verify_tolerance<float>(shape.taps.size()));
}

TEST_P(DirectStyles, Matches3D) {
  const auto shape = core::suite_stencil<float>(std::get<0>(GetParam()));
  if (shape.dims != 3) GTEST_SKIP();
  Grid3D<float> in(40, 22, 17), got(40, 22, 17), want(40, 22, 17);
  fill_random(in, 22);
  base::stencil3d_direct<float>(sim::tesla_p100(), in.cview(), shape, got.view(),
                                std::get<1>(GetParam()));
  ref::stencil3d<float>(in.cview(), shape.taps, want.view());
  EXPECT_LE(normalized_max_diff<float>({got.data(), static_cast<std::size_t>(got.size())},
                                       {want.data(), static_cast<std::size_t>(want.size())}),
            verify_tolerance<float>(shape.taps.size()));
}

INSTANTIATE_TEST_SUITE_P(
    StylesByShape, DirectStyles,
    ::testing::Combine(::testing::Values("2d5pt", "2d9pt", "2ds25pt", "2d25pt", "2d81pt",
                                         "3d7pt", "3d27pt", "poisson"),
                       ::testing::Values(base::DirectStyle::kOriginal,
                                         base::DirectStyle::kReordered,
                                         base::DirectStyle::kUnrolled,
                                         base::DirectStyle::kHalide)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::string(base::to_string(std::get<1>(info.param)));
    });

class TiledShapes : public ::testing::TestWithParam<std::string> {};

TEST_P(TiledShapes, PpcgStyleMatches) {
  const auto shape = core::suite_stencil<float>(GetParam());
  if (shape.dims == 2) {
    Grid2D<float> in(77, 53), got(77, 53), want(77, 53);
    fill_random(in, 23);
    base::stencil2d_smem_tiled<float>(sim::tesla_v100(), in.cview(), shape, got.view());
    ref::stencil2d<float>(in.cview(), shape.taps, want.view());
    EXPECT_LE(diff2d(got, want), verify_tolerance<float>(shape.taps.size()));
  } else {
    Grid3D<float> in(40, 21, 19), got(40, 21, 19), want(40, 21, 19);
    fill_random(in, 24);
    base::stencil3d_smem_tiled<float>(sim::tesla_v100(), in.cview(), shape, got.view());
    ref::stencil3d<float>(in.cview(), shape.taps, want.view());
    EXPECT_LE(
        normalized_max_diff<float>({got.data(), static_cast<std::size_t>(got.size())},
                                   {want.data(), static_cast<std::size_t>(want.size())}),
        verify_tolerance<float>(shape.taps.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Table3, TiledShapes,
                         ::testing::Values("2d5pt", "2d13pt", "2d25pt", "2d121pt", "3d7pt",
                                           "3d13pt", "3d27pt", "3d125pt", "poisson"),
                         [](const auto& info) { return info.param; });

TEST(ZMarch, MatchesReferenceForSuite3D) {
  for (const char* name : {"3d7pt", "3d13pt", "3d27pt", "poisson"}) {
    const auto shape = core::suite_stencil<float>(name);
    Grid3D<float> in(40, 24, 21), got(40, 24, 21), want(40, 24, 21);
    fill_random(in, 25);
    base::stencil3d_zmarch<float>(sim::tesla_p100(), in.cview(), shape, got.view());
    ref::stencil3d<float>(in.cview(), shape.taps, want.view());
    EXPECT_LE(
        normalized_max_diff<float>({got.data(), static_cast<std::size_t>(got.size())},
                                   {want.data(), static_cast<std::size_t>(want.size())}),
        verify_tolerance<float>(shape.taps.size()))
        << name;
  }
}

// Temporal blocking: interior cells (beyond the t*r ghost ring) must equal t
// reference sweeps exactly; ring cells follow the ghost-zone approximation.
template <typename T>
void expect_interior_match_2d(const Grid2D<T>& got, const Grid2D<T>& want, int margin,
                              double tol, const std::string& label) {
  double err = 0;
  double scale = 0;
  for (Index y = margin; y < want.height() - margin; ++y) {
    for (Index x = margin; x < want.width() - margin; ++x) {
      err = std::max(err, std::abs(static_cast<double>(got.at(x, y)) - want.at(x, y)));
      scale = std::max(scale, std::abs(static_cast<double>(want.at(x, y))));
    }
  }
  EXPECT_LE(err / std::max(scale, 1e-30), tol) << label;
}

TEST(TemporalSmem2D, InteriorMatchesIteratedReference) {
  for (int t : {1, 2, 3, 4}) {
    const auto shape = core::suite_stencil<float>("2d5pt");
    Grid2D<float> in(96, 64), got(96, 64);
    fill_random(in, 31);
    Grid2D<float> a = in, b(96, 64);
    for (int s = 0; s < t; ++s) {
      ref::stencil2d<float>(a.cview(), shape.taps, b.view());
      std::swap(a, b);
    }
    base::TemporalOptions opt{t};
    base::stencil2d_temporal_smem<float>(sim::tesla_v100(), in.cview(), shape, got.view(),
                                         opt);
    expect_interior_match_2d<float>(got, a, t * shape.order,
                                    verify_tolerance<float>(shape.taps.size() * t),
                                    "t=" + std::to_string(t));
  }
}

TEST(TemporalSmem3D, InteriorMatchesIteratedReference) {
  const int t = 2;
  const auto shape = core::suite_stencil<float>("3d7pt");
  Grid3D<float> in(48, 20, 16), got(48, 20, 16);
  fill_random(in, 32);
  Grid3D<float> a = in, b(48, 20, 16);
  for (int s = 0; s < t; ++s) {
    ref::stencil3d<float>(a.cview(), shape.taps, b.view());
    std::swap(a, b);
  }
  base::stencil3d_temporal_smem<float>(sim::tesla_v100(), in.cview(), shape, got.view(),
                                       base::TemporalOptions{t});
  const int m = t * shape.order;
  double err = 0, scale = 0;
  for (Index z = m; z < a.nz() - m; ++z) {
    for (Index y = m; y < a.ny() - m; ++y) {
      for (Index x = m; x < a.nx() - m; ++x) {
        err = std::max(err, std::abs(static_cast<double>(got.at(x, y, z)) - a.at(x, y, z)));
        scale = std::max(scale, std::abs(static_cast<double>(a.at(x, y, z))));
      }
    }
  }
  EXPECT_LE(err / std::max(scale, 1e-30), verify_tolerance<float>(shape.taps.size() * t));
}

TEST(TemporalSsam2D, InteriorMatchesIteratedReference) {
  for (const char* name : {"2d5pt", "2d9pt"}) {
    for (int t : {1, 2, 3}) {
      const auto shape = core::suite_stencil<float>(name);
      if (32 - t * 2 * shape.order * 2 < 8) continue;
      Grid2D<float> in(96, 64), got(96, 64);
      fill_random(in, 33);
      Grid2D<float> a = in, b(96, 64);
      for (int s = 0; s < t; ++s) {
        ref::stencil2d<float>(a.cview(), shape.taps, b.view());
        std::swap(a, b);
      }
      core::TemporalSsamOptions opt;
      opt.t = t;
      core::stencil2d_ssam_temporal<float>(sim::tesla_v100(), in.cview(), shape, got.view(),
                                           opt);
      expect_interior_match_2d<float>(got, a, t * shape.order,
                                      verify_tolerance<float>(shape.taps.size() * t),
                                      std::string(name) + " t=" + std::to_string(t));
    }
  }
}

}  // namespace
