// SSAM 2D convolution vs the scalar reference, swept over filter geometry.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/conv2d.hpp"
#include "gpusim/arch.hpp"
#include "reference/conv.hpp"

namespace {

using namespace ssam;

template <typename T>
void check_conv(Index width, Index height, int m, int n, int p = 4, int block_threads = 128) {
  Grid2D<T> in(width, height);
  fill_random(in, /*seed=*/42 + static_cast<std::uint64_t>(m * 100 + n));
  std::vector<T> w(static_cast<std::size_t>(m) * n);
  fill_random(w, /*seed=*/7, -0.5, 0.5);

  Grid2D<T> got(width, height, T{-1000});
  Grid2D<T> want(width, height);
  core::ConvOptions opt;
  opt.p = p;
  opt.block_threads = block_threads;
  core::conv2d_ssam<T>(sim::tesla_v100(), in.cview(), w, m, n, got.view(), opt);
  ref::conv2d<T>(in.cview(), w, m, n, want.view());

  const double tol = verify_tolerance<T>(static_cast<std::size_t>(m) * n);
  const double err = normalized_max_diff<T>({got.data(), static_cast<std::size_t>(got.size())},
                                     {want.data(), static_cast<std::size_t>(want.size())});
  EXPECT_LE(err, tol) << "W=" << width << " H=" << height << " M=" << m << " N=" << n
                      << " P=" << p;
}

TEST(Conv2DSsam, Small3x3) { check_conv<float>(64, 48, 3, 3); }
TEST(Conv2DSsam, Small5x5) { check_conv<float>(64, 48, 5, 5); }
TEST(Conv2DSsam, EvenFilter2x2) { check_conv<float>(64, 48, 2, 2); }
TEST(Conv2DSsam, Asymmetric7x3) { check_conv<float>(96, 40, 7, 3); }
TEST(Conv2DSsam, Asymmetric3x7) { check_conv<float>(96, 40, 3, 7); }
TEST(Conv2DSsam, Wide20x20) { check_conv<float>(128, 64, 20, 20); }
TEST(Conv2DSsam, NonDivisibleDomain) { check_conv<float>(101, 53, 5, 5); }
TEST(Conv2DSsam, TinyDomain) { check_conv<float>(9, 7, 3, 3); }
TEST(Conv2DSsam, Double9x9) { check_conv<double>(64, 64, 9, 9); }
TEST(Conv2DSsam, P1Window) { check_conv<float>(64, 64, 5, 5, /*p=*/1); }
TEST(Conv2DSsam, P8Window) { check_conv<float>(64, 64, 5, 5, /*p=*/8); }
TEST(Conv2DSsam, OneWarpBlocks) { check_conv<float>(64, 64, 3, 3, 4, /*block=*/32); }

struct ConvCase {
  int m, n;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, MatchesReference) {
  check_conv<float>(80, 70, GetParam().m, GetParam().n);
}

INSTANTIATE_TEST_SUITE_P(AllFilterSizes, ConvSweep,
                         ::testing::Values(ConvCase{2, 2}, ConvCase{3, 3}, ConvCase{4, 4},
                                           ConvCase{5, 5}, ConvCase{6, 6}, ConvCase{7, 7},
                                           ConvCase{8, 8}, ConvCase{9, 9}, ConvCase{10, 10},
                                           ConvCase{11, 11}, ConvCase{12, 12},
                                           ConvCase{13, 13}, ConvCase{15, 15},
                                           ConvCase{17, 17}, ConvCase{20, 20},
                                           ConvCase{2, 5}, ConvCase{5, 2}, ConvCase{1, 7},
                                           ConvCase{7, 1}, ConvCase{1, 1}),
                         [](const auto& info) {
                           return "M" + std::to_string(info.param.m) + "N" +
                                  std::to_string(info.param.n);
                         });

TEST(Conv2DSsam, TimingModeProducesStats) {
  const Index width = 256, height = 256;
  Grid2D<float> in(width, height);
  fill_random(in, 1);
  std::vector<float> w(25);
  fill_random(w, 2);
  Grid2D<float> out(width, height);
  auto stats = core::conv2d_ssam<float>(sim::tesla_p100(), in.cview(), w, 5, 5, out.view(),
                                        {}, sim::ExecMode::kTiming);
  EXPECT_GT(stats.blocks_total, 0);
  EXPECT_GT(stats.blocks_timed, 0);
  EXPECT_GT(stats.cycles_per_block, 0.0);
  EXPECT_GT(stats.totals.fp_ops, 0u);
  EXPECT_GT(stats.totals.shfl_ops, 0u);
  EXPECT_GT(stats.totals.dram_read_bytes, 0u);
  auto est = sim::estimate_runtime(sim::tesla_p100(), stats);
  EXPECT_GT(est.total_ms, 0.0);
}

}  // namespace
