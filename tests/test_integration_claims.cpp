// Integration tests: the paper's headline claims, executed end-to-end on the
// simulator as pass/fail properties (small domains; the benches re-verify on
// the paper's full domains).
#include <gtest/gtest.h>

#include "baselines/conv2d_direct.hpp"
#include "baselines/conv2d_smem.hpp"
#include "baselines/stencil_direct.hpp"
#include "baselines/stencil_tiled.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/conv2d.hpp"
#include "core/iterate.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil_suite.hpp"
#include "gpusim/timing.hpp"
#include "reference/stencil.hpp"

namespace {

using namespace ssam;

double time_ms(const sim::ArchSpec& arch, const sim::KernelStats& s) {
  return sim::estimate_runtime(arch, s).total_ms;
}

// Section 5.2's conclusion, end-to-end: SSAM convolution beats the
// conventional shared-memory convolution for every M, N >= 2.
TEST(HeadlineClaims, SsamBeatsSharedMemoryConvForAllFiltersAtLeast2) {
  Grid2D<float> in(2048, 2048), out(2048, 2048);
  std::vector<float> w(14 * 14, 0.01f);
  for (const sim::ArchSpec* arch : {&sim::tesla_p100(), &sim::tesla_v100()}) {
    for (int f : {2, 3, 5, 8, 11, 14}) {
      std::span<const float> wf(w.data(), static_cast<std::size_t>(f) * f);
      auto ssam = core::conv2d_ssam<float>(*arch, in.cview(), wf, f, f, out.view(), {},
                                           sim::ExecMode::kTiming, {32, 4});
      auto smem = base::conv2d_smem<float>(*arch, in.cview(), wf, f, f, out.view(), {},
                                           sim::ExecMode::kTiming, {32, 4});
      EXPECT_LT(time_ms(*arch, ssam), time_ms(*arch, smem))
          << arch->name << " filter " << f;
    }
  }
}

// Abstract: "on average 2.5x faster than NPP" — require >= 2x at a mid-size
// filter even on the reduced test domain.
TEST(HeadlineClaims, SsamAtLeastTwiceNppAtNineByNine) {
  Grid2D<float> in(2048, 2048), out(2048, 2048);
  std::vector<float> w(81, 0.01f);
  for (const sim::ArchSpec* arch : {&sim::tesla_p100(), &sim::tesla_v100()}) {
    auto ssam = core::conv2d_ssam<float>(*arch, in.cview(), w, 9, 9, out.view(), {},
                                         sim::ExecMode::kTiming, {32, 4});
    auto npp = base::conv2d_direct<float>(*arch, in.cview(), w, 9, 9, out.view(), {},
                                          sim::ExecMode::kTiming, {32, 4});
    EXPECT_GE(time_ms(*arch, npp) / time_ms(*arch, ssam), 2.0) << arch->name;
  }
}

// Figure 5's qualitative core: SSAM beats original/reordered/unrolled/ppcg
// on a representative high-order stencil (register reuse dominates there).
TEST(HeadlineClaims, SsamWinsHighOrderStencils) {
  const auto shape = core::suite_stencil<float>("2d121pt");
  Grid2D<float> in(2048, 2048), out(2048, 2048);
  const auto& arch = sim::tesla_v100();
  const double ssam = time_ms(
      arch, core::stencil2d_ssam<float>(arch, in.cview(), shape, out.view(), {},
                                        sim::ExecMode::kTiming, {32, 4}));
  for (auto style : {base::DirectStyle::kOriginal, base::DirectStyle::kReordered,
                     base::DirectStyle::kUnrolled, base::DirectStyle::kHalide}) {
    const double other = time_ms(
        arch, base::stencil2d_direct<float>(arch, in.cview(), shape, out.view(), style,
                                            sim::ExecMode::kTiming, {32, 4}));
    EXPECT_LT(ssam, other) << to_string(style);
  }
  const double ppcg = time_ms(
      arch, base::stencil2d_smem_tiled<float>(arch, in.cview(), shape, out.view(),
                                              sim::ExecMode::kTiming, {32, 4}));
  EXPECT_LT(ssam, ppcg);
}

// Section 6.4: SSAM's in-register temporal blocking raises per-step
// throughput over the plain SSAM sweep for low-order 2D stencils.
TEST(HeadlineClaims, TemporalBlockingPaysForLowOrder2D) {
  const auto shape = core::suite_stencil<float>("2d5pt");
  Grid2D<float> in(4096, 4096), out(4096, 4096);
  const auto& arch = sim::tesla_v100();
  const double plain = time_ms(
      arch, core::stencil2d_ssam<float>(arch, in.cview(), shape, out.view(), {},
                                        sim::ExecMode::kTiming, {32, 4}));
  core::TemporalSsamOptions opt;
  opt.t = 4;
  const double fused = time_ms(arch, core::stencil2d_ssam_temporal<float>(
                                         arch, in.cview(), shape, out.view(), opt,
                                         sim::ExecMode::kTiming, {32, 4}));
  // Per-step cost: fused covers 4 steps.
  EXPECT_LT(fused / 4.0, plain);
}

// Iterated SSAM stencils stay equal to the iterated reference (drift-free
// double buffering) — the end-to-end application correctness property.
TEST(Integration, IteratedDiffusionMatchesReference) {
  const auto shape = core::suite_stencil<float>("2d5pt");
  Grid2D<float> a(128, 96), b(128, 96);
  fill_random(a, 77, 0.0, 1.0);
  Grid2D<float> ra = a, rb(128, 96);
  core::iterate_stencil2d<float>(sim::tesla_v100(), a, b, shape, 10);
  ref::iterate2d<float>(ra, rb, shape.taps, 10);
  EXPECT_LE(normalized_max_diff<float>({a.data(), static_cast<std::size_t>(a.size())},
                                       {ra.data(), static_cast<std::size_t>(ra.size())}),
            verify_tolerance<float>(shape.taps.size() * 10));
}

// Section 7.1's architectural facts, as simulated: Volta's L1 is ~2.8x
// faster and >5x larger than Pascal's, its L2 is 50% larger and faster —
// the properties the paper uses to explain why the SSAM gap narrows on V100.
TEST(Integration, VoltaCacheHierarchyPerSection71) {
  const auto& p100 = sim::tesla_p100();
  const auto& v100 = sim::tesla_v100();
  const double l1_speedup = static_cast<double>(p100.lat.l1) / v100.lat.l1;
  EXPECT_NEAR(l1_speedup, 2.8, 0.2);  // paper: "about 2.8x faster" [15]
  EXPECT_GE(v100.l1_bytes, 5 * p100.l1_bytes);
  EXPECT_EQ(v100.l2_bytes, p100.l2_bytes * 3 / 2);  // 6144KB vs 4096KB
  EXPECT_LT(v100.lat.l2, p100.lat.l2);
  EXPECT_EQ(v100.register_banks, 2);  // Volta: 2 banks (Jia et al. [16])
  EXPECT_EQ(p100.register_banks, 4);
}

}  // namespace
