// Every convolution baseline (ArrayFire-like, NPP-like, Halide-like,
// cuDNN-like, cuFFT-like) vs the scalar reference.
#include <gtest/gtest.h>

#include "baselines/conv2d_direct.hpp"
#include "baselines/conv2d_fft.hpp"
#include "baselines/conv2d_gemm.hpp"
#include "baselines/conv2d_halide.hpp"
#include "baselines/conv2d_smem.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "gpusim/arch.hpp"
#include "reference/conv.hpp"

namespace {

using namespace ssam;

template <typename T>
struct ConvFixture {
  Grid2D<T> in;
  std::vector<T> w;
  Grid2D<T> want;
  int m, n;

  ConvFixture(Index width, Index height, int fm, int fn)
      : in(width, height), w(static_cast<std::size_t>(fm) * fn), want(width, height),
        m(fm), n(fn) {
    fill_random(in, 3);
    fill_random(w, 4, -0.5, 0.5);
    ref::conv2d<T>(in.cview(), w, m, n, want.view());
  }

  void expect_close(const Grid2D<T>& got, const char* label) const {
    EXPECT_LE(normalized_max_diff<T>({got.data(), static_cast<std::size_t>(got.size())},
                                     {want.data(), static_cast<std::size_t>(want.size())}),
              verify_tolerance<T>(static_cast<std::size_t>(m) * n))
        << label << " M=" << m << " N=" << n;
  }
};

struct Case {
  int m, n;
};

class BaselineConvSweep : public ::testing::TestWithParam<Case> {};

TEST_P(BaselineConvSweep, SmemMatches) {
  ConvFixture<float> fx(90, 70, GetParam().m, GetParam().n);
  Grid2D<float> got(90, 70);
  base::conv2d_smem<float>(sim::tesla_v100(), fx.in.cview(), fx.w, fx.m, fx.n, got.view());
  fx.expect_close(got, "ArrayFire-like");
}

TEST_P(BaselineConvSweep, DirectMatches) {
  ConvFixture<float> fx(90, 70, GetParam().m, GetParam().n);
  Grid2D<float> got(90, 70);
  base::conv2d_direct<float>(sim::tesla_v100(), fx.in.cview(), fx.w, fx.m, fx.n, got.view());
  fx.expect_close(got, "NPP-like");
}

TEST_P(BaselineConvSweep, HalideMatches) {
  ConvFixture<float> fx(90, 70, GetParam().m, GetParam().n);
  Grid2D<float> got(90, 70);
  base::conv2d_halide<float>(sim::tesla_v100(), fx.in.cview(), fx.w, fx.m, fx.n, got.view());
  fx.expect_close(got, "Halide-like");
}

TEST_P(BaselineConvSweep, GemmMatchesWhenSupported) {
  if (!base::cudnn_supports(GetParam().m, GetParam().n)) {
    GTEST_SKIP() << "cuDNN path: odd filters only";
  }
  ConvFixture<float> fx(90, 70, GetParam().m, GetParam().n);
  Grid2D<float> got(90, 70);
  base::conv2d_gemm<float>(sim::tesla_v100(), fx.in.cview(), fx.w, fx.m, fx.n, got.view());
  fx.expect_close(got, "cuDNN-like");
}

INSTANTIATE_TEST_SUITE_P(Filters, BaselineConvSweep,
                         ::testing::Values(Case{2, 2}, Case{3, 3}, Case{4, 4}, Case{5, 5},
                                           Case{7, 7}, Case{9, 9}, Case{11, 11}, Case{13, 13},
                                           Case{16, 16}, Case{20, 20}, Case{3, 7},
                                           Case{7, 3}),
                         [](const auto& info) {
                           return "M" + std::to_string(info.param.m) + "N" +
                                  std::to_string(info.param.n);
                         });

TEST(ConvFft, MatchesZeroBorderReference) {
  // FFT convolution implements the zero border; compare against the
  // reference run with Border::kZero.
  const Index width = 61, height = 45;
  for (auto [m, n] : {std::pair{3, 3}, std::pair{5, 7}, std::pair{9, 9}}) {
    Grid2D<float> in(width, height);
    fill_random(in, 8);
    std::vector<float> w(static_cast<std::size_t>(m) * n);
    fill_random(w, 9, -0.5, 0.5);
    Grid2D<float> got(width, height), want(width, height);
    base::conv2d_fft<float>(in.cview(), w, m, n, got.view());
    ref::conv2d<float>(in.cview(), w, m, n, want.view(), Border::kZero);
    EXPECT_LE(
        normalized_max_diff<float>({got.data(), static_cast<std::size_t>(got.size())},
                                   {want.data(), static_cast<std::size_t>(want.size())}),
        1e-3)  // FFT roundtrip in fp32 is looser than direct accumulation
        << "M=" << m << " N=" << n;
  }
}

TEST(ConvFft, TimingIsFlatAcrossFilterSizes) {
  const auto& arch = sim::tesla_v100();
  const auto t3 = base::conv2d_fft_time<float>(arch, 1024, 1024, 3, 3);
  const auto t19 = base::conv2d_fft_time<float>(arch, 1024, 1024, 19, 19);
  // Same plan size => (near) identical runtime: the defining cuFFT shape.
  EXPECT_NEAR(t3.estimate.total_ms, t19.estimate.total_ms,
              0.05 * t3.estimate.total_ms + 1e-6);
}

TEST(ConvFft, FftSubstrateRoundTrip) {
  std::vector<std::complex<double>> v(256);
  SplitMix64 rng(5);
  for (auto& c : v) c = {rng.next_in(-1, 1), rng.next_in(-1, 1)};
  auto orig = v;
  base::fft_inplace(v.data(), 256, false);
  base::fft_inplace(v.data(), 256, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-12);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-12);
  }
}

TEST(ConvFft, ParsevalProperty) {
  // Property: FFT preserves energy (up to the 1/n convention).
  const Index n = 512;
  std::vector<std::complex<double>> v(static_cast<std::size_t>(n));
  SplitMix64 rng(6);
  double energy_in = 0;
  for (auto& c : v) {
    c = {rng.next_in(-1, 1), rng.next_in(-1, 1)};
    energy_in += std::norm(c);
  }
  base::fft_inplace(v.data(), n, false);
  double energy_out = 0;
  for (auto& c : v) energy_out += std::norm(c);
  EXPECT_NEAR(energy_out / static_cast<double>(n), energy_in, 1e-9 * energy_in);
}

}  // namespace
