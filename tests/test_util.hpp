// Shared test helpers: the FNV-1a golden hash, bit-exact parity assertions,
// and the global-pool restore guard. One definition serves every suite so
// hashes stay comparable across tests (and across SIMD backends — the
// cross-backend goldens in test_simd_parity.cpp and the persistent/sharded
// parity pins hash with the same function).
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/thread_pool.hpp"

namespace ssam::testing {

/// FNV-1a over the raw bytes of a buffer. Float outputs are hashed by bit
/// pattern, so two hashes agree iff the buffers are bit-identical.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Bit-exact parity over `count` trivially copyable elements. On mismatch
/// the failure message names the first differing element (memcmp alone only
/// says "different", which is useless for a seeded differential suite).
template <typename T>
[[nodiscard]] ::testing::AssertionResult bits_equal(const T* a, const T* b,
                                                    std::size_t count) {
  if (std::memcmp(a, b, count * sizeof(T)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(T)) != 0) {
      return ::testing::AssertionFailure()
             << "first bit mismatch at element " << i << ": " << a[i] << " vs " << b[i]
             << " (" << count << " elements total)";
    }
  }
  return ::testing::AssertionFailure() << "buffers differ (memcmp) but no element does";
}

/// Restores the default global pool when a test that resizes it exits.
struct PoolSizeGuard {
  PoolSizeGuard() = default;
  PoolSizeGuard(const PoolSizeGuard&) = delete;
  PoolSizeGuard& operator=(const PoolSizeGuard&) = delete;
  ~PoolSizeGuard() { ThreadPool::reset_global(hardware_concurrency()); }
};

}  // namespace ssam::testing
