// Compile-time execution-mode specialization: functional/timing parity,
// golden timing statistics, and the zero-allocation functional steady state.
//
// These tests pin down the contract of the mode-templated simulator:
//  * functional outputs are bit-identical to timing-mode outputs (same Vec
//    lane primitives run in both specializations);
//  * timing-mode cycles and counters match recorded golden values, so
//    functional-path optimizations can never silently disturb the model;
//  * the functional steady state performs no heap allocation per block
//    (verified through a counting operator new).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "core/conv2d.hpp"
#include "core/gemm.hpp"
#include "core/scan.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"

// ---------------------------------------------------------------------------
// Counting operator new: the allocation hook the zero-allocation test uses.
// ---------------------------------------------------------------------------

namespace {
std::atomic<long long> g_alloc_count{0};
}

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace ssam;

// The functional warp context must carry zero timing residue: no scoreboard,
// no counters, no memory-system pointer — just the arch pointer and lane id.
static_assert(sizeof(sim::FunctionalWarpContext) < sizeof(sim::WarpContext));
static_assert(sizeof(sim::FunctionalWarpContext) <= 2 * sizeof(void*));

/// Timing sample that covers every block of the small parity grids, so the
/// timing run produces a complete output image to compare against.
sim::SampleSpec full_sample() { return sim::SampleSpec{1 << 20, 1}; }

template <typename T>
void expect_bit_identical(const T* a, const T* b, Index n) {
  for (Index i = 0; i < n; ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

// --- functional vs timing parity -------------------------------------------

TEST(ModeParity, Conv2dOutputsBitIdentical) {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(300, 64);
  fill_random(in, 11);
  std::vector<float> weights(5 * 5);
  {
    SplitMix64 rng(7);
    for (auto& w : weights) w = static_cast<float>(rng.next_in(-1.0, 1.0));
  }
  Grid2D<float> out_f(300, 64), out_t(300, 64);
  (void)core::conv2d_ssam<float>(arch, in.cview(), weights, 5, 5, out_f.view(), {},
                                 core::ExecMode::kFunctional);
  const auto stats =
      core::conv2d_ssam<float>(arch, in.cview(), weights, 5, 5, out_t.view(), {},
                               core::ExecMode::kTiming, full_sample());
  ASSERT_EQ(stats.blocks_timed, stats.blocks_total) << "grid must be fully sampled";
  expect_bit_identical(out_f.data(), out_t.data(), out_f.size());
}

TEST(ModeParity, Stencil2dOutputsBitIdentical) {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(300, 64);
  fill_random(in, 13);
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> out_f(300, 64), out_t(300, 64);
  (void)core::stencil2d_ssam<float>(arch, in.cview(), shape, out_f.view(), {},
                                    core::ExecMode::kFunctional);
  const auto stats = core::stencil2d_ssam<float>(arch, in.cview(), shape, out_t.view(), {},
                                                 core::ExecMode::kTiming, full_sample());
  ASSERT_EQ(stats.blocks_timed, stats.blocks_total);
  expect_bit_identical(out_f.data(), out_t.data(), out_f.size());
}

TEST(ModeParity, TemporalStencilOutputsBitIdentical) {
  const auto& arch = sim::tesla_p100();
  Grid2D<float> in(256, 48);
  fill_random(in, 17);
  const core::StencilShape<float> shape = core::star2d<float>(1);
  core::TemporalSsamOptions opt;
  opt.t = 2;
  Grid2D<float> out_f(256, 48), out_t(256, 48);
  (void)core::stencil2d_ssam_temporal<float>(arch, in.cview(), shape, out_f.view(), opt,
                                             core::ExecMode::kFunctional);
  const auto stats =
      core::stencil2d_ssam_temporal<float>(arch, in.cview(), shape, out_t.view(), opt,
                                           core::ExecMode::kTiming, full_sample());
  ASSERT_EQ(stats.blocks_timed, stats.blocks_total);
  expect_bit_identical(out_f.data(), out_t.data(), out_f.size());
}

TEST(ModeParity, ScanOutputsBitIdentical) {
  const auto& arch = sim::tesla_v100();
  std::vector<float> in(256 * 50);
  {
    SplitMix64 rng(23);
    for (auto& v : in) v = static_cast<float>(rng.next_in(-1.0, 1.0));
  }
  std::vector<float> out_f(in.size()), out_t(in.size());
  (void)core::scan_inclusive<float>(arch, in, out_f, core::ExecMode::kFunctional);
  (void)core::scan_inclusive<float>(arch, in, out_t, core::ExecMode::kTiming, full_sample());
  expect_bit_identical(out_f.data(), out_t.data(), static_cast<Index>(out_f.size()));
}

TEST(ModeParity, GemmOutputsBitIdentical) {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> a(32, 64), b(64, 32);
  fill_random(a, 29);
  fill_random(b, 31);
  Grid2D<float> c_f(64, 64), c_t(64, 64);
  (void)core::gemm_ssam<float>(arch, a.cview(), b.cview(), c_f.view(), {},
                               core::ExecMode::kFunctional);
  const auto stats = core::gemm_ssam<float>(arch, a.cview(), b.cview(), c_t.view(), {},
                                            core::ExecMode::kTiming, full_sample());
  ASSERT_EQ(stats.blocks_timed, stats.blocks_total);
  expect_bit_identical(c_f.data(), c_t.data(), c_f.size());
}

// --- golden timing statistics ----------------------------------------------
//
// Recorded from the timing model on the cases below; the timing path must
// not drift when the functional path is optimized. Op-count counters are
// address-independent and exactly reproducible.

struct GoldenCounters {
  double cycles_per_block;
  std::uint64_t fp_ops;
  std::uint64_t shfl_ops;
  std::uint64_t smem_loads;
  std::uint64_t gmem_load_insts;
  std::uint64_t gmem_store_insts;
  std::uint64_t barriers;
};

void expect_matches_golden(const sim::KernelStats& stats, const GoldenCounters& g) {
  // Cycles depend (slightly) on host buffer addresses through the modeled
  // cache-set mapping, so they carry a tight band instead of bit equality;
  // op counters are address-independent and must match exactly.
  EXPECT_NEAR(stats.cycles_per_block, g.cycles_per_block, 0.02 * g.cycles_per_block);
  EXPECT_EQ(stats.totals.fp_ops, g.fp_ops);
  EXPECT_EQ(stats.totals.shfl_ops, g.shfl_ops);
  EXPECT_EQ(stats.totals.smem_loads, g.smem_loads);
  EXPECT_EQ(stats.totals.gmem_load_insts, g.gmem_load_insts);
  EXPECT_EQ(stats.totals.gmem_store_insts, g.gmem_store_insts);
  EXPECT_EQ(stats.totals.barriers, g.barriers);
}

TEST(GoldenTiming, Conv2d5x5OnV100) {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(300, 64);
  fill_random(in, 11);
  std::vector<float> weights(5 * 5, 0.04f);
  Grid2D<float> out(300, 64);
  const auto stats = core::conv2d_ssam<float>(arch, in.cview(), weights, 5, 5, out.view(),
                                              {}, core::ExecMode::kTiming, full_sample());
  // GOLDEN(conv2d): regenerate by printing stats if the *model* changes.
  const GoldenCounters golden{3411.0625, 17600, 2816, 17600, 1456, 704, 48};
  expect_matches_golden(stats, golden);
}

TEST(GoldenTiming, Stencil2dStar1OnV100) {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(300, 64);
  fill_random(in, 13);
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> out(300, 64);
  const auto stats = core::stencil2d_ssam<float>(arch, in.cview(), shape, out.view(), {},
                                                 core::ExecMode::kTiming, full_sample());
  // GOLDEN(stencil2d): regenerate by printing stats if the *model* changes.
  const GoldenCounters golden{652.54166666666663, 3200, 1280, 0, 960, 640, 0};
  expect_matches_golden(stats, golden);
}

TEST(GoldenTiming, RepeatedTimingRunsAreIdentical) {
  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(300, 64);
  fill_random(in, 11);
  std::vector<float> weights(5 * 5, 0.04f);
  Grid2D<float> out(300, 64);
  auto run = [&] {
    return core::conv2d_ssam<float>(arch, in.cview(), weights, 5, 5, out.view(), {},
                                    core::ExecMode::kTiming, full_sample());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.cycles_per_block, b.cycles_per_block);
  EXPECT_DOUBLE_EQ(a.issue_slots_per_block, b.issue_slots_per_block);
  EXPECT_EQ(a.totals.dram_read_bytes, b.totals.dram_read_bytes);
}

// --- zero allocation in the functional steady state ------------------------

long long allocations_during_conv2d(const sim::ArchSpec& arch, Grid2D<float>& in,
                                    Grid2D<float>& out,
                                    const std::vector<float>& weights) {
  const long long before = g_alloc_count.load(std::memory_order_relaxed);
  (void)core::conv2d_ssam<float>(arch, in.cview(), weights, 5, 5, out.view(), {},
                                 core::ExecMode::kFunctional);
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(FunctionalAllocations, SteadyStateIsAllocationFree) {
  const auto& arch = sim::tesla_v100();
  const std::vector<float> weights(5 * 5, 0.04f);
  Grid2D<float> small_in(300, 16 * 4), small_out(300, 16 * 4);    // 16 block rows
  Grid2D<float> large_in(300, 128 * 4), large_out(300, 128 * 4);  // 128 block rows
  fill_random(small_in, 41);
  fill_random(large_in, 43);

  // Warm up: the first launch spawns the worker pool and constructs the
  // per-worker pooled contexts.
  (void)allocations_during_conv2d(arch, small_in, small_out, weights);

  const long long small = allocations_during_conv2d(arch, small_in, small_out, weights);
  const long long large = allocations_during_conv2d(arch, large_in, large_out, weights);
  // Per-launch allocation must not scale with the block count: the blocks
  // execute in pooled per-worker contexts. What remains is the fixed
  // dispatch overhead of the launch queue (one loop state plus up to one
  // helper task per pool worker), which is bounded by the pool size — 8x
  // the blocks may not add more than that.
  const long long per_launch_dispatch_bound =
      4 * ssam::ThreadPool::global().size() + 4;
  EXPECT_LE(large - small, per_launch_dispatch_bound);
}

}  // namespace
