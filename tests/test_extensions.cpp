// Extensions the paper sketches: 1D convolution (Section 3.5), GEMM on SSAM
// (Section 3.3), 3D convolution (Section 9 future work), and 3D in-register
// temporal blocking.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/conv1d.hpp"
#include "core/conv3d.hpp"
#include "core/gemm.hpp"
#include "core/stencil3d_temporal.hpp"
#include "core/stencil_suite.hpp"
#include "gpusim/arch.hpp"
#include "reference/conv.hpp"
#include "reference/stencil.hpp"

namespace {

using namespace ssam;

class Conv1DTaps : public ::testing::TestWithParam<int> {};

TEST_P(Conv1DTaps, MatchesReference) {
  const int m = GetParam();
  std::vector<float> in(1003), f(static_cast<std::size_t>(m)), got(1003), want(1003);
  fill_random(in, 3);
  fill_random(f, 4, -0.5, 0.5);
  core::conv1d_ssam<float>(sim::tesla_v100(), in, f, got);
  ref::conv1d<float>(in, f, want);
  EXPECT_LE(normalized_max_diff<float>(got, want), verify_tolerance<float>(f.size()));
}

INSTANTIATE_TEST_SUITE_P(Taps, Conv1DTaps, ::testing::Values(1, 2, 3, 5, 9, 15, 31));

TEST(Conv1D, ShortArray) {
  std::vector<float> in(7), f(3), got(7), want(7);
  fill_random(in, 5);
  fill_random(f, 6);
  core::conv1d_ssam<float>(sim::tesla_p100(), in, f, got);
  ref::conv1d<float>(in, f, want);
  EXPECT_LE(normalized_max_diff<float>(got, want), verify_tolerance<float>(3));
}

struct GemmCase {
  Index m, k, n;
};

class GemmSizes : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSizes, MatchesReference) {
  const auto [m, k, n] = GetParam();
  Grid2D<float> a(k, m), b(n, k), got(n, m), want(n, m);
  fill_random(a, 11);
  fill_random(b, 12);
  core::gemm_ssam<float>(sim::tesla_v100(), a.cview(), b.cview(), got.view());
  core::gemm_reference<float>(a.cview(), b.cview(), want.view());
  EXPECT_LE(normalized_max_diff<float>({got.data(), static_cast<std::size_t>(got.size())},
                                       {want.data(), static_cast<std::size_t>(want.size())}),
            verify_tolerance<float>(static_cast<std::size_t>(k)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSizes,
                         ::testing::Values(GemmCase{32, 32, 32}, GemmCase{64, 128, 96},
                                           GemmCase{33, 17, 65}, GemmCase{1, 100, 1},
                                           GemmCase{128, 1, 128}, GemmCase{100, 64, 31}),
                         [](const auto& info) {
                           return "M" + std::to_string(info.param.m) + "K" +
                                  std::to_string(info.param.k) + "N" +
                                  std::to_string(info.param.n);
                         });

TEST(GemmSsam, TimingShowsComputeBound) {
  // GEMM should be compute-bound on the simulated V100 (Section 3.3's point
  // that SSAM generalizes beyond memory-bound kernels).
  Grid2D<float> a(512, 512), b(512, 512), c(512, 512);
  auto stats = core::gemm_ssam<float>(sim::tesla_v100(), a.cview(), b.cview(), c.view(),
                                      {}, sim::ExecMode::kTiming, {32, 4});
  const auto est = sim::estimate_runtime(sim::tesla_v100(), stats);
  EXPECT_EQ(est.bound, "compute");
  EXPECT_GT(stats.totals.shfl_ops, 0u);  // systolic operand broadcasts
}

struct F3 {
  int m, n, k;
};

std::string f3_name(const ::testing::TestParamInfo<F3>& info) {
  return std::to_string(info.param.m) + "x" + std::to_string(info.param.n) + "x" +
         std::to_string(info.param.k);
}

class Conv3DFilters : public ::testing::TestWithParam<F3> {};

TEST_P(Conv3DFilters, MatchesReference) {
  const int fm = GetParam().m;
  const int fn = GetParam().n;
  const int fk = GetParam().k;
  Grid3D<float> in(48, 20, 16), got(48, 20, 16), want(48, 20, 16);
  fill_random(in, 21);
  std::vector<float> w(static_cast<std::size_t>(fm) * fn * fk);
  fill_random(w, 22, -0.5, 0.5);
  core::conv3d_ssam<float>(sim::tesla_v100(), in.cview(), w, fm, fn, fk, got.view());
  const auto shape = core::conv3d_shape<float>(w, fm, fn, fk);
  ref::stencil3d<float>(in.cview(), shape.taps, want.view());
  EXPECT_LE(normalized_max_diff<float>({got.data(), static_cast<std::size_t>(got.size())},
                                       {want.data(), static_cast<std::size_t>(want.size())}),
            verify_tolerance<float>(w.size()));
}

INSTANTIATE_TEST_SUITE_P(DnnFilters, Conv3DFilters,
                         ::testing::Values(F3{3, 3, 3}, F3{5, 5, 5}, F3{3, 5, 3},
                                           F3{1, 1, 3}, F3{7, 3, 1}),
                         f3_name);

// 3D in-register temporal blocking: interior (beyond the t*r ghost region in
// every dimension) must equal t reference sweeps.
template <typename T>
void check_temporal3d(const char* name, int t, int warps) {
  const auto shape = core::suite_stencil<T>(name);
  Grid3D<T> in(64, 20, 24), got(64, 20, 24);
  fill_random(in, 31);
  Grid3D<T> a = in, b(64, 20, 24);
  for (int s = 0; s < t; ++s) {
    ref::stencil3d<T>(a.cview(), shape.taps, b.view());
    std::swap(a, b);
  }
  core::Temporal3DOptions opt;
  opt.t = t;
  opt.warps = warps;
  core::stencil3d_ssam_temporal<T>(sim::tesla_v100(), in.cview(), shape, got.view(), opt);
  const int mrg = t * shape.order;
  double err = 0, scale = 0;
  for (Index z = mrg; z < a.nz() - mrg; ++z) {
    for (Index y = mrg; y < a.ny() - mrg; ++y) {
      for (Index x = mrg; x < a.nx() - mrg; ++x) {
        err = std::max(err, std::abs(static_cast<double>(got.at(x, y, z)) - a.at(x, y, z)));
        scale = std::max(scale, std::abs(static_cast<double>(a.at(x, y, z))));
      }
    }
  }
  EXPECT_LE(err / std::max(scale, 1e-30),
            verify_tolerance<T>(shape.taps.size() * static_cast<std::size_t>(t)))
      << name << " t=" << t;
}

TEST(Temporal3DSsam, Star7ptTwoSteps) { check_temporal3d<float>("3d7pt", 2, 8); }
TEST(Temporal3DSsam, Star7ptThreeSteps) { check_temporal3d<float>("3d7pt", 3, 10); }
TEST(Temporal3DSsam, PoissonTwoSteps) { check_temporal3d<float>("poisson", 2, 8); }
TEST(Temporal3DSsam, Box27ptTwoSteps) { check_temporal3d<float>("3d27pt", 2, 8); }
TEST(Temporal3DSsam, Star13ptTwoSteps) { check_temporal3d<float>("3d13pt", 2, 12); }
TEST(Temporal3DSsam, DoublePrecision) { check_temporal3d<double>("3d7pt", 2, 8); }

TEST(Temporal3DSsam, OneStepEqualsPlainKernel) {
  const auto shape = core::suite_stencil<float>("3d7pt");
  Grid3D<float> in(48, 16, 20), a(48, 16, 20), b(48, 16, 20);
  fill_random(in, 41);
  core::Temporal3DOptions opt;
  opt.t = 1;
  core::stencil3d_ssam_temporal<float>(sim::tesla_v100(), in.cview(), shape, a.view(), opt);
  core::stencil3d_ssam<float>(sim::tesla_v100(), in.cview(), shape, b.view());
  EXPECT_LE(normalized_max_diff<float>({a.data(), static_cast<std::size_t>(a.size())},
                                       {b.data(), static_cast<std::size_t>(b.size())}),
            verify_tolerance<float>(shape.taps.size()));
}

}  // namespace
