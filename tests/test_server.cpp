// The multi-tenant simulation service (core/server.hpp).
//
// Pins the service contracts:
//  * results through the server are bit-identical to direct run_job calls
//    (FNV goldens), under concurrent submission from several client
//    threads at 1, 2, and 4 devices;
//  * per-tenant weighted fair queuing: with weights 3:1 neither tenant is
//    starved beyond its share in any completion prefix;
//  * admission control rejects beyond max_pending and keeps the accepted
//    backlog intact;
//  * a 1-device x 1-worker x 1-stream server cannot deadlock, including
//    persistent-engine jobs (cooperative scheduling from the drain worker);
//  * workspace leases come back warm (no new arenas after the first wave);
//  * invalid jobs fail their future with an error instead of killing the
//    server; the resolved SimConfig is printable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/grid.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/job.hpp"
#include "core/server.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"
#include "test_util.hpp"

namespace {

using namespace ssam;
using ssam::testing::fnv1a;

// One request plus an identical private pair of grids for the direct-call
// golden. deque keeps grid addresses stable while cases accumulate.
struct Case {
  core::JobKind kind = core::JobKind::kStencil2D;
  Grid2D<float> a2{1, 1}, b2{1, 1}, ga2{1, 1}, gb2{1, 1};
  Grid3D<float> a3{1, 1, 1}, b3{1, 1, 1}, ga3{1, 1, 1}, gb3{1, 1, 1};
  core::StencilShape<float> shape;
  std::vector<float> filter;
  int steps = 1;
  core::JobHints hints;
  std::uint64_t golden = 0;

  [[nodiscard]] core::SimJob job(int tenant) {
    core::SimJob j;
    switch (kind) {
      case core::JobKind::kStencil2D:
        j = core::SimJob::stencil2d(a2, b2, shape, steps, hints);
        break;
      case core::JobKind::kStencil3D:
        j = core::SimJob::stencil3d(a3, b3, shape, steps, hints);
        break;
      case core::JobKind::kConv2D:
        j = core::SimJob::conv2d(a2, b2, filter, 3, 3, hints);
        break;
    }
    j.tenant = tenant;
    return j;
  }

  /// Hash of the job's output grid after it ran.
  [[nodiscard]] std::uint64_t output_hash() const {
    switch (kind) {
      case core::JobKind::kStencil2D:
        return fnv1a(a2.data(), static_cast<std::size_t>(a2.size()) * sizeof(float));
      case core::JobKind::kStencil3D:
        return fnv1a(a3.data(), static_cast<std::size_t>(a3.size()) * sizeof(float));
      case core::JobKind::kConv2D:
        return fnv1a(b2.data(), static_cast<std::size_t>(b2.size()) * sizeof(float));
    }
    return 0;
  }
};

/// A deterministic mixed-kind, mixed-size case set with direct-call goldens
/// already computed (on the global pool — the server must match bit for bit
/// from its device pools).
std::deque<Case> build_cases(int count, std::uint64_t seed) {
  const auto& arch = sim::tesla_v100();
  std::deque<Case> cases;
  for (int i = 0; i < count; ++i) {
    Case c;
    const int pick = i % 3;
    const std::uint64_t s = seed + static_cast<std::uint64_t>(i);
    if (pick == 0) {
      c.kind = core::JobKind::kStencil2D;
      const Index w = 48 + static_cast<Index>(s % 5) * 17;
      const Index h = 30 + static_cast<Index>(s % 3) * 23;
      c.a2 = Grid2D<float>(w, h);
      fill_random(c.a2, 100 + static_cast<int>(s));
      c.b2 = Grid2D<float>(w, h);
      c.shape = core::star2d<float>(1 + static_cast<int>(s % 2));
      c.steps = 1 + static_cast<int>(s % 4);
      if (s % 2 == 0) c.hints.policy = core::IterationPolicy::kPersistent;
      c.ga2 = c.a2;
      c.gb2 = c.b2;
      core::SimJob g = core::SimJob::stencil2d(c.ga2, c.gb2, c.shape, c.steps, c.hints);
      (void)core::run_job(arch, g);
      c.golden = fnv1a(c.ga2.data(), static_cast<std::size_t>(c.ga2.size()) * sizeof(float));
    } else if (pick == 1) {
      c.kind = core::JobKind::kStencil3D;
      const Index n = 12 + static_cast<Index>(s % 3) * 5;
      c.a3 = Grid3D<float>(n, n + 2, n + 4);
      fill_random(c.a3, 200 + static_cast<int>(s));
      c.b3 = Grid3D<float>(n, n + 2, n + 4);
      c.shape = core::star3d<float>(1);
      c.steps = 1 + static_cast<int>(s % 3);
      c.ga3 = c.a3;
      c.gb3 = c.b3;
      core::SimJob g = core::SimJob::stencil3d(c.ga3, c.gb3, c.shape, c.steps, c.hints);
      (void)core::run_job(arch, g);
      c.golden = fnv1a(c.ga3.data(), static_cast<std::size_t>(c.ga3.size()) * sizeof(float));
    } else {
      c.kind = core::JobKind::kConv2D;
      const Index w = 60 + static_cast<Index>(s % 4) * 13;
      c.a2 = Grid2D<float>(w, 41);
      fill_random(c.a2, 300 + static_cast<int>(s));
      c.b2 = Grid2D<float>(w, 41);
      c.filter.assign(9, 0.0f);
      for (std::size_t k = 0; k < 9; ++k) {
        c.filter[k] = 0.05f + 0.01f * static_cast<float>((s + k) % 7);
      }
      c.ga2 = c.a2;
      c.gb2 = c.b2;
      core::SimJob g = core::SimJob::conv2d(c.ga2, c.gb2, c.filter, 3, 3, c.hints);
      (void)core::run_job(arch, g);
      c.golden = fnv1a(c.gb2.data(), static_cast<std::size_t>(c.gb2.size()) * sizeof(float));
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

// ------------------------------------------------- determinism + concurrency

TEST(SimServerTest, ConcurrentSubmissionMatchesDirectCalls) {
  for (int ndev : {1, 2, 4}) {
    sim::DeviceGroup group(sim::DeviceGroup::even_slices(ndev));
    core::ServerOptions so;
    so.group = &group;
    core::SimServer server(so);
    EXPECT_EQ(server.stats().devices, ndev);

    const int kClients = 4;
    const int kJobsPerClient = 6;
    std::deque<Case> cases = build_cases(kClients * kJobsPerClient,
                                         1000 + static_cast<std::uint64_t>(ndev));
    std::vector<core::JobFuture> futures(cases.size());
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        for (int k = 0; k < kJobsPerClient; ++k) {
          const int idx = t * kJobsPerClient + k;
          futures[static_cast<std::size_t>(idx)] =
              server.submit(cases[static_cast<std::size_t>(idx)].job(t));
        }
      });
    }
    for (auto& c : clients) c.join();

    for (std::size_t i = 0; i < cases.size(); ++i) {
      const core::JobResult& r = futures[i].wait();
      ASSERT_EQ(r.status, core::JobStatus::kCompleted)
          << "ndev=" << ndev << " job " << i << ": " << r.error;
      EXPECT_GE(r.device, 0);
      EXPECT_LT(r.device, ndev);
      EXPECT_EQ(cases[i].output_hash(), cases[i].golden)
          << "ndev=" << ndev << " job " << i << " differs from the direct call";
    }
    server.drain();  // futures resolve before the completion accounting runs
    const core::SimServer::Stats st = server.stats();
    EXPECT_EQ(st.submitted, cases.size());
    EXPECT_EQ(st.completed, cases.size());
    EXPECT_EQ(st.rejected, 0u);
    EXPECT_EQ(st.failed, 0u);
  }
}

// --------------------------------------------------------------- fair queuing

TEST(SimServerTest, WeightedFairQueuingStarvesNoTenant) {
  // One device, one stream, one slot: completion order == dispatch order,
  // so JobResult::seq exposes the scheduler's choices exactly. Tenant 0
  // has weight 3, tenant 1 weight 1; with equal-cost jobs every completion
  // prefix must hold close to a 3:1 split — neither tenant starved.
  sim::DeviceGroup group({sim::DeviceOptions{1, {}, "fair0"}});
  core::ServerOptions so;
  so.group = &group;
  so.streams_per_device = 1;
  so.max_in_flight_per_device = 1;
  so.start_paused = true;
  core::SimServer server(so);
  server.set_tenant_weight(0, 3.0);
  server.set_tenant_weight(1, 1.0);

  const int kPerTenant = 16;
  const core::StencilShape<float> shape = core::star2d<float>(1);
  std::deque<Grid2D<float>> grids;
  std::vector<core::JobFuture> fut0, fut1;
  for (int tenant : {0, 1}) {
    for (int i = 0; i < kPerTenant; ++i) {
      grids.emplace_back(64, 32);
      fill_random(grids.back(), 40 + i);
      Grid2D<float>& a = grids.back();
      grids.emplace_back(64, 32);
      Grid2D<float>& b = grids.back();
      core::SimJob j = core::SimJob::stencil2d(a, b, shape, 2);
      j.tenant = tenant;
      (tenant == 0 ? fut0 : fut1).push_back(server.submit(j));
    }
  }
  server.drain();

  // Completion sequence numbers of each tenant, in order.
  std::vector<std::uint64_t> seq0, seq1;
  for (const auto& f : fut0) seq0.push_back(f.wait().seq);
  for (const auto& f : fut1) seq1.push_back(f.wait().seq);
  for (int k = 4; k <= 2 * kPerTenant; ++k) {
    const auto upto = static_cast<std::uint64_t>(k);
    const long c0 = std::count_if(seq0.begin(), seq0.end(),
                                  [&](std::uint64_t s) { return s <= upto; });
    const long c1 = std::count_if(seq1.begin(), seq1.end(),
                                  [&](std::uint64_t s) { return s <= upto; });
    EXPECT_GE(c0, std::min<long>(kPerTenant, 3 * k / 4 - 2)) << "prefix " << k;
    EXPECT_GE(c1, std::min<long>(kPerTenant, k / 4 - 2)) << "prefix " << k;
  }
}

// ---------------------------------------------------------- admission control

TEST(SimServerTest, AdmissionControlRejectsBeyondMaxPending) {
  sim::DeviceGroup group({sim::DeviceOptions{1, {}, "adm0"}});
  core::ServerOptions so;
  so.group = &group;
  so.max_pending = 4;
  so.start_paused = true;  // nothing dispatches, so the queue really fills
  core::SimServer server(so);

  const core::StencilShape<float> shape = core::star2d<float>(1);
  std::deque<Grid2D<float>> grids;
  std::vector<core::JobFuture> futures;
  for (int i = 0; i < 10; ++i) {
    grids.emplace_back(48, 24);
    fill_random(grids.back(), i);
    Grid2D<float>& a = grids.back();
    grids.emplace_back(48, 24);
    futures.push_back(server.submit(core::SimJob::stencil2d(a, grids.back(), shape, 1)));
  }
  int rejected = 0;
  for (const auto& f : futures) {
    if (f.ready() && f.wait().status == core::JobStatus::kRejected) ++rejected;
  }
  EXPECT_EQ(rejected, 6);  // 4 admitted, 6 turned away, all before resume
  server.drain();
  for (const auto& f : futures) {
    const core::JobResult& r = f.wait();
    EXPECT_TRUE(r.status == core::JobStatus::kCompleted ||
                r.status == core::JobStatus::kRejected);
  }
  const core::SimServer::Stats st = server.stats();
  EXPECT_EQ(st.submitted, 10u);
  EXPECT_EQ(st.rejected, 6u);
  EXPECT_EQ(st.completed, 4u);
}

// ----------------------------------------------------------- deadlock freedom

TEST(SimServerTest, OneWorkerOneStreamServerCannotDeadlock) {
  // The tightest configuration: every job slot, stream drain, kernel
  // fan-out, and persistent tile schedule shares ONE worker thread. The
  // persistent engine's cooperative scheduler and the pool's caller
  // participation must compose with the stream drain, or this hangs.
  sim::DeviceGroup group({sim::DeviceOptions{1, {}, "solo"}});
  core::ServerOptions so;
  so.group = &group;
  so.streams_per_device = 1;
  so.max_in_flight_per_device = 1;
  core::SimServer server(so);

  std::deque<Case> cases = build_cases(12, 7000);
  for (auto& c : cases) {
    if (c.kind == core::JobKind::kStencil2D) {
      c.hints.policy = core::IterationPolicy::kPersistent;  // force resident tiles
    }
  }
  // Goldens were computed before the hint flip; persistent vs relaunch is
  // bit-identical by the engine's core invariant, so they still hold.
  std::vector<core::JobFuture> futures;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    futures.push_back(server.submit(cases[i].job(static_cast<int>(i % 3))));
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const core::JobResult& r = futures[i].wait();
    ASSERT_EQ(r.status, core::JobStatus::kCompleted) << r.error;
    EXPECT_EQ(cases[i].output_hash(), cases[i].golden) << "job " << i;
  }
}

// ----------------------------------------------------------- shutdown churn

TEST(SimServerTest, DestructionDrainRacesCompletionCallbacks) {
  // Regression for a shutdown use-after-free: ~SimServer drains, and the
  // wait used to be satisfiable while the last completion callbacks were
  // still between their slot decrement and their re-pump — two tiny jobs
  // finishing near-simultaneously on different devices could destroy the
  // server under one of them. Churn tiny near-instant jobs through a
  // short-lived server so the final completions keep racing the
  // destructor; ASan/TSan turn any re-opened window into a hard failure.
  for (int iter = 0; iter < 150; ++iter) {
    std::deque<Grid2D<float>> grids;  // outlive the server below
    core::StencilShape<float> shape = core::star2d<float>(1);
    sim::DeviceGroup group(sim::DeviceGroup::even_slices(2));
    core::ServerOptions so;
    so.group = &group;
    core::SimServer server(so);
    std::vector<core::JobFuture> futures;
    for (int j = 0; j < 6; ++j) {
      Grid2D<float>& a = grids.emplace_back(8, 6);
      fill_random(a, 11000 + iter * 8 + j);
      Grid2D<float>& b = grids.emplace_back(8, 6);
      futures.push_back(server.submit(core::SimJob::stencil2d(a, b, shape, 1)));
    }
    // No explicit drain: destruction drains, racing the last callbacks.
  }
}

// ------------------------------------------------------------ workspace reuse

TEST(SimServerTest, WorkspaceLeasesComeBackWarm) {
  sim::DeviceGroup group(sim::DeviceGroup::even_slices(2));
  core::ServerOptions so;
  so.group = &group;
  core::SimServer server(so);

  auto run_wave = [&](std::uint64_t seed) {
    std::deque<Case> cases = build_cases(8, seed);
    std::vector<core::JobFuture> futures;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      futures.push_back(server.submit(cases[i].job(0)));
    }
    for (auto& f : futures) EXPECT_EQ(f.wait().status, core::JobStatus::kCompleted);
  };
  run_wave(9100);
  server.drain();
  std::uint64_t created_after_first = 0;
  for (int d = 0; d < group.size(); ++d) {
    created_after_first += group.device(d).workspaces_created();
  }
  run_wave(9200);
  server.drain();
  std::uint64_t created_after_second = 0;
  for (int d = 0; d < group.size(); ++d) {
    created_after_second += group.device(d).workspaces_created();
    EXPECT_TRUE(group.device(d).idle());
  }
  EXPECT_EQ(created_after_second, created_after_first)
      << "second wave should reuse warm arenas, not carve new ones";
}

// ------------------------------------------------------------- failure path

TEST(SimServerTest, InvalidJobFailsItsFutureNotTheServer) {
  sim::DeviceGroup group({sim::DeviceOptions{1, {}, "err0"}});
  core::ServerOptions so;
  so.group = &group;
  core::SimServer server(so);

  Grid2D<float> a(32, 16), b(32, 16);
  fill_random(a, 5);
  core::SimJob bad = core::SimJob::stencil2d(a, b, core::StencilShape<float>{}, 2);
  // Named futures: wait()'s reference lives only as long as some copy of
  // the future does — a temporary dies at the end of the full expression.
  core::JobFuture bad_fut = server.submit(bad);
  const core::JobResult& r = bad_fut.wait();
  EXPECT_EQ(r.status, core::JobStatus::kFailed);
  EXPECT_FALSE(r.error.ok());
  EXPECT_EQ(r.error.code, ErrorCode::kInvalidJob);
  EXPECT_FALSE(r.error.message.empty());

  // The server keeps serving after a failed job.
  Grid2D<float> ga = a, gb = b;
  const core::StencilShape<float> shape = core::star2d<float>(1);
  (void)core::run_job(sim::tesla_v100(), core::SimJob::stencil2d(ga, gb, shape, 2));
  core::JobFuture ok_fut = server.submit(core::SimJob::stencil2d(a, b, shape, 2));
  const core::JobResult& ok = ok_fut.wait();
  EXPECT_EQ(ok.status, core::JobStatus::kCompleted);
  EXPECT_TRUE(ssam::testing::bits_equal(a.data(), ga.data(),
                                        static_cast<std::size_t>(a.size())));
  server.drain();
  const core::SimServer::Stats st = server.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.completed, 2u);
}

// ----------------------------------------------------------------- SimConfig

TEST(SimConfigTest, ResolvedConfigIsPrintable) {
  const core::SimConfig c = core::config_from_env();
  EXPECT_GE(c.threads, 1);
  EXPECT_GE(c.devices, 1);
  const std::string d = c.describe();
  EXPECT_NE(d.find("threads="), std::string::npos);
  EXPECT_NE(d.find("devices="), std::string::npos);
  EXPECT_NE(d.find("policy="), std::string::npos);
  EXPECT_NE(d.find("simd="), std::string::npos);
  // The cached process config is the one the server reports.
  sim::DeviceGroup group({sim::DeviceOptions{1, {}, "cfg0"}});
  core::ServerOptions so;
  so.group = &group;
  core::SimServer server(so);
  EXPECT_EQ(server.config().describe(), core::config().describe());
}

}  // namespace
