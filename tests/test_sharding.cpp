// The virtual multi-device sharding layer (gpusim/device.hpp +
// core/shard.hpp + the sharded paths of core/iterate_persistent.hpp).
//
// The one invariant everything here defends: sharding is a *scheduling*
// knob, never a results knob. For every shard count, policy, tile count,
// pool size, stencil shape, and temporal depth, a sharded run must be
// bit-identical to the single-device run — which the randomized
// differential suite checks over hundreds of seeded cases (the failing
// seed is printed so any case reproduces with SSAM_SHARD_SEED).
//
// Also pinned:
//  * peer halo channels under out-of-order production/consumption pacing
//    (property stress; runs under ASan/TSan in CI);
//  * shard count > tile count degrades to fewer shards, never deadlocks or
//    corrupts results; pool size 1 everywhere stays deadlock-free;
//  * IterationPolicy x ShardPolicy: every combination agrees bit for bit,
//    auto-selection is exercised and its decision logged deterministically;
//  * per-device counters observe seam traffic; device streams route onto
//    the device's own pool slice.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/grid.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/iterate.hpp"
#include "core/iterate_persistent.hpp"
#include "core/shard.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/device.hpp"
#include "test_util.hpp"

namespace {

using namespace ssam;
using ssam::testing::bits_equal;
using ssam::testing::fnv1a;
using ssam::testing::PoolSizeGuard;

int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return fallback;
}

/// Local default: >= 200 seeded cases across the 2D and 3D suites. CI legs
/// pin a subset with SSAM_SHARD_CASES (sanitizers run ~10x slower).
int total_cases() { return env_int("SSAM_SHARD_CASES", 200); }
std::uint64_t base_seed() {
  return static_cast<std::uint64_t>(env_int("SSAM_SHARD_SEED", 0x5eed5));
}

core::StencilShape<float> random_star2d(SplitMix64& rng, int radius) {
  core::StencilShape<float> s = core::star2d<float>(radius);
  for (auto& tap : s.taps) tap.coeff = static_cast<float>(rng.next_in(-0.5, 0.5));
  return s;
}

core::StencilShape<float> random_star3d(SplitMix64& rng) {
  core::StencilShape<float> s = core::star3d<float>(1);
  for (auto& tap : s.taps) tap.coeff = static_cast<float>(rng.next_in(-0.3, 0.3));
  return s;
}

// ------------------------------------------------ randomized differential

TEST(ShardDifferential, Randomized2D) {
  const int cases = std::max(1, 2 * total_cases() / 3);
  const std::uint64_t seed0 = base_seed();
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(c);
    SCOPED_TRACE("2D case seed=" + std::to_string(seed) +
                 " (reproduce: SSAM_SHARD_CASES=1 SSAM_SHARD_SEED=" +
                 std::to_string(seed) + ")");
    SplitMix64 rng(seed);
    const Index w = 33 + static_cast<Index>(rng.next_below(180));
    const Index h = 40 + static_cast<Index>(rng.next_below(190));
    const int radius = rng.next_below(4) == 0 ? 2 : 1;
    const core::StencilShape<float> shape = random_star2d(rng, radius);
    core::PersistentOptions opt;
    opt.t = radius == 1 ? 1 + static_cast<int>(rng.next_below(3)) : 1;
    opt.tiles = static_cast<int>(rng.next_below(6));  // 0 = auto
    const int sweeps = static_cast<int>(rng.next_below(6));
    const int devices = 1 + c % 4;  // shard counts {1,2,3,4} all covered
    const bool persistent_policy = rng.next_below(2) == 0;

    Grid2D<float> src(w, h);
    fill_random(src, seed ^ 0x9e3779b9u);

    // Single-device relaunch reference.
    Grid2D<float> ra = src, rb(w, h);
    core::PersistentOptions ref = opt;
    ref.policy = core::IterationPolicy::kRelaunch;
    (void)core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), ra, rb, shape,
                                                    sweeps, ref);

    core::PersistentOptions sh = opt;
    sh.policy = persistent_policy ? core::IterationPolicy::kPersistent
                                  : core::IterationPolicy::kRelaunch;
    sh.shard = core::ShardPolicy::sharded(devices);
    Grid2D<float> sa = src, sb(w, h);
    const auto stats = core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), sa,
                                                                 sb, shape, sweeps, sh);
    EXPECT_LE(stats.devices, devices);
    EXPECT_GE(stats.devices, 1);
    ASSERT_TRUE(bits_equal(ra.data(), sa.data(), static_cast<std::size_t>(src.size())))
        << "policy=" << (persistent_policy ? "persistent" : "relaunch")
        << " devices=" << devices << " tiles=" << opt.tiles << " t=" << opt.t
        << " sweeps=" << sweeps << " grid=" << w << "x" << h;
    const std::size_t bytes = static_cast<std::size_t>(src.size()) * sizeof(float);
    EXPECT_EQ(fnv1a(ra.data(), bytes), fnv1a(sa.data(), bytes));
  }
}

TEST(ShardDifferential, Randomized3D) {
  const int cases = std::max(1, total_cases() / 3);
  const std::uint64_t seed0 = base_seed() + 0x3d000000u;
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(c);
    SCOPED_TRACE("3D case seed=" + std::to_string(seed));
    SplitMix64 rng(seed);
    const Index nx = 24 + static_cast<Index>(rng.next_below(24));
    const Index ny = 24 + static_cast<Index>(rng.next_below(24));
    const Index nz = 24 + static_cast<Index>(rng.next_below(32));
    const core::StencilShape<float> shape = random_star3d(rng);
    core::PersistentOptions opt;
    opt.t = 1 + static_cast<int>(rng.next_below(2));
    opt.tiles = static_cast<int>(rng.next_below(5));
    const int sweeps = static_cast<int>(rng.next_below(5));
    const int devices = 1 + c % 4;
    const bool persistent_policy = rng.next_below(2) == 0;

    Grid3D<float> src(nx, ny, nz);
    fill_random(src, seed ^ 0x51ed2701u);

    Grid3D<float> ra = src, rb(nx, ny, nz);
    core::PersistentOptions ref = opt;
    ref.policy = core::IterationPolicy::kRelaunch;
    (void)core::iterate_stencil3d_persistent<float>(sim::tesla_v100(), ra, rb, shape,
                                                    sweeps, ref);

    core::PersistentOptions sh = opt;
    sh.policy = persistent_policy ? core::IterationPolicy::kPersistent
                                  : core::IterationPolicy::kRelaunch;
    sh.shard = core::ShardPolicy::sharded(devices);
    Grid3D<float> sa = src, sb(nx, ny, nz);
    const auto stats = core::iterate_stencil3d_persistent<float>(sim::tesla_v100(), sa,
                                                                 sb, shape, sweeps, sh);
    EXPECT_LE(stats.devices, devices);
    ASSERT_TRUE(bits_equal(ra.data(), sa.data(), static_cast<std::size_t>(src.size())))
        << "policy=" << (persistent_policy ? "persistent" : "relaunch")
        << " devices=" << devices << " tiles=" << opt.tiles << " t=" << opt.t
        << " sweeps=" << sweeps << " grid=" << nx << "x" << ny << "x" << nz;
  }
}

// ------------------------------------------- policy x shard interaction

TEST(ShardPolicyInteraction, AllCombinationsBitIdentical2D) {
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> src(193, 167);
  fill_random(src, 71);
  const int sweeps = 6;

  Grid2D<float> ra = src, rb(src.width(), src.height());
  core::iterate_stencil2d<float>(sim::tesla_v100(), ra, rb, shape, sweeps);

  for (const auto policy :
       {core::IterationPolicy::kRelaunch, core::IterationPolicy::kPersistent}) {
    for (int devices : {1, 2, 3, 4}) {
      core::PersistentOptions opt;
      opt.policy = policy;
      opt.shard = core::ShardPolicy::sharded(devices);
      Grid2D<float> pa = src, pb(src.width(), src.height());
      const auto stats = core::iterate_stencil2d_persistent<float>(
          sim::tesla_v100(), pa, pb, shape, sweeps, opt);
      EXPECT_EQ(stats.persistent, policy == core::IterationPolicy::kPersistent);
      EXPECT_TRUE(stats.sharded);
      ASSERT_TRUE(
          bits_equal(ra.data(), pa.data(), static_cast<std::size_t>(src.size())))
          << "policy=" << static_cast<int>(policy) << " devices=" << devices;
    }
  }
}

TEST(ShardPolicyInteraction, RelaunchShardingMatchesPersistentSharding3D) {
  // The satellite contract stated directly: relaunch-mode sharding and
  // persistent-mode sharding agree bit for bit (both also equal the
  // unsharded run, via transitivity with the differential suite).
  const core::StencilShape<float> shape = core::star3d<float>(1);
  Grid3D<float> src(33, 29, 41);
  fill_random(src, 73);
  const int sweeps = 5;

  core::PersistentOptions rel;
  rel.policy = core::IterationPolicy::kRelaunch;
  rel.shard = core::ShardPolicy::sharded(3);
  Grid3D<float> ra = src, rb(src.nx(), src.ny(), src.nz());
  (void)core::iterate_stencil3d_persistent<float>(sim::tesla_v100(), ra, rb, shape,
                                                  sweeps, rel);

  core::PersistentOptions per = rel;
  per.policy = core::IterationPolicy::kPersistent;
  Grid3D<float> pa = src, pb(src.nx(), src.ny(), src.nz());
  (void)core::iterate_stencil3d_persistent<float>(sim::tesla_v100(), pa, pb, shape,
                                                  sweeps, per);
  ASSERT_TRUE(bits_equal(ra.data(), pa.data(), static_cast<std::size_t>(src.size())));
}

TEST(ShardPolicyInteraction, ShardedIterateDriversMatchPlainDrivers) {
  // The iterate-driver face of the shard knob: iterate_stencil{2d,3d}_sharded
  // must match the plain double-buffered drivers bit for bit.
  const core::StencilShape<float> s2 = core::star2d<float>(1);
  Grid2D<float> a2(141, 123), b2(141, 123);
  fill_random(a2, 101);
  Grid2D<float> ra2 = a2, rb2 = b2;
  core::iterate_stencil2d<float>(sim::tesla_v100(), ra2, rb2, s2, 7);
  const auto st2 = core::iterate_stencil_sharded<float>(sim::tesla_v100(), a2, b2, s2, 7,
                                                        core::ShardPolicy::sharded(2));
  EXPECT_TRUE(st2.sharded);
  EXPECT_FALSE(st2.persistent);
  ASSERT_TRUE(bits_equal(ra2.data(), a2.data(), static_cast<std::size_t>(a2.size())));

  const core::StencilShape<float> s3 = core::star3d<float>(1);
  Grid3D<float> a3(27, 31, 37), b3(27, 31, 37);
  fill_random(a3, 103);
  Grid3D<float> ra3 = a3, rb3 = b3;
  core::iterate_stencil3d<float>(sim::tesla_v100(), ra3, rb3, s3, 5);
  const auto st3 = core::iterate_stencil_sharded<float>(
      sim::tesla_v100(), a3, b3, s3, 5, core::ShardPolicy::sharded(3),
      core::Stencil3DOptions{});
  EXPECT_TRUE(st3.sharded);
  ASSERT_TRUE(bits_equal(ra3.data(), a3.data(), static_cast<std::size_t>(a3.size())));
}

TEST(ShardPolicyInteraction, AutoPolicySelectsAndLogsDeterministically) {
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> src(129, 97);
  fill_random(src, 79);

  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  auto run_auto = [&](int sweeps) {
    Grid2D<float> a = src, b(src.width(), src.height());
    core::PersistentOptions opt;
    opt.shard = core::ShardPolicy::sharded(2);
    opt.tiles = 4;
    ::testing::internal::CaptureStderr();
    const auto stats = core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), a, b,
                                                                 shape, sweeps, opt);
    return std::pair(stats, ::testing::internal::GetCapturedStderr());
  };

  // One sweep cannot amortize residency: auto falls back to relaunch.
  const auto [s1, log1] = run_auto(1);
  EXPECT_FALSE(s1.persistent);
  EXPECT_TRUE(s1.sharded);
  EXPECT_NE(log1.find("iterate_stencil2d: policy=auto -> relaunch, shard=sharded("),
            std::string::npos)
      << log1;

  const auto [s4, log4] = run_auto(4);
  EXPECT_TRUE(s4.persistent);
  EXPECT_NE(log4.find("iterate_stencil2d: policy=auto -> persistent, shard=sharded("),
            std::string::npos)
      << log4;
  EXPECT_NE(log4.find("tiles=" + std::to_string(s4.tiles)), std::string::npos);

  // Deterministic: the same run logs the same line, byte for byte.
  const auto [s4b, log4b] = run_auto(4);
  EXPECT_EQ(log4, log4b);
  EXPECT_EQ(s4.tiles, s4b.tiles);
  EXPECT_EQ(s4.devices, s4b.devices);
  set_log_level(before);
}

// ------------------------------------------------ property / stress tests

TEST(PeerChannelProperty, OutOfOrderPacingPreservesEpochPayloads) {
  // Producer and consumer run with adversarial random pacing: the producer
  // bursts as far ahead as backpressure allows, the consumer drains in
  // random-sized gulps after random yields. Every epoch's payload must be
  // intact at consumption time, and the depth window must never be
  // violated. (Seeded: failures reproduce.)
  for (const int depth : {2, 3, 5}) {
    sim::HaloChannel ch;
    constexpr std::size_t kSlot = 256;
    constexpr std::int64_t kEpochs = 2000;
    ch.configure(kSlot, depth);
    std::atomic<bool> fail{false};

    std::thread producer([&] {
      SplitMix64 rng(101);
      for (std::int64_t e = 0; e < kEpochs; ++e) {
        while (!ch.can_publish(e)) std::this_thread::yield();
        std::memset(ch.publish_slot(e), static_cast<int>(e % 251), kSlot);
        if (rng.next_below(7) == 0) std::this_thread::yield();
        ch.publish(e);
      }
    });
    std::thread consumer([&] {
      SplitMix64 rng(202);
      for (std::int64_t e = 0; e < kEpochs; ++e) {
        while (!ch.available(e)) std::this_thread::yield();
        if (rng.next_below(5) == 0) std::this_thread::yield();
        const auto* p = reinterpret_cast<const unsigned char*>(ch.peek(e));
        const auto expect = static_cast<unsigned char>(e % 251);
        for (std::size_t i = 0; i < kSlot; ++i) {
          if (p[i] != expect) {
            fail.store(true);
            break;
          }
        }
        ch.release(e);
      }
    });
    producer.join();
    consumer.join();
    EXPECT_FALSE(fail.load()) << "payload corrupted at depth " << depth;
  }
}

TEST(PeerChannelProperty, ShardCountExceedsTileCount) {
  // A domain too small for the requested shard count must clamp to fewer
  // devices (never produce empty shards or deadlock) and stay bit-exact.
  PoolSizeGuard guard;
  ThreadPool::reset_global(1);
  const core::StencilShape<float> shape = core::star2d<float>(2);  // fat halo
  Grid2D<float> src(65, 24);  // few bands available
  fill_random(src, 83);
  Grid2D<float> ra = src, rb(src.width(), src.height());
  core::PersistentOptions ref;
  ref.policy = core::IterationPolicy::kRelaunch;
  (void)core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), ra, rb, shape, 4,
                                                  ref);
  for (int devices : {4, 8, 16}) {
    core::PersistentOptions opt;
    opt.policy = core::IterationPolicy::kPersistent;
    opt.shard = core::ShardPolicy::sharded(devices);
    Grid2D<float> pa = src, pb(src.width(), src.height());
    const auto stats = core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), pa,
                                                                 pb, shape, 4, opt);
    EXPECT_LE(stats.devices, devices);
    EXPECT_GE(stats.devices, 1);
    ASSERT_TRUE(bits_equal(ra.data(), pa.data(), static_cast<std::size_t>(src.size())))
        << "requested devices=" << devices << " used=" << stats.devices;
  }
}

TEST(PeerChannelProperty, PoolSizeOneEverywhereIsDeadlockFree) {
  // Worst case for the cooperative scheduler: the global pool has one
  // worker AND every device slice has one worker, with many tiles per
  // shard and a long run. Completion alone proves deadlock-freedom; the
  // parity check proves the wavefront never skewed.
  PoolSizeGuard guard;
  ThreadPool::reset_global(1);
  std::vector<sim::DeviceOptions> slices(3);
  for (auto& s : slices) s.threads = 1;
  sim::DeviceGroup group(std::move(slices));

  Grid2D<float> src(96, 144);
  fill_random(src, 89);
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> ra = src, rb(src.width(), src.height());
  core::iterate_stencil2d<float>(sim::tesla_v100(), ra, rb, shape, 40);

  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  opt.shard = core::ShardPolicy::sharded(3, &group);
  opt.tiles = 12;  // 4 tiles per 1-worker device
  Grid2D<float> pa = src, pb(src.width(), src.height());
  const auto stats = core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), pa, pb,
                                                               shape, 40, opt);
  EXPECT_EQ(stats.devices, 3);
  ASSERT_TRUE(bits_equal(ra.data(), pa.data(), static_cast<std::size_t>(src.size())));
}

// ---------------------------------------------- devices, counters, streams

TEST(DeviceTest, CountersObserveSeamTraffic) {
  std::vector<sim::DeviceOptions> slices(2);
  for (auto& s : slices) s.threads = 1;
  sim::DeviceGroup group(std::move(slices));

  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> a(128, 128), b(128, 128);
  fill_random(a, 91);
  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  opt.shard = core::ShardPolicy::sharded(2, &group);
  opt.tiles = 4;
  const int sweeps = 6;
  const auto stats =
      core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), a, b, shape, sweeps, opt);
  ASSERT_EQ(stats.devices, 2);

  std::uint64_t total_sweeps = 0;
  std::uint64_t seam_epochs = 0;
  for (int d = 0; d < group.size(); ++d) {
    auto& c = group.device(d).counters();
    total_sweeps += c.sweeps.load();
    seam_epochs += c.seam_epochs_out.load();
    EXPECT_GE(c.halo_bytes_out.load(), c.seam_bytes_out.load());
  }
  EXPECT_EQ(total_sweeps, static_cast<std::uint64_t>(stats.tiles) * sweeps);
  // Each side of the one seam publishes epochs 0..sweeps-2 plus the staged
  // initial boundary (epoch 0 of the load phase when no fused first sweep).
  EXPECT_GT(seam_epochs, 0u);
}

TEST(DeviceTest, DeviceStreamsRunOnDeviceSlice) {
  sim::DeviceGroup group(sim::DeviceGroup::even_slices(2));
  sim::Device& dev = group.device(1);
  std::atomic<int> ran{0};
  std::atomic<bool> on_device_pool{false};
  sim::Stream& s = dev.stream();
  for (int i = 0; i < 8; ++i) {
    s.host([&, i] {
      if (dev.pool().on_worker_thread()) on_device_pool.store(true);
      // FIFO: op i runs after every earlier op.
      int expect = i;
      ran.compare_exchange_strong(expect, i + 1);
    });
  }
  s.synchronize();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_TRUE(on_device_pool.load());
  EXPECT_GE(dev.stream_count(), 1u);
}

TEST(DeviceTest, SharedGroupsAreCachedAndReusable) {
  sim::DeviceGroup& g2 = sim::DeviceGroup::shared(2);
  EXPECT_EQ(&g2, &sim::DeviceGroup::shared(2));
  EXPECT_EQ(g2.size(), 2);

  // Back-to-back sharded runs on the cached group reuse its workspaces.
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> src(161, 143);
  fill_random(src, 97);
  Grid2D<float> ra = src, rb(src.width(), src.height());
  core::iterate_stencil2d<float>(sim::tesla_v100(), ra, rb, shape, 4);
  for (int run = 0; run < 3; ++run) {
    core::PersistentOptions opt;
    opt.policy = core::IterationPolicy::kPersistent;
    opt.shard = core::ShardPolicy::sharded(2);
    Grid2D<float> pa = src, pb(src.width(), src.height());
    (void)core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), pa, pb, shape, 4,
                                                    opt);
    ASSERT_TRUE(bits_equal(ra.data(), pa.data(), static_cast<std::size_t>(src.size())))
        << "run " << run;
  }
}

TEST(DeviceTest, PostHookAndAuxFieldShardAcrossDevices) {
  // The two-field wave update (post hook + resident aux) under sharding:
  // both policies, 3 devices, must match the single relaunch path.
  core::StencilShape<float> lap;
  lap.dims = 2;
  lap.order = 1;
  lap.taps = {{0, 0, 0, -4.0f},
              {1, 0, 0, 1.0f},
              {-1, 0, 0, 1.0f},
              {0, 1, 0, 1.0f},
              {0, -1, 0, 1.0f}};
  const Index n = 144;
  auto post = [](GridView2D<float> next, GridView2D<const float> cur,
                 GridView2D<float> aux) {
    for (Index y = 0; y < next.height(); ++y) {
      for (Index x = 0; x < next.width(); ++x) {
        const float lapv = next.at(x, y);
        const float p = cur.at(x, y);
        next.at(x, y) = 2.0f * p - aux.at(x, y) + 0.2f * lapv;
        aux.at(x, y) = p;
      }
    }
  };
  Grid2D<float> p0(n, n, 0.0f), prev0(n, n, 0.0f);
  p0.at(n / 2, n / 2) = 1.0f;
  prev0.at(n / 2, n / 2) = 0.9f;

  Grid2D<float> rp = p0, rs(n, n), rprev = prev0;
  core::PersistentOptions ref;
  ref.policy = core::IterationPolicy::kRelaunch;
  core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), rp, rs, lap, 10, ref, post,
                                            &rprev);
  for (const auto policy :
       {core::IterationPolicy::kRelaunch, core::IterationPolicy::kPersistent}) {
    Grid2D<float> p = p0, s(n, n), prev = prev0;
    core::PersistentOptions opt;
    opt.policy = policy;
    opt.shard = core::ShardPolicy::sharded(3);
    opt.tiles = 6;
    core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), p, s, lap, 10, opt, post,
                                              &prev);
    ASSERT_TRUE(bits_equal(rp.data(), p.data(), static_cast<std::size_t>(rp.size())))
        << "policy=" << static_cast<int>(policy);
    ASSERT_TRUE(
        bits_equal(rprev.data(), prev.data(), static_cast<std::size_t>(rprev.size())))
        << "policy=" << static_cast<int>(policy);
  }
}

}  // namespace
