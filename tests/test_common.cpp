// Common utilities: grids/views/border policy, RNG determinism, stats,
// tables, paper-data registry consistency.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "common/grid.hpp"
#include "core/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/stencil_suite.hpp"
#include "paperdata/paper_values.hpp"

namespace {

using namespace ssam;

TEST(Grid2D, RowMajorLayoutAndViews) {
  Grid2D<int> g(4, 3);
  int v = 0;
  for (Index y = 0; y < 3; ++y) {
    for (Index x = 0; x < 4; ++x) g.at(x, y) = v++;
  }
  EXPECT_EQ(g.data()[5], g.at(1, 1));
  const GridView2D<const int> view = g.cview();
  EXPECT_EQ(view.at(3, 2), 11);
  EXPECT_EQ(view.pitch(), 4);
}

TEST(Grid2D, BorderPolicies) {
  Grid2D<int> g(3, 2);
  g.at(0, 0) = 7;
  g.at(2, 1) = 9;
  const auto view = g.cview();
  EXPECT_EQ(view.read(-5, -5, Border::kClamp), 7);
  EXPECT_EQ(view.read(10, 10, Border::kClamp), 9);
  EXPECT_EQ(view.read(-1, 0, Border::kZero), 0);
  EXPECT_EQ(view.read(0, 0, Border::kZero), 7);
}

TEST(Grid3D, SliceSharesStorage) {
  Grid3D<float> g(4, 3, 2);
  g.at(1, 2, 1) = 5.0f;
  const GridView2D<float> slice = g.view().slice(1);
  EXPECT_EQ(slice.at(1, 2), 5.0f);
  slice.at(0, 0) = 3.0f;
  EXPECT_EQ(g.at(0, 0, 1), 3.0f);
}

TEST(Grid, RejectsEmptyExtents) {
  EXPECT_THROW(Grid2D<int>(0, 5), PreconditionError);
  EXPECT_THROW((Grid3D<int>(4, 0, 4)), PreconditionError);
}

TEST(Rng, DeterministicAcrossRuns) {
  std::vector<double> a(100), b(100);
  fill_random(a, 123);
  fill_random(b, 123);
  EXPECT_EQ(a, b);
  fill_random(b, 124);
  EXPECT_NE(a, b);
}

TEST(Rng, RangeRespected) {
  std::vector<float> v(10000);
  fill_random(v, 9, 2.0, 3.0);
  for (float x : v) {
    ASSERT_GE(x, 2.0f);
    ASSERT_LT(x, 3.0f);
  }
}

TEST(Stats, DiffMetrics) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {1.0f, 2.5f, 3.0f};
  EXPECT_FLOAT_EQ(max_abs_diff<float>(a, b), 0.5f);
  EXPECT_NEAR(normalized_max_diff<float>(a, b), 0.5 / 3.0, 1e-7);
  EXPECT_THROW((void)max_abs_diff<float>(a, std::vector<float>{1.0f}), PreconditionError);
}

TEST(Stats, RunningStats) {
  RunningStats s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
}

TEST(Table, AlignsColumns) {
  ConsoleTable t({"a", "long-header"});
  t.add_row({"x"});
  t.add_row({"longer-cell", "y"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| a           | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| longer-cell | y           |"), std::string::npos);
}

TEST(PaperData, Table3MatchesSuiteRegistry) {
  // Every Table 3 row must have a suite shape with the same order; fpp is
  // recorded verbatim in the shape metadata.
  for (const auto& row : paper::table3()) {
    const auto shape = core::suite_stencil<float>(row.benchmark);
    EXPECT_EQ(shape.order, row.k) << row.benchmark;
    EXPECT_EQ(shape.fpp_paper, row.fpp) << row.benchmark;
  }
}

TEST(PaperData, QuotedResultsSane) {
  EXPECT_EQ(paper::table1().size(), 4u);
  EXPECT_EQ(paper::table2().size(), 2u);
  EXPECT_EQ(paper::table3().size(), 15u);
  for (const auto& q : paper::quoted_temporal_results()) EXPECT_GT(q.gcells_per_s, 0.0);
  EXPECT_EQ(paper::cufft_runtimes().size(), 2u);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 100), 1);
}

/// RAII env mutation so a throwing expectation can't leak a malformed knob
/// into later tests (config() caches at first use, but config_from_env()
/// re-reads — and other suites in this binary call it).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> old_;
};

TEST(Config, MalformedThreadsThrowsInsteadOfSilentFallback) {
  // std::atoi would have turned "four" into 0 and silently used the
  // hardware default; strict from_chars parsing must refuse it, naming the
  // variable like the SSAM_FAULT_SPEC grammar does.
  for (const char* bad : {"four", "2x", "0", "-3", " 4", "4 "}) {
    ScopedEnv env("SSAM_THREADS", bad);
    EXPECT_THROW((void)core::config_from_env(), PreconditionError) << bad;
    try {
      (void)core::config_from_env();
    } catch (const PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find("SSAM_THREADS"), std::string::npos);
    }
  }
}

TEST(Config, MalformedDevicesThrows) {
  for (const char* bad : {"2x", "two", "0", "-1", "1.5"}) {
    ScopedEnv env("SSAM_DEVICES", bad);
    EXPECT_THROW((void)core::config_from_env(), PreconditionError) << bad;
  }
}

TEST(Config, WellFormedEnvValuesParse) {
  ScopedEnv threads("SSAM_THREADS", "3");
  ScopedEnv devices("SSAM_DEVICES", "5");
  const core::SimConfig c = core::config_from_env();
  EXPECT_EQ(c.threads, 3);
  EXPECT_EQ(c.devices, 5);
}

TEST(Config, EmptyEnvValueFallsBackToDefault) {
  // An empty assignment (SSAM_THREADS= ./run) means "unset" by shell
  // convention, not "malformed".
  ScopedEnv threads("SSAM_THREADS", "");
  ScopedEnv devices("SSAM_DEVICES", "");
  const core::SimConfig c = core::config_from_env();
  EXPECT_GE(c.threads, 1);
  EXPECT_EQ(c.devices, 2);
}

TEST(Config, DescribeNamesTuneKnobs) {
  const core::SimConfig c = core::config_from_env();
  EXPECT_NE(c.describe().find("tune_cache="), std::string::npos);
}

}  // namespace
