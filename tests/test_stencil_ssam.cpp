// SSAM 2D/3D stencils vs the scalar reference across the whole Table 3 suite.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil_suite.hpp"
#include "gpusim/arch.hpp"
#include "reference/stencil.hpp"

namespace {

using namespace ssam;

template <typename T>
void check_stencil2d(const core::StencilShape<T>& shape, Index width, Index height,
                     core::StencilOptions opt = {}) {
  Grid2D<T> in(width, height);
  fill_random(in, 11);
  Grid2D<T> got(width, height, T{-99});
  Grid2D<T> want(width, height);
  core::stencil2d_ssam<T>(sim::tesla_v100(), in.cview(), shape, got.view(), opt);
  ref::stencil2d<T>(in.cview(), shape.taps, want.view());
  const double tol = verify_tolerance<T>(shape.taps.size());
  EXPECT_LE(normalized_max_diff<T>({got.data(), static_cast<std::size_t>(got.size())},
                                   {want.data(), static_cast<std::size_t>(want.size())}),
            tol)
      << shape.name << " " << width << "x" << height;
}

template <typename T>
void check_stencil3d(const core::StencilShape<T>& shape, Index nx, Index ny, Index nz,
                     core::Stencil3DOptions opt = {}) {
  Grid3D<T> in(nx, ny, nz);
  fill_random(in, 13);
  Grid3D<T> got(nx, ny, nz, T{-99});
  Grid3D<T> want(nx, ny, nz);
  core::stencil3d_ssam<T>(sim::tesla_v100(), in.cview(), shape, got.view(), opt);
  ref::stencil3d<T>(in.cview(), shape.taps, want.view());
  const double tol = verify_tolerance<T>(shape.taps.size());
  EXPECT_LE(normalized_max_diff<T>({got.data(), static_cast<std::size_t>(got.size())},
                                   {want.data(), static_cast<std::size_t>(want.size())}),
            tol)
      << shape.name << " " << nx << "x" << ny << "x" << nz;
}

class Suite2D : public ::testing::TestWithParam<std::string> {};
class Suite3D : public ::testing::TestWithParam<std::string> {};

TEST_P(Suite2D, MatchesReferenceFloat) {
  check_stencil2d<float>(core::suite_stencil<float>(GetParam()), 96, 72);
}
TEST_P(Suite2D, MatchesReferenceDouble) {
  check_stencil2d<double>(core::suite_stencil<double>(GetParam()), 96, 72);
}
TEST_P(Suite2D, NonDivisibleDomain) {
  check_stencil2d<float>(core::suite_stencil<float>(GetParam()), 83, 61);
}

INSTANTIATE_TEST_SUITE_P(Table3, Suite2D,
                         ::testing::Values("2d5pt", "2d9pt", "2d13pt", "2d17pt", "2d21pt",
                                           "2ds25pt", "2d25pt", "2d64pt", "2d81pt",
                                           "2d121pt"),
                         [](const auto& info) { return info.param; });

TEST_P(Suite3D, MatchesReferenceFloat) {
  check_stencil3d<float>(core::suite_stencil<float>(GetParam()), 64, 24, 20);
}
TEST_P(Suite3D, MatchesReferenceDouble) {
  check_stencil3d<double>(core::suite_stencil<double>(GetParam()), 64, 24, 20);
}
TEST_P(Suite3D, NonDivisibleDomain) {
  check_stencil3d<float>(core::suite_stencil<float>(GetParam()), 45, 19, 13);
}

INSTANTIATE_TEST_SUITE_P(Table3, Suite3D,
                         ::testing::Values("3d7pt", "3d13pt", "3d27pt", "3d125pt", "poisson"),
                         [](const auto& info) { return info.param; });

TEST(StencilSsam, TinyDomains) {
  check_stencil2d<float>(core::suite_stencil<float>("2d5pt"), 7, 5);
  check_stencil3d<float>(core::suite_stencil<float>("3d7pt"), 9, 5, 4);
}

TEST(StencilSsam, WindowSizes) {
  for (int p : {1, 2, 4, 8}) {
    core::StencilOptions opt;
    opt.p = p;
    check_stencil2d<float>(core::suite_stencil<float>("2d9pt"), 64, 48, opt);
  }
  for (int warps : {4, 8, 16}) {
    core::Stencil3DOptions opt;
    opt.warps = warps;
    check_stencil3d<float>(core::suite_stencil<float>("3d7pt"), 48, 16, 24, opt);
  }
}

TEST(StencilSuite, HasFifteenEntriesWithTable3Metadata) {
  auto suite = core::stencil_suite<float>();
  ASSERT_EQ(suite.size(), 15u);
  // Spot checks straight from Table 3.
  EXPECT_EQ(suite[0].name, "2d5pt");
  EXPECT_EQ(suite[0].order, 1);
  EXPECT_EQ(suite[0].fpp_paper, 9);
  EXPECT_EQ(suite[0].fpp_measured(), 9);
  EXPECT_EQ(suite[5].name, "2ds25pt");
  EXPECT_EQ(suite[5].order, 6);
  EXPECT_EQ(suite[5].taps.size(), 25u);
  EXPECT_EQ(suite[13].name, "3d125pt");
  EXPECT_EQ(suite[13].taps.size(), 125u);
  EXPECT_EQ(suite[14].name, "poisson");
  EXPECT_EQ(suite[14].taps.size(), 19u);
}

TEST(SystolicPlan, MinimalShiftsForStarVsBox) {
  auto star = core::build_plan(core::star2d<float>(4).taps);
  auto box = core::build_plan(core::box2d<float>(9, 9).taps);
  // Same radius: both sweep the full column range in 2D.
  EXPECT_EQ(star.horizontal_shifts(), 8);
  EXPECT_EQ(box.horizontal_shifts(), 8);
  // 3D star: off-plane passes are single-column, so a minimal plan shifts
  // only in the dz=0 pass; a dense plan shifts everywhere (Section 5.4).
  auto star3_min = core::build_plan(core::star3d<float>(1).taps);
  auto star3_dense = core::build_plan(core::star3d<float>(1).taps, /*dense=*/true);
  EXPECT_EQ(star3_min.horizontal_shifts(), 2);
  EXPECT_EQ(star3_dense.horizontal_shifts(), 6);
  EXPECT_LT(star3_min.horizontal_shifts(), star3_dense.horizontal_shifts());
}

}  // namespace
