// Chain-compiler suite (core/chain.hpp): the fused persistent chain run
// must be BIT-IDENTICAL to the staged per-stage reference for every chain
// the builder accepts — that is the subsystem's one results invariant, and
// this file defends it the way PR 5 defended sharding: with a seeded
// randomized differential suite (>= 200 cases by default; the failing seed
// is printed so any case reproduces with SSAM_CHAIN_SEED).
//
// Randomized axes: chain depth {2..8}, stage mix (plain stencils of random
// shape/coefficients, temporally blocked stages, dual-stencil stages with
// an element-wise combine, element-wise map epilogues), grid sizes, tile
// counts, pool sizes {1,2,4}, and ShardPolicy {single, sharded(2),
// sharded(0) — the env-resolved device count CI's chain matrix varies}.
//
// Directed tests pin the edges: depth-1 degradation to the staged path,
// temporal/plain mixes, dual-vs-separate bitwise equivalence (the
// zero-coefficient padding must be a pure no-op), ChainGraph lowering
// (diamond -> dual stage, map fusion, identity lift, rejection of
// non-linearizable DAGs), the kChain job kind through run_job and the
// server, and warm-workspace reuse across staged and fused runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/grid.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/chain.hpp"
#include "core/iterate_persistent.hpp"
#include "core/job.hpp"
#include "core/server.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/device.hpp"
#include "test_util.hpp"

namespace {

using namespace ssam;
using ssam::testing::bits_equal;
using ssam::testing::PoolSizeGuard;

int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return fallback;
}

/// >= 200 seeded cases locally; sanitizer CI legs pin SSAM_CHAIN_CASES=40.
int total_cases() { return env_int("SSAM_CHAIN_CASES", 200); }
std::uint64_t base_seed() {
  return static_cast<std::uint64_t>(env_int("SSAM_CHAIN_SEED", 0xc4a15));
}

core::StencilShape<float> random_shape(SplitMix64& rng) {
  core::StencilShape<float> s;
  switch (rng.next_below(3)) {
    case 0:
      s = core::star2d<float>(1);
      break;
    case 1:
      s = core::star2d<float>(2);
      break;
    default:
      s = core::box2d<float>(3, 3);
      break;
  }
  for (auto& tap : s.taps) tap.coeff = static_cast<float>(rng.next_in(-0.5, 0.5));
  return s;
}

// Fixed pools of pure element-wise functions (the suite checks bit-parity
// between two paths running the SAME function objects, so any deterministic
// float function qualifies).
std::function<float(float, float)> random_combine(SplitMix64& rng) {
  switch (rng.next_below(3)) {
    case 0:
      return [](float a, float b) { return a + b; };
    case 1:
      return [](float a, float b) { return a - 0.25f * b; };
    default:
      return [](float a, float b) { return std::abs(a) + std::abs(b); };
  }
}

std::function<float(float)> random_map(SplitMix64& rng) {
  switch (rng.next_below(3)) {
    case 0:
      return [](float v) { return v < 0.0f ? 0.0f : v; };  // relu threshold
    case 1:
      return [](float v) { return 1.5f * v; };
    default:
      return [](float v) { return std::abs(v); };
  }
}

core::ChainStage<float> random_stage(SplitMix64& rng) {
  core::ChainStage<float> st;
  const std::uint64_t pick = rng.next_below(8);
  if (pick < 4) {
    st = core::ChainStage<float>::stencil(random_shape(rng));
  } else if (pick < 6) {
    // Temporal: t in {2,3} on radius 1 keeps 32 - t*span >= 8 trivially.
    core::StencilShape<float> s = core::star2d<float>(1);
    for (auto& tap : s.taps) tap.coeff = static_cast<float>(rng.next_in(-0.4, 0.4));
    st = core::ChainStage<float>::stencil(std::move(s),
                                          2 + static_cast<int>(rng.next_below(2)));
  } else {
    st = core::ChainStage<float>::dual_stencil(random_shape(rng), random_shape(rng),
                                               random_combine(rng));
  }
  if (rng.next_below(3) == 0) st = st.with_map(random_map(rng));
  return st;
}

// ------------------------------------------------ randomized differential

TEST(ChainDifferential, RandomizedFusedMatchesStaged) {
  PoolSizeGuard guard;
  const int cases = total_cases();
  const std::uint64_t seed0 = base_seed();
  int cur_pool = 0;
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(c);
    SCOPED_TRACE("chain case seed=" + std::to_string(seed) +
                 " (reproduce: SSAM_CHAIN_CASES=1 SSAM_CHAIN_SEED=" +
                 std::to_string(seed) + ")");
    SplitMix64 rng(seed);
    const Index w = 33 + static_cast<Index>(rng.next_below(160));
    const Index h = 40 + static_cast<Index>(rng.next_below(170));
    const int depth = 2 + static_cast<int>(rng.next_below(7));  // {2..8}
    std::vector<core::ChainStage<float>> stages;
    stages.reserve(static_cast<std::size_t>(depth));
    for (int s = 0; s < depth; ++s) stages.push_back(random_stage(rng));

    const int pool = c % 3 == 0 ? 1 : (c % 3 == 1 ? 2 : 4);
    if (pool != cur_pool) {
      ThreadPool::reset_global(pool);
      cur_pool = pool;
    }

    Grid2D<float> src(w, h);
    fill_random(src, seed ^ 0x9e3779b9u);

    Grid2D<float> staged(w, h);
    core::PersistentOptions ref;
    ref.policy = core::IterationPolicy::kRelaunch;
    const auto rs = core::run_chain2d<float>(sim::tesla_v100(), src, staged, stages, ref);
    EXPECT_FALSE(rs.persistent);

    core::PersistentOptions opt;
    opt.policy = core::IterationPolicy::kPersistent;
    opt.tiles = static_cast<int>(rng.next_below(6));  // 0 = auto
    const bool shard = c % 2 == 1;
    // Alternate sharded cases between a pinned device count and the
    // environment-resolved one (sharded(0) reads SSAM_DEVICES — the CI
    // chain matrix axis), so the same seeds cover every matrix cell.
    if (shard) {
      opt.shard = (c % 4 == 1) ? core::ShardPolicy::sharded(2)
                               : core::ShardPolicy::sharded(0);
    }
    Grid2D<float> fused(w, h);
    const auto fs = core::run_chain2d<float>(sim::tesla_v100(), src, fused, stages, opt);
    EXPECT_TRUE(fs.persistent);
    EXPECT_EQ(fs.sweeps, depth);
    ASSERT_TRUE(bits_equal(staged.data(), fused.data(),
                           static_cast<std::size_t>(src.size())))
        << "depth=" << depth << " pool=" << pool << " tiles=" << opt.tiles
        << " shard="
        << (!shard ? "single" : (c % 4 == 1 ? "sharded(2)" : "sharded(env)"))
        << " grid=" << w << "x" << h;
  }
}

// ------------------------------------------------------------- edge cases

TEST(ChainEdge, Depth1DegradesToSingleLaunch) {
  core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> src(97, 83);
  fill_random(src, 42);

  Grid2D<float> out(97, 83);
  const auto st = core::run_chain2d<float>(
      sim::tesla_v100(), src, out, {core::ChainStage<float>::stencil(shape)});
  EXPECT_FALSE(st.persistent) << "a depth-1 chain has no inter-stage flow to fuse";
  EXPECT_EQ(st.sweeps, 1);

  // Independent reference: one sweep of the iteration engine's relaunch path.
  Grid2D<float> ra = src, rb(97, 83);
  core::PersistentOptions ref;
  ref.policy = core::IterationPolicy::kRelaunch;
  (void)core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), ra, rb, shape, 1,
                                                  ref);
  ASSERT_TRUE(bits_equal(ra.data(), out.data(), static_cast<std::size_t>(out.size())));
}

TEST(ChainEdge, TemporalAndPlainStagesMix) {
  PoolSizeGuard guard;
  ThreadPool::reset_global(4);
  core::StencilShape<float> s1 = core::star2d<float>(1);
  core::StencilShape<float> s2 = core::star2d<float>(2);
  std::vector<core::ChainStage<float>> stages = {
      core::ChainStage<float>::stencil(s1, 3),  // temporal t=3
      core::ChainStage<float>::stencil(s2),     // plain, deeper reach
      core::ChainStage<float>::dual_stencil(
          s1, s2, [](float a, float b) { return a + 0.5f * b; }),
      core::ChainStage<float>::stencil(s1, 2).with_map(
          [](float v) { return v < 0.0f ? 0.0f : v; }),
  };
  Grid2D<float> src(181, 149);
  fill_random(src, 7);

  Grid2D<float> staged(181, 149);
  core::PersistentOptions ref;
  ref.policy = core::IterationPolicy::kRelaunch;
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, staged, stages, ref);

  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  opt.tiles = 3;
  opt.shard = core::ShardPolicy::sharded(2);
  Grid2D<float> fused(181, 149);
  const auto st = core::run_chain2d<float>(sim::tesla_v100(), src, fused, stages, opt);
  EXPECT_TRUE(st.persistent);
  EXPECT_TRUE(st.sharded);
  ASSERT_TRUE(
      bits_equal(staged.data(), fused.data(), static_cast<std::size_t>(src.size())));
}

TEST(ChainEdge, DualStageMatchesSeparateBranchesBitwise) {
  // The zero-coefficient padding that aligns the two shuffle schedules must
  // be a bitwise no-op: a dual stage equals running each branch as its own
  // single-stage chain and combining on the host.
  SplitMix64 rng(base_seed());
  core::StencilShape<float> sa = random_shape(rng);
  core::StencilShape<float> sb = random_shape(rng);
  auto join = [](float a, float b) { return a - 0.25f * b; };
  Grid2D<float> src(121, 95);
  fill_random(src, 11);

  Grid2D<float> dual_out(121, 95);
  (void)core::run_chain2d<float>(
      sim::tesla_v100(), src, dual_out,
      {core::ChainStage<float>::dual_stencil(sa, sb, join)});

  Grid2D<float> oa(121, 95), ob(121, 95);
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, oa,
                                 {core::ChainStage<float>::stencil(sa)});
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, ob,
                                 {core::ChainStage<float>::stencil(sb)});
  for (Index i = 0; i < oa.size(); ++i) oa.data()[i] = join(oa.data()[i], ob.data()[i]);
  ASSERT_TRUE(
      bits_equal(oa.data(), dual_out.data(), static_cast<std::size_t>(src.size())));
}

TEST(ChainEdge, ValidationRejectsBadChains) {
  Grid2D<float> a(64, 64), b(64, 64);
  core::StencilShape<float> s = core::star2d<float>(1);
  const std::vector<core::ChainStage<float>> one = {core::ChainStage<float>::stencil(s)};
  EXPECT_THROW((void)core::run_chain2d<float>(sim::tesla_v100(), a, b, {}),
               PreconditionError);
  // Aliased input/output.
  EXPECT_THROW((void)core::run_chain2d<float>(sim::tesla_v100(), a, a, one),
               PreconditionError);
  // Mismatched grids.
  Grid2D<float> c(32, 64);
  EXPECT_THROW((void)core::run_chain2d<float>(sim::tesla_v100(), a, c, one),
               PreconditionError);
  // Dual stage with temporal blocking.
  core::ChainStage<float> bad = core::ChainStage<float>::dual_stencil(
      s, s, [](float x, float y) { return x + y; });
  bad.t = 2;
  EXPECT_THROW((void)core::run_chain2d<float>(sim::tesla_v100(), a, b, {bad}),
               PreconditionError);
}

// --------------------------------------------------------- graph lowering

TEST(ChainGraphLowering, DiamondBecomesDualStage) {
  core::StencilShape<float> blur = core::box2d<float>(3, 3);
  core::StencilShape<float> gx = core::star2d<float>(1);
  core::StencilShape<float> gy = core::star2d<float>(1);
  gx.taps = {{-1, 0, 0, -1.0f}, {1, 0, 0, 1.0f}};
  gy.taps = {{0, -1, 0, -1.0f}, {0, 1, 0, 1.0f}};

  core::ChainGraph<float> g;
  const int in = g.input();
  const int b = g.stencil(in, blur);
  const int x = g.stencil(b, gx);
  const int y = g.stencil(b, gy);
  const int m = g.combine(x, y, [](float a, float c) { return std::hypot(a, c); });
  const int th = g.map(m, [](float v) { return v > 0.5f ? v : 0.0f; });
  (void)th;
  const std::vector<core::ChainStage<float>> stages = g.compile();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_FALSE(stages[0].dual());
  EXPECT_TRUE(stages[1].dual());
  EXPECT_TRUE(static_cast<bool>(stages[1].map));

  // And the lowered chain holds the parity invariant.
  Grid2D<float> src(140, 101);
  fill_random(src, 5);
  Grid2D<float> staged(140, 101), fused(140, 101);
  core::PersistentOptions ref;
  ref.policy = core::IterationPolicy::kRelaunch;
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, staged, stages, ref);
  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, fused, stages, opt);
  ASSERT_TRUE(
      bits_equal(staged.data(), fused.data(), static_cast<std::size_t>(src.size())));
}

TEST(ChainGraphLowering, ConsecutiveMapsFuseIntoOneStage) {
  core::StencilShape<float> s = core::star2d<float>(1);
  core::ChainGraph<float> g;
  const int in = g.input();
  const int a = g.stencil(in, s);
  const int m1 = g.map(a, [](float v) { return v * 2.0f; });
  const int m2 = g.map(m1, [](float v) { return v + 1.0f; });
  (void)m2;
  const std::vector<core::ChainStage<float>> stages = g.compile();
  ASSERT_EQ(stages.size(), 1u);
  ASSERT_TRUE(static_cast<bool>(stages[0].map));
  EXPECT_FLOAT_EQ(stages[0].map(3.0f), 7.0f) << "maps must compose in graph order";
}

TEST(ChainGraphLowering, MapOnInputLiftsToIdentityStage) {
  core::StencilShape<float> s = core::star2d<float>(1);
  core::ChainGraph<float> g;
  const int in = g.input();
  const int m = g.map(in, [](float v) { return std::abs(v); });
  const int a = g.stencil(m, s);
  (void)a;
  const std::vector<core::ChainStage<float>> stages = g.compile();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].shape.taps.size(), 1u);
  EXPECT_TRUE(static_cast<bool>(stages[0].map));
}

TEST(ChainGraphLowering, RejectsNonLinearizableGraphs) {
  core::StencilShape<float> s = core::star2d<float>(1);
  {
    // Three-way fan-out.
    core::ChainGraph<float> g;
    const int in = g.input();
    (void)g.stencil(in, s);
    (void)g.stencil(in, s);
    (void)g.stencil(in, s);
    EXPECT_THROW((void)g.compile(), PreconditionError);
  }
  {
    // Two-way fan-out that never rejoins: two sinks.
    core::ChainGraph<float> g;
    const int in = g.input();
    (void)g.stencil(in, s);
    (void)g.stencil(in, s);
    EXPECT_THROW((void)g.compile(), PreconditionError);
  }
  {
    // Empty graph.
    core::ChainGraph<float> g;
    EXPECT_THROW((void)g.compile(), PreconditionError);
  }
  {
    // Combine whose branches are maps, not stencils.
    core::ChainGraph<float> g;
    const int in = g.input();
    const int m1 = g.map(in, [](float v) { return v + 1.0f; });
    const int m2 = g.map(in, [](float v) { return v - 1.0f; });
    (void)g.combine(m1, m2, [](float a, float b) { return a * b; });
    EXPECT_THROW((void)g.compile(), PreconditionError);
  }
}

// ------------------------------------------------------------ job surface

TEST(ChainJob, RunJobAndServerSubmitMatchDirectRun) {
  core::StencilShape<float> s1 = core::star2d<float>(1);
  core::StencilShape<float> s2 = core::box2d<float>(3, 3);
  std::vector<core::ChainStage<float>> stages = {
      core::ChainStage<float>::stencil(s1),
      core::ChainStage<float>::stencil(s2).with_map(
          [](float v) { return std::abs(v); }),
      core::ChainStage<float>::stencil(s1, 2),
  };
  Grid2D<float> src(150, 122);
  fill_random(src, 23);

  Grid2D<float> direct(150, 122);
  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, direct, stages, opt);

  // run_job dispatch.
  Grid2D<float> via_job(150, 122);
  core::JobHints hints;
  hints.policy = core::IterationPolicy::kPersistent;
  {
    Grid2D<float> in = src;
    const auto st = core::run_job(
        sim::tesla_v100(), core::SimJob::chain2d(in, via_job, stages, hints));
    EXPECT_TRUE(st.persistent);
    EXPECT_EQ(st.sweeps, 3);
  }
  ASSERT_TRUE(
      bits_equal(direct.data(), via_job.data(), static_cast<std::size_t>(src.size())));

  // Server dispatch (device-pinned, leased workspace).
  Grid2D<float> in = src;
  Grid2D<float> via_server(150, 122);
  core::SimServer server{core::ServerOptions{}};
  core::JobFuture fut =
      server.submit(core::SimJob::chain2d(in, via_server, stages, hints));
  const core::JobResult& r = fut.wait();
  ASSERT_EQ(r.status, core::JobStatus::kCompleted);
  EXPECT_EQ(r.run.sweeps, 3);
  ASSERT_TRUE(bits_equal(direct.data(), via_server.data(),
                         static_cast<std::size_t>(src.size())));
}

TEST(ChainJob, WarmWorkspaceServesStagedAndFusedRuns) {
  // One workspace across a staged run, a fused run, and a repeat of each:
  // the scratch block (staged intermediates) and the arena (fused residence
  // buffers) must not invalidate each other, and warm reuse must not change
  // results.
  core::StencilShape<float> s = core::star2d<float>(2);
  std::vector<core::ChainStage<float>> stages = {
      core::ChainStage<float>::stencil(s),
      core::ChainStage<float>::stencil(s).with_map(
          [](float v) { return 0.5f * v; }),
      core::ChainStage<float>::stencil(s),
  };
  Grid2D<float> src(133, 117);
  fill_random(src, 31);

  sim::PersistentWorkspace ws;
  core::PersistentOptions staged_opt;
  staged_opt.policy = core::IterationPolicy::kRelaunch;
  core::PersistentOptions fused_opt;
  fused_opt.policy = core::IterationPolicy::kPersistent;

  Grid2D<float> cold_staged(133, 117), cold_fused(133, 117);
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, cold_staged, stages,
                                 staged_opt, &ws);
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, cold_fused, stages, fused_opt,
                                 &ws);
  Grid2D<float> warm_staged(133, 117), warm_fused(133, 117);
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, warm_staged, stages,
                                 staged_opt, &ws);
  (void)core::run_chain2d<float>(sim::tesla_v100(), src, warm_fused, stages, fused_opt,
                                 &ws);
  ASSERT_TRUE(bits_equal(cold_staged.data(), cold_fused.data(),
                         static_cast<std::size_t>(src.size())));
  ASSERT_TRUE(bits_equal(cold_staged.data(), warm_staged.data(),
                         static_cast<std::size_t>(src.size())));
  ASSERT_TRUE(bits_equal(cold_staged.data(), warm_fused.data(),
                         static_cast<std::size_t>(src.size())));
}

}  // namespace
