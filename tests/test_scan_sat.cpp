// Scan and Summed Area Table kernels vs references, plus invariant checks.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/sat.hpp"
#include "core/scan.hpp"
#include "gpusim/arch.hpp"
#include "reference/scan.hpp"

namespace {

using namespace ssam;

TEST(WarpScan, MatchesSerialPrefixOn32Lanes) {
  const auto& arch = sim::tesla_v100();
  sim::LaunchConfig cfg{.grid = Dim3{1, 1, 1}, .block_threads = 32, .regs_per_thread = 16};
  sim::MemorySystem mem(arch);
  sim::BlockContext blk(arch, cfg, BlockId{}, &mem);
  sim::WarpContext& wc = blk.warp(0);
  sim::Reg<float> v = wc.iota(1.0f, 1.0f);  // 1..32
  const sim::Reg<float> s = core::warp_inclusive_scan(wc, v);
  for (int l = 0; l < 32; ++l) {
    const float want = static_cast<float>((l + 1) * (l + 2) / 2);
    EXPECT_FLOAT_EQ(s[l], want) << "lane " << l;
  }
  // Kogge-Stone: exactly 5 shuffle stages for a 32-lane warp (Figure 1e).
  EXPECT_EQ(blk.counters().shfl_ops, 5u);
}

class ScanSizes : public ::testing::TestWithParam<int> {};

TEST_P(ScanSizes, MatchesReference) {
  const int n = GetParam();
  std::vector<float> in(static_cast<std::size_t>(n));
  fill_random(in, 5, -1.0, 1.0);
  std::vector<float> got(in.size()), want(in.size());
  core::scan_inclusive<float>(sim::tesla_p100(), in, got);
  ref::inclusive_scan<float>(in, want);
  EXPECT_LE(normalized_max_diff<float>(got, want), verify_tolerance<float>(in.size()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(1, 31, 32, 33, 255, 256, 257, 1000, 4096, 65537,
                                           1 << 18));

TEST(Scan, PropertyLastElementIsTotal) {
  std::vector<double> in(10007);
  fill_random(in, 17, 0.0, 2.0);
  std::vector<double> got(in.size());
  core::scan_inclusive<double>(sim::tesla_v100(), in, got);
  const double total = std::accumulate(in.begin(), in.end(), 0.0);
  EXPECT_NEAR(got.back(), total, 1e-9 * in.size());
}

TEST(Scan, PropertyMonotoneForPositiveInput) {
  std::vector<float> in(5000);
  fill_random(in, 23, 0.01, 1.0);
  std::vector<float> got(in.size());
  core::scan_inclusive<float>(sim::tesla_v100(), in, got);
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_GE(got[i], got[i - 1]) << "at " << i;
  }
}

template <typename T>
void check_sat(Index width, Index height) {
  Grid2D<T> in(width, height);
  fill_random(in, 31, -1.0, 1.0);
  Grid2D<T> got(width, height), want(width, height);
  core::summed_area_table<T>(sim::tesla_v100(), in.cview(), got.view());
  ref::summed_area_table<T>(in.cview(), want.view());
  EXPECT_LE(normalized_max_diff<T>({got.data(), static_cast<std::size_t>(got.size())},
                                   {want.data(), static_cast<std::size_t>(want.size())}),
            verify_tolerance<T>(static_cast<std::size_t>(width * height)));
}

TEST(Sat, SmallSquare) { check_sat<float>(64, 64); }
TEST(Sat, NonDivisible) { check_sat<float>(97, 41); }
TEST(Sat, WideShort) { check_sat<double>(300, 5); }
TEST(Sat, NarrowTall) { check_sat<double>(5, 300); }

TEST(Sat, RectangleSumIdentity) {
  // Property: any rectangle sum from the SAT equals the direct sum.
  const Index width = 83, height = 57;
  Grid2D<double> in(width, height);
  fill_random(in, 37, 0.0, 1.0);
  Grid2D<double> sat(width, height);
  core::summed_area_table<double>(sim::tesla_p100(), in.cview(), sat.view());
  SplitMix64 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Index x0 = static_cast<Index>(rng.next_below(static_cast<std::uint64_t>(width)));
    Index x1 = static_cast<Index>(rng.next_below(static_cast<std::uint64_t>(width)));
    Index y0 = static_cast<Index>(rng.next_below(static_cast<std::uint64_t>(height)));
    Index y1 = static_cast<Index>(rng.next_below(static_cast<std::uint64_t>(height)));
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    double direct = 0;
    for (Index y = y0; y <= y1; ++y) {
      for (Index x = x0; x <= x1; ++x) direct += in.at(x, y);
    }
    const double from_sat = ref::sat_rect_sum<double>(sat.cview(), x0, y0, x1, y1);
    ASSERT_NEAR(from_sat, direct, 1e-7 * static_cast<double>(width * height));
  }
}

}  // namespace
