// Algebraic property tests and error-path (precondition) coverage.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/conv2d.hpp"
#include "core/scan.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil_suite.hpp"
#include "gpusim/arch.hpp"

namespace {

using namespace ssam;

// --- convolution algebra ------------------------------------------------------

TEST(ConvAlgebra, DeltaFilterIsIdentity) {
  for (int f : {1, 3, 5, 9}) {
    Grid2D<float> in(64, 48), out(64, 48);
    fill_random(in, 3);
    std::vector<float> w(static_cast<std::size_t>(f) * f, 0.0f);
    w[static_cast<std::size_t>((f / 2) * f + f / 2)] = 1.0f;  // center delta
    core::conv2d_ssam<float>(sim::tesla_v100(), in.cview(), w, f, f, out.view());
    EXPECT_LE(normalized_max_diff<float>({out.data(), static_cast<std::size_t>(out.size())},
                                         {in.data(), static_cast<std::size_t>(in.size())}),
              1e-7)
        << f;
  }
}

TEST(ConvAlgebra, LinearityInTheImage) {
  // conv(a*x + b*y) == a*conv(x) + b*conv(y).
  const Index n = 72;
  Grid2D<float> x(n, n), y(n, n), mix(n, n);
  fill_random(x, 5);
  fill_random(y, 6);
  const float alpha = 0.7f, beta = -1.3f;
  for (Index i = 0; i < mix.size(); ++i) {
    mix.data()[i] = alpha * x.data()[i] + beta * y.data()[i];
  }
  std::vector<float> w(25);
  fill_random(w, 7, -0.5, 0.5);
  Grid2D<float> cx(n, n), cy(n, n), cmix(n, n);
  core::conv2d_ssam<float>(sim::tesla_v100(), x.cview(), w, 5, 5, cx.view());
  core::conv2d_ssam<float>(sim::tesla_v100(), y.cview(), w, 5, 5, cy.view());
  core::conv2d_ssam<float>(sim::tesla_v100(), mix.cview(), w, 5, 5, cmix.view());
  double err = 0;
  for (Index i = 0; i < n * n; ++i) {
    err = std::max(err, std::abs(static_cast<double>(cmix.data()[i]) -
                                 (alpha * cx.data()[i] + beta * cy.data()[i])));
  }
  EXPECT_LE(err, 1e-4);
}

TEST(ConvAlgebra, LinearityInTheFilter) {
  const Index n = 64;
  Grid2D<float> in(n, n);
  fill_random(in, 8);
  std::vector<float> w1(9), w2(9), wsum(9);
  fill_random(w1, 9, -0.5, 0.5);
  fill_random(w2, 10, -0.5, 0.5);
  for (int i = 0; i < 9; ++i) wsum[static_cast<std::size_t>(i)] = w1[i] + w2[i];
  Grid2D<float> c1(n, n), c2(n, n), cs(n, n);
  core::conv2d_ssam<float>(sim::tesla_p100(), in.cview(), w1, 3, 3, c1.view());
  core::conv2d_ssam<float>(sim::tesla_p100(), in.cview(), w2, 3, 3, c2.view());
  core::conv2d_ssam<float>(sim::tesla_p100(), in.cview(), wsum, 3, 3, cs.view());
  double err = 0;
  for (Index i = 0; i < n * n; ++i) {
    err = std::max(err, std::abs(static_cast<double>(cs.data()[i]) -
                                 (c1.data()[i] + c2.data()[i])));
  }
  EXPECT_LE(err, 1e-5);
}

TEST(ConvAlgebra, InteriorShiftEquivariance) {
  // Shifting the input shifts the output (away from borders).
  const Index n = 96;
  Grid2D<float> in(n, n), shifted(n, n);
  fill_random(in, 11);
  for (Index y = 0; y < n; ++y) {
    for (Index x = 0; x < n; ++x) {
      shifted.at(x, y) = in.cview().read(x - 2, y - 3, Border::kClamp);
    }
  }
  std::vector<float> w(9);
  fill_random(w, 12, -0.5, 0.5);
  Grid2D<float> c1(n, n), c2(n, n);
  core::conv2d_ssam<float>(sim::tesla_v100(), in.cview(), w, 3, 3, c1.view());
  core::conv2d_ssam<float>(sim::tesla_v100(), shifted.cview(), w, 3, 3, c2.view());
  double err = 0;
  for (Index y = 8; y < n - 8; ++y) {
    for (Index x = 8; x < n - 8; ++x) {
      err = std::max(err,
                     std::abs(static_cast<double>(c2.at(x, y)) - c1.at(x - 2, y - 3)));
    }
  }
  EXPECT_LE(err, 1e-6);
}

TEST(StencilAlgebra, ConstantFieldIsEigenvector) {
  // A constant field maps to (sum of coefficients) * constant under clamp
  // borders, for any shape.
  for (const char* name : {"2d9pt", "2d121pt"}) {
    const auto shape = core::suite_stencil<float>(name);
    float coeff_sum = 0;
    for (const auto& t : shape.taps) coeff_sum += t.coeff;
    Grid2D<float> in(64, 48, 2.5f), out(64, 48);
    core::stencil2d_ssam<float>(sim::tesla_v100(), in.cview(), shape, out.view());
    for (Index i = 0; i < out.size(); ++i) {
      ASSERT_NEAR(out.data()[i], 2.5f * coeff_sum, 1e-5) << name;
    }
  }
}

// --- precondition / failure injection ------------------------------------------

TEST(Preconditions, ConvRejectsBadGeometry) {
  Grid2D<float> in(64, 64), out(64, 64);
  std::vector<float> w(9);
  EXPECT_THROW(core::conv2d_ssam<float>(sim::tesla_v100(), in.cview(), w, 3, 4,
                                        out.view()),
               PreconditionError);  // weight count mismatch
  std::vector<float> wide(static_cast<std::size_t>(33) * 1);
  EXPECT_THROW(core::conv2d_ssam<float>(sim::tesla_v100(), in.cview(), wide, 33, 1,
                                        out.view()),
               PreconditionError);  // filter wider than a warp
}

TEST(Preconditions, Stencil3DRejectsShallowBlocks) {
  const auto shape = core::suite_stencil<float>("3d13pt");  // rz = 2
  Grid3D<float> in(32, 8, 8), out(32, 8, 8);
  core::Stencil3DOptions opt;
  opt.warps = 4;  // needs > 2*rz = 4
  EXPECT_THROW(core::stencil3d_ssam<float>(sim::tesla_v100(), in.cview(), shape,
                                           out.view(), opt),
               PreconditionError);
}

TEST(Preconditions, ScanRejectsMismatchedExtents) {
  std::vector<float> in(10), out(11);
  EXPECT_THROW(core::scan_inclusive<float>(sim::tesla_v100(), in, out),
               PreconditionError);
}

TEST(Preconditions, EmptyPlanRejected) {
  std::vector<ref::Tap<float>> empty;
  EXPECT_THROW((void)core::build_plan(empty), PreconditionError);
}

TEST(Preconditions, BlockSizeMustBeWarpMultiple) {
  const auto& arch = sim::tesla_v100();
  sim::LaunchConfig cfg{.grid = Dim3{1, 1, 1}, .block_threads = 100,
                        .regs_per_thread = 32};
  EXPECT_THROW(sim::launch(arch, cfg, [](sim::BlockContext&) {},
                           sim::ExecMode::kFunctional),
               PreconditionError);
}

}  // namespace
