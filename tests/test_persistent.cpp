// The persistent iteration engine: cross-iteration tile residency, halo
// channels, and the cooperative scheduler (gpusim/persistent.hpp +
// core/iterate_persistent.hpp).
//
// Pins the contracts the engine is accountable to:
//  * outputs are bit-identical to the per-step relaunch path, for every
//    pool size and tile count (scheduling and tile-to-worker assignment
//    must never leak into results);
//  * golden FNV-1a hashes of persistent temporal stencil2d/3d outputs match
//    the relaunch path's hashes exactly;
//  * the halo channels make progress at pool size 1 with many tiles (the
//    cooperative claim-when-blocked scheduler is deadlock-free by
//    construction);
//  * odd-step async iterate drivers rename the grids at enqueue time, so
//    FIFO chaining on `a` keeps working;
//  * the policy knob falls back to the relaunch path and reports what ran;
//  * the element-wise post hook with an aux resident field (the wave-
//    equation shape) matches the relaunch fallback bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/grid.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/iterate.hpp"
#include "core/iterate_persistent.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil3d_temporal.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/persistent.hpp"
#include "test_util.hpp"

namespace {

using namespace ssam;
using ssam::testing::fnv1a;
using ssam::testing::PoolSizeGuard;

// ------------------------------------------------------------ halo channels

TEST(HaloChannelTest, EpochRingHandshake) {
  sim::HaloChannel ch;
  ch.configure(16, 3);
  EXPECT_EQ(ch.depth(), 3);
  EXPECT_FALSE(ch.available(0));
  EXPECT_TRUE(ch.can_publish(0));
  EXPECT_TRUE(ch.can_publish(2));   // depth slots ahead of released = -1
  EXPECT_FALSE(ch.can_publish(3));  // would overwrite an unreleased slot
  for (std::int64_t e = 0; e < 3; ++e) {
    std::memset(ch.publish_slot(e), static_cast<int>('a' + e), 16);
    ch.publish(e);
  }
  EXPECT_TRUE(ch.available(2));
  EXPECT_FALSE(ch.can_publish(3));
  EXPECT_EQ(*reinterpret_cast<const char*>(ch.peek(1)), 'b');
  ch.release(0);
  EXPECT_TRUE(ch.can_publish(3));
  EXPECT_FALSE(ch.can_publish(4));
}

TEST(HaloChannelTest, DepthClampedToTwo) {
  sim::HaloChannel ch;
  ch.configure(8, 1);  // depth 1 could deadlock the wavefront; clamped
  EXPECT_GE(ch.depth(), 2);
}

// ---------------------------------------------- determinism and golden parity

/// Relaunch reference for `sweeps` temporal sweeps at fused depth t.
std::vector<float> relaunch_temporal2d(const Grid2D<float>& src, int t, int sweeps) {
  const core::StencilShape<float> shape = core::star2d<float>(1);
  const core::SystolicPlan<float> plan = core::build_plan(shape.taps);
  core::TemporalSsamOptions opt;
  opt.t = t;
  Grid2D<float> a = src, b(src.width(), src.height());
  for (int s = 0; s < sweeps; ++s) {
    (void)core::stencil2d_ssam_temporal<float>(sim::tesla_v100(), a.cview(), plan,
                                               b.view(), opt);
    std::swap(a, b);
  }
  return {a.data(), a.data() + a.size()};
}

std::vector<float> persistent_temporal2d(const Grid2D<float>& src, int t, int sweeps,
                                         int tiles) {
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> a = src, b(src.width(), src.height());
  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  opt.t = t;
  opt.tiles = tiles;
  const auto stats =
      core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), a, b, shape, sweeps, opt);
  EXPECT_TRUE(stats.persistent);
  return {a.data(), a.data() + a.size()};
}

TEST(PersistentDeterminism, BitIdenticalAcrossPoolSizesAndTileCounts) {
  PoolSizeGuard guard;
  Grid2D<float> src(301, 217);
  fill_random(src, 17);
  const std::vector<float> ref = relaunch_temporal2d(src, 3, 4);
  for (int workers : {1, 4, hardware_concurrency()}) {
    ThreadPool::reset_global(workers);
    for (int tiles : {1, 2, 5, 12}) {
      const std::vector<float> got = persistent_temporal2d(src, 3, 4, tiles);
      ASSERT_EQ(got.size(), ref.size());
      EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), got.size() * sizeof(float)))
          << "pool " << workers << ", tiles " << tiles;
    }
  }
}

TEST(PersistentGolden, TemporalStencil2dHashMatchesRelaunch) {
  Grid2D<float> src(257, 193);
  fill_random(src, 29);
  const std::vector<float> relaunch = relaunch_temporal2d(src, 4, 3);
  const std::vector<float> persistent = persistent_temporal2d(src, 4, 3, 6);
  EXPECT_EQ(fnv1a(relaunch.data(), relaunch.size() * sizeof(float)),
            fnv1a(persistent.data(), persistent.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(relaunch.data(), persistent.data(),
                           relaunch.size() * sizeof(float)));
}

TEST(PersistentGolden, TemporalStencil3dHashMatchesRelaunch) {
  const core::StencilShape<float> shape = core::star3d<float>(1);
  const core::SystolicPlan<float> plan = core::build_plan(shape.taps);
  Grid3D<float> src(49, 41, 53);
  fill_random(src, 31);

  core::Temporal3DOptions topt;
  topt.t = 2;
  Grid3D<float> ra = src, rb(src.nx(), src.ny(), src.nz());
  for (int s = 0; s < 3; ++s) {
    (void)core::stencil3d_ssam_temporal<float>(sim::tesla_v100(), ra.cview(), plan,
                                               rb.view(), topt);
    std::swap(ra, rb);
  }

  Grid3D<float> pa = src, pb(src.nx(), src.ny(), src.nz());
  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  opt.t = 2;
  opt.tiles = 4;
  const auto stats = core::iterate_stencil3d_persistent<float>(sim::tesla_v100(), pa, pb,
                                                               shape, 3, opt);
  EXPECT_TRUE(stats.persistent);
  const std::size_t bytes = static_cast<std::size_t>(src.size()) * sizeof(float);
  EXPECT_EQ(fnv1a(ra.data(), bytes), fnv1a(pa.data(), bytes));
  EXPECT_EQ(0, std::memcmp(ra.data(), pa.data(), bytes));
}

TEST(PersistentDeterminism, PlainStencil2dMatchesIterateDriver) {
  Grid2D<float> src(193, 177);
  fill_random(src, 37);
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> ra = src, rb(src.width(), src.height());
  core::iterate_stencil2d<float>(sim::tesla_v100(), ra, rb, shape, 9);

  Grid2D<float> pa = src, pb(src.width(), src.height());
  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  opt.tiles = 3;
  (void)core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), pa, pb, shape, 9, opt);
  EXPECT_EQ(0, std::memcmp(ra.data(), pa.data(),
                           static_cast<std::size_t>(src.size()) * sizeof(float)));
}

TEST(PersistentDeterminism, PlainStencil3dAcrossPoolSizes) {
  PoolSizeGuard guard;
  const core::StencilShape<float> shape = core::star3d<float>(1);
  Grid3D<float> src(57, 45, 41);
  fill_random(src, 41);
  Grid3D<float> ra = src, rb(src.nx(), src.ny(), src.nz());
  core::iterate_stencil3d<float>(sim::tesla_v100(), ra, rb, shape, 5);
  for (int workers : {1, 4}) {
    ThreadPool::reset_global(workers);
    Grid3D<float> pa = src, pb(src.nx(), src.ny(), src.nz());
    core::PersistentOptions opt;
    opt.policy = core::IterationPolicy::kPersistent;
    opt.tiles = 3;
    (void)core::iterate_stencil3d_persistent<float>(sim::tesla_v100(), pa, pb, shape, 5,
                                                    opt);
    EXPECT_EQ(0, std::memcmp(ra.data(), pa.data(),
                             static_cast<std::size_t>(src.size()) * sizeof(float)))
        << "pool size " << workers;
  }
}

TEST(IterateAsync, OddStepSwapHappensAtEnqueueTime) {
  // With an odd step count the async driver renames a/b when it returns, so
  // an op enqueued *afterwards* on `a` reads the final state in FIFO order.
  const auto& arch = sim::tesla_v100();
  const core::StencilShape<float> shape = core::star2d<float>(1);
  const core::SystolicPlan<float> plan = core::build_plan(shape.taps);
  Grid2D<float> a(129, 65), b(129, 65), out(129, 65);
  fill_random(a, 61);
  Grid2D<float> ra = a, rb = b, rout(129, 65);
  core::iterate_stencil2d<float>(arch, ra, rb, shape, 5);
  (void)core::stencil2d_ssam<float>(arch, ra.cview(), plan, rout.view());

  sim::Stream stream;
  (void)core::iterate_stencil2d_async<float>(stream, arch, a, b, shape, 5);
  (void)core::stencil2d_ssam_async<float>(stream, arch, a.cview(), plan, out.view());
  stream.synchronize();
  const std::size_t bytes = static_cast<std::size_t>(a.size()) * sizeof(float);
  EXPECT_EQ(0, std::memcmp(a.data(), ra.data(), bytes));
  EXPECT_EQ(0, std::memcmp(out.data(), rout.data(), bytes));
}

// ------------------------------------------------- scheduler stress, policy

TEST(PersistentStress, ManyTilesPoolSizeOne) {
  // 16 tiles on a single worker over a long run: the cooperative scheduler
  // must complete (a blocked owner claims more tiles, and the zero-copy
  // channels' depth-2 buffer pair keeps the least-advanced tile always
  // advanceable) and the result must still be bit-identical.
  PoolSizeGuard guard;
  ThreadPool::reset_global(1);
  Grid2D<float> src(128, 192);
  fill_random(src, 43);
  const std::vector<float> ref = relaunch_temporal2d(src, 1, 50);
  const std::vector<float> got = persistent_temporal2d(src, 1, 50, 16);
  EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), got.size() * sizeof(float)));
}

TEST(PersistentPolicy, RelaunchFallbackAndAutoReporting) {
  Grid2D<float> src(129, 97);
  fill_random(src, 47);
  const core::StencilShape<float> shape = core::star2d<float>(1);

  Grid2D<float> ra = src, rb(src.width(), src.height());
  core::PersistentOptions relaunch;
  relaunch.policy = core::IterationPolicy::kRelaunch;
  const auto rstats = core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), ra, rb,
                                                                shape, 6, relaunch);
  EXPECT_FALSE(rstats.persistent);

  Grid2D<float> pa = src, pb(src.width(), src.height());
  core::PersistentOptions persistent;
  persistent.policy = core::IterationPolicy::kPersistent;
  const auto pstats = core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), pa, pb,
                                                                shape, 6, persistent);
  EXPECT_TRUE(pstats.persistent);
  EXPECT_EQ(0, std::memcmp(ra.data(), pa.data(),
                           static_cast<std::size_t>(src.size()) * sizeof(float)));

  // kAuto: a single sweep cannot amortize the residency load/drain.
  Grid2D<float> aa = src, ab(src.width(), src.height());
  const auto auto1 =
      core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), aa, ab, shape, 1);
  EXPECT_FALSE(auto1.persistent);
  const auto auto2 =
      core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), aa, ab, shape, 2);
  EXPECT_TRUE(auto2.persistent);
}

// ------------------------------------------------------- post hook and aux

TEST(PersistentPostHook, WaveUpdateMatchesRelaunchFallback) {
  // Two-field wave-equation update: lap -> p_next = 2p - p_prev + c2*lap,
  // with p_prev resident alongside the tile. The persistent path must match
  // the relaunch fallback (same engine, per-step launches) bit for bit.
  core::StencilShape<float> lap;
  lap.name = "2d5pt-laplacian";
  lap.dims = 2;
  lap.order = 1;
  lap.taps = {{0, 0, 0, -4.0f},
              {1, 0, 0, 1.0f},
              {-1, 0, 0, 1.0f},
              {0, 1, 0, 1.0f},
              {0, -1, 0, 1.0f}};
  const Index n = 160;
  auto post = [](GridView2D<float> next, GridView2D<const float> cur,
                 GridView2D<float> aux) {
    for (Index y = 0; y < next.height(); ++y) {
      for (Index x = 0; x < next.width(); ++x) {
        const float lapv = next.at(x, y);
        const float p = cur.at(x, y);
        next.at(x, y) = 2.0f * p - aux.at(x, y) + 0.2f * lapv;
        aux.at(x, y) = p;
      }
    }
  };

  Grid2D<float> p1(n, n, 0.0f), s1(n, n), prev1(n, n, 0.0f);
  p1.at(n / 2, n / 2) = 1.0f;
  prev1.at(n / 2, n / 2) = 0.9f;
  Grid2D<float> p2 = p1, s2 = s1, prev2 = prev1;

  core::PersistentOptions relaunch;
  relaunch.policy = core::IterationPolicy::kRelaunch;
  core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), p1, s1, lap, 12, relaunch,
                                            post, &prev1);
  core::PersistentOptions persistent;
  persistent.policy = core::IterationPolicy::kPersistent;
  persistent.tiles = 5;
  core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), p2, s2, lap, 12, persistent,
                                            post, &prev2);
  const std::size_t bytes = static_cast<std::size_t>(p1.size()) * sizeof(float);
  EXPECT_EQ(0, std::memcmp(p1.data(), p2.data(), bytes));
  EXPECT_EQ(0, std::memcmp(prev1.data(), prev2.data(), bytes));
}

TEST(PersistentPostHook, Wave3DMatchesExplicitStepLoop) {
  // The acoustic-wave shape in 3D: the persistent engine (lap sweep + post
  // hook + resident p_prev) must match an explicit per-step loop (full
  // sweep, then element-wise update over the whole volume) bit for bit.
  core::StencilShape<float> laplace;
  laplace.dims = 3;
  laplace.order = 1;
  laplace.taps = {{0, 0, 0, -6.0f}, {1, 0, 0, 1.0f},  {-1, 0, 0, 1.0f},
                  {0, 1, 0, 1.0f},  {0, -1, 0, 1.0f}, {0, 0, 1, 1.0f},
                  {0, 0, -1, 1.0f}};
  const auto plan = core::build_plan(laplace.taps);
  const Index n = 48;
  const int steps = 12;
  const float c2 = 0.16f;
  Grid3D<float> p(n, n, n, 0.0f), prev(n, n, n, 0.0f), lap(n, n, n);
  p.at(n / 2, n / 2, n / 2) = 1.0f;
  prev.at(n / 2, n / 2, n / 2) = 0.9f;
  Grid3D<float> rp = p, rprev = prev;

  for (int s = 0; s < steps; ++s) {
    (void)core::stencil3d_ssam<float>(sim::tesla_v100(), rp.cview(), plan, lap.view());
    for (Index i = 0; i < rp.size(); ++i) {
      const float next = 2.0f * rp.data()[i] - rprev.data()[i] + c2 * lap.data()[i];
      rprev.data()[i] = rp.data()[i];
      rp.data()[i] = next;
    }
  }

  auto wave = [c2](GridView3D<float> next, GridView3D<const float> cur,
                   GridView3D<float> aux) {
    for (Index z = 0; z < next.nz(); ++z) {
      for (Index y = 0; y < next.ny(); ++y) {
        for (Index x = 0; x < next.nx(); ++x) {
          const float l = next.at(x, y, z);
          const float pv = cur.at(x, y, z);
          next.at(x, y, z) = 2.0f * pv - aux.at(x, y, z) + c2 * l;
          aux.at(x, y, z) = pv;
        }
      }
    }
  };
  Grid3D<float> scratch(n, n, n);
  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  opt.tiles = 4;
  core::iterate_stencil3d_persistent<float>(sim::tesla_v100(), p, scratch, laplace, steps,
                                            opt, wave, &prev);
  const std::size_t bytes = static_cast<std::size_t>(p.size()) * sizeof(float);
  EXPECT_EQ(0, std::memcmp(p.data(), rp.data(), bytes));
  EXPECT_EQ(0, std::memcmp(prev.data(), rprev.data(), bytes));
}

// ------------------------------------------------------------- workspace

TEST(PersistentWorkspace, ReusedAcrossRunsAndResizes) {
  sim::PersistentWorkspace ws;
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> src(161, 143);
  fill_random(src, 53);
  const std::vector<float> ref = relaunch_temporal2d(src, 1, 4);
  core::PersistentOptions opt;
  opt.policy = core::IterationPolicy::kPersistent;
  opt.tiles = 4;
  for (int run = 0; run < 3; ++run) {
    Grid2D<float> a = src, b(src.width(), src.height());
    (void)core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), a, b, shape, 4, opt,
                                                    core::detail::NoPost{}, nullptr, &ws);
    EXPECT_EQ(0, std::memcmp(a.data(), ref.data(),
                             static_cast<std::size_t>(a.size()) * sizeof(float)))
        << "run " << run;
  }
  // A bigger problem grows the same workspace in place.
  Grid2D<float> big(257, 301);
  fill_random(big, 59);
  const std::vector<float> bigref = relaunch_temporal2d(big, 1, 4);
  Grid2D<float> a = big, b(big.width(), big.height());
  (void)core::iterate_stencil2d_persistent<float>(sim::tesla_v100(), a, b, shape, 4, opt,
                                                  core::detail::NoPost{}, nullptr, &ws);
  EXPECT_EQ(0, std::memcmp(a.data(), bigref.data(),
                           static_cast<std::size_t>(a.size()) * sizeof(float)));
}

}  // namespace
