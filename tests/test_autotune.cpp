// Subsystem 9 (core/autotune.hpp): cache round-trips, host-fingerprint
// invalidation, the bit-identity guarantee of tuned schedules, and the
// determinism of the model-ranked candidate search.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/autotune.hpp"
#include "core/job.hpp"
#include "gpusim/arch.hpp"

namespace {

using namespace ssam;

// The global tuner (reached through JobHints::auto_tune) resolves its cache
// file from SSAM_TUNE_CACHE at first config() use. Point it at a scratch
// file BEFORE anything touches the config so the suite never writes the
// developer's real ~/.cache — unless the caller (the CI cold/warm legs) set
// a path on purpose.
const bool kTuneCacheEnvPinned = [] {
  if (std::getenv("SSAM_TUNE_CACHE") == nullptr) {
    static std::string path =
        (std::filesystem::temp_directory_path() / "ssam_test_global_tune.json")
            .string();
    std::remove(path.c_str());
    ::setenv("SSAM_TUNE_CACHE", path.c_str(), 1);
  }
  return true;
}();

[[nodiscard]] std::string scratch_cache(const char* name) {
  const std::string p =
      (std::filesystem::temp_directory_path() / name).string();
  std::remove(p.c_str());
  return p;
}

[[nodiscard]] core::SimJob star_job(Grid2D<float>& a, Grid2D<float>& b,
                                    int steps) {
  return core::SimJob::stencil2d(a, b, core::star2d<float>(1), steps);
}

TEST(AutotuneCache, RoundTripWriteReloadHit) {
  core::TunerOptions topt;
  topt.cache_path = scratch_cache("ssam_tune_roundtrip.json");
  topt.top_k = 0;  // model-only: fast and fully deterministic
  const sim::ArchSpec arch = sim::tesla_v100();
  Grid2D<float> a(192, 192), b(192, 192);
  fill_random(a, 11);
  const core::SimJob job = star_job(a, b, 8);

  core::AutoTuner tuner(topt);
  const core::TuneResult first = tuner.resolve(arch, job);
  EXPECT_EQ(first.origin, core::TuneOrigin::kModelOnly);
  EXPECT_EQ(tuner.stats().tunes, 1u);

  const core::TuneResult again = tuner.resolve(arch, job);
  EXPECT_EQ(again.origin, core::TuneOrigin::kCacheHit);
  EXPECT_TRUE(again.schedule == first.schedule);

  // A fresh tuner over the same file simulates a new process: the schedule
  // must come back from disk, identical, without re-tuning.
  core::AutoTuner fresh(topt);
  const core::TuneResult reloaded = fresh.resolve(arch, job);
  EXPECT_EQ(reloaded.origin, core::TuneOrigin::kCacheHit);
  EXPECT_TRUE(reloaded.schedule == first.schedule);
  EXPECT_EQ(fresh.stats().tunes, 0u);
  EXPECT_EQ(fresh.stats().measurements, 0u);
}

TEST(AutotuneCache, WarmHitPerformsZeroMeasurements) {
  core::TunerOptions topt;
  topt.cache_path = scratch_cache("ssam_tune_warm.json");
  topt.top_k = 2;
  topt.reps = 1;
  topt.proxy_sweeps = 2;
  const sim::ArchSpec arch = sim::tesla_v100();
  Grid2D<float> a(160, 160), b(160, 160);
  fill_random(a, 12);
  const core::SimJob job = star_job(a, b, 6);

  core::AutoTuner tuner(topt);
  const core::TuneResult cold = tuner.resolve(arch, job);
  EXPECT_EQ(cold.origin, core::TuneOrigin::kMeasured);
  const std::uint64_t measured_after_cold = tuner.stats().measurements;
  EXPECT_GT(measured_after_cold, 0u);

  // The serving-path guarantee: a warm hit never measures.
  const core::TuneResult warm = tuner.resolve(arch, job);
  EXPECT_EQ(warm.origin, core::TuneOrigin::kCacheHit);
  EXPECT_EQ(tuner.stats().measurements, measured_after_cold);
  EXPECT_EQ(tuner.stats().hits, 1u);
}

TEST(AutotuneCache, FingerprintMismatchForcesRetune) {
  const std::string path = scratch_cache("ssam_tune_fingerprint.json");
  const sim::ArchSpec arch = sim::tesla_v100();
  Grid2D<float> a(128, 128), b(128, 128);
  fill_random(a, 13);
  const core::SimJob job = star_job(a, b, 5);

  core::TunerOptions host_a;
  host_a.cache_path = path;
  host_a.top_k = 0;
  host_a.fingerprint_override = "threads=4 devices=2 pin=off simd=avx2 hw=8";
  core::AutoTuner tuner_a(host_a);
  (void)tuner_a.resolve(arch, job);
  EXPECT_EQ(tuner_a.stats().tunes, 1u);

  // Same cache file read on a "different host": the entry must be ignored
  // and re-tuned, not trusted.
  core::TunerOptions host_b = host_a;
  host_b.fingerprint_override = "threads=64 devices=8 pin=on simd=neon hw=64";
  core::AutoTuner tuner_b(host_b);
  const core::TuneResult rb = tuner_b.resolve(arch, job);
  EXPECT_NE(rb.origin, core::TuneOrigin::kCacheHit);
  EXPECT_EQ(tuner_b.stats().hits, 0u);
  EXPECT_EQ(tuner_b.stats().tunes, 1u);

  // And the re-tuned entry now serves host B.
  core::AutoTuner tuner_b2(host_b);
  EXPECT_EQ(tuner_b2.resolve(arch, job).origin, core::TuneOrigin::kCacheHit);
}

TEST(AutotuneSearch, SeededCandidateRankingIsDeterministic) {
  core::TunerOptions topt;
  topt.cache_path = "off";
  const sim::ArchSpec arch = sim::tesla_v100();
  Grid2D<float> a(256, 200), b(256, 200);
  fill_random(a, 14);
  const core::SimJob job = star_job(a, b, 12);

  core::AutoTuner tuner(topt);
  const auto first = tuner.candidates(arch, job, /*allow_shards=*/true);
  const auto second = tuner.candidates(arch, job, /*allow_shards=*/true);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i].schedule == second[i].schedule) << "rank " << i;
    EXPECT_EQ(first[i].predicted_ms, second[i].predicted_ms) << "rank " << i;
  }
  // Ranked best-first, and every predicted cost is positive and finite.
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].predicted_ms, first[i].predicted_ms);
  }
  for (const auto& c : first) EXPECT_GT(c.predicted_ms, 0.0);

  // Two independently constructed tuners (same seed) pick the same winner
  // in model-only mode — the search itself carries no hidden state.
  core::TunerOptions model_only = topt;
  model_only.top_k = 0;
  core::AutoTuner t1(model_only), t2(model_only);
  EXPECT_TRUE(t1.resolve(arch, job).schedule == t2.resolve(arch, job).schedule);
}

TEST(AutotuneSearch, PinnedScopeNeverShards) {
  core::TunerOptions topt;
  topt.cache_path = "off";
  core::AutoTuner tuner(topt);
  const sim::ArchSpec arch = sim::tesla_v100();
  Grid2D<float> a(128, 128), b(128, 128);
  fill_random(a, 15);
  const core::SimJob job = star_job(a, b, 4);
  for (const auto& c : tuner.candidates(arch, job, /*allow_shards=*/false)) {
    EXPECT_EQ(c.schedule.shards, 0);
  }
}

TEST(AutotuneRun, TunedOutputBitIdenticalToDefault) {
  // The tuner only moves bit-safe knobs (policy, tiles, shards), so a tuned
  // job must produce byte-for-byte the output of the default schedule. This
  // goes through run_job + JobHints::auto_tune — the real wiring, global
  // tuner included (its cache is pinned to a scratch file above).
  const sim::ArchSpec arch = sim::tesla_v100();
  const auto shape = core::star2d<float>(2);
  Grid2D<float> da(320, 240), db(320, 240);
  Grid2D<float> ta(320, 240), tb(320, 240);
  fill_random(da, 16);
  fill_random(ta, 16);

  core::SimJob def = core::SimJob::stencil2d(da, db, shape, 7);
  (void)core::run_job(arch, def);

  core::JobHints hints;
  hints.auto_tune = true;
  core::SimJob tuned = core::SimJob::stencil2d(ta, tb, shape, 7, hints);
  (void)core::run_job(arch, tuned);

  ASSERT_EQ(da.size(), ta.size());
  EXPECT_EQ(std::memcmp(da.data(), ta.data(),
                        static_cast<std::size_t>(da.size()) * sizeof(float)),
            0);
}

TEST(AutotuneRun, ConvJobsResolveDefaultWithoutMeasurement) {
  core::TunerOptions topt;
  topt.cache_path = "off";
  core::AutoTuner tuner(topt);
  const sim::ArchSpec arch = sim::tesla_v100();
  Grid2D<float> in(96, 96), out(96, 96);
  fill_random(in, 17);
  std::vector<float> filter(9, 1.0f / 9.0f);
  const core::SimJob job = core::SimJob::conv2d(in, out, filter, 3, 3);
  const core::TuneResult r = tuner.resolve(arch, job);
  EXPECT_EQ(r.origin, core::TuneOrigin::kDefault);
  EXPECT_EQ(tuner.stats().measurements, 0u);
  EXPECT_EQ(tuner.stats().tunes, 0u);
}

TEST(AutotuneCache, MalformedCacheFileStartsEmptyAndRecovers) {
  core::TunerOptions topt;
  topt.cache_path = scratch_cache("ssam_tune_corrupt.json");
  topt.top_k = 0;
  {
    std::ofstream out(topt.cache_path);
    out << "this is not json {{{";
  }
  const sim::ArchSpec arch = sim::tesla_v100();
  Grid2D<float> a(96, 96), b(96, 96);
  fill_random(a, 18);
  const core::SimJob job = star_job(a, b, 3);

  core::AutoTuner tuner(topt);
  const core::TuneResult r = tuner.resolve(arch, job);
  EXPECT_EQ(r.origin, core::TuneOrigin::kModelOnly);  // tuned, didn't crash

  // The rewritten file must now parse as a valid cache.
  core::AutoTuner fresh(topt);
  EXPECT_EQ(fresh.resolve(arch, job).origin, core::TuneOrigin::kCacheHit);
}

TEST(AutotuneSchedule, DescribeNamesEveryKnob) {
  core::Schedule s;
  s.policy = core::IterationPolicy::kPersistent;
  s.tiles = 8;
  s.shards = 2;
  s.t = 3;
  s.threads = 4;
  const std::string d = s.describe();
  EXPECT_NE(d.find("policy=persistent"), std::string::npos);
  EXPECT_NE(d.find("tiles=8"), std::string::npos);
  EXPECT_NE(d.find("shards=2"), std::string::npos);
  EXPECT_NE(d.find("t=3"), std::string::npos);
  EXPECT_NE(d.find("threads=4"), std::string::npos);
}

}  // namespace
