// Unit tests for the simulated GPU substrate: shuffle semantics, scoreboard
// timing, caches, coalescing, shared-memory bank conflicts, occupancy,
// block sampling, and the Table 2 micro-benchmarks.
#include <gtest/gtest.h>

#include "gpusim/arch.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/microbench.hpp"
#include "gpusim/timing.hpp"

namespace {

using namespace ssam;
using namespace ssam::sim;

struct WarpFixture {
  const ArchSpec& arch = tesla_v100();
  LaunchConfig cfg{.grid = Dim3{1, 1, 1}, .block_threads = 128, .regs_per_thread = 32};
  MemorySystem mem{arch};
  BlockContext blk{arch, cfg, BlockId{}, &mem};
  WarpContext& w = blk.warp(0);
};

// --- shuffle semantics (CUDA __shfl_*_sync corner cases) -------------------

TEST(Shuffle, UpLowLanesKeepOwnValue) {
  WarpFixture f;
  Reg<int> v = f.w.iota(100, 1);  // lane l holds 100+l
  const Reg<int> r = f.w.shfl_up(kFullMask, v, 3);
  for (int l = 0; l < 3; ++l) EXPECT_EQ(r[l], 100 + l) << "low lane keeps own";
  for (int l = 3; l < kWarpSize; ++l) EXPECT_EQ(r[l], 100 + l - 3);
}

TEST(Shuffle, DownHighLanesKeepOwnValue) {
  WarpFixture f;
  Reg<int> v = f.w.iota(0, 1);
  const Reg<int> r = f.w.shfl_down(kFullMask, v, 5);
  for (int l = 0; l < kWarpSize - 5; ++l) EXPECT_EQ(r[l], l + 5);
  for (int l = kWarpSize - 5; l < kWarpSize; ++l) EXPECT_EQ(r[l], l);
}

TEST(Shuffle, IdxBroadcastsAndWrapsModuloWarp) {
  WarpFixture f;
  Reg<int> v = f.w.iota(0, 1);
  const Reg<int> r = f.w.shfl_idx(kFullMask, v, 7);
  for (int l = 0; l < kWarpSize; ++l) EXPECT_EQ(r[l], 7);
  const Reg<int> wrapped = f.w.shfl_idx(kFullMask, v, 32 + 4);  // lane 36 -> 4
  for (int l = 0; l < kWarpSize; ++l) EXPECT_EQ(wrapped[l], 4);
}

TEST(Shuffle, XorButterfly) {
  WarpFixture f;
  Reg<int> v = f.w.iota(0, 1);
  const Reg<int> r = f.w.shfl_xor(kFullMask, v, 1);
  for (int l = 0; l < kWarpSize; ++l) EXPECT_EQ(r[l], l ^ 1);
}

TEST(Shuffle, PartialMaskRejected) {
  WarpFixture f;
  Reg<int> v = f.w.iota(0, 1);
  EXPECT_THROW((void)f.w.shfl_up(0x0000ffffu, v, 1), PreconditionError);
}

// --- scoreboard -------------------------------------------------------------

TEST(Scoreboard, DependentChainAccumulatesLatency) {
  Scoreboard sb;
  Cycle r = sb.issue(0, 1.0, 10);
  EXPECT_EQ(r, 10u);
  r = sb.issue(r, 1.0, 10);  // dependent: issues at 10
  EXPECT_EQ(r, 20u);
  EXPECT_EQ(sb.completion(), 20u);
}

TEST(Scoreboard, IndependentOpsPipeline) {
  Scoreboard sb;
  (void)sb.issue(0, 1.0, 10);
  (void)sb.issue(0, 1.0, 10);  // independent: issues at 1, done at 11
  EXPECT_EQ(sb.completion(), 11u);
  EXPECT_EQ(sb.issue_cursor(), 2u);
}

TEST(Scoreboard, FenceBlocksLaterIssue) {
  Scoreboard sb;
  (void)sb.issue(0, 1.0, 4);
  sb.fence_at(100);
  const Cycle r = sb.issue(0, 1.0, 4);
  EXPECT_EQ(r, 104u);
}

TEST(Scoreboard, DeeperDependencyChainTakesLonger) {
  // Property: a chain of n dependent ops completes no earlier than n/2
  // independent pairs.
  WarpFixture f;
  Reg<float> v = f.w.uniform(1.0f);
  for (int i = 0; i < 64; ++i) v = f.w.mad(v, 0.5f, v);
  const Cycle dependent = f.w.scoreboard().completion();

  WarpFixture g;
  Reg<float> a = g.w.uniform(1.0f), b = g.w.uniform(2.0f);
  for (int i = 0; i < 32; ++i) {
    a = g.w.mad(a, 0.5f, a);
    b = g.w.mad(b, 0.5f, b);
  }
  EXPECT_GT(dependent, g.w.scoreboard().completion());
}

// --- caches ------------------------------------------------------------------

TEST(Cache, MissThenHit) {
  SetAssocCache c(1024, 128, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same 128B line
  EXPECT_FALSE(c.access(128));
}

TEST(Cache, LruEviction) {
  SetAssocCache c(2 * 128, 128, 2);  // one set, two ways
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));
  EXPECT_TRUE(c.access(0));     // refresh line 0
  EXPECT_FALSE(c.access(256));  // evicts line 128 (LRU)
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(128));  // was evicted
}

TEST(Cache, CapacitySweepProperty) {
  // Property: a working set within capacity has a second-pass hit rate of 1;
  // a working set at 2x capacity thrashes a direct round-robin scan.
  SetAssocCache c(64 * 1024, 128, 4);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 64 * 1024; a += 128) (void)c.access(a);
  }
  EXPECT_EQ(c.hits(), 512u);  // every second-pass access hits
  c.reset();
  std::uint64_t miss_before = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 128 * 1024; a += 128) (void)c.access(a);
    if (pass == 0) miss_before = c.misses();
  }
  EXPECT_GT(c.misses(), miss_before);  // second pass still missing
}

// --- coalescing ---------------------------------------------------------------

TEST(Coalescing, UnitStrideFp32IsOneLine) {
  const ArchSpec& arch = tesla_v100();
  MemorySystem mem(arch);
  alignas(128) static float buf[1024];
  std::uint64_t addrs[32];
  for (int l = 0; l < 32; ++l) addrs[l] = reinterpret_cast<std::uint64_t>(&buf[l]);
  const GlobalAccess ga = mem.load({addrs, 32}, 4);
  EXPECT_EQ(ga.sectors, 4);  // 32 lanes * 4B = 128B = 4 sectors
  EXPECT_LE(ga.lines, 2);    // 1 if aligned, 2 if straddling
}

TEST(Coalescing, StridedGatherTouchesManyLines) {
  const ArchSpec& arch = tesla_v100();
  MemorySystem mem(arch);
  static float buf[32 * 64];
  std::uint64_t addrs[32];
  for (int l = 0; l < 32; ++l) addrs[l] = reinterpret_cast<std::uint64_t>(&buf[l * 64]);
  const GlobalAccess ga = mem.load({addrs, 32}, 4);
  EXPECT_EQ(ga.lines, 32);  // every lane its own 128B line
  EXPECT_EQ(ga.sectors, 32);
}

TEST(Coalescing, RepeatLoadHitsL1) {
  const ArchSpec& arch = tesla_v100();
  MemorySystem mem(arch);
  static float buf[64];
  std::uint64_t addrs[32];
  for (int l = 0; l < 32; ++l) addrs[l] = reinterpret_cast<std::uint64_t>(&buf[l]);
  (void)mem.load({addrs, 32}, 4);
  const GlobalAccess second = mem.load({addrs, 32}, 4);
  EXPECT_EQ(second.l1_hit_lines, second.lines);
  EXPECT_EQ(second.latency, arch.lat.l1);
}

TEST(Coalescing, L2SurvivesBlockBoundaryL1DoesNot) {
  const ArchSpec& arch = tesla_v100();
  MemorySystem mem(arch);
  static float buf[64];
  std::uint64_t addrs[32];
  for (int l = 0; l < 32; ++l) addrs[l] = reinterpret_cast<std::uint64_t>(&buf[l]);
  (void)mem.load({addrs, 32}, 4);
  mem.begin_block();  // new block: L1 cold, L2 warm
  const GlobalAccess ga = mem.load({addrs, 32}, 4);
  EXPECT_EQ(ga.l1_hit_lines, 0);
  EXPECT_EQ(ga.l2_hit_sectors, ga.sectors);
  EXPECT_EQ(ga.latency, arch.lat.l2);
}

// --- shared memory bank conflicts ----------------------------------------------

TEST(SmemBanks, UnitStrideConflictFree) {
  std::int64_t words[32];
  for (int l = 0; l < 32; ++l) words[l] = l;
  const SmemAccessInfo info = analyze_smem_access({words, 32});
  EXPECT_EQ(info.passes, 1);
  EXPECT_FALSE(info.broadcast);
}

TEST(SmemBanks, Stride32FullyConflicts) {
  std::int64_t words[32];
  for (int l = 0; l < 32; ++l) words[l] = l * 32;
  EXPECT_EQ(analyze_smem_access({words, 32}).passes, 32);
}

TEST(SmemBanks, Stride2TwoWayConflict) {
  std::int64_t words[32];
  for (int l = 0; l < 32; ++l) words[l] = l * 2;
  EXPECT_EQ(analyze_smem_access({words, 32}).passes, 2);
}

TEST(SmemBanks, BroadcastIsFree) {
  std::int64_t words[32];
  for (int l = 0; l < 32; ++l) words[l] = 17;
  const SmemAccessInfo info = analyze_smem_access({words, 32});
  EXPECT_EQ(info.passes, 1);
  EXPECT_TRUE(info.broadcast);
}

TEST(SmemBanks, SameWordLanesShareAPass) {
  std::int64_t words[32];
  for (int l = 0; l < 32; ++l) words[l] = l / 2;  // pairs share a word
  EXPECT_EQ(analyze_smem_access({words, 32}).passes, 1);
}

// --- occupancy ------------------------------------------------------------------

TEST(Occupancy, WarpSlotLimited) {
  const Occupancy o = compute_occupancy(tesla_v100(), 128, 16, 0);
  EXPECT_EQ(o.blocks_per_sm, 16);  // 64 warps / 4 warps per block
  EXPECT_DOUBLE_EQ(o.fraction, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  const Occupancy o = compute_occupancy(tesla_v100(), 128, 128, 0);
  EXPECT_EQ(o.blocks_per_sm, 4);  // 65536 / (128*128)
  EXPECT_STREQ(o.limiter, "registers");
}

TEST(Occupancy, SmemLimited) {
  const Occupancy o = compute_occupancy(tesla_p100(), 128, 16, 32 * 1024);
  EXPECT_EQ(o.blocks_per_sm, 2);  // 64KB / 32KB
  EXPECT_STREQ(o.limiter, "shared-memory");
}

TEST(Occupancy, MoreRegistersNeverRaisesOccupancy) {
  int prev = 1 << 30;
  for (int regs = 16; regs <= 255; regs += 16) {
    const Occupancy o = compute_occupancy(tesla_p100(), 128, regs, 0);
    EXPECT_LE(o.blocks_per_sm, prev);
    prev = o.blocks_per_sm;
  }
}

// --- sampling / launch -----------------------------------------------------------

TEST(Sampling, SmallGridsTimedFully) {
  const auto ids = sample_block_ids(50, SampleSpec{96, 4});
  EXPECT_EQ(ids.size(), 50u);
}

TEST(Sampling, LargeGridsSampledInContiguousRuns) {
  const auto ids = sample_block_ids(1000000, SampleSpec{96, 4});
  EXPECT_LE(ids.size(), 96u);
  int contiguous = 0;
  for (std::size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] == ids[i - 1] + 1) ++contiguous;
  }
  EXPECT_GE(contiguous, static_cast<int>(ids.size()) - 4);  // 4 runs
  for (long long id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 1000000);
  }
}

TEST(Launch, TimingStatsScaleWithGrid) {
  const ArchSpec& arch = tesla_p100();
  auto run = [&](int gx) {
    LaunchConfig cfg{.grid = Dim3{gx, 1, 1}, .block_threads = 32, .regs_per_thread = 16};
    return launch(
        arch, cfg,
        [](BlockContext& blk) {
          WarpContext& w = blk.warp(0);
          Reg<float> v = w.uniform(1.0f);
          for (int i = 0; i < 10; ++i) v = w.mad(v, 0.9f, v);
        },
        ExecMode::kTiming);
  };
  const KernelStats s1 = run(100);
  const KernelStats s2 = run(200);
  EXPECT_NEAR(static_cast<double>(s2.totals.fp_ops),
              2.0 * static_cast<double>(s1.totals.fp_ops), 1.0);
  EXPECT_NEAR(s1.cycles_per_block, s2.cycles_per_block, 1e-9);
}

TEST(Launch, RuntimeEstimateMonotoneInWork) {
  const ArchSpec& arch = tesla_v100();
  auto time_of = [&](int iters) {
    LaunchConfig cfg{.grid = Dim3{10000, 1, 1}, .block_threads = 128,
                     .regs_per_thread = 32};
    auto stats = launch(
        arch, cfg,
        [&](BlockContext& blk) {
          for (int w = 0; w < blk.warp_count(); ++w) {
            WarpContext& wc = blk.warp(w);
            Reg<float> v = wc.uniform(1.0f);
            for (int i = 0; i < iters; ++i) v = wc.mad(v, 0.9f, v);
          }
        },
        ExecMode::kTiming);
    return estimate_runtime(arch, stats).total_ms;
  };
  EXPECT_LT(time_of(16), time_of(64));
  EXPECT_LT(time_of(64), time_of(256));
}

TEST(Microbench, RecoversConfiguredLatencies) {
  for (const ArchSpec* arch : {&tesla_p100(), &tesla_v100()}) {
    const MicrobenchResult r = run_microbench(*arch);
    EXPECT_DOUBLE_EQ(r.mad_cycles, arch->lat.fp_mad) << arch->name;
    EXPECT_DOUBLE_EQ(r.shfl_up_cycles, arch->lat.shfl) << arch->name;
    EXPECT_DOUBLE_EQ(r.smem_read_cycles, arch->lat.smem) << arch->name;
    EXPECT_GE(r.gmem_read_cycles, arch->lat.l2);  // chase misses L1 at least
  }
}

TEST(SmemAllocator, EnforcesBlockLimit) {
  SmemAllocator alloc(1024);
  (void)alloc.alloc<float>(200);
  EXPECT_THROW((void)alloc.alloc<float>(100), ResourceError);
}

TEST(ArchRegistry, Table1ArchitecturesPresent) {
  EXPECT_EQ(all_archs().size(), 4u);
  EXPECT_EQ(arch_by_name("P100").sm_count, 56);
  EXPECT_EQ(arch_by_name("V100").sm_count, 80);
  EXPECT_THROW((void)arch_by_name("H100"), PreconditionError);
}

}  // namespace
