// Section 5 analytical model: the paper's inequalities as properties, plus
// blocking-geometry invariants.
#include <gtest/gtest.h>

#include "core/conv2d.hpp"
#include "core/dgraph.hpp"
#include "core/stencil_suite.hpp"
#include "gpusim/arch.hpp"
#include "perfmodel/latency_model.hpp"
#include "rcache/blocking.hpp"

namespace {

using namespace ssam;

class ModelSweep : public ::testing::TestWithParam<const sim::ArchSpec*> {};

TEST_P(ModelSweep, DifPositiveForAllFiltersAtLeast2) {
  // Equation 5's conclusion: Dif >> 0 for M >= 2, N >= 2.
  const perf::MicroLatencies lat = perf::from_arch(*GetParam());
  for (int m = 2; m <= 32; ++m) {
    for (int n = 2; n <= 32; ++n) {
      EXPECT_GT(perf::dif_smem_reg(m, n, lat), 0.0) << "M=" << m << " N=" << n;
    }
  }
}

TEST_P(ModelSweep, SsamLatencyBelowSmemLatency) {
  const perf::MicroLatencies lat = perf::from_arch(*GetParam());
  for (int m = 2; m <= 20; ++m) {
    EXPECT_LT(perf::latency_ssam_method(m, m, lat), perf::latency_smem_method(m, m, lat));
  }
}

TEST_P(ModelSweep, DifGrowsWithFilterArea) {
  const perf::MicroLatencies lat = perf::from_arch(*GetParam());
  double prev = 0;
  for (int m = 2; m <= 20; ++m) {
    const double d = perf::dif_smem_reg(m, m, lat);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, ModelSweep,
                         ::testing::Values(&sim::tesla_p100(), &sim::tesla_v100()),
                         [](const auto& info) { return info.param->name; });

TEST(HaloModel, RatioWithinBoundForAllGeometries) {
  // With P = 1 the paper's formula degenerates to HRrc = 1 (C = N: the whole
  // cache is halo relative to a single output row), so the strict bound is
  // checked for P >= 2.
  for (int m = 2; m <= 20; ++m) {
    for (int n = 2; n <= 20; ++n) {
      EXPECT_DOUBLE_EQ(perf::halo_ratio_rc(m, n, 1), 1.0);
      for (int p : {2, 4, 8, 16}) {
        const double hr = perf::halo_ratio_rc(m, n, p);
        EXPECT_GT(hr, 0.0);
        EXPECT_LT(hr, 1.0);
        EXPECT_LT(hr, perf::halo_ratio_bound(m, n, p)) << m << "x" << n << " P=" << p;
      }
    }
  }
}

TEST(HaloModel, LargerWindowLowersHaloRatio) {
  for (int m : {3, 9, 20}) {
    double prev = 1.0 + 1e-12;
    for (int p : {1, 2, 4, 8, 16, 32}) {
      const double hr = perf::halo_ratio_rc(m, m, p);
      EXPECT_LT(hr, prev) << "M=" << m << " P=" << p;
      prev = hr;
    }
  }
}

TEST(HaloModel, MatchesBlockingGeometryCount) {
  // HRrc must equal the fraction of loaded elements that are not unique
  // outputs in the blocking geometry: (S*C - (S-M)(C-N)) / (S*C). Cross-check
  // against first-principles counting with the Blocking2D accessors.
  for (int m : {2, 5, 9}) {
    for (int n : {2, 5, 9}) {
      for (int p : {1, 4, 8}) {
        const double s = sim::kWarpSize;
        const double c = p + n - 1;
        const double direct = (s * c - (s - m) * (c - n)) / (s * c);
        EXPECT_DOUBLE_EQ(core::Blocking2D::halo_ratio_rc(m, n, p), direct);
        EXPECT_DOUBLE_EQ(perf::halo_ratio_rc(m, n, p), direct);
      }
    }
  }
}

TEST(Blocking2D, GridCoversDomainExactly) {
  // Property: union of all warps' valid output columns covers [0, W) with
  // no gaps (overlap in *inputs* only).
  core::Blocking2D g;
  g.span = 8;
  g.dx_min = -4;
  g.rows_halo = 8;
  g.p = 4;
  g.block_threads = 128;
  const Index width = 1000, height = 333;
  const Dim3 grid = g.grid(width, height);
  std::vector<int> covered(static_cast<std::size_t>(width), 0);
  for (int bx = 0; bx < grid.x; ++bx) {
    for (int w = 0; w < g.warps_per_block(); ++w) {
      const long long lin = static_cast<long long>(bx) * g.warps_per_block() + w;
      const Index col0 = g.lane0_col(lin);
      for (int l = g.span; l < sim::kWarpSize; ++l) {
        const Index out_x = col0 + l - g.span - g.dx_min;  // anchor = span + dx_min
        if (out_x >= 0 && out_x < width) ++covered[static_cast<std::size_t>(out_x)];
      }
    }
  }
  for (Index x = 0; x < width; ++x) {
    EXPECT_EQ(covered[static_cast<std::size_t>(x)], 1) << "column " << x;
  }
  EXPECT_EQ(grid.y, static_cast<int>(ceil_div(height, g.p)));
}

TEST(Blocking3D, ValidPlanesAndHaloRatio) {
  core::Blocking3D g;
  g.plane.span = 2;
  g.plane.dx_min = -1;
  g.plane.p = 2;
  g.rz = 1;
  g.warps = 8;
  EXPECT_EQ(g.valid_planes(), 6);
  EXPECT_DOUBLE_EQ(g.z_halo_ratio(), 0.25);
  const Dim3 grid = g.grid(512, 512, 512);
  EXPECT_EQ(grid.x, static_cast<int>(ceil_div(512, 30)));
  EXPECT_EQ(grid.z, static_cast<int>(ceil_div(512, 6)));
}

TEST(SystolicPlanCost, ModelPrefersMinimalSchedule) {
  const perf::MicroLatencies lat = perf::from_arch(sim::tesla_v100());
  const auto min_plan = core::build_plan(core::star3d<float>(2).taps, false);
  const auto dense_plan = core::build_plan(core::star3d<float>(2).taps, true);
  EXPECT_LT(perf::plan_shift_cost(min_plan.horizontal_shifts(), lat),
            perf::plan_shift_cost(dense_plan.horizontal_shifts(), lat));
}

TEST(RegistersPerThread, SsamConvEstimateTracksWindowAndFilter) {
  // Paper: register cache needs C = P + N - 1 registers; estimates must grow
  // accordingly (they drive simulated occupancy).
  EXPECT_GT(core::conv2d_ssam_regs(9, 8), core::conv2d_ssam_regs(9, 4));
  EXPECT_GT(core::conv2d_ssam_regs(20, 4), core::conv2d_ssam_regs(3, 4));
  EXPECT_EQ(core::conv2d_ssam_regs(5, 4), (4 + 5 - 1) + 4 + 12);
}

TEST(SparseLatency, DenseDegeneratesToEquation4) {
  // latency_ssam_taps with the full M*N tap count IS Equation 4 — the
  // sparse entry point generalizes, never diverges.
  const perf::MicroLatencies lat;
  for (int m = 1; m <= 9; m += 2) {
    for (int n = 1; n <= 9; n += 2) {
      EXPECT_DOUBLE_EQ(perf::latency_ssam_taps(m * n, m, lat),
                       perf::latency_ssam_method(m, n, lat));
    }
  }
}

TEST(SparseLatency, StarChargesTapsNotBoundingBox) {
  // A star-R 2D stencil executes 4R+1 taps inside a (2R+1)^2 bounding box.
  // The old bbox charge over-priced it ~2.9x at R=4 — exactly the unit
  // drift that skewed the server's shared shed EWMA across shape classes.
  const perf::MicroLatencies lat;
  for (int r = 1; r <= 4; ++r) {
    const int box = 2 * r + 1;
    const int taps = 4 * r + 1;
    const double sparse = perf::latency_ssam_taps(taps, box, lat);
    const double bbox = perf::latency_ssam_method(box, box, lat);
    EXPECT_LT(sparse, bbox);
    // Both charge the same shuffle walk; the MAC/read stream scales with
    // the actual tap count.
    EXPECT_DOUBLE_EQ(bbox - sparse,
                     (box * box - taps) * (lat.t_mad + lat.t_smem_read + 2 * lat.t_reg));
  }
}

TEST(SparseLatency, ShuffleTermFollowsHorizontalExtent) {
  // The register-cache shuffle walk moves along x (Eq. 4's M). A horizontal
  // 1x9 line pays 8 shuffles; a vertical 9x1 line pays none — with equal
  // tap counts the horizontal shape must cost exactly 8*Tshfl more.
  const perf::MicroLatencies lat;
  const double horizontal = perf::latency_ssam_taps(9, 9, lat);
  const double vertical = perf::latency_ssam_taps(9, 1, lat);
  EXPECT_DOUBLE_EQ(horizontal - vertical, 8 * lat.t_shfl);
}

}  // namespace
