// Chaos suite for the fault-tolerance layer (core/server.hpp subsystem 7):
// seeded fault schedules x device counts x pool sizes, plus directed tests
// for each mechanism — cancellation, deadlines (shed / queued-expiry /
// running-cancel), retry, and quarantine-then-reinstate.
//
// The load-bearing invariants, in test form:
//
//  * No hang, ever: every submitted job reaches a terminal status within a
//    generous wall-clock bound, at every device count and pool size
//    including the 1-device / 1-worker cell where the whole service funnels
//    through one thread.
//  * Faults never corrupt: a job that completes — first try or after
//    transient-fault retries — produces output bit-identical to a fault-free
//    direct run (goldens are computed with the injector disarmed, before the
//    chaos plan is armed).
//  * Failures are honest: a job that exhausts its attempts reports kFailed
//    with the full per-attempt fault trail, nothing is silently dropped.
//
// Thread interleavings decide which job absorbs which fault draw, so the
// matrix asserts properties (terminal, bit-identical-or-honestly-failed),
// while the directed tests pin deterministic schedules (rate-1.0 sites,
// device-filtered plans, probed seeds) and assert exact outcomes.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/grid.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/faultinject.hpp"
#include "core/job.hpp"
#include "core/server.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/device.hpp"
#include "test_util.hpp"

namespace {

using namespace ssam;

// Arms the global injector for one test scope; always disarms on exit so a
// failing assertion cannot leak a chaos plan into later tests.
struct ArmedPlan {
  explicit ArmedPlan(const core::FaultPlan& plan) {
    core::FaultInjector::global().set_plan(plan);
  }
  ~ArmedPlan() { core::FaultInjector::global().disarm(); }
  ArmedPlan(const ArmedPlan&) = delete;
  ArmedPlan& operator=(const ArmedPlan&) = delete;
};

std::vector<sim::DeviceOptions> device_opts(int devices, int workers) {
  std::vector<sim::DeviceOptions> opts;
  for (int i = 0; i < devices; ++i) {
    opts.push_back(sim::DeviceOptions{workers, {}, "chaos" + std::to_string(i)});
  }
  return opts;
}

// Generous terminal-status bound: sanitizer builds are ~10x slower and the
// suite must distinguish "slow" from "hung".
constexpr double kTerminalBoundMs = 120000.0;

// ---------------------------------------------------------------------------
// Chaos workload: small mixed jobs, each owning its grids, the golden
// output captured from a direct fault-free run before the plan is armed.
// ---------------------------------------------------------------------------

struct ChaosCase {
  core::JobKind kind = core::JobKind::kStencil2D;
  Grid2D<float> a2{1, 1}, b2{1, 1}, gold2{1, 1};
  Grid3D<float> a3{1, 1, 1}, b3{1, 1, 1}, gold3{1, 1, 1};
  core::StencilShape<float> shape;
  std::vector<float> filter;
  int steps = 1;

  [[nodiscard]] core::SimJob job() {
    switch (kind) {
      case core::JobKind::kStencil2D:
        return core::SimJob::stencil2d(a2, b2, shape, steps);
      case core::JobKind::kStencil3D:
        return core::SimJob::stencil3d(a3, b3, shape, steps);
      case core::JobKind::kConv2D:
        return core::SimJob::conv2d(a2, b2, filter, 3, 3);
    }
    return {};
  }

  [[nodiscard]] bool matches_golden() const {
    if (kind == core::JobKind::kStencil3D) {
      return ssam::testing::bits_equal(a3.data(), gold3.data(),
                                 static_cast<std::size_t>(a3.size()));
    }
    const Grid2D<float>& out = kind == core::JobKind::kConv2D ? b2 : a2;
    return ssam::testing::bits_equal(out.data(), gold2.data(),
                               static_cast<std::size_t>(out.size()));
  }
};

// Builds the mixed job set AND its goldens; must run with the injector
// disarmed (direct run_job calls would otherwise absorb fault draws).
std::vector<ChaosCase> build_chaos_cases(unsigned seed) {
  EXPECT_FALSE(core::FaultInjector::global().enabled())
      << "goldens must be computed fault-free";
  std::vector<ChaosCase> cases;
  for (int i = 0; i < 12; ++i) {
    ChaosCase c;
    const unsigned s = seed * 1000u + static_cast<unsigned>(i) * 17u;
    switch (i % 3) {
      case 0: {
        c.kind = core::JobKind::kStencil2D;
        c.a2 = Grid2D<float>(96, 64);
        c.b2 = Grid2D<float>(96, 64);
        c.shape = core::star2d<float>(1);
        c.steps = 3;
        fill_random(c.a2, s);
        Grid2D<float> ga = c.a2, gb = c.b2;
        (void)core::run_job(sim::tesla_v100(), core::SimJob::stencil2d(ga, gb, c.shape, c.steps));
        c.gold2 = ga;
        break;
      }
      case 1: {
        c.kind = core::JobKind::kStencil3D;
        c.a3 = Grid3D<float>(32, 24, 16);
        c.b3 = Grid3D<float>(32, 24, 16);
        c.shape = core::star3d<float>(1);
        c.steps = 2;
        fill_random(c.a3, s);
        Grid3D<float> ga = c.a3, gb = c.b3;
        (void)core::run_job(sim::tesla_v100(), core::SimJob::stencil3d(ga, gb, c.shape, c.steps));
        c.gold3 = ga;
        break;
      }
      default: {
        c.kind = core::JobKind::kConv2D;
        c.a2 = Grid2D<float>(80, 48);
        c.b2 = Grid2D<float>(80, 48);
        c.filter.assign(9, 1.0f / 9.0f);
        fill_random(c.a2, s);
        Grid2D<float> ga = c.a2, gb = c.b2;
        (void)core::run_job(sim::tesla_v100(),
                            core::SimJob::conv2d(ga, gb, c.filter, 3, 3));
        c.gold2 = gb;
        break;
      }
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

// ---------------------------------------------------------------------------
// The matrix: >= 5% transient faults at every site, across device counts
// (incl. the degenerate single device) and pool sizes (incl. 1 worker).
// ---------------------------------------------------------------------------

TEST(ChaosSuite, EveryJobTerminalAndCompletedJobsBitIdentical) {
  struct Cell {
    int devices;
    int workers;
  };
  const Cell cells[] = {{1, 1}, {2, 1}, {4, 1}, {2, 2}};
  const std::uint64_t plan_seeds[] = {4242, 90210};

  for (const Cell& cell : cells) {
    for (const std::uint64_t plan_seed : plan_seeds) {
      SCOPED_TRACE("devices=" + std::to_string(cell.devices) +
                   " workers=" + std::to_string(cell.workers) +
                   " seed=" + std::to_string(plan_seed));
      std::vector<ChaosCase> cases =
          build_chaos_cases(static_cast<unsigned>(plan_seed % 1000));

      sim::DeviceGroup group(device_opts(cell.devices, cell.workers));
      core::ServerOptions so;
      so.group = &group;
      so.max_attempts = 8;
      so.retry_backoff_ms = 0.2;
      so.watchdog_period_ms = 2.0;
      core::SimServer server(so);

      core::FaultPlan plan;
      plan.seed = plan_seed;
      plan.site(core::FaultSite::kWorkspaceLease) = {0.05, true};
      plan.site(core::FaultSite::kKernelSweep) = {0.05, true};
      plan.site(core::FaultSite::kHaloSend) = {0.05, true};
      plan.site(core::FaultSite::kDeviceDispatch) = {0.05, true};
      ArmedPlan armed(plan);

      std::vector<core::JobFuture> futs;
      futs.reserve(cases.size());
      for (ChaosCase& c : cases) futs.push_back(server.submit(c.job()));

      for (std::size_t i = 0; i < futs.size(); ++i) {
        ASSERT_TRUE(futs[i].wait_for(kTerminalBoundMs))
            << "job " << i << " never reached a terminal status (hang)";
        const core::JobResult& r = futs[i].wait();
        ASSERT_TRUE(r.status == core::JobStatus::kCompleted ||
                    r.status == core::JobStatus::kFailed)
            << "job " << i << " unexpected status";
        // Every failed attempt in the trail must be an injected transient
        // fault — nothing else is in play in this test.
        for (const JobError& e : r.attempt_errors) {
          EXPECT_EQ(e.code, ErrorCode::kFaultInjected);
          EXPECT_TRUE(e.transient);
        }
        if (r.status == core::JobStatus::kCompleted) {
          EXPECT_GE(r.attempts, 1);
          EXPECT_EQ(static_cast<std::size_t>(r.attempts - 1), r.attempt_errors.size());
          EXPECT_TRUE(cases[i].matches_golden())
              << "job " << i << " completed (after " << r.attempts
              << " attempts) but its output differs from the fault-free run";
        } else {
          EXPECT_EQ(r.attempts, so.max_attempts)
              << "a job may only fail after exhausting its attempts";
          EXPECT_EQ(r.error.code, ErrorCode::kFaultInjected);
        }
      }
      server.drain();
      const core::SimServer::Stats st = server.stats();
      EXPECT_EQ(st.submitted, cases.size());
      EXPECT_EQ(st.completed, cases.size());  // dispatched jobs, terminal
      EXPECT_EQ(st.cancelled, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Retry: a probed seed pins fault-then-success at the dispatch site, so the
// exact attempt count and the bit-identity of the retried output are
// deterministic, not probabilistic.
// ---------------------------------------------------------------------------

TEST(ChaosRetry, TransientFaultRetriesAndMatchesFaultFreeOutput) {
  // Find a seed whose dispatch-site decision stream is [inject, pass]:
  // attempt 1 dies at dispatch, attempt 2 runs clean.
  core::FaultInjector& fi = core::FaultInjector::global();
  core::FaultPlan plan;
  plan.site(core::FaultSite::kDeviceDispatch) = {0.6, true};
  std::uint64_t good_seed = 0;
  for (std::uint64_t s = 1; s < 200; ++s) {
    plan.seed = s;
    fi.set_plan(plan);
    const bool first = fi.should_inject(core::FaultSite::kDeviceDispatch, 0);
    const bool second = fi.should_inject(core::FaultSite::kDeviceDispatch, 0);
    if (first && !second) {
      good_seed = s;
      break;
    }
  }
  fi.disarm();
  ASSERT_NE(good_seed, 0u) << "no [inject, pass] seed in 1..199 at rate 0.6";

  Grid2D<float> a(64, 48), b(64, 48);
  fill_random(a, 31);
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> ga = a, gb = b;
  (void)core::run_job(sim::tesla_v100(), core::SimJob::stencil2d(ga, gb, shape, 3));

  sim::DeviceGroup group(device_opts(1, 1));
  core::ServerOptions so;
  so.group = &group;
  so.max_attempts = 4;
  so.retry_backoff_ms = 0.2;
  so.watchdog_period_ms = 2.0;
  core::SimServer server(so);

  plan.seed = good_seed;
  ArmedPlan armed(plan);
  core::JobFuture fut = server.submit(core::SimJob::stencil2d(a, b, shape, 3));
  const core::JobResult& r = fut.wait();
  EXPECT_EQ(r.status, core::JobStatus::kCompleted);
  EXPECT_EQ(r.attempts, 2);
  ASSERT_EQ(r.attempt_errors.size(), 1u);
  EXPECT_EQ(r.attempt_errors[0].code, ErrorCode::kFaultInjected);
  EXPECT_TRUE(r.attempt_errors[0].transient);
  EXPECT_TRUE(ssam::testing::bits_equal(a.data(), ga.data(),
                                  static_cast<std::size_t>(a.size())));
  server.drain();
  const core::SimServer::Stats st = server.stats();
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.faulted_attempts, 1u);
  EXPECT_EQ(st.failed, 0u);
}

TEST(ChaosRetry, PermanentFaultFailsWithoutRetry) {
  sim::DeviceGroup group(device_opts(1, 1));
  core::ServerOptions so;
  so.group = &group;
  so.max_attempts = 5;
  core::SimServer server(so);

  Grid2D<float> a(64, 48), b(64, 48);
  fill_random(a, 7);
  core::FaultPlan plan;
  plan.seed = 1;
  plan.site(core::FaultSite::kKernelSweep) = {1.0, false};  // always, permanent
  ArmedPlan armed(plan);

  core::JobFuture fut =
      server.submit(core::SimJob::stencil2d(a, b, core::star2d<float>(1), 2));
  const core::JobResult& r = fut.wait();
  EXPECT_EQ(r.status, core::JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 1) << "a permanent fault must not be retried";
  EXPECT_EQ(r.error.code, ErrorCode::kFaultInjected);
  EXPECT_FALSE(r.error.transient);
  server.drain();
  EXPECT_EQ(server.stats().retries, 0u);
  EXPECT_EQ(server.stats().failed, 1u);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(ChaosCancel, QueuedJobCancelledBeforeDispatch) {
  sim::DeviceGroup group(device_opts(1, 1));
  core::ServerOptions so;
  so.group = &group;
  so.start_paused = true;
  core::SimServer server(so);

  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> a0(64, 32), b0(64, 32), a1(64, 32), b1(64, 32), a2(64, 32), b2(64, 32);
  fill_random(a0, 1);
  fill_random(a1, 2);
  fill_random(a2, 3);
  core::JobFuture f0 = server.submit(core::SimJob::stencil2d(a0, b0, shape, 2));
  core::JobFuture f1 = server.submit(core::SimJob::stencil2d(a1, b1, shape, 2));
  core::JobFuture f2 = server.submit(core::SimJob::stencil2d(a2, b2, shape, 2));
  f1.cancel();  // while everything is still parked behind start_paused
  server.resume();
  server.drain();

  EXPECT_EQ(f0.wait().status, core::JobStatus::kCompleted);
  const core::JobResult& r1 = f1.wait();
  EXPECT_EQ(r1.status, core::JobStatus::kCancelled);
  EXPECT_EQ(r1.error.code, ErrorCode::kCancelled);
  EXPECT_EQ(r1.attempts, 0) << "a queue-cancelled job never ran";
  EXPECT_EQ(f2.wait().status, core::JobStatus::kCompleted);
  const core::SimServer::Stats st = server.stats();
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 2u);
}

TEST(ChaosCancel, ChainRunHonoursPreCancelledToken) {
  // The fused chain engine shares the engine-wide sweep gates: a token
  // cancelled before the run starts must unwind before any stage executes,
  // on both the fused and the staged path.
  core::StencilShape<float> s = core::star2d<float>(1);
  const std::vector<core::ChainStage<float>> stages = {
      core::ChainStage<float>::stencil(s), core::ChainStage<float>::stencil(s),
      core::ChainStage<float>::stencil(s)};
  Grid2D<float> a(96, 80), b(96, 80);
  fill_random(a, 4);
  for (const auto policy :
       {core::IterationPolicy::kPersistent, core::IterationPolicy::kRelaunch}) {
    core::PersistentOptions opt;
    opt.policy = policy;
    opt.cancel = CancelToken::make();
    opt.cancel.cancel(static_cast<int>(ErrorCode::kCancelled));
    EXPECT_THROW((void)core::run_chain2d<float>(sim::tesla_v100(), a, b, stages, opt),
                 CancelledError);
  }
}

TEST(ChaosCancel, ChainJobsCancelledMidRunLeaveEveryJobTerminal) {
  // A backlog of deep fused chains, half cancelled while the server drains:
  // every future must settle (kCancelled at a mid-chain sweep boundary, or
  // kCompleted when the cancel lost the race), and completed chains must be
  // bit-identical to an undisturbed reference.
  sim::DeviceGroup group(device_opts(2, 1));
  core::ServerOptions so;
  so.group = &group;
  core::SimServer server(so);

  core::StencilShape<float> s = core::star2d<float>(1);
  std::vector<core::ChainStage<float>> stages;
  for (int i = 0; i < 8; ++i) stages.push_back(core::ChainStage<float>::stencil(s));
  core::JobHints hints;
  hints.policy = core::IterationPolicy::kPersistent;

  Grid2D<float> ref_in(128, 96), golden(128, 96);
  fill_random(ref_in, 99);
  (void)core::run_job(sim::tesla_v100(),
                      core::SimJob::chain2d(ref_in, golden, stages, hints));

  constexpr int kJobs = 8;
  std::vector<Grid2D<float>> ins, outs;
  ins.reserve(kJobs);
  outs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    ins.emplace_back(128, 96);
    outs.emplace_back(128, 96);
    fill_random(ins.back(), 99);
  }
  std::vector<core::JobFuture> futs;
  futs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    futs.push_back(server.submit(core::SimJob::chain2d(
        ins[static_cast<std::size_t>(i)], outs[static_cast<std::size_t>(i)], stages,
        hints)));
  }
  std::thread drainer([&] { server.drain(); });
  for (int i = 0; i < kJobs; i += 2) futs[static_cast<std::size_t>(i)].cancel();
  drainer.join();
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(futs[static_cast<std::size_t>(i)].wait_for(kTerminalBoundMs))
        << "chain job " << i << " never reached a terminal status (hang)";
    const core::JobResult& r = futs[static_cast<std::size_t>(i)].wait();
    if (i % 2 == 0) {
      EXPECT_TRUE(r.status == core::JobStatus::kCancelled ||
                  r.status == core::JobStatus::kCompleted);
    } else {
      EXPECT_EQ(r.status, core::JobStatus::kCompleted);
    }
    if (r.status == core::JobStatus::kCompleted) {
      EXPECT_TRUE(ssam::testing::bits_equal(
          outs[static_cast<std::size_t>(i)].data(), golden.data(),
          static_cast<std::size_t>(golden.size())))
          << "chain job " << i << " completed with corrupted output";
    }
  }
}

TEST(ChaosCancel, CancelDuringDrainLeavesEveryJobTerminal) {
  sim::DeviceGroup group(device_opts(2, 1));
  core::ServerOptions so;
  so.group = &group;
  core::SimServer server(so);

  const core::StencilShape<float> shape = core::star2d<float>(1);
  constexpr int kJobs = 8;
  std::vector<Grid2D<float>> as, bs;
  as.reserve(kJobs);
  bs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    as.emplace_back(128, 96);
    bs.emplace_back(128, 96);
    fill_random(as.back(), 100u + static_cast<unsigned>(i));
  }
  std::vector<core::JobFuture> futs;
  futs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    futs.push_back(server.submit(
        core::SimJob::stencil2d(as[static_cast<std::size_t>(i)],
                                bs[static_cast<std::size_t>(i)], shape, 6)));
  }
  // Drain on one thread while another cancels half the backlog mid-flight:
  // drain must still return, and every future must settle (the cancelled
  // ones either kCancelled, or kCompleted when the cancel lost the race —
  // results are never retracted).
  std::thread drainer([&] { server.drain(); });
  for (int i = 0; i < kJobs; i += 2) futs[static_cast<std::size_t>(i)].cancel();
  drainer.join();
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(futs[static_cast<std::size_t>(i)].wait_for(kTerminalBoundMs));
    const core::JobResult& r = futs[static_cast<std::size_t>(i)].wait();
    if (i % 2 == 0) {
      EXPECT_TRUE(r.status == core::JobStatus::kCancelled ||
                  r.status == core::JobStatus::kCompleted);
      if (r.status == core::JobStatus::kCancelled) {
        EXPECT_EQ(r.error.code, ErrorCode::kCancelled);
      }
    } else {
      EXPECT_EQ(r.status, core::JobStatus::kCompleted);
    }
  }
}

// ---------------------------------------------------------------------------
// Deadlines: shed at admission, expire while queued, cancel while running.
// ---------------------------------------------------------------------------

TEST(ChaosDeadline, PredictedMissShedsAtAdmission) {
  sim::DeviceGroup group(device_opts(1, 1));
  core::ServerOptions so;
  so.group = &group;
  so.shed_on_deadline = true;
  // Pinned calibration makes the shed decision pure arithmetic: any real
  // job's model units x 1.0 ms/unit dwarfs a 5 ms deadline.
  so.shed_calibration_ms_per_unit = 1.0;
  core::SimServer server(so);

  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> a(128, 64), b(128, 64);
  fill_random(a, 11);

  core::SimJob doomed = core::SimJob::stencil2d(a, b, shape, 2);
  doomed.deadline_ms = 5.0;
  core::JobFuture shed_fut = server.submit(std::move(doomed));
  const core::JobResult& r = shed_fut.wait();
  EXPECT_EQ(r.status, core::JobStatus::kRejected);
  EXPECT_EQ(r.error.code, ErrorCode::kDeadlineUnmeetable);

  // Deadline-free jobs are never sheddable, whatever the calibration says.
  core::JobFuture free_fut = server.submit(core::SimJob::stencil2d(a, b, shape, 2));
  EXPECT_EQ(free_fut.wait().status, core::JobStatus::kCompleted);
  server.drain();
  const core::SimServer::Stats st = server.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.rejected, 1u);
}

TEST(ChaosDeadline, NoCalibrationNoHistoryMeansNoShedding) {
  sim::DeviceGroup group(device_opts(1, 1));
  core::ServerOptions so;
  so.group = &group;
  so.shed_on_deadline = true;  // calibration 0 and no completed jobs yet
  core::SimServer server(so);

  Grid2D<float> a(64, 32), b(64, 32);
  fill_random(a, 13);
  core::SimJob j = core::SimJob::stencil2d(a, b, core::star2d<float>(1), 2);
  j.deadline_ms = 60000.0;
  core::JobFuture fut = server.submit(std::move(j));
  EXPECT_EQ(fut.wait().status, core::JobStatus::kCompleted);
  server.drain();
  EXPECT_EQ(server.stats().shed, 0u);
}

TEST(ChaosDeadline, QueuedJobExpiresViaWatchdog) {
  sim::DeviceGroup group(device_opts(1, 1));
  core::ServerOptions so;
  so.group = &group;
  so.start_paused = true;  // the job can never dispatch
  so.watchdog_period_ms = 2.0;
  core::SimServer server(so);

  Grid2D<float> a(64, 32), b(64, 32);
  fill_random(a, 17);
  core::SimJob j = core::SimJob::stencil2d(a, b, core::star2d<float>(1), 2);
  j.deadline_ms = 1.0;
  core::JobFuture fut = server.submit(std::move(j));
  ASSERT_TRUE(fut.wait_for(kTerminalBoundMs))
      << "watchdog never expired a queued overdue job";
  const core::JobResult& r = fut.wait();
  EXPECT_EQ(r.status, core::JobStatus::kCancelled);
  EXPECT_EQ(r.error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 0);
  server.drain();
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(ChaosDeadline, RunningJobCancelledAtSweepBoundary) {
  sim::DeviceGroup group(device_opts(1, 1));
  core::ServerOptions so;
  so.group = &group;
  so.watchdog_period_ms = 2.0;
  core::SimServer server(so);

  // Big enough that a 1-worker device cannot finish inside the deadline
  // even on a fast host (~100 ms of work vs a 10 ms deadline): the
  // watchdog must cancel it mid-run and the engine unwind at a sweep
  // boundary instead of running to completion. The cancelled run never
  // executes most of those steps, so the test stays fast.
  Grid2D<float> a(384, 384), b(384, 384);
  fill_random(a, 19);
  core::SimJob j = core::SimJob::stencil2d(a, b, core::star2d<float>(1), 600);
  j.deadline_ms = 10.0;
  core::JobFuture fut = server.submit(std::move(j));
  ASSERT_TRUE(fut.wait_for(kTerminalBoundMs));
  const core::JobResult& r = fut.wait();
  EXPECT_EQ(r.status, core::JobStatus::kCancelled);
  EXPECT_EQ(r.error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 1) << "the cancelled attempt was dispatched";
  server.drain();
}

// ---------------------------------------------------------------------------
// Quarantine: a device-filtered plan makes one device reliably sick; its
// work migrates, the device is quarantined, and a clean probe (after the
// plan is disarmed) reinstates it.
// ---------------------------------------------------------------------------

TEST(ChaosQuarantine, SickDeviceQuarantinedJobsMigrateProbeReinstates) {
  sim::DeviceGroup group(device_opts(4, 1));
  core::ServerOptions so;
  so.group = &group;
  so.max_attempts = 6;
  so.quarantine_after = 2;
  so.retry_backoff_ms = 0.2;
  so.probe_interval_ms = 5.0;
  so.watchdog_period_ms = 2.0;
  core::SimServer server(so);

  const core::StencilShape<float> shape = core::star2d<float>(1);
  constexpr int kJobs = 8;
  std::vector<Grid2D<float>> as, bs, golds;
  for (int i = 0; i < kJobs; ++i) {
    as.emplace_back(96, 64);
    bs.emplace_back(96, 64);
    fill_random(as.back(), 500u + static_cast<unsigned>(i));
    Grid2D<float> ga = as.back(), gb = bs.back();
    (void)core::run_job(sim::tesla_v100(), core::SimJob::stencil2d(ga, gb, shape, 3));
    golds.push_back(std::move(ga));
  }

  // Device 0 faults on EVERY workspace lease; devices 1-3 stay clean.
  core::FaultPlan plan;
  plan.seed = 77;
  plan.device = 0;
  plan.site(core::FaultSite::kWorkspaceLease) = {1.0, true};
  core::FaultInjector::global().set_plan(plan);

  std::vector<core::JobFuture> futs;
  for (int i = 0; i < kJobs; ++i) {
    futs.push_back(server.submit(
        core::SimJob::stencil2d(as[static_cast<std::size_t>(i)],
                                bs[static_cast<std::size_t>(i)], shape, 3)));
  }
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(futs[static_cast<std::size_t>(i)].wait_for(kTerminalBoundMs));
    const core::JobResult& r = futs[static_cast<std::size_t>(i)].wait();
    EXPECT_EQ(r.status, core::JobStatus::kCompleted)
        << "job " << i << " must migrate off the sick device and complete";
    EXPECT_NE(r.device, 0) << "a completed job cannot have finished on the sick device";
    EXPECT_TRUE(ssam::testing::bits_equal(as[static_cast<std::size_t>(i)].data(),
                                    golds[static_cast<std::size_t>(i)].data(),
                                    static_cast<std::size_t>(as[0].size())));
  }
  server.drain();
  {
    const core::SimServer::Stats st = server.stats();
    EXPECT_GE(st.quarantines, 1u);
    EXPECT_GE(st.faulted_attempts, 2u);
    const core::SimServer::DeviceHealth h = server.device_health(0);
    EXPECT_TRUE(h.quarantined) << "probes keep failing while the plan is armed";
    EXPECT_GE(h.faults, 2u);
  }

  // Heal the device: with the plan disarmed the next probe passes and the
  // watchdog reinstates it.
  core::FaultInjector::global().disarm();
  const auto t0 = std::chrono::steady_clock::now();
  while (server.device_health(0).quarantined &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(30)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(server.device_health(0).quarantined)
      << "clean probe never reinstated the device";
  server.drain();
  const core::SimServer::Stats st = server.stats();
  EXPECT_GE(st.probes, 1u);
  EXPECT_GE(st.reinstated, 1u);

  // The reinstated device serves again (single-device packing target when
  // it is the least loaded — just verify a post-reinstate job completes).
  Grid2D<float> a(64, 32), b(64, 32);
  fill_random(a, 999);
  core::JobFuture after = server.submit(core::SimJob::stencil2d(a, b, shape, 2));
  EXPECT_EQ(after.wait().status, core::JobStatus::kCompleted);
}

TEST(ChaosQuarantine, LastHealthyDeviceIsNeverQuarantined) {
  sim::DeviceGroup group(device_opts(1, 1));
  core::ServerOptions so;
  so.group = &group;
  so.max_attempts = 3;
  so.quarantine_after = 1;
  core::SimServer server(so);

  core::FaultPlan plan;
  plan.seed = 5;
  plan.site(core::FaultSite::kWorkspaceLease) = {1.0, true};
  ArmedPlan armed(plan);

  Grid2D<float> a(64, 32), b(64, 32);
  fill_random(a, 23);
  core::JobFuture fut =
      server.submit(core::SimJob::stencil2d(a, b, core::star2d<float>(1), 2));
  const core::JobResult& r = fut.wait();
  EXPECT_EQ(r.status, core::JobStatus::kFailed);  // every attempt faults
  EXPECT_EQ(r.attempts, 3);
  server.drain();
  EXPECT_EQ(server.stats().quarantines, 0u)
      << "quarantining the only device would refuse all service";
  EXPECT_FALSE(server.device_health(0).quarantined);
}

// ---------------------------------------------------------------------------
// The SSAM_FAULT_SPEC mini-language and the error taxonomy plumbing.
// ---------------------------------------------------------------------------

TEST(FaultPlanSpec, ParsesSitesRatesClassesAndFilters) {
  const core::FaultPlan p = core::FaultPlan::parse(
      "seed=42,device=2,sweep=0.05t,lease=0.02,dispatch=0.01p");
  EXPECT_EQ(p.seed, 42u);
  EXPECT_EQ(p.device, 2);
  EXPECT_DOUBLE_EQ(p.site(core::FaultSite::kKernelSweep).rate, 0.05);
  EXPECT_TRUE(p.site(core::FaultSite::kKernelSweep).transient);
  EXPECT_DOUBLE_EQ(p.site(core::FaultSite::kWorkspaceLease).rate, 0.02);
  EXPECT_TRUE(p.site(core::FaultSite::kWorkspaceLease).transient)
      << "transient is the default class";
  EXPECT_DOUBLE_EQ(p.site(core::FaultSite::kDeviceDispatch).rate, 0.01);
  EXPECT_FALSE(p.site(core::FaultSite::kDeviceDispatch).transient);
  EXPECT_DOUBLE_EQ(p.site(core::FaultSite::kHaloSend).rate, 0.0);
  EXPECT_TRUE(p.any());
  // describe() round-trips through parse().
  const core::FaultPlan rt = core::FaultPlan::parse(p.describe());
  EXPECT_EQ(rt.seed, p.seed);
  EXPECT_EQ(rt.device, p.device);
  for (int i = 0; i < core::kFaultSiteCount; ++i) {
    const auto s = static_cast<core::FaultSite>(i);
    EXPECT_DOUBLE_EQ(rt.site(s).rate, p.site(s).rate);
    EXPECT_EQ(rt.site(s).transient, p.site(s).transient);
  }
}

TEST(FaultPlanSpec, EmptyAndMalformedSpecs) {
  EXPECT_FALSE(core::FaultPlan::parse("").any());
  EXPECT_EQ(core::FaultPlan{}.describe(), "off");
  EXPECT_THROW((void)core::FaultPlan::parse("cosmic=0.5"), PreconditionError);
  EXPECT_THROW((void)core::FaultPlan::parse("sweep=1.5"), PreconditionError);
  EXPECT_THROW((void)core::FaultPlan::parse("sweep"), PreconditionError);
}

TEST(FaultPlanSpec, DecisionStreamIsSeedDeterministic) {
  core::FaultInjector& fi = core::FaultInjector::global();
  core::FaultPlan plan;
  plan.seed = 1234;
  plan.site(core::FaultSite::kKernelSweep) = {0.3, true};
  auto draw_n = [&](int n) {
    std::vector<bool> v;
    for (int i = 0; i < n; ++i) v.push_back(fi.should_inject(core::FaultSite::kKernelSweep));
    return v;
  };
  fi.set_plan(plan);
  const std::vector<bool> first = draw_n(64);
  fi.set_plan(plan);  // resets the draw counters
  const std::vector<bool> second = draw_n(64);
  fi.disarm();
  EXPECT_EQ(first, second);
  int fired = 0;
  for (bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 0) << "a 30% rate that never fires in 64 draws is broken";
  EXPECT_LT(fired, 64);
}

TEST(JobErrorTaxonomy, CodesNamesAndDescribe) {
  const JobError e{ErrorCode::kFaultInjected, true, "boom"};
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(JobError{}.ok());
  const std::string d = e.describe();
  EXPECT_NE(d.find("boom"), std::string::npos);
  EXPECT_NE(d.find(error_code_name(ErrorCode::kFaultInjected)), std::string::npos);
}

TEST(LogRateLimiterTest, FirstMessagePassesStormIsSuppressedAndCounted) {
  LogRateLimiter limiter(std::chrono::milliseconds(60000));
  EXPECT_TRUE(limiter.allow()) << "the first message must always pass";
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(limiter.allow());
  }
  EXPECT_EQ(limiter.take_suppressed(), 10u);
  EXPECT_EQ(limiter.take_suppressed(), 0u) << "reading resets the count";
}

}  // namespace
