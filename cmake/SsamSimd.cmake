# SIMD lane-backend selection for the 32-lane engine (src/gpusim/simd/).
#
# The cache variable SSAM_SIMD_BACKEND picks the backend:
#   AUTO    (default) detect the widest backend the *build host* can execute
#   AVX512 / AVX2 / SSE2 / NEON / SCALAR  force one explicitly
#
# ssam_configure_simd(<target>) resolves the choice, adds the backend's
# compile definition and -m target flags PUBLIC on <target> (they propagate
# to every consumer of the headers), and prints one configure-time report
# line. Forcing a backend the host cannot execute builds fine but SIGILLs at
# runtime — that is the operator's call (useful for cross-builds).
#
# All backends are bit-identical (see simd/scalar.hpp), so this is purely a
# throughput knob; it composes with SSAM_NATIVE (-march=native), which may
# enable further instructions for the autovectorizer on top of the backend's
# own flags.

set(SSAM_SIMD_BACKEND "AUTO" CACHE STRING
    "SIMD lane backend: AUTO, AVX512, AVX2, SSE2, NEON, or SCALAR")
set_property(CACHE SSAM_SIMD_BACKEND PROPERTY STRINGS
             AUTO AVX512 AVX2 SSE2 NEON SCALAR)

# Flags each backend needs beyond the target's baseline.
set(SSAM_SIMD_FLAGS_AVX512 -mavx512f -mavx512bw -mavx512dq -mavx512vl)
set(SSAM_SIMD_FLAGS_AVX2 -mavx2)
set(SSAM_SIMD_FLAGS_SSE2 "")
set(SSAM_SIMD_FLAGS_NEON "")
set(SSAM_SIMD_FLAGS_SCALAR "")

# Next-narrower backend to try when the compiler rejects a backend's flags
# (e.g. AVX-512 silicon paired with an older compiler): step down the ladder
# instead of dropping straight to scalar loops.
set(SSAM_SIMD_FALLBACK_AVX512 AVX2)
set(SSAM_SIMD_FALLBACK_AVX2 SSE2)
set(SSAM_SIMD_FALLBACK_SSE2 SCALAR)
set(SSAM_SIMD_FALLBACK_NEON SCALAR)
set(SSAM_SIMD_FALLBACK_SCALAR "")

# Detects the widest backend the build host itself can run, by compiling and
# executing a tiny CPUID probe. Falls back to the ISA baseline of the target
# architecture when the probe cannot run (cross builds, exotic toolchains).
function(_ssam_detect_simd_backend out_var)
  if(CMAKE_CROSSCOMPILING)
    if(CMAKE_SYSTEM_PROCESSOR MATCHES "aarch64|arm64")
      set(${out_var} "NEON" PARENT_SCOPE)
    elseif(CMAKE_SYSTEM_PROCESSOR MATCHES "x86_64|AMD64|amd64")
      set(${out_var} "SSE2" PARENT_SCOPE)
    else()
      set(${out_var} "SCALAR" PARENT_SCOPE)
    endif()
    return()
  endif()

  set(probe_src "${CMAKE_CURRENT_BINARY_DIR}/ssam_simd_probe.cpp")
  file(WRITE "${probe_src}" [=[
#include <cstdio>
int main() {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl")) {
    std::puts("AVX512");
  } else if (__builtin_cpu_supports("avx2")) {
    std::puts("AVX2");
  } else {
    std::puts("SSE2");
  }
#else
  std::puts("SSE2");
#endif
#elif defined(__aarch64__) || defined(__ARM_NEON)
  std::puts("NEON");
#else
  std::puts("SCALAR");
#endif
  return 0;
}
]=])
  try_run(probe_ran probe_compiled
          "${CMAKE_CURRENT_BINARY_DIR}" "${probe_src}"
          RUN_OUTPUT_VARIABLE probe_out)
  if(probe_compiled AND probe_ran EQUAL 0)
    string(STRIP "${probe_out}" probe_out)
    set(${out_var} "${probe_out}" PARENT_SCOPE)
  else()
    set(${out_var} "SCALAR" PARENT_SCOPE)
  endif()
endfunction()

function(ssam_configure_simd target)
  string(TOUPPER "${SSAM_SIMD_BACKEND}" backend)
  set(origin "forced by -DSSAM_SIMD_BACKEND=${SSAM_SIMD_BACKEND}")
  if(backend STREQUAL "AUTO")
    _ssam_detect_simd_backend(backend)
    set(origin "auto-detected; override with -DSSAM_SIMD_BACKEND=...")
  endif()
  if(NOT backend MATCHES "^(AVX512|AVX2|SSE2|NEON|SCALAR)$")
    message(FATAL_ERROR "SSAM: unknown SSAM_SIMD_BACKEND '${SSAM_SIMD_BACKEND}' "
                        "(expected AUTO, AVX512, AVX2, SSE2, NEON, or SCALAR)")
  endif()

  # Verify the compiler accepts the backend's flags; degrade one ladder step
  # at a time (AVX512 -> AVX2 -> SSE2 -> SCALAR) rather than failing the
  # configure or dropping straight to scalar loops.
  include(CheckCXXCompilerFlag)
  set(flags "${SSAM_SIMD_FLAGS_${backend}}")
  while(flags)
    string(REPLACE ";" "_" flag_id "${flags}")
    check_cxx_compiler_flag("${flags}" SSAM_SIMD_FLAGS_OK_${flag_id})
    if(SSAM_SIMD_FLAGS_OK_${flag_id})
      break()
    endif()
    set(next "${SSAM_SIMD_FALLBACK_${backend}}")
    message(WARNING "SSAM: compiler rejects ${flags}; "
                    "falling back to the ${next} SIMD backend")
    set(backend "${next}")
    set(flags "${SSAM_SIMD_FLAGS_${backend}}")
  endwhile()

  target_compile_definitions(${target} PUBLIC SSAM_SIMD_BACKEND_${backend})
  if(flags)
    target_compile_options(${target} PUBLIC ${flags})
  endif()
  # Pin FP contraction off everywhere the lane engine is compiled: the scalar
  # reference loops must not silently fuse a*b+c into FMA on FMA-capable
  # targets, or cross-backend bit parity would depend on compiler flags.
  # (The vector backends never emit FMA intrinsics for the same reason.)
  target_compile_options(${target} PUBLIC -ffp-contract=off)

  string(TOLOWER "${backend}" backend_lc)
  message(STATUS "SSAM: SIMD lane backend: ${backend_lc} (${origin})")
  set(SSAM_SIMD_BACKEND_RESOLVED "${backend}" PARENT_SCOPE)
endfunction()
