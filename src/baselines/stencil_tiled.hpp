// Scratchpad-tiled stencil baselines.
//
//   * stencil2d_smem_tiled / stencil3d_smem_tiled — the canonical schedule
//     ppcg emits for stencils: stage a block tile (plus halo) in shared
//     memory, then one LDS + MAD per tap per output.
//   * stencil3d_zmarch — the "Diffusion" scheme (Maruyama & Aoki [32],
//     Zohouri et al. [62]): a block marches along z keeping a circular
//     buffer of 2*rz+1 shared planes, loading each input plane exactly once.
#pragma once

#include <vector>

#include "baselines/tile.hpp"
#include "core/kernel_common.hpp"
#include "core/stencil_shape.hpp"

namespace ssam::base {

using core::ExecMode;
using core::KernelStats;
using core::SampleSpec;
using core::StencilShape;

[[nodiscard]] inline int stencil_tiled_regs() { return 26; }

/// ppcg-style 2D tiled stencil: 32 x tile_h outputs per block.
template <typename T>
KernelStats stencil2d_smem_tiled(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                                 const StencilShape<T>& shape, GridView2D<T> out,
                                 ExecMode mode = ExecMode::kFunctional,
                                 SampleSpec sample = {}) {
  int rx = 0, ry = 0;
  for (const auto& t : shape.taps) {
    rx = std::max(rx, std::abs(t.dx));
    ry = std::max(ry, std::abs(t.dy));
  }
  const Index width = in.width();
  const Index height = in.height();
  constexpr int kBlockThreads = 128;
  const int warps = kBlockThreads / sim::kWarpSize;
  const int tile_h = 8;
  const int rows_per_warp = tile_h / warps;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(width, sim::kWarpSize)),
                  static_cast<int>(ceil_div(height, tile_h)), 1};
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = stencil_tiled_regs();

  auto body = [&, width, height, warps, tile_h, rows_per_warp, rx, ry](auto& blk) {
    TileGeom2D g;
    g.x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
    g.y0 = static_cast<Index>(blk.id().y) * tile_h;
    g.tile_w = sim::kWarpSize;
    g.tile_h = tile_h;
    g.halo_x_lo = g.halo_x_hi = rx;
    g.halo_y_lo = g.halo_y_hi = ry;
    Smem<T> tile = blk.template alloc_smem<T>(g.elems());
    load_tile_2d(blk, in, g, tile);

    const int pw = g.padded_w();
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      for (int r = 0; r < rows_per_warp; ++r) {
        const int ty = w * rows_per_warp + r;
        const Index oy = g.y0 + ty;
        if (oy >= height) continue;
        Reg<T> acc = wc.uniform(T{});
        for (const auto& tap : shape.taps) {
          const Reg<int> sidx =
              wc.add(wc.lane_id(), (ty + ry + tap.dy) * pw + rx + tap.dx);
          const Reg<T> dv = wc.load_shared(tile, sidx);
          acc = wc.mad(dv, tap.coeff, acc);
        }
        const Reg<Index> ox = wc.template iota<Index>(g.x0, 1);
        Pred ok = wc.cmp_lt(ox, width);
        wc.store_global(out.data(), wc.affine(ox, 1, oy * out.pitch()), acc, &ok);
      }
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

/// ppcg-style 3D tiled stencil: 32 x 8 x 8 outputs per block (256 threads).
template <typename T>
KernelStats stencil3d_smem_tiled(const sim::ArchSpec& arch, const GridView3D<const T>& in,
                                 const StencilShape<T>& shape, GridView3D<T> out,
                                 ExecMode mode = ExecMode::kFunctional,
                                 SampleSpec sample = {}) {
  int rx = 0, ry = 0, rz = 0;
  for (const auto& t : shape.taps) {
    rx = std::max(rx, std::abs(t.dx));
    ry = std::max(ry, std::abs(t.dy));
    rz = std::max(rz, std::abs(t.dz));
  }
  const Index nx = in.nx(), ny = in.ny(), nz = in.nz();
  constexpr int kBlockThreads = 256;
  const int warps = kBlockThreads / sim::kWarpSize;
  const int tile_h = 8, tile_d = 8;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(nx, sim::kWarpSize)),
                  static_cast<int>(ceil_div(ny, tile_h)),
                  static_cast<int>(ceil_div(nz, tile_d))};
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = stencil_tiled_regs() + 6;

  auto body = [&, nx, ny, nz, warps, tile_h, tile_d, rx, ry, rz](auto& blk) {
    TileGeom3D g;
    g.x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
    g.y0 = static_cast<Index>(blk.id().y) * tile_h;
    g.z0 = static_cast<Index>(blk.id().z) * tile_d;
    g.tile_w = sim::kWarpSize;
    g.tile_h = tile_h;
    g.tile_d = tile_d;
    g.halo_x = rx;
    g.halo_y = ry;
    g.halo_z = rz;
    Smem<T> tile = blk.template alloc_smem<T>(g.elems());
    load_tile_3d(blk, in, g, tile);

    const int pw = g.padded_w();
    const int ph = g.padded_h();
    const int cells = tile_h * tile_d;  // (y, z) pairs; one warp row each
    for (int cell = 0; cell < cells; ++cell) {
      const int w = cell % warps;
      auto& wc = blk.warp(w);
      const int ty = cell % tile_h;
      const int tz = cell / tile_h;
      const Index oy = g.y0 + ty;
      const Index oz = g.z0 + tz;
      if (oy >= ny || oz >= nz) continue;
      Reg<T> acc = wc.uniform(T{});
      for (const auto& tap : shape.taps) {
        const int si =
            ((tz + rz + tap.dz) * ph + ty + ry + tap.dy) * pw + rx + tap.dx;
        const Reg<T> dv = wc.load_shared(tile, wc.add(wc.lane_id(), si));
        acc = wc.mad(dv, tap.coeff, acc);
      }
      const Reg<Index> ox = wc.template iota<Index>(g.x0, 1);
      Pred ok = wc.cmp_lt(ox, nx);
      wc.store_global(out.data(), wc.affine(ox, 1, (oz * ny + oy) * nx), acc, &ok);
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

/// Diffusion-style 2.5D z-march: circular shared-plane window, each plane
/// loaded from global memory exactly once per block column.
template <typename T>
KernelStats stencil3d_zmarch(const sim::ArchSpec& arch, const GridView3D<const T>& in,
                             const StencilShape<T>& shape, GridView3D<T> out,
                             ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  int rx = 0, ry = 0, rz = 0;
  for (const auto& t : shape.taps) {
    rx = std::max(rx, std::abs(t.dx));
    ry = std::max(ry, std::abs(t.dy));
    rz = std::max(rz, std::abs(t.dz));
  }
  const Index nx = in.nx(), ny = in.ny(), nz = in.nz();
  constexpr int kBlockThreads = 128;
  const int warps = kBlockThreads / sim::kWarpSize;
  const int tile_h = 8;
  const int rows_per_warp = tile_h / warps;
  const int window = 2 * rz + 1;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(nx, sim::kWarpSize)),
                  static_cast<int>(ceil_div(ny, tile_h)), 1};
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = stencil_tiled_regs() + 2 * window;

  auto body = [&, nx, ny, nz, warps, tile_h, rows_per_warp, rx, ry, rz,
               window](auto& blk) {
    TileGeom2D g;
    g.x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
    g.y0 = static_cast<Index>(blk.id().y) * tile_h;
    g.tile_w = sim::kWarpSize;
    g.tile_h = tile_h;
    g.halo_x_lo = g.halo_x_hi = rx;
    g.halo_y_lo = g.halo_y_hi = ry;
    const int plane_elems = g.elems();
    Smem<T> planes = blk.template alloc_smem<T>(plane_elems * window);

    // Prime the window with planes [-rz, rz] (clamped).
    auto load_plane = [&](Index z, int slot) {
      z = z < 0 ? 0 : (z >= nz ? nz - 1 : z);
      const GridView2D<const T> pl(in.data() + z * ny * nx, nx, ny, nx);
      Smem<T> dst{planes.data + slot * plane_elems, plane_elems,
                  planes.base_word + slot * plane_elems *
                                         static_cast<int>(sizeof(T) / 4)};
      load_tile_2d(blk, pl, g, dst);
    };
    for (int s = 0; s < window; ++s) load_plane(static_cast<Index>(s) - rz, s);

    const int pw = g.padded_w();
    for (Index z = 0; z < nz; ++z) {
      // slot of plane z+dz: (z + dz + rz) mod window.
      for (int w = 0; w < warps; ++w) {
        auto& wc = blk.warp(w);
        for (int r = 0; r < rows_per_warp; ++r) {
          const int ty = w * rows_per_warp + r;
          const Index oy = g.y0 + ty;
          if (oy >= ny) continue;
          Reg<T> acc = wc.uniform(T{});
          for (const auto& tap : shape.taps) {
            const int slot = static_cast<int>((z + tap.dz + rz + window) % window);
            const int si = slot * plane_elems + (ty + ry + tap.dy) * pw + rx + tap.dx;
            const Reg<T> dv = wc.load_shared(planes, wc.add(wc.lane_id(), si));
            acc = wc.mad(dv, tap.coeff, acc);
          }
          const Reg<Index> ox = wc.template iota<Index>(g.x0, 1);
          Pred ok = wc.cmp_lt(ox, nx);
          wc.store_global(out.data(), wc.affine(ox, 1, (z * ny + oy) * nx), acc, &ok);
        }
      }
      blk.sync();
      // Rotate: plane z+rz+1 replaces the oldest plane (slot (z+2rz+1) mod w,
      // which equals z mod w — the slot plane z-rz occupied).
      load_plane(z + rz + 1, static_cast<int>((z + 2 * rz + 1) % window));
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::base
