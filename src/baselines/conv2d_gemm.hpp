// cuDNN-like 2D convolution: implicit-GEMM formulation.
//
// cuDNN's fastest general algorithm for these shapes is implicit GEMM: the
// im2col matrix is never materialized; tiles are staged in shared memory and
// each thread accumulates a register tile. For the paper's benchmark — ONE
// single-channel image convolved with ONE filter (Section 6.2 (v)) — the
// GEMM's N dimension is 1, so half of every 2-wide N register tile is
// padding that the kernel still computes and then discards. That padding
// work plus the per-k im2col index generation is why cuDNN trails SSAM here
// despite its excellent smem amortization. cuDNN only supports odd filter
// extents — callers must check `cudnn_supports()` like the bench does.
#pragma once

#include <span>

#include "baselines/tile.hpp"
#include "core/kernel_common.hpp"

namespace ssam::base {

using core::ExecMode;
using core::KernelStats;
using core::SampleSpec;

[[nodiscard]] inline bool cudnn_supports(int m, int n) {
  return m % 2 == 1 && n % 2 == 1 && m >= 3 && n >= 3;
}

struct ConvGemmOptions {
  int block_threads = 128;  ///< 4 warps; 32 x 8 useful outputs (2 rows/thread)
};

[[nodiscard]] inline int conv2d_gemm_regs() { return 40; }

template <typename T>
KernelStats conv2d_gemm(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                        std::span<const T> weights, int filter_m, int filter_n,
                        GridView2D<T> out, const ConvGemmOptions& opt = {},
                        ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  SSAM_REQUIRE(cudnn_supports(filter_m, filter_n), "cuDNN path needs odd filter extents");
  const int m = filter_m;
  const int n = filter_n;
  const int cx = (m - 1) / 2;
  const int cy = (n - 1) / 2;
  const Index width = in.width();
  const Index height = in.height();
  const int warps = opt.block_threads / sim::kWarpSize;
  const int tile_h = warps;   // 2 output rows per thread => 2*warps rows
  const int out_rows = 2 * tile_h;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(width, sim::kWarpSize)),
                  static_cast<int>(ceil_div(height, out_rows)), 1};
  cfg.block_threads = opt.block_threads;
  cfg.regs_per_thread = conv2d_gemm_regs();

  const T* wgt = weights.data();
  auto body = [&, m, n, cx, cy, width, height, warps, tile_h, wgt](auto& blk) {
    TileGeom2D g;
    g.x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
    g.y0 = static_cast<Index>(blk.id().y) * (2 * tile_h);
    g.tile_w = sim::kWarpSize;
    g.tile_h = 2 * tile_h;
    g.halo_x_lo = cx;
    g.halo_x_hi = m - 1 - cx;
    g.halo_y_lo = cy;
    g.halo_y_hi = n - 1 - cy;

    Smem<T> tile = blk.template alloc_smem<T>(g.elems());
    Smem<T> wsm = blk.template alloc_smem<T>(m * n);
    core::cooperative_load_to_smem(blk, wgt, wsm, m * n);
    load_tile_2d(blk, in, g, tile);

    const int pw = g.padded_w();
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      // 2x2 register tile: the M(gemm) dimension holds two output rows; the
      // N(gemm) dimension is 1 for single-filter convolution, so the second
      // N column (accP0/accP1) is tile padding — computed, never stored.
      Reg<T> acc0 = wc.uniform(T{});
      Reg<T> acc1 = wc.uniform(T{});
      Reg<T> pad0 = wc.uniform(T{});
      Reg<T> pad1 = wc.uniform(T{});
      const int ty0 = w;
      const int ty1 = w + tile_h;
      for (int fn = 0; fn < n; ++fn) {
        const Reg<int> base0 = wc.add(wc.lane_id(), (ty0 + fn) * pw);
        const Reg<int> base1 = wc.add(wc.lane_id(), (ty1 + fn) * pw);
        for (int fm = 0; fm < m; ++fm) {
          // im2col index generation for the next k slice.
          wc.charge_alu(2);
          const Reg<T> wv = wc.load_shared_broadcast(wsm, fn * m + fm);
          const Reg<T> d0 = wc.load_shared(tile, wc.add(base0, fm));
          const Reg<T> d1 = wc.load_shared(tile, wc.add(base1, fm));
          acc0 = wc.mad(d0, wv, acc0);
          acc1 = wc.mad(d1, wv, acc1);
          // Padding half of the N tile: same data path, discarded result.
          pad0 = wc.mad(d0, wv, pad0);
          pad1 = wc.mad(d1, wv, pad1);
        }
      }
      auto store_row = [&](int ty, const Reg<T>& a) {
        const Index oy = g.y0 + ty;
        if (oy >= height) return;
        const Reg<Index> ox = wc.template iota<Index>(g.x0, 1);
        Pred ok = wc.cmp_lt(ox, width);
        wc.store_global(out.data(), wc.affine(ox, 1, oy * out.pitch()), a, &ok);
      };
      store_row(ty0, acc0);
      store_row(ty1, acc1);
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::base
