// NPP-like 2D convolution: direct global-memory convolution.
//
// NPP's FilterBorder kernels use no shared memory (Section 6.2 (ii)): every
// tap is read from global memory through the L1/texture path, and 3x3 / 5x5
// filters get dedicated fully-unrolled kernels
// (FilterBorder32f{3x3,5x5}ReplicateQuadNew). We mirror both behaviours:
//   * general path — per-tap clamped addressing plus a broadcast weight load;
//   * dedicated path (M = N in {3, 5}) — weights as immediates and row-base
//     addressing only, which is why NPP dips at exactly those sizes in Fig 4.
#pragma once

#include <span>

#include "core/kernel_common.hpp"

namespace ssam::base {

using core::BlockContext;
using core::ExecMode;
using core::KernelStats;
using core::Pred;
using core::Reg;
using core::SampleSpec;
using core::WarpContext;

struct ConvDirectOptions {
  int rows_per_block = 4;  ///< one warp per output row
  int block_threads = 128;
};

[[nodiscard]] inline bool npp_has_dedicated_kernel(int m, int n) {
  return m == n && (m == 3 || m == 5);
}

[[nodiscard]] inline int conv2d_direct_regs(int m, int n) {
  return npp_has_dedicated_kernel(m, n) ? 32 : 24;
}

template <typename T>
KernelStats conv2d_direct(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                          std::span<const T> weights, int filter_m, int filter_n,
                          GridView2D<T> out, const ConvDirectOptions& opt = {},
                          ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  SSAM_REQUIRE(static_cast<Index>(weights.size()) ==
                   static_cast<Index>(filter_m) * filter_n,
               "weight count mismatch");
  const int m = filter_m;
  const int n = filter_n;
  const int cx = (m - 1) / 2;
  const int cy = (n - 1) / 2;
  const Index width = in.width();
  const Index height = in.height();
  const int warps = opt.block_threads / sim::kWarpSize;
  const bool dedicated = npp_has_dedicated_kernel(m, n);

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(width, sim::kWarpSize)),
                  static_cast<int>(ceil_div(height, warps)), 1};
  cfg.block_threads = opt.block_threads;
  cfg.regs_per_thread = conv2d_direct_regs(m, n);

  const T* wgt = weights.data();
  auto body = [&, m, n, cx, cy, width, height, warps, dedicated, wgt](auto& blk) {
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      const Index oy = static_cast<Index>(blk.id().y) * warps + w;
      if (oy >= height) continue;
      const Index x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
      if (x0 >= width) continue;

      Reg<T> acc = wc.uniform(T{});
      for (int fn = 0; fn < n; ++fn) {
        Index y = oy + fn - cy;
        y = y < 0 ? 0 : (y >= height ? height - 1 : y);
        if (dedicated) {
          // Unrolled dedicated kernel: one clamped row base per filter row,
          // immediate weights, taps addressed by constant offsets.
          const Reg<Index> gx0 =
              wc.clamp(wc.template iota<Index>(x0 - cx, 1), Index{0}, width - 1);
          for (int fm = 0; fm < m; ++fm) {
            Reg<Index> gx = fm == 0 ? gx0
                                    : wc.clamp(wc.template iota<Index>(x0 - cx + fm, 1), Index{0},
                                               width - 1);
            const Reg<Index> gidx = wc.affine(gx, 1, y * in.pitch());
            const Reg<T> dv = wc.load_global(in.data(), gidx);
            acc = wc.mad(dv, wgt[fn * m + fm], acc);
          }
        } else {
          for (int fm = 0; fm < m; ++fm) {
            // General path: runtime filter loops with per-tap bounds
            // predicates (the FilterBorder kernels' measured mix), a clamp
            // per tap, and the weight through the read-only cache.
            wc.charge_alu(2);
            const Reg<Index> gx =
                wc.clamp(wc.template iota<Index>(x0 + fm - cx, 1), Index{0}, width - 1);
            const Reg<Index> gidx = wc.affine(gx, 1, y * in.pitch());
            const Reg<T> dv = wc.load_global(in.data(), gidx);
            const Reg<T> wv =
                wc.load_global(wgt, wc.template uniform<Index>(fn * m + fm));
            acc = wc.mad(dv, wv, acc);
          }
        }
      }
      const Reg<Index> ox = wc.template iota<Index>(x0, 1);
      Pred ok = wc.cmp_lt(ox, width);
      const Reg<Index> oidx = wc.affine(ox, 1, oy * out.pitch());
      wc.store_global(out.data(), oidx, acc, &ok);
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::base
