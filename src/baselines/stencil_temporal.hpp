// StencilGen-like overlapped temporal blocking in shared memory [49].
//
// A block stages a tile padded by t*r halo cells, applies the stencil t
// times entirely in shared memory (double buffered, barrier between steps,
// redundantly computing the shrinking halo ring), and writes the interior
// once. Global traffic drops by ~t; redundant compute and barriers are the
// price — exactly the trade Figure 6 probes.
//
// Border note: halo cells outside the domain are replicate-clamped at load
// time, so cells within t*r of the domain edge follow the standard
// ghost-zone approximation; interior cells are exact (tests verify this).
#pragma once

#include <vector>

#include "baselines/tile.hpp"
#include "core/kernel_common.hpp"
#include "core/stencil_shape.hpp"

namespace ssam::base {

using core::ExecMode;
using core::KernelStats;
using core::SampleSpec;
using core::StencilShape;

struct TemporalOptions {
  int t = 4;  ///< fused time steps
};

[[nodiscard]] inline int stencil_temporal_regs() { return 30; }

/// 2D temporal blocking: 32 x 8 output tile, t fused steps.
template <typename T>
KernelStats stencil2d_temporal_smem(const sim::ArchSpec& arch,
                                    const GridView2D<const T>& in,
                                    const StencilShape<T>& shape, GridView2D<T> out,
                                    const TemporalOptions& opt = {},
                                    ExecMode mode = ExecMode::kFunctional,
                                    SampleSpec sample = {}) {
  int rx = 0, ry = 0;
  for (const auto& tap : shape.taps) {
    rx = std::max(rx, std::abs(tap.dx));
    ry = std::max(ry, std::abs(tap.dy));
  }
  const int t = opt.t;
  const Index width = in.width();
  const Index height = in.height();
  constexpr int kBlockThreads = 128;
  const int warps = kBlockThreads / sim::kWarpSize;
  const int tile_h = 8;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(width, sim::kWarpSize)),
                  static_cast<int>(ceil_div(height, tile_h)), 1};
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = stencil_temporal_regs();

  auto body = [&, width, height, warps, tile_h, rx, ry, t](auto& blk) {
    TileGeom2D g;
    g.x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
    g.y0 = static_cast<Index>(blk.id().y) * tile_h;
    g.tile_w = sim::kWarpSize;
    g.tile_h = tile_h;
    g.halo_x_lo = g.halo_x_hi = t * rx;
    g.halo_y_lo = g.halo_y_hi = t * ry;
    const int pw = g.padded_w();
    const int ph = g.padded_h();
    Smem<T> buf_a = blk.template alloc_smem<T>(pw * ph);
    Smem<T> buf_b = blk.template alloc_smem<T>(pw * ph);
    load_tile_2d(blk, in, g, buf_a);

    Smem<T>* src = &buf_a;
    Smem<T>* dst = &buf_b;
    for (int s = 0; s < t; ++s) {
      // Computable region after step s: padded cells at distance >= (s+1)*r
      // from the buffer edge (the halo ring consumed so far).
      const int x_start = (s + 1) * rx;
      const int y_start = (s + 1) * ry;
      const int xw = pw - 2 * x_start;
      const int yh = ph - 2 * y_start;
      // Compute rows of the shrunk region, block-striped over warps.
      for (int row = 0; row < yh; ++row) {
        const int w = row % warps;
        auto& wc = blk.warp(w);
        for (int cx = 0; cx < xw; cx += sim::kWarpSize) {
          Pred active = wc.cmp_lt(wc.template iota<int>(cx, 1), xw);
          Reg<T> acc = wc.uniform(T{});
          for (const auto& tap : shape.taps) {
            const int si = (y_start + row + tap.dy) * pw + x_start + cx + tap.dx;
            const Reg<T> dv = wc.load_shared(*src, wc.add(wc.lane_id(), si), &active);
            acc = wc.mad(dv, tap.coeff, acc);
          }
          const Reg<int> di = wc.add(wc.lane_id(), (y_start + row) * pw + x_start + cx);
          wc.store_shared(*dst, di, acc, &active);
        }
      }
      blk.sync();
      std::swap(src, dst);
    }

    // Write the interior tile.
    for (int ty = 0; ty < tile_h; ++ty) {
      const int w = ty % warps;
      auto& wc = blk.warp(w);
      const Index oy = g.y0 + ty;
      if (oy >= height) continue;
      const Reg<T> v =
          wc.load_shared(*src, wc.add(wc.lane_id(), (ty + t * ry) * pw + t * rx));
      const Reg<Index> ox = wc.template iota<Index>(g.x0, 1);
      Pred ok = wc.cmp_lt(ox, width);
      wc.store_global(out.data(), wc.affine(ox, 1, oy * out.pitch()), v, &ok);
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

/// 3D temporal blocking: 32 x 4 x 4 output tile, t fused steps.
template <typename T>
KernelStats stencil3d_temporal_smem(const sim::ArchSpec& arch,
                                    const GridView3D<const T>& in,
                                    const StencilShape<T>& shape, GridView3D<T> out,
                                    const TemporalOptions& opt = {},
                                    ExecMode mode = ExecMode::kFunctional,
                                    SampleSpec sample = {}) {
  int rx = 0, ry = 0, rz = 0;
  for (const auto& tap : shape.taps) {
    rx = std::max(rx, std::abs(tap.dx));
    ry = std::max(ry, std::abs(tap.dy));
    rz = std::max(rz, std::abs(tap.dz));
  }
  const int t = opt.t;
  const Index nx = in.nx(), ny = in.ny(), nz = in.nz();
  constexpr int kBlockThreads = 128;
  const int warps = kBlockThreads / sim::kWarpSize;
  const int tile_h = 4, tile_d = 4;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(nx, sim::kWarpSize)),
                  static_cast<int>(ceil_div(ny, tile_h)),
                  static_cast<int>(ceil_div(nz, tile_d))};
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = stencil_temporal_regs();

  auto body = [&, nx, ny, nz, warps, tile_h, tile_d, rx, ry, rz, t](auto& blk) {
    TileGeom3D g;
    g.x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
    g.y0 = static_cast<Index>(blk.id().y) * tile_h;
    g.z0 = static_cast<Index>(blk.id().z) * tile_d;
    g.tile_w = sim::kWarpSize;
    g.tile_h = tile_h;
    g.tile_d = tile_d;
    g.halo_x = t * rx;
    g.halo_y = t * ry;
    g.halo_z = t * rz;
    const int pw = g.padded_w();
    const int ph = g.padded_h();
    const int pd = g.padded_d();
    Smem<T> buf_a = blk.template alloc_smem<T>(pw * ph * pd);
    Smem<T> buf_b = blk.template alloc_smem<T>(pw * ph * pd);
    load_tile_3d(blk, in, g, buf_a);

    Smem<T>* src = &buf_a;
    Smem<T>* dst = &buf_b;
    for (int s = 0; s < t; ++s) {
      const int x_start = (s + 1) * rx;
      const int y_start = (s + 1) * ry;
      const int z_start = (s + 1) * rz;
      const int xw = pw - 2 * x_start;
      const int yh = ph - 2 * y_start;
      const int zh = pd - 2 * z_start;
      int idx = 0;
      for (int zz = 0; zz < zh; ++zz) {
        for (int yy = 0; yy < yh; ++yy, ++idx) {
          const int w = idx % warps;
          auto& wc = blk.warp(w);
          for (int cx = 0; cx < xw; cx += sim::kWarpSize) {
            Pred active = wc.cmp_lt(wc.template iota<int>(cx, 1), xw);
            Reg<T> acc = wc.uniform(T{});
            for (const auto& tap : shape.taps) {
              const int si =
                  ((z_start + zz + tap.dz) * ph + y_start + yy + tap.dy) * pw +
                  x_start + cx + tap.dx;
              const Reg<T> dv = wc.load_shared(*src, wc.add(wc.lane_id(), si), &active);
              acc = wc.mad(dv, tap.coeff, acc);
            }
            const Reg<int> di = wc.add(
                wc.lane_id(), ((z_start + zz) * ph + y_start + yy) * pw + x_start + cx);
            wc.store_shared(*dst, di, acc, &active);
          }
        }
      }
      blk.sync();
      std::swap(src, dst);
    }

    int idx = 0;
    for (int tz = 0; tz < tile_d; ++tz) {
      for (int ty = 0; ty < tile_h; ++ty, ++idx) {
        const int w = idx % warps;
        auto& wc = blk.warp(w);
        const Index oy = g.y0 + ty;
        const Index oz = g.z0 + tz;
        if (oy >= ny || oz >= nz) continue;
        const Reg<T> v = wc.load_shared(
            *src,
            wc.add(wc.lane_id(), ((tz + t * rz) * ph + ty + t * ry) * pw + t * rx));
        const Reg<Index> ox = wc.template iota<Index>(g.x0, 1);
        Pred ok = wc.cmp_lt(ox, nx);
        wc.store_global(out.data(), wc.affine(ox, 1, (oz * ny + oy) * nx), v, &ok);
      }
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::base
