// cuFFT-like 2D convolution baseline.
//
// Frequency-domain convolution: zero-pad image and (flipped, centered)
// filter to a power-of-two plan size, forward-FFT both, multiply pointwise,
// inverse-FFT, crop. Zero-padding makes the circular convolution equal the
// linear convolution with a zero border — the defining property the paper
// exploits is that runtime is *independent of filter size* (Fig. 4's flat
// cuFFT line at 353/349 ms).
//
// Functional path: host FFT substrate (fft.hpp) — used by tests/examples on
// small grids. Timing path: the pipeline's memory-streaming passes are
// executed on the simulator (butterfly passes fused radix-16 style, forward
// and inverse, rows and columns, plus the pointwise multiply) over a
// representative buffer and scaled to the plan size.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "baselines/fft.hpp"
#include "core/kernel_common.hpp"
#include "gpusim/timing.hpp"

namespace ssam::base {

using core::BlockContext;
using core::ExecMode;
using core::KernelStats;
using core::Pred;
using core::Reg;
using core::SampleSpec;
using core::WarpContext;

/// Functional frequency-domain convolution with zero-border semantics.
template <typename T>
void conv2d_fft(const GridView2D<const T>& in, std::span<const T> weights, int filter_m,
                int filter_n, GridView2D<T> out) {
  const int cx = (filter_m - 1) / 2;
  const int cy = (filter_n - 1) / 2;
  const Index pw = next_pow2(in.width() + filter_m - 1);
  const Index ph = next_pow2(in.height() + filter_n - 1);

  std::vector<std::complex<T>> a(static_cast<std::size_t>(pw * ph));
  std::vector<std::complex<T>> b(static_cast<std::size_t>(pw * ph));
  for (Index y = 0; y < in.height(); ++y) {
    for (Index x = 0; x < in.width(); ++x) {
      a[static_cast<std::size_t>(y * pw + x)] = in.at(x, y);
    }
  }
  // Correlation kernel placed so index (0,0) corresponds to tap (cx, cy):
  // out(x,y) = sum_{m,n} in(x+m-cx, y+n-cy) w(m,n)  <=>  circular shift.
  for (int n = 0; n < filter_n; ++n) {
    for (int m = 0; m < filter_m; ++m) {
      const Index sx = (m - cx) >= 0 ? (m - cx) : pw + (m - cx);
      const Index sy = (n - cy) >= 0 ? (n - cy) : ph + (n - cy);
      b[static_cast<std::size_t>(sy * pw + sx)] =
          weights[static_cast<std::size_t>(n) * filter_m + m];
    }
  }
  fft2d_inplace(a.data(), pw, ph, false);
  fft2d_inplace(b.data(), pw, ph, false);
  // Correlation = FFT(in) * conj(FFT(kernel)).
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= std::conj(b[i]);
  fft2d_inplace(a.data(), pw, ph, true);
  for (Index y = 0; y < out.height(); ++y) {
    for (Index x = 0; x < out.width(); ++x) {
      out.at(x, y) = a[static_cast<std::size_t>(y * pw + x)].real();
    }
  }
}

/// Simulated-GPU timing of the cuFFT pipeline for a W x H image (filter size
/// does not matter beyond plan padding). Returns aggregate KernelStats whose
/// runtime estimate reproduces the flat cuFFT line of Fig. 4.
template <typename T>
core::RunResult conv2d_fft_time(const sim::ArchSpec& arch, Index width, Index height,
                                int filter_m, int filter_n, SampleSpec sample = {}) {
  const Index pw = next_pow2(width + filter_m - 1);
  const Index ph = next_pow2(height + filter_n - 1);
  const Index elems = pw * ph;

  // Fused-radix plan: cuFFT executes ~log16(n) butterfly passes per 1D FFT.
  const int passes_rows = (ilog2(pw) + 3) / 4;
  const int passes_cols = (ilog2(ph) + 3) / 4;
  // Image forward + inverse over both dimensions, plus one pointwise pass.
  // (The filter's forward FFT is amortized/planned once; cuFFT still pays
  // it, so we include a single extra row+col sweep.)
  const int butterfly_passes = 3 * (passes_rows + passes_cols);
  const int pointwise_passes = 1;

  // Representative streaming butterfly pass over a bounded buffer; stats are
  // scaled to the plan size by the launcher's per-block extrapolation.
  const Index sim_elems = std::min<Index>(elems, Index{1} << 22);
  std::vector<std::complex<T>> buf(static_cast<std::size_t>(sim_elems));
  T* raw = reinterpret_cast<T*>(buf.data());
  const Index raw_n = sim_elems * 2;

  sim::LaunchConfig cfg;
  cfg.block_threads = 128;
  cfg.regs_per_thread = 40;
  // Each thread owns one butterfly pair: 2 complex loads + ~10 flops + 2 stores.
  const long long pairs_total = elems / 2;
  const long long pairs_per_block = cfg.block_threads;
  cfg.grid = Dim3{static_cast<int>(ceil_div(std::min<long long>(pairs_total, sim_elems / 2),
                                            pairs_per_block)),
                  1, 1};

  auto pass_body = [&, raw, raw_n](auto& blk) {
    for (int w = 0; w < blk.warp_count(); ++w) {
      auto& wc = blk.warp(w);
      const Index base =
          (static_cast<Index>(blk.id().x) * blk.warp_count() + w) * sim::kWarpSize;
      // Stockham-style pass: both streams unit-stride within their half.
      const Reg<Index> i0 = wc.affine(wc.template iota<Index>(0, 1), 4, (base * 4) % (raw_n / 2));
      const Reg<Index> i1 = wc.affine(i0, 1, raw_n / 2);
      Reg<T> ar = wc.load_global(raw, i0);
      Reg<T> ai = wc.load_global(raw, wc.affine(i0, 1, 1));
      Reg<T> br = wc.load_global(raw, i1);
      Reg<T> bi = wc.load_global(raw, wc.affine(i1, 1, 1));
      // Twiddle multiply + butterfly (~10 FP ops).
      const T tw_r = static_cast<T>(0.923879532);
      const T tw_i = static_cast<T>(-0.382683432);
      Reg<T> vr = wc.sub(wc.mul(br, tw_r), wc.mul(bi, tw_i));
      Reg<T> vi = wc.mad(br, tw_i, wc.mul(bi, tw_r));
      Reg<T> or0 = wc.add(ar, vr);
      Reg<T> oi0 = wc.add(ai, vi);
      Reg<T> or1 = wc.sub(ar, vr);
      Reg<T> oi1 = wc.sub(ai, vi);
      wc.store_global(raw, i0, or0);
      wc.store_global(raw, wc.affine(i0, 1, 1), oi0);
      wc.store_global(raw, i1, or1);
      wc.store_global(raw, wc.affine(i1, 1, 1), oi1);
    }
  };

  core::RunResult agg;
  KernelStats pass_stats = sim::launch(arch, cfg, pass_body, ExecMode::kTiming, sample);
  // Scale one pass to the full plan, then multiply by pass count.
  const double size_scale =
      static_cast<double>(pairs_total) /
      static_cast<double>(std::min<long long>(pairs_total, sim_elems / 2));
  sim::RuntimeEstimate one = sim::estimate_runtime(arch, pass_stats);
  const double per_pass_ms =
      std::max(one.compute_ms, one.dram_ms) * size_scale;
  agg.stats = pass_stats;
  agg.estimate = one;
  agg.estimate.compute_ms = one.compute_ms * size_scale * butterfly_passes;
  agg.estimate.dram_ms = one.dram_ms * size_scale * (butterfly_passes + pointwise_passes);
  agg.estimate.total_ms = per_pass_ms * (butterfly_passes + pointwise_passes) +
                          arch.kernel_launch_overhead_us * 1e-3 *
                              (butterfly_passes + pointwise_passes);
  agg.estimate.bound = one.bound;
  return agg;
}

}  // namespace ssam::base
