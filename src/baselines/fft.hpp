// FFT substrate for the cuFFT-like convolution baseline.
//
// A self-contained iterative radix-2 Cooley–Tukey FFT (power-of-two sizes)
// with 2D row/column helpers. Functional correctness lives here; the
// simulated-GPU timing of the cuFFT-like pipeline is in conv2d_fft.hpp.
#pragma once

#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/grid.hpp"

namespace ssam::base {

[[nodiscard]] constexpr bool is_pow2(Index n) { return n > 0 && (n & (n - 1)) == 0; }

[[nodiscard]] constexpr Index next_pow2(Index n) {
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

[[nodiscard]] constexpr int ilog2(Index n) {
  int k = 0;
  while ((Index{1} << k) < n) ++k;
  return k;
}

/// In-place iterative radix-2 FFT. `inverse` applies the conjugate transform
/// and the 1/n scale.
template <typename T>
void fft_inplace(std::complex<T>* data, Index n, bool inverse) {
  SSAM_REQUIRE(is_pow2(n), "fft size must be a power of two");
  // Bit-reversal permutation.
  for (Index i = 1, j = 0; i < n; ++i) {
    Index bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (Index len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * 3.14159265358979323846 / static_cast<double>(len);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (Index i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (Index k = 0; k < len / 2; ++k) {
        const std::complex<double> u(data[i + k]);
        const std::complex<double> v = std::complex<double>(data[i + k + len / 2]) * w;
        data[i + k] = std::complex<T>(u + v);
        data[i + k + len / 2] = std::complex<T>(u - v);
        w *= wl;
      }
    }
  }
  if (inverse) {
    const T scale = static_cast<T>(1.0 / static_cast<double>(n));
    for (Index i = 0; i < n; ++i) data[i] *= scale;
  }
}

/// 2D FFT over a row-major width x height complex grid (rows then columns).
template <typename T>
void fft2d_inplace(std::complex<T>* data, Index width, Index height, bool inverse) {
  for (Index y = 0; y < height; ++y) fft_inplace(data + y * width, width, inverse);
  std::vector<std::complex<T>> col(static_cast<std::size_t>(height));
  for (Index x = 0; x < width; ++x) {
    for (Index y = 0; y < height; ++y) col[static_cast<std::size_t>(y)] = data[y * width + x];
    fft_inplace(col.data(), height, inverse);
    for (Index y = 0; y < height; ++y) data[y * width + x] = col[static_cast<std::size_t>(y)];
  }
}

}  // namespace ssam::base
