// Direct (no scratchpad) stencil baselines: the "original", "reordered",
// "unrolled" variants of Rawat et al. [47, 48] that Figure 5 compares
// against, plus the Halide-like schedule (global loads + small unroll).
//
// Mechanistic differences:
//   * original  — one output/thread, per-tap clamped addressing, naive
//                 register allocation (low occupancy for high-order shapes);
//   * reordered — same loads, but reassociated index math (1 ALU/tap) and a
//                 tighter register footprint: the register-optimization the
//                 papers describe, which pays off for high-order stencils;
//   * unrolled  — U outputs per thread marching y; loads of the same column
//                 are kept in registers and reused across the U outputs
//                 (vertical reuse without warp communication);
//   * halide    — unrolled with U=2 and reordered-style addressing.
#pragma once

#include <vector>

#include "core/kernel_common.hpp"
#include "core/stencil_shape.hpp"

namespace ssam::base {

using core::BlockContext;
using core::ExecMode;
using core::KernelStats;
using core::Pred;
using core::Reg;
using core::SampleSpec;
using core::StencilShape;
using core::WarpContext;

enum class DirectStyle { kOriginal, kReordered, kUnrolled, kHalide };

[[nodiscard]] inline const char* to_string(DirectStyle s) {
  switch (s) {
    case DirectStyle::kOriginal: return "original";
    case DirectStyle::kReordered: return "reordered";
    case DirectStyle::kUnrolled: return "unrolled";
    case DirectStyle::kHalide: return "Halide";
  }
  return "?";
}

namespace detail {
struct DirectPolicy {
  int unroll = 1;        ///< outputs per thread along y
  int alu_per_tap = 3;   ///< addressing cost per tap (clamp + affine)
  int base_regs = 18;
  double regs_per_tap = 0.5;
};

[[nodiscard]] inline DirectPolicy policy_of(DirectStyle s) {
  switch (s) {
    case DirectStyle::kOriginal: return {1, 3, 18, 0.50};
    case DirectStyle::kReordered: return {1, 1, 16, 0.25};
    case DirectStyle::kUnrolled: return {4, 1, 22, 0.75};
    case DirectStyle::kHalide: return {2, 2, 20, 0.50};
  }
  return {};
}
}  // namespace detail

[[nodiscard]] inline int stencil_direct_regs(DirectStyle s, int taps) {
  const auto p = detail::policy_of(s);
  return p.base_regs + static_cast<int>(p.regs_per_tap * taps);
}

/// 2D direct stencil. One warp covers 32 consecutive x, `unroll` rows of y.
template <typename T>
KernelStats stencil2d_direct(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                             const StencilShape<T>& shape, GridView2D<T> out,
                             DirectStyle style, ExecMode mode = ExecMode::kFunctional,
                             SampleSpec sample = {}) {
  const auto pol = detail::policy_of(style);
  const Index width = in.width();
  const Index height = in.height();
  constexpr int kBlockThreads = 128;
  const int warps = kBlockThreads / sim::kWarpSize;
  const int uy = pol.unroll;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(width, sim::kWarpSize)),
                  static_cast<int>(ceil_div(height, static_cast<long long>(warps) * uy)), 1};
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = stencil_direct_regs(style, static_cast<int>(shape.taps.size()));

  // Organize taps by column for the register-reuse variants.
  int dx_min = 0, dx_max = 0, dy_min = 0, dy_max = 0;
  for (const auto& t : shape.taps) {
    dx_min = std::min(dx_min, t.dx);
    dx_max = std::max(dx_max, t.dx);
    dy_min = std::min(dy_min, t.dy);
    dy_max = std::max(dy_max, t.dy);
  }
  SSAM_REQUIRE(uy >= 1 && uy <= 8, "unroll exceeds the inline accumulator bound");
  SSAM_REQUIRE(dy_max - dy_min + uy <= 48,
               "stencil row span exceeds the inline row-cache bound");

  auto body = [&, width, height, warps, uy, pol, dx_min, dx_max, dy_min,
               dy_max](auto& blk) {
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      const Index oy0 = (static_cast<Index>(blk.id().y) * warps + w) * uy;
      const Index x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
      if (oy0 >= height || x0 >= width) continue;

      InlineVec<Reg<T>, 8> acc(uy);
      for (int u = 0; u < uy; ++u) acc[u] = wc.uniform(T{});

      if (uy == 1) {
        // original / reordered: straight per-tap loads.
        for (const auto& tap : shape.taps) {
          Index y = oy0 + tap.dy;
          y = y < 0 ? 0 : (y >= height ? height - 1 : y);
          const Reg<Index> gx =
              wc.clamp(wc.template iota<Index>(x0 + tap.dx, 1), Index{0}, width - 1);
          const Reg<Index> gidx = wc.affine(gx, 1, y * in.pitch());
          const Reg<T> dv = wc.load_global(in.data(), gidx);
          acc[0] = wc.mad(dv, tap.coeff, acc[0]);
        }
      } else {
        // unrolled / Halide: per column, load the row range once and feed
        // all unrolled outputs from registers.
        for (int dx = dx_min; dx <= dx_max; ++dx) {
          bool column_used = false;
          for (const auto& tap : shape.taps) column_used |= (tap.dx == dx);
          if (!column_used) continue;
          InlineVec<Reg<T>, 48> rows(dy_max - dy_min + uy);
          const Reg<Index> gx = wc.clamp(wc.template iota<Index>(x0 + dx, 1), Index{0}, width - 1);
          for (int r = 0; r < static_cast<int>(rows.size()); ++r) {
            Index y = oy0 + dy_min + r;
            y = y < 0 ? 0 : (y >= height ? height - 1 : y);
            const Reg<Index> gidx = wc.affine(gx, 1, y * in.pitch());
            rows[r] = wc.load_global(in.data(), gidx);
          }
          for (const auto& tap : shape.taps) {
            if (tap.dx != dx) continue;
            for (int u = 0; u < uy; ++u) {
              acc[u] =
                  wc.mad(rows[tap.dy - dy_min + u], tap.coeff,
                         acc[u]);
            }
          }
        }
      }

      const Reg<Index> ox = wc.template iota<Index>(x0, 1);
      Pred ok = wc.cmp_lt(ox, width);
      for (int u = 0; u < uy; ++u) {
        const Index oy = oy0 + u;
        if (oy >= height) break;
        const Reg<Index> oidx = wc.affine(ox, 1, oy * out.pitch());
        wc.store_global(out.data(), oidx, acc[u], &ok);
      }
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

/// 3D direct stencil with the same policy knobs.
template <typename T>
KernelStats stencil3d_direct(const sim::ArchSpec& arch, const GridView3D<const T>& in,
                             const StencilShape<T>& shape, GridView3D<T> out,
                             DirectStyle style, ExecMode mode = ExecMode::kFunctional,
                             SampleSpec sample = {}) {
  const auto pol = detail::policy_of(style);
  const Index nx = in.nx();
  const Index ny = in.ny();
  const Index nz = in.nz();
  constexpr int kBlockThreads = 128;
  const int warps = kBlockThreads / sim::kWarpSize;
  const int uy = pol.unroll;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(nx, sim::kWarpSize)),
                  static_cast<int>(ceil_div(ny, static_cast<long long>(warps) * uy)),
                  static_cast<int>(nz)};
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = stencil_direct_regs(style, static_cast<int>(shape.taps.size())) + 6;
  SSAM_REQUIRE(uy >= 1 && uy <= 8, "unroll exceeds the inline accumulator bound");

  auto body = [&, nx, ny, nz, warps, uy](auto& blk) {
    const Index z = blk.id().z;
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      const Index oy0 = (static_cast<Index>(blk.id().y) * warps + w) * uy;
      const Index x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
      if (oy0 >= ny || x0 >= nx) continue;

      InlineVec<Reg<T>, 8> acc(uy);
      for (int u = 0; u < uy; ++u) acc[u] = wc.uniform(T{});

      for (const auto& tap : shape.taps) {
        Index zz = z + tap.dz;
        zz = zz < 0 ? 0 : (zz >= nz ? nz - 1 : zz);
        const Reg<Index> gx = wc.clamp(wc.template iota<Index>(x0 + tap.dx, 1), Index{0}, nx - 1);
        for (int u = 0; u < uy; ++u) {
          Index y = oy0 + u + tap.dy;
          y = y < 0 ? 0 : (y >= ny ? ny - 1 : y);
          const Reg<Index> gidx = wc.affine(gx, 1, (zz * ny + y) * nx);
          const Reg<T> dv = wc.load_global(in.data(), gidx);
          acc[u] =
              wc.mad(dv, tap.coeff, acc[u]);
        }
      }

      const Reg<Index> ox = wc.template iota<Index>(x0, 1);
      Pred ok = wc.cmp_lt(ox, nx);
      for (int u = 0; u < uy; ++u) {
        const Index oy = oy0 + u;
        if (oy >= ny) break;
        const Reg<Index> oidx = wc.affine(ox, 1, (z * ny + oy) * nx);
        wc.store_global(out.data(), oidx, acc[u], &ok);
      }
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::base
