// Shared-memory tile staging used by the scratchpad-based baselines
// (ArrayFire-like convolution, ppcg-style stencils, StencilGen-style
// temporal blocking).
#pragma once

#include "common/grid.hpp"
#include "core/kernel_common.hpp"

namespace ssam::base {

using core::BlockContext;
using core::Pred;
using core::Reg;
using core::Smem;
using core::WarpContext;

/// Geometry of a 2D shared tile: tile_w x tile_h interior anchored at
/// (x0, y0) in the input, padded by (halo_x_lo/hi, halo_y_lo/hi).
struct TileGeom2D {
  Index x0 = 0, y0 = 0;
  int tile_w = 32, tile_h = 8;
  int halo_x_lo = 0, halo_x_hi = 0;
  int halo_y_lo = 0, halo_y_hi = 0;

  [[nodiscard]] int padded_w() const { return tile_w + halo_x_lo + halo_x_hi; }
  [[nodiscard]] int padded_h() const { return tile_h + halo_y_lo + halo_y_hi; }
  [[nodiscard]] int elems() const { return padded_w() * padded_h(); }
};

/// Cooperatively loads the padded tile into `dst` with replicate borders.
/// Each warp strides over padded rows; loads are coalesced per 32-chunk.
/// Ends with a barrier.
template <typename T, typename Block>
void load_tile_2d(Block& blk, const GridView2D<const T>& in, const TileGeom2D& g,
                  const Smem<T>& dst) {
  const int pw = g.padded_w();
  const int ph = g.padded_h();
  const int warps = blk.warp_count();
  for (int w = 0; w < warps; ++w) {
    auto& wc = blk.warp(w);
    for (int row = w; row < ph; row += warps) {
      const Index y = g.y0 - g.halo_y_lo + row;
      for (int cx = 0; cx < pw; cx += sim::kWarpSize) {
        const Index lane_x0 = g.x0 - g.halo_x_lo + cx;
        Reg<Index> gx = wc.clamp(wc.template iota<Index>(lane_x0, 1), Index{0}, in.width() - 1);
        Index yc = y < 0 ? 0 : (y >= in.height() ? in.height() - 1 : y);
        const Reg<Index> gidx = wc.affine(gx, 1, yc * in.pitch());
        Pred active = wc.cmp_lt(wc.template iota<int>(cx, 1), pw);
        const Reg<T> v = wc.load_global(in.data(), gidx, &active);
        const Reg<int> sidx = wc.template iota<int>(row * pw + cx, 1);
        wc.store_shared(dst, sidx, v, &active);
      }
    }
  }
  blk.sync();
}

/// Geometry of a 3D shared tile.
struct TileGeom3D {
  Index x0 = 0, y0 = 0, z0 = 0;
  int tile_w = 32, tile_h = 4, tile_d = 4;
  int halo_x = 0, halo_y = 0, halo_z = 0;

  [[nodiscard]] int padded_w() const { return tile_w + 2 * halo_x; }
  [[nodiscard]] int padded_h() const { return tile_h + 2 * halo_y; }
  [[nodiscard]] int padded_d() const { return tile_d + 2 * halo_z; }
  [[nodiscard]] int elems() const { return padded_w() * padded_h() * padded_d(); }
};

template <typename T, typename Block>
void load_tile_3d(Block& blk, const GridView3D<const T>& in, const TileGeom3D& g,
                  const Smem<T>& dst) {
  const int pw = g.padded_w();
  const int ph = g.padded_h();
  const int pd = g.padded_d();
  const int warps = blk.warp_count();
  for (int w = 0; w < warps; ++w) {
    auto& wc = blk.warp(w);
    for (int slab = w; slab < ph * pd; slab += warps) {
      const int row = slab % ph;
      const int dep = slab / ph;
      Index y = g.y0 - g.halo_y + row;
      Index z = g.z0 - g.halo_z + dep;
      y = y < 0 ? 0 : (y >= in.ny() ? in.ny() - 1 : y);
      z = z < 0 ? 0 : (z >= in.nz() ? in.nz() - 1 : z);
      for (int cx = 0; cx < pw; cx += sim::kWarpSize) {
        Reg<Index> gx =
            wc.clamp(wc.template iota<Index>(g.x0 - g.halo_x + cx, 1), Index{0}, in.nx() - 1);
        const Reg<Index> gidx = wc.affine(gx, 1, (z * in.ny() + y) * in.nx());
        Pred active = wc.cmp_lt(wc.template iota<int>(cx, 1), pw);
        const Reg<T> v = wc.load_global(in.data(), gidx, &active);
        const Reg<int> sidx = wc.template iota<int>((dep * ph + row) * pw + cx, 1);
        wc.store_shared(dst, sidx, v, &active);
      }
    }
  }
  blk.sync();
}

}  // namespace ssam::base
