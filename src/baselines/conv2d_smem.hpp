// ArrayFire-like 2D convolution: the conventional shared-memory scheme.
//
// Mirrors ArrayFire's `kernel::convolve2` (Section 6.2): the image tile is
// staged in shared memory with its halo, filter weights are read through a
// broadcast cache, and every output point runs an M*N multiply-accumulate
// loop with one shared-memory data read per tap — the Lsmem cost model of
// Section 5.2 (two scratchpad-class reads per MAD vs SSAM's one).
// ArrayFire's kernel caps the filter at 16x16; the cap is exported for the
// benches but not enforced here so ablations can exceed it.
#pragma once

#include <span>

#include "baselines/tile.hpp"
#include "core/kernel_common.hpp"

namespace ssam::base {

using core::ExecMode;
using core::KernelStats;
using core::SampleSpec;

inline constexpr int kArrayFireMaxFilter = 16;  ///< convolve2 limit (Section 6.2 (i))

struct ConvSmemOptions {
  int tile_h = 8;  ///< output rows per block (tile width is one warp)
  int block_threads = 128;
};

[[nodiscard]] inline int conv2d_smem_regs() { return 28; }

template <typename T>
KernelStats conv2d_smem(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                        std::span<const T> weights, int filter_m, int filter_n,
                        GridView2D<T> out, const ConvSmemOptions& opt = {},
                        ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  SSAM_REQUIRE(static_cast<Index>(weights.size()) ==
                   static_cast<Index>(filter_m) * filter_n,
               "weight count mismatch");
  const int m = filter_m;
  const int n = filter_n;
  const int cx = (m - 1) / 2;
  const int cy = (n - 1) / 2;
  const Index width = in.width();
  const Index height = in.height();
  const int warps = opt.block_threads / sim::kWarpSize;
  const int rows_per_warp = opt.tile_h / warps;
  SSAM_REQUIRE(rows_per_warp * warps == opt.tile_h, "tile_h must divide by warps");

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(width, sim::kWarpSize)),
                  static_cast<int>(ceil_div(height, opt.tile_h)), 1};
  cfg.block_threads = opt.block_threads;
  cfg.regs_per_thread = conv2d_smem_regs();

  const T* wgt = weights.data();
  auto body = [&, m, n, cx, cy, width, height, warps, rows_per_warp, wgt](auto& blk) {
    TileGeom2D g;
    g.x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
    g.y0 = static_cast<Index>(blk.id().y) * (rows_per_warp * warps);
    g.tile_w = sim::kWarpSize;
    g.tile_h = rows_per_warp * warps;
    g.halo_x_lo = cx;
    g.halo_x_hi = m - 1 - cx;
    g.halo_y_lo = cy;
    g.halo_y_hi = n - 1 - cy;

    Smem<T> tile = blk.template alloc_smem<T>(g.elems());
    Smem<T> wsm = blk.template alloc_smem<T>(m * n);  // stands in for the constant cache
    core::cooperative_load_to_smem(blk, wgt, wsm, m * n);
    load_tile_2d(blk, in, g, tile);

    const int pw = g.padded_w();
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      for (int r = 0; r < rows_per_warp; ++r) {
        const int ty = w * rows_per_warp + r;
        const Index oy = g.y0 + ty;
        if (oy >= height) continue;
        Reg<T> acc = wc.uniform(T{});
        for (int fn = 0; fn < n; ++fn) {
          // Row base inside the padded tile; one ALU per row (unrolled code
          // folds the rest into the LDS immediate offset).
          const Reg<int> base = wc.add(wc.lane_id(), (ty + fn) * pw);
          for (int fm = 0; fm < m; ++fm) {
            const Reg<T> wv = wc.load_shared_broadcast(wsm, fn * m + fm);
            const Reg<T> dv = wc.load_shared(tile, wc.add(base, fm));
            acc = wc.mad(dv, wv, acc);
          }
        }
        const Reg<Index> ox = wc.template iota<Index>(g.x0, 1);
        Pred ok = wc.cmp_lt(ox, width);
        const Reg<Index> oidx = wc.affine(ox, 1, oy * out.pitch());
        wc.store_global(out.data(), oidx, acc, &ok);
      }
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::base
