// Halide-like 2D convolution: what Halide's GPU autoschedule emits for a
// convolution pipeline — global loads relying on L1 residency, a y-unroll of
// two outputs per thread so vertically adjacent taps share loads, weights
// fetched through the read-only cache.
#pragma once

#include <span>

#include "core/kernel_common.hpp"

namespace ssam::base {

using core::BlockContext;
using core::ExecMode;
using core::KernelStats;
using core::Pred;
using core::Reg;
using core::SampleSpec;
using core::WarpContext;

struct ConvHalideOptions {
  // Halide's GPU autoschedule does not unroll the (runtime-sized) filter
  // loops for general convolutions; it emits a straight loop nest with
  // boundary lambdas — modest reuse, real bookkeeping (Section 6.2 (iv)).
  int unroll_y = 1;
  int block_threads = 128;
};

[[nodiscard]] inline int conv2d_halide_regs(int unroll_y) { return 22 + 6 * unroll_y; }

template <typename T>
KernelStats conv2d_halide(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                          std::span<const T> weights, int filter_m, int filter_n,
                          GridView2D<T> out, const ConvHalideOptions& opt = {},
                          ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  const int m = filter_m;
  const int n = filter_n;
  const int cx = (m - 1) / 2;
  const int cy = (n - 1) / 2;
  const Index width = in.width();
  const Index height = in.height();
  const int warps = opt.block_threads / sim::kWarpSize;
  const int uy = opt.unroll_y;
  SSAM_REQUIRE(uy >= 1 && uy <= 8, "unroll_y exceeds the inline accumulator bound");

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(width, sim::kWarpSize)),
                  static_cast<int>(ceil_div(height, static_cast<long long>(warps) * uy)), 1};
  cfg.block_threads = opt.block_threads;
  cfg.regs_per_thread = conv2d_halide_regs(uy);

  const T* wgt = weights.data();
  auto body = [&, m, n, cx, cy, width, height, warps, uy, wgt](auto& blk) {
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      const Index oy0 =
          (static_cast<Index>(blk.id().y) * warps + w) * uy;
      const Index x0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;
      if (oy0 >= height || x0 >= width) continue;

      InlineVec<Reg<T>, 8> acc(uy);
      for (int u = 0; u < uy; ++u) acc[u] = wc.uniform(T{});

      // Rows oy0-cy .. oy0+uy-1+n-1-cy: loaded once, reused by the unrolled
      // outputs that touch them (Halide's y-fused loop nest).
      for (int fn = 0; fn < n + uy - 1; ++fn) {
        Index y = oy0 + fn - cy;
        y = y < 0 ? 0 : (y >= height ? height - 1 : y);
        for (int fm = 0; fm < m; ++fm) {
          // Runtime loop nest + boundary lambda evaluation per tap.
          wc.charge_alu(2);
          const Reg<Index> gx =
              wc.clamp(wc.template iota<Index>(x0 + fm - cx, 1), Index{0}, width - 1);
          const Reg<Index> gidx = wc.affine(gx, 1, y * in.pitch());
          const Reg<T> dv = wc.load_global(in.data(), gidx);
          for (int u = 0; u < uy; ++u) {
            const int tap_n = fn - u;
            if (tap_n < 0 || tap_n >= n) continue;
            const Reg<T> wv = wc.load_global(wgt, wc.template uniform<Index>(tap_n * m + fm));
            acc[u] =
                wc.mad(dv, wv, acc[u]);
          }
        }
      }
      const Reg<Index> ox = wc.template iota<Index>(x0, 1);
      Pred ok = wc.cmp_lt(ox, width);
      for (int u = 0; u < uy; ++u) {
        const Index oy = oy0 + u;
        if (oy >= height) break;
        const Reg<Index> oidx = wc.affine(ox, 1, oy * out.pitch());
        wc.store_global(out.data(), oidx, acc[u], &ok);
      }
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::base
