#include "gpusim/arch.hpp"

#include "common/error.hpp"

namespace ssam::sim {

namespace {

ArchSpec make_p100() {
  ArchSpec a;
  a.name = "P100";
  a.sm_count = 56;
  a.clock_ghz = 1.480;
  a.max_warps_per_sm = 64;
  a.regs_per_sm = 65536;
  a.smem_per_sm = 64 * 1024;
  a.smem_per_block = 48 * 1024;
  a.l1_bytes = 24 * 1024;  // GP100 unified L1/texture
  a.l1_ways = 4;
  a.l2_bytes = 4 * 1024 * 1024;
  a.l2_ways = 16;
  a.dram_bw_gbps = 732.0;
  a.sm_issue_width = 2.0;
  a.issue_efficiency = 0.55;
  a.fp64_issue_cost = 2.0;
  a.register_banks = 4;
  a.lat.fp_mad = 6;   // paper Table 2
  a.lat.fp64_mad = 8;
  a.lat.alu = 6;
  a.lat.shfl = 33;    // paper Table 2
  a.lat.smem = 33;    // paper Table 2
  a.lat.l1 = 82;      // Jia et al. [15]
  a.lat.l2 = 234;     // Jia et al. [15]
  a.lat.dram = 450;
  a.lat.barrier = 26;
  return a;
}

ArchSpec make_v100() {
  ArchSpec a;
  a.name = "V100";
  a.sm_count = 80;
  a.clock_ghz = 1.530;
  a.max_warps_per_sm = 64;
  a.regs_per_sm = 65536;
  a.smem_per_sm = 96 * 1024;  // up to 96 KB (paper Table 1)
  a.smem_per_block = 96 * 1024;
  a.l1_bytes = 128 * 1024;  // Volta enhanced L1 (Section 7.1: >7x Pascal)
  a.l1_ways = 4;
  a.l2_bytes = 6 * 1024 * 1024;
  a.l2_ways = 16;
  a.dram_bw_gbps = 900.0;
  a.sm_issue_width = 2.0;
  a.issue_efficiency = 0.55;
  a.fp64_issue_cost = 2.0;
  a.register_banks = 2;
  a.lat.fp_mad = 4;   // paper Table 2
  a.lat.fp64_mad = 8;
  a.lat.alu = 4;
  a.lat.shfl = 22;    // paper Table 2
  a.lat.smem = 27;    // paper Table 2
  a.lat.l1 = 28;      // Jia et al. [16]; Section 7.1: ~2.8x faster than P100
  a.lat.l2 = 193;     // Section 7.1
  a.lat.dram = 400;
  a.lat.barrier = 22;
  return a;
}

ArchSpec make_k40() {
  ArchSpec a;
  a.name = "K40";
  a.sm_count = 15;
  a.clock_ghz = 0.875;
  a.max_warps_per_sm = 64;
  a.regs_per_sm = 65536;
  a.smem_per_sm = 48 * 1024;  // 16/32/48 configurable (paper Table 1)
  a.smem_per_block = 48 * 1024;
  a.l1_bytes = 16 * 1024;
  a.l2_bytes = 1536 * 1024;
  a.dram_bw_gbps = 288.0;
  a.sm_issue_width = 4.0;  // Kepler: 192 cores, 4 schedulers
  a.issue_efficiency = 0.45;
  a.fp64_issue_cost = 3.0;
  a.register_banks = 4;
  a.lat.fp_mad = 9;
  a.lat.fp64_mad = 10;
  a.lat.alu = 9;
  a.lat.shfl = 33;
  a.lat.smem = 47;
  a.lat.l1 = 35;
  a.lat.l2 = 200;
  a.lat.dram = 500;
  return a;
}

ArchSpec make_m40() {
  ArchSpec a;
  a.name = "M40";
  a.sm_count = 24;
  a.clock_ghz = 1.114;
  a.max_warps_per_sm = 64;
  a.regs_per_sm = 65536;
  a.smem_per_sm = 96 * 1024;  // paper Table 1
  a.smem_per_block = 48 * 1024;
  a.l1_bytes = 24 * 1024;
  a.l2_bytes = 3 * 1024 * 1024;
  a.dram_bw_gbps = 288.0;
  a.sm_issue_width = 2.0;
  a.issue_efficiency = 0.50;
  a.fp64_issue_cost = 32.0;  // Maxwell 1:32 FP64
  a.register_banks = 4;
  a.lat.fp_mad = 6;
  a.lat.fp64_mad = 48;
  a.lat.alu = 6;
  a.lat.shfl = 33;
  a.lat.smem = 34;
  a.lat.l1 = 30;
  a.lat.l2 = 210;
  a.lat.dram = 480;
  return a;
}

}  // namespace

const ArchSpec& tesla_p100() {
  static const ArchSpec a = make_p100();
  return a;
}
const ArchSpec& tesla_v100() {
  static const ArchSpec a = make_v100();
  return a;
}
const ArchSpec& tesla_k40() {
  static const ArchSpec a = make_k40();
  return a;
}
const ArchSpec& tesla_m40() {
  static const ArchSpec a = make_m40();
  return a;
}

const std::vector<const ArchSpec*>& all_archs() {
  static const std::vector<const ArchSpec*> v = {&tesla_k40(), &tesla_m40(), &tesla_p100(),
                                                 &tesla_v100()};
  return v;
}

const ArchSpec& arch_by_name(const std::string& name) {
  for (const ArchSpec* a : all_archs()) {
    if (a->name == name) return *a;
  }
  throw PreconditionError("unknown architecture: " + name);
}

}  // namespace ssam::sim
