// Portable reference implementation of the 32-lane engine.
//
// `ref::` free functions define the *semantics* of every lane primitive as
// one short fixed-trip-count loop per operation. Every vector backend must
// reproduce these bit-for-bit (the parity suite in tests/test_simd_parity.cpp
// enforces exact equality, including float bit patterns), which is what keeps
// functional-mode kernel results identical no matter which backend CMake
// selected. `RefOps<T>` packages the reference as the customization point:
// `LaneOps<T>` (see simd.hpp) derives from it, and a vector backend
// specializes `LaneOps` for the element types it accelerates, shadowing just
// the statics it implements natively.
//
// FP contract note: `mad` is deliberately two roundings (multiply, then add),
// never a fused FMA. The build adds -ffp-contract=off so the compiler cannot
// silently contract these loops on FMA-capable targets — otherwise the scalar
// reference would fuse under -march=native but not under the default arch,
// and cross-backend bit parity would be flag-dependent.
#pragma once

#include <cstdint>
#include <type_traits>

namespace ssam::sim::simd {

/// Lane count of the engine: one CUDA warp.
inline constexpr int kSimdLanes = 32;

// Vectorization hint for the reference loops. `omp simd` needs
// -fopenmp / -fopenmp-simd; without it the fixed trip count still lets the
// optimizer auto-vectorize at -O2/-O3.
#if defined(_OPENMP)
#define SSAM_SIMD _Pragma("omp simd")
#else
#define SSAM_SIMD
#endif

namespace ref {

// Integer lane arithmetic wraps modulo 2^N, exactly like the vector
// intrinsics of every backend. Computing it through the unsigned type keeps
// the reference loops free of signed-overflow UB (the parity suite drives
// them with full-range lanes under UBSan) without changing a single result
// bit. Floating-point passes through untouched.
template <typename T>
[[nodiscard]] inline T wrap_add(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
  } else {
    return a + b;
  }
}

template <typename T>
[[nodiscard]] inline T wrap_sub(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) - static_cast<U>(b));
  } else {
    return a - b;
  }
}

template <typename T>
[[nodiscard]] inline T wrap_mul(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
  } else {
    return a * b;
  }
}

template <typename T>
[[nodiscard]] inline T wrap_mad(T a, T b, T c) {
  return wrap_add(wrap_mul(a, b), c);
}

template <typename T>
inline void splat(T* d, T v) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = v;
}

/// Repeated addition, matching the historical Vec::iota semantics exactly
/// (for floating T, base + l*step would round differently).
template <typename T>
inline void iota(T* d, T base, T step) {
  T v = base;
  for (int l = 0; l < kSimdLanes; ++l, v = wrap_add(v, step)) d[l] = v;
}

template <typename T>
inline void add(T* d, const T* a, const T* b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = wrap_add(a[l], b[l]);
}

template <typename T>
inline void add_s(T* d, const T* a, T b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = wrap_add(a[l], b);
}

template <typename T>
inline void sub(T* d, const T* a, const T* b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = wrap_sub(a[l], b[l]);
}

template <typename T>
inline void mul(T* d, const T* a, const T* b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = wrap_mul(a[l], b[l]);
}

template <typename T>
inline void mul_s(T* d, const T* a, T b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = wrap_mul(a[l], b);
}

/// d = a*b + c, two roundings (see FP contract note in the header comment).
template <typename T>
inline void mad(T* d, const T* a, const T* b, const T* c) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = wrap_mad(a[l], b[l], c[l]);
}

template <typename T>
inline void mad_s(T* d, const T* a, T b, const T* c) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = wrap_mad(a[l], b, c[l]);
}

template <typename T>
inline void affine(T* d, const T* x, T scale, T offset) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = wrap_mad(x[l], scale, offset);
}

template <typename T>
inline void clamp(T* d, const T* x, T lo, T hi) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) {
    T v = x[l];
    v = v < lo ? lo : v;
    v = v > hi ? hi : v;
    d[l] = v;
  }
}

template <typename T>
inline void ge_s(int* d, const T* a, T b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = a[l] >= b ? 1 : 0;
}

template <typename T>
inline void lt_s(int* d, const T* a, T b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = a[l] < b ? 1 : 0;
}

inline void logical_and(int* d, const int* a, const int* b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = (a[l] != 0 && b[l] != 0) ? 1 : 0;
}

template <typename T>
inline void select(T* d, const int* pred, const T* a, const T* b) {
  SSAM_SIMD
  for (int l = 0; l < kSimdLanes; ++l) d[l] = pred[l] != 0 ? a[l] : b[l];
}

// Shuffles follow CUDA __shfl_*_sync semantics with a full mask: a lane
// whose source falls outside the warp keeps its own value. Callers normalize
// delta into [1, 32] and the butterfly mask into [0, 31] before dispatching.

/// __shfl_up: lane l receives lane l-delta; lanes < delta keep their own.
template <typename T>
inline void shift_up(T* d, const T* a, int delta) {
  for (int l = 0; l < kSimdLanes; ++l) d[l] = l >= delta ? a[l - delta] : a[l];
}

/// __shfl_down: lane l receives lane l+delta; top delta lanes keep their own.
template <typename T>
inline void shift_down(T* d, const T* a, int delta) {
  for (int l = 0; l < kSimdLanes; ++l) {
    d[l] = l + delta < kSimdLanes ? a[l + delta] : a[l];
  }
}

/// __shfl_xor butterfly; lane_mask must already be masked into [0, 31].
template <typename T>
inline void butterfly(T* d, const T* a, int lane_mask) {
  for (int l = 0; l < kSimdLanes; ++l) d[l] = a[l ^ lane_mask];
}

/// True when every predicate lane is active — the common case of masked
/// loads/stores issued by interior (non-border) warps.
[[nodiscard]] inline bool all_nonzero(const int* p) {
  bool all = true;
  for (int l = 0; l < kSimdLanes; ++l) all &= p[l] != 0;
  return all;
}

/// True when idx is the unit-stride ramp idx[0], idx[0]+1, ... — the fully
/// coalesced pattern almost every SSAM access produces.
template <typename T>
[[nodiscard]] inline bool unit_stride(const T* idx) {
  const T i0 = idx[0];
  bool contiguous = true;
  // Loop-carried reduction: no `omp simd` (it would need a reduction
  // clause); the fixed-trip loop auto-vectorizes fine regardless.
  for (int l = 1; l < kSimdLanes; ++l) {
    contiguous &= idx[l] == wrap_add(i0, static_cast<T>(l));
  }
  return contiguous;
}

}  // namespace ref

/// Reference ops bundle. `LaneOps<T>` (simd.hpp) derives from this; vector
/// backends specialize `LaneOps` and shadow the statics they accelerate, so
/// any element type or operation a backend does not cover falls back here.
template <typename T>
struct RefOps {
  static constexpr bool kVectorized = false;

  static void splat(T* d, T v) { ref::splat(d, v); }
  static void iota(T* d, T base, T step) { ref::iota(d, base, step); }
  static void add(T* d, const T* a, const T* b) { ref::add(d, a, b); }
  static void add_s(T* d, const T* a, T b) { ref::add_s(d, a, b); }
  static void sub(T* d, const T* a, const T* b) { ref::sub(d, a, b); }
  static void mul(T* d, const T* a, const T* b) { ref::mul(d, a, b); }
  static void mul_s(T* d, const T* a, T b) { ref::mul_s(d, a, b); }
  static void mad(T* d, const T* a, const T* b, const T* c) { ref::mad(d, a, b, c); }
  static void mad_s(T* d, const T* a, T b, const T* c) { ref::mad_s(d, a, b, c); }
  static void affine(T* d, const T* x, T scale, T offset) { ref::affine(d, x, scale, offset); }
  static void clamp(T* d, const T* x, T lo, T hi) { ref::clamp(d, x, lo, hi); }
  static void ge_s(int* d, const T* a, T b) { ref::ge_s(d, a, b); }
  static void lt_s(int* d, const T* a, T b) { ref::lt_s(d, a, b); }
  static void logical_and(int* d, const int* a, const int* b) { ref::logical_and(d, a, b); }
  static void select(T* d, const int* pred, const T* a, const T* b) {
    ref::select(d, pred, a, b);
  }
  static void shift_up(T* d, const T* a, int delta) { ref::shift_up(d, a, delta); }
  static void shift_down(T* d, const T* a, int delta) { ref::shift_down(d, a, delta); }
  static void butterfly(T* d, const T* a, int lane_mask) { ref::butterfly(d, a, lane_mask); }
  static bool unit_stride(const T* idx) { return ref::unit_stride(idx); }
  static bool all_nonzero(const int* p) { return ref::all_nonzero(p); }
};

/// The customization point the lane engine (gpusim/vec.hpp) dispatches
/// through. The primary template is the portable-scalar backend; each vector
/// backend header (avx512.hpp, avx2.hpp, ...) specializes it for the element
/// types it accelerates. Selection happens at compile time in simd.hpp.
template <typename T>
struct LaneOps : RefOps<T> {};

}  // namespace ssam::sim::simd
