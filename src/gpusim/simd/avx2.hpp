// AVX2 backend of the 32-lane engine: four 256-bit registers per warp value
// (float / int32) and eight-lane chunks of int64 indices.
//
// AVX2 has no two-source cross-register permute, but `vpermd`
// (_mm256_permutevar8x32_epi32) is a full 8-lane variable permute, so every
// systolic shuffle decomposes into per-chunk rotations plus a lane blend:
// a shift by delta = 8k + w sources output chunk c from chunks c-k and
// c-k-1 (both rotated by the same w) with a position mask picking between
// them — two vpermd + one vpblendvb per chunk, no memory round-trip. The
// butterfly is a single vpermd per chunk (chunk c ^ (mask>>3), indices
// XOR-ed with mask&7).
//
// Arithmetic matches the scalar reference bit-for-bit: mad is unfused
// (mul, then add; see the -ffp-contract=off note in scalar.hpp), and float
// clamp is compare+blend so NaN lanes resolve like the reference ternaries.
// 64-bit lane-index multiplies use the classic mul_epu32 three-product
// decomposition, which wraps exactly like scalar 64-bit multiplication.
#pragma once

#if !defined(__AVX2__)
#error "simd/avx2.hpp requires -mavx2"
#endif

#include <immintrin.h>

#include <cstdint>

#include "gpusim/simd/scalar.hpp"

namespace ssam::sim::simd {

namespace avx2 {

[[nodiscard]] inline __m256i ramp8() { return _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7); }

[[nodiscard]] inline __m256i load_chunk(const void* a, int c) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(static_cast<const char*>(a) + 32 * c));
}

inline void store_chunk(void* d, int c, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(static_cast<char*>(d) + 32 * c), v);
}

/// shfl_up on 4-byte lanes: output chunk c takes its top lanes from chunk
/// c-k rotated by `within` and its bottom `within` lanes from chunk c-k-1
/// (same rotation); lanes below the warp edge keep their own value.
inline void shift_up32(void* d, const void* a, int delta) {
  const int k = delta >> 3;
  const int within = delta & 7;
  // vpermd only reads the low 3 bits of each index, so the plain difference
  // rotates: (j - within) mod 8.
  const __m256i rot = _mm256_sub_epi32(ramp8(), _mm256_set1_epi32(within));
  const __m256i take_rot = _mm256_cmpgt_epi32(ramp8(), _mm256_set1_epi32(within - 1));
  __m256i out[4];
  for (int c = 0; c < 4; ++c) {
    if (c < k) {
      out[c] = load_chunk(a, c);  // fully below the edge: keep own lanes
      continue;
    }
    const __m256i rot_a = _mm256_permutevar8x32_epi32(load_chunk(a, c - k), rot);
    const __m256i low =
        c == k ? load_chunk(a, c)  // partial edge: low lanes keep their own
               : _mm256_permutevar8x32_epi32(load_chunk(a, c - k - 1), rot);
    out[c] = _mm256_blendv_epi8(low, rot_a, take_rot);
  }
  for (int c = 0; c < 4; ++c) store_chunk(d, c, out[c]);
}

/// shfl_down mirror image: chunk c sources chunks c+k and c+k+1.
inline void shift_down32(void* d, const void* a, int delta) {
  const int k = delta >> 3;
  const int within = delta & 7;
  const __m256i rot = _mm256_add_epi32(ramp8(), _mm256_set1_epi32(within));
  const __m256i take_rot = _mm256_cmpgt_epi32(_mm256_set1_epi32(8 - within), ramp8());
  __m256i out[4];
  for (int c = 0; c < 4; ++c) {
    if (c + k > 3) {
      out[c] = load_chunk(a, c);  // fully above the edge: keep own lanes
      continue;
    }
    const __m256i rot_a = _mm256_permutevar8x32_epi32(load_chunk(a, c + k), rot);
    const __m256i high = c + k + 1 > 3
                             ? load_chunk(a, c)  // partial edge: keep own
                             : _mm256_permutevar8x32_epi32(load_chunk(a, c + k + 1), rot);
    out[c] = _mm256_blendv_epi8(high, rot_a, take_rot);
  }
  for (int c = 0; c < 4; ++c) store_chunk(d, c, out[c]);
}

/// shfl_xor: one vpermd per chunk. lane_mask is in [0, 31].
inline void butterfly32(void* d, const void* a, int lane_mask) {
  const __m256i idx = _mm256_xor_si256(ramp8(), _mm256_set1_epi32(lane_mask & 7));
  const int chunk_xor = lane_mask >> 3;
  __m256i out[4];
  for (int c = 0; c < 4; ++c) {
    out[c] = _mm256_permutevar8x32_epi32(load_chunk(a, c ^ chunk_xor), idx);
  }
  for (int c = 0; c < 4; ++c) store_chunk(d, c, out[c]);
}

/// Exact wrapping 64x64 -> low-64 multiply from 32-bit products.
[[nodiscard]] inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i b_swap = _mm256_shuffle_epi32(b, 0xB1);       // b_hi | b_lo swapped
  const __m256i cross = _mm256_mullo_epi32(a, b_swap);        // a_lo*b_hi, a_hi*b_lo
  const __m256i cross_sum = _mm256_hadd_epi32(cross, _mm256_setzero_si256());
  const __m256i cross_hi = _mm256_shuffle_epi32(cross_sum, 0x73);  // into high dwords
  const __m256i prod_ll = _mm256_mul_epu32(a, b);             // a_lo*b_lo, full 64
  return _mm256_add_epi64(prod_ll, cross_hi);
}

}  // namespace avx2

template <>
struct LaneOps<float> : RefOps<float> {
  static constexpr bool kVectorized = true;

  static void splat(float* d, float v) {
    const __m256 s = _mm256_set1_ps(v);
    for (int c = 0; c < 4; ++c) _mm256_storeu_ps(d + 8 * c, s);
  }

  static void add(float* d, const float* a, const float* b) {
    for (int c = 0; c < 4; ++c) {
      _mm256_storeu_ps(d + 8 * c,
                       _mm256_add_ps(_mm256_loadu_ps(a + 8 * c), _mm256_loadu_ps(b + 8 * c)));
    }
  }

  static void add_s(float* d, const float* a, float b) {
    const __m256 bv = _mm256_set1_ps(b);
    for (int c = 0; c < 4; ++c) {
      _mm256_storeu_ps(d + 8 * c, _mm256_add_ps(_mm256_loadu_ps(a + 8 * c), bv));
    }
  }

  static void sub(float* d, const float* a, const float* b) {
    for (int c = 0; c < 4; ++c) {
      _mm256_storeu_ps(d + 8 * c,
                       _mm256_sub_ps(_mm256_loadu_ps(a + 8 * c), _mm256_loadu_ps(b + 8 * c)));
    }
  }

  static void mul(float* d, const float* a, const float* b) {
    for (int c = 0; c < 4; ++c) {
      _mm256_storeu_ps(d + 8 * c,
                       _mm256_mul_ps(_mm256_loadu_ps(a + 8 * c), _mm256_loadu_ps(b + 8 * c)));
    }
  }

  static void mul_s(float* d, const float* a, float b) {
    const __m256 bv = _mm256_set1_ps(b);
    for (int c = 0; c < 4; ++c) {
      _mm256_storeu_ps(d + 8 * c, _mm256_mul_ps(_mm256_loadu_ps(a + 8 * c), bv));
    }
  }

  // Unfused on purpose (see scalar.hpp): no _mm256_fmadd_ps here.
  static void mad(float* d, const float* a, const float* b, const float* c3) {
    for (int c = 0; c < 4; ++c) {
      _mm256_storeu_ps(d + 8 * c,
                       _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(a + 8 * c),
                                                   _mm256_loadu_ps(b + 8 * c)),
                                     _mm256_loadu_ps(c3 + 8 * c)));
    }
  }

  static void mad_s(float* d, const float* a, float b, const float* c3) {
    const __m256 bv = _mm256_set1_ps(b);
    for (int c = 0; c < 4; ++c) {
      _mm256_storeu_ps(d + 8 * c, _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(a + 8 * c), bv),
                                                _mm256_loadu_ps(c3 + 8 * c)));
    }
  }

  static void affine(float* d, const float* x, float scale, float offset) {
    const __m256 sv = _mm256_set1_ps(scale);
    const __m256 ov = _mm256_set1_ps(offset);
    for (int c = 0; c < 4; ++c) {
      _mm256_storeu_ps(d + 8 * c,
                       _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(x + 8 * c), sv), ov));
    }
  }

  static void clamp(float* d, const float* x, float lo, float hi) {
    const __m256 lov = _mm256_set1_ps(lo);
    const __m256 hiv = _mm256_set1_ps(hi);
    for (int c = 0; c < 4; ++c) {
      __m256 v = _mm256_loadu_ps(x + 8 * c);
      v = _mm256_blendv_ps(v, lov, _mm256_cmp_ps(v, lov, _CMP_LT_OQ));
      v = _mm256_blendv_ps(v, hiv, _mm256_cmp_ps(v, hiv, _CMP_GT_OQ));
      _mm256_storeu_ps(d + 8 * c, v);
    }
  }

  static void ge_s(int* d, const float* a, float b) {
    const __m256 bv = _mm256_set1_ps(b);
    const __m256i one = _mm256_set1_epi32(1);
    for (int c = 0; c < 4; ++c) {
      const __m256i m = _mm256_castps_si256(_mm256_cmp_ps(_mm256_loadu_ps(a + 8 * c), bv,
                                                          _CMP_GE_OQ));
      avx2::store_chunk(d, c, _mm256_and_si256(m, one));
    }
  }

  static void lt_s(int* d, const float* a, float b) {
    const __m256 bv = _mm256_set1_ps(b);
    const __m256i one = _mm256_set1_epi32(1);
    for (int c = 0; c < 4; ++c) {
      const __m256i m = _mm256_castps_si256(_mm256_cmp_ps(_mm256_loadu_ps(a + 8 * c), bv,
                                                          _CMP_LT_OQ));
      avx2::store_chunk(d, c, _mm256_and_si256(m, one));
    }
  }

  static void select(float* d, const int* pred, const float* a, const float* b) {
    const __m256i zero = _mm256_setzero_si256();
    for (int c = 0; c < 4; ++c) {
      const __m256i p_zero = _mm256_cmpeq_epi32(avx2::load_chunk(pred, c), zero);
      _mm256_storeu_ps(d + 8 * c,
                       _mm256_blendv_ps(_mm256_loadu_ps(a + 8 * c), _mm256_loadu_ps(b + 8 * c),
                                        _mm256_castsi256_ps(p_zero)));
    }
  }

  static void shift_up(float* d, const float* a, int delta) { avx2::shift_up32(d, a, delta); }
  static void shift_down(float* d, const float* a, int delta) {
    avx2::shift_down32(d, a, delta);
  }
  static void butterfly(float* d, const float* a, int lane_mask) {
    avx2::butterfly32(d, a, lane_mask);
  }
};

template <>
struct LaneOps<std::int32_t> : RefOps<std::int32_t> {
  static constexpr bool kVectorized = true;
  using T = std::int32_t;

  static void splat(T* d, T v) {
    const __m256i s = _mm256_set1_epi32(v);
    for (int c = 0; c < 4; ++c) avx2::store_chunk(d, c, s);
  }

  static void iota(T* d, T base, T step) {
    const __m256i sv = _mm256_set1_epi32(step);
    const __m256i bv = _mm256_set1_epi32(base);
    __m256i r = avx2::ramp8();
    const __m256i eight = _mm256_set1_epi32(8);
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(d, c, _mm256_add_epi32(_mm256_mullo_epi32(r, sv), bv));
      r = _mm256_add_epi32(r, eight);
    }
  }

  static void add(T* d, const T* a, const T* b) {
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(d, c, _mm256_add_epi32(avx2::load_chunk(a, c), avx2::load_chunk(b, c)));
    }
  }

  static void add_s(T* d, const T* a, T b) {
    const __m256i bv = _mm256_set1_epi32(b);
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(d, c, _mm256_add_epi32(avx2::load_chunk(a, c), bv));
    }
  }

  static void sub(T* d, const T* a, const T* b) {
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(d, c, _mm256_sub_epi32(avx2::load_chunk(a, c), avx2::load_chunk(b, c)));
    }
  }

  static void mul(T* d, const T* a, const T* b) {
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(d, c,
                        _mm256_mullo_epi32(avx2::load_chunk(a, c), avx2::load_chunk(b, c)));
    }
  }

  static void mul_s(T* d, const T* a, T b) {
    const __m256i bv = _mm256_set1_epi32(b);
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(d, c, _mm256_mullo_epi32(avx2::load_chunk(a, c), bv));
    }
  }

  static void mad(T* d, const T* a, const T* b, const T* c3) {
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(
          d, c,
          _mm256_add_epi32(_mm256_mullo_epi32(avx2::load_chunk(a, c), avx2::load_chunk(b, c)),
                           avx2::load_chunk(c3, c)));
    }
  }

  static void mad_s(T* d, const T* a, T b, const T* c3) {
    const __m256i bv = _mm256_set1_epi32(b);
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(d, c, _mm256_add_epi32(_mm256_mullo_epi32(avx2::load_chunk(a, c), bv),
                                               avx2::load_chunk(c3, c)));
    }
  }

  static void affine(T* d, const T* x, T scale, T offset) {
    const __m256i sv = _mm256_set1_epi32(scale);
    const __m256i ov = _mm256_set1_epi32(offset);
    for (int c = 0; c < 4; ++c) {
      avx2::store_chunk(d, c,
                        _mm256_add_epi32(_mm256_mullo_epi32(avx2::load_chunk(x, c), sv), ov));
    }
  }

  static void clamp(T* d, const T* x, T lo, T hi) {
    const __m256i lov = _mm256_set1_epi32(lo);
    const __m256i hiv = _mm256_set1_epi32(hi);
    for (int c = 0; c < 4; ++c) {
      __m256i v = avx2::load_chunk(x, c);
      v = _mm256_min_epi32(_mm256_max_epi32(v, lov), hiv);
      avx2::store_chunk(d, c, v);
    }
  }

  static void ge_s(int* d, const T* a, T b) {
    const __m256i bv = _mm256_set1_epi32(b);
    const __m256i one = _mm256_set1_epi32(1);
    for (int c = 0; c < 4; ++c) {
      // a >= b  <=>  !(b > a); the compare mask is 0/-1 so (mask + 1) flips it.
      const __m256i lt = _mm256_cmpgt_epi32(bv, avx2::load_chunk(a, c));
      avx2::store_chunk(d, c, _mm256_add_epi32(lt, one));
    }
  }

  static void lt_s(int* d, const T* a, T b) {
    const __m256i bv = _mm256_set1_epi32(b);
    const __m256i one = _mm256_set1_epi32(1);
    for (int c = 0; c < 4; ++c) {
      const __m256i lt = _mm256_cmpgt_epi32(bv, avx2::load_chunk(a, c));
      avx2::store_chunk(d, c, _mm256_and_si256(lt, one));
    }
  }

  static void logical_and(int* d, const int* a, const int* b) {
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi32(1);
    for (int c = 0; c < 4; ++c) {
      const __m256i either_zero =
          _mm256_or_si256(_mm256_cmpeq_epi32(avx2::load_chunk(a, c), zero),
                          _mm256_cmpeq_epi32(avx2::load_chunk(b, c), zero));
      avx2::store_chunk(d, c, _mm256_andnot_si256(either_zero, one));
    }
  }

  static void select(T* d, const int* pred, const T* a, const T* b) {
    const __m256i zero = _mm256_setzero_si256();
    for (int c = 0; c < 4; ++c) {
      const __m256i p_zero = _mm256_cmpeq_epi32(avx2::load_chunk(pred, c), zero);
      avx2::store_chunk(
          d, c, _mm256_blendv_epi8(avx2::load_chunk(a, c), avx2::load_chunk(b, c), p_zero));
    }
  }

  static void shift_up(T* d, const T* a, int delta) { avx2::shift_up32(d, a, delta); }
  static void shift_down(T* d, const T* a, int delta) { avx2::shift_down32(d, a, delta); }
  static void butterfly(T* d, const T* a, int lane_mask) {
    avx2::butterfly32(d, a, lane_mask);
  }

  static bool unit_stride(const T* idx) {
    const __m256i i0 = _mm256_set1_epi32(idx[0]);
    __m256i r = avx2::ramp8();
    const __m256i eight = _mm256_set1_epi32(8);
    __m256i all = _mm256_set1_epi32(-1);
    for (int c = 0; c < 4; ++c) {
      all = _mm256_and_si256(
          all, _mm256_cmpeq_epi32(avx2::load_chunk(idx, c), _mm256_add_epi32(i0, r)));
      r = _mm256_add_epi32(r, eight);
    }
    return _mm256_movemask_epi8(all) == -1;
  }

  static bool all_nonzero(const int* p) {
    const __m256i zero = _mm256_setzero_si256();
    __m256i any_zero = zero;
    for (int c = 0; c < 4; ++c) {
      any_zero = _mm256_or_si256(any_zero, _mm256_cmpeq_epi32(avx2::load_chunk(p, c), zero));
    }
    return _mm256_movemask_epi8(any_zero) == 0;
  }
};

/// 64-bit lane indices: four lanes per register, eight registers. The
/// addressing ops (iota, affine, clamp, bounds compares, unit-stride) are
/// what shows up on kernel hot paths; shuffles of 8-byte lanes stay on the
/// reference path (they do not occur in the kernels — shuffles move values,
/// which are 4-byte).
template <>
struct LaneOps<std::int64_t> : RefOps<std::int64_t> {
  static constexpr bool kVectorized = true;
  using T = std::int64_t;

  [[nodiscard]] static __m256i ramp4(int q) {  // lanes 4q .. 4q+3
    const std::int64_t b = 4 * q;
    return _mm256_setr_epi64x(b, b + 1, b + 2, b + 3);
  }

  [[nodiscard]] static __m256i load4(const T* p, int q) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4 * q));
  }

  static void store4(T* p, int q, __m256i v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 4 * q), v);
  }

  static void splat(T* d, T v) {
    const __m256i s = _mm256_set1_epi64x(v);
    for (int q = 0; q < 8; ++q) store4(d, q, s);
  }

  static void iota(T* d, T base, T step) {
    const __m256i sv = _mm256_set1_epi64x(step);
    const __m256i bv = _mm256_set1_epi64x(base);
    for (int q = 0; q < 8; ++q) {
      store4(d, q, _mm256_add_epi64(avx2::mullo64(ramp4(q), sv), bv));
    }
  }

  static void add(T* d, const T* a, const T* b) {
    for (int q = 0; q < 8; ++q) store4(d, q, _mm256_add_epi64(load4(a, q), load4(b, q)));
  }

  static void add_s(T* d, const T* a, T b) {
    const __m256i bv = _mm256_set1_epi64x(b);
    for (int q = 0; q < 8; ++q) store4(d, q, _mm256_add_epi64(load4(a, q), bv));
  }

  static void sub(T* d, const T* a, const T* b) {
    for (int q = 0; q < 8; ++q) store4(d, q, _mm256_sub_epi64(load4(a, q), load4(b, q)));
  }

  static void mul(T* d, const T* a, const T* b) {
    for (int q = 0; q < 8; ++q) store4(d, q, avx2::mullo64(load4(a, q), load4(b, q)));
  }

  static void mul_s(T* d, const T* a, T b) {
    const __m256i bv = _mm256_set1_epi64x(b);
    for (int q = 0; q < 8; ++q) store4(d, q, avx2::mullo64(load4(a, q), bv));
  }

  static void mad(T* d, const T* a, const T* b, const T* c) {
    for (int q = 0; q < 8; ++q) {
      store4(d, q, _mm256_add_epi64(avx2::mullo64(load4(a, q), load4(b, q)), load4(c, q)));
    }
  }

  static void mad_s(T* d, const T* a, T b, const T* c) {
    const __m256i bv = _mm256_set1_epi64x(b);
    for (int q = 0; q < 8; ++q) {
      store4(d, q, _mm256_add_epi64(avx2::mullo64(load4(a, q), bv), load4(c, q)));
    }
  }

  static void affine(T* d, const T* x, T scale, T offset) {
    const __m256i sv = _mm256_set1_epi64x(scale);
    const __m256i ov = _mm256_set1_epi64x(offset);
    for (int q = 0; q < 8; ++q) {
      store4(d, q, _mm256_add_epi64(avx2::mullo64(load4(x, q), sv), ov));
    }
  }

  static void clamp(T* d, const T* x, T lo, T hi) {
    const __m256i lov = _mm256_set1_epi64x(lo);
    const __m256i hiv = _mm256_set1_epi64x(hi);
    for (int q = 0; q < 8; ++q) {
      __m256i v = load4(x, q);
      v = _mm256_blendv_epi8(v, lov, _mm256_cmpgt_epi64(lov, v));  // v < lo
      v = _mm256_blendv_epi8(v, hiv, _mm256_cmpgt_epi64(v, hiv));  // v > hi
      store4(d, q, v);
    }
  }

  static void ge_s(int* d, const T* a, T b) {
    const __m256i bv = _mm256_set1_epi64x(b);
    for (int q = 0; q < 8; ++q) {
      const int lt_bits = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(bv, load4(a, q))));
      for (int i = 0; i < 4; ++i) d[4 * q + i] = ((lt_bits >> i) & 1) ^ 1;
    }
  }

  static void lt_s(int* d, const T* a, T b) {
    const __m256i bv = _mm256_set1_epi64x(b);
    for (int q = 0; q < 8; ++q) {
      const int lt_bits = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(bv, load4(a, q))));
      for (int i = 0; i < 4; ++i) d[4 * q + i] = (lt_bits >> i) & 1;
    }
  }

  static void select(T* d, const int* pred, const T* a, const T* b) {
    const __m128i zero = _mm_setzero_si128();
    for (int q = 0; q < 8; ++q) {
      const __m128i p = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pred + 4 * q));
      const __m256i p_zero64 = _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(p, zero));
      store4(d, q, _mm256_blendv_epi8(load4(a, q), load4(b, q), p_zero64));
    }
  }

  static bool unit_stride(const T* idx) {
    const __m256i i0 = _mm256_set1_epi64x(idx[0]);
    __m256i all = _mm256_set1_epi64x(-1);
    for (int q = 0; q < 8; ++q) {
      all = _mm256_and_si256(all,
                             _mm256_cmpeq_epi64(load4(idx, q), _mm256_add_epi64(i0, ramp4(q))));
    }
    return _mm256_movemask_epi8(all) == -1;
  }
};

inline constexpr const char* kBackendName = "avx2";

}  // namespace ssam::sim::simd
