// AVX-512 backend of the 32-lane engine: two 512-bit registers per warp
// value (float / int32), four for int64 lane indices.
//
// The systolic shuffles lower to true register permutes: `shfl_up/down`
// build a source-lane index vector (iota -/+ delta, clamped to "keep own
// lane" at the warp edge, exactly the CUDA __shfl_*_sync semantics) and run
// one `vpermt2d` (_mm512_permutex2var_epi32) per output register — a
// two-source cross-register permute, so the 32-lane shift never touches
// memory. `shfl_xor` is the same permute with an XOR-ed index ramp.
//
// All arithmetic preserves the reference semantics bit-for-bit:
//  * mad is multiply-then-add (two roundings, no FMA) to match the scalar
//    reference built with -ffp-contract=off;
//  * float clamp is compare+blend, not min/max, because x86 min/max
//    intrinsics resolve NaN operands differently than the reference's
//    ternary chain.
//
// Requires AVX512F + BW + DQ + VL (vpermt2d/vpermt2q need F; vpmullq needs
// DQ; the mask-to-0/1-int conversions use VL forms). CMake only selects this
// backend when the compiler accepts -mavx512f -mavx512bw -mavx512dq
// -mavx512vl and the build host executes them.
#pragma once

#if !defined(__AVX512F__) || !defined(__AVX512BW__) || !defined(__AVX512DQ__) || \
    !defined(__AVX512VL__)
#error "simd/avx512.hpp requires -mavx512f -mavx512bw -mavx512dq -mavx512vl"
#endif

#include <immintrin.h>

#include <cstdint>

#include "gpusim/simd/scalar.hpp"

namespace ssam::sim::simd {

namespace avx512 {

[[nodiscard]] inline __m512i ramp_lo16() {
  return _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
}
[[nodiscard]] inline __m512i ramp_hi16() {
  return _mm512_setr_epi32(16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
}

/// Runs one 32-lane 4-byte permute: output register h takes lane idx_h[l]
/// (0..31) from the concatenation of the two input registers.
inline void permute32(void* d, const void* a, __m512i idx_lo, __m512i idx_hi) {
  const __m512i lo = _mm512_loadu_si512(a);
  const __m512i hi = _mm512_loadu_si512(static_cast<const char*>(a) + 64);
  _mm512_storeu_si512(d, _mm512_permutex2var_epi32(lo, idx_lo, hi));
  _mm512_storeu_si512(static_cast<char*>(d) + 64, _mm512_permutex2var_epi32(lo, idx_hi, hi));
}

/// Source-lane indices for shfl_up: l - delta, or l itself when that would
/// fall off the low edge (lane keeps its own value).
inline void shift_up32(void* d, const void* a, int delta) {
  const __m512i dv = _mm512_set1_epi32(delta);
  const __m512i r0 = ramp_lo16();
  const __m512i r1 = ramp_hi16();
  __m512i i0 = _mm512_sub_epi32(r0, dv);
  __m512i i1 = _mm512_sub_epi32(r1, dv);
  const __m512i zero = _mm512_setzero_si512();
  i0 = _mm512_mask_mov_epi32(i0, _mm512_cmplt_epi32_mask(i0, zero), r0);
  i1 = _mm512_mask_mov_epi32(i1, _mm512_cmplt_epi32_mask(i1, zero), r1);
  permute32(d, a, i0, i1);
}

/// Source-lane indices for shfl_down: l + delta, clamped at the high edge.
inline void shift_down32(void* d, const void* a, int delta) {
  const __m512i dv = _mm512_set1_epi32(delta);
  const __m512i r0 = ramp_lo16();
  const __m512i r1 = ramp_hi16();
  __m512i i0 = _mm512_add_epi32(r0, dv);
  __m512i i1 = _mm512_add_epi32(r1, dv);
  const __m512i top = _mm512_set1_epi32(kSimdLanes - 1);
  i0 = _mm512_mask_mov_epi32(i0, _mm512_cmpgt_epi32_mask(i0, top), r0);
  i1 = _mm512_mask_mov_epi32(i1, _mm512_cmpgt_epi32_mask(i1, top), r1);
  permute32(d, a, i0, i1);
}

/// shfl_xor: source lane l ^ mask; mask is in [0, 31] so the index ramp
/// stays in range by construction.
inline void butterfly32(void* d, const void* a, int lane_mask) {
  const __m512i mv = _mm512_set1_epi32(lane_mask);
  permute32(d, a, _mm512_xor_si512(ramp_lo16(), mv), _mm512_xor_si512(ramp_hi16(), mv));
}

/// Stores a 0/1 int32 lane predicate from two 16-lane compare masks.
inline void store_mask32(int* d, __mmask16 lo, __mmask16 hi) {
  _mm512_storeu_si512(d, _mm512_maskz_set1_epi32(lo, 1));
  _mm512_storeu_si512(d + 16, _mm512_maskz_set1_epi32(hi, 1));
}

}  // namespace avx512

template <>
struct LaneOps<float> : RefOps<float> {
  static constexpr bool kVectorized = true;

  static void splat(float* d, float v) {
    const __m512 s = _mm512_set1_ps(v);
    _mm512_storeu_ps(d, s);
    _mm512_storeu_ps(d + 16, s);
  }

  static void add(float* d, const float* a, const float* b) {
    _mm512_storeu_ps(d, _mm512_add_ps(_mm512_loadu_ps(a), _mm512_loadu_ps(b)));
    _mm512_storeu_ps(d + 16, _mm512_add_ps(_mm512_loadu_ps(a + 16), _mm512_loadu_ps(b + 16)));
  }

  static void add_s(float* d, const float* a, float b) {
    const __m512 bv = _mm512_set1_ps(b);
    _mm512_storeu_ps(d, _mm512_add_ps(_mm512_loadu_ps(a), bv));
    _mm512_storeu_ps(d + 16, _mm512_add_ps(_mm512_loadu_ps(a + 16), bv));
  }

  static void sub(float* d, const float* a, const float* b) {
    _mm512_storeu_ps(d, _mm512_sub_ps(_mm512_loadu_ps(a), _mm512_loadu_ps(b)));
    _mm512_storeu_ps(d + 16, _mm512_sub_ps(_mm512_loadu_ps(a + 16), _mm512_loadu_ps(b + 16)));
  }

  static void mul(float* d, const float* a, const float* b) {
    _mm512_storeu_ps(d, _mm512_mul_ps(_mm512_loadu_ps(a), _mm512_loadu_ps(b)));
    _mm512_storeu_ps(d + 16, _mm512_mul_ps(_mm512_loadu_ps(a + 16), _mm512_loadu_ps(b + 16)));
  }

  static void mul_s(float* d, const float* a, float b) {
    const __m512 bv = _mm512_set1_ps(b);
    _mm512_storeu_ps(d, _mm512_mul_ps(_mm512_loadu_ps(a), bv));
    _mm512_storeu_ps(d + 16, _mm512_mul_ps(_mm512_loadu_ps(a + 16), bv));
  }

  // Deliberately unfused (mul, then add): bit parity with the scalar
  // reference under -ffp-contract=off.
  static void mad(float* d, const float* a, const float* b, const float* c) {
    _mm512_storeu_ps(
        d, _mm512_add_ps(_mm512_mul_ps(_mm512_loadu_ps(a), _mm512_loadu_ps(b)),
                         _mm512_loadu_ps(c)));
    _mm512_storeu_ps(
        d + 16, _mm512_add_ps(_mm512_mul_ps(_mm512_loadu_ps(a + 16), _mm512_loadu_ps(b + 16)),
                              _mm512_loadu_ps(c + 16)));
  }

  static void mad_s(float* d, const float* a, float b, const float* c) {
    const __m512 bv = _mm512_set1_ps(b);
    _mm512_storeu_ps(d, _mm512_add_ps(_mm512_mul_ps(_mm512_loadu_ps(a), bv), _mm512_loadu_ps(c)));
    _mm512_storeu_ps(d + 16, _mm512_add_ps(_mm512_mul_ps(_mm512_loadu_ps(a + 16), bv),
                                           _mm512_loadu_ps(c + 16)));
  }

  static void affine(float* d, const float* x, float scale, float offset) {
    const __m512 sv = _mm512_set1_ps(scale);
    const __m512 ov = _mm512_set1_ps(offset);
    _mm512_storeu_ps(d, _mm512_add_ps(_mm512_mul_ps(_mm512_loadu_ps(x), sv), ov));
    _mm512_storeu_ps(d + 16, _mm512_add_ps(_mm512_mul_ps(_mm512_loadu_ps(x + 16), sv), ov));
  }

  // Compare+blend (not min/max) so NaN lanes resolve exactly like the
  // reference ternary chain: comparisons with NaN are false, lane keeps x.
  static void clamp(float* d, const float* x, float lo, float hi) {
    const __m512 lov = _mm512_set1_ps(lo);
    const __m512 hiv = _mm512_set1_ps(hi);
    for (int h = 0; h < 2; ++h) {
      __m512 v = _mm512_loadu_ps(x + 16 * h);
      v = _mm512_mask_mov_ps(v, _mm512_cmp_ps_mask(v, lov, _CMP_LT_OQ), lov);
      v = _mm512_mask_mov_ps(v, _mm512_cmp_ps_mask(v, hiv, _CMP_GT_OQ), hiv);
      _mm512_storeu_ps(d + 16 * h, v);
    }
  }

  static void ge_s(int* d, const float* a, float b) {
    const __m512 bv = _mm512_set1_ps(b);
    avx512::store_mask32(d, _mm512_cmp_ps_mask(_mm512_loadu_ps(a), bv, _CMP_GE_OQ),
                         _mm512_cmp_ps_mask(_mm512_loadu_ps(a + 16), bv, _CMP_GE_OQ));
  }

  static void lt_s(int* d, const float* a, float b) {
    const __m512 bv = _mm512_set1_ps(b);
    avx512::store_mask32(d, _mm512_cmp_ps_mask(_mm512_loadu_ps(a), bv, _CMP_LT_OQ),
                         _mm512_cmp_ps_mask(_mm512_loadu_ps(a + 16), bv, _CMP_LT_OQ));
  }

  static void select(float* d, const int* pred, const float* a, const float* b) {
    for (int h = 0; h < 2; ++h) {
      const __m512i p = _mm512_loadu_si512(pred + 16 * h);
      const __mmask16 m = _mm512_test_epi32_mask(p, p);  // pred != 0
      _mm512_storeu_ps(d + 16 * h,
                       _mm512_mask_blend_ps(m, _mm512_loadu_ps(b + 16 * h),
                                            _mm512_loadu_ps(a + 16 * h)));
    }
  }

  static void shift_up(float* d, const float* a, int delta) {
    avx512::shift_up32(d, a, delta);
  }
  static void shift_down(float* d, const float* a, int delta) {
    avx512::shift_down32(d, a, delta);
  }
  static void butterfly(float* d, const float* a, int lane_mask) {
    avx512::butterfly32(d, a, lane_mask);
  }
};

template <>
struct LaneOps<std::int32_t> : RefOps<std::int32_t> {
  static constexpr bool kVectorized = true;
  using T = std::int32_t;

  static void splat(T* d, T v) {
    const __m512i s = _mm512_set1_epi32(v);
    _mm512_storeu_si512(d, s);
    _mm512_storeu_si512(d + 16, s);
  }

  static void iota(T* d, T base, T step) {
    const __m512i sv = _mm512_set1_epi32(step);
    const __m512i bv = _mm512_set1_epi32(base);
    _mm512_storeu_si512(d, _mm512_add_epi32(_mm512_mullo_epi32(avx512::ramp_lo16(), sv), bv));
    _mm512_storeu_si512(d + 16,
                        _mm512_add_epi32(_mm512_mullo_epi32(avx512::ramp_hi16(), sv), bv));
  }

  static void add(T* d, const T* a, const T* b) {
    _mm512_storeu_si512(d, _mm512_add_epi32(_mm512_loadu_si512(a), _mm512_loadu_si512(b)));
    _mm512_storeu_si512(
        d + 16, _mm512_add_epi32(_mm512_loadu_si512(a + 16), _mm512_loadu_si512(b + 16)));
  }

  static void add_s(T* d, const T* a, T b) {
    const __m512i bv = _mm512_set1_epi32(b);
    _mm512_storeu_si512(d, _mm512_add_epi32(_mm512_loadu_si512(a), bv));
    _mm512_storeu_si512(d + 16, _mm512_add_epi32(_mm512_loadu_si512(a + 16), bv));
  }

  static void sub(T* d, const T* a, const T* b) {
    _mm512_storeu_si512(d, _mm512_sub_epi32(_mm512_loadu_si512(a), _mm512_loadu_si512(b)));
    _mm512_storeu_si512(
        d + 16, _mm512_sub_epi32(_mm512_loadu_si512(a + 16), _mm512_loadu_si512(b + 16)));
  }

  static void mul(T* d, const T* a, const T* b) {
    _mm512_storeu_si512(d, _mm512_mullo_epi32(_mm512_loadu_si512(a), _mm512_loadu_si512(b)));
    _mm512_storeu_si512(
        d + 16, _mm512_mullo_epi32(_mm512_loadu_si512(a + 16), _mm512_loadu_si512(b + 16)));
  }

  static void mul_s(T* d, const T* a, T b) {
    const __m512i bv = _mm512_set1_epi32(b);
    _mm512_storeu_si512(d, _mm512_mullo_epi32(_mm512_loadu_si512(a), bv));
    _mm512_storeu_si512(d + 16, _mm512_mullo_epi32(_mm512_loadu_si512(a + 16), bv));
  }

  static void mad(T* d, const T* a, const T* b, const T* c) {
    _mm512_storeu_si512(
        d, _mm512_add_epi32(_mm512_mullo_epi32(_mm512_loadu_si512(a), _mm512_loadu_si512(b)),
                            _mm512_loadu_si512(c)));
    _mm512_storeu_si512(d + 16, _mm512_add_epi32(_mm512_mullo_epi32(_mm512_loadu_si512(a + 16),
                                                                    _mm512_loadu_si512(b + 16)),
                                                 _mm512_loadu_si512(c + 16)));
  }

  static void mad_s(T* d, const T* a, T b, const T* c) {
    const __m512i bv = _mm512_set1_epi32(b);
    _mm512_storeu_si512(d, _mm512_add_epi32(_mm512_mullo_epi32(_mm512_loadu_si512(a), bv),
                                            _mm512_loadu_si512(c)));
    _mm512_storeu_si512(d + 16, _mm512_add_epi32(_mm512_mullo_epi32(_mm512_loadu_si512(a + 16), bv),
                                                 _mm512_loadu_si512(c + 16)));
  }

  static void affine(T* d, const T* x, T scale, T offset) {
    const __m512i sv = _mm512_set1_epi32(scale);
    const __m512i ov = _mm512_set1_epi32(offset);
    _mm512_storeu_si512(d, _mm512_add_epi32(_mm512_mullo_epi32(_mm512_loadu_si512(x), sv), ov));
    _mm512_storeu_si512(d + 16,
                        _mm512_add_epi32(_mm512_mullo_epi32(_mm512_loadu_si512(x + 16), sv), ov));
  }

  // Integer min/max match the reference ternary chain exactly.
  static void clamp(T* d, const T* x, T lo, T hi) {
    const __m512i lov = _mm512_set1_epi32(lo);
    const __m512i hiv = _mm512_set1_epi32(hi);
    for (int h = 0; h < 2; ++h) {
      __m512i v = _mm512_loadu_si512(x + 16 * h);
      v = _mm512_min_epi32(_mm512_max_epi32(v, lov), hiv);
      _mm512_storeu_si512(d + 16 * h, v);
    }
  }

  static void ge_s(int* d, const T* a, T b) {
    const __m512i bv = _mm512_set1_epi32(b);
    avx512::store_mask32(d, _mm512_cmpge_epi32_mask(_mm512_loadu_si512(a), bv),
                         _mm512_cmpge_epi32_mask(_mm512_loadu_si512(a + 16), bv));
  }

  static void lt_s(int* d, const T* a, T b) {
    const __m512i bv = _mm512_set1_epi32(b);
    avx512::store_mask32(d, _mm512_cmplt_epi32_mask(_mm512_loadu_si512(a), bv),
                         _mm512_cmplt_epi32_mask(_mm512_loadu_si512(a + 16), bv));
  }

  static void logical_and(int* d, const int* a, const int* b) {
    for (int h = 0; h < 2; ++h) {
      const __m512i av = _mm512_loadu_si512(a + 16 * h);
      const __m512i bv = _mm512_loadu_si512(b + 16 * h);
      const __mmask16 m = _mm512_test_epi32_mask(av, av) & _mm512_test_epi32_mask(bv, bv);
      _mm512_storeu_si512(d + 16 * h, _mm512_maskz_set1_epi32(m, 1));
    }
  }

  static void select(T* d, const int* pred, const T* a, const T* b) {
    for (int h = 0; h < 2; ++h) {
      const __m512i p = _mm512_loadu_si512(pred + 16 * h);
      const __mmask16 m = _mm512_test_epi32_mask(p, p);
      _mm512_storeu_si512(d + 16 * h,
                          _mm512_mask_blend_epi32(m, _mm512_loadu_si512(b + 16 * h),
                                                  _mm512_loadu_si512(a + 16 * h)));
    }
  }

  static void shift_up(T* d, const T* a, int delta) { avx512::shift_up32(d, a, delta); }
  static void shift_down(T* d, const T* a, int delta) { avx512::shift_down32(d, a, delta); }
  static void butterfly(T* d, const T* a, int lane_mask) {
    avx512::butterfly32(d, a, lane_mask);
  }

  static bool unit_stride(const T* idx) {
    const __m512i i0 = _mm512_set1_epi32(idx[0]);
    const __mmask16 k0 = _mm512_cmpeq_epi32_mask(
        _mm512_loadu_si512(idx), _mm512_add_epi32(i0, avx512::ramp_lo16()));
    const __mmask16 k1 = _mm512_cmpeq_epi32_mask(
        _mm512_loadu_si512(idx + 16), _mm512_add_epi32(i0, avx512::ramp_hi16()));
    return (k0 & k1) == 0xffffu;
  }

  static bool all_nonzero(const int* p) {
    const __m512i lo = _mm512_loadu_si512(p);
    const __m512i hi = _mm512_loadu_si512(p + 16);
    return (_mm512_test_epi32_mask(lo, lo) & _mm512_test_epi32_mask(hi, hi)) == 0xffffu;
  }
};

/// 64-bit lane indices (ssam::Index): eight lanes per register, four
/// registers. These are the addressing ops of every load/store — iota,
/// affine, clamp, bounds compares, and the coalescing unit-stride test.
template <>
struct LaneOps<std::int64_t> : RefOps<std::int64_t> {
  static constexpr bool kVectorized = true;
  using T = std::int64_t;

  [[nodiscard]] static __m512i ramp8(int q) {  // lanes 8q .. 8q+7
    const std::int64_t b = 8 * q;
    return _mm512_setr_epi64(b, b + 1, b + 2, b + 3, b + 4, b + 5, b + 6, b + 7);
  }

  static void splat(T* d, T v) {
    const __m512i s = _mm512_set1_epi64(v);
    for (int q = 0; q < 4; ++q) _mm512_storeu_si512(d + 8 * q, s);
  }

  static void iota(T* d, T base, T step) {
    const __m512i sv = _mm512_set1_epi64(step);
    const __m512i bv = _mm512_set1_epi64(base);
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(d + 8 * q, _mm512_add_epi64(_mm512_mullo_epi64(ramp8(q), sv), bv));
    }
  }

  static void add(T* d, const T* a, const T* b) {
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(
          d + 8 * q, _mm512_add_epi64(_mm512_loadu_si512(a + 8 * q), _mm512_loadu_si512(b + 8 * q)));
    }
  }

  static void add_s(T* d, const T* a, T b) {
    const __m512i bv = _mm512_set1_epi64(b);
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(d + 8 * q, _mm512_add_epi64(_mm512_loadu_si512(a + 8 * q), bv));
    }
  }

  static void sub(T* d, const T* a, const T* b) {
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(
          d + 8 * q, _mm512_sub_epi64(_mm512_loadu_si512(a + 8 * q), _mm512_loadu_si512(b + 8 * q)));
    }
  }

  static void mul(T* d, const T* a, const T* b) {
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(d + 8 * q, _mm512_mullo_epi64(_mm512_loadu_si512(a + 8 * q),
                                                        _mm512_loadu_si512(b + 8 * q)));
    }
  }

  static void mul_s(T* d, const T* a, T b) {
    const __m512i bv = _mm512_set1_epi64(b);
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(d + 8 * q, _mm512_mullo_epi64(_mm512_loadu_si512(a + 8 * q), bv));
    }
  }

  static void mad(T* d, const T* a, const T* b, const T* c) {
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(
          d + 8 * q,
          _mm512_add_epi64(_mm512_mullo_epi64(_mm512_loadu_si512(a + 8 * q),
                                              _mm512_loadu_si512(b + 8 * q)),
                           _mm512_loadu_si512(c + 8 * q)));
    }
  }

  static void mad_s(T* d, const T* a, T b, const T* c) {
    const __m512i bv = _mm512_set1_epi64(b);
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(d + 8 * q,
                          _mm512_add_epi64(_mm512_mullo_epi64(_mm512_loadu_si512(a + 8 * q), bv),
                                           _mm512_loadu_si512(c + 8 * q)));
    }
  }

  static void affine(T* d, const T* x, T scale, T offset) {
    const __m512i sv = _mm512_set1_epi64(scale);
    const __m512i ov = _mm512_set1_epi64(offset);
    for (int q = 0; q < 4; ++q) {
      _mm512_storeu_si512(d + 8 * q,
                          _mm512_add_epi64(_mm512_mullo_epi64(_mm512_loadu_si512(x + 8 * q), sv),
                                           ov));
    }
  }

  static void clamp(T* d, const T* x, T lo, T hi) {
    const __m512i lov = _mm512_set1_epi64(lo);
    const __m512i hiv = _mm512_set1_epi64(hi);
    for (int q = 0; q < 4; ++q) {
      __m512i v = _mm512_loadu_si512(x + 8 * q);
      v = _mm512_min_epi64(_mm512_max_epi64(v, lov), hiv);
      _mm512_storeu_si512(d + 8 * q, v);
    }
  }

  static void ge_s(int* d, const T* a, T b) {
    const __m512i bv = _mm512_set1_epi64(b);
    for (int h = 0; h < 2; ++h) {
      const __mmask8 m0 = _mm512_cmpge_epi64_mask(_mm512_loadu_si512(a + 16 * h), bv);
      const __mmask8 m1 = _mm512_cmpge_epi64_mask(_mm512_loadu_si512(a + 16 * h + 8), bv);
      const __mmask16 m = static_cast<__mmask16>(m0 | (static_cast<unsigned>(m1) << 8));
      _mm512_storeu_si512(d + 16 * h, _mm512_maskz_set1_epi32(m, 1));
    }
  }

  static void lt_s(int* d, const T* a, T b) {
    const __m512i bv = _mm512_set1_epi64(b);
    for (int h = 0; h < 2; ++h) {
      const __mmask8 m0 = _mm512_cmplt_epi64_mask(_mm512_loadu_si512(a + 16 * h), bv);
      const __mmask8 m1 = _mm512_cmplt_epi64_mask(_mm512_loadu_si512(a + 16 * h + 8), bv);
      const __mmask16 m = static_cast<__mmask16>(m0 | (static_cast<unsigned>(m1) << 8));
      _mm512_storeu_si512(d + 16 * h, _mm512_maskz_set1_epi32(m, 1));
    }
  }

  static void select(T* d, const int* pred, const T* a, const T* b) {
    for (int q = 0; q < 4; ++q) {
      // Widen the 8 int32 predicate lanes for this register to a mask.
      const __m256i p = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pred + 8 * q));
      const __mmask8 m = _mm256_test_epi32_mask(p, p);
      _mm512_storeu_si512(d + 8 * q,
                          _mm512_mask_blend_epi64(m, _mm512_loadu_si512(b + 8 * q),
                                                  _mm512_loadu_si512(a + 8 * q)));
    }
  }

  static bool unit_stride(const T* idx) {
    const __m512i i0 = _mm512_set1_epi64(idx[0]);
    __mmask8 k = 0xff;
    for (int q = 0; q < 4; ++q) {
      k &= _mm512_cmpeq_epi64_mask(_mm512_loadu_si512(idx + 8 * q),
                                   _mm512_add_epi64(i0, ramp8(q)));
    }
    return k == 0xff;
  }

  // 8-byte shuffles run the same two-source permute trick with vpermt2q.
  static void shift_up(T* d, const T* a, int delta) { permute_shift(d, a, -delta); }
  static void shift_down(T* d, const T* a, int delta) { permute_shift(d, a, delta); }

  static void butterfly(T* d, const T* a, int lane_mask) {
    const __m512i mv = _mm512_set1_epi64(lane_mask);
    for (int q = 0; q < 4; ++q) {
      const __m512i idx = _mm512_xor_si512(ramp8(q), mv);
      store_permuted(d + 8 * q, a, idx);
    }
  }

 private:
  /// d[l] = a[l + shift] where in range, else a[l] (CUDA keep-own edges).
  static void permute_shift(T* d, const T* a, int shift) {
    const __m512i sv = _mm512_set1_epi64(shift);
    const __m512i zero = _mm512_setzero_si512();
    const __m512i top = _mm512_set1_epi64(kSimdLanes - 1);
    for (int q = 0; q < 4; ++q) {
      const __m512i r = ramp8(q);
      __m512i idx = _mm512_add_epi64(r, sv);
      const __mmask8 oob =
          _mm512_cmplt_epi64_mask(idx, zero) | _mm512_cmpgt_epi64_mask(idx, top);
      idx = _mm512_mask_mov_epi64(idx, oob, r);
      store_permuted(d + 8 * q, a, idx);
    }
  }

  /// One output register whose lane l takes a[idx[l]], idx in [0, 31]:
  /// two vpermt2q (each covering 16 source lanes) merged by the index MSB.
  static void store_permuted(T* d, const T* a, __m512i idx) {
    const __m512i r01 = _mm512_permutex2var_epi64(
        _mm512_loadu_si512(a), _mm512_and_si512(idx, _mm512_set1_epi64(15)),
        _mm512_loadu_si512(a + 8));
    const __m512i r23 = _mm512_permutex2var_epi64(
        _mm512_loadu_si512(a + 16), _mm512_and_si512(idx, _mm512_set1_epi64(15)),
        _mm512_loadu_si512(a + 24));
    const __mmask8 hi = _mm512_cmpge_epi64_mask(idx, _mm512_set1_epi64(16));
    _mm512_storeu_si512(d, _mm512_mask_blend_epi64(hi, r01, r23));
  }
};

inline constexpr const char* kBackendName = "avx512";

}  // namespace ssam::sim::simd
