// SSE2 backend of the 32-lane engine: eight 128-bit registers per warp
// value. This is the x86-64 baseline fallback — always available, no CMake
// feature flags needed.
//
// SSE2 has no variable permute instruction (PSHUFB arrives with SSSE3,
// variable-index permutes with AVX), so the shuffles stay on the portable
// reference path: its fixed-size overlapping copies already compile to
// straight vector moves. What SSE2 does buy is 4-wide float arithmetic with
// guaranteed vector codegen for the mad/add chains regardless of the
// autovectorizer's mood. Integer multiplies (PMULLD is SSE4.1) and the
// 64-bit index ops also stay on the reference path.
//
// mad is unfused (mul, then add) and float clamp is compare+blend, matching
// the scalar reference bit-for-bit — see scalar.hpp.
#pragma once

#if !defined(__SSE2__) && !(defined(_M_X64) || defined(__x86_64__))
#error "simd/sse2.hpp requires SSE2"
#endif

#include <emmintrin.h>

#include <cstdint>

#include "gpusim/simd/scalar.hpp"

namespace ssam::sim::simd {

namespace sse2 {

/// Bitwise select: mask lanes must be all-ones or all-zeros.
[[nodiscard]] inline __m128 blend(__m128 a, __m128 b, __m128 take_b) {
  return _mm_or_ps(_mm_andnot_ps(take_b, a), _mm_and_ps(take_b, b));
}

[[nodiscard]] inline __m128i blend_i(__m128i a, __m128i b, __m128i take_b) {
  return _mm_or_si128(_mm_andnot_si128(take_b, a), _mm_and_si128(take_b, b));
}

}  // namespace sse2

template <>
struct LaneOps<float> : RefOps<float> {
  static constexpr bool kVectorized = true;

  static void splat(float* d, float v) {
    const __m128 s = _mm_set1_ps(v);
    for (int c = 0; c < 8; ++c) _mm_storeu_ps(d + 4 * c, s);
  }

  static void add(float* d, const float* a, const float* b) {
    for (int c = 0; c < 8; ++c) {
      _mm_storeu_ps(d + 4 * c, _mm_add_ps(_mm_loadu_ps(a + 4 * c), _mm_loadu_ps(b + 4 * c)));
    }
  }

  static void add_s(float* d, const float* a, float b) {
    const __m128 bv = _mm_set1_ps(b);
    for (int c = 0; c < 8; ++c) _mm_storeu_ps(d + 4 * c, _mm_add_ps(_mm_loadu_ps(a + 4 * c), bv));
  }

  static void sub(float* d, const float* a, const float* b) {
    for (int c = 0; c < 8; ++c) {
      _mm_storeu_ps(d + 4 * c, _mm_sub_ps(_mm_loadu_ps(a + 4 * c), _mm_loadu_ps(b + 4 * c)));
    }
  }

  static void mul(float* d, const float* a, const float* b) {
    for (int c = 0; c < 8; ++c) {
      _mm_storeu_ps(d + 4 * c, _mm_mul_ps(_mm_loadu_ps(a + 4 * c), _mm_loadu_ps(b + 4 * c)));
    }
  }

  static void mul_s(float* d, const float* a, float b) {
    const __m128 bv = _mm_set1_ps(b);
    for (int c = 0; c < 8; ++c) _mm_storeu_ps(d + 4 * c, _mm_mul_ps(_mm_loadu_ps(a + 4 * c), bv));
  }

  static void mad(float* d, const float* a, const float* b, const float* c3) {
    for (int c = 0; c < 8; ++c) {
      _mm_storeu_ps(d + 4 * c,
                    _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(a + 4 * c), _mm_loadu_ps(b + 4 * c)),
                               _mm_loadu_ps(c3 + 4 * c)));
    }
  }

  static void mad_s(float* d, const float* a, float b, const float* c3) {
    const __m128 bv = _mm_set1_ps(b);
    for (int c = 0; c < 8; ++c) {
      _mm_storeu_ps(d + 4 * c,
                    _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(a + 4 * c), bv), _mm_loadu_ps(c3 + 4 * c)));
    }
  }

  static void affine(float* d, const float* x, float scale, float offset) {
    const __m128 sv = _mm_set1_ps(scale);
    const __m128 ov = _mm_set1_ps(offset);
    for (int c = 0; c < 8; ++c) {
      _mm_storeu_ps(d + 4 * c, _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(x + 4 * c), sv), ov));
    }
  }

  static void clamp(float* d, const float* x, float lo, float hi) {
    const __m128 lov = _mm_set1_ps(lo);
    const __m128 hiv = _mm_set1_ps(hi);
    for (int c = 0; c < 8; ++c) {
      __m128 v = _mm_loadu_ps(x + 4 * c);
      v = sse2::blend(v, lov, _mm_cmplt_ps(v, lov));
      v = sse2::blend(v, hiv, _mm_cmpgt_ps(v, hiv));
      _mm_storeu_ps(d + 4 * c, v);
    }
  }

  static void ge_s(int* d, const float* a, float b) {
    const __m128 bv = _mm_set1_ps(b);
    const __m128i one = _mm_set1_epi32(1);
    for (int c = 0; c < 8; ++c) {
      const __m128i m = _mm_castps_si128(_mm_cmpge_ps(_mm_loadu_ps(a + 4 * c), bv));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(d + 4 * c), _mm_and_si128(m, one));
    }
  }

  static void lt_s(int* d, const float* a, float b) {
    const __m128 bv = _mm_set1_ps(b);
    const __m128i one = _mm_set1_epi32(1);
    for (int c = 0; c < 8; ++c) {
      const __m128i m = _mm_castps_si128(_mm_cmplt_ps(_mm_loadu_ps(a + 4 * c), bv));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(d + 4 * c), _mm_and_si128(m, one));
    }
  }

  static void select(float* d, const int* pred, const float* a, const float* b) {
    const __m128i zero = _mm_setzero_si128();
    for (int c = 0; c < 8; ++c) {
      const __m128i p = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pred + 4 * c));
      const __m128 take_b = _mm_castsi128_ps(_mm_cmpeq_epi32(p, zero));
      _mm_storeu_ps(d + 4 * c,
                    sse2::blend(_mm_loadu_ps(a + 4 * c), _mm_loadu_ps(b + 4 * c), take_b));
    }
  }
};

template <>
struct LaneOps<std::int32_t> : RefOps<std::int32_t> {
  static constexpr bool kVectorized = true;
  using T = std::int32_t;

  [[nodiscard]] static __m128i load4(const T* p, int c) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 4 * c));
  }
  static void store4(T* p, int c, __m128i v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 4 * c), v);
  }

  static void splat(T* d, T v) {
    const __m128i s = _mm_set1_epi32(v);
    for (int c = 0; c < 8; ++c) store4(d, c, s);
  }

  static void add(T* d, const T* a, const T* b) {
    for (int c = 0; c < 8; ++c) store4(d, c, _mm_add_epi32(load4(a, c), load4(b, c)));
  }

  static void add_s(T* d, const T* a, T b) {
    const __m128i bv = _mm_set1_epi32(b);
    for (int c = 0; c < 8; ++c) store4(d, c, _mm_add_epi32(load4(a, c), bv));
  }

  static void sub(T* d, const T* a, const T* b) {
    for (int c = 0; c < 8; ++c) store4(d, c, _mm_sub_epi32(load4(a, c), load4(b, c)));
  }

  static void clamp(T* d, const T* x, T lo, T hi) {
    const __m128i lov = _mm_set1_epi32(lo);
    const __m128i hiv = _mm_set1_epi32(hi);
    for (int c = 0; c < 8; ++c) {
      __m128i v = load4(x, c);
      v = sse2::blend_i(v, lov, _mm_cmplt_epi32(v, lov));
      v = sse2::blend_i(v, hiv, _mm_cmpgt_epi32(v, hiv));
      store4(d, c, v);
    }
  }

  static void ge_s(int* d, const T* a, T b) {
    const __m128i bv = _mm_set1_epi32(b);
    const __m128i one = _mm_set1_epi32(1);
    for (int c = 0; c < 8; ++c) {
      const __m128i lt = _mm_cmplt_epi32(load4(a, c), bv);
      store4(d, c, _mm_add_epi32(lt, one));  // 0/-1 mask + 1 inverts to 1/0
    }
  }

  static void lt_s(int* d, const T* a, T b) {
    const __m128i bv = _mm_set1_epi32(b);
    const __m128i one = _mm_set1_epi32(1);
    for (int c = 0; c < 8; ++c) store4(d, c, _mm_and_si128(_mm_cmplt_epi32(load4(a, c), bv), one));
  }

  static void logical_and(int* d, const int* a, const int* b) {
    const __m128i zero = _mm_setzero_si128();
    const __m128i one = _mm_set1_epi32(1);
    for (int c = 0; c < 8; ++c) {
      const __m128i either_zero = _mm_or_si128(_mm_cmpeq_epi32(load4(a, c), zero),
                                               _mm_cmpeq_epi32(load4(b, c), zero));
      store4(d, c, _mm_andnot_si128(either_zero, one));
    }
  }

  static void select(T* d, const int* pred, const T* a, const T* b) {
    const __m128i zero = _mm_setzero_si128();
    for (int c = 0; c < 8; ++c) {
      const __m128i take_b = _mm_cmpeq_epi32(load4(pred, c), zero);
      store4(d, c, sse2::blend_i(load4(a, c), load4(b, c), take_b));
    }
  }

  static bool all_nonzero(const int* p) {
    const __m128i zero = _mm_setzero_si128();
    __m128i any_zero = zero;
    for (int c = 0; c < 8; ++c) {
      any_zero = _mm_or_si128(any_zero, _mm_cmpeq_epi32(load4(p, c), zero));
    }
    return _mm_movemask_epi8(any_zero) == 0;
  }
};

inline constexpr const char* kBackendName = "sse2";

}  // namespace ssam::sim::simd
