// NEON (AArch64) backend of the 32-lane engine: eight 128-bit registers per
// warp value.
//
// Arithmetic, predicates and select run 4-wide. The float mad deliberately
// avoids vmlaq/vfmaq (both fuse on AArch64) and issues a separate multiply
// and add, matching the scalar reference built with -ffp-contract=off
// bit-for-bit; float clamp is compare+select for the same reason (vmaxq/
// vminq handle NaN like the reference ternaries do not). The shuffles stay
// on the portable reference path: NEON's vext/tbl permutes take immediate
// or byte-table operands, and the reference's fixed-size overlapping copies
// already compile to plain q-register moves. 64-bit index ops also stay on
// the reference path (no 64-bit NEON multiply).
#pragma once

#if !defined(__ARM_NEON) && !defined(__ARM_NEON__)
#error "simd/neon.hpp requires NEON"
#endif

#include <arm_neon.h>

#include <cstdint>

#include "gpusim/simd/scalar.hpp"

namespace ssam::sim::simd {

template <>
struct LaneOps<float> : RefOps<float> {
  static constexpr bool kVectorized = true;

  static void splat(float* d, float v) {
    const float32x4_t s = vdupq_n_f32(v);
    for (int c = 0; c < 8; ++c) vst1q_f32(d + 4 * c, s);
  }

  static void add(float* d, const float* a, const float* b) {
    for (int c = 0; c < 8; ++c) {
      vst1q_f32(d + 4 * c, vaddq_f32(vld1q_f32(a + 4 * c), vld1q_f32(b + 4 * c)));
    }
  }

  static void add_s(float* d, const float* a, float b) {
    const float32x4_t bv = vdupq_n_f32(b);
    for (int c = 0; c < 8; ++c) vst1q_f32(d + 4 * c, vaddq_f32(vld1q_f32(a + 4 * c), bv));
  }

  static void sub(float* d, const float* a, const float* b) {
    for (int c = 0; c < 8; ++c) {
      vst1q_f32(d + 4 * c, vsubq_f32(vld1q_f32(a + 4 * c), vld1q_f32(b + 4 * c)));
    }
  }

  static void mul(float* d, const float* a, const float* b) {
    for (int c = 0; c < 8; ++c) {
      vst1q_f32(d + 4 * c, vmulq_f32(vld1q_f32(a + 4 * c), vld1q_f32(b + 4 * c)));
    }
  }

  static void mul_s(float* d, const float* a, float b) {
    const float32x4_t bv = vdupq_n_f32(b);
    for (int c = 0; c < 8; ++c) vst1q_f32(d + 4 * c, vmulq_f32(vld1q_f32(a + 4 * c), bv));
  }

  // Separate mul + add (never vmlaq/vfmaq): bit parity with the unfused
  // scalar reference.
  static void mad(float* d, const float* a, const float* b, const float* c3) {
    for (int c = 0; c < 8; ++c) {
      vst1q_f32(d + 4 * c, vaddq_f32(vmulq_f32(vld1q_f32(a + 4 * c), vld1q_f32(b + 4 * c)),
                                     vld1q_f32(c3 + 4 * c)));
    }
  }

  static void mad_s(float* d, const float* a, float b, const float* c3) {
    const float32x4_t bv = vdupq_n_f32(b);
    for (int c = 0; c < 8; ++c) {
      vst1q_f32(d + 4 * c, vaddq_f32(vmulq_f32(vld1q_f32(a + 4 * c), bv), vld1q_f32(c3 + 4 * c)));
    }
  }

  static void affine(float* d, const float* x, float scale, float offset) {
    const float32x4_t sv = vdupq_n_f32(scale);
    const float32x4_t ov = vdupq_n_f32(offset);
    for (int c = 0; c < 8; ++c) {
      vst1q_f32(d + 4 * c, vaddq_f32(vmulq_f32(vld1q_f32(x + 4 * c), sv), ov));
    }
  }

  static void clamp(float* d, const float* x, float lo, float hi) {
    const float32x4_t lov = vdupq_n_f32(lo);
    const float32x4_t hiv = vdupq_n_f32(hi);
    for (int c = 0; c < 8; ++c) {
      float32x4_t v = vld1q_f32(x + 4 * c);
      v = vbslq_f32(vcltq_f32(v, lov), lov, v);
      v = vbslq_f32(vcgtq_f32(v, hiv), hiv, v);
      vst1q_f32(d + 4 * c, v);
    }
  }

  static void ge_s(int* d, const float* a, float b) {
    const float32x4_t bv = vdupq_n_f32(b);
    const uint32x4_t one = vdupq_n_u32(1);
    for (int c = 0; c < 8; ++c) {
      const uint32x4_t m = vcgeq_f32(vld1q_f32(a + 4 * c), bv);
      vst1q_s32(d + 4 * c, vreinterpretq_s32_u32(vandq_u32(m, one)));
    }
  }

  static void lt_s(int* d, const float* a, float b) {
    const float32x4_t bv = vdupq_n_f32(b);
    const uint32x4_t one = vdupq_n_u32(1);
    for (int c = 0; c < 8; ++c) {
      const uint32x4_t m = vcltq_f32(vld1q_f32(a + 4 * c), bv);
      vst1q_s32(d + 4 * c, vreinterpretq_s32_u32(vandq_u32(m, one)));
    }
  }

  static void select(float* d, const int* pred, const float* a, const float* b) {
    for (int c = 0; c < 8; ++c) {
      const uint32x4_t nonzero = vtstq_s32(vld1q_s32(pred + 4 * c), vld1q_s32(pred + 4 * c));
      vst1q_f32(d + 4 * c, vbslq_f32(nonzero, vld1q_f32(a + 4 * c), vld1q_f32(b + 4 * c)));
    }
  }
};

template <>
struct LaneOps<std::int32_t> : RefOps<std::int32_t> {
  static constexpr bool kVectorized = true;
  using T = std::int32_t;

  static void splat(T* d, T v) {
    const int32x4_t s = vdupq_n_s32(v);
    for (int c = 0; c < 8; ++c) vst1q_s32(d + 4 * c, s);
  }

  static void iota(T* d, T base, T step) {
    const int32x4_t sv = vdupq_n_s32(step);
    const int32x4_t bv = vdupq_n_s32(base);
    static const std::int32_t kRamp[4] = {0, 1, 2, 3};
    int32x4_t r = vld1q_s32(kRamp);
    const int32x4_t four = vdupq_n_s32(4);
    for (int c = 0; c < 8; ++c) {
      vst1q_s32(d + 4 * c, vaddq_s32(vmulq_s32(r, sv), bv));
      r = vaddq_s32(r, four);
    }
  }

  static void add(T* d, const T* a, const T* b) {
    for (int c = 0; c < 8; ++c) {
      vst1q_s32(d + 4 * c, vaddq_s32(vld1q_s32(a + 4 * c), vld1q_s32(b + 4 * c)));
    }
  }

  static void add_s(T* d, const T* a, T b) {
    const int32x4_t bv = vdupq_n_s32(b);
    for (int c = 0; c < 8; ++c) vst1q_s32(d + 4 * c, vaddq_s32(vld1q_s32(a + 4 * c), bv));
  }

  static void sub(T* d, const T* a, const T* b) {
    for (int c = 0; c < 8; ++c) {
      vst1q_s32(d + 4 * c, vsubq_s32(vld1q_s32(a + 4 * c), vld1q_s32(b + 4 * c)));
    }
  }

  static void mul(T* d, const T* a, const T* b) {
    for (int c = 0; c < 8; ++c) {
      vst1q_s32(d + 4 * c, vmulq_s32(vld1q_s32(a + 4 * c), vld1q_s32(b + 4 * c)));
    }
  }

  static void mul_s(T* d, const T* a, T b) {
    const int32x4_t bv = vdupq_n_s32(b);
    for (int c = 0; c < 8; ++c) vst1q_s32(d + 4 * c, vmulq_s32(vld1q_s32(a + 4 * c), bv));
  }

  static void mad(T* d, const T* a, const T* b, const T* c3) {
    for (int c = 0; c < 8; ++c) {
      vst1q_s32(d + 4 * c, vaddq_s32(vmulq_s32(vld1q_s32(a + 4 * c), vld1q_s32(b + 4 * c)),
                                     vld1q_s32(c3 + 4 * c)));
    }
  }

  static void mad_s(T* d, const T* a, T b, const T* c3) {
    const int32x4_t bv = vdupq_n_s32(b);
    for (int c = 0; c < 8; ++c) {
      vst1q_s32(d + 4 * c, vaddq_s32(vmulq_s32(vld1q_s32(a + 4 * c), bv), vld1q_s32(c3 + 4 * c)));
    }
  }

  static void affine(T* d, const T* x, T scale, T offset) {
    const int32x4_t sv = vdupq_n_s32(scale);
    const int32x4_t ov = vdupq_n_s32(offset);
    for (int c = 0; c < 8; ++c) {
      vst1q_s32(d + 4 * c, vaddq_s32(vmulq_s32(vld1q_s32(x + 4 * c), sv), ov));
    }
  }

  static void clamp(T* d, const T* x, T lo, T hi) {
    const int32x4_t lov = vdupq_n_s32(lo);
    const int32x4_t hiv = vdupq_n_s32(hi);
    for (int c = 0; c < 8; ++c) {
      vst1q_s32(d + 4 * c, vminq_s32(vmaxq_s32(vld1q_s32(x + 4 * c), lov), hiv));
    }
  }

  static void ge_s(int* d, const T* a, T b) {
    const int32x4_t bv = vdupq_n_s32(b);
    const uint32x4_t one = vdupq_n_u32(1);
    for (int c = 0; c < 8; ++c) {
      const uint32x4_t m = vcgeq_s32(vld1q_s32(a + 4 * c), bv);
      vst1q_s32(d + 4 * c, vreinterpretq_s32_u32(vandq_u32(m, one)));
    }
  }

  static void lt_s(int* d, const T* a, T b) {
    const int32x4_t bv = vdupq_n_s32(b);
    const uint32x4_t one = vdupq_n_u32(1);
    for (int c = 0; c < 8; ++c) {
      const uint32x4_t m = vcltq_s32(vld1q_s32(a + 4 * c), bv);
      vst1q_s32(d + 4 * c, vreinterpretq_s32_u32(vandq_u32(m, one)));
    }
  }

  static void logical_and(int* d, const int* a, const int* b) {
    const uint32x4_t one = vdupq_n_u32(1);
    for (int c = 0; c < 8; ++c) {
      const int32x4_t av = vld1q_s32(a + 4 * c);
      const int32x4_t bv = vld1q_s32(b + 4 * c);
      const uint32x4_t both = vandq_u32(vtstq_s32(av, av), vtstq_s32(bv, bv));
      vst1q_s32(d + 4 * c, vreinterpretq_s32_u32(vandq_u32(both, one)));
    }
  }

  static void select(T* d, const int* pred, const T* a, const T* b) {
    for (int c = 0; c < 8; ++c) {
      const uint32x4_t nonzero = vtstq_s32(vld1q_s32(pred + 4 * c), vld1q_s32(pred + 4 * c));
      vst1q_s32(d + 4 * c, vbslq_s32(nonzero, vld1q_s32(a + 4 * c), vld1q_s32(b + 4 * c)));
    }
  }

  static bool all_nonzero(const int* p) {
    uint32x4_t all = vdupq_n_u32(0xffffffffu);
    for (int c = 0; c < 8; ++c) {
      const int32x4_t v = vld1q_s32(p + 4 * c);
      all = vandq_u32(all, vtstq_s32(v, v));
    }
    return vminvq_u32(all) == 0xffffffffu;
  }

  static bool unit_stride(const T* idx) {
    const int32x4_t i0 = vdupq_n_s32(idx[0]);
    static const std::int32_t kRamp[4] = {0, 1, 2, 3};
    int32x4_t r = vld1q_s32(kRamp);
    const int32x4_t four = vdupq_n_s32(4);
    uint32x4_t all = vdupq_n_u32(0xffffffffu);
    for (int c = 0; c < 8; ++c) {
      all = vandq_u32(all, vceqq_s32(vld1q_s32(idx + 4 * c), vaddq_s32(i0, r)));
      r = vaddq_s32(r, four);
    }
    return vminvq_u32(all) == 0xffffffffu;
  }
};

inline constexpr const char* kBackendName = "neon";

}  // namespace ssam::sim::simd
