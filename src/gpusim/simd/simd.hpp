// Compile-time SIMD backend selection for the 32-lane engine.
//
// The lane engine (gpusim/vec.hpp) dispatches every primitive through
// `simd::LaneOps<T>`; this header decides which backend provides the
// specializations. Exactly one backend is active per build:
//
//   AVX-512  two 512-bit registers per warp value, vpermt2d shuffles
//   AVX2     four 256-bit registers, vpermd chunk-rotate shuffles
//   SSE2     eight 128-bit registers, arithmetic only (x86-64 baseline)
//   NEON     eight 128-bit registers, arithmetic only (AArch64 baseline)
//   scalar   portable reference loops (any target)
//
// Selection order:
//  1. A CMake-provided SSAM_SIMD_BACKEND_* definition (set by
//     cmake/SsamSimd.cmake from build-host detection or the
//     -DSSAM_SIMD_BACKEND=... override) wins. CMake also adds the matching
//     -m target flags, so the backend's intrinsics are always compilable.
//  2. Without one (header-only consumers, hand-rolled builds), the compiler's
//     predefined target macros pick the widest backend the translation unit
//     is already allowed to emit.
//
// All backends produce bit-identical results for every primitive (enforced
// by tests/test_simd_parity.cpp), so backend choice is purely a speed knob:
// functional-mode kernel outputs never depend on it.
#pragma once

#include "gpusim/simd/scalar.hpp"

#if defined(SSAM_SIMD_BACKEND_SCALAR)
namespace ssam::sim::simd {
inline constexpr const char* kBackendName = "scalar";
}
#elif defined(SSAM_SIMD_BACKEND_AVX512)
#include "gpusim/simd/avx512.hpp"
#elif defined(SSAM_SIMD_BACKEND_AVX2)
#include "gpusim/simd/avx2.hpp"
#elif defined(SSAM_SIMD_BACKEND_SSE2)
#include "gpusim/simd/sse2.hpp"
#elif defined(SSAM_SIMD_BACKEND_NEON)
#include "gpusim/simd/neon.hpp"
#elif defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)
#include "gpusim/simd/avx512.hpp"
#elif defined(__AVX2__)
#include "gpusim/simd/avx2.hpp"
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#include "gpusim/simd/sse2.hpp"
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include "gpusim/simd/neon.hpp"
#else
namespace ssam::sim::simd {
inline constexpr const char* kBackendName = "scalar";
}
#endif
