#include "gpusim/stream.hpp"

#include <atomic>
#include <thread>

namespace ssam::sim {

namespace detail {

void EventState::signal() {
  std::vector<std::function<void()>> ks;
  {
    std::lock_guard<std::mutex> lock(m);
    done = true;
    ks.swap(continuations);
    cv.notify_all();
  }
  // Continuations run outside the lock: they typically reschedule a stream
  // drain, which takes other locks.
  for (auto& k : ks) k();
}

bool EventState::ready() {
  std::lock_guard<std::mutex> lock(m);
  return done;
}

void EventState::wait() {
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
}

bool EventState::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(m);
  return cv.wait_for(lock, timeout, [&] { return done; });
}

void EventState::on_ready(std::function<void()> k) {
  {
    std::lock_guard<std::mutex> lock(m);
    if (!done) {
      continuations.push_back(std::move(k));
      return;
    }
  }
  k();
}

}  // namespace detail

// ----------------------------------------------------------- LaunchQueue

LaunchQueue& LaunchQueue::global() {
  static LaunchQueue q;
  return q;
}

std::uint64_t LaunchQueue::ops_enqueued() const {
  std::lock_guard<std::mutex> lock(m_);
  return enqueued_;
}

std::uint64_t LaunchQueue::ops_completed() const {
  std::lock_guard<std::mutex> lock(m_);
  return completed_;
}

void LaunchQueue::note_enqueued() {
  std::lock_guard<std::mutex> lock(m_);
  ++enqueued_;
}

void LaunchQueue::note_completed() {
  std::lock_guard<std::mutex> lock(m_);
  ++completed_;
  if (completed_ == enqueued_) cv_.notify_all();
}

void LaunchQueue::quiesce() {
  std::unique_lock<std::mutex> lock(m_);
  cv_.wait(lock, [&] { return completed_ == enqueued_; });
}

// ---------------------------------------------------------------- Stream

struct Stream::Impl : std::enable_shared_from_this<Stream::Impl> {
  struct Op {
    std::function<void()> run;                 ///< empty for pure event ops
    std::shared_ptr<detail::EventState> done;  ///< signalled after run
    std::shared_ptr<detail::EventState> dep;   ///< must signal before run
  };

  explicit Impl(ThreadPool* p) : pool(p) {}

  /// Where drains run: a device's slice, or — when null — the *current*
  /// global pool, resolved per schedule so default streams stay valid
  /// across ThreadPool::reset_global.
  ThreadPool* pool;
  std::mutex m;
  std::deque<Op> q;
  bool active = false;  ///< a drain is scheduled, running, or parked on a dep
  std::condition_variable idle_cv;
  /// The thread currently inside drain(), or a default id. Lets
  /// synchronize() detect re-entry from this stream's own drain — an op
  /// body or an event continuation destroying its own Stream — and return
  /// instead of waiting on itself forever.
  std::atomic<std::thread::id> drainer{};

  void schedule() {
    auto self = shared_from_this();
    (pool != nullptr ? *pool : ThreadPool::global()).submit([self] { self->drain(); });
  }

  /// Runs queued ops in order until the queue empties or the head op's
  /// dependency is unsignalled — in which case a continuation on that event
  /// reschedules the drain and this worker is released.
  void drain() {
    drainer.store(std::this_thread::get_id(), std::memory_order_relaxed);
    for (;;) {
      Op op;
      {
        std::unique_lock<std::mutex> lock(m);
        if (q.empty()) {
          drainer.store(std::thread::id{}, std::memory_order_relaxed);
          active = false;
          idle_cv.notify_all();
          return;
        }
        Op& head = q.front();
        if (head.dep != nullptr && !head.dep->ready()) {
          // Park on the dependency; `active` stays true so enqueues don't
          // double-schedule a drain.
          auto dep = std::move(head.dep);
          head.dep = nullptr;
          lock.unlock();
          drainer.store(std::thread::id{}, std::memory_order_relaxed);
          auto self = shared_from_this();
          dep->on_ready([self] { self->schedule(); });
          return;
        }
        op = std::move(q.front());
        q.pop_front();
      }
      if (op.run) op.run();
      // signal() runs `on_ready` continuations inline on this thread; one
      // of them may destroy the owning Stream (see Stream::synchronize).
      op.done->signal();
      LaunchQueue::global().note_completed();
    }
  }
};

Stream::Stream() : impl_(std::make_shared<Impl>(nullptr)) {}

Stream::Stream(ThreadPool& pool)
    : impl_(std::make_shared<Impl>(&pool)), pool_(&pool) {}

Stream::~Stream() { synchronize(); }

Event Stream::enqueue(std::function<void()> run,
                      std::shared_ptr<detail::EventState> dep) {
  auto done = std::make_shared<detail::EventState>();
  LaunchQueue::global().note_enqueued();
  bool need_schedule = false;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->q.push_back(Impl::Op{std::move(run), done, std::move(dep)});
    if (!impl_->active) {
      impl_->active = true;
      need_schedule = true;
    }
  }
  if (need_schedule) impl_->schedule();
  return Event(std::move(done));
}

Event Stream::host(std::function<void()> fn) { return enqueue(std::move(fn), nullptr); }

void Stream::wait(const Event& ev) {
  if (ev.state_ == nullptr) return;  // default events are already signalled
  (void)enqueue({}, ev.state_);
}

Event Stream::record() { return enqueue({}, nullptr); }

void Stream::synchronize() {
  // Re-entry from this stream's own drain (op body or event continuation
  // destroying the Stream) would wait on work only this thread can finish.
  // Return instead: the drain loop keeps the impl alive and completes the
  // remaining queued ops after the handle is gone.
  if (impl_->drainer.load(std::memory_order_relaxed) == std::this_thread::get_id()) {
    return;
  }
  std::unique_lock<std::mutex> lock(impl_->m);
  impl_->idle_cv.wait(lock, [&] { return impl_->q.empty() && !impl_->active; });
}

}  // namespace ssam::sim
