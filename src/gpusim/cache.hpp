// Set-associative LRU cache model used for the simulated L1 and L2.
#pragma once

#include <cstdint>
#include <vector>

namespace ssam::sim {

/// Classic set-associative cache with true-LRU replacement. Tracks hit/miss
/// only (data lives in host memory); used to decide the latency class and
/// DRAM traffic of simulated global memory accesses.
class SetAssocCache {
 public:
  /// capacity_bytes/line_bytes must be divisible into `ways`-way sets.
  SetAssocCache(std::int64_t capacity_bytes, int line_bytes, int ways);

  /// Touches the line containing `byte_addr`. Returns true on hit. On miss
  /// the line is inserted (allocate-on-miss).
  bool access(std::uint64_t byte_addr);

  /// Hit test without allocation (used by write-through stores to keep L2 warm).
  bool touch_no_allocate(std::uint64_t byte_addr);

  void reset();

  [[nodiscard]] int line_bytes() const { return line_bytes_; }
  [[nodiscard]] std::int64_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;  // higher = more recently used
    bool valid = false;
  };

  [[nodiscard]] std::size_t set_of(std::uint64_t line) const { return line % num_sets_; }

  std::int64_t capacity_;
  int line_bytes_;
  int ways_;
  std::size_t num_sets_;
  std::vector<Way> ways_storage_;  // num_sets_ * ways_
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ssam::sim
