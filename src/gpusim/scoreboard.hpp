// In-order issue scoreboard for one simulated warp.
//
// Model: a warp issues at most one instruction per cycle (its own program
// order); an instruction issues when its operands are ready and completes
// `latency` cycles later. This captures the exposed-latency behaviour the
// paper's Section 5 model reasons about (dependent MAD chains, shuffle
// latency on the partial-sum path, shared-memory read latency).
#pragma once

#include <algorithm>
#include <initializer_list>

#include "common/types.hpp"
#include "gpusim/counters.hpp"

namespace ssam::sim {

class Scoreboard {
 public:
  /// Issues an instruction whose operands are ready at `operands_ready`,
  /// occupying `issue_slots` issue cycles, with result latency `latency`.
  /// Returns the cycle at which the result is ready.
  Cycle issue(Cycle operands_ready, double issue_slots, int latency) {
    const Cycle at = std::max(issue_cursor_, operands_ready);
    issue_cursor_ = at + 1;  // program order: next instruction at least 1 cycle later
    issue_slots_ += issue_slots;
    const Cycle done = at + static_cast<Cycle>(latency);
    completion_ = std::max(completion_, done);
    return done;
  }

  /// Barrier: no instruction may issue before `cycle` (used by __syncthreads).
  void fence_at(Cycle cycle) {
    issue_cursor_ = std::max(issue_cursor_, cycle);
    completion_ = std::max(completion_, cycle);
  }

  [[nodiscard]] Cycle completion() const { return completion_; }
  [[nodiscard]] Cycle issue_cursor() const { return issue_cursor_; }
  /// Weighted issue slots consumed (FP64 counts more, replayed memory
  /// transactions count per transaction) — the SM throughput currency.
  [[nodiscard]] double issue_slots() const { return issue_slots_; }

  [[nodiscard]] Counters& counters() { return counters_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }

  static Cycle ready_max(std::initializer_list<Cycle> cycles) {
    Cycle m = 0;
    for (Cycle c : cycles) m = std::max(m, c);
    return m;
  }

 private:
  Cycle issue_cursor_ = 0;
  Cycle completion_ = 0;
  double issue_slots_ = 0.0;
  Counters counters_;
};

}  // namespace ssam::sim
