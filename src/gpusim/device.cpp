#include "gpusim/device.hpp"

#include <condition_variable>
#include <thread>

#include "common/error.hpp"
#include "core/config.hpp"

namespace ssam::sim {

// ------------------------------------------------------------------ Device

Device::Device(int index, DeviceOptions opt)
    : index_(index),
      name_(opt.name.empty() ? "dev" + std::to_string(index) : std::move(opt.name)),
      pool_(std::make_unique<ThreadPool>(opt.threads, std::move(opt.pin_cpus))) {}

Stream& Device::stream(std::size_t i) {
  std::lock_guard<std::mutex> lock(streams_m_);
  while (streams_.size() <= i) {
    streams_.push_back(std::make_unique<Stream>(*pool_));
  }
  return *streams_[i];
}

std::size_t Device::stream_count() const {
  std::lock_guard<std::mutex> lock(streams_m_);
  return streams_.size();
}

WorkspaceLease Device::lease_workspace() {
  {
    std::lock_guard<std::mutex> lock(spares_m_);
    if (!spare_workspaces_.empty()) {
      auto ws = std::move(spare_workspaces_.back());
      spare_workspaces_.pop_back();
      return WorkspaceLease(this, std::move(ws));
    }
  }
  workspaces_created_.fetch_add(1, std::memory_order_relaxed);
  return WorkspaceLease(this, std::make_unique<PersistentWorkspace>());
}

void Device::return_workspace(std::unique_ptr<PersistentWorkspace> ws) {
  std::lock_guard<std::mutex> lock(spares_m_);
  spare_workspaces_.push_back(std::move(ws));
}

void WorkspaceLease::release() {
  if (device_ != nullptr && ws_ != nullptr) {
    device_->return_workspace(std::move(ws_));
  }
  device_ = nullptr;
  ws_.reset();
}

// -------------------------------------------------------------- DeviceGroup

DeviceGroup::DeviceGroup(std::vector<DeviceOptions> devices) {
  SSAM_REQUIRE(!devices.empty(), "a device group needs at least one device");
  devices_.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    devices_.push_back(std::make_unique<Device>(static_cast<int>(i), std::move(devices[i])));
  }
}

std::span<HaloChannel> DeviceGroup::peer_channels(std::size_t count) {
  if (peer_channels_.size() < count) {
    // HaloChannel holds atomics (not movable); rebuild at the larger count.
    peer_channels_ = std::vector<HaloChannel>(count);
  }
  return {peer_channels_.data(), count};
}

std::vector<DeviceOptions> DeviceGroup::even_slices(int n) {
  SSAM_REQUIRE(n >= 1, "device count must be positive");
  const int host = hardware_concurrency();
  const int per = host / n < 1 ? 1 : host / n;
  const bool pin = core::config().device_pin;
  const unsigned cores = std::thread::hardware_concurrency();
  std::vector<DeviceOptions> opts(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    DeviceOptions& o = opts[static_cast<std::size_t>(d)];
    o.threads = per;
    o.name = "dev" + std::to_string(d);
    if (pin && cores > 0) {
      o.pin_cpus.reserve(static_cast<std::size_t>(per));
      for (int w = 0; w < per; ++w) {
        o.pin_cpus.push_back(static_cast<int>(
            static_cast<unsigned>(d * per + w) % cores));
      }
    }
  }
  return opts;
}

namespace {

std::mutex g_groups_m;
// Index = device count; groups are never destroyed before process exit
// (their pools hold live threads, like the global pool).
std::vector<std::unique_ptr<DeviceGroup>> g_groups;

}  // namespace

DeviceGroup& DeviceGroup::shared(int n) {
  SSAM_REQUIRE(n >= 1, "device count must be positive");
  std::lock_guard<std::mutex> lock(g_groups_m);
  if (g_groups.size() <= static_cast<std::size_t>(n)) {
    g_groups.resize(static_cast<std::size_t>(n) + 1);
  }
  auto& slot = g_groups[static_cast<std::size_t>(n)];
  if (slot == nullptr) slot = std::make_unique<DeviceGroup>(even_slices(n));
  return *slot;
}

int default_device_count() { return core::config().devices; }

// ------------------------------------------------------- group-wide drivers

void for_each_device(std::span<Device* const> devices,
                     const std::function<void(int)>& fn) {
  const int n = static_cast<int>(devices.size());
  if (n == 0) return;
  for (Device* d : devices) SSAM_REQUIRE(d != nullptr, "null device");
  std::mutex m;
  std::condition_variable cv;
  int remaining = n;
  for (int i = 0; i < n; ++i) {
    devices[static_cast<std::size_t>(i)]->pool().submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(m);
      if (--remaining == 0) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return remaining == 0; });
}

void run_persistent_group(std::span<Device* const> devices,
                          std::span<const std::span<PersistentTask* const>> groups,
                          const std::atomic<bool>* stop) {
  SSAM_REQUIRE(devices.size() == groups.size(),
               "one task group per device required");
  for_each_device(devices, [&](int i) {
    const auto g = groups[static_cast<std::size_t>(i)];
    if (g.empty()) return;
    run_persistent_on(devices[static_cast<std::size_t>(i)]->pool(), g, stop);
  });
}

}  // namespace ssam::sim
