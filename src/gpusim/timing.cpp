#include "gpusim/timing.hpp"

#include <algorithm>
#include <cmath>

namespace ssam::sim {

RuntimeEstimate estimate_runtime(const ArchSpec& arch, const KernelStats& stats) {
  RuntimeEstimate est;
  est.occupancy = compute_occupancy(arch, stats.cfg.block_threads, stats.cfg.regs_per_thread,
                                    stats.smem_bytes_per_block);

  const double resident = est.occupancy.blocks_per_sm;
  const double eff_issue = arch.sm_issue_width * arch.issue_efficiency;

  // Cycles for one SM to retire a batch of `resident` blocks: either the
  // issue pipeline is saturated, or the batch is latency-limited by a single
  // block's dependency chain.
  const double batch_issue = resident * stats.issue_slots_per_block / eff_issue;
  const double batch_cycles = std::max(stats.cycles_per_block, batch_issue);
  const double batches_per_sm =
      std::ceil(static_cast<double>(stats.blocks_total) /
                (static_cast<double>(arch.sm_count) * resident));
  const double cycles = batches_per_sm * batch_cycles;
  est.compute_ms = cycles / (arch.clock_ghz * 1e9) * 1e3;

  est.dram_ms =
      static_cast<double>(stats.totals.dram_bytes()) / (arch.dram_bw_gbps * 1e9) * 1e3;

  const double overhead_ms = arch.kernel_launch_overhead_us * 1e-3;
  est.total_ms = std::max(est.compute_ms, est.dram_ms) + overhead_ms;
  est.bound = est.compute_ms >= est.dram_ms ? "compute" : "memory";
  return est;
}

double gcells_per_s(double cells, const RuntimeEstimate& est) {
  return cells / (est.total_ms * 1e-3) / 1e9;
}

}  // namespace ssam::sim
