#include "gpusim/memsim.hpp"

#include <algorithm>

namespace ssam::sim {

int MemorySystem::collect_sectors(std::span<const std::uint64_t> byte_addrs, int elem_bytes,
                                  int sector_bytes, std::uint64_t* out, int cap) {
  int n = 0;
  for (std::uint64_t addr : byte_addrs) {
    const std::uint64_t first = addr / static_cast<std::uint64_t>(sector_bytes);
    const std::uint64_t last =
        (addr + static_cast<std::uint64_t>(elem_bytes) - 1) / static_cast<std::uint64_t>(sector_bytes);
    for (std::uint64_t s = first; s <= last && n < cap; ++s) out[n++] = s;
  }
  std::sort(out, out + n);
  return static_cast<int>(std::unique(out, out + n) - out);
}

GlobalAccess MemorySystem::load(std::span<const std::uint64_t> byte_addrs, int elem_bytes) {
  GlobalAccess r;
  if (byte_addrs.empty()) return r;

  // Up to 32 lanes * 2 sectors (an 8B element can straddle a boundary) * 2.
  std::uint64_t sectors[128];
  const int nsec =
      collect_sectors(byte_addrs, elem_bytes, arch_->sector_bytes, sectors, 128);
  r.sectors = nsec;

  const int sectors_per_line = arch_->line_bytes / arch_->sector_bytes;
  int i = 0;
  while (i < nsec) {
    const std::uint64_t line = sectors[i] / static_cast<std::uint64_t>(sectors_per_line);
    ++r.lines;
    const std::uint64_t line_byte = line * static_cast<std::uint64_t>(arch_->line_bytes);
    if (l1_.access(line_byte)) {
      ++r.l1_hit_lines;
      r.latency = std::max(r.latency, arch_->lat.l1);
      while (i < nsec && sectors[i] / static_cast<std::uint64_t>(sectors_per_line) == line) ++i;
      continue;
    }
    // L1 miss: each touched sector goes to L2.
    while (i < nsec && sectors[i] / static_cast<std::uint64_t>(sectors_per_line) == line) {
      const std::uint64_t sector_byte =
          sectors[i] * static_cast<std::uint64_t>(arch_->sector_bytes);
      if (l2_.access(sector_byte)) {
        ++r.l2_hit_sectors;
        r.latency = std::max(r.latency, arch_->lat.l2);
      } else {
        ++r.dram_sectors;
        r.latency = std::max(r.latency, arch_->lat.dram);
      }
      ++i;
    }
  }
  return r;
}

GlobalAccess MemorySystem::store(std::span<const std::uint64_t> byte_addrs, int elem_bytes) {
  GlobalAccess r;
  if (byte_addrs.empty()) return r;

  std::uint64_t sectors[128];
  const int nsec =
      collect_sectors(byte_addrs, elem_bytes, arch_->sector_bytes, sectors, 128);
  r.sectors = nsec;

  const int sectors_per_line = arch_->line_bytes / arch_->sector_bytes;
  std::uint64_t prev_line = ~0ull;
  for (int i = 0; i < nsec; ++i) {
    const std::uint64_t line = sectors[i] / static_cast<std::uint64_t>(sectors_per_line);
    if (line != prev_line) {
      ++r.lines;
      prev_line = line;
    }
    // Write-through accounting: the dirty sector eventually reaches DRAM.
    // The line is installed in L2 so subsequent halo reads by neighbouring
    // blocks can hit.
    l2_.access(sectors[i] * static_cast<std::uint64_t>(arch_->sector_bytes));
    ++r.dram_sectors;
  }
  r.latency = 0;  // stores do not stall the issuing warp in this model
  return r;
}

}  // namespace ssam::sim
