#include "gpusim/microbench.hpp"

#include <numeric>
#include <vector>

#include "gpusim/launch.hpp"

namespace ssam::sim {

namespace {

/// Measured cycles per step of a dependent chain built by `step`, which maps
/// the previous register to the next one.
template <typename T, typename Step>
double chain_cycles(Reg<T> seed, int iterations, Step&& step) {
  Reg<T> v = seed;
  v = step(v);  // warm-up: absorb issue alignment
  const Cycle start = v.ready;
  for (int i = 0; i < iterations; ++i) v = step(v);
  return static_cast<double>(v.ready - start) / iterations;
}

}  // namespace

MicrobenchResult run_microbench(const ArchSpec& arch, int iterations) {
  MicrobenchResult res;
  const LaunchConfig cfg{.grid = Dim3{1, 1, 1}, .block_threads = 32, .regs_per_thread = 32};
  MemorySystem mem(arch);
  BlockContext blk(arch, cfg, BlockId{}, &mem);
  WarpContext& w = blk.warp(0);

  res.mad_cycles = chain_cycles(w.uniform(1.0f), iterations, [&](const Reg<float>& v) {
    return w.mad(v, 0.999f, v);
  });
  res.add_cycles = chain_cycles(w.uniform(1.0f), iterations, [&](const Reg<float>& v) {
    return w.add(v, 1.0f);
  });
  res.shfl_up_cycles = chain_cycles(w.iota(0.0f, 1.0f), iterations, [&](const Reg<float>& v) {
    return w.shfl_up(kFullMask, v, 1);
  });

  // Shared-memory pointer chase: lane l repeatedly loads arr[idx] with
  // idx = arr[idx]; the identity permutation keeps the access conflict-free.
  Smem<int> arr = blk.alloc_smem<int>(kWarpSize);
  for (int i = 0; i < kWarpSize; ++i) arr.data[i] = i;
  res.smem_read_cycles = chain_cycles(w.lane_id(), iterations, [&](const Reg<int>& idx) {
    return w.load_shared(arr, idx);
  });

  // Global-memory pointer chase across a buffer far larger than L2 so every
  // step misses: stride one line past the cache ways.
  const int chase_len = 1 << 16;
  std::vector<Index> chase(static_cast<std::size_t>(chase_len) * kWarpSize);
  const Index stride = arch.l2_bytes / static_cast<Index>(sizeof(Index)) / 2 / kWarpSize;
  for (Index i = 0; i < chase_len; ++i) {
    for (int l = 0; l < kWarpSize; ++l) {
      const Index slot = (i * kWarpSize + l);
      chase[static_cast<std::size_t>(slot)] =
          ((i + 1) % chase_len) * kWarpSize + ((l + stride) % kWarpSize);
    }
  }
  // A pure pointer chase on a cold cache: measure only a few steps, each
  // touching fresh lines.
  {
    Reg<Index> idx = w.iota<Index>(0, 1);
    idx = w.load_global(chase.data(), idx);
    const Cycle start = idx.ready;
    const int steps = 32;
    for (int i = 0; i < steps; ++i) idx = w.load_global(chase.data(), idx);
    res.gmem_read_cycles = static_cast<double>(idx.ready - start) / steps;
  }
  return res;
}

}  // namespace ssam::sim
