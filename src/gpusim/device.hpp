// Virtual multi-device layer: one host carved into N cooperating "devices".
//
// The persistent engine (gpusim/persistent.hpp) gave one flat worker pool
// cross-iteration tile residency. This layer reproduces the next level of
// the systolic composition — Versa-style multi-core dataflow over an
// explicit interconnect (Kim et al. 2021) — in software: a `Device` is a
// slice of the host that behaves like one GPU of a multi-GPU node. It owns
//
//  * a ThreadPool slice (its own worker threads, optionally pinned to a
//    disjoint core range so shards never migrate across each other),
//  * a workspace arena for its shard's residence buffers,
//  * a stream set whose drains and block fan-out run on the device's pool
//    only (ops routed to one device never occupy another device's slice),
//  * traffic counters (band sweeps, halo bytes, seam crossings).
//
// A `DeviceGroup` holds N such devices plus the *peer channels* between
// them: the same epoch-counted SPSC HaloChannels the persistent engine uses
// inside a shard, configured in zero-copy external mode so a boundary
// published on device d lands directly in the halo region of the
// neighbouring tile's residence buffer on device d+1 — no global-array
// round trip, exactly like a peer-to-peer copy over NVLink. The domain
// partitioner that wires shards onto a group lives in core/shard.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "gpusim/persistent.hpp"
#include "gpusim/stream.hpp"

namespace ssam::sim {

struct DeviceOptions {
  int threads = 1;            ///< workers in this device's pool slice
  std::vector<int> pin_cpus;  ///< optional explicit core set (empty: unpinned)
  std::string name;           ///< diagnostic label ("dev0" when empty)
};

/// Per-device traffic counters. Tiles of one device publish concurrently
/// from different workers, so the counts are relaxed atomics; they are
/// diagnostics, never synchronization.
struct DeviceCounters {
  std::atomic<std::uint64_t> sweeps{0};           ///< band sweeps executed
  std::atomic<std::uint64_t> halo_bytes_out{0};   ///< boundary bytes published
  std::atomic<std::uint64_t> seam_bytes_out{0};   ///< subset crossing a device seam
  std::atomic<std::uint64_t> seam_epochs_out{0};  ///< seam boundary publications
  std::atomic<std::uint64_t> jobs_completed{0};   ///< server jobs retired here

  void reset() {
    sweeps.store(0, std::memory_order_relaxed);
    halo_bytes_out.store(0, std::memory_order_relaxed);
    seam_bytes_out.store(0, std::memory_order_relaxed);
    seam_epochs_out.store(0, std::memory_order_relaxed);
    jobs_completed.store(0, std::memory_order_relaxed);
  }
};

class Device;

/// RAII lease of a per-device workspace arena (cudaMallocAsync-pool-like).
/// Jobs scheduled onto a device borrow a whole PersistentWorkspace for
/// their run and return it on destruction; the device keeps returned
/// workspaces warm, so a steady job stream stops allocating arenas after
/// the first wave. Move-only; a default-constructed lease is empty.
class WorkspaceLease {
 public:
  WorkspaceLease() = default;
  ~WorkspaceLease() { release(); }

  WorkspaceLease(WorkspaceLease&& other) noexcept
      : device_(other.device_), ws_(std::move(other.ws_)) {
    other.device_ = nullptr;
  }
  WorkspaceLease& operator=(WorkspaceLease&& other) noexcept {
    if (this != &other) {
      release();
      device_ = other.device_;
      ws_ = std::move(other.ws_);
      other.device_ = nullptr;
    }
    return *this;
  }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  [[nodiscard]] PersistentWorkspace* get() const { return ws_.get(); }
  [[nodiscard]] PersistentWorkspace& operator*() const { return *ws_; }
  [[nodiscard]] explicit operator bool() const { return ws_ != nullptr; }

  /// Returns the workspace to the owning device's warm pool early.
  void release();

 private:
  friend class Device;
  WorkspaceLease(Device* device, std::unique_ptr<PersistentWorkspace> ws)
      : device_(device), ws_(std::move(ws)) {}

  Device* device_ = nullptr;
  std::unique_ptr<PersistentWorkspace> ws_;
};

/// One virtual device: a pool slice + workspace + stream set + counters.
class Device {
 public:
  Device(int index, DeviceOptions opt);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ThreadPool& pool() { return *pool_; }
  [[nodiscard]] PersistentWorkspace& workspace() { return workspace_; }
  [[nodiscard]] DeviceCounters& counters() { return counters_; }

  /// The device's stream set, grown lazily; `stream(0)` is the default
  /// stream. Streams are bound to the device pool: their drains and their
  /// launches' block fan-out run on this device's workers only.
  [[nodiscard]] Stream& stream(std::size_t i = 0);
  [[nodiscard]] std::size_t stream_count() const;

  /// Borrows a workspace arena from the device's warm pool, creating one
  /// only when the pool is empty. Unlike `workspace()` (the device's single
  /// shard-residence arena), leased workspaces let several jobs share one
  /// device without clobbering each other's carves.
  [[nodiscard]] WorkspaceLease lease_workspace();

  /// Arenas created over the device's lifetime — a steady job stream should
  /// plateau this (leases come back warm instead of allocating).
  [[nodiscard]] std::uint64_t workspaces_created() const {
    return workspaces_created_.load(std::memory_order_relaxed);
  }

  // Job accounting, maintained by the scheduler (core/server.hpp): a
  // device is a packing target while `active_jobs()` is under its cap and
  // `idle()` devices are preferred for new work.
  void job_started() { active_jobs_.fetch_add(1, std::memory_order_relaxed); }
  void job_finished() {
    active_jobs_.fetch_sub(1, std::memory_order_relaxed);
    counters_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] int active_jobs() const {
    return active_jobs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool idle() const { return active_jobs() == 0; }

 private:
  friend class WorkspaceLease;
  void return_workspace(std::unique_ptr<PersistentWorkspace> ws);

  int index_;
  std::string name_;
  std::unique_ptr<ThreadPool> pool_;
  PersistentWorkspace workspace_;
  DeviceCounters counters_;
  mutable std::mutex streams_m_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::atomic<int> active_jobs_{0};
  std::atomic<std::uint64_t> workspaces_created_{0};
  std::mutex spares_m_;
  std::vector<std::unique_ptr<PersistentWorkspace>> spare_workspaces_;
};

/// N devices plus the peer-channel pool between them.
class DeviceGroup {
 public:
  explicit DeviceGroup(std::vector<DeviceOptions> devices);

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] Device& device(int i) { return *devices_[static_cast<std::size_t>(i)]; }

  /// `count` channels for the sharding layer to configure as seam and
  /// intra-shard links. Like PersistentWorkspace::channels: grow-only, one
  /// run at a time per group (a larger request rebuilds, invalidating
  /// earlier spans).
  [[nodiscard]] std::span<HaloChannel> peer_channels(std::size_t count);

  /// Even slicing of the host: `n` devices with max(1, host/n) workers
  /// each. When the SSAM_DEVICE_PIN environment variable is a positive
  /// integer, device d's workers are pinned to the contiguous core range
  /// starting at d * threads_per_device (mod the physical core count).
  [[nodiscard]] static std::vector<DeviceOptions> even_slices(int n);

  /// Process-wide cached group of `n` even slices. Device pools are
  /// expensive (real threads), so repeated sharded runs at the same device
  /// count reuse one group — mirroring how a process opens each physical
  /// GPU once. Not affected by ThreadPool::reset_global.
  [[nodiscard]] static DeviceGroup& shared(int n);

 private:
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<HaloChannel> peer_channels_;
};

/// Device count of ShardPolicy::sharded(0) ("auto"): the SSAM_DEVICES
/// environment variable when set to a positive integer, otherwise 2.
[[nodiscard]] int default_device_count();

/// Runs fn(i) once per device, each invocation on a worker of device i's
/// pool, and blocks until every one returns. The per-device work may itself
/// use the device pool (parallel loops, run_persistent_on): the caller of a
/// nested loop participates, so one-worker slices cannot deadlock.
void for_each_device(std::span<Device* const> devices,
                     const std::function<void(int)>& fn);

/// Runs each device's task group to completion, every group under its own
/// device's cooperative scheduler, concurrently across devices. Returns
/// when all groups are done. Empty groups are skipped. Deadlock-freedom
/// composes across devices: every tile is polled by some live participant
/// and seam-channel depth 2 keeps the globally least-advanced tile
/// advanceable, so the wavefront drains in any schedule. The shared `stop`
/// flag (see run_persistent_on) aborts every shard's scheduler together —
/// necessary because a stopped shard's seam channels go silent and its
/// neighbours would otherwise spin forever.
void run_persistent_group(std::span<Device* const> devices,
                          std::span<const std::span<PersistentTask* const>> groups,
                          const std::atomic<bool>* stop = nullptr);

}  // namespace ssam::sim
