// Latency micro-benchmarks executed *on the simulator*.
//
// The paper measures shuffle / MAD / shared-memory-read latencies with
// dependent-operation chains (cudabmk, Section 5.1, Table 2). We run the
// same chains through the scoreboard: the measured per-operation cost must
// reproduce the architecture's configured latencies, closing the same loop
// the paper closes against real hardware.
#pragma once

#include "gpusim/arch.hpp"

namespace ssam::sim {

struct MicrobenchResult {
  double shfl_up_cycles = 0.0;
  double mad_cycles = 0.0;
  double add_cycles = 0.0;
  double smem_read_cycles = 0.0;
  double gmem_read_cycles = 0.0;  ///< dependent DRAM pointer chase
};

/// Runs all dependent-chain micro-benchmarks for one architecture.
[[nodiscard]] MicrobenchResult run_microbench(const ArchSpec& arch, int iterations = 256);

}  // namespace ssam::sim
