// WarpContext: the device-code API of the simulated GPU.
//
// Kernels are ordinary C++ functions that manipulate `Reg<T>` values through
// a WarpContext. Every operation has
//   * a functional effect on all 32 lanes (warp-synchronous semantics), and
//   * in timing mode, a scoreboard effect (issue slot + operand-ready
//     dependency + result latency) and counter updates.
// Shuffle semantics follow CUDA's __shfl_*_sync with a full mask: lanes whose
// source falls outside the warp keep their own value.
//
// The execution mode is a compile-time template parameter: the functional
// specialization `WarpContextT<ExecMode::kFunctional>` carries no scoreboard,
// no counters and no memory-system pointer, and every operation compiles to
// the bare `Vec<T>` lane primitive — no `if (timing)` residue on the hot
// path. The timing specialization keeps the exact op-for-op scoreboard and
// counter behaviour.
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/error.hpp"
#include "common/types.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/memsim.hpp"
#include "gpusim/scoreboard.hpp"
#include "gpusim/shared_mem.hpp"
#include "gpusim/vec.hpp"

namespace ssam::sim {

/// Execution mode of a kernel launch (compile-time tag for the contexts).
///  * Functional — full-grid execution, host-parallel, zero timing state.
///  * Timing — sampled blocks run sequentially with caches and scoreboards.
enum class ExecMode { kFunctional, kTiming };

namespace detail {
template <typename T>
inline constexpr bool is_fp = std::is_floating_point_v<T>;

/// Placeholder for members compiled out of the functional specialization.
struct Nothing {};
}  // namespace detail

template <ExecMode M>
class WarpContextT {
 public:
  static constexpr bool kTimed = (M == ExecMode::kTiming);

  WarpContextT(const ArchSpec& arch, MemorySystem* mem, int warp_id)
      : arch_(&arch), warp_id_(warp_id) {
    if constexpr (kTimed) {
      mem_ = mem;
    } else {
      (void)mem;
    }
  }

  WarpContextT(const WarpContextT&) = delete;
  WarpContextT& operator=(const WarpContextT&) = delete;
  WarpContextT(WarpContextT&&) = default;
  WarpContextT& operator=(WarpContextT&&) = default;

  /// Re-targets this context at (possibly) another architecture. Used by the
  /// pooled functional contexts that persist across launches on the worker
  /// pool; the functional specialization holds no other launch state.
  void rebind(const ArchSpec& arch) { arch_ = &arch; }

  [[nodiscard]] int warp_id() const { return warp_id_; }
  [[nodiscard]] const ArchSpec& arch() const { return *arch_; }
  [[nodiscard]] static constexpr bool timing() { return kTimed; }
  [[nodiscard]] Scoreboard& scoreboard() requires kTimed { return sb_; }
  [[nodiscard]] const Scoreboard& scoreboard() const requires kTimed { return sb_; }

  /// Lane index vector [0..31]; free (a hardware special register).
  [[nodiscard]] Reg<int> lane_id() const {
    Reg<int> r;
    r.v = Vec<int>::iota(0, 1);
    r.ready = 0;
    return r;
  }

  /// Immediate / kernel-argument value: available at cycle 0, no cost.
  template <typename T>
  [[nodiscard]] Reg<T> uniform(T v) const {
    Reg<T> r;
    r.v = Vec<T>::splat(v);
    r.ready = 0;
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> iota(T base, T step) const {
    Reg<T> r;
    r.v = Vec<T>::iota(base, step);
    r.ready = 0;
    return r;
  }

  // ---------------------------------------------------------------- compute

  /// d = a * b + c (the MAD of Listing 1/2).
  template <typename T>
  [[nodiscard]] Reg<T> mad(const Reg<T>& a, const Reg<T>& b, const Reg<T>& c) {
    Reg<T> r;
    r.v = Vec<T>::mad(a.v, b.v, c.v);
    if constexpr (kTimed) time_arith<T>(r, Scoreboard::ready_max({a.ready, b.ready, c.ready}));
    return r;
  }

  /// MAD with an immediate coefficient (stencil coefficients as arguments).
  template <typename T>
  [[nodiscard]] Reg<T> mad(const Reg<T>& a, T b, const Reg<T>& c) {
    Reg<T> r;
    r.v = Vec<T>::mad(a.v, b, c.v);
    if constexpr (kTimed) time_arith<T>(r, Scoreboard::ready_max({a.ready, c.ready}));
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> add(const Reg<T>& a, const Reg<T>& b) {
    Reg<T> r;
    r.v = Vec<T>::add(a.v, b.v);
    if constexpr (kTimed) time_arith<T>(r, Scoreboard::ready_max({a.ready, b.ready}));
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> add(const Reg<T>& a, T b) {
    Reg<T> r;
    r.v = Vec<T>::add(a.v, b);
    if constexpr (kTimed) time_arith<T>(r, a.ready);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> sub(const Reg<T>& a, const Reg<T>& b) {
    Reg<T> r;
    r.v = Vec<T>::sub(a.v, b.v);
    if constexpr (kTimed) time_arith<T>(r, Scoreboard::ready_max({a.ready, b.ready}));
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> mul(const Reg<T>& a, const Reg<T>& b) {
    Reg<T> r;
    r.v = Vec<T>::mul(a.v, b.v);
    if constexpr (kTimed) time_arith<T>(r, Scoreboard::ready_max({a.ready, b.ready}));
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> mul(const Reg<T>& a, T b) {
    Reg<T> r;
    r.v = Vec<T>::mul(a.v, b);
    if constexpr (kTimed) time_arith<T>(r, a.ready);
    return r;
  }

  /// Affine index computation x*scale + offset, one integer MAD.
  [[nodiscard]] Reg<Index> affine(const Reg<Index>& x, Index scale, Index offset) {
    Reg<Index> r;
    r.v = Vec<Index>::affine(x.v, scale, offset);
    if constexpr (kTimed) time_alu(r, x.ready, 1.0);
    return r;
  }

  /// Clamps lanes into [lo, hi]; costs two ALU ops (min+max).
  template <typename T>
  [[nodiscard]] Reg<T> clamp(const Reg<T>& x, T lo, T hi) {
    Reg<T> r;
    r.v = Vec<T>::clamp(x.v, lo, hi);
    if constexpr (kTimed) time_alu(r, x.ready, 2.0);
    return r;
  }

  /// Charges `slots` ALU issue slots with no functional effect. Models
  /// compiler-generated bookkeeping (runtime loop counters, bounds
  /// predicates, re-materialized addresses) that the warp-synchronous C++
  /// form of a kernel does not express but real SASS executes. Baselines use
  /// this to reflect their measured instruction mixes; SSAM kernels never do.
  void charge_alu(double slots) {
    if constexpr (kTimed) {
      sb_.counters().alu_ops += static_cast<std::uint64_t>(slots);
      (void)sb_.issue(0, slots, arch_->lat.alu);
    }
  }

  // ------------------------------------------------------------- predicates

  /// pred[l] = (a[l] >= b) ? 1 : 0.
  template <typename T>
  [[nodiscard]] Pred cmp_ge(const Reg<T>& a, T b) {
    Pred r;
    r.v = Vec<T>::ge(a.v, b);
    if constexpr (kTimed) time_alu(r, a.ready, 1.0);
    return r;
  }

  template <typename T>
  [[nodiscard]] Pred cmp_lt(const Reg<T>& a, T b) {
    Pred r;
    r.v = Vec<T>::lt(a.v, b);
    if constexpr (kTimed) time_alu(r, a.ready, 1.0);
    return r;
  }

  [[nodiscard]] Pred pred_and(const Pred& a, const Pred& b) {
    Pred r;
    r.v = Vec<int>::logical_and(a.v, b.v);
    if constexpr (kTimed) time_alu(r, Scoreboard::ready_max({a.ready, b.ready}), 1.0);
    return r;
  }

  /// r = pred ? a : b (SEL instruction).
  template <typename T>
  [[nodiscard]] Reg<T> select(const Pred& pred, const Reg<T>& a, const Reg<T>& b) {
    Reg<T> r;
    r.v = Vec<T>::select(pred.v, a.v, b.v);
    if constexpr (kTimed) {
      time_alu(r, Scoreboard::ready_max({pred.ready, a.ready, b.ready}), 1.0);
    }
    return r;
  }

  // --------------------------------------------------------------- shuffles

  /// __shfl_up_sync: lane l receives lane l-delta; lanes < delta keep their
  /// own value. This is the partial-sum shift of Figure 2c.
  template <typename T>
  [[nodiscard]] Reg<T> shfl_up(std::uint32_t mask, const Reg<T>& a, int delta) {
    require_full_mask(mask);
    Reg<T> r;
    r.v = Vec<T>::shift_up(a.v, delta);
    if constexpr (kTimed) time_shfl(r, a.ready);
    return r;
  }

  /// __shfl_down_sync: lane l receives lane l+delta; top lanes keep their own.
  template <typename T>
  [[nodiscard]] Reg<T> shfl_down(std::uint32_t mask, const Reg<T>& a, int delta) {
    require_full_mask(mask);
    Reg<T> r;
    r.v = Vec<T>::shift_down(a.v, delta);
    if constexpr (kTimed) time_shfl(r, a.ready);
    return r;
  }

  /// __shfl_sync with a uniform source lane (broadcast).
  template <typename T>
  [[nodiscard]] Reg<T> shfl_idx(std::uint32_t mask, const Reg<T>& a, int src_lane) {
    require_full_mask(mask);
    Reg<T> r;
    r.v = Vec<T>::broadcast(a.v, src_lane);
    if constexpr (kTimed) time_shfl(r, a.ready);
    return r;
  }

  /// __shfl_xor_sync (butterfly exchange).
  template <typename T>
  [[nodiscard]] Reg<T> shfl_xor(std::uint32_t mask, const Reg<T>& a, int lane_mask) {
    require_full_mask(mask);
    Reg<T> r;
    r.v = Vec<T>::butterfly(a.v, lane_mask);
    if constexpr (kTimed) time_shfl(r, a.ready);
    return r;
  }

  // ---------------------------------------------------------- global memory

  /// Gather: r[l] = base[idx[l]] for active lanes (inactive lanes get T{}).
  /// Coalescing is derived from the actual lane addresses.
  template <typename T>
  [[nodiscard]] Reg<T> load_global(const T* base, const Reg<Index>& idx,
                                   const Pred* active = nullptr) {
    Reg<T> r;
    if constexpr (!kTimed) {
      if (active == nullptr) {
        r.v = Vec<T>::gather(base, idx.v);
      } else {
        r.v = Vec<T>::gather_if(base, idx.v, active->v);
      }
    } else {
      std::uint64_t addrs[kWarpSize];
      int n = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (active != nullptr && (*active)[l] == 0) {
          r[l] = T{};  // inactive lanes read as T{}, as in functional mode
          continue;
        }
        r[l] = base[idx[l]];
        addrs[n++] = reinterpret_cast<std::uint64_t>(base + idx[l]);
      }
      const GlobalAccess ga = mem_->load({addrs, static_cast<std::size_t>(n)}, sizeof(T));
      Counters& c = sb_.counters();
      ++c.gmem_load_insts;
      c.gmem_load_sectors += static_cast<std::uint64_t>(ga.sectors);
      c.l1_hit_lines += static_cast<std::uint64_t>(ga.l1_hit_lines);
      c.l2_hit_sectors += static_cast<std::uint64_t>(ga.l2_hit_sectors);
      c.dram_read_bytes +=
          static_cast<std::uint64_t>(ga.dram_sectors) * static_cast<std::uint64_t>(arch_->sector_bytes);
      const Cycle dep = Scoreboard::ready_max({idx.ready, active ? active->ready : 0});
      r.ready = sb_.issue(dep, std::max(1, ga.lines), ga.latency);
    }
    return r;
  }

  /// Scatter: base[idx[l]] = v[l] for active lanes.
  template <typename T>
  void store_global(T* base, const Reg<Index>& idx, const Reg<T>& v,
                    const Pred* active = nullptr) {
    if constexpr (!kTimed) {
      if (active == nullptr) {
        Vec<T>::scatter(base, idx.v, v.v);
      } else {
        Vec<T>::scatter_if(base, idx.v, v.v, active->v);
      }
    } else {
      std::uint64_t addrs[kWarpSize];
      int n = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (active != nullptr && (*active)[l] == 0) continue;
        base[idx[l]] = v[l];
        addrs[n++] = reinterpret_cast<std::uint64_t>(base + idx[l]);
      }
      const GlobalAccess ga = mem_->store({addrs, static_cast<std::size_t>(n)}, sizeof(T));
      Counters& c = sb_.counters();
      ++c.gmem_store_insts;
      c.gmem_store_sectors += static_cast<std::uint64_t>(ga.sectors);
      c.dram_write_bytes +=
          static_cast<std::uint64_t>(ga.dram_sectors) * static_cast<std::uint64_t>(arch_->sector_bytes);
      const Cycle dep = Scoreboard::ready_max({idx.ready, v.ready, active ? active->ready : 0});
      (void)sb_.issue(dep, std::max(1, ga.lines), 0);
    }
  }

  // ---------------------------------------------------------- shared memory

  /// Per-lane shared load with bank-conflict modeling.
  template <typename T>
  [[nodiscard]] Reg<T> load_shared(const Smem<T>& s, const Reg<int>& idx,
                                   const Pred* active = nullptr) {
    Reg<T> r;
    if constexpr (!kTimed) {
      if (active == nullptr) {
        r.v = Vec<T>::gather(s.data, idx.v);
      } else {
        r.v = Vec<T>::gather_if(s.data, idx.v, active->v);
      }
    } else {
      std::int64_t words[kWarpSize];
      int n = 0;
      constexpr int words_per_elem = static_cast<int>(sizeof(T) / kSmemWordBytes);
      for (int l = 0; l < kWarpSize; ++l) {
        if (active != nullptr && (*active)[l] == 0) {
          r[l] = T{};  // inactive lanes read as T{}, as in functional mode
          continue;
        }
        r[l] = s.data[idx[l]];
        words[n++] = s.base_word + static_cast<std::int64_t>(idx[l]) * words_per_elem;
      }
      const SmemAccessInfo info = analyze_smem_access({words, static_cast<std::size_t>(n)});
      const int passes = info.passes * words_per_elem;
      Counters& c = sb_.counters();
      ++c.smem_loads;
      if (info.broadcast) ++c.smem_broadcasts;
      c.smem_conflict_extra += static_cast<std::uint64_t>(passes - 1);
      const Cycle dep = Scoreboard::ready_max({idx.ready, active ? active->ready : 0});
      const int latency = arch_->lat.smem + (passes - 1) * arch_->lat.smem_conflict_step;
      r.ready = sb_.issue(dep, passes, latency);
    }
    return r;
  }

  /// Uniform-address shared load (the broadcast weight read of Listing 1).
  template <typename T>
  [[nodiscard]] Reg<T> load_shared_broadcast(const Smem<T>& s, int idx) {
    Reg<T> r;
    r.v = Vec<T>::splat(s.data[idx]);
    if constexpr (kTimed) {
      Counters& c = sb_.counters();
      ++c.smem_loads;
      ++c.smem_broadcasts;
      r.ready = sb_.issue(0, 1.0, arch_->lat.smem);
    }
    return r;
  }

  /// Fused broadcast-weight MAD: reads s[idx] (a uniform address, i.e. the
  /// broadcast weight read of Listing 1) and returns a * s[idx] + c. In
  /// timing mode this issues the exact same two-op sequence (broadcast smem
  /// load, then MAD) as the unfused form, with identical counters and
  /// scoreboard effects; in functional mode the broadcast value folds into a
  /// scalar-coefficient MAD — bit-identical per lane, half the lane traffic.
  template <typename T>
  [[nodiscard]] Reg<T> mad_broadcast(const Reg<T>& a, const Smem<T>& s, int idx,
                                     const Reg<T>& c) {
    if constexpr (kTimed) {
      const Reg<T> w = load_shared_broadcast(s, idx);
      return mad(a, w, c);
    } else {
      Reg<T> r;
      r.v = Vec<T>::mad(a.v, s.data[idx], c.v);
      return r;
    }
  }

  template <typename T>
  void store_shared(const Smem<T>& s, const Reg<int>& idx, const Reg<T>& v,
                    const Pred* active = nullptr) {
    if constexpr (!kTimed) {
      if (active == nullptr) {
        Vec<T>::scatter(s.data, idx.v, v.v);
      } else {
        Vec<T>::scatter_if(s.data, idx.v, v.v, active->v);
      }
    } else {
      std::int64_t words[kWarpSize];
      int n = 0;
      constexpr int words_per_elem = static_cast<int>(sizeof(T) / kSmemWordBytes);
      for (int l = 0; l < kWarpSize; ++l) {
        if (active != nullptr && (*active)[l] == 0) continue;
        s.data[idx[l]] = v[l];
        words[n++] = s.base_word + static_cast<std::int64_t>(idx[l]) * words_per_elem;
      }
      const SmemAccessInfo info = analyze_smem_access({words, static_cast<std::size_t>(n)});
      const int passes = info.passes * words_per_elem;
      Counters& c = sb_.counters();
      ++c.smem_stores;
      c.smem_conflict_extra += static_cast<std::uint64_t>(passes - 1);
      const Cycle dep = Scoreboard::ready_max({idx.ready, v.ready, active ? active->ready : 0});
      (void)sb_.issue(dep, passes, 0);
    }
  }

 private:
  static void require_full_mask(std::uint32_t mask) {
    SSAM_REQUIRE(mask == kFullMask, "only full-warp shuffle masks are modeled");
  }

  template <typename T, typename R>
  void time_arith(Reg<R>& r, Cycle dep) {
    Counters& c = sb_.counters();
    if constexpr (detail::is_fp<T>) {
      ++c.fp_ops;
      if constexpr (sizeof(T) == 8) {
        ++c.fp64_ops;
        r.ready = sb_.issue(dep, arch_->fp64_issue_cost, arch_->lat.fp64_mad);
      } else {
        r.ready = sb_.issue(dep, 1.0, arch_->lat.fp_mad);
      }
    } else {
      ++c.alu_ops;
      r.ready = sb_.issue(dep, 1.0, arch_->lat.alu);
    }
  }

  template <typename R>
  void time_alu(Reg<R>& r, Cycle dep, double slots) {
    sb_.counters().alu_ops += static_cast<std::uint64_t>(slots);
    r.ready = sb_.issue(dep, slots, arch_->lat.alu);
  }

  template <typename R>
  void time_shfl(Reg<R>& r, Cycle dep) {
    ++sb_.counters().shfl_ops;
    r.ready = sb_.issue(dep, 1.0, arch_->lat.shfl);
  }

  const ArchSpec* arch_;
  [[no_unique_address]] std::conditional_t<kTimed, MemorySystem*, detail::Nothing> mem_{};
  int warp_id_;
  [[no_unique_address]] std::conditional_t<kTimed, Scoreboard, detail::Nothing> sb_;
};

/// Timing specialization: the historical `WarpContext` name binds to it so
/// scoreboard-level unit tests and microbenchmarks read naturally.
using WarpContext = WarpContextT<ExecMode::kTiming>;
using FunctionalWarpContext = WarpContextT<ExecMode::kFunctional>;

}  // namespace ssam::sim
