// Persistent-execution substrate: the scheduling and communication layer of
// the cross-iteration tile-residency engine (core/iterate_persistent.hpp).
//
// The per-step relaunch model (one `launch` or stream op per time step)
// round-trips the full working set through the global arrays between steps.
// The persistent model instead emulates a PERKS-style persistent kernel
// (Zhang et al., arXiv:2204.02064) on the host pool: every tile of the
// domain is claimed by exactly one pool worker for the *whole* iteration
// run, the tile's working set stays resident in that worker's storage
// across steps, and boundary data moves directly between neighbouring tiles
// through lock-free single-producer/single-consumer halo channels. The
// device-wide synchronization a real persistent kernel gets from a grid
// sync is emulated with per-edge epoch counters: a tile may compute step
// s+1 as soon as *its* neighbours have published their step-s boundary —
// no global barrier, so tiles pipeline along the dependency wavefront.
//
// Three pieces live here; the stencil-specific tile state machines are in
// core/iterate_persistent.hpp:
//  * HaloChannel — an epoch-indexed SPSC ring of byte slots with
//    acquire/release publication. Depth >= 2 guarantees global progress
//    (see run_persistent below).
//  * PersistentTask — the polled interface of one resident tile.
//  * run_persistent — the cooperative scheduler: participants claim tiles
//    exactly once, burst each owned tile as far as its channels allow, and
//    a fully blocked participant claims more tiles, so the run completes
//    with ANY number of participating threads (deadlock-free at pool
//    size 1 by construction).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/launch.hpp"

namespace ssam::sim {

/// Lock-free epoch-indexed halo channel between two neighbouring tiles
/// (single producer, single consumer). The producer publishes the boundary
/// rows/planes of state s into slot s % depth; the consumer acquires epoch
/// s and releases it so the slot can be reused for epoch s + depth. All
/// ordering is acquire/release on the two epoch counters — the slot bytes
/// themselves are plain memory handed off by the counters.
///
/// Two storage modes:
///  * internal — the channel owns its ring of slots; the consumer copies
///    the payload out between `available` and `release`.
///  * external (zero-copy) — the slots ARE the consumer's two residence
///    buffers' halo regions (every tile flips buffers once per sweep, so
///    epoch e's halo lives in buffer e % 2). The producer writes the
///    boundary directly where the consumer's sweep will read it; no
///    consumer-side copy exists, and depth is pinned at 2 by the buffer
///    pair.
class HaloChannel {
 public:
  /// (Re)shapes the channel: `depth` slots of `slot_bytes` each, epochs
  /// reset. Depth is clamped to >= 2 — with depth 1 two neighbours at the
  /// same step could block each other (publish needs the consumer to have
  /// released the previous epoch), stalling the wavefront.
  void configure(std::size_t slot_bytes, int depth);

  /// Zero-copy mode: epoch e's slot is `dst[e % 2]` (the halo region of
  /// the consumer's even/odd residence buffer). Depth is 2 by construction.
  void configure_external(std::byte* dst_even, std::byte* dst_odd);

  /// True when epoch `e` may be published (the consumer has released
  /// e - depth, so the slot is free).
  [[nodiscard]] bool can_publish(std::int64_t e) const {
    return e <= released_.load(std::memory_order_acquire) + depth_;
  }

  /// Slot to write epoch `e`'s payload into. Only valid when
  /// `can_publish(e)`; call `publish(e)` after the payload is complete.
  [[nodiscard]] std::byte* publish_slot(std::int64_t e) {
    if (external_[0] != nullptr) return external_[e & 1];
    return slots_.data() + static_cast<std::size_t>(e % depth_) * slot_bytes_;
  }

  /// Makes epoch `e` visible to the consumer (release store).
  void publish(std::int64_t e) { published_.store(e, std::memory_order_release); }

  /// True when epoch `e` has been published (acquire load).
  [[nodiscard]] bool available(std::int64_t e) const {
    return published_.load(std::memory_order_acquire) >= e;
  }

  /// Read side of epoch `e`'s slot. Only valid between `available(e)` and
  /// `release(e)`.
  [[nodiscard]] const std::byte* peek(std::int64_t e) const {
    if (external_[0] != nullptr) return external_[e & 1];
    return slots_.data() + static_cast<std::size_t>(e % depth_) * slot_bytes_;
  }

  /// Returns epoch `e`'s slot to the producer.
  void release(std::int64_t e) { released_.store(e, std::memory_order_release); }

  [[nodiscard]] std::size_t slot_bytes() const { return slot_bytes_; }
  [[nodiscard]] int depth() const { return depth_; }

 private:
  std::vector<std::byte> slots_;
  std::byte* external_[2] = {nullptr, nullptr};
  std::size_t slot_bytes_ = 0;
  int depth_ = 2;
  std::atomic<std::int64_t> published_{-1};
  std::atomic<std::int64_t> released_{-1};
};

/// One resident tile, polled by the scheduler. `try_advance` attempts the
/// tile's next state transition (load, one or more steps, drain) and must
/// never block: when an input epoch is unavailable or an output channel is
/// full it returns false and the scheduler moves on.
class PersistentTask {
 public:
  virtual ~PersistentTask() = default;
  PersistentTask() = default;
  PersistentTask(const PersistentTask&) = delete;
  PersistentTask& operator=(const PersistentTask&) = delete;

  /// Attempts one unit of progress; returns whether any was made.
  [[nodiscard]] virtual bool try_advance() = 0;
  [[nodiscard]] virtual bool done() const = 0;
};

/// Executes every block of a functional launch grid on the *calling* thread
/// through its pooled per-worker BlockContext — no fork/join, no helpers.
/// This is how a resident tile replays its band sweep: the blocks of one
/// tile run serially on the tile's owner while other tiles run on other
/// workers, so parallelism comes from tiles, not from blocks.
template <typename Body>
void run_grid_on_caller(const ArchSpec& arch, const LaunchConfig& cfg, Body&& body) {
  FunctionalBlockContext& blk = detail::pooled_functional_context(arch, cfg);
  const long long total = cfg.grid.count();
  for (long long flat = 0; flat < total; ++flat) {
    blk.reset(detail::unflatten_block(flat, cfg.grid));
    body(blk);
  }
}

/// Runs every task to completion on the global persistent worker pool.
///
/// Tiles are claimed exactly once (dynamic, first-come): each participating
/// thread starts with one tile and *bursts* every owned tile as far as its
/// channels allow before moving to the next, which is what keeps a tile's
/// working set hot in the owner's cache between consecutive steps. A
/// participant whose owned tiles are all blocked claims another unclaimed
/// tile — so even a single participant ends up owning the whole grid and
/// the run completes (channel depth >= 2 makes the globally least-advanced
/// tile always advanceable; see HaloChannel::configure).
void run_persistent(std::span<PersistentTask* const> tasks);

/// Same cooperative scheduler on an explicit pool — the per-device entry
/// point of the virtual multi-device sharding layer (gpusim/device.hpp):
/// each Device runs its shard's tiles on its own pool slice while seam
/// channels carry boundaries between shards. Deadlock-freedom is unchanged:
/// every tile is owned by some live participant, and a blocked participant
/// yields, so the globally least-advanced tile (across ALL pools) always
/// advances. Safe to call from inside a task of `pool` (the caller
/// participates).
///
/// `stop`, when non-null, is the cooperative abort flag of the
/// fault-tolerance layer: participants poll it between bursts and unwind
/// without finishing the remaining tiles once it is set (tiles set it
/// themselves on cancellation or an injected fault — see
/// core/iterate_persistent.hpp's RunControl). The grid is torn at tile/sweep
/// boundaries only; the caller decides what to throw afterwards.
void run_persistent_on(ThreadPool& pool, std::span<PersistentTask* const> tasks,
                       const std::atomic<bool>* stop = nullptr);

/// Reusable storage for a persistent run: a grow-only 64-byte-aligned
/// arena for tile residency buffers plus a pool of halo channels. Repeated
/// runs of the same problem (benchmark reps, iterative solvers called in a
/// loop) reuse the same allocations instead of churning the allocator.
/// Not thread-safe: one workspace serves one run at a time (the engine's
/// default workspace is thread_local).
class PersistentWorkspace {
 public:
  /// Arena pointer with room for `bytes`, 64-byte aligned. Reuses the
  /// previous run's block when it is large enough. Invalidates pointers
  /// from earlier calls in the same run — carve the run's whole footprint
  /// with one call.
  [[nodiscard]] std::byte* arena(std::size_t bytes);

  /// `count` channels for the caller to configure (staged or external).
  [[nodiscard]] std::span<HaloChannel> channels(std::size_t count);

  /// Second grow-only 64-byte-aligned block, independent of `arena`. The
  /// staged chain path (core/chain.hpp) ping-pongs its inter-stage
  /// intermediates through this block, so a staged reference run and a
  /// fused run can share one warm workspace without invalidating each
  /// other's carvings. Same contract as `arena`: one call per run.
  [[nodiscard]] std::byte* scratch(std::size_t bytes);

 private:
  [[nodiscard]] static std::byte* aligned_block(std::vector<std::byte>& block,
                                                std::size_t bytes);

  std::vector<std::byte> arena_;
  std::vector<std::byte> scratch_;
  std::vector<HaloChannel> channels_;
};

}  // namespace ssam::sim
