// Simulated GPU architecture descriptions.
//
// Latency parameters for P100/V100 come from the paper's Table 2
// micro-benchmarks (shuffle, MAD, shared memory read) and from the
// micro-architecture studies it cites: Jia et al. [15][16] for L1/L2 and the
// CUDA guide's 200–400 cycle coalesced global load figure [42]. Capacity and
// throughput numbers are the public data-sheet values for the SXM2 parts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ssam::sim {

/// Instruction/memory latencies in cycles per warp, plus issue costs.
struct LatencyTable {
  int fp_mad = 4;        ///< fused multiply-add (also add/mul)
  int fp64_mad = 8;      ///< double precision multiply-add
  int alu = 4;           ///< integer / address / select
  int shfl = 22;         ///< warp shuffle (paper Table 2)
  int smem = 27;         ///< shared memory read (paper Table 2)
  int smem_conflict_step = 2;  ///< extra cycles per serialized conflict pass
  int l1 = 28;           ///< L1 hit
  int l2 = 193;          ///< L2 hit
  int dram = 400;        ///< DRAM access (coalesced, [42]: 200–400)
  int barrier = 24;      ///< __syncthreads
};

/// One simulated GPU. Enough detail for the occupancy + scoreboard +
/// bandwidth model; nothing speculative.
struct ArchSpec {
  std::string name;
  int sm_count = 80;
  double clock_ghz = 1.53;         ///< boost clock used for cycle→time conversion
  int warp_size = 32;
  int max_warps_per_sm = 64;
  int max_blocks_per_sm = 32;
  int regs_per_sm = 65536;         ///< 32-bit registers (paper Table 1)
  int max_regs_per_thread = 255;
  std::int64_t smem_per_sm = 96 * 1024;     ///< bytes (paper Table 1)
  std::int64_t smem_per_block = 48 * 1024;  ///< default per-block limit
  std::int64_t l1_bytes = 128 * 1024;
  int l1_ways = 4;
  std::int64_t l2_bytes = 6 * 1024 * 1024;
  int l2_ways = 16;
  int line_bytes = 128;            ///< L1 line; four 32B sectors
  int sector_bytes = 32;
  double dram_bw_gbps = 900.0;     ///< GB/s
  /// Warp instructions the SM can issue per cycle for the dominant FP32 path
  /// (64 FP32 lanes per SM on GP100/GV100 => 2 warp instructions / cycle).
  double sm_issue_width = 2.0;
  /// Fraction of peak issue the memory-bound kernels of interest sustain;
  /// calibration constant covering fetch/decode stalls the scoreboard does
  /// not model. One value per architecture, fixed across all experiments.
  double issue_efficiency = 0.55;
  double fp64_issue_cost = 2.0;    ///< FP64 warp op costs this many FP32 slots
  double kernel_launch_overhead_us = 3.0;
  int register_banks = 2;          ///< Volta: 2, earlier: 4 (Section 7.1)
  LatencyTable lat;
};

/// Registry of the GPUs the paper reports (Table 1): K40, M40, P100, V100.
[[nodiscard]] const ArchSpec& tesla_p100();
[[nodiscard]] const ArchSpec& tesla_v100();
[[nodiscard]] const ArchSpec& tesla_k40();
[[nodiscard]] const ArchSpec& tesla_m40();

/// All registered architectures in Table 1 order.
[[nodiscard]] const std::vector<const ArchSpec*>& all_archs();

/// Looks up an architecture by name ("P100", "V100", ...). Throws if unknown.
[[nodiscard]] const ArchSpec& arch_by_name(const std::string& name);

}  // namespace ssam::sim
