// Event counters collected by the SIMT timing simulator.
#pragma once

#include <cstdint>

namespace ssam::sim {

/// Aggregated per-warp/per-block/per-kernel event counts. All counts are in
/// warp-level units unless stated otherwise (one warp instruction = 32 lanes).
struct Counters {
  // Instruction classes (warp instructions issued).
  std::uint64_t fp_ops = 0;        ///< floating point add/mul/mad warp ops
  std::uint64_t fp64_ops = 0;      ///< subset of fp_ops executed in double precision
  std::uint64_t alu_ops = 0;       ///< integer/address/select warp ops
  std::uint64_t shfl_ops = 0;      ///< warp shuffle instructions

  // Shared memory.
  std::uint64_t smem_loads = 0;        ///< LDS warp instructions
  std::uint64_t smem_stores = 0;       ///< STS warp instructions
  std::uint64_t smem_broadcasts = 0;   ///< LDS where all active lanes hit one address
  std::uint64_t smem_conflict_extra = 0;  ///< extra serialized passes due to bank conflicts

  // Global memory (transaction granularity: 32B sectors; lines are 128B).
  std::uint64_t gmem_load_insts = 0;
  std::uint64_t gmem_store_insts = 0;
  std::uint64_t gmem_load_sectors = 0;
  std::uint64_t gmem_store_sectors = 0;
  std::uint64_t l1_hit_lines = 0;
  std::uint64_t l2_hit_sectors = 0;
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;

  std::uint64_t barriers = 0;  ///< __syncthreads executed (per block)

  Counters& operator+=(const Counters& o) {
    fp_ops += o.fp_ops;
    fp64_ops += o.fp64_ops;
    alu_ops += o.alu_ops;
    shfl_ops += o.shfl_ops;
    smem_loads += o.smem_loads;
    smem_stores += o.smem_stores;
    smem_broadcasts += o.smem_broadcasts;
    smem_conflict_extra += o.smem_conflict_extra;
    gmem_load_insts += o.gmem_load_insts;
    gmem_store_insts += o.gmem_store_insts;
    gmem_load_sectors += o.gmem_load_sectors;
    gmem_store_sectors += o.gmem_store_sectors;
    l1_hit_lines += o.l1_hit_lines;
    l2_hit_sectors += o.l2_hit_sectors;
    dram_read_bytes += o.dram_read_bytes;
    dram_write_bytes += o.dram_write_bytes;
    barriers += o.barriers;
    return *this;
  }

  /// Total warp instructions issued (used by the SM throughput model).
  [[nodiscard]] std::uint64_t issued_instructions() const {
    return fp_ops + alu_ops + shfl_ops + smem_loads + smem_stores + gmem_load_insts +
           gmem_store_insts;
  }

  [[nodiscard]] std::uint64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
};

}  // namespace ssam::sim
