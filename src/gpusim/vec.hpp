// Warp-wide values and their element-wise lane primitives.
//
// The simulator executes device code warp-synchronously: one `Reg<T>` holds
// the value of a virtual register across all 32 lanes of a warp, plus the
// simulated cycle at which the value becomes available (set by the
// scoreboard). This is the "software systolic array" substrate of the paper:
// the PEs of Figure 1d are exactly these per-lane register slots.
//
// All lane arithmetic lives here as `Vec<T>` primitives, each a one-line
// dispatch into the explicit SIMD lane engine (gpusim/simd/): arithmetic and
// mad chains run as wide ops over the 32 contiguous lanes, and the four
// CUDA-semantics shuffles run as in-register permutes on backends that have
// them (see simd/simd.hpp for backend selection). Every backend reproduces
// the portable reference loops bit-for-bit, so functional results do not
// depend on the backend — only throughput does.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "common/types.hpp"
#include "gpusim/simd/simd.hpp"

namespace ssam::sim {

inline constexpr int kWarpSize = 32;
static_assert(kWarpSize == simd::kSimdLanes, "lane engine width is one warp");

/// Full-warp participation mask, as in `__shfl_up_sync(0xffffffff, ...)`.
inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Plain 32-lane SIMD value (no timing attached). The static members are the
/// element-wise primitives every warp operation is built from; each
/// dispatches to the active simd::LaneOps backend over the 32 contiguous
/// lanes.
template <typename T>
struct Vec {
  using Ops = simd::LaneOps<T>;

  // Intentionally not initialized: a Vec is a register file row, and the
  // primitives below always write all 32 lanes before anything reads them.
  // Keeping the type trivially default-constructible means the fixed-capacity
  // accumulator arrays of the kernels cost zero cycles to construct.
  // 64-byte alignment keeps each vector-register-sized slice of the lanes
  // inside one cache line, so the wide backends never split a load.
  alignas(64) std::array<T, kWarpSize> lane;

  [[nodiscard]] T& operator[](int i) { return lane[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const T& operator[](int i) const { return lane[static_cast<std::size_t>(i)]; }

  [[nodiscard]] T* data() { return lane.data(); }
  [[nodiscard]] const T* data() const { return lane.data(); }

  [[nodiscard]] static Vec splat(T v) {
    Vec r;
    Ops::splat(r.data(), v);
    return r;
  }

  [[nodiscard]] static Vec iota(T base = T{0}, T step = T{1}) {
    Vec r;
    Ops::iota(r.data(), base, step);
    return r;
  }

  // ------------------------------------------------------------- arithmetic

  [[nodiscard]] static Vec mad(const Vec& a, const Vec& b, const Vec& c) {
    Vec r;
    Ops::mad(r.data(), a.data(), b.data(), c.data());
    return r;
  }

  [[nodiscard]] static Vec mad(const Vec& a, T b, const Vec& c) {
    Vec r;
    Ops::mad_s(r.data(), a.data(), b, c.data());
    return r;
  }

  [[nodiscard]] static Vec add(const Vec& a, const Vec& b) {
    Vec r;
    Ops::add(r.data(), a.data(), b.data());
    return r;
  }

  [[nodiscard]] static Vec add(const Vec& a, T b) {
    Vec r;
    Ops::add_s(r.data(), a.data(), b);
    return r;
  }

  [[nodiscard]] static Vec sub(const Vec& a, const Vec& b) {
    Vec r;
    Ops::sub(r.data(), a.data(), b.data());
    return r;
  }

  [[nodiscard]] static Vec mul(const Vec& a, const Vec& b) {
    Vec r;
    Ops::mul(r.data(), a.data(), b.data());
    return r;
  }

  [[nodiscard]] static Vec mul(const Vec& a, T b) {
    Vec r;
    Ops::mul_s(r.data(), a.data(), b);
    return r;
  }

  /// x*scale + offset with scalar coefficients (one integer MAD on device).
  /// scale == 1 (the ubiquitous row-base addressing case) skips the multiply.
  [[nodiscard]] static Vec affine(const Vec& x, T scale, T offset) {
    if (scale == T{1}) return add(x, offset);
    Vec r;
    Ops::affine(r.data(), x.data(), scale, offset);
    return r;
  }

  [[nodiscard]] static Vec clamp(const Vec& x, T lo, T hi) {
    Vec r;
    Ops::clamp(r.data(), x.data(), lo, hi);
    return r;
  }

  // -------------------------------------------------------------- predicates

  [[nodiscard]] static Vec<int> ge(const Vec& a, T b) {
    Vec<int> r;
    Ops::ge_s(r.data(), a.data(), b);
    return r;
  }

  [[nodiscard]] static Vec<int> lt(const Vec& a, T b) {
    Vec<int> r;
    Ops::lt_s(r.data(), a.data(), b);
    return r;
  }

  [[nodiscard]] static Vec<int> logical_and(const Vec<int>& a, const Vec<int>& b) {
    Vec<int> r;
    simd::LaneOps<int>::logical_and(r.data(), a.data(), b.data());
    return r;
  }

  /// r = pred ? a : b (SEL instruction).
  [[nodiscard]] static Vec select(const Vec<int>& pred, const Vec& a, const Vec& b) {
    Vec r;
    Ops::select(r.data(), pred.data(), a.data(), b.data());
    return r;
  }

  // ---------------------------------------------------------------- shuffles
  //
  // CUDA __shfl_*_sync semantics with a full mask: a lane whose source falls
  // outside the warp keeps its own value. On AVX-512/AVX2 these are true
  // register permutes (vpermt2d / vpermd); elsewhere the reference path's
  // fixed-size overlapping copies compile to straight vector moves.

  /// __shfl_up_sync: lane l receives lane l-delta; lanes < delta keep their
  /// own value (the delta == 1 case is the partial-sum shift of every
  /// systolic sweep).
  [[nodiscard]] static Vec shift_up(const Vec& a, int delta) {
    if (delta <= 0) return a;
    if (delta > kWarpSize) delta = kWarpSize;
    Vec r;
    Ops::shift_up(r.data(), a.data(), delta);
    return r;
  }

  /// __shfl_down_sync: lane l receives lane l+delta; top lanes keep their own.
  [[nodiscard]] static Vec shift_down(const Vec& a, int delta) {
    if (delta <= 0) return a;
    if (delta > kWarpSize) delta = kWarpSize;
    Vec r;
    Ops::shift_down(r.data(), a.data(), delta);
    return r;
  }

  /// __shfl_sync with a uniform source lane (broadcast; wraps modulo warp).
  [[nodiscard]] static Vec broadcast(const Vec& a, int src_lane) {
    return splat(a.lane[static_cast<std::size_t>(src_lane & (kWarpSize - 1))]);
  }

  /// __shfl_xor_sync (butterfly exchange); only the lane bits participate.
  [[nodiscard]] static Vec butterfly(const Vec& a, int lane_mask) {
    Vec r;
    Ops::butterfly(r.data(), a.data(), lane_mask & (kWarpSize - 1));
    return r;
  }

  // ------------------------------------------------------------ gather/scatter

  /// True when idx is the unit-stride ramp idx[0], idx[0]+1, ... — the fully
  /// coalesced pattern almost every SSAM access produces.
  template <typename I>
  [[nodiscard]] static bool unit_stride(const Vec<I>& idx) {
    return simd::LaneOps<I>::unit_stride(idx.data());
  }

  template <typename I>
  [[nodiscard]] static Vec gather(const T* base, const Vec<I>& idx) {
    Vec r;
    if (unit_stride(idx)) {  // coalesced: one 128-byte block copy
      std::memcpy(r.lane.data(), base + idx.lane[0], sizeof(r.lane));
      return r;
    }
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = base[idx.lane[l]];
    return r;
  }

  /// Masked gather; inactive lanes receive T{} (matching the documented
  /// load semantics kernels rely on, e.g. masked scan inputs). Interior
  /// warps pass an all-true predicate, which rejoins the coalesced path.
  template <typename I>
  [[nodiscard]] static Vec gather_if(const T* base, const Vec<I>& idx, const Vec<int>& active) {
    if (simd::LaneOps<int>::all_nonzero(active.data())) return gather(base, idx);
    Vec r;
    for (int l = 0; l < kWarpSize; ++l) {
      if (active.lane[l] != 0) {
        r.lane[l] = base[idx.lane[l]];
      } else {
        r.lane[l] = T{};
      }
    }
    return r;
  }

  template <typename I>
  static void scatter(T* base, const Vec<I>& idx, const Vec& v) {
    if (unit_stride(idx)) {  // coalesced: one 128-byte block copy
      std::memcpy(base + idx.lane[0], v.lane.data(), sizeof(v.lane));
      return;
    }
    for (int l = 0; l < kWarpSize; ++l) base[idx.lane[l]] = v.lane[l];
  }

  template <typename I>
  static void scatter_if(T* base, const Vec<I>& idx, const Vec& v, const Vec<int>& active) {
    if (simd::LaneOps<int>::all_nonzero(active.data())) {
      scatter(base, idx, v);
      return;
    }
    for (int l = 0; l < kWarpSize; ++l) {
      if (active.lane[l] != 0) base[idx.lane[l]] = v.lane[l];
    }
  }
};

/// A virtual register: value lanes plus the cycle the value is ready.
/// `ready == 0` means available immediately (constants, kernel arguments);
/// the functional execution path never touches it. Like Vec, a Reg is
/// trivially default-constructible — every producing operation writes all
/// lanes (and, in timing mode, the ready cycle) before anything reads them.
template <typename T>
struct Reg {
  Vec<T> v;
  Cycle ready;

  [[nodiscard]] T& operator[](int i) { return v[i]; }
  [[nodiscard]] const T& operator[](int i) const { return v[i]; }
};

/// Lane predicate: nonzero = active/true. Produced by comparisons, consumed
/// by select() and predicated memory operations.
using Pred = Reg<int>;

}  // namespace ssam::sim
