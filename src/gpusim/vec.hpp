// Warp-wide values and their element-wise lane primitives.
//
// The simulator executes device code warp-synchronously: one `Reg<T>` holds
// the value of a virtual register across all 32 lanes of a warp, plus the
// simulated cycle at which the value becomes available (set by the
// scoreboard). This is the "software systolic array" substrate of the paper:
// the PEs of Figure 1d are exactly these per-lane register slots.
//
// All lane arithmetic lives here as `Vec<T>` primitives — one short
// fixed-trip-count loop per operation, annotated for vectorization — so the
// functional execution path compiles down to tight SIMD loops and the
// WarpContext operations reduce to one-liners.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "common/types.hpp"

// Vectorization hint for the 32-lane primitive loops. `omp simd` needs
// -fopenmp / -fopenmp-simd; without it the fixed trip count still lets the
// optimizer auto-vectorize at -O2/-O3.
#if defined(_OPENMP)
#define SSAM_SIMD _Pragma("omp simd")
#else
#define SSAM_SIMD
#endif

namespace ssam::sim {

inline constexpr int kWarpSize = 32;

/// Full-warp participation mask, as in `__shfl_up_sync(0xffffffff, ...)`.
inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Plain 32-lane SIMD value (no timing attached). The static members are the
/// element-wise primitives every warp operation is built from; each is a
/// single vectorizable loop over the 32 contiguous lanes.
template <typename T>
struct Vec {
  // Intentionally not initialized: a Vec is a register file row, and the
  // primitives below always write all 32 lanes before anything reads them.
  // Keeping the type trivially default-constructible means the fixed-capacity
  // accumulator arrays of the kernels cost zero cycles to construct.
  std::array<T, kWarpSize> lane;

  [[nodiscard]] T& operator[](int i) { return lane[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const T& operator[](int i) const { return lane[static_cast<std::size_t>(i)]; }

  [[nodiscard]] static Vec splat(T v) {
    Vec r;
    r.lane.fill(v);
    return r;
  }

  [[nodiscard]] static Vec iota(T base = T{0}, T step = T{1}) {
    Vec r;
    T v = base;
    for (int i = 0; i < kWarpSize; ++i, v = static_cast<T>(v + step)) r[i] = v;
    return r;
  }

  // ------------------------------------------------------------- arithmetic

  [[nodiscard]] static Vec mad(const Vec& a, const Vec& b, const Vec& c) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] * b.lane[l] + c.lane[l];
    return r;
  }

  [[nodiscard]] static Vec mad(const Vec& a, T b, const Vec& c) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] * b + c.lane[l];
    return r;
  }

  [[nodiscard]] static Vec add(const Vec& a, const Vec& b) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] + b.lane[l];
    return r;
  }

  [[nodiscard]] static Vec add(const Vec& a, T b) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] + b;
    return r;
  }

  [[nodiscard]] static Vec sub(const Vec& a, const Vec& b) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] - b.lane[l];
    return r;
  }

  [[nodiscard]] static Vec mul(const Vec& a, const Vec& b) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] * b.lane[l];
    return r;
  }

  [[nodiscard]] static Vec mul(const Vec& a, T b) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] * b;
    return r;
  }

  /// x*scale + offset with scalar coefficients (one integer MAD on device).
  /// scale == 1 (the ubiquitous row-base addressing case) skips the multiply.
  [[nodiscard]] static Vec affine(const Vec& x, T scale, T offset) {
    if (scale == T{1}) return add(x, offset);
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = x.lane[l] * scale + offset;
    return r;
  }

  [[nodiscard]] static Vec clamp(const Vec& x, T lo, T hi) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) {
      T v = x.lane[l];
      v = v < lo ? lo : v;
      v = v > hi ? hi : v;
      r.lane[l] = v;
    }
    return r;
  }

  // -------------------------------------------------------------- predicates

  [[nodiscard]] static Vec<int> ge(const Vec& a, T b) {
    Vec<int> r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] >= b ? 1 : 0;
    return r;
  }

  [[nodiscard]] static Vec<int> lt(const Vec& a, T b) {
    Vec<int> r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l] < b ? 1 : 0;
    return r;
  }

  [[nodiscard]] static Vec<int> logical_and(const Vec<int>& a, const Vec<int>& b) {
    Vec<int> r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) {
      r.lane[l] = (a.lane[l] != 0 && b.lane[l] != 0) ? 1 : 0;
    }
    return r;
  }

  /// r = pred ? a : b (SEL instruction).
  [[nodiscard]] static Vec select(const Vec<int>& pred, const Vec& a, const Vec& b) {
    Vec r;
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = pred.lane[l] != 0 ? a.lane[l] : b.lane[l];
    return r;
  }

  // ---------------------------------------------------------------- shuffles

  /// __shfl_up_sync: lane l receives lane l-delta; lanes < delta keep their
  /// own value. Implemented as two block copies (lane types are trivial);
  /// the delta == 1 partial-sum shift of every systolic sweep gets a
  /// constant-size copy the compiler turns into straight vector moves.
  [[nodiscard]] static Vec shift_up(const Vec& a, int delta) {
    if (delta <= 0) return a;
    if (delta > kWarpSize) delta = kWarpSize;
    Vec r;
    if (delta == 1) {
      r.lane[0] = a.lane[0];
      std::memcpy(r.lane.data() + 1, a.lane.data(), (kWarpSize - 1) * sizeof(T));
      return r;
    }
    std::memcpy(r.lane.data(), a.lane.data(), static_cast<std::size_t>(delta) * sizeof(T));
    std::memcpy(r.lane.data() + delta, a.lane.data(),
                static_cast<std::size_t>(kWarpSize - delta) * sizeof(T));
    return r;
  }

  /// __shfl_down_sync: lane l receives lane l+delta; top lanes keep their own.
  [[nodiscard]] static Vec shift_down(const Vec& a, int delta) {
    if (delta <= 0) return a;
    if (delta > kWarpSize) delta = kWarpSize;
    Vec r;
    std::memcpy(r.lane.data(), a.lane.data() + delta,
                static_cast<std::size_t>(kWarpSize - delta) * sizeof(T));
    std::memcpy(r.lane.data() + (kWarpSize - delta), a.lane.data() + (kWarpSize - delta),
                static_cast<std::size_t>(delta) * sizeof(T));
    return r;
  }

  /// __shfl_sync with a uniform source lane (broadcast; wraps modulo warp).
  [[nodiscard]] static Vec broadcast(const Vec& a, int src_lane) {
    return splat(a.lane[static_cast<std::size_t>(src_lane & (kWarpSize - 1))]);
  }

  /// __shfl_xor_sync (butterfly exchange).
  [[nodiscard]] static Vec butterfly(const Vec& a, int lane_mask) {
    Vec r;
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = a.lane[l ^ lane_mask];
    return r;
  }

  // ------------------------------------------------------------ gather/scatter

  /// True when idx is the unit-stride ramp idx[0], idx[0]+1, ... — the fully
  /// coalesced pattern almost every SSAM access produces.
  template <typename I>
  [[nodiscard]] static bool unit_stride(const Vec<I>& idx) {
    const I i0 = idx.lane[0];
    bool contiguous = true;
    // No SSAM_SIMD here: `contiguous` is a loop-carried reduction, which the
    // plain `omp simd` pragma does not declare (it would need a reduction
    // clause); the fixed-trip loop auto-vectorizes fine regardless.
    for (int l = 1; l < kWarpSize; ++l) {
      contiguous &= idx.lane[l] == i0 + static_cast<I>(l);
    }
    return contiguous;
  }

  template <typename I>
  [[nodiscard]] static Vec gather(const T* base, const Vec<I>& idx) {
    Vec r;
    if (unit_stride(idx)) {  // coalesced: one 128-byte block copy
      std::memcpy(r.lane.data(), base + idx.lane[0], sizeof(r.lane));
      return r;
    }
    SSAM_SIMD
    for (int l = 0; l < kWarpSize; ++l) r.lane[l] = base[idx.lane[l]];
    return r;
  }

  /// Masked gather; inactive lanes receive T{} (matching the documented
  /// load semantics kernels rely on, e.g. masked scan inputs).
  template <typename I>
  [[nodiscard]] static Vec gather_if(const T* base, const Vec<I>& idx, const Vec<int>& active) {
    Vec r;
    for (int l = 0; l < kWarpSize; ++l) {
      if (active.lane[l] != 0) {
        r.lane[l] = base[idx.lane[l]];
      } else {
        r.lane[l] = T{};
      }
    }
    return r;
  }

  template <typename I>
  static void scatter(T* base, const Vec<I>& idx, const Vec& v) {
    if (unit_stride(idx)) {  // coalesced: one 128-byte block copy
      std::memcpy(base + idx.lane[0], v.lane.data(), sizeof(v.lane));
      return;
    }
    for (int l = 0; l < kWarpSize; ++l) base[idx.lane[l]] = v.lane[l];
  }

  template <typename I>
  static void scatter_if(T* base, const Vec<I>& idx, const Vec& v, const Vec<int>& active) {
    for (int l = 0; l < kWarpSize; ++l) {
      if (active.lane[l] != 0) base[idx.lane[l]] = v.lane[l];
    }
  }
};

/// A virtual register: value lanes plus the cycle the value is ready.
/// `ready == 0` means available immediately (constants, kernel arguments);
/// the functional execution path never touches it. Like Vec, a Reg is
/// trivially default-constructible — every producing operation writes all
/// lanes (and, in timing mode, the ready cycle) before anything reads them.
template <typename T>
struct Reg {
  Vec<T> v;
  Cycle ready;

  [[nodiscard]] T& operator[](int i) { return v[i]; }
  [[nodiscard]] const T& operator[](int i) const { return v[i]; }
};

/// Lane predicate: nonzero = active/true. Produced by comparisons, consumed
/// by select() and predicated memory operations.
using Pred = Reg<int>;

}  // namespace ssam::sim
