// Warp-wide values.
//
// The simulator executes device code warp-synchronously: one `Reg<T>` holds
// the value of a virtual register across all 32 lanes of a warp, plus the
// simulated cycle at which the value becomes available (set by the
// scoreboard). This is the "software systolic array" substrate of the paper:
// the PEs of Figure 1d are exactly these per-lane register slots.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace ssam::sim {

inline constexpr int kWarpSize = 32;

/// Full-warp participation mask, as in `__shfl_up_sync(0xffffffff, ...)`.
inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Plain 32-lane SIMD value (no timing attached).
template <typename T>
struct Vec {
  std::array<T, kWarpSize> lane{};

  [[nodiscard]] T& operator[](int i) { return lane[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const T& operator[](int i) const { return lane[static_cast<std::size_t>(i)]; }

  [[nodiscard]] static Vec splat(T v) {
    Vec r;
    r.lane.fill(v);
    return r;
  }

  [[nodiscard]] static Vec iota(T base = T{0}, T step = T{1}) {
    Vec r;
    T v = base;
    for (int i = 0; i < kWarpSize; ++i, v = static_cast<T>(v + step)) r[i] = v;
    return r;
  }
};

/// A virtual register: value lanes plus the cycle the value is ready.
/// `ready == 0` means available immediately (constants, kernel arguments).
template <typename T>
struct Reg {
  Vec<T> v{};
  Cycle ready = 0;

  [[nodiscard]] T& operator[](int i) { return v[i]; }
  [[nodiscard]] const T& operator[](int i) const { return v[i]; }
};

/// Lane predicate: nonzero = active/true. Produced by comparisons, consumed
/// by select() and predicated memory operations.
using Pred = Reg<int>;

}  // namespace ssam::sim
