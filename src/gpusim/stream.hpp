// Asynchronous kernel-launch queue: CUDA-style streams and events on the
// persistent host thread pool.
//
// A `Stream` is an in-order work queue. `Stream::launch` enqueues a
// functional-mode kernel and returns immediately; ops on one stream execute
// FIFO, ops on different streams overlap across pool workers. `Event`s
// order work *between* streams (record on one, wait on another) and let the
// host block on a specific op. The `LaunchQueue` is the process-wide
// service behind every stream: it tracks in-flight ops and can quiesce the
// whole process.
//
// Scheduling: each stream drains itself with a single "drain" task on the
// pool, so at most one op per stream runs at a time (stream order), while
// the blocks *inside* an op fan out over all workers via
// detail::run_functional_grid. A drain blocked on an unsignalled event does
// not occupy a worker — it parks a continuation on the event and
// reschedules when the event fires, so dependency chains make progress even
// on a one-worker pool. Consecutive small-grid launches batch: the drain
// executes them back-to-back on one worker without fork/join (see
// ThreadPool::parallel_run's serial fast path).
//
// Lifetime rules (as with CUDA async APIs): buffers and the ArchSpec
// referenced by an async launch must stay alive until the stream (or the
// returned event) is synchronized. Kernel wrappers' `_async` entry points
// copy small launch-local state (weights, plans) into the op for you.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "gpusim/launch.hpp"

namespace ssam::sim {

namespace detail {

/// Shared completion state behind an Event.
struct EventState {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::vector<std::function<void()>> continuations;

  void signal();
  bool ready();
  void wait();
  bool wait_for(std::chrono::milliseconds timeout);
  /// Runs `k` once the event is signalled — immediately if it already is.
  void on_ready(std::function<void()> k);
};

}  // namespace detail

/// Completion marker of work enqueued on a Stream (cudaEvent-like). Cheap
/// shared handle; a default-constructed Event is already signalled.
class Event {
 public:
  Event() = default;

  [[nodiscard]] bool ready() const { return state_ == nullptr || state_->ready(); }

  /// Blocks the calling thread until the event signals.
  void wait() const {
    if (state_ != nullptr) state_->wait();
  }

  /// Blocks up to `timeout`; true when the event signalled in time. The
  /// bounded wait of the fault-tolerance layer's watchdogs and chaos tests
  /// — a hung run turns into a reportable timeout instead of a hung waiter.
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const {
    return state_ == nullptr || state_->wait_for(timeout);
  }

  /// Runs `fn` once the event has signalled — immediately on the calling
  /// thread if it already has, otherwise on the thread that signals the
  /// event (the pool worker draining the recording stream). This is how
  /// job futures complete without a blocked waiter (core/server.hpp).
  /// `fn` must not block; it may destroy the recording Stream — the
  /// stream's destructor detects destruction from its own drain and the
  /// remaining queued ops still run to completion.
  void on_ready(std::function<void()> fn) const {
    if (state_ == nullptr) {
      fn();
      return;
    }
    state_->on_ready(std::move(fn));
  }

 private:
  friend class Stream;
  explicit Event(std::shared_ptr<detail::EventState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::EventState> state_;
};

/// The process-wide execution service behind all streams: owns no threads
/// itself (work runs on ThreadPool::global()) but tracks every enqueued op
/// so the whole process can be quiesced and traffic can be observed.
class LaunchQueue {
 public:
  [[nodiscard]] static LaunchQueue& global();

  [[nodiscard]] ThreadPool& pool() const { return ThreadPool::global(); }

  [[nodiscard]] std::uint64_t ops_enqueued() const;
  [[nodiscard]] std::uint64_t ops_completed() const;

  /// Blocks until every op enqueued on any stream has completed.
  void quiesce();

  // Internal accounting, called by Stream.
  void note_enqueued();
  void note_completed();

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t completed_ = 0;
};

/// An in-order asynchronous work queue (cudaStream-like).
class Stream {
 public:
  Stream();
  /// A stream bound to an explicit pool: its drains run on `pool`'s workers
  /// and its kernel launches fan blocks out over `pool` instead of the
  /// global one. This is how a virtual device (gpusim/device.hpp) owns a
  /// stream set — ops routed to a device never occupy another device's
  /// slice. `pool` must outlive the stream.
  explicit Stream(ThreadPool& pool);
  ~Stream();  ///< synchronizes before destruction

  // Not movable: moving away the impl would orphan in-flight ops (no handle
  // left to synchronize work that still writes caller buffers). Heap-allocate
  // streams (unique_ptr) when container storage is needed.
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;
  Stream(Stream&&) = delete;
  Stream& operator=(Stream&&) = delete;

  /// Enqueues a functional-mode kernel launch and returns immediately. The
  /// body is copied into the op; it executes with per-worker pooled block
  /// contexts exactly like a synchronous functional `sim::launch`.
  template <typename Body>
  Event launch(const ArchSpec& arch, const LaunchConfig& cfg, Body body) {
    SSAM_REQUIRE(cfg.grid.count() > 0, "empty grid");
    SSAM_REQUIRE(cfg.block_threads > 0 && cfg.block_threads % kWarpSize == 0,
                 "block size must be a positive warp multiple");
    return enqueue(
        [pool = pool_, arch_ptr = &arch, cfg, body = std::move(body)]() mutable {
          detail::run_functional_grid_on(pool != nullptr ? *pool : ThreadPool::global(),
                                         *arch_ptr, cfg, body);
        },
        nullptr);
  }

  /// Enqueues arbitrary host work in stream order (glue between the passes
  /// of multi-kernel algorithms).
  Event host(std::function<void()> fn);

  /// Orders all later ops on this stream after `ev`.
  void wait(const Event& ev);

  /// Returns an event that signals when all currently enqueued ops finish.
  Event record();

  /// Blocks the calling thread until the stream is empty and idle. Called
  /// from inside this stream's own drain (an op body, or an `Event`
  /// continuation run by the drain) it returns immediately instead of
  /// self-deadlocking: the shared impl outlives the handle, so ops already
  /// queued still run even if the Stream object is destroyed there.
  void synchronize();

 private:
  struct Impl;
  Event enqueue(std::function<void()> run, std::shared_ptr<detail::EventState> dep);
  std::shared_ptr<Impl> impl_;
  ThreadPool* pool_ = nullptr;  ///< the pool this stream's work runs on
};

}  // namespace ssam::sim
