#include "gpusim/cache.hpp"

#include "common/error.hpp"

namespace ssam::sim {

SetAssocCache::SetAssocCache(std::int64_t capacity_bytes, int line_bytes, int ways)
    : capacity_(capacity_bytes), line_bytes_(line_bytes), ways_(ways) {
  SSAM_REQUIRE(capacity_bytes > 0 && line_bytes > 0 && ways > 0, "cache geometry");
  const std::int64_t lines = capacity_bytes / line_bytes;
  SSAM_REQUIRE(lines >= ways, "cache smaller than one set");
  num_sets_ = static_cast<std::size_t>(lines / ways);
  ways_storage_.resize(num_sets_ * static_cast<std::size_t>(ways_));
}

bool SetAssocCache::access(std::uint64_t byte_addr) {
  const std::uint64_t line = byte_addr / static_cast<std::uint64_t>(line_bytes_);
  Way* set = &ways_storage_[set_of(line) * static_cast<std::size_t>(ways_)];
  ++clock_;
  Way* lru_way = set;
  for (int w = 0; w < ways_; ++w) {
    Way& way = set[w];
    if (way.valid && way.tag == line) {
      way.lru = clock_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      lru_way = &way;  // prefer an invalid slot
    } else if (lru_way->valid && way.lru < lru_way->lru) {
      lru_way = &way;
    }
  }
  lru_way->valid = true;
  lru_way->tag = line;
  lru_way->lru = clock_;
  ++misses_;
  return false;
}

bool SetAssocCache::touch_no_allocate(std::uint64_t byte_addr) {
  const std::uint64_t line = byte_addr / static_cast<std::uint64_t>(line_bytes_);
  Way* set = &ways_storage_[set_of(line) * static_cast<std::size_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    Way& way = set[w];
    if (way.valid && way.tag == line) {
      way.lru = ++clock_;
      return true;
    }
  }
  return false;
}

void SetAssocCache::reset() {
  for (auto& w : ways_storage_) w = Way{};
  clock_ = hits_ = misses_ = 0;
}

}  // namespace ssam::sim
