#include "gpusim/persistent.hpp"

#include <thread>

namespace ssam::sim {

void HaloChannel::configure(std::size_t slot_bytes, int depth) {
  depth_ = depth < 2 ? 2 : depth;
  slot_bytes_ = slot_bytes;
  external_[0] = nullptr;
  external_[1] = nullptr;
  slots_.resize(slot_bytes_ * static_cast<std::size_t>(depth_));
  published_.store(-1, std::memory_order_relaxed);
  released_.store(-1, std::memory_order_relaxed);
}

void HaloChannel::configure_external(std::byte* dst_even, std::byte* dst_odd) {
  SSAM_REQUIRE(dst_even != nullptr && dst_odd != nullptr, "null external halo slots");
  depth_ = 2;  // the consumer's buffer pair IS the ring
  slot_bytes_ = 0;
  external_[0] = dst_even;
  external_[1] = dst_odd;
  slots_.clear();
  published_.store(-1, std::memory_order_relaxed);
  released_.store(-1, std::memory_order_relaxed);
}

std::byte* PersistentWorkspace::aligned_block(std::vector<std::byte>& block,
                                              std::size_t bytes) {
  constexpr std::size_t kAlign = 64;
  if (block.size() < bytes + kAlign) block.resize(bytes + kAlign);
  auto addr = reinterpret_cast<std::uintptr_t>(block.data());
  const std::size_t pad = (kAlign - addr % kAlign) % kAlign;
  return block.data() + pad;
}

std::byte* PersistentWorkspace::arena(std::size_t bytes) {
  return aligned_block(arena_, bytes);
}

std::byte* PersistentWorkspace::scratch(std::size_t bytes) {
  return aligned_block(scratch_, bytes);
}

std::span<HaloChannel> PersistentWorkspace::channels(std::size_t count) {
  if (channels_.size() < count) {
    // HaloChannel holds atomics (not movable); rebuild at the larger count.
    channels_ = std::vector<HaloChannel>(count);
  }
  return {channels_.data(), count};
}

void run_persistent(std::span<PersistentTask* const> tasks) {
  run_persistent_on(ThreadPool::global(), tasks);
}

void run_persistent_on(ThreadPool& pool, std::span<PersistentTask* const> tasks,
                       const std::atomic<bool>* stop) {
  const std::int64_t n = static_cast<std::int64_t>(tasks.size());
  if (n == 0) return;
  for (PersistentTask* t : tasks) SSAM_REQUIRE(t != nullptr, "null persistent task");

  // Participants claim tiles through the pool's chunk claimer (chunk = 1 so
  // ownership spreads across workers). The serial fast path of parallel_run
  // hands the whole range to the caller — pool size 1 owns every tile.
  pool.parallel_run(n, 1, [&](ThreadPool::ChunkClaimer& claim) {
    std::vector<PersistentTask*> owned;
    auto claim_one = [&] {
      std::int64_t b = 0;
      std::int64_t e = 0;
      if (!claim.next(b, e)) return false;
      for (std::int64_t i = b; i < e; ++i) owned.push_back(tasks[static_cast<std::size_t>(i)]);
      return true;
    };
    // Abort path: parallel_run blocks until all n indices are claimed AND
    // completed, so a participant bailing on `stop` must first exhaust the
    // cursor (claiming marks the chunks complete on flush) — tiles nobody
    // ever claimed would otherwise leave the caller waiting forever.
    auto drain_claims = [&] {
      std::int64_t b = 0;
      std::int64_t e = 0;
      while (claim.next(b, e)) {
      }
    };
    if (!claim_one()) return;
    while (true) {
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        drain_claims();
        return;
      }
      bool progress = false;
      bool all_done = true;
      for (PersistentTask* t : owned) {
        if (t->done()) continue;
        all_done = false;
        // Burst: advance this tile as far as its channels allow while its
        // working set is hot in this worker's cache.
        while (t->try_advance()) progress = true;
      }
      if (all_done) {
        // Everything owned is finished; claim more work or leave.
        if (!claim_one()) return;
        continue;
      }
      if (!progress && !claim_one()) {
        // Blocked on tiles owned by other participants: let them run — but
        // under an abort that may never come from them, keep polling `stop`
        // (a stopped neighbour will never publish the epoch we wait for).
        std::this_thread::yield();
      }
    }
  });
}

}  // namespace ssam::sim
