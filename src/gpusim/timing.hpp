// SM-level runtime estimation from sampled per-block statistics.
//
// The model is the classic three-bound composition:
//   * throughput bound  — total weighted issue slots over the SM issue rate,
//   * latency bound     — a resident batch cannot finish faster than one
//                         block's critical path (scoreboard completion),
//   * bandwidth bound   — DRAM bytes over peak bandwidth.
// Runtime = max(compute pipeline, DRAM) + launch overhead. The paper's
// kernels are memory-bound at small filter sizes and slide toward the
// throughput bound as the filter grows — exactly the crossover the model
// must expose.
#pragma once

#include <string>

#include "gpusim/arch.hpp"
#include "gpusim/launch.hpp"

namespace ssam::sim {

struct RuntimeEstimate {
  double compute_ms = 0.0;
  double dram_ms = 0.0;
  double total_ms = 0.0;
  Occupancy occupancy;
  std::string bound;  ///< "compute" or "memory"
};

[[nodiscard]] RuntimeEstimate estimate_runtime(const ArchSpec& arch, const KernelStats& stats);

/// Convenience: GCells/s given total updated cells and an estimate.
[[nodiscard]] double gcells_per_s(double cells, const RuntimeEstimate& est);

}  // namespace ssam::sim
