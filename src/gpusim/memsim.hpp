// Simulated global memory system: coalescing, L1/L2 caches, DRAM traffic.
//
// A warp-wide global access is decomposed into 128-byte lines and 32-byte
// sectors (the Pascal/Volta transaction granularity). Each touched line is
// looked up in the per-SM L1; missing sectors go to the shared L2; L2 misses
// count DRAM bytes. The returned latency class is the slowest component, as
// the warp cannot proceed past a dependent use until all lanes land.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "gpusim/arch.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/counters.hpp"

namespace ssam::sim {

/// Outcome of one warp-wide global memory instruction.
struct GlobalAccess {
  int lines = 0;          ///< distinct 128B lines (issue replays)
  int sectors = 0;        ///< distinct 32B sectors (traffic granularity)
  int l1_hit_lines = 0;
  int l2_hit_sectors = 0;
  int dram_sectors = 0;
  int latency = 0;        ///< cycles until the slowest lane's data arrives
};

/// Per-kernel memory hierarchy state. L1 is reset at block boundaries
/// (simulating one SM's cache over a sampled block sequence); L2 persists
/// across blocks, which is what lets adjacent blocks reuse halo lines.
class MemorySystem {
 public:
  explicit MemorySystem(const ArchSpec& arch)
      : arch_(&arch),
        l1_(arch.l1_bytes, arch.line_bytes, arch.l1_ways),
        l2_(arch.l2_bytes, arch.line_bytes, arch.l2_ways) {}

  /// Called when a new block begins executing (cold L1 per block).
  void begin_block() { l1_.reset(); }

  /// Warp load: `byte_addrs` holds one byte address per active lane,
  /// `elem_bytes` the element size (each lane touches [addr, addr+elem)).
  GlobalAccess load(std::span<const std::uint64_t> byte_addrs, int elem_bytes);

  /// Warp store, write-through to DRAM via L2; latency is not exposed to the
  /// issuing warp (fire and forget).
  GlobalAccess store(std::span<const std::uint64_t> byte_addrs, int elem_bytes);

  [[nodiscard]] const SetAssocCache& l1() const { return l1_; }
  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }

 private:
  /// Collects the distinct sector ids touched by the access, sorted.
  static int collect_sectors(std::span<const std::uint64_t> byte_addrs, int elem_bytes,
                             int sector_bytes, std::uint64_t* out, int cap);

  const ArchSpec* arch_;
  SetAssocCache l1_;
  SetAssocCache l2_;
};

}  // namespace ssam::sim
