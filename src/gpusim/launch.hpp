// Kernel launch machinery: grids of blocks, per-block contexts, execution
// modes, occupancy, and the sampled-timing methodology.
//
// Two modes, specialized at compile time (see warp.hpp):
//  * Functional — every block executes, fanned out over the persistent
//    work-stealing worker pool (common/thread_pool.hpp), with no timing
//    state at all: the block/warp contexts contain no scoreboards or
//    counters, and one pooled BlockContext per pool worker persists across
//    *all* launches in the process (`reset()` per block, `rebind()` per
//    launch — never reconstructed on the hot path). Used by tests, examples
//    and the async stream API (gpusim/stream.hpp) to produce full,
//    verifiable outputs as fast as the host allows.
//  * Timing — a deterministic sample of blocks executes sequentially with
//    caches and scoreboards live. Regular kernels do identical work per
//    block, so per-block statistics extrapolate to the full grid; samples
//    are taken as contiguous runs so L2 halo reuse between neighbouring
//    blocks is preserved.
// Kernel bodies are mode-generic callables (`[](auto& blk) {...}`); `launch`
// instantiates the body once per mode actually requested.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/types.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/memsim.hpp"
#include "gpusim/shared_mem.hpp"
#include "gpusim/warp.hpp"

namespace ssam::sim {

struct LaunchConfig {
  Dim3 grid;
  int block_threads = 128;
  /// Registers per thread the kernel needs; drives occupancy like nvcc's
  /// allocation does. Kernels report their own estimate.
  int regs_per_thread = 32;

  [[nodiscard]] int warps_per_block() const { return block_threads / kWarpSize; }
};

struct SampleSpec {
  int max_blocks = 96;  ///< timing sample size
  int runs = 4;         ///< contiguous runs the sample is split into
};

/// Execution context for one thread block, specialized on the execution
/// mode. The functional specialization is pure compute state (warp vector +
/// shared-memory arena) and is designed for reuse: `reset(id)` re-targets
/// the same context at another block without touching the heap, and
/// `rebind()` re-targets it at another *launch* entirely — the launch queue
/// keeps one context per pool worker alive across all launches in the
/// process (the config is stored by value so no launch-local state is
/// referenced).
template <ExecMode M>
class BlockContextT {
 public:
  static constexpr bool kTimed = (M == ExecMode::kTiming);

  BlockContextT(const ArchSpec& arch, const LaunchConfig& cfg, BlockId id,
                MemorySystem* mem = nullptr)
      : arch_(&arch), cfg_(cfg), id_(id), smem_(arch.smem_per_block) {
    SSAM_REQUIRE(cfg.block_threads % kWarpSize == 0, "block size must be a warp multiple");
    warps_.reserve(static_cast<std::size_t>(cfg.warps_per_block()));
    for (int w = 0; w < cfg.warps_per_block(); ++w) {
      warps_.emplace_back(arch, mem, w);
    }
  }

  /// Re-targets this context at another block of the same launch. Heap-free:
  /// the shared-memory arena rewinds and the warp contexts (stateless in
  /// functional mode) are reused as-is.
  void reset(BlockId id) {
    id_ = id;
    smem_.reset();
  }

  /// Whether `rebind` can re-target this context at a launch with the given
  /// architecture and config without reconstructing warp or arena storage.
  [[nodiscard]] bool compatible(const ArchSpec& arch, const LaunchConfig& cfg) const {
    return cfg_.block_threads == cfg.block_threads &&
           smem_.limit() == arch.smem_per_block;
  }

  /// Re-targets this context at a new launch (requires `compatible`).
  /// Heap-free: the warp contexts re-point at the architecture and the
  /// shared arena rewinds. Functional mode only — timing contexts carry
  /// per-launch scoreboard state and are constructed per block.
  void rebind(const ArchSpec& arch, const LaunchConfig& cfg)
    requires(!kTimed)
  {
    arch_ = &arch;
    cfg_ = cfg;
    for (auto& w : warps_) w.rebind(arch);
    smem_.reset();
  }

  [[nodiscard]] const ArchSpec& arch() const { return *arch_; }
  [[nodiscard]] BlockId id() const { return id_; }
  [[nodiscard]] Dim3 grid() const { return cfg_.grid; }
  [[nodiscard]] int warp_count() const { return static_cast<int>(warps_.size()); }
  [[nodiscard]] WarpContextT<M>& warp(int w) { return warps_[static_cast<std::size_t>(w)]; }

  template <typename T>
  [[nodiscard]] Smem<T> alloc_smem(int count) {
    return smem_.alloc<T>(count);
  }

  /// __syncthreads(): aligns all warps' scoreboards to the block-wide
  /// completion point plus the barrier cost. Free in functional mode (the
  /// host executes warps in order, so the barrier is already implied).
  void sync() {
    if constexpr (kTimed) {
      Cycle barrier = 0;
      for (auto& w : warps_) barrier = std::max(barrier, w.scoreboard().completion());
      barrier += static_cast<Cycle>(arch_->lat.barrier);
      for (auto& w : warps_) w.scoreboard().fence_at(barrier);
      ++warps_.front().scoreboard().counters().barriers;
    }
  }

  /// Block finish time: max warp completion.
  [[nodiscard]] Cycle completion() const requires kTimed {
    Cycle c = 0;
    for (const auto& w : warps_) c = std::max(c, w.scoreboard().completion());
    return c;
  }

  /// Weighted issue slots consumed by the whole block.
  [[nodiscard]] double issue_slots() const requires kTimed {
    double s = 0.0;
    for (const auto& w : warps_) s += w.scoreboard().issue_slots();
    return s;
  }

  [[nodiscard]] Counters counters() const requires kTimed {
    Counters c;
    for (const auto& w : warps_) c += w.scoreboard().counters();
    return c;
  }

  [[nodiscard]] std::int64_t smem_high_water() const { return smem_.high_water(); }

 private:
  const ArchSpec* arch_;
  LaunchConfig cfg_;
  BlockId id_;
  SmemAllocator smem_;
  std::vector<WarpContextT<M>> warps_;
};

/// Historical names: `BlockContext` is the timing specialization (what the
/// scoreboard-level tests poke at); the functional one is explicit.
using BlockContext = BlockContextT<ExecMode::kTiming>;
using FunctionalBlockContext = BlockContextT<ExecMode::kFunctional>;

/// Theoretical occupancy: how many blocks fit per SM, limited by warp slots,
/// registers, shared memory and the block-slot limit.
struct Occupancy {
  int blocks_per_sm = 1;
  int warps_per_sm = 1;
  double fraction = 0.0;  ///< warps_per_sm / max_warps_per_sm
  const char* limiter = "none";
};

[[nodiscard]] Occupancy compute_occupancy(const ArchSpec& arch, int block_threads,
                                          int regs_per_thread, std::int64_t smem_per_block);

/// Aggregate statistics of a (possibly sampled) kernel execution.
struct KernelStats {
  LaunchConfig cfg;
  long long blocks_total = 0;
  int blocks_timed = 0;
  double cycles_per_block = 0.0;       ///< mean completion cycles
  double issue_slots_per_block = 0.0;  ///< mean weighted issue slots
  Counters totals;                     ///< scaled to the full grid
  std::int64_t smem_bytes_per_block = 0;
};

/// Chooses `spec.max_blocks` flat block ids as `spec.runs` contiguous runs
/// spread evenly across the grid. Deterministic.
[[nodiscard]] std::vector<long long> sample_block_ids(long long blocks_total,
                                                      const SampleSpec& spec);

namespace detail {
[[nodiscard]] inline BlockId unflatten_block(long long flat, const Dim3& grid) {
  BlockId id;
  id.x = static_cast<int>(flat % grid.x);
  id.y = static_cast<int>((flat / grid.x) % grid.y);
  id.z = static_cast<int>(flat / (static_cast<long long>(grid.x) * grid.y));
  return id;
}

/// Per-thread cache of pooled functional contexts: one `BlockContext` per
/// pool worker, persistent across *all* launches in the process. Keyed by
/// (block_threads, shared-memory capacity) with a handful of LRU entries so
/// interleaved streams launching kernels of different block shapes don't
/// thrash context reconstruction.
class FunctionalContextCache {
 public:
  [[nodiscard]] FunctionalBlockContext& acquire(const ArchSpec& arch,
                                                const LaunchConfig& cfg) {
    ++tick_;
    Entry* victim = &entries_[0];
    for (Entry& e : entries_) {
      if (e.ctx != nullptr && e.ctx->compatible(arch, cfg)) {
        e.last_use = tick_;
        e.ctx->rebind(arch, cfg);
        return *e.ctx;
      }
      if (e.ctx == nullptr ? victim->ctx != nullptr : (victim->ctx != nullptr &&
                                                       e.last_use < victim->last_use)) {
        victim = &e;
      }
    }
    victim->ctx = std::make_unique<FunctionalBlockContext>(arch, cfg, BlockId{});
    victim->last_use = tick_;
    return *victim->ctx;
  }

 private:
  struct Entry {
    std::uint64_t last_use = 0;
    std::unique_ptr<FunctionalBlockContext> ctx;
  };
  static constexpr int kEntries = 4;
  Entry entries_[kEntries];
  std::uint64_t tick_ = 0;
};

[[nodiscard]] inline FunctionalBlockContext& pooled_functional_context(
    const ArchSpec& arch, const LaunchConfig& cfg) {
  thread_local FunctionalContextCache cache;
  return cache.acquire(arch, cfg);
}

/// Dynamic-schedule chunk of the functional grid loop (blocks per claim).
inline constexpr std::int64_t kFunctionalChunkBlocks = 16;

/// Executes `body` for every block of the grid on an explicit worker pool —
/// the global one for ordinary launches, a virtual device's pool slice for
/// device-routed work (gpusim/device.hpp). Each participating thread
/// fetches its pooled context once and `reset()`s it per block. Grids of at
/// most one chunk — the launch queue's small-grid batch path — run inline
/// on the calling thread with zero synchronization (see
/// ThreadPool::parallel_run).
template <typename Body>
void run_functional_grid_on(ThreadPool& pool, const ArchSpec& arch,
                            const LaunchConfig& cfg, Body& body) {
  const long long total = cfg.grid.count();
  pool.parallel_run(
      total, kFunctionalChunkBlocks, [&](ThreadPool::ChunkClaimer& claim) {
        std::int64_t b = 0;
        std::int64_t e = 0;
        if (!claim.next(b, e)) return;
        FunctionalBlockContext& blk = pooled_functional_context(arch, cfg);
        do {
          for (std::int64_t flat = b; flat < e; ++flat) {
            blk.reset(unflatten_block(flat, cfg.grid));
            body(blk);
          }
        } while (claim.next(b, e));
      });
}

template <typename Body>
void run_functional_grid(const ArchSpec& arch, const LaunchConfig& cfg, Body& body) {
  run_functional_grid_on(ThreadPool::global(), arch, cfg, body);
}
}  // namespace detail

/// Launches `body(blk)` over the grid. `body` should be a mode-generic
/// callable (`[](auto& blk) {...}`); a body accepting only one context type
/// can still be launched in the matching mode (the other mode throws).
template <typename Body>
KernelStats launch(const ArchSpec& arch, const LaunchConfig& cfg, Body&& body, ExecMode mode,
                   SampleSpec sample = {}) {
  KernelStats stats;
  stats.cfg = cfg;
  stats.blocks_total = cfg.grid.count();
  SSAM_REQUIRE(stats.blocks_total > 0, "empty grid");
  // Validate up front: exceptions cannot propagate out of the parallel
  // functional loop, so block-level checks must fail before dispatch.
  SSAM_REQUIRE(cfg.block_threads > 0 && cfg.block_threads % kWarpSize == 0,
               "block size must be a positive warp multiple");

  if (mode == ExecMode::kFunctional) {
    if constexpr (std::is_invocable_v<Body&, FunctionalBlockContext&>) {
      detail::run_functional_grid(arch, cfg, body);
      return stats;
    } else {
      SSAM_REQUIRE(false, "kernel body does not support functional execution");
    }
  }

  if constexpr (std::is_invocable_v<Body&, BlockContext&>) {
    MemorySystem mem(arch);
    const std::vector<long long> ids = sample_block_ids(stats.blocks_total, sample);
    double cycles = 0.0;
    double slots = 0.0;
    Counters counters;
    for (long long flat : ids) {
      mem.begin_block();
      BlockContext blk(arch, cfg, detail::unflatten_block(flat, cfg.grid), &mem);
      body(blk);
      cycles += static_cast<double>(blk.completion());
      slots += blk.issue_slots();
      counters += blk.counters();
      stats.smem_bytes_per_block = std::max(stats.smem_bytes_per_block, blk.smem_high_water());
    }
    stats.blocks_timed = static_cast<int>(ids.size());
    stats.cycles_per_block = cycles / static_cast<double>(ids.size());
    stats.issue_slots_per_block = slots / static_cast<double>(ids.size());
    const double scale =
        static_cast<double>(stats.blocks_total) / static_cast<double>(ids.size());
    // Scale counters to the full grid (regular kernels: uniform per-block work).
    auto scaled = [&](std::uint64_t v) {
      return static_cast<std::uint64_t>(static_cast<double>(v) * scale + 0.5);
    };
    Counters t;
    t.fp_ops = scaled(counters.fp_ops);
    t.fp64_ops = scaled(counters.fp64_ops);
    t.alu_ops = scaled(counters.alu_ops);
    t.shfl_ops = scaled(counters.shfl_ops);
    t.smem_loads = scaled(counters.smem_loads);
    t.smem_stores = scaled(counters.smem_stores);
    t.smem_broadcasts = scaled(counters.smem_broadcasts);
    t.smem_conflict_extra = scaled(counters.smem_conflict_extra);
    t.gmem_load_insts = scaled(counters.gmem_load_insts);
    t.gmem_store_insts = scaled(counters.gmem_store_insts);
    t.gmem_load_sectors = scaled(counters.gmem_load_sectors);
    t.gmem_store_sectors = scaled(counters.gmem_store_sectors);
    t.l1_hit_lines = scaled(counters.l1_hit_lines);
    t.l2_hit_sectors = scaled(counters.l2_hit_sectors);
    t.dram_read_bytes = scaled(counters.dram_read_bytes);
    t.dram_write_bytes = scaled(counters.dram_write_bytes);
    t.barriers = scaled(counters.barriers);
    stats.totals = t;
    return stats;
  } else {
    SSAM_REQUIRE(false, "kernel body does not support timing execution");
    return stats;  // unreachable
  }
}

}  // namespace ssam::sim
