// Kernel launch machinery: grids of blocks, per-block contexts, execution
// modes, occupancy, and the sampled-timing methodology.
//
// Two modes:
//  * Functional — every block executes (host-parallel), no timing state.
//    Used by tests and examples to produce full, verifiable outputs.
//  * Timing — a deterministic sample of blocks executes sequentially with
//    caches and scoreboards live. Regular kernels do identical work per
//    block, so per-block statistics extrapolate to the full grid; samples
//    are taken as contiguous runs so L2 halo reuse between neighbouring
//    blocks is preserved.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/types.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/memsim.hpp"
#include "gpusim/shared_mem.hpp"
#include "gpusim/warp.hpp"

namespace ssam::sim {

enum class ExecMode { kFunctional, kTiming };

struct LaunchConfig {
  Dim3 grid;
  int block_threads = 128;
  /// Registers per thread the kernel needs; drives occupancy like nvcc's
  /// allocation does. Kernels report their own estimate.
  int regs_per_thread = 32;

  [[nodiscard]] int warps_per_block() const { return block_threads / kWarpSize; }
};

struct SampleSpec {
  int max_blocks = 96;  ///< timing sample size
  int runs = 4;         ///< contiguous runs the sample is split into
};

/// Execution context for one thread block.
class BlockContext {
 public:
  BlockContext(const ArchSpec& arch, const LaunchConfig& cfg, BlockId id, MemorySystem* mem,
               bool timing)
      : arch_(&arch), cfg_(&cfg), id_(id), timing_(timing),
        smem_(arch.smem_per_block) {
    SSAM_REQUIRE(cfg.block_threads % kWarpSize == 0, "block size must be a warp multiple");
    warps_.reserve(static_cast<std::size_t>(cfg.warps_per_block()));
    for (int w = 0; w < cfg.warps_per_block(); ++w) {
      warps_.emplace_back(arch, mem, timing, w);
    }
  }

  [[nodiscard]] const ArchSpec& arch() const { return *arch_; }
  [[nodiscard]] BlockId id() const { return id_; }
  [[nodiscard]] Dim3 grid() const { return cfg_->grid; }
  [[nodiscard]] int warp_count() const { return static_cast<int>(warps_.size()); }
  [[nodiscard]] WarpContext& warp(int w) { return warps_[static_cast<std::size_t>(w)]; }

  template <typename T>
  [[nodiscard]] Smem<T> alloc_smem(int count) {
    return smem_.alloc<T>(count);
  }

  /// __syncthreads(): aligns all warps' scoreboards to the block-wide
  /// completion point plus the barrier cost.
  void sync() {
    if (!timing_) return;
    Cycle barrier = 0;
    for (auto& w : warps_) barrier = std::max(barrier, w.scoreboard().completion());
    barrier += static_cast<Cycle>(arch_->lat.barrier);
    for (auto& w : warps_) w.scoreboard().fence_at(barrier);
    ++warps_.front().scoreboard().counters().barriers;
  }

  /// Block finish time: max warp completion.
  [[nodiscard]] Cycle completion() const {
    Cycle c = 0;
    for (const auto& w : warps_) c = std::max(c, w.scoreboard().completion());
    return c;
  }

  /// Weighted issue slots consumed by the whole block.
  [[nodiscard]] double issue_slots() const {
    double s = 0.0;
    for (const auto& w : warps_) s += w.scoreboard().issue_slots();
    return s;
  }

  [[nodiscard]] Counters counters() const {
    Counters c;
    for (const auto& w : warps_) c += w.scoreboard().counters();
    return c;
  }

  [[nodiscard]] std::int64_t smem_high_water() const { return smem_.high_water(); }

 private:
  const ArchSpec* arch_;
  const LaunchConfig* cfg_;
  BlockId id_;
  bool timing_;
  SmemAllocator smem_;
  std::vector<WarpContext> warps_;
};

/// Theoretical occupancy: how many blocks fit per SM, limited by warp slots,
/// registers, shared memory and the block-slot limit.
struct Occupancy {
  int blocks_per_sm = 1;
  int warps_per_sm = 1;
  double fraction = 0.0;  ///< warps_per_sm / max_warps_per_sm
  const char* limiter = "none";
};

[[nodiscard]] Occupancy compute_occupancy(const ArchSpec& arch, int block_threads,
                                          int regs_per_thread, std::int64_t smem_per_block);

/// Aggregate statistics of a (possibly sampled) kernel execution.
struct KernelStats {
  LaunchConfig cfg;
  long long blocks_total = 0;
  int blocks_timed = 0;
  double cycles_per_block = 0.0;       ///< mean completion cycles
  double issue_slots_per_block = 0.0;  ///< mean weighted issue slots
  Counters totals;                     ///< scaled to the full grid
  std::int64_t smem_bytes_per_block = 0;
};

/// Chooses `spec.max_blocks` flat block ids as `spec.runs` contiguous runs
/// spread evenly across the grid. Deterministic.
[[nodiscard]] std::vector<long long> sample_block_ids(long long blocks_total,
                                                      const SampleSpec& spec);

/// Launches `body(BlockContext&)` over the grid.
template <typename Body>
KernelStats launch(const ArchSpec& arch, const LaunchConfig& cfg, Body&& body, ExecMode mode,
                   SampleSpec sample = {}) {
  KernelStats stats;
  stats.cfg = cfg;
  stats.blocks_total = cfg.grid.count();
  SSAM_REQUIRE(stats.blocks_total > 0, "empty grid");
  // Validate up front: exceptions cannot propagate out of the parallel
  // functional loop, so block-level checks must fail before dispatch.
  SSAM_REQUIRE(cfg.block_threads > 0 && cfg.block_threads % kWarpSize == 0,
               "block size must be a positive warp multiple");

  const auto id_of = [&](long long flat) {
    BlockId id;
    id.x = static_cast<int>(flat % cfg.grid.x);
    id.y = static_cast<int>((flat / cfg.grid.x) % cfg.grid.y);
    id.z = static_cast<int>(flat / (static_cast<long long>(cfg.grid.x) * cfg.grid.y));
    return id;
  };

  if (mode == ExecMode::kFunctional) {
    parallel_for(stats.blocks_total, [&](std::int64_t flat) {
      BlockContext blk(arch, cfg, id_of(flat), nullptr, /*timing=*/false);
      body(blk);
    });
    return stats;
  }

  MemorySystem mem(arch);
  const std::vector<long long> ids = sample_block_ids(stats.blocks_total, sample);
  double cycles = 0.0;
  double slots = 0.0;
  Counters counters;
  for (long long flat : ids) {
    mem.begin_block();
    BlockContext blk(arch, cfg, id_of(flat), &mem, /*timing=*/true);
    body(blk);
    cycles += static_cast<double>(blk.completion());
    slots += blk.issue_slots();
    counters += blk.counters();
    stats.smem_bytes_per_block = std::max(stats.smem_bytes_per_block, blk.smem_high_water());
  }
  stats.blocks_timed = static_cast<int>(ids.size());
  stats.cycles_per_block = cycles / static_cast<double>(ids.size());
  stats.issue_slots_per_block = slots / static_cast<double>(ids.size());
  const double scale =
      static_cast<double>(stats.blocks_total) / static_cast<double>(ids.size());
  // Scale counters to the full grid (regular kernels: uniform per-block work).
  auto scaled = [&](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * scale + 0.5);
  };
  Counters t;
  t.fp_ops = scaled(counters.fp_ops);
  t.fp64_ops = scaled(counters.fp64_ops);
  t.alu_ops = scaled(counters.alu_ops);
  t.shfl_ops = scaled(counters.shfl_ops);
  t.smem_loads = scaled(counters.smem_loads);
  t.smem_stores = scaled(counters.smem_stores);
  t.smem_broadcasts = scaled(counters.smem_broadcasts);
  t.smem_conflict_extra = scaled(counters.smem_conflict_extra);
  t.gmem_load_insts = scaled(counters.gmem_load_insts);
  t.gmem_store_insts = scaled(counters.gmem_store_insts);
  t.gmem_load_sectors = scaled(counters.gmem_load_sectors);
  t.gmem_store_sectors = scaled(counters.gmem_store_sectors);
  t.l1_hit_lines = scaled(counters.l1_hit_lines);
  t.l2_hit_sectors = scaled(counters.l2_hit_sectors);
  t.dram_read_bytes = scaled(counters.dram_read_bytes);
  t.dram_write_bytes = scaled(counters.dram_write_bytes);
  t.barriers = scaled(counters.barriers);
  stats.totals = t;
  return stats;
}

}  // namespace ssam::sim
