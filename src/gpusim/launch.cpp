#include "gpusim/launch.hpp"

#include <algorithm>

namespace ssam::sim {

Occupancy compute_occupancy(const ArchSpec& arch, int block_threads, int regs_per_thread,
                            std::int64_t smem_per_block) {
  SSAM_REQUIRE(block_threads > 0 && block_threads % arch.warp_size == 0,
               "block size must be a warp multiple");
  const int warps_per_block = block_threads / arch.warp_size;

  Occupancy occ;
  int by_warps = arch.max_warps_per_sm / warps_per_block;
  // Register allocation granularity: model as straight per-thread allocation.
  const int regs_per_block = std::max(1, regs_per_thread) * block_threads;
  int by_regs = arch.regs_per_sm / regs_per_block;
  int by_smem = smem_per_block > 0
                    ? static_cast<int>(arch.smem_per_sm / smem_per_block)
                    : arch.max_blocks_per_sm;
  int by_slots = arch.max_blocks_per_sm;

  occ.blocks_per_sm = std::max(1, std::min({by_warps, by_regs, by_smem, by_slots}));
  if (by_regs <= 0 || by_smem <= 0 || by_warps <= 0) occ.blocks_per_sm = 1;  // oversubscribed
  occ.warps_per_sm = occ.blocks_per_sm * warps_per_block;
  occ.fraction = static_cast<double>(occ.warps_per_sm) / arch.max_warps_per_sm;

  const int limit = occ.blocks_per_sm;
  if (limit == by_regs) {
    occ.limiter = "registers";
  } else if (limit == by_smem) {
    occ.limiter = "shared-memory";
  } else if (limit == by_warps) {
    occ.limiter = "warp-slots";
  } else {
    occ.limiter = "block-slots";
  }
  return occ;
}

std::vector<long long> sample_block_ids(long long blocks_total, const SampleSpec& spec) {
  std::vector<long long> ids;
  if (blocks_total <= spec.max_blocks) {
    ids.resize(static_cast<std::size_t>(blocks_total));
    for (long long i = 0; i < blocks_total; ++i) ids[static_cast<std::size_t>(i)] = i;
    return ids;
  }
  const int runs = std::max(1, spec.runs);
  const long long run_len = std::max<long long>(1, spec.max_blocks / runs);
  for (int r = 0; r < runs; ++r) {
    // Run starts spread evenly, biased away from the exact edges.
    const long long start =
        std::min(blocks_total - run_len,
                 (blocks_total * (2 * r + 1)) / (2 * runs));
    for (long long i = 0; i < run_len; ++i) ids.push_back(start + i);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace ssam::sim
