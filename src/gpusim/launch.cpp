#include "gpusim/launch.hpp"

#include <algorithm>

namespace ssam::sim {

Occupancy compute_occupancy(const ArchSpec& arch, int block_threads, int regs_per_thread,
                            std::int64_t smem_per_block) {
  SSAM_REQUIRE(block_threads > 0 && block_threads % arch.warp_size == 0,
               "block size must be a warp multiple");
  const int warps_per_block = block_threads / arch.warp_size;

  // Per-resource block limits, in the order ties are attributed. A limit of
  // zero means one block alone oversubscribes that resource.
  const int by_regs =
      arch.regs_per_sm / (std::max(1, regs_per_thread) * block_threads);
  const int by_smem = smem_per_block > 0
                          ? static_cast<int>(arch.smem_per_sm / smem_per_block)
                          : arch.max_blocks_per_sm;
  const int by_warps = arch.max_warps_per_sm / warps_per_block;
  const int by_slots = arch.max_blocks_per_sm;
  struct Limit {
    const char* name;
    const char* oversub_name;
    int value;
  };
  const Limit limits[] = {
      {"registers", "registers (oversubscribed)", by_regs},
      {"shared-memory", "shared-memory (oversubscribed)", by_smem},
      {"warp-slots", "warp-slots (oversubscribed)", by_warps},
      {"block-slots", "block-slots (oversubscribed)", by_slots},
  };

  // The binding limiter is the resource with the smallest block limit (first
  // in attribution order on ties) — even when that limit is <= 0 and the
  // block count is clamped to one resident block.
  const Limit* binding = &limits[0];
  for (const Limit& l : limits) {
    if (l.value < binding->value) binding = &l;
  }

  Occupancy occ;
  occ.blocks_per_sm = std::max(1, binding->value);
  occ.limiter = binding->value <= 0 ? binding->oversub_name : binding->name;
  occ.warps_per_sm = occ.blocks_per_sm * warps_per_block;
  occ.fraction = static_cast<double>(occ.warps_per_sm) / arch.max_warps_per_sm;
  return occ;
}

std::vector<long long> sample_block_ids(long long blocks_total, const SampleSpec& spec) {
  std::vector<long long> ids;
  if (blocks_total <= spec.max_blocks) {
    ids.resize(static_cast<std::size_t>(blocks_total));
    for (long long i = 0; i < blocks_total; ++i) ids[static_cast<std::size_t>(i)] = i;
    return ids;
  }
  const int runs = std::max(1, spec.runs);
  const long long run_len = std::max<long long>(1, spec.max_blocks / runs);
  for (int r = 0; r < runs; ++r) {
    // Run starts spread evenly, biased away from the exact edges.
    const long long start =
        std::min(blocks_total - run_len,
                 (blocks_total * (2 * r + 1)) / (2 * runs));
    for (long long i = 0; i < run_len; ++i) ids.push_back(start + i);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace ssam::sim
