// Simulated shared memory (scratchpad) with 32-bank conflict analysis.
//
// CUDA shared memory is organized in 32 four-byte banks; a warp access
// serializes into one pass per distinct word hitting the same bank, except
// that all lanes reading the *same* address broadcast in a single pass
// (Section 4.6 of the paper relies on this broadcast pattern for weights).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace ssam::sim {

inline constexpr int kSmemBanks = 32;
inline constexpr int kSmemWordBytes = 4;
inline constexpr int kSmemMaxLanes = 32;

/// Alignment of the backing arena (and thus of allocation 0): one cache
/// line, so warp-wide (128-byte) staging copies through the SIMD lane
/// engine never split a vector load across lines.
inline constexpr std::int64_t kSmemAlign = 64;

/// Typed handle to a block-shared array. `base_word` anchors bank math.
template <typename T>
struct Smem {
  T* data = nullptr;
  int count = 0;
  std::int64_t base_word = 0;

  [[nodiscard]] T& operator[](int i) const { return data[i]; }
};

/// Result of analyzing one warp-wide shared memory access.
struct SmemAccessInfo {
  int passes = 1;        ///< serialized passes (1 = conflict free)
  bool broadcast = false;  ///< all active lanes hit one address
};

/// Computes the bank-conflict pass count for a set of word addresses
/// (one per active lane).
[[nodiscard]] inline SmemAccessInfo analyze_smem_access(std::span<const std::int64_t> words) {
  if (words.empty()) return {1, false};
  bool all_same = true;
  for (std::size_t i = 1; i < words.size(); ++i) {
    if (words[i] != words[0]) {
      all_same = false;
      break;
    }
  }
  if (all_same) return {1, true};

  // Distinct words per bank; lanes hitting the same word share a pass.
  int per_bank_count[kSmemBanks] = {};
  std::int64_t per_bank_words[kSmemBanks][kSmemMaxLanes] = {};
  int passes = 1;
  for (std::int64_t w : words) {
    const int bank = static_cast<int>(((w % kSmemBanks) + kSmemBanks) % kSmemBanks);
    bool seen = false;
    for (int i = 0; i < per_bank_count[bank]; ++i) {
      if (per_bank_words[bank][i] == w) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      per_bank_words[bank][per_bank_count[bank]++] = w;
      passes = std::max(passes, per_bank_count[bank]);
    }
  }
  return {passes, false};
}

/// Bump allocator backing one thread block's shared memory. Storage is
/// reserved up-front so handed-out pointers stay valid.
class SmemAllocator {
 public:
  explicit SmemAllocator(std::int64_t limit_bytes)
      : limit_(limit_bytes),
        storage_(static_cast<std::size_t>(limit_bytes + kSmemAlign)) {
    // Round the arena base up to a cache line; std::vector<std::byte> only
    // guarantees max_align_t.
    const auto raw = reinterpret_cast<std::uintptr_t>(storage_.data());
    base_ = storage_.data() + (static_cast<std::size_t>(-raw) & (kSmemAlign - 1));
  }

  template <typename T>
  [[nodiscard]] Smem<T> alloc(int count) {
    SSAM_REQUIRE(count > 0, "shared array must be non-empty");
    const std::int64_t align = static_cast<std::int64_t>(alignof(T)) > 4
                                   ? static_cast<std::int64_t>(alignof(T))
                                   : 4;
    const std::int64_t start = (used_ + align - 1) / align * align;
    const std::int64_t bytes = static_cast<std::int64_t>(sizeof(T)) * count;
    if (start + bytes > limit_) {
      throw ResourceError("shared memory request exceeds per-block limit");
    }
    used_ = start + bytes;
    high_water_ = std::max(high_water_, used_);
    return Smem<T>{reinterpret_cast<T*>(base_ + start), count,
                   start / kSmemWordBytes};
  }

  void reset() { used_ = 0; }
  [[nodiscard]] std::int64_t limit() const { return limit_; }
  [[nodiscard]] std::int64_t high_water() const { return high_water_; }

 private:
  static_assert(sizeof(float) == 4);
  std::int64_t limit_;
  std::int64_t used_ = 0;
  std::int64_t high_water_ = 0;
  std::vector<std::byte> storage_;
  std::byte* base_ = nullptr;  ///< cache-line-aligned arena base
};

}  // namespace ssam::sim
