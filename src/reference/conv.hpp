// Scalar golden implementations of 1D/2D convolution.
//
// Convention (fixed library-wide): a filter has M columns (x extent) and
// N rows (y extent), stored row-major as w[n*M + m]. The output is the
// centered cross-correlation
//   out(x, y) = sum_{m=0..M-1} sum_{n=0..N-1} in(x + m - cx, y + n - cy) * w[n*M+m]
// with cx = (M-1)/2, cy = (N-1)/2, matching NPP's FilterBorder behaviour
// the paper benchmarks against (replicate border by default).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/grid.hpp"
#include "common/types.hpp"

namespace ssam::ref {

/// 1D convolution of `in` with an M-tap filter, centered, border-resolved.
template <typename T>
void conv1d(std::span<const T> in, std::span<const T> w, std::span<T> out,
            Border border = Border::kClamp) {
  SSAM_REQUIRE(in.size() == out.size(), "conv1d: size mismatch");
  const Index n = static_cast<Index>(in.size());
  const Index m = static_cast<Index>(w.size());
  const Index cx = (m - 1) / 2;
  for (Index x = 0; x < n; ++x) {
    T acc{};
    for (Index t = 0; t < m; ++t) {
      Index src = x + t - cx;
      if (src < 0 || src >= n) {
        if (border == Border::kZero) continue;
        src = src < 0 ? 0 : n - 1;
      }
      acc += in[static_cast<std::size_t>(src)] * w[static_cast<std::size_t>(t)];
    }
    out[static_cast<std::size_t>(x)] = acc;
  }
}

/// 2D convolution with an M (width) x N (height) filter.
template <typename T>
void conv2d(const GridView2D<const T>& in, std::span<const T> w, int filter_m, int filter_n,
            GridView2D<T> out, Border border = Border::kClamp) {
  SSAM_REQUIRE(in.width() == out.width() && in.height() == out.height(),
               "conv2d: extents mismatch");
  SSAM_REQUIRE(static_cast<Index>(w.size()) == static_cast<Index>(filter_m) * filter_n,
               "conv2d: filter size mismatch");
  const Index cx = (filter_m - 1) / 2;
  const Index cy = (filter_n - 1) / 2;
  for (Index y = 0; y < in.height(); ++y) {
    for (Index x = 0; x < in.width(); ++x) {
      T acc{};
      for (Index n = 0; n < filter_n; ++n) {
        for (Index m = 0; m < filter_m; ++m) {
          acc += in.read(x + m - cx, y + n - cy, border) *
                 w[static_cast<std::size_t>(n * filter_m + m)];
        }
      }
      out.at(x, y) = acc;
    }
  }
}

}  // namespace ssam::ref
