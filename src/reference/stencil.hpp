// Scalar golden implementations of 2D/3D stencil application.
#pragma once

#include <vector>

#include "common/grid.hpp"
#include "common/types.hpp"

namespace ssam::ref {

/// One stencil tap: output(x,y,z) += coeff * input(x+dx, y+dy, z+dz).
template <typename T>
struct Tap {
  int dx = 0;
  int dy = 0;
  int dz = 0;
  T coeff{};
};

/// Applies one step of a 2D stencil.
template <typename T>
void stencil2d(const GridView2D<const T>& in, const std::vector<Tap<T>>& taps,
               GridView2D<T> out, Border border = Border::kClamp) {
  for (Index y = 0; y < in.height(); ++y) {
    for (Index x = 0; x < in.width(); ++x) {
      T acc{};
      for (const auto& t : taps) acc += t.coeff * in.read(x + t.dx, y + t.dy, border);
      out.at(x, y) = acc;
    }
  }
}

/// Applies one step of a 3D stencil.
template <typename T>
void stencil3d(const GridView3D<const T>& in, const std::vector<Tap<T>>& taps,
               GridView3D<T> out, Border border = Border::kClamp) {
  for (Index z = 0; z < in.nz(); ++z) {
    for (Index y = 0; y < in.ny(); ++y) {
      for (Index x = 0; x < in.nx(); ++x) {
        T acc{};
        for (const auto& t : taps) {
          acc += t.coeff * in.read(x + t.dx, y + t.dy, z + t.dz, border);
        }
        out.at(x, y, z) = acc;
      }
    }
  }
}

/// Runs `steps` iterations of a 2D stencil with double buffering; the result
/// ends in `a`.
template <typename T>
void iterate2d(Grid2D<T>& a, Grid2D<T>& b, const std::vector<Tap<T>>& taps, int steps,
               Border border = Border::kClamp) {
  for (int s = 0; s < steps; ++s) {
    stencil2d<T>(a.cview(), taps, b.view(), border);
    std::swap(a, b);
  }
}

template <typename T>
void iterate3d(Grid3D<T>& a, Grid3D<T>& b, const std::vector<Tap<T>>& taps, int steps,
               Border border = Border::kClamp) {
  for (int s = 0; s < steps; ++s) {
    stencil3d<T>(a.cview(), taps, b.view(), border);
    std::swap(a, b);
  }
}

}  // namespace ssam::ref
