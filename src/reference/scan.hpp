// Scalar golden implementations of scan and summed-area tables.
#pragma once

#include <span>

#include "common/error.hpp"
#include "common/grid.hpp"

namespace ssam::ref {

/// Inclusive prefix sum (the Scan operator of Section 3.6).
template <typename T>
void inclusive_scan(std::span<const T> in, std::span<T> out) {
  SSAM_REQUIRE(in.size() == out.size(), "scan: size mismatch");
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
}

/// Summed Area Table: sat(x,y) = sum of in over the inclusive rectangle
/// [0..x] x [0..y] (the 2D scan of Section 3.6 / reference [8]).
template <typename T>
void summed_area_table(const GridView2D<const T>& in, GridView2D<T> out) {
  SSAM_REQUIRE(in.width() == out.width() && in.height() == out.height(), "sat: extents");
  for (Index y = 0; y < in.height(); ++y) {
    T row{};
    for (Index x = 0; x < in.width(); ++x) {
      row += in.at(x, y);
      out.at(x, y) = row + (y > 0 ? out.at(x, y - 1) : T{});
    }
  }
}

/// Rectangle sum from a SAT over inclusive corners (x0,y0)-(x1,y1).
template <typename T>
[[nodiscard]] T sat_rect_sum(const GridView2D<const T>& sat, Index x0, Index y0, Index x1,
                             Index y1) {
  T s = sat.at(x1, y1);
  if (x0 > 0) s -= sat.at(x0 - 1, y1);
  if (y0 > 0) s -= sat.at(x1, y0 - 1);
  if (x0 > 0 && y0 > 0) s += sat.at(x0 - 1, y0 - 1);
  return s;
}

}  // namespace ssam::ref
