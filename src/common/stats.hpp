// Small numeric helpers used by tests and the benchmark harness.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "common/error.hpp"

namespace ssam {

/// Maximum absolute difference between two equally sized spans.
template <typename T>
[[nodiscard]] double max_abs_diff(std::span<const T> a, std::span<const T> b) {
  SSAM_REQUIRE(a.size() == b.size(), "span sizes differ");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

/// Maximum relative difference with an absolute floor (for values near zero).
template <typename T>
[[nodiscard]] double max_rel_diff(std::span<const T> a, std::span<const T> b,
                                  double abs_floor = 1e-6) {
  SSAM_REQUIRE(a.size() == b.size(), "span sizes differ");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(a[i]);
    const double y = static_cast<double>(b[i]);
    const double denom = std::max({std::abs(x), std::abs(y), abs_floor});
    m = std::max(m, std::abs(x - y) / denom);
  }
  return m;
}

/// Max absolute difference normalized by the largest reference magnitude —
/// robust near zero-crossings where pointwise relative error is meaningless.
template <typename T>
[[nodiscard]] double normalized_max_diff(std::span<const T> got, std::span<const T> want) {
  SSAM_REQUIRE(got.size() == want.size(), "span sizes differ");
  double scale = 0.0;
  for (const T& v : want) scale = std::max(scale, std::abs(static_cast<double>(v)));
  if (scale == 0.0) scale = 1.0;
  return max_abs_diff(got, want) / scale;
}

/// Default verification tolerance for a floating point type, scaled for
/// accumulation length (number of fused multiply-adds per output).
template <typename T>
[[nodiscard]] double verify_tolerance(std::size_t accumulation_length) {
  const double eps = (sizeof(T) == 4) ? 1.2e-7 : 2.3e-16;
  return 64.0 * eps * static_cast<double>(accumulation_length == 0 ? 1 : accumulation_length);
}

struct RunningStats {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double x) {
    if (n == 0) { min = max = x; }
    min = std::min(min, x);
    max = std::max(max, x);
    ++n;
    const double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }
  [[nodiscard]] double variance() const { return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
};

}  // namespace ssam
