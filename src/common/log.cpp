#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ssam {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[ssam:" << level_tag(level) << "] " << message << '\n';
}

void log_warn_limited(LogRateLimiter& limiter, const std::string& message) {
  if (static_cast<int>(LogLevel::kWarn) < g_level.load()) return;  // free drop
  if (!limiter.allow()) return;
  const std::uint64_t dropped = limiter.take_suppressed();
  if (dropped == 0) {
    log(LogLevel::kWarn, message);
  } else {
    log(LogLevel::kWarn,
        message + " (" + std::to_string(dropped) + " similar suppressed)");
  }
}

}  // namespace ssam
