// Minimal leveled logging for examples and benchmark harness diagnostics.
#pragma once

#include <string>

namespace ssam {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to Info.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }

}  // namespace ssam
