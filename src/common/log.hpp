// Minimal leveled logging for examples and benchmark harness diagnostics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ssam {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to Info.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }

/// Token bucket for event streams that may storm (watchdog cancels,
/// quarantine flaps under sustained fault injection): one per call site,
/// at most one message per `min_gap`, dropped messages counted. Thread-safe
/// and allocation-free on the suppressed path.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(std::chrono::milliseconds min_gap) : gap_(min_gap) {}

  /// True when a message may be emitted now (and claims the slot).
  [[nodiscard]] bool allow() {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    const std::int64_t gap_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(gap_).count();
    std::int64_t last = last_ns_.load(std::memory_order_relaxed);
    if (now_ns - last < gap_ns ||
        !last_ns_.compare_exchange_strong(last, now_ns, std::memory_order_relaxed)) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Messages dropped since the last emitted one; reading resets the count.
  [[nodiscard]] std::uint64_t take_suppressed() {
    return suppressed_.exchange(0, std::memory_order_relaxed);
  }

 private:
  std::chrono::milliseconds gap_;
  std::atomic<std::int64_t> last_ns_{-(1LL << 62)};  // first message always passes
  std::atomic<std::uint64_t> suppressed_{0};
};

/// Warn through `limiter`; suppressed messages are only counted, and the
/// next emitted message reports how many were dropped.
void log_warn_limited(LogRateLimiter& limiter, const std::string& message);

}  // namespace ssam
