// Host-side parallel loops.
//
// The functional simulator executes independent thread blocks; OpenMP (when
// available) parallelizes across host cores. Falls back to serial execution.
#pragma once

#include <cstdint>
#include <utility>

namespace ssam {

/// Runs fn(i) for i in [0, n). fn must be safe to run concurrently for
/// distinct i (blocks write disjoint output regions).
template <typename Fn>
void parallel_for(std::int64_t n, Fn&& fn) {
#if defined(SSAM_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8)
  for (std::int64_t i = 0; i < n; ++i) fn(i);
#else
  for (std::int64_t i = 0; i < n; ++i) fn(i);
#endif
}

/// Chunked parallel loop with one pooled state object per worker thread:
/// `make_state()` runs once per worker (inside the parallel region), then
/// `fn(i, state)` is called for every index the worker claims. This is how
/// the functional simulator reuses one BlockContext per host thread instead
/// of reconstructing (and re-allocating) it for every block.
template <typename MakeState, typename Fn>
void parallel_for_pooled(std::int64_t n, MakeState&& make_state, Fn&& fn) {
#if defined(SSAM_HAVE_OPENMP)
#pragma omp parallel
  {
    auto state = make_state();
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t i = 0; i < n; ++i) fn(i, state);
  }
#else
  auto state = make_state();
  for (std::int64_t i = 0; i < n; ++i) fn(i, state);
#endif
}

}  // namespace ssam
