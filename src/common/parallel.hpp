// Host-side parallel loops.
//
// The functional simulator executes independent thread blocks; OpenMP (when
// available) parallelizes across host cores. Falls back to serial execution.
#pragma once

#include <cstdint>

namespace ssam {

/// Runs fn(i) for i in [0, n). fn must be safe to run concurrently for
/// distinct i (blocks write disjoint output regions).
template <typename Fn>
void parallel_for(std::int64_t n, Fn&& fn) {
#if defined(SSAM_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8)
  for (std::int64_t i = 0; i < n; ++i) fn(i);
#else
  for (std::int64_t i = 0; i < n; ++i) fn(i);
#endif
}

}  // namespace ssam
