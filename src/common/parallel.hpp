// Host-side parallel loops.
//
// The functional simulator executes independent thread blocks across host
// cores. Since the launch-queue refactor these loops run on the persistent
// work-stealing ssam::ThreadPool (common/thread_pool.hpp) instead of
// per-launch OpenMP regions: no fork/join per kernel launch, per-worker
// state survives across launches, and non-OpenMP builds stay parallel
// (std::thread + ssam::hardware_concurrency()). `parallel_for` and
// `parallel_for_pooled` are defined in thread_pool.hpp; this header remains
// the conventional include for call sites that only need the loops.
#pragma once

#include "common/thread_pool.hpp"
