#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace ssam {

ConsoleTable::ConsoleTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string ConsoleTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void print_banner(const std::string& title) {
  const std::string rule(title.size() + 4, '=');
  std::cout << '\n' << rule << '\n' << "= " << title << " =" << '\n' << rule << '\n';
}

}  // namespace ssam
