// Error handling primitives for the SSAM library.
//
// We follow the C++ Core Guidelines (E.2/E.3): throw exceptions for
// precondition violations in library entry points, since benchmarks and
// examples want a recoverable, diagnosable failure rather than an abort.
#pragma once

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ssam {

/// Exception thrown when a library precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Exception thrown when the simulated machine is misconfigured or a kernel
/// exceeds a simulated hardware resource (registers, shared memory, ...).
class ResourceError : public std::runtime_error {
 public:
  explicit ResourceError(const std::string& what) : std::runtime_error(what) {}
};

/// Exception thrown when cooperatively cancelled work unwinds (see
/// common/cancel.hpp). Carries the CancelToken reason so the catcher can
/// distinguish a user cancel from a deadline cancel.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what, int reason = 1)
      : std::runtime_error(what), reason_(reason) {}
  [[nodiscard]] int reason() const { return reason_; }

 private:
  int reason_;
};

/// How a job (or an attempt of one) went wrong — a small closed taxonomy so
/// retry logic and tests match on codes, never on message substrings.
enum class ErrorCode {
  kNone = 0,          ///< no error
  kInvalidJob,        ///< precondition violation in the request itself
  kResource,          ///< simulated hardware resource exhausted
  kCancelled,         ///< cancelled via JobFuture::cancel / CancelToken
  kDeadlineExceeded,  ///< the server's watchdog cancelled overdue work
  kDeadlineUnmeetable,///< admission shed: predicted to miss its deadline
  kQueueFull,         ///< admission control: pending queue at max_pending
  kFaultInjected,     ///< a planned fault fired (core/faultinject.hpp)
  kQuarantined,       ///< work refused because the device is quarantined
  kInternal,          ///< anything else that escaped as an exception
};

[[nodiscard]] inline const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kInvalidJob: return "invalid-job";
    case ErrorCode::kResource: return "resource";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kDeadlineUnmeetable: return "deadline-unmeetable";
    case ErrorCode::kQueueFull: return "queue-full";
    case ErrorCode::kFaultInjected: return "fault-injected";
    case ErrorCode::kQuarantined: return "quarantined";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

/// Structured job error: the code drives control flow (the server retries
/// exactly the `transient` ones), the message is for humans.
struct JobError {
  ErrorCode code = ErrorCode::kNone;
  bool transient = false;  ///< a retry of the identical work may succeed
  std::string message;

  [[nodiscard]] bool ok() const { return code == ErrorCode::kNone; }
  [[nodiscard]] std::string describe() const {
    std::string s = error_code_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

inline std::ostream& operator<<(std::ostream& os, const JobError& e) {
  return os << e.describe();
}

namespace detail {
[[noreturn]] inline void fail_precondition(const char* expr, const char* file, int line,
                                           const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace ssam

/// Checked precondition. Always on: the simulator is a verification tool and
/// silent out-of-contract behaviour would invalidate experiments.
#define SSAM_REQUIRE(expr, msg)                                                \
  do {                                                                         \
    if (!(expr)) ::ssam::detail::fail_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
