// Error handling primitives for the SSAM library.
//
// We follow the C++ Core Guidelines (E.2/E.3): throw exceptions for
// precondition violations in library entry points, since benchmarks and
// examples want a recoverable, diagnosable failure rather than an abort.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ssam {

/// Exception thrown when a library precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Exception thrown when the simulated machine is misconfigured or a kernel
/// exceeds a simulated hardware resource (registers, shared memory, ...).
class ResourceError : public std::runtime_error {
 public:
  explicit ResourceError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_precondition(const char* expr, const char* file, int line,
                                           const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace ssam

/// Checked precondition. Always on: the simulator is a verification tool and
/// silent out-of-contract behaviour would invalidate experiments.
#define SSAM_REQUIRE(expr, msg)                                                \
  do {                                                                         \
    if (!(expr)) ::ssam::detail::fail_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
