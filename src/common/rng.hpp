// Deterministic pseudo-random fills.
//
// All experiments must be bit-reproducible across runs and independent of
// std library implementation details, so we use an explicit SplitMix64.
#pragma once

#include <cstdint>

#include "common/grid.hpp"

namespace ssam {

/// SplitMix64: tiny, high-quality, reproducible generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double next_in(double lo, double hi) { return lo + (hi - lo) * next_unit(); }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

 private:
  std::uint64_t state_;
};

template <typename T>
void fill_random(Grid2D<T>& g, std::uint64_t seed, double lo = -1.0, double hi = 1.0) {
  SplitMix64 rng(seed);
  T* p = g.data();
  for (Index i = 0; i < g.size(); ++i) p[i] = static_cast<T>(rng.next_in(lo, hi));
}

template <typename T>
void fill_random(Grid3D<T>& g, std::uint64_t seed, double lo = -1.0, double hi = 1.0) {
  SplitMix64 rng(seed);
  T* p = g.data();
  for (Index i = 0; i < g.size(); ++i) p[i] = static_cast<T>(rng.next_in(lo, hi));
}

template <typename T>
void fill_random(std::vector<T>& v, std::uint64_t seed, double lo = -1.0, double hi = 1.0) {
  SplitMix64 rng(seed);
  for (auto& x : v) x = static_cast<T>(rng.next_in(lo, hi));
}

}  // namespace ssam
