// Cooperative cancellation handle, plumbed from the service API down into
// the engines' sweep loops.
//
// A `CancelToken` is a cheap shared flag: the owner (a `JobFuture` holder,
// the server's deadline watchdog) calls `cancel(reason)`, and long-running
// work polls `cancelled()` at its natural yield points — the persistent
// engine's sweep/epoch boundaries, the relaunch driver's per-sweep loop —
// and unwinds by throwing `CancelledError` (common/error.hpp). Nothing is
// pre-empted: a kernel sweep in flight always completes, so resident tiles
// unwind at a consistent boundary and leased workspaces return to their
// pool through normal RAII.
//
// A default-constructed token is inert: it never reports cancelled and
// `cancel()` on it is a no-op, so APIs can carry a token unconditionally
// without the non-cancellable path paying for shared state.
#pragma once

#include <atomic>
#include <memory>

namespace ssam {

class CancelToken {
 public:
  /// Inert token: never cancelled, cancel() is a no-op.
  CancelToken() = default;

  /// A live (cancellable) token.
  [[nodiscard]] static CancelToken make() {
    CancelToken t;
    t.reason_ = std::make_shared<std::atomic<int>>(0);
    return t;
  }

  [[nodiscard]] bool valid() const { return reason_ != nullptr; }

  /// Requests cancellation. The first caller's reason sticks (0 is not a
  /// valid reason; callers pass an ErrorCode-style discriminant so the
  /// observer can tell a user cancel from a deadline cancel).
  void cancel(int reason = 1) const {
    if (reason_ == nullptr) return;
    int expected = 0;
    reason_->compare_exchange_strong(expected, reason == 0 ? 1 : reason,
                                     std::memory_order_acq_rel);
  }

  [[nodiscard]] bool cancelled() const {
    return reason_ != nullptr && reason_->load(std::memory_order_acquire) != 0;
  }

  /// The first cancel()'s reason, 0 when not cancelled.
  [[nodiscard]] int reason() const {
    return reason_ == nullptr ? 0 : reason_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<int>> reason_;
};

}  // namespace ssam
