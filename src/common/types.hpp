// Fundamental value types shared across the SSAM library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ssam {

/// Simulated clock cycle count.
using Cycle = std::uint64_t;

/// Index type used for simulated device addresses (element granularity).
using Index = std::int64_t;

/// CUDA-style 3-component extent. Components default to 1 so that
/// `Dim3{gx}` and `Dim3{gx, gy}` behave like the CUDA runtime's dim3.
struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;

  [[nodiscard]] constexpr long long count() const {
    return static_cast<long long>(x) * y * z;
  }
  constexpr bool operator==(const Dim3&) const = default;
};

/// Identifies one block inside a launch grid; flat index is row-major
/// (x fastest) like CUDA's blockIdx enumeration order for caching purposes.
struct BlockId {
  int x = 0;
  int y = 0;
  int z = 0;

  [[nodiscard]] constexpr long long flat(const Dim3& grid) const {
    return (static_cast<long long>(z) * grid.y + y) * grid.x + x;
  }
  constexpr bool operator==(const BlockId&) const = default;
};

/// Floating-point precision selector used by benchmarks and registries.
enum class Precision { kFloat32, kFloat64 };

[[nodiscard]] inline const char* to_string(Precision p) {
  return p == Precision::kFloat32 ? "single" : "double";
}

/// Border handling for grid loads that fall outside the domain.
/// The paper's convolution comparisons use NPP's "Replicate" border kernels,
/// so Clamp is the library default.
enum class Border { kClamp, kZero };

[[nodiscard]] inline const char* to_string(Border b) {
  return b == Border::kClamp ? "clamp" : "zero";
}

/// Integer ceiling division; ubiquitous in blocking geometry.
[[nodiscard]] constexpr long long ceil_div(long long a, long long b) {
  return (a + b - 1) / b;
}

}  // namespace ssam
