#include "common/thread_pool.hpp"

#include "core/config.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ssam {

namespace {

thread_local const ThreadPool* tls_owner_pool = nullptr;

/// Pins the calling thread to one core. Best-effort: affinity is a locality
/// optimization for device-sliced pools, never a correctness requirement.
void pin_self_to_cpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

int hardware_concurrency() {
  // SSAM_THREADS is resolved (once) by the config layer; this stays the
  // single entry point the rest of the library sizes pools from.
  return core::config().threads;
}

ThreadPool::ThreadPool(int threads, std::vector<int> pin_cpus) {
  const int n = threads < 1 ? 1 : threads;
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cpu = pin_cpus.empty()
                        ? -1
                        : pin_cpus[static_cast<std::size_t>(i) % pin_cpus.size()];
    threads_.emplace_back([this, i, cpu] {
      pin_self_to_cpu(cpu);
      worker_main(i);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_m_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  const std::size_t slot =
      static_cast<std::size_t>(rr_.fetch_add(1, std::memory_order_relaxed)) %
      queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->m);
    queues_[slot]->q.push_back(std::move(task));
  }
  {
    // pending_ is part of the sleep predicate: updating it under sleep_m_
    // (like the destructor's stop_ store) is what keeps the notify from
    // landing in a worker's predicate-check-to-block window and being lost.
    std::lock_guard<std::mutex> lock(sleep_m_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  sleep_cv_.notify_all();
}

bool ThreadPool::try_get_task(int self, Task& out) {
  // Own deque first (front = oldest), then steal from siblings' backs.
  const int n = static_cast<int>(queues_.size());
  for (int k = 0; k < n; ++k) {
    const int victim = (self + k) % n;
    Worker& w = *queues_[static_cast<std::size_t>(victim)];
    std::lock_guard<std::mutex> lock(w.m);
    if (w.q.empty()) continue;
    if (victim == self) {
      out = std::move(w.q.front());
      w.q.pop_front();
    } else {
      out = std::move(w.q.back());
      w.q.pop_back();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  return false;
}

void ThreadPool::worker_main(int self) {
  tls_owner_pool = this;
  Task task;
  for (;;) {
    if (try_get_task(self, task)) {
      task();
      task = nullptr;  // release captures promptly
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_m_);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

bool ThreadPool::on_worker_thread() const { return tls_owner_pool == this; }

void ThreadPool::spawn_helpers(const std::shared_ptr<RunState>& st, std::int64_t chunks) {
  const std::int64_t cap = static_cast<std::int64_t>(size());
  const int helpers = static_cast<int>(chunks - 1 < cap ? chunks - 1 : cap);
  for (int h = 0; h < helpers; ++h) {
    submit([st] {
      {
        std::lock_guard<std::mutex> lock(st->m);
        // Everything already claimed: the caller may have returned and the
        // callable behind `participant` may be gone. Exit without touching
        // it.
        if (st->cursor.load(std::memory_order_relaxed) >= st->n) return;
        ++st->active_helpers;
      }
      st->participant();
      {
        std::lock_guard<std::mutex> lock(st->m);
        --st->active_helpers;
        if (st->completed >= st->n && st->active_helpers == 0) st->cv.notify_all();
      }
    });
  }
}

namespace {

std::mutex g_global_pool_m;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_pool_m);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>(hardware_concurrency());
  return *g_global_pool;
}

void ThreadPool::reset_global(int threads) {
  std::unique_ptr<ThreadPool> fresh = std::make_unique<ThreadPool>(threads);
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_global_pool_m);
    old = std::move(g_global_pool);
    g_global_pool = std::move(fresh);
  }
  // `old` joins its workers here, outside the registry lock.
}

}  // namespace ssam
