// Dense 2D/3D grids and borrowing views.
//
// Grids are row-major with x (width) fastest. Views are cheap, non-owning
// and carry the border policy used by out-of-domain reads, mirroring how the
// GPU kernels in the paper clamp their halo loads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ssam {

namespace detail {
[[nodiscard]] constexpr Index clamp_index(Index v, Index n) {
  return v < 0 ? 0 : (v >= n ? n - 1 : v);
}
}  // namespace detail

/// Non-owning view of a 2D row-major grid.
template <typename T>
class GridView2D {
 public:
  GridView2D() = default;
  GridView2D(T* data, Index width, Index height, Index pitch)
      : data_(data), width_(width), height_(height), pitch_(pitch) {}

  [[nodiscard]] Index width() const { return width_; }
  [[nodiscard]] Index height() const { return height_; }
  [[nodiscard]] Index pitch() const { return pitch_; }
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] Index size() const { return width_ * height_; }

  [[nodiscard]] T& at(Index x, Index y) const { return data_[y * pitch_ + x]; }

  /// Border-policy read: out-of-domain coordinates are clamped or read as 0.
  [[nodiscard]] T read(Index x, Index y, Border border) const {
    if (x >= 0 && x < width_ && y >= 0 && y < height_) return at(x, y);
    if (border == Border::kZero) return T{0};
    return at(detail::clamp_index(x, width_), detail::clamp_index(y, height_));
  }

  /// Flat element index of (x, y) after border resolution (clamp only).
  [[nodiscard]] Index flat_clamped(Index x, Index y) const {
    return detail::clamp_index(y, height_) * pitch_ + detail::clamp_index(x, width_);
  }

 private:
  T* data_ = nullptr;
  Index width_ = 0;
  Index height_ = 0;
  Index pitch_ = 0;
};

/// Non-owning view of a 3D row-major grid (x fastest, then y, then z).
template <typename T>
class GridView3D {
 public:
  GridView3D() = default;
  GridView3D(T* data, Index nx, Index ny, Index nz)
      : data_(data), nx_(nx), ny_(ny), nz_(nz) {}

  [[nodiscard]] Index nx() const { return nx_; }
  [[nodiscard]] Index ny() const { return ny_; }
  [[nodiscard]] Index nz() const { return nz_; }
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] Index size() const { return nx_ * ny_ * nz_; }

  [[nodiscard]] T& at(Index x, Index y, Index z) const {
    return data_[(z * ny_ + y) * nx_ + x];
  }

  [[nodiscard]] T read(Index x, Index y, Index z, Border border) const {
    if (x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_) return at(x, y, z);
    if (border == Border::kZero) return T{0};
    return at(detail::clamp_index(x, nx_), detail::clamp_index(y, ny_),
              detail::clamp_index(z, nz_));
  }

  [[nodiscard]] Index flat_clamped(Index x, Index y, Index z) const {
    return (detail::clamp_index(z, nz_) * ny_ + detail::clamp_index(y, ny_)) * nx_ +
           detail::clamp_index(x, nx_);
  }

  /// 2D slice at depth z.
  [[nodiscard]] GridView2D<T> slice(Index z) const {
    return GridView2D<T>(data_ + z * ny_ * nx_, nx_, ny_, nx_);
  }

 private:
  T* data_ = nullptr;
  Index nx_ = 0;
  Index ny_ = 0;
  Index nz_ = 0;
};

/// Owning 2D grid.
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(Index width, Index height, T fill = T{})
      : width_(width), height_(height),
        storage_(static_cast<std::size_t>(width * height), fill) {
    SSAM_REQUIRE(width > 0 && height > 0, "grid extents must be positive");
  }

  [[nodiscard]] Index width() const { return width_; }
  [[nodiscard]] Index height() const { return height_; }
  [[nodiscard]] Index size() const { return width_ * height_; }
  [[nodiscard]] T* data() { return storage_.data(); }
  [[nodiscard]] const T* data() const { return storage_.data(); }

  [[nodiscard]] T& at(Index x, Index y) { return storage_[static_cast<std::size_t>(y * width_ + x)]; }
  [[nodiscard]] const T& at(Index x, Index y) const {
    return storage_[static_cast<std::size_t>(y * width_ + x)];
  }

  [[nodiscard]] GridView2D<T> view() { return {storage_.data(), width_, height_, width_}; }
  [[nodiscard]] GridView2D<const T> view() const {
    return {storage_.data(), width_, height_, width_};
  }
  /// Read-only view regardless of this grid's constness.
  [[nodiscard]] GridView2D<const T> cview() const {
    return {storage_.data(), width_, height_, width_};
  }

  void fill(T v) { std::fill(storage_.begin(), storage_.end(), v); }

 private:
  Index width_ = 0;
  Index height_ = 0;
  std::vector<T> storage_;
};

/// Owning 3D grid.
template <typename T>
class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(Index nx, Index ny, Index nz, T fill = T{})
      : nx_(nx), ny_(ny), nz_(nz),
        storage_(static_cast<std::size_t>(nx * ny * nz), fill) {
    SSAM_REQUIRE(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
  }

  [[nodiscard]] Index nx() const { return nx_; }
  [[nodiscard]] Index ny() const { return ny_; }
  [[nodiscard]] Index nz() const { return nz_; }
  [[nodiscard]] Index size() const { return nx_ * ny_ * nz_; }
  [[nodiscard]] T* data() { return storage_.data(); }
  [[nodiscard]] const T* data() const { return storage_.data(); }

  [[nodiscard]] T& at(Index x, Index y, Index z) {
    return storage_[static_cast<std::size_t>((z * ny_ + y) * nx_ + x)];
  }
  [[nodiscard]] const T& at(Index x, Index y, Index z) const {
    return storage_[static_cast<std::size_t>((z * ny_ + y) * nx_ + x)];
  }

  [[nodiscard]] GridView3D<T> view() { return {storage_.data(), nx_, ny_, nz_}; }
  [[nodiscard]] GridView3D<const T> view() const { return {storage_.data(), nx_, ny_, nz_}; }
  /// Read-only view regardless of this grid's constness.
  [[nodiscard]] GridView3D<const T> cview() const { return {storage_.data(), nx_, ny_, nz_}; }

  void fill(T v) { std::fill(storage_.begin(), storage_.end(), v); }

 private:
  Index nx_ = 0;
  Index ny_ = 0;
  Index nz_ = 0;
  std::vector<T> storage_;
};

}  // namespace ssam
