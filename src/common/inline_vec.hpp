// Fixed-capacity inline vector.
//
// Kernels hold per-warp register state (sliding-window accumulators, cached
// rows, published partial sums) in these instead of std::vector so the
// functional steady state performs no heap allocation: storage lives on the
// stack of the executing host thread, exactly like registers live in the
// register file of the simulated warp.
#pragma once

#include <array>

#include "common/error.hpp"

namespace ssam {

template <typename T, int Capacity>
class InlineVec {
  static_assert(Capacity > 0);

 public:
  InlineVec() = default;
  explicit InlineVec(int n) { resize(n); }

  void resize(int n) {
    SSAM_REQUIRE(n >= 0 && n <= Capacity, "InlineVec capacity exceeded");
    size_ = n;
  }

  void assign(int n, const T& v) {
    resize(n);
    for (int i = 0; i < n; ++i) data_[static_cast<std::size_t>(i)] = v;
  }

  void push_back(const T& v) {
    resize(size_ + 1);
    data_[static_cast<std::size_t>(size_ - 1)] = v;
  }

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] static constexpr int capacity() { return Capacity; }

  [[nodiscard]] T& operator[](int i) { return data_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const T& operator[](int i) const { return data_[static_cast<std::size_t>(i)]; }

  [[nodiscard]] T* begin() { return data_.data(); }
  [[nodiscard]] T* end() { return data_.data() + size_; }
  [[nodiscard]] const T* begin() const { return data_.data(); }
  [[nodiscard]] const T* end() const { return data_.data() + size_; }

 private:
  // Deliberately not value-initialized: elements are written before they are
  // read (resize only adjusts the logical size), so construction costs
  // nothing — the point of holding register state in an InlineVec.
  std::array<T, static_cast<std::size_t>(Capacity)> data_;
  int size_ = 0;
};

}  // namespace ssam
