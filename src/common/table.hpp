// Console table renderer for the benchmark harness.
//
// Every benchmark binary prints the same rows/series the paper reports;
// this formatter keeps those tables aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace ssam {

/// Column-aligned ASCII table. Rows may be added as pre-formatted strings or
/// numeric values (formatted with fixed precision).
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Appends a row; the row may have fewer cells than headers (padded).
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  [[nodiscard]] std::string str() const;

  /// Convenience numeric formatting.
  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner so bench output groups by table/figure.
void print_banner(const std::string& title);

}  // namespace ssam
