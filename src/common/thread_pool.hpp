// Persistent work-stealing host thread pool.
//
// The execution-service substrate of the simulator: a process-wide pool of
// worker threads with one double-ended task queue per worker. `submit()`
// distributes tasks round-robin; an idle worker first drains its own deque
// from the front, then steals from the *back* of sibling deques, so coarse
// tasks (stream drains, parallel-loop helpers) migrate to whichever core is
// free. Workers live for the life of the process — nothing is forked or
// joined per kernel launch, which is what lets per-worker `BlockContext`s
// (thread_local in gpusim/launch.hpp) persist across launches.
//
// Parallel loops use `parallel_run`: the *caller participates* — it claims
// chunks alongside the helper tasks it submitted — so a loop issued from
// inside a pool task (e.g. a stream drain executing a kernel) cannot
// deadlock: even if every other worker is busy, the caller itself finishes
// the loop. OpenMP is not used; parallelism is std::thread-based and works
// in non-OpenMP builds (see ssam::hardware_concurrency()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ssam {

/// Host worker count: the `SSAM_THREADS` environment variable when set to a
/// positive integer, otherwise std::thread::hardware_concurrency() (min 1).
/// This is the fallback that keeps non-OpenMP builds parallel.
[[nodiscard]] int hardware_concurrency();

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` persistent workers (clamped to >= 1). When `pin_cpus`
  /// is non-empty, worker w is pinned to core pin_cpus[w % pin_cpus.size()]
  /// (Linux only; silently ignored where unsupported) — the affinity knob of
  /// the virtual-device layer (gpusim/device.hpp), which carves disjoint
  /// core sets per device so shards do not migrate across each other.
  explicit ThreadPool(int threads, std::vector<int> pin_cpus = {});

  /// Joins all workers after the queues drain.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task onto one of the worker deques (round-robin) and wakes
  /// the pool. Any worker may end up running it via stealing.
  void submit(Task task);

  /// The process-wide pool, created on first use with hardware_concurrency()
  /// workers.
  [[nodiscard]] static ThreadPool& global();

  /// Replaces the global pool with one of `threads` workers. Test hook for
  /// the determinism-across-pool-sizes suite; must only be called while no
  /// launches or streams are in flight.
  static void reset_global(int threads);

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] bool on_worker_thread() const;

  // ------------------------------------------------------- parallel loops

 private:
  /// Shared bookkeeping of one parallel_run call. Helpers hold it by
  /// shared_ptr so a late-starting helper can observe an exhausted cursor
  /// and exit without touching the caller's (possibly dead) stack frame,
  /// where the real `work` callable lives.
  struct RunState {
    std::atomic<std::int64_t> cursor{0};
    std::int64_t n = 0;
    std::int64_t chunk = 1;
    std::mutex m;
    std::condition_variable cv;
    std::int64_t completed = 0;  ///< indices finished (guarded by m)
    int active_helpers = 0;      ///< helpers currently inside `work`
    std::function<void()> participant;  ///< valid only while the caller waits

    void note_completed(std::int64_t count) {
      std::lock_guard<std::mutex> lock(m);
      completed += count;
      if (completed >= n && active_helpers == 0) cv.notify_all();
    }
  };

 public:
  /// Hands out [begin, end) chunks of a parallel loop; each participating
  /// thread calls next() until it returns false. Completion of a chunk is
  /// recorded on the following next() call (or on destruction), so the loop
  /// is observed finished only after every claimed index has executed.
  class ChunkClaimer {
   public:
    ChunkClaimer(RunState* st, std::int64_t n, std::int64_t chunk)
        : st_(st), n_(n), chunk_(chunk) {}
    ChunkClaimer(const ChunkClaimer&) = delete;
    ChunkClaimer& operator=(const ChunkClaimer&) = delete;
    ~ChunkClaimer() { flush(); }

    /// Claims the next chunk; returns false when the loop is exhausted.
    bool next(std::int64_t& begin, std::int64_t& end) {
      flush();
      if (st_ == nullptr) {  // serial fast path: one chunk, the whole range
        if (serial_done_) return false;
        serial_done_ = true;
        begin = 0;
        end = n_;
        return true;
      }
      const std::int64_t b = st_->cursor.fetch_add(chunk_, std::memory_order_relaxed);
      if (b >= n_) return false;
      begin = b;
      end = b + chunk_ < n_ ? b + chunk_ : n_;
      pending_ = end - begin;
      return true;
    }

   private:
    void flush() {
      if (pending_ > 0 && st_ != nullptr) {
        st_->note_completed(pending_);
        pending_ = 0;
      }
    }

    RunState* st_;
    std::int64_t n_;
    std::int64_t chunk_;
    std::int64_t pending_ = 0;
    bool serial_done_ = false;
  };

  /// Runs `work(claimer)` on the caller and on up to size() helper workers
  /// concurrently until all `n` indices are claimed and completed. `work` is
  /// invoked once per participating thread (so per-thread state — a pooled
  /// BlockContext, a scratch buffer — is naturally per-participant) and
  /// should drain the claimer. Blocks until every claimed chunk has
  /// finished; safe to call from inside a pool task (the caller
  /// participates, see header comment). Loops of at most `chunk` indices —
  /// and every loop when the pool has a single worker — run serially on the
  /// caller with zero synchronization, which is also the small-grid batching
  /// fast path of the launch queue.
  template <typename Work>
  void parallel_run(std::int64_t n, std::int64_t chunk, Work&& work) {
    if (n <= 0) return;
    chunk = chunk < 1 ? 1 : chunk;
    const std::int64_t chunks = (n + chunk - 1) / chunk;
    if (chunks <= 1 || size() <= 1) {
      ChunkClaimer serial(nullptr, n, chunk);
      work(serial);
      return;
    }

    auto st = std::make_shared<RunState>();
    st->n = n;
    st->chunk = chunk;
    st->participant = [&work, st_raw = st.get()] {
      ChunkClaimer c(st_raw, st_raw->n, st_raw->chunk);
      work(c);
    };
    spawn_helpers(st, chunks);

    {  // The caller participates like any helper.
      ChunkClaimer c(st.get(), n, chunk);
      work(c);
    }

    std::unique_lock<std::mutex> lock(st->m);
    st->cv.wait(lock, [&] { return st->completed >= st->n && st->active_helpers == 0; });
  }

 private:
  struct Worker {
    std::mutex m;
    std::deque<Task> q;
  };

  /// Submits up to size() helper tasks (capped by remaining chunks) that run
  /// st->participant. The gate inside the task guarantees a helper only
  /// touches `participant` while the caller is still waiting in
  /// parallel_run.
  void spawn_helpers(const std::shared_ptr<RunState>& st, std::int64_t chunks);

  void worker_main(int self);
  bool try_get_task(int self, Task& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> threads_;
  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
  std::atomic<int> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> rr_{0};
};

/// Runs fn(i) for i in [0, n). fn must be safe to run concurrently for
/// distinct i (blocks write disjoint output regions).
template <typename Fn>
void parallel_for(std::int64_t n, Fn&& fn) {
  ThreadPool::global().parallel_run(n, 8, [&fn](ThreadPool::ChunkClaimer& c) {
    std::int64_t b = 0;
    std::int64_t e = 0;
    while (c.next(b, e)) {
      for (std::int64_t i = b; i < e; ++i) fn(i);
    }
  });
}

/// Chunked parallel loop with one pooled state object per participating
/// thread: `make_state()` runs once per participant (that claims work), then
/// `fn(i, state)` is called for every index that participant claims.
template <typename MakeState, typename Fn>
void parallel_for_pooled(std::int64_t n, MakeState&& make_state, Fn&& fn) {
  ThreadPool::global().parallel_run(
      n, 16, [&make_state, &fn](ThreadPool::ChunkClaimer& c) {
        std::int64_t b = 0;
        std::int64_t e = 0;
        if (!c.next(b, e)) return;  // no work claimed: skip state construction
        auto state = make_state();
        do {
          for (std::int64_t i = b; i < e; ++i) fn(i, state);
        } while (c.next(b, e));
      });
}

}  // namespace ssam
