// The paper's analytical performance model (Section 5).
//
// Equations implemented verbatim:
//   Lsmem  = M*N*(Tmad + 2*Tsmem_read + 2*Treg)                       (§5.2)
//   Lreg   = M*N*(Tmad + Tsmem_read + 2*Treg) + (M-1)*Tshfl           (Eq. 4)
//   Dif    = Lsmem - Lreg = M*N*Tsmem_read - (M-1)*Tshfl              (Eq. 5)
//   HRrc   = (S*C - (S-M)*(C-N)) / (S*C),  C = P+N-1, S = WarpSize    (§5.3)
//   AvgDif > Tsmem - Tgmem*(N/(N+P-1) + M/32)
//            + P*M*N*Tsmem/(N+P-1) - (M-1)*Tshfl                      (§5.3)
// The paper's conclusions — Dif >> 0 and AvgDif >> 0 for M,N >= 2 — are
// verified as tests and re-derived against simulator measurements by
// bench_model_validation.
#pragma once

#include "gpusim/arch.hpp"
#include "gpusim/vec.hpp"

namespace ssam::perf {

/// The micro-benchmarked latencies the model consumes (Table 2 plus the
/// global-memory read latency of [42]).
struct MicroLatencies {
  double t_mad = 4;
  double t_shfl = 22;
  double t_smem_read = 27;
  double t_reg = 1;       ///< register file read/write
  double t_gmem_read = 400;
};

/// Pulls the model inputs out of a simulated architecture description.
[[nodiscard]] inline MicroLatencies from_arch(const sim::ArchSpec& a) {
  MicroLatencies m;
  m.t_mad = a.lat.fp_mad;
  m.t_shfl = a.lat.shfl;
  m.t_smem_read = a.lat.smem;
  m.t_reg = 1;
  m.t_gmem_read = a.lat.dram;
  return m;
}

/// Latency of one output element, conventional shared-memory scheme (§5.2).
[[nodiscard]] inline double latency_smem_method(int m, int n, const MicroLatencies& lat) {
  return m * n * (lat.t_mad + 2 * lat.t_smem_read + 2 * lat.t_reg);
}

/// Latency of one output element under SSAM (Equation 4).
[[nodiscard]] inline double latency_ssam_method(int m, int n, const MicroLatencies& lat) {
  return m * n * (lat.t_mad + lat.t_smem_read + 2 * lat.t_reg) + (m - 1) * lat.t_shfl;
}

/// Sparse-shape generalization of Equation 4. The paper's M x N footprint
/// assumes a dense filter; the kernels, however, execute exactly the taps a
/// `StencilShape` names, so charging the bounding-box product over-prices a
/// star-R stencil by up to (2R+1)^2 / (4R+1) — a 2-3x unit drift the
/// deadline-shedding EWMA cannot absorb when dense and sparse jobs share one
/// learned ms-per-unit. `m` is the HORIZONTAL tap extent (the register-cache
/// shuffle walk of Eq. 4 moves along x; `conv2d_setup` calls it filter_m),
/// so the shuffle term follows the x axis, never the folded y*z extent.
/// Dense degeneracy: latency_ssam_taps(m*n, m, lat) == latency_ssam_method.
[[nodiscard]] inline double latency_ssam_taps(int active_taps, int m,
                                              const MicroLatencies& lat) {
  return active_taps * (lat.t_mad + lat.t_smem_read + 2 * lat.t_reg) +
         (m - 1) * lat.t_shfl;
}

/// Equation 5: the per-element advantage of SSAM.
[[nodiscard]] inline double dif_smem_reg(int m, int n, const MicroLatencies& lat) {
  return m * n * lat.t_smem_read - (m - 1) * lat.t_shfl;
}

/// Halo ratio of the register cache (§5.3).
[[nodiscard]] inline double halo_ratio_rc(int m, int n, int p) {
  const double s = sim::kWarpSize;
  const double c = p + n - 1;
  return (s * c - (s - m) * (c - n)) / (s * c);
}

/// Paper's closed-form bound HRrc < (S*N + C*M)/(S*C).
[[nodiscard]] inline double halo_ratio_bound(int m, int n, int p) {
  const double s = sim::kWarpSize;
  const double c = p + n - 1;
  return (s * n + c * m) / (s * c);
}

/// §5.3's average-difference lower bound (per cached element, including the
/// halo overhead of overlapped blocking).
[[nodiscard]] inline double avg_dif_lower_bound(int m, int n, int p,
                                                const MicroLatencies& lat) {
  const double c = p + n - 1;
  return lat.t_smem_read -
         lat.t_gmem_read * (n / c + static_cast<double>(m) / sim::kWarpSize) +
         p * m * n * lat.t_smem_read / c - (m - 1) * lat.t_shfl;
}

/// §5.4: predicted cost of a shift schedule — used to pick the best D.
[[nodiscard]] inline double plan_shift_cost(int horizontal_shifts,
                                            const MicroLatencies& lat) {
  return horizontal_shifts * lat.t_shfl;
}

}  // namespace ssam::perf
