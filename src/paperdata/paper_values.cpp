#include "paperdata/paper_values.hpp"

namespace ssam::paper {

const std::vector<Table1Row>& table1() {
  static const std::vector<Table1Row> rows = {
      {"K40", "16/32/48 KB", 65536, 15},
      {"M40", "96 KB", 65536, 24},
      {"P100", "64 KB", 65536, 56},
      {"V100", "up to 96 KB", 65536, 80},
  };
  return rows;
}

const std::vector<Table2Row>& table2() {
  static const std::vector<Table2Row> rows = {
      {"P100", 33.0, 6.0, 33.0},
      {"V100", 22.0, 4.0, 27.0},
  };
  return rows;
}

const std::vector<Table3Row>& table3() {
  static const std::vector<Table3Row> rows = {
      {"2d5pt", 1, 9},    {"2d9pt", 2, 17},    {"2d13pt", 3, 25},  {"2d17pt", 4, 33},
      {"2d21pt", 5, 41},  {"2ds25pt", 6, 49},  {"2d25pt", 2, 33},  {"2d64pt", 4, 73},
      {"2d81pt", 4, 95},  {"2d121pt", 5, 241}, {"3d7pt", 1, 13},   {"3d13pt", 2, 25},
      {"3d27pt", 1, 30},  {"3d125pt", 2, 130}, {"poisson", 1, 21},
  };
  return rows;
}

const std::vector<QuotedGCells>& quoted_temporal_results() {
  static const std::vector<QuotedGCells> rows = {
      // Diffusion (Zohouri et al. [62], 3d7pt optimized per Maruyama [32]).
      {"Diffusion", "3d7pt", "P100", true, 92.7},
      {"Diffusion", "3d7pt", "V100", true, 162.4},
      {"Diffusion", "3d7pt", "P100", false, 30.6},
      {"Diffusion", "3d7pt", "V100", false, 46.9},
      // Bricks [61] on P100 (not publicly available; V100 not reported).
      {"Bricks", "overall", "P100", true, 41.4},
      {"Bricks", "overall", "P100", false, 24.25},
  };
  return rows;
}

const std::vector<CufftRuntime>& cufft_runtimes() {
  static const std::vector<CufftRuntime> rows = {
      {"P100", 353.0},
      {"V100", 349.0},
  };
  return rows;
}

Claims headline_claims() { return Claims{}; }

}  // namespace ssam::paper
