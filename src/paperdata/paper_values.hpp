// Values reported by the paper, recorded verbatim for paper-vs-measured
// comparisons in the benches and EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace ssam::paper {

/// Table 1: shared memory and register files on GPUs.
struct Table1Row {
  const char* gpu;
  const char* smem_per_sm;
  int regs_per_sm;
  int sms;
};
[[nodiscard]] const std::vector<Table1Row>& table1();

/// Table 2: measured operation latencies (cycles/warp).
struct Table2Row {
  const char* gpu;
  double shfl_up_sync;
  double add_sub_mad;
  double smem_read;
};
[[nodiscard]] const std::vector<Table2Row>& table2();

/// Table 3: the stencil benchmark suite (name, order k, FLOPs-per-point).
struct Table3Row {
  const char* benchmark;
  int k;
  int fpp;
};
[[nodiscard]] const std::vector<Table3Row>& table3();

/// Section 6.4 quoted results for libraries the paper could not rerun.
struct QuotedGCells {
  const char* system;
  const char* benchmark;
  const char* gpu;
  bool single_precision;
  double gcells_per_s;
};
[[nodiscard]] const std::vector<QuotedGCells>& quoted_temporal_results();

/// cuFFT's (filter-size-independent) 2D convolution runtime on 8192^2 FP32.
struct CufftRuntime {
  const char* gpu;
  double runtime_ms;
};
[[nodiscard]] const std::vector<CufftRuntime>& cufft_runtimes();

/// Headline claims of the abstract / Section 6.2, used as bench pass/fail
/// shape criteria.
struct Claims {
  double npp_speedup_avg = 2.5;       ///< "on average 2.5x faster than NPP"
  double arrayfire_speedup_max = 1.5; ///< "up to 1.5x faster than ArrayFire"
};
[[nodiscard]] Claims headline_claims();

}  // namespace ssam::paper
