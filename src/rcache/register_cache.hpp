// Register cache (paper Section 4.2).
//
// Each thread of a warp reserves C registers; jointly the warp holds a
// WarpSize x C register matrix caching a tile of the input. Rows are loaded
// with one fully coalesced global load per row (one element per lane), and
// the sliding window of Section 4.2 walks the rows so neighbouring outputs
// reuse C - 1 of the C cached rows.
#pragma once

#include <vector>

#include "common/grid.hpp"
#include "gpusim/warp.hpp"

namespace ssam::core {

using sim::Reg;
using sim::WarpContext;

/// The per-warp register cache: a column of C values per lane.
template <typename T>
class RegisterCache {
 public:
  RegisterCache(WarpContext& warp, int capacity) : warp_(&warp) {
    SSAM_REQUIRE(capacity > 0, "register cache capacity must be positive");
    rows_.resize(static_cast<std::size_t>(capacity));
  }

  [[nodiscard]] int capacity() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] Reg<T>& row(int i) { return rows_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Reg<T>& row(int i) const { return rows_[static_cast<std::size_t>(i)]; }

  /// Loads `capacity()` consecutive rows starting at `row0`; lane l reads
  /// column `col0 + l`. Out-of-domain coordinates are border-resolved by
  /// clamping (replicate), matching the paper's evaluation setup.
  void load_rows(const GridView2D<const T>& in, Index col0, Index row0) {
    WarpContext& w = *warp_;
    // Column index per lane, clamped once and reused for every row.
    Reg<Index> col = w.clamp(w.iota<Index>(col0, 1), Index{0}, in.width() - 1);
    for (int r = 0; r < capacity(); ++r) {
      Index y = row0 + r;
      y = y < 0 ? 0 : (y >= in.height() ? in.height() - 1 : y);
      const Reg<Index> idx = w.affine(col, 1, y * in.pitch());
      rows_[static_cast<std::size_t>(r)] = w.load_global(in.data(), idx);
    }
  }

  /// Registers this cache costs per thread (for occupancy estimation).
  [[nodiscard]] int registers_per_thread() const { return capacity(); }

 private:
  WarpContext* warp_;
  std::vector<Reg<T>> rows_;
};

}  // namespace ssam::core
