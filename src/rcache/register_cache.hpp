// Register cache (paper Section 4.2).
//
// Each thread of a warp reserves C registers; jointly the warp holds a
// WarpSize x C register matrix caching a tile of the input. Rows are loaded
// with one fully coalesced global load per row (one element per lane), and
// the sliding window of Section 4.2 walks the rows so neighbouring outputs
// reuse C - 1 of the C cached rows.
//
// The cache is generic over the execution mode of the warp it serves and
// stores its rows inline (no heap allocation), mirroring the fact that on
// the real device these are registers, not memory.
#pragma once

#include <cstring>

#include "common/grid.hpp"
#include "common/inline_vec.hpp"
#include "gpusim/warp.hpp"

namespace ssam::core {

using sim::Reg;

/// Upper bound on rows a register cache can hold: C = P + N - 1 with the
/// sliding window capped at a full warp (P <= 32) plus filter halo.
inline constexpr int kMaxRegCacheRows = 64;

/// The per-warp register cache: a column of C values per lane.
template <typename T, sim::ExecMode M>
class RegisterCache {
 public:
  RegisterCache(sim::WarpContextT<M>& warp, int capacity) : warp_(&warp) {
    SSAM_REQUIRE(capacity > 0, "register cache capacity must be positive");
    rows_.resize(capacity);
  }

  [[nodiscard]] int capacity() const { return rows_.size(); }
  [[nodiscard]] Reg<T>& row(int i) { return rows_[i]; }
  [[nodiscard]] const Reg<T>& row(int i) const { return rows_[i]; }

  /// Loads `capacity()` consecutive rows starting at `row0`; lane l reads
  /// column `col0 + l`. Out-of-domain coordinates are border-resolved by
  /// clamping (replicate), matching the paper's evaluation setup.
  void load_rows(const GridView2D<const T>& in, Index col0, Index row0) {
    if constexpr (M == sim::ExecMode::kFunctional) {
      // Interior fast path: the whole warp footprint is in-domain, so the
      // clamp is the identity and every row is one contiguous 128-byte copy.
      // Border warps (and timing mode, which must issue the real op
      // sequence) take the generic path below. Same values either way.
      if (col0 >= 0 && col0 + sim::kWarpSize <= in.width() && row0 >= 0 &&
          row0 + capacity() <= in.height()) {
        const T* src = in.data() + row0 * in.pitch() + col0;
        for (int r = 0; r < capacity(); ++r, src += in.pitch()) {
          std::memcpy(rows_[r].v.lane.data(), src, sizeof(T) * sim::kWarpSize);
        }
        return;
      }
    }
    sim::WarpContextT<M>& w = *warp_;
    // Column index per lane, clamped once and reused for every row.
    Reg<Index> col = w.clamp(w.template iota<Index>(col0, 1), Index{0}, in.width() - 1);
    for (int r = 0; r < capacity(); ++r) {
      Index y = row0 + r;
      y = y < 0 ? 0 : (y >= in.height() ? in.height() - 1 : y);
      const Reg<Index> idx = w.affine(col, 1, y * in.pitch());
      rows_[r] = w.load_global(in.data(), idx);
    }
  }

  /// Registers this cache costs per thread (for occupancy estimation).
  [[nodiscard]] int registers_per_thread() const { return capacity(); }

 private:
  sim::WarpContextT<M>* warp_;
  InlineVec<Reg<T>, kMaxRegCacheRows> rows_;
};

/// Deduces the execution mode from the warp so mode-generic kernel bodies
/// can write `auto rc = make_register_cache<T>(wc, c);`.
template <typename T, sim::ExecMode M>
[[nodiscard]] RegisterCache<T, M> make_register_cache(sim::WarpContextT<M>& warp,
                                                      int capacity) {
  return RegisterCache<T, M>(warp, capacity);
}

}  // namespace ssam::core
