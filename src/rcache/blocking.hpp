// Overlapped blocking geometry (paper Sections 4.5, 4.7, 5.3).
//
// A warp loads a WarpSize-wide input stripe; after the systolic shifts only
// WarpSize - span lanes hold valid outputs, so consecutive warps overlap by
// `span` columns (the halo lanes of Figure 3). Vertically, each warp loads
// C = P + N - 1 rows to emit P output rows. This header centralizes the
// index bookkeeping and the halo-ratio analysis of Section 5.3.
#pragma once

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"
#include "gpusim/vec.hpp"

namespace ssam::core {

/// Geometry of the 2D overlapped blocking scheme.
struct Blocking2D {
  int span = 0;      ///< horizontal systolic shifts (M-1 for an M-wide filter)
  int dx_min = 0;    ///< leftmost column offset consumed (-cx for conv)
  int rows_halo = 0; ///< N-1 extra rows per warp
  int p = 4;         ///< outputs per thread (sliding window length)
  int block_threads = 128;

  /// Register cache capacity per thread: C = P + N - 1 (Equation 3).
  [[nodiscard]] int c() const { return p + rows_halo; }

  /// Valid output columns per warp: WarpSize - span.
  [[nodiscard]] int valid_cols() const { return sim::kWarpSize - span; }

  [[nodiscard]] int warps_per_block() const { return block_threads / sim::kWarpSize; }

  /// Grid dimensions for a W x H domain (Section 4.7).
  [[nodiscard]] Dim3 grid(Index width, Index height) const {
    SSAM_REQUIRE(valid_cols() > 0, "filter too wide for one warp");
    Dim3 g;
    g.x = static_cast<int>(
        ceil_div(width, static_cast<long long>(warps_per_block()) * valid_cols()));
    g.y = static_cast<int>(ceil_div(height, p));
    g.z = 1;
    return g;
  }

  /// Input column loaded by lane 0 of global warp index j (blocks*warps).
  [[nodiscard]] Index lane0_col(long long warp_linear) const {
    return static_cast<Index>(warp_linear) * valid_cols() + dx_min;
  }

  /// Top input row loaded by a warp in block row `by` (includes y halo).
  [[nodiscard]] Index top_row(int by, int cy) const {
    return static_cast<Index>(by) * p - cy;
  }

  /// Halo ratio of the register cache method (Section 5.3):
  /// HRrc = (S*C - (S-M)*(C-N)) / (S*C), with S = WarpSize.
  [[nodiscard]] static double halo_ratio_rc(int m, int n, int p) {
    const double s = sim::kWarpSize;
    const double c = p + n - 1;
    return (s * c - (s - m) * (c - n)) / (s * c);
  }

  /// Paper's closed-form bound: HRrc < (S*N + C*M) / (S*C).
  [[nodiscard]] static double halo_ratio_bound(int m, int n, int p) {
    const double s = sim::kWarpSize;
    const double c = p + n - 1;
    return (s * n + c * m) / (s * c);
  }
};

/// Geometry of the 3D overlapped blocking scheme (Section 4.9): a block of
/// WZ warps covers WZ consecutive z-planes; the outer rz planes on each side
/// are halo planes whose warps only produce partial sums for the interior.
struct Blocking3D {
  Blocking2D plane;  ///< in-plane geometry (span from the x extents)
  int rz = 1;        ///< z radius
  int warps = 8;     ///< planes per block (= warps per block)

  [[nodiscard]] int valid_planes() const { return warps - 2 * rz; }
  [[nodiscard]] int block_threads() const { return warps * sim::kWarpSize; }

  [[nodiscard]] Dim3 grid(Index nx, Index ny, Index nz) const {
    SSAM_REQUIRE(valid_planes() > 0, "z block too shallow for stencil radius");
    Dim3 g;
    g.x = static_cast<int>(ceil_div(nx, plane.valid_cols()));
    g.y = static_cast<int>(ceil_div(ny, plane.p));
    g.z = static_cast<int>(ceil_div(nz, valid_planes()));
    return g;
  }

  /// Fraction of loaded planes that are halo (z-direction redundancy).
  [[nodiscard]] double z_halo_ratio() const {
    return static_cast<double>(2 * rz) / warps;
  }
};

}  // namespace ssam::core
