// Domain sharding across virtual devices.
//
// The persistent iteration engine (core/iterate_persistent.hpp) decomposes
// a grid into resident band tiles on ONE worker pool. This layer adds the
// level above: a `ShardPolicy` splits the same band axis (rows in 2D,
// z-planes in 3D) into contiguous *shards*, places each shard on its own
// virtual device (gpusim/device.hpp — a pool slice with its own workspace
// arena and counters), and wires the two tiles that meet at a shard seam
// with a *peer* halo channel from the device group. Peer channels are the
// identical epoch-counted SPSC machinery used inside a shard, configured
// zero-copy: a boundary published on device d is written directly into the
// halo region of the neighbouring tile's residence buffer on device d+1,
// so inter-device exchange costs one memcpy and two atomic counters — no
// global-array round trip, no staging copy.
//
// Sharding never changes results: every tile still computes the same band
// rows from the same halo state, so sharded runs are bit-identical to
// single-device runs at every shard count and policy — the invariant the
// randomized differential suite (tests/test_sharding.cpp) enforces.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "gpusim/device.hpp"

namespace ssam::core {

/// Whether an iterative run stays on one pool or is sharded across virtual
/// devices.
enum class ShardMode { kSingle, kSharded };

struct ShardPolicy {
  ShardMode mode = ShardMode::kSingle;
  /// Sharded: target device count; 0 = sim::default_device_count()
  /// (SSAM_DEVICES). Clamped to what the domain and the group can host.
  int devices = 0;
  /// Explicit device group (bench/test hook). Null: DeviceGroup::shared(n).
  sim::DeviceGroup* group = nullptr;

  [[nodiscard]] static ShardPolicy single() { return {}; }
  [[nodiscard]] static ShardPolicy sharded(int n = 0, sim::DeviceGroup* g = nullptr) {
    return {ShardMode::kSharded, n, g};
  }
};

namespace detail {

/// Band partition of `n` units into at most `want` tiles, each a multiple
/// of `align` units (except possibly the last) and at least `min_band`
/// units. Returns the first unit of each tile plus the end sentinel. Used
/// both for tiles within a shard and for the shard split itself.
[[nodiscard]] inline std::vector<Index> partition_bands(Index n, int want, Index align,
                                                        Index min_band) {
  align = align < 1 ? 1 : align;
  min_band = std::max<Index>({min_band, align, 1});
  int tiles = std::max(1, want);
  tiles = static_cast<int>(std::min<Index>(tiles, std::max<Index>(1, n / min_band)));
  Index per = static_cast<Index>(ceil_div(n, static_cast<Index>(tiles)));
  per = static_cast<Index>(ceil_div(per, align)) * align;
  tiles = static_cast<int>(ceil_div(n, per));
  // A too-short trailing band cannot source its neighbour's halo: merge it.
  if (tiles > 1 && n - static_cast<Index>(tiles - 1) * per < min_band) --tiles;
  std::vector<Index> starts(static_cast<std::size_t>(tiles) + 1);
  for (int i = 0; i < tiles; ++i) starts[static_cast<std::size_t>(i)] = i * per;
  starts[static_cast<std::size_t>(tiles)] = n;
  return starts;
}

/// Auto tile count for one pool of `workers`: enough tiles that each
/// residence buffer stays around kTargetResidenceBytes (measured sweet
/// spot: a ping/pong pair fits the owner's private cache, so consecutive
/// sweeps of a burst run out of L2), but never fewer than two tiles per
/// worker.
inline constexpr std::size_t kTargetResidenceBytes = std::size_t{512} << 10;

[[nodiscard]] inline int auto_tiles_for(int workers, Index units, std::size_t unit_bytes) {
  const Index desired_band = std::max<Index>(
      1, static_cast<Index>(kTargetResidenceBytes / std::max<std::size_t>(unit_bytes, 1)));
  const auto by_size = static_cast<int>(ceil_div(units, desired_band));
  return std::max(2 * workers, by_size);
}

/// The shard split of one run: contiguous unit ranges and the device that
/// owns each. Single mode: one range, no devices (the run stays on the
/// global pool).
struct ShardSplit {
  std::vector<Index> starts;          ///< shard starts + end sentinel
  std::vector<sim::Device*> devices;  ///< empty in single mode
  sim::DeviceGroup* group = nullptr;  ///< null in single mode

  [[nodiscard]] int shards() const { return static_cast<int>(starts.size()) - 1; }
  [[nodiscard]] bool sharded() const { return group != nullptr; }
};

[[nodiscard]] inline ShardSplit split_shards(Index units, const ShardPolicy& shard,
                                             Index align, Index min_band) {
  ShardSplit sp;
  if (shard.mode != ShardMode::kSharded) {
    sp.starts = {0, units};
    return sp;
  }
  const int want = shard.devices > 0 ? shard.devices : sim::default_device_count();
  sp.group = shard.group != nullptr ? shard.group : &sim::DeviceGroup::shared(want);
  const int avail = std::min(want, sp.group->size());
  // The partitioner clamps further when the domain cannot host `avail`
  // min_band-sized shards — "shard count > tile count" degrades gracefully
  // to fewer (possibly one) shards instead of empty devices.
  sp.starts = partition_bands(units, avail, align, min_band);
  sp.devices.reserve(static_cast<std::size_t>(sp.shards()));
  for (int s = 0; s < sp.shards(); ++s) sp.devices.push_back(&sp.group->device(s));
  return sp;
}

/// Geometry request of one sharded (or single) persistent band run. All
/// sizes are in units (rows or planes) and bytes, so one builder serves the
/// 2D and 3D engines.
struct BandLayoutRequest {
  Index units = 0;            ///< total units on the band axis
  Index unit_elems = 0;       ///< elements per unit (row width or plane size)
  std::size_t elem_bytes = 0; ///< sizeof(T)
  Index ht = 0;               ///< halo units above each band
  Index hb = 0;               ///< halo units below
  Index align = 1;            ///< preferred band multiple (p or valid planes)
  Index min_band = 1;         ///< smallest band that can source a halo
  int want_tiles = 0;         ///< total tile target; 0 = auto per shard
  bool has_aux = false;       ///< carve an aux residence buffer per tile
  /// Single mode: workers of the pool the run executes on, when it is not
  /// the global pool (a device-pinned server job). 0 = global pool size.
  int lane_workers = 0;
};

/// The assembled layout: tile starts, per-tile residence buffers carved
/// from the owning device's arena (or the single workspace), and the
/// channel pool — seam channels included, wired zero-copy into the
/// neighbouring tile's buffers exactly like intra-shard channels.
struct BandLayout {
  std::vector<Index> starts;              ///< tile starts + end sentinel
  std::vector<int> device_of;             ///< owning shard per tile
  std::vector<std::pair<int, int>> tile_range;  ///< per shard: [begin, end) tiles
  std::vector<std::byte*> buf_a;
  std::vector<std::byte*> buf_b;
  std::vector<std::byte*> aux;
  std::span<sim::HaloChannel> chans;      ///< 2 * (tiles - 1)
  std::vector<sim::Device*> devices;      ///< empty in single mode

  [[nodiscard]] int tiles() const { return static_cast<int>(starts.size()) - 1; }
  [[nodiscard]] bool sharded() const { return !devices.empty(); }
  /// True when the channel pair between tiles i and i+1 crosses a seam.
  [[nodiscard]] bool seam_after(int i) const {
    return sharded() && device_of[static_cast<std::size_t>(i)] !=
                            device_of[static_cast<std::size_t>(i) + 1];
  }
  [[nodiscard]] sim::DeviceCounters* counters_of(int tile) const {
    if (!sharded()) return nullptr;
    return &devices[static_cast<std::size_t>(device_of[static_cast<std::size_t>(tile)])]
                ->counters();
  }
};

/// Splits the domain into shards and tiles, carves every tile's residence
/// buffers (single mode: from `ws`; sharded: from each owning device's
/// workspace arena), and wires all tile-to-tile channels (intra-shard from
/// the same pool as seams — the group's peer channels — so the engine
/// treats every edge uniformly).
[[nodiscard]] inline BandLayout build_band_layout(const BandLayoutRequest& req,
                                                  const ShardPolicy& shard,
                                                  sim::PersistentWorkspace& ws) {
  const Index skew_elems = 1024 + 16;  // break page-set aliasing between buffers
  const std::size_t unit_bytes =
      static_cast<std::size_t>(req.unit_elems) * req.elem_bytes;
  const std::size_t skew_bytes = static_cast<std::size_t>(skew_elems) * req.elem_bytes;

  BandLayout L;
  ShardSplit sp = split_shards(req.units, shard, req.align, req.min_band);
  const int shards = sp.shards();
  L.devices = std::move(sp.devices);

  // Tiles within each shard, concatenated in global band order.
  for (int s = 0; s < shards; ++s) {
    const Index u0 = sp.starts[static_cast<std::size_t>(s)];
    const Index su = sp.starts[static_cast<std::size_t>(s) + 1] - u0;
    const int workers =
        L.devices.empty()
            ? (req.lane_workers > 0 ? req.lane_workers : ThreadPool::global().size())
            : L.devices[static_cast<std::size_t>(s)]->pool().size();
    const int want = req.want_tiles > 0
                         ? std::max(1, (req.want_tiles + shards - 1) / shards)
                         : auto_tiles_for(workers, su, unit_bytes);
    const std::vector<Index> t = partition_bands(su, want, req.align, req.min_band);
    const int begin = static_cast<int>(L.starts.size());
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      L.starts.push_back(u0 + t[i]);
      L.device_of.push_back(s);
    }
    L.tile_range.emplace_back(begin, static_cast<int>(L.starts.size()));
  }
  L.starts.push_back(req.units);
  const int tiles = L.tiles();

  // Carve residence buffers: one arena call per owning workspace (arena
  // calls invalidate earlier pointers from the same workspace).
  L.buf_a.resize(static_cast<std::size_t>(tiles));
  L.buf_b.resize(static_cast<std::size_t>(tiles));
  L.aux.resize(static_cast<std::size_t>(tiles), nullptr);
  auto range_bytes = [&](int tb, int te) {
    std::size_t total = skew_bytes;  // tail guard
    for (int i = tb; i < te; ++i) {
      const Index band = L.starts[static_cast<std::size_t>(i) + 1] -
                         L.starts[static_cast<std::size_t>(i)];
      total += 2 * (static_cast<std::size_t>(req.ht + band + req.hb) * unit_bytes +
                    skew_bytes);
      if (req.has_aux) total += static_cast<std::size_t>(band) * unit_bytes + skew_bytes;
    }
    return total;
  };
  auto carve_range = [&](std::byte* p, int tb, int te) {
    for (int i = tb; i < te; ++i) {
      const Index band = L.starts[static_cast<std::size_t>(i) + 1] -
                         L.starts[static_cast<std::size_t>(i)];
      const std::size_t step =
          static_cast<std::size_t>(req.ht + band + req.hb) * unit_bytes + skew_bytes;
      L.buf_a[static_cast<std::size_t>(i)] = p;
      p += step;
      L.buf_b[static_cast<std::size_t>(i)] = p;
      p += step;
      if (req.has_aux) {
        L.aux[static_cast<std::size_t>(i)] = p;
        p += static_cast<std::size_t>(band) * unit_bytes + skew_bytes;
      }
    }
  };
  if (L.devices.empty()) {
    carve_range(ws.arena(range_bytes(0, tiles)), 0, tiles);
  } else {
    for (int s = 0; s < shards; ++s) {
      const auto [tb, te] = L.tile_range[static_cast<std::size_t>(s)];
      carve_range(L.devices[static_cast<std::size_t>(s)]->workspace().arena(
                      range_bytes(tb, te)),
                  tb, te);
    }
  }

  // Channel wiring, uniform across intra-shard and seam edges.
  // Channel 2e   (down, tile e -> e+1): writes tile e+1's upper halo.
  // Channel 2e+1 (up, tile e+1 -> e): writes tile e's lower halo units.
  const std::size_t n_chans = tiles > 1 ? static_cast<std::size_t>(2 * (tiles - 1)) : 0;
  L.chans = sp.group != nullptr ? sp.group->peer_channels(n_chans) : ws.channels(n_chans);
  for (int e = 0; e + 1 < tiles; ++e) {
    const Index band_e = L.starts[static_cast<std::size_t>(e) + 1] -
                         L.starts[static_cast<std::size_t>(e)];
    L.chans[static_cast<std::size_t>(2 * e)].configure_external(
        L.buf_a[static_cast<std::size_t>(e) + 1], L.buf_b[static_cast<std::size_t>(e) + 1]);
    const std::size_t lower_halo =
        static_cast<std::size_t>(req.ht + band_e) * unit_bytes;
    L.chans[static_cast<std::size_t>(2 * e) + 1].configure_external(
        L.buf_a[static_cast<std::size_t>(e)] + lower_halo,
        L.buf_b[static_cast<std::size_t>(e)] + lower_halo);
  }
  return L;
}

}  // namespace detail
}  // namespace ssam::core
