// Subsystem 9: the auto-scheduler — schedule-as-data over the PR 1-8 knobs.
//
// Every execution knob the stack grew (IterationPolicy, tile count,
// ShardPolicy, temporal depth t, sliding-window p, block width) was still
// hand-picked per example. This layer makes them self-service, Halide
// style: a `Schedule` is plain serializable data, a cost model seeded from
// the paper's latency equations (perfmodel/latency_model.hpp) and
// calibrated at first use by the Table-2 dependent-chain microbenchmarks
// (gpusim/microbench.hpp) plus one short wall-clock probe ranks the
// candidate space, and the top-k candidates are settled by on-line
// best-of-k measurement on throwaway proxy grids (the PERKS
// generate-then-measure idiom). Winners persist in a per-host JSON cache —
// keyed by (kernel kind, grid shape, schedule-relevant hints, host
// fingerprint from SimConfig) under ~/.cache/ssam/ (SSAM_TUNE_CACHE
// overrides the file) — so the serving path pays for a schedule once per
// host, ever: a cache hit performs ZERO measurements.
//
// The search space is exactly the bit-safe knobs: policy, tiles, shards.
// Those are proven output-invariant by the differential suites (sharding,
// persistent-vs-relaunch, chain). Temporal depth `t` changes floating-point
// association order — it is DATA carried by the schedule, never searched.
// Same for p/block_threads (request semantics). Consequence: a tuned run is
// bit-identical to the default run of the same job, which is what lets
// `JobHints::auto_tune` default-off jobs and tuned jobs share one
// differential test.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/job.hpp"
#include "gpusim/arch.hpp"
#include "perfmodel/latency_model.hpp"

namespace ssam::core {

/// A complete execution schedule as plain data. The searched knobs are
/// policy/tiles/shards; t, p, block_threads and the pool width are carried
/// along so a cache entry records the full context it was tuned under.
struct Schedule {
  IterationPolicy policy = IterationPolicy::kAuto;
  int tiles = 0;   ///< persistent band tiles (0: auto_tiles_for)
  int shards = 0;  ///< 0: single pool; > 0: ShardPolicy::sharded(shards)
  int t = 1;       ///< fused time steps per sweep (data, not searched)
  int p = 4;
  int block_threads = 128;
  int threads = 0;  ///< pool width the schedule was tuned for (record only)

  /// One deterministic line, e.g.
  /// "policy=persistent tiles=8 shards=2 t=1 p=4 block=128 threads=4".
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const Schedule& o) const {
    return policy == o.policy && tiles == o.tiles && shards == o.shards &&
           t == o.t && p == o.p && block_threads == o.block_threads &&
           threads == o.threads;
  }
};

/// Where a resolved schedule came from.
enum class TuneOrigin {
  kDefault,    ///< untunable kind (conv2d) — the hinted schedule, unchanged
  kCacheHit,   ///< served from the per-host cache: zero measurements
  kMeasured,   ///< guided search: model-ranked top-k, measured, persisted
  kModelOnly,  ///< search with measurement disabled (top_k = 0)
};

[[nodiscard]] const char* tune_origin_name(TuneOrigin o);

struct TuneResult {
  Schedule schedule;
  TuneOrigin origin = TuneOrigin::kDefault;
  double predicted_ms = 0.0;  ///< cost-model estimate for the full job
  double measured_ms = 0.0;   ///< best proxy measurement (0: not measured)
};

/// One entry of the model-ranked candidate list (exposed for the
/// determinism tests and the bench's hand-tuned sweep).
struct Candidate {
  Schedule schedule;
  double predicted_ms = 0.0;
};

/// Monotone counters over the tuner's lifetime — the warm-path guarantees
/// ("cache hit = zero measurements") are asserted against these.
struct TuneStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t tunes = 0;
  std::uint64_t measurements = 0;  ///< proxy runs executed (reps included)
};

/// The calibrated cost model. Latencies are seeded from the ArchSpec table
/// and replaced by the measured dependent-chain values (closing the same
/// loop bench_table2_microbench closes); `ms_per_unit` converts model units
/// to host milliseconds via one short wall-clock probe.
struct CostModel {
  perf::MicroLatencies lat;
  double ms_per_unit = 0.0;
  bool calibrated = false;

  /// Model-unit cost of the full job under `s` (lower is better). Pure —
  /// candidate ranking must be deterministic.
  [[nodiscard]] double predict_units(const SimJob& job, const Schedule& s,
                                     int pool_workers) const;
  [[nodiscard]] double predict_ms(const SimJob& job, const Schedule& s,
                                  int pool_workers) const {
    return predict_units(job, s, pool_workers) * ms_per_unit;
  }
};

struct TunerOptions {
  /// Cache file. Empty: SimConfig::tune_cache (SSAM_TUNE_CACHE), else the
  /// per-host default under ~/.cache/ssam/. "off" disables persistence
  /// (in-memory cache only).
  std::string cache_path;
  /// Candidates measured beyond the always-measured default schedule.
  /// 0: model-only pick (deterministic — the sanitizer legs and the seeded
  /// determinism test run here). < 0: SimConfig::tune_topk, else 4.
  int top_k = -1;
  int proxy_sweeps = 6;  ///< sweeps per proxy measurement (clamped to job)
  int reps = 2;          ///< best-of reps per measured candidate
  std::uint64_t seed = 0x55A31ull;  ///< proxy grid fill seed
  /// Tests only: impersonate another host (fingerprint-mismatch coverage).
  std::string fingerprint_override;
};

/// The guided-search tuner. Thread-safe; `global()` is the instance
/// `JobHints::auto_tune` resolves through.
class AutoTuner {
 public:
  explicit AutoTuner(TunerOptions opt = {});

  static AutoTuner& global();

  /// Resolves the schedule for `job`: cache hit (zero measurements) or one
  /// guided search (model-ranked pruning, then best-of-k measurement of the
  /// top candidates + the default schedule) whose winner is persisted.
  /// `device`: the lane a pinned job will run on — measurement uses the
  /// same lane and the candidate space drops sharding (a device-pinned run
  /// cannot shard).
  TuneResult resolve(const sim::ArchSpec& arch, const SimJob& job,
                     sim::Device* device = nullptr);

  /// The deterministic model-ranked candidate list (best predicted first).
  /// Exposed for the determinism tests and the bench's hand-tuned sweep.
  [[nodiscard]] std::vector<Candidate> candidates(const sim::ArchSpec& arch,
                                                  const SimJob& job,
                                                  bool allow_shards);

  /// Lazily calibrates (microbench sweep + wall-clock probe) and returns
  /// the model.
  const CostModel& model(const sim::ArchSpec& arch);

  [[nodiscard]] TuneStats stats() const;

  /// Drops the in-memory cache so the next resolve re-reads the file
  /// (tests: simulate a fresh process against a warm cache file).
  void reload();

  /// True for kinds with bit-safe schedule knobs (stencil2d/3d, chain).
  /// Conv2d is a single launch — nothing to schedule — and resolves
  /// kDefault.
  [[nodiscard]] static bool tunable(JobKind kind);

  /// The cache key: kernel kind, grid shape, steps and the schedule-
  /// relevant hints, plus the lane scope (pinned runs tune a different
  /// space than global ones).
  [[nodiscard]] static std::string cache_key(const SimJob& job, bool pinned);

  /// The host fingerprint a cache entry is valid under: pool width, device
  /// count, pinning, SIMD backend, hardware concurrency. A mismatch forces
  /// a re-tune (the cache is per-host by construction).
  [[nodiscard]] static std::string host_fingerprint();

  /// Resolved cache file path for these options (empty: persistence off).
  [[nodiscard]] static std::string resolve_cache_path(const TunerOptions& opt);

 private:
  struct Entry {
    std::string fingerprint;
    Schedule schedule;
    double predicted_ms = 0.0;
    double measured_ms = 0.0;
  };

  void ensure_loaded_locked();
  void save_locked() const;
  void calibrate_locked(const sim::ArchSpec& arch);
  std::vector<Candidate> ranked_locked(const SimJob& job, int workers,
                                       bool allow_shards);
  double measure_locked(const sim::ArchSpec& arch, const SimJob& job,
                        const Schedule& s, sim::Device* device);

  TunerOptions opt_;
  mutable std::mutex m_;
  bool loaded_ = false;
  std::string path_;  ///< resolved cache file ("" = no persistence)
  std::unordered_map<std::string, Entry> cache_;
  CostModel model_;
  TuneStats stats_;
};

}  // namespace ssam::core
