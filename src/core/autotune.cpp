#include "core/autotune.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/microbench.hpp"

namespace ssam::core {

namespace {

constexpr int kDefaultTopK = 4;

// Overhead constants, in model units (one unit ~= one simulated cycle of
// one lane). They only need to be the right order of magnitude: the model
// RANKS candidates, measurement decides among the survivors, and the
// always-measured default schedule bounds the damage of a bad rank.
constexpr double kLaunchUnits = 5.0e5;     ///< one relaunch fork/join
constexpr double kTileSetupUnits = 2.0e5;  ///< one resident tile's setup

const char* policy_name(IterationPolicy p) {
  switch (p) {
    case IterationPolicy::kAuto: return "auto";
    case IterationPolicy::kRelaunch: return "relaunch";
    case IterationPolicy::kPersistent: return "persistent";
  }
  return "?";
}

IterationPolicy policy_from_name(const std::string& s, bool& ok) {
  ok = true;
  if (s == "auto") return IterationPolicy::kAuto;
  if (s == "relaunch") return IterationPolicy::kRelaunch;
  if (s == "persistent") return IterationPolicy::kPersistent;
  ok = false;
  return IterationPolicy::kAuto;
}

/// FNV-1a over the tap offsets — the part of a shape that determines its
/// schedule-relevant footprint (coefficients don't move the schedule).
std::uint64_t taps_hash(const StencilShape<float>& shape) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::int64_t v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  for (const auto& t : shape.taps) {
    mix(t.dx);
    mix(t.dy);
    mix(t.dz);
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// Horizontal tap extent (the Eq. 4 shuffle axis), active tap count, and the
/// band-axis extent (rows in 2D, z-planes in 3D — what halos are made of).
struct TapFootprint {
  int taps = 1;
  int mx = 1;
  int rows = 1;
};

TapFootprint footprint_of(const StencilShape<float>& shape, bool three_d) {
  TapFootprint f;
  if (shape.taps.empty()) return f;
  int dx0 = 0, dx1 = 0, dy0 = 0, dy1 = 0, dz0 = 0, dz1 = 0;
  for (const auto& t : shape.taps) {
    dx0 = std::min(dx0, t.dx);
    dx1 = std::max(dx1, t.dx);
    dy0 = std::min(dy0, t.dy);
    dy1 = std::max(dy1, t.dy);
    dz0 = std::min(dz0, t.dz);
    dz1 = std::max(dz1, t.dz);
  }
  f.taps = static_cast<int>(shape.taps.size());
  f.mx = dx1 - dx0 + 1;
  f.rows = three_d ? (dz1 - dz0 + 1) : (dy1 - dy0 + 1);
  return f;
}

/// Mean per-element compute units of one accounting sweep of `job` (a chain
/// "sweep" passes an element through every stage; job.steps mirrors depth).
double per_elem_units(const SimJob& job, const perf::MicroLatencies& lat) {
  if (job.kind == JobKind::kConv2D) {
    const int m = std::max(1, job.filter_m);
    const int n = std::max(1, job.filter_n);
    return perf::latency_ssam_taps(m * n, m, lat);
  }
  if (job.kind == JobKind::kChain) {
    double total = 0.0;
    for (const auto& st : job.stages) {
      const TapFootprint f = footprint_of(st.shape, false);
      total += perf::latency_ssam_taps(f.taps, f.mx, lat) * std::max(1, st.t);
      if (st.dual()) {
        const TapFootprint fb = footprint_of(st.shape_b, false);
        total += perf::latency_ssam_taps(fb.taps, fb.mx, lat);
      }
    }
    return total / std::max(1, job.steps);
  }
  const TapFootprint f = footprint_of(job.shape, job.kind == JobKind::kStencil3D);
  return perf::latency_ssam_taps(f.taps, f.mx, lat);
}

/// Band-axis unit count and bytes per unit — what auto_tiles_for sizes
/// residence buffers against.
void band_geometry(const SimJob& job, Index& units, std::size_t& unit_bytes) {
  if (job.kind == JobKind::kStencil3D && job.a3 != nullptr) {
    units = job.a3->nz();
    unit_bytes = static_cast<std::size_t>(job.a3->nx()) *
                 static_cast<std::size_t>(job.a3->ny()) * sizeof(float);
    return;
  }
  if (job.a2 != nullptr) {
    units = job.a2->height();
    unit_bytes = static_cast<std::size_t>(job.a2->width()) * sizeof(float);
    return;
  }
  units = 1;
  unit_bytes = sizeof(float);
}

// ---------------------------------------------------------------------------
// Minimal JSON plumbing for the cache file. The writer below emits flat
// entry objects (no nested braces, strings escape only '"' and '\'), so the
// reader can scan brace-delimited objects and pull fields by key. Anything
// that doesn't parse is skipped — a corrupt cache must never fail a job.

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool json_string_field(const std::string& obj, const std::string& key,
                       std::string& out) {
  const std::string needle = "\"" + key + "\":";
  std::size_t p = obj.find(needle);
  if (p == std::string::npos) return false;
  p += needle.size();
  while (p < obj.size() && (obj[p] == ' ' || obj[p] == '\t')) ++p;
  if (p >= obj.size() || obj[p] != '"') return false;
  ++p;
  std::string v;
  while (p < obj.size() && obj[p] != '"') {
    if (obj[p] == '\\' && p + 1 < obj.size()) ++p;
    v.push_back(obj[p]);
    ++p;
  }
  if (p >= obj.size()) return false;
  out = std::move(v);
  return true;
}

bool json_number_field(const std::string& obj, const std::string& key,
                       double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t p = obj.find(needle);
  if (p == std::string::npos) return false;
  const char* start = obj.c_str() + p + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  out = v;
  return true;
}

}  // namespace

const char* tune_origin_name(TuneOrigin o) {
  switch (o) {
    case TuneOrigin::kDefault: return "default";
    case TuneOrigin::kCacheHit: return "cache-hit";
    case TuneOrigin::kMeasured: return "measured";
    case TuneOrigin::kModelOnly: return "model-only";
  }
  return "?";
}

std::string Schedule::describe() const {
  std::string s = "policy=";
  s += policy_name(policy);
  s += " tiles=" + std::to_string(tiles);
  s += " shards=" + std::to_string(shards);
  s += " t=" + std::to_string(t);
  s += " p=" + std::to_string(p);
  s += " block=" + std::to_string(block_threads);
  s += " threads=" + std::to_string(threads);
  return s;
}

double CostModel::predict_units(const SimJob& job, const Schedule& s,
                                int pool_workers) const {
  const double cells = static_cast<double>(job.cells());
  const double sweeps = static_cast<double>(std::max(1, job.steps));
  const int workers = std::max(1, pool_workers);
  const double compute =
      cells * per_elem_units(job, lat) * std::max(1, s.t) * sweeps;

  // Coalesced global traffic: one warp-wide load amortizes t_gmem_read over
  // the lane count.
  const double gmem_per_elem = lat.t_gmem_read / sim::kWarpSize;
  Index band_units = 1;
  std::size_t unit_bytes = sizeof(float);
  band_geometry(job, band_units, unit_bytes);
  const double elems_per_unit =
      cells / std::max(1.0, static_cast<double>(band_units));

  const bool persistent =
      detail::choose_persistent(s.policy, std::max(1, job.steps));
  int tiles = s.tiles;
  if (persistent && tiles <= 0) {
    tiles = detail::auto_tiles_for(workers, band_units, unit_bytes);
  }
  tiles = std::max(1, std::min<int>(tiles, static_cast<int>(band_units)));

  const TapFootprint f = footprint_of(job.shape, job.kind == JobKind::kStencil3D);
  const double halo_units_per_tile = 2.0 * f.rows * std::max(1, s.t);

  double memory = 0.0;
  double overhead = 0.0;
  if (persistent) {
    // Tiles load once and store once; each sweep moves only halo boundaries
    // through the epoch-counted channels.
    memory = 2.0 * cells * gmem_per_elem;
    memory += sweeps * tiles * halo_units_per_tile * elems_per_unit * gmem_per_elem;
    overhead = kTileSetupUnits * tiles;
  } else {
    memory = 2.0 * cells * gmem_per_elem * sweeps;
    overhead = kLaunchUnits * sweeps;
  }
  if (s.shards > 1) {
    // Seam publishes are one boundary memcpy per neighbour per sweep, plus
    // a small synchronization tax per seam.
    memory += sweeps * (s.shards - 1) * halo_units_per_tile * elems_per_unit *
              gmem_per_elem;
    overhead += 0.5 * kTileSetupUnits * (s.shards - 1) +
                0.1 * kLaunchUnits * sweeps;
  }

  // Parallel speedup is capped by the work grain: persistent runs cannot use
  // more workers than tiles; relaunch grids have ample blocks.
  const int grain = persistent ? tiles : workers;
  const double eff = static_cast<double>(std::min(workers, std::max(1, grain)));
  return (compute + memory) / eff + overhead;
}

AutoTuner::AutoTuner(TunerOptions opt) : opt_(std::move(opt)) {
  path_ = resolve_cache_path(opt_);
}

AutoTuner& AutoTuner::global() {
  static AutoTuner tuner;
  return tuner;
}

bool AutoTuner::tunable(JobKind kind) {
  switch (kind) {
    case JobKind::kStencil2D:
    case JobKind::kStencil3D:
    case JobKind::kChain:
      return true;
    case JobKind::kConv2D:
      return false;  // one launch, no bit-safe schedule knobs
  }
  return false;
}

std::string AutoTuner::cache_key(const SimJob& job, bool pinned) {
  std::string key;
  switch (job.kind) {
    case JobKind::kStencil2D: key = "stencil2d"; break;
    case JobKind::kStencil3D: key = "stencil3d"; break;
    case JobKind::kConv2D: key = "conv2d"; break;
    case JobKind::kChain: key = "chain"; break;
  }
  key += "|g=";
  if (job.kind == JobKind::kStencil3D && job.a3 != nullptr) {
    key += std::to_string(job.a3->nx()) + "x" + std::to_string(job.a3->ny()) +
           "x" + std::to_string(job.a3->nz());
  } else if (job.a2 != nullptr) {
    key += std::to_string(job.a2->width()) + "x" + std::to_string(job.a2->height());
  }
  key += "|steps=" + std::to_string(job.steps);
  if (job.kind == JobKind::kChain) {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& st : job.stages) {
      h = h * 1099511628211ull + taps_hash(st.shape) +
          (st.dual() ? taps_hash(st.shape_b) : 0);
    }
    key += "|stages=" + std::to_string(job.stages.size()) + "|taps=" + hex64(h);
  } else {
    key += "|taps=" + std::to_string(job.shape.taps.size()) + "." +
           hex64(taps_hash(job.shape));
  }
  key += "|t=" + std::to_string(job.hints.t);
  key += "|p=" + std::to_string(job.hints.p);
  key += "|bt=" + std::to_string(job.hints.block_threads);
  key += pinned ? "|scope=pinned" : "|scope=global";
  return key;
}

std::string AutoTuner::host_fingerprint() {
  const SimConfig& c = config();
  std::string s = "threads=" + std::to_string(c.threads);
  s += " devices=" + std::to_string(c.devices);
  s += c.device_pin ? " pin=on" : " pin=off";
  s += " simd=";
  s += c.simd_backend;
  s += " hw=" + std::to_string(std::thread::hardware_concurrency());
  return s;
}

std::string AutoTuner::resolve_cache_path(const TunerOptions& opt) {
  std::string p = opt.cache_path;
  if (p.empty()) p = config().tune_cache;
  if (p == "off") return "";
  if (!p.empty()) return p;
  // Default per-host location: $XDG_CACHE_HOME/ssam/, else ~/.cache/ssam/.
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg != nullptr && *xdg != '\0') {
    return std::string(xdg) + "/ssam/tune_cache.json";
  }
  if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0') {
    return std::string(home) + "/.cache/ssam/tune_cache.json";
  }
  return ".ssam_tune_cache.json";
}

void AutoTuner::ensure_loaded_locked() {
  if (loaded_) return;
  loaded_ = true;
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in.good()) return;  // cold cache: the first tune creates the file
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::size_t pos = text.find('[');
  if (pos == std::string::npos) {
    log_debug("autotune: cache file " + path_ + " is malformed, starting empty");
    return;
  }
  int parsed = 0;
  while (true) {
    const std::size_t open = text.find('{', pos);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) break;
    pos = close + 1;
    const std::string obj = text.substr(open, close - open + 1);
    std::string key, fp, pol;
    if (!json_string_field(obj, "key", key) ||
        !json_string_field(obj, "fingerprint", fp) ||
        !json_string_field(obj, "policy", pol)) {
      continue;  // not an entry object (or corrupt) — skip
    }
    bool ok = false;
    Entry e;
    e.schedule.policy = policy_from_name(pol, ok);
    if (!ok) continue;
    double tiles = 0, shards = 0, t = 1, p = 4, bt = 128, threads = 0;
    double predicted = 0, measured = 0;
    json_number_field(obj, "tiles", tiles);
    json_number_field(obj, "shards", shards);
    json_number_field(obj, "t", t);
    json_number_field(obj, "p", p);
    json_number_field(obj, "block_threads", bt);
    json_number_field(obj, "threads", threads);
    json_number_field(obj, "predicted_ms", predicted);
    json_number_field(obj, "measured_ms", measured);
    e.fingerprint = fp;
    e.schedule.tiles = static_cast<int>(tiles);
    e.schedule.shards = static_cast<int>(shards);
    e.schedule.t = static_cast<int>(t);
    e.schedule.p = static_cast<int>(p);
    e.schedule.block_threads = static_cast<int>(bt);
    e.schedule.threads = static_cast<int>(threads);
    e.predicted_ms = predicted;
    e.measured_ms = measured;
    cache_[key] = std::move(e);
    ++parsed;
  }
  log_debug("autotune: loaded " + std::to_string(parsed) + " cache entries from " +
            path_);
}

void AutoTuner::save_locked() const {
  if (path_.empty()) return;
  std::error_code ec;
  const std::filesystem::path file(path_);
  if (file.has_parent_path()) {
    std::filesystem::create_directories(file.parent_path(), ec);  // best effort
  }
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) {
      log_debug("autotune: cannot write cache file " + tmp);
      return;
    }
    out << "{\n  \"version\": 1,\n  \"entries\": [";
    bool first = true;
    for (const auto& [key, e] : cache_) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    {\"key\": \"" << json_escape(key) << "\", \"fingerprint\": \""
          << json_escape(e.fingerprint) << "\", \"policy\": \""
          << policy_name(e.schedule.policy) << "\", \"tiles\": " << e.schedule.tiles
          << ", \"shards\": " << e.schedule.shards << ", \"t\": " << e.schedule.t
          << ", \"p\": " << e.schedule.p
          << ", \"block_threads\": " << e.schedule.block_threads
          << ", \"threads\": " << e.schedule.threads
          << ", \"predicted_ms\": " << e.predicted_ms
          << ", \"measured_ms\": " << e.measured_ms << "}";
    }
    out << "\n  ]\n}\n";
  }
  std::filesystem::rename(tmp, path_, ec);
  if (ec) log_debug("autotune: cache rename failed: " + ec.message());
}

void AutoTuner::calibrate_locked(const sim::ArchSpec& arch) {
  if (model_.calibrated) return;
  // Seed from the architecture table, then replace every constant with the
  // dependent-chain measurement (the Table-2 loop bench_table2_microbench
  // closes against the paper) so the model reflects what the simulator
  // actually schedules, not what the table promises.
  model_.lat = perf::from_arch(arch);
  const sim::MicrobenchResult mb = sim::run_microbench(arch, 128);
  if (mb.mad_cycles > 0) model_.lat.t_mad = mb.mad_cycles;
  if (mb.shfl_up_cycles > 0) model_.lat.t_shfl = mb.shfl_up_cycles;
  if (mb.smem_read_cycles > 0) model_.lat.t_smem_read = mb.smem_read_cycles;
  if (mb.gmem_read_cycles > 0) model_.lat.t_gmem_read = mb.gmem_read_cycles;

  // One short wall-clock probe converts model units to host milliseconds.
  Grid2D<float> a(256, 256);
  Grid2D<float> b(256, 256);
  fill_random(a, opt_.seed);
  const StencilShape<float> star = star2d<float>(1);
  PersistentOptions popt;
  popt.policy = IterationPolicy::kRelaunch;
  const auto t0 = std::chrono::steady_clock::now();
  iterate_stencil2d_persistent<float>(arch, a, b, star, 4, popt);
  const auto t1 = std::chrono::steady_clock::now();
  const double probe_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const SimJob probe = SimJob::stencil2d(a, b, star, 4);
  Schedule s;
  s.policy = IterationPolicy::kRelaunch;
  const double units = model_.predict_units(probe, s, ThreadPool::global().size());
  model_.ms_per_unit = units > 0 ? std::max(1e-12, probe_ms / units) : 1e-9;
  model_.calibrated = true;
  log_debug("autotune: calibrated ms_per_unit=" + std::to_string(model_.ms_per_unit));
}

const CostModel& AutoTuner::model(const sim::ArchSpec& arch) {
  std::lock_guard<std::mutex> lock(m_);
  calibrate_locked(arch);
  return model_;
}

std::vector<Candidate> AutoTuner::ranked_locked(const SimJob& job, int workers,
                                                bool allow_shards) {
  Schedule base;
  base.t = job.hints.t;
  base.p = job.hints.p;
  base.block_threads = job.hints.block_threads;
  base.threads = workers;

  std::vector<int> tile_counts{0, workers, 2 * workers, 4 * workers, 8 * workers};
  std::sort(tile_counts.begin(), tile_counts.end());
  tile_counts.erase(std::unique(tile_counts.begin(), tile_counts.end()),
                    tile_counts.end());
  std::vector<int> shard_counts{0};
  if (allow_shards && config().devices > 1) shard_counts.push_back(config().devices);

  std::vector<Candidate> out;
  for (int shards : shard_counts) {
    Schedule s = base;
    s.policy = IterationPolicy::kRelaunch;
    s.tiles = 0;
    s.shards = shards;
    out.push_back({s, model_.predict_ms(job, s, workers)});
    for (int tiles : tile_counts) {
      Schedule sp = base;
      sp.policy = IterationPolicy::kPersistent;
      sp.tiles = tiles;
      sp.shards = shards;
      out.push_back({sp, model_.predict_ms(job, sp, workers)});
    }
  }
  // Deterministic rank: predicted cost with the generation order as the
  // tie-break — no RNG anywhere, so the same job on the same host always
  // produces the same list (the seeded determinism test pins this).
  std::stable_sort(out.begin(), out.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.predicted_ms < b.predicted_ms;
                   });
  return out;
}

std::vector<Candidate> AutoTuner::candidates(const sim::ArchSpec& arch,
                                             const SimJob& job,
                                             bool allow_shards) {
  std::lock_guard<std::mutex> lock(m_);
  calibrate_locked(arch);
  return ranked_locked(job, std::max(1, ThreadPool::global().size()), allow_shards);
}

double AutoTuner::measure_locked(const sim::ArchSpec& arch, const SimJob& job,
                                 const Schedule& s, sim::Device* device) {
  // Proxy measurement: same shape, same geometry, throwaway storage — the
  // job's own grids are never touched, so tuning cannot perturb results.
  const int sweeps = std::clamp(job.steps, 1, std::max(1, opt_.proxy_sweeps));
  PersistentOptions popt;
  popt.policy = s.policy;
  popt.tiles = s.tiles;
  popt.t = s.t;
  popt.p = s.p;
  popt.block_threads = s.block_threads;
  popt.warps3d = job.hints.warps3d;
  popt.device = device;
  if (device == nullptr && s.shards > 1) popt.shard = ShardPolicy::sharded(s.shards);

  double best = std::numeric_limits<double>::infinity();
  const int reps = std::max(1, opt_.reps);
  try {
    if (job.kind == JobKind::kStencil2D || job.kind == JobKind::kChain) {
      Grid2D<float> a(job.a2->width(), job.a2->height());
      Grid2D<float> b(job.a2->width(), job.a2->height());
      fill_random(a, opt_.seed);
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        if (job.kind == JobKind::kChain) {
          run_chain2d<float>(arch, a, b, job.stages, popt);
        } else {
          iterate_stencil2d_persistent<float>(arch, a, b, job.shape, sweeps, popt);
        }
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double, std::milli>(t1 - t0).count());
        ++stats_.measurements;
      }
    } else if (job.kind == JobKind::kStencil3D) {
      Grid3D<float> a(job.a3->nx(), job.a3->ny(), job.a3->nz());
      Grid3D<float> b(job.a3->nx(), job.a3->ny(), job.a3->nz());
      fill_random(a, opt_.seed);
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        iterate_stencil3d_persistent<float>(arch, a, b, job.shape, sweeps, popt);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double, std::milli>(t1 - t0).count());
        ++stats_.measurements;
      }
    }
  } catch (const std::exception& e) {
    // A candidate that cannot run (resource limits, injected faults during a
    // chaos run) simply loses the race; it must never fail the job.
    log_debug(std::string("autotune: candidate failed to measure: ") + e.what());
    return std::numeric_limits<double>::infinity();
  }
  return best;
}

TuneResult AutoTuner::resolve(const sim::ArchSpec& arch, const SimJob& job,
                              sim::Device* device) {
  TuneResult res;
  res.schedule.policy = job.hints.policy;
  res.schedule.tiles = job.hints.tiles;
  res.schedule.t = job.hints.t;
  res.schedule.p = job.hints.p;
  res.schedule.block_threads = job.hints.block_threads;
  if (!tunable(job.kind)) {
    res.origin = TuneOrigin::kDefault;
    return res;
  }
  const bool pinned = device != nullptr;
  const std::string key = cache_key(job, pinned);
  const std::string fp = opt_.fingerprint_override.empty()
                             ? host_fingerprint()
                             : opt_.fingerprint_override;

  std::lock_guard<std::mutex> lock(m_);
  ensure_loaded_locked();
  ++stats_.lookups;
  if (const auto it = cache_.find(key);
      it != cache_.end() && it->second.fingerprint == fp) {
    ++stats_.hits;
    res.schedule = it->second.schedule;
    res.origin = TuneOrigin::kCacheHit;
    res.predicted_ms = it->second.predicted_ms;
    res.measured_ms = it->second.measured_ms;
    return res;
  }
  ++stats_.tunes;
  calibrate_locked(arch);

  // Guided search: model-ranked pruning first (cheap, deterministic), then
  // best-of-k measurement of the survivors. The default schedule is always
  // in the measured set, so a model mistake can cost at most timer noise
  // against the untuned path — never a regression the model talked us into.
  const int workers = pinned ? std::max(1, device->pool().size())
                             : std::max(1, ThreadPool::global().size());
  const std::vector<Candidate> ranked = ranked_locked(job, workers, !pinned);

  int top_k = opt_.top_k;
  if (top_k < 0) top_k = config().tune_topk > 0 ? config().tune_topk : kDefaultTopK;

  Schedule defaults = res.schedule;  // what run_job does without the tuner
  defaults.shards = 0;
  defaults.threads = workers;

  Schedule best_sched = ranked.empty() ? defaults : ranked.front().schedule;
  double best_pred = ranked.empty() ? 0.0 : ranked.front().predicted_ms;
  double best_ms = 0.0;
  if (top_k <= 0) {
    res.origin = TuneOrigin::kModelOnly;
  } else {
    std::vector<Candidate> to_measure(
        ranked.begin(),
        ranked.begin() + std::min<std::size_t>(ranked.size(),
                                               static_cast<std::size_t>(top_k)));
    const bool default_included =
        std::any_of(to_measure.begin(), to_measure.end(),
                    [&](const Candidate& c) { return c.schedule == defaults; });
    if (!default_included) {
      to_measure.push_back({defaults, model_.predict_ms(job, defaults, workers)});
    }
    double best_measured = std::numeric_limits<double>::infinity();
    for (const auto& c : to_measure) {
      const double ms = measure_locked(arch, job, c.schedule, device);
      if (ms < best_measured) {
        best_measured = ms;
        best_sched = c.schedule;
        best_pred = c.predicted_ms;
      }
    }
    if (std::isfinite(best_measured)) best_ms = best_measured;
    res.origin = TuneOrigin::kMeasured;
  }

  res.schedule = best_sched;
  res.predicted_ms = best_pred;
  res.measured_ms = best_ms;
  Entry e;
  e.fingerprint = fp;
  e.schedule = best_sched;
  e.predicted_ms = best_pred;
  e.measured_ms = best_ms;
  cache_[key] = std::move(e);
  save_locked();
  log_debug("autotune: " + key + " -> " + best_sched.describe() + " (" +
            tune_origin_name(res.origin) + ")");
  return res;
}

TuneStats AutoTuner::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

void AutoTuner::reload() {
  std::lock_guard<std::mutex> lock(m_);
  cache_.clear();
  loaded_ = false;
}

void autotune_apply(const sim::ArchSpec& arch, const SimJob& job,
                    sim::Device* device, PersistentOptions& popt) {
  if (!AutoTuner::tunable(job.kind)) return;
  const TuneResult r = AutoTuner::global().resolve(arch, job, device);
  popt.policy = r.schedule.policy;
  popt.tiles = r.schedule.tiles;
  if (device == nullptr && r.schedule.shards > 1) {
    popt.shard = ShardPolicy::sharded(r.schedule.shards);
  }
}

}  // namespace ssam::core
