// The SSAM formulation (paper Section 3): J = (O, D, X, Y).
//
//   O — computing operations: the (⊗, ⊕) pair of Equation 1 plus the ctrl()
//       gate. All kernels in this library use ⊗ = multiply, ⊕ = add with
//       ctrl ≡ identity (convolution/stencil) or a lane-threshold gate
//       (Kogge–Stone scan).
//   D — dependencies: the shift schedule; see dgraph.hpp (SystolicPlan).
//   X/Y — input/output variables: register-cache tiles; see
//       rcache/register_cache.hpp and rcache/blocking.hpp.
//
// This header carries the descriptor that ties the four components together
// for introspection, documentation, and the ablation benches.
#pragma once

#include <string>

#include "core/dgraph.hpp"
#include "rcache/blocking.hpp"

namespace ssam::core {

/// How the ctrl() gate of Equation 1 behaves for an algorithm.
enum class CtrlKind {
  kIdentity,      ///< ctrl(E) = E everywhere (convolution, stencils)
  kLaneThreshold  ///< ctrl(E) = E iff lane >= distance (Kogge–Stone scan)
};

/// Descriptor of an algorithm expressed in SSAM. Purely informational: the
/// kernels consume the plan and blocking directly, but benches and docs
/// report these fields.
template <typename T>
struct AlgorithmModel {
  std::string name;
  CtrlKind ctrl = CtrlKind::kIdentity;
  SystolicPlan<T> plan;   ///< D
  Blocking2D blocking;    ///< X/Y geometry (2D kernels)

  [[nodiscard]] int register_cache_size() const { return blocking.c(); }
  [[nodiscard]] int shuffles_per_window_step() const { return plan.horizontal_shifts(); }
};

}  // namespace ssam::core
