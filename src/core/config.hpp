// Process-wide simulation configuration, resolved in exactly one place.
//
// Every `SSAM_*` environment knob used to be read by whichever layer needed
// it (`SSAM_THREADS` in the thread pool, `SSAM_DEVICES` / `SSAM_DEVICE_PIN`
// in the device layer), which made "what is this process actually running
// with?" unanswerable without grepping. `SimConfig` collapses those knobs
// into one struct: `config_from_env()` performs all the getenv calls, and
// `config()` caches the result at first use — the lower layers
// (common/thread_pool.cpp, gpusim/device.cpp) consult the cached value for
// their defaults instead of reading the environment themselves. The
// SimServer (core/server.hpp) resolves its SimConfig once at construction
// and `describe()` renders the resolved knobs as one debuggable line.
//
// This header is deliberately dependency-free (environment + simd backend
// name only) so that lower layers can include it for their defaults without
// an include cycle; it owns no execution machinery.
#pragma once

#include <string>

namespace ssam::core {

/// How an iterative run executes. kRelaunch is the per-step path of
/// core/iterate.hpp; kPersistent is the resident-tile engine of
/// core/iterate_persistent.hpp; kAuto picks persistent for functional runs
/// long enough to amortize tile setup.
enum class IterationPolicy { kAuto, kRelaunch, kPersistent };

/// The resolved process configuration: every `SSAM_*` default in one
/// printable struct.
struct SimConfig {
  int threads = 1;        ///< host worker count (SSAM_THREADS, else hardware)
  int devices = 2;        ///< default virtual-device count (SSAM_DEVICES)
  bool device_pin = false;  ///< pin device workers to cores (SSAM_DEVICE_PIN)
  IterationPolicy policy = IterationPolicy::kAuto;  ///< default iteration policy
  const char* simd_backend = "";  ///< compiled SIMD lane backend (report only)
  /// Fault-injection plan spec (SSAM_FAULT_SPEC, empty: no injection).
  /// Parsed and armed by core::FaultInjector::global() at first use — the
  /// config layer only transports the string (core/faultinject.hpp owns the
  /// mini-language).
  std::string fault_spec;
  /// Autotuner cache file override (SSAM_TUNE_CACHE). Empty: the tuner
  /// resolves $XDG_CACHE_HOME/ssam/tune_cache.json (else ~/.cache/ssam/).
  /// The config layer only transports the path (core/autotune.hpp owns the
  /// cache format).
  std::string tune_cache;
  /// Autotuner measured-candidate count override (SSAM_TUNE_TOPK, 0: tuner
  /// default). Sanitizer CI legs pin this to 1 so instrumented tune runs
  /// stay short.
  int tune_topk = 0;

  /// One line naming every resolved knob, e.g.
  /// "threads=4 devices=2 pin=off policy=auto simd=avx2 faults=off
  /// tune_cache=default".
  [[nodiscard]] std::string describe() const;
};

/// Re-reads the environment and returns a freshly resolved SimConfig. All
/// `SSAM_*` getenv calls in the library live behind this function. Integer
/// knobs (SSAM_THREADS, SSAM_DEVICES, SSAM_TUNE_TOPK) are parsed strictly:
/// a malformed or non-positive value throws PreconditionError naming the
/// variable, like the SSAM_FAULT_SPEC grammar — never a silent fallback.
[[nodiscard]] SimConfig config_from_env();

/// The process-wide configuration, resolved from the environment once at
/// first call and cached (environment changes after that are ignored, like
/// a process opening its GPUs once).
[[nodiscard]] const SimConfig& config();

}  // namespace ssam::core
