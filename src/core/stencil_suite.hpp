// The paper's stencil benchmark suite (Table 3).
//
// Fifteen stencils: 2D stars (2d5pt..2ds25pt), 2D boxes (2d25pt..2d121pt),
// 3D stars (3d7pt, 3d13pt), 3D boxes (3d27pt, 3d125pt) and the 3D compact
// poisson operator. `fpp_paper` records the FLOP-per-point counts of
// Table 3 verbatim; `fpp_measured()` is what our one-MAD-per-tap kernels
// execute (Table 3 counts common-subexpression-optimized kernels for some
// box stencils, so the two can differ — EXPERIMENTS.md discusses this).
// Evaluation domains (Section 6.3): 8192^2 for 2D, 512^3 for 3D.
#pragma once

#include <vector>

#include "core/stencil_shape.hpp"

namespace ssam::core {

inline constexpr Index kSuiteDomain2D = 8192;
inline constexpr Index kSuiteDomain3D = 512;

template <typename T>
[[nodiscard]] std::vector<StencilShape<T>> stencil_suite() {
  std::vector<StencilShape<T>> suite;
  auto add = [&](StencilShape<T> s, const char* name, int k, int fpp) {
    s.name = name;
    s.order = k;
    s.fpp_paper = fpp;
    suite.push_back(std::move(s));
  };
  add(star2d<T>(1), "2d5pt", 1, 9);
  add(star2d<T>(2), "2d9pt", 2, 17);
  add(star2d<T>(3), "2d13pt", 3, 25);
  add(star2d<T>(4), "2d17pt", 4, 33);
  add(star2d<T>(5), "2d21pt", 5, 41);
  add(star2d<T>(6), "2ds25pt", 6, 49);
  add(box2d<T>(5, 5), "2d25pt", 2, 33);
  add(box2d<T>(8, 8), "2d64pt", 4, 73);
  add(box2d<T>(9, 9), "2d81pt", 4, 95);
  add(box2d<T>(11, 11), "2d121pt", 5, 241);
  add(star3d<T>(1), "3d7pt", 1, 13);
  add(star3d<T>(2), "3d13pt", 2, 25);
  add(box3d<T>(1), "3d27pt", 1, 30);
  add(box3d<T>(2), "3d125pt", 2, 130);
  add(poisson3d<T>(), "poisson", 1, 21);
  return suite;
}

/// Finds a suite entry by Table 3 name. Throws if absent.
template <typename T>
[[nodiscard]] StencilShape<T> suite_stencil(const std::string& name) {
  for (auto& s : stencil_suite<T>()) {
    if (s.name == name) return s;
  }
  throw PreconditionError("unknown suite stencil: " + name);
}

}  // namespace ssam::core
