// Deterministic, seeded fault injection for the fault-tolerance layer.
//
// A simulator has no cosmic rays: every failure mode beyond input
// validation has to be *planned*. A `FaultPlan` names a seed and, per
// injection site, a fault rate and a class (transient or permanent); the
// process-wide `FaultInjector` turns that plan into a reproducible decision
// stream — decision n at site s is a pure hash of (seed, s, n), so a pinned
// seed pins the fault schedule regardless of wall clock or address-space
// layout. Thread interleavings still decide which *job* absorbs which draw
// (the draw counters are shared atomics), but the rate and the
// transient/permanent mix are exact, which is what the chaos suite and the
// CI chaos job pin.
//
// Four injection sites, one per layer the service stack crosses:
//
//   site              | where it fires                              | emulates
//   ------------------|---------------------------------------------|----------
//   kWorkspaceLease   | Device workspace lease in the server's      | allocator /
//                     | dispatch op, before the engine runs         | OOM failure
//   kKernelSweep      | sweep boundary of the persistent tile state | ECC error,
//                     | machine and the relaunch sweep loop         | kernel abort
//   kHaloSend         | boundary publication between resident tiles | link fault
//   kDeviceDispatch   | server dispatch of a job onto a device      | device hang
//                     |                                             | at launch
//
// Faults surface as `FaultError` (transient or permanent per the plan) and
// always fire *between* units of real work — never mid-sweep — so an
// aborted run is torn at a tile boundary, leased workspaces unwind through
// RAII, and a retry from a snapshot reproduces the fault-free output bit
// for bit. The plan comes from `FaultInjector::set_plan` (tests) or the
// `SSAM_FAULT_SPEC` environment knob through core/config.hpp, e.g.
//
//   SSAM_FAULT_SPEC="seed=42,sweep=0.05t,lease=0.02t,dispatch=0.01p"
//
// (`<site>=<rate><t|p>`; `t` transient — the default — `p` permanent;
// optional `device=<i>` restricts faults to work attributed to one device,
// which is how the quarantine tests make one device reliably sick.)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/error.hpp"

namespace ssam::core {

enum class FaultSite : int {
  kWorkspaceLease = 0,
  kKernelSweep = 1,
  kHaloSend = 2,
  kDeviceDispatch = 3,
};

inline constexpr int kFaultSiteCount = 4;

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// What to inject: per-site rates and classes plus the seed that makes the
/// decision stream reproducible. A default-constructed plan injects nothing.
struct FaultPlan {
  struct Site {
    double rate = 0.0;      ///< probability per decision point, in [0, 1]
    bool transient = true;  ///< retrying the identical work may succeed
  };

  std::uint64_t seed = 0;
  int device = -1;  ///< -1: all devices; >= 0: only work attributed there
  std::array<Site, kFaultSiteCount> sites{};

  [[nodiscard]] const Site& site(FaultSite s) const {
    return sites[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] Site& site(FaultSite s) {
    return sites[static_cast<std::size_t>(s)];
  }

  [[nodiscard]] bool any() const {
    for (const Site& s : sites) {
      if (s.rate > 0.0) return true;
    }
    return false;
  }

  /// Parses the SSAM_FAULT_SPEC mini-language (see the header comment).
  /// Site keys: lease, sweep, halo, dispatch. Throws PreconditionError on a
  /// malformed spec — a silently ignored chaos plan would fake a green run.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// The spec back out (normalized), for SimConfig::describe.
  [[nodiscard]] std::string describe() const;
};

/// A planned fault. `transient()` tells the server's retry policy whether
/// the identical attempt is worth re-running.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultSite site, bool transient, const std::string& what)
      : std::runtime_error(what), site_(site), transient_(transient) {}

  [[nodiscard]] FaultSite site() const { return site_; }
  [[nodiscard]] bool transient() const { return transient_; }

 private:
  FaultSite site_;
  bool transient_;
};

/// The process-wide injector. Decisions are lock-free (one relaxed
/// fetch_add + one hash per decision point) and the disabled path is a
/// single relaxed load, so the non-faulting hot path pays nothing
/// measurable. `set_plan` must only be called while no injected work is in
/// flight (tests and the config bootstrap do; there is no torn-plan
/// detection by design — the injector is a test harness, not a control
/// plane).
class FaultInjector {
 public:
  /// The global injector, armed at first use from the resolved SimConfig's
  /// SSAM_FAULT_SPEC (empty spec: disarmed).
  [[nodiscard]] static FaultInjector& global();

  void set_plan(const FaultPlan& plan);
  void disarm() { set_plan(FaultPlan{}); }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// One decision point at `site` for work attributed to `device` (-1:
  /// global pool / unattributed). Deterministic in the per-site decision
  /// index; counts every injection.
  [[nodiscard]] bool should_inject(FaultSite site, int device = -1);

  /// should_inject, throwing FaultError when the decision fires.
  void maybe_throw(FaultSite site, int device, const char* what) {
    if (should_inject(site, device)) {
      throw FaultError(site, plan_.site(site).transient,
                       std::string("injected fault at ") + fault_site_name(site) +
                           ": " + what);
    }
  }

  [[nodiscard]] std::uint64_t injected(FaultSite site) const {
    return injected_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injected_total() const {
    std::uint64_t n = 0;
    for (const auto& c : injected_) n += c.load(std::memory_order_relaxed);
    return n;
  }

 private:
  FaultPlan plan_;
  std::atomic<bool> enabled_{false};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> draws_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected_{};
};

}  // namespace ssam::core
