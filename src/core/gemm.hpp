// GEMM on SSAM — the compute-bound extension the paper sketches in
// Section 3.3 ("SSAM, in general, is not limited to memory-bound kernels and
// could be extended to compute bound kernels, such as GEMM").
//
// Mapping: a warp owns a 32-wide column strip of C and P rows at a time
// (register-cached accumulators = X/Y). The dependency graph D is the
// operand *broadcast* chain: a coalesced load pulls 32 consecutive A values
// into the warp once per 32 k-steps, and each step broadcasts one of them to
// all lanes with a shuffle — the same register-to-register systolic motion,
// with ctrl() selecting the source PE. B rows stream coalesced per k.
#pragma once

#include "core/kernel_common.hpp"
#include "gpusim/stream.hpp"

namespace ssam::core {

struct GemmOptions {
  int p = 4;  ///< rows of C per warp iteration (register accumulators)
};

[[nodiscard]] inline int gemm_ssam_regs(int p) { return p + 18; }

namespace detail {

struct GemmSetup {
  sim::LaunchConfig cfg;
  Index m = 0;
  Index k = 0;
  Index n = 0;
  int warps = 0;
  int p = 0;
};

template <typename T>
[[nodiscard]] GemmSetup gemm_setup(const GridView2D<const T>& a,
                                   const GridView2D<const T>& b,
                                   const GridView2D<T>& c, const GemmOptions& opt) {
  GemmSetup s;
  s.m = a.height();
  s.k = a.width();
  s.n = b.width();
  SSAM_REQUIRE(b.height() == s.k && c.width() == s.n && c.height() == s.m,
               "gemm extent mismatch");
  constexpr int kBlockThreads = 128;
  s.warps = kBlockThreads / sim::kWarpSize;
  s.p = opt.p;
  SSAM_REQUIRE(s.p >= 1 && s.p <= kMaxOutputsPerThread,
               "accumulator rows per warp exceed the inline bound");
  s.cfg.grid =
      Dim3{static_cast<int>(ceil_div(s.n, sim::kWarpSize)),
           static_cast<int>(ceil_div(s.m, static_cast<long long>(s.warps) * s.p)), 1};
  s.cfg.block_threads = kBlockThreads;
  s.cfg.regs_per_thread = gemm_ssam_regs(s.p);
  return s;
}

/// Mode-generic GEMM body; views captured by value, stream-safe.
template <typename T>
[[nodiscard]] auto make_gemm_body(const GemmSetup& s, GridView2D<const T> a,
                                  GridView2D<const T> b, GridView2D<T> c) {
  const Index m = s.m;
  const Index k = s.k;
  const Index n = s.n;
  const int warps = s.warps;
  const int p = s.p;
  return [=](auto& blk) {
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      const Index j0 = static_cast<Index>(blk.id().x) * sim::kWarpSize;  // C columns
      const Index i0 = (static_cast<Index>(blk.id().y) * warps + w) * p;  // C rows
      if (j0 >= n || i0 >= m) continue;
      Pred col_ok = wc.cmp_lt(wc.template iota<Index>(j0, 1), n);

      InlineVec<Reg<T>, kMaxOutputsPerThread> acc(p);
      for (int r = 0; r < p; ++r) acc[r] = wc.uniform(T{});

      for (Index kk = 0; kk < k; kk += sim::kWarpSize) {
        const int steps = static_cast<int>(std::min<Index>(sim::kWarpSize, k - kk));
        // One coalesced A load per row of the register tile per 32 k-steps.
        InlineVec<Reg<T>, kMaxOutputsPerThread> a_vec(p);
        Pred k_ok = wc.cmp_lt(wc.template iota<Index>(kk, 1), k);
        for (int r = 0; r < p; ++r) {
          const Index row = std::min<Index>(i0 + r, m - 1);
          a_vec[r] =
              wc.load_global(a.data(), wc.template iota<Index>(row * a.pitch() + kk, 1), &k_ok);
        }
        for (int s = 0; s < steps; ++s) {
          // B(kk+s, j0 + lane): coalesced stream of one B row segment.
          const Reg<T> b_row = wc.load_global(
              b.data(), wc.template iota<Index>((kk + s) * b.pitch() + j0, 1), &col_ok);
          for (int r = 0; r < p; ++r) {
            // Systolic broadcast: lane s's cached A value to all lanes.
            const Reg<T> a_bc =
                wc.shfl_idx(sim::kFullMask, a_vec[r], s);
            acc[r] =
                wc.mad(b_row, a_bc, acc[r]);
          }
        }
      }
      for (int r = 0; r < p; ++r) {
        const Index row = i0 + r;
        if (row >= m) break;
        wc.store_global(c.data(), wc.template iota<Index>(row * c.pitch() + j0, 1),
                        acc[r], &col_ok);
      }
    }
  };
}

}  // namespace detail

/// C(MxN) = A(MxK) * B(KxN), row-major, all dense.
template <typename T>
KernelStats gemm_ssam(const sim::ArchSpec& arch, const GridView2D<const T>& a,
                      const GridView2D<const T>& b, GridView2D<T> c,
                      const GemmOptions& opt = {}, ExecMode mode = ExecMode::kFunctional,
                      SampleSpec sample = {}) {
  const detail::GemmSetup s = detail::gemm_setup(a, b, c, opt);
  auto body = detail::make_gemm_body<T>(s, a, b, c);
  return sim::launch(arch, s.cfg, body, mode, sample);
}

/// Enqueues the GEMM on `stream`; A/B/C storage must outlive synchronization.
template <typename T>
sim::Event gemm_ssam_async(sim::Stream& stream, const sim::ArchSpec& arch,
                           const GridView2D<const T>& a, const GridView2D<const T>& b,
                           GridView2D<T> c, const GemmOptions& opt = {}) {
  const detail::GemmSetup s = detail::gemm_setup(a, b, c, opt);
  return stream.launch(arch, s.cfg, detail::make_gemm_body<T>(s, a, b, c));
}

/// Scalar reference for tests.
template <typename T>
void gemm_reference(const GridView2D<const T>& a, const GridView2D<const T>& b,
                    GridView2D<T> c) {
  for (Index i = 0; i < c.height(); ++i) {
    for (Index j = 0; j < c.width(); ++j) {
      T acc{};
      for (Index kk = 0; kk < a.width(); ++kk) acc += a.at(kk, i) * b.at(j, kk);
      c.at(j, i) = acc;
    }
  }
}

}  // namespace ssam::core
