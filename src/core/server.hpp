// Multi-tenant simulation service: a batched job scheduler over the
// virtual DeviceGroup, with fault-tolerant execution.
//
// The engine layers below optimize ONE large resident workload; the
// ROADMAP's "millions of users" north star means thousands of *small
// independent* jobs in flight. `SimServer` is that front door: clients
// submit `SimJob`s (core/job.hpp) from any thread and get a `JobFuture`;
// the server schedules accepted jobs onto the devices of a DeviceGroup
// (gpusim/device.hpp).
//
// Scheduling, three layers:
//
//  * Admission control — at most `max_pending` queued jobs; beyond that a
//    submit is rejected immediately (the future reports kRejected) instead
//    of growing an unbounded backlog. With `shed_on_deadline`, a job whose
//    predicted execution time (perfmodel/latency_model.hpp units scaled by
//    observed job timings) already exceeds its deadline is also rejected at
//    the door — shedding work that would be cancelled anyway keeps the
//    queue for jobs that can still make it.
//  * Per-tenant weighted fair queuing (start-time fair queuing): each
//    tenant has a FIFO and a weight; a job's finish tag is
//    max(vtime, tenant_last) + cost / (weight * (1 + priority)), cost
//    being cells x sweeps. The dispatcher always starts the queued job
//    with the smallest tag and advances virtual time to that job's
//    *start* tag (classic SFQ), so a heavy tenant cannot starve a light
//    one beyond its weight share, and a tenant going active right after
//    a huge dispatch is not charged for work it never saw.
//  * Device packing — a dispatched job goes to the least-loaded *healthy*
//    device with a free slot (`max_in_flight_per_device`); small grids
//    (< `small_job_cells`) go to the device's stream 0, the shared batch
//    lane, where consecutive small ops run back-to-back on one worker
//    without fork/join (PR 2's small-grid batching, now cross-job); large
//    jobs round-robin the remaining streams.
//
// Fault tolerance (subsystem 7, docs/architecture.md):
//
//  * Cancellation — every accepted job carries a live CancelToken
//    (JobFuture::cancel); queued work is fulfilled kCancelled at the next
//    pump, running work unwinds cooperatively at the engines' sweep
//    boundaries.
//  * Deadlines — `SimJob::deadline_ms` is enforced by a watchdog thread
//    that cancels overdue work, queued or running, with a
//    deadline-exceeded error.
//  * Retry — an attempt that dies of a *transient* fault (ECC-style, see
//    core/faultinject.hpp) is re-queued with bounded exponential backoff,
//    up to `max_attempts` total; inputs are restored from a snapshot taken
//    at submit (only when the fault injector is armed, so the non-faulting
//    path stays copy-free), making a retried job bit-identical to a
//    fault-free run.
//  * Quarantine — `quarantine_after` consecutive faulted attempts on one
//    device mark it unhealthy: the packer stops routing jobs there (queued
//    work migrates to healthy devices automatically, since devices are
//    picked at dispatch time) and the watchdog sends periodic probe jobs;
//    a clean probe reinstates the device. The last healthy device is never
//    quarantined — degraded service beats no service.
//
// Execution reuses the whole existing stack: each dispatch is one host op
// on a device stream, running `run_job` device-pinned with a workspace
// leased from the device's warm arena pool (no per-job arena carving
// after the first wave). Completion is callback-driven via
// `Event::on_ready` — no blocked waiter threads — and fulfils the job's
// future, frees the device slot, and pumps the queue again. Outputs are
// bit-identical to calling `run_job` directly (the determinism invariant
// the server tests pin with golden hashes).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "core/config.hpp"
#include "core/job.hpp"
#include "gpusim/device.hpp"

namespace ssam::core {

struct ServerOptions {
  /// Simulated architecture jobs run on. Null: sim::tesla_v100().
  const sim::ArchSpec* arch = nullptr;
  /// Device count. 0: the resolved SimConfig's `devices`.
  int devices = 0;
  /// Explicit group (bench/test hook). Null: DeviceGroup::shared(devices).
  sim::DeviceGroup* group = nullptr;
  /// Streams per device: stream 0 is the shared small-job batch lane, the
  /// rest take large jobs round-robin. At 1 everything shares stream 0.
  int streams_per_device = 2;
  /// Job slots per device; dispatch stalls (jobs stay queued) when every
  /// device is full.
  int max_in_flight_per_device = 2;
  /// Admission control: queued-job cap beyond which submits are rejected.
  std::size_t max_pending = 1024;
  /// Jobs under this many cells ride the batch lane.
  Index small_job_cells = Index{1} << 14;
  /// Accept submissions but dispatch nothing until resume() — lets tests
  /// build a backlog and observe pure scheduling order.
  bool start_paused = false;

  // ---- fault tolerance & deadlines ----
  /// Total execution attempts per job (>= 1). Only attempts killed by a
  /// *transient* fault are retried; permanent faults and real errors fail
  /// the job on the spot.
  int max_attempts = 3;
  /// First retry waits this long; each further retry doubles it, capped at
  /// `retry_backoff_max_ms`. The watchdog releases due retries.
  double retry_backoff_ms = 1.0;
  double retry_backoff_max_ms = 64.0;
  /// Consecutive faulted attempts on one device before it is quarantined.
  int quarantine_after = 3;
  /// Cadence of probe jobs sent to a quarantined device; a clean probe
  /// reinstates it.
  double probe_interval_ms = 50.0;
  /// Watchdog wake period (deadline checks, retry release, probes). The
  /// effective deadline/backoff resolution.
  double watchdog_period_ms = 5.0;
  /// Admission-sheds jobs whose predicted execution time exceeds their
  /// deadline (kRejected with a deadline-unmeetable error). Off by
  /// default: deadline-free workloads never shed.
  bool shed_on_deadline = false;
  /// Milliseconds per latency-model unit for shed prediction. 0: learned
  /// online (EWMA over completed jobs' exec_ms / model units). Tests pin
  /// this for deterministic shedding decisions.
  double shed_calibration_ms_per_unit = 0.0;
};

/// The multi-tenant simulation service. Thread-safe; destruction drains.
class SimServer {
 public:
  explicit SimServer(ServerOptions opt = {});
  ~SimServer();

  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Submits a job from any thread. Always returns a valid future: on
  /// admission it completes when the job does; on rejection it is already
  /// fulfilled with kRejected. The job's grids must stay alive (and
  /// unread) until the future reports. Discarding the future orphans the
  /// job's result AND its cancellation handle — hence [[nodiscard]].
  [[nodiscard]] JobFuture submit(SimJob job);

  /// Starts dispatching (no-op unless start_paused or paused earlier).
  void resume();

  /// Blocks until every accepted job has reached a terminal status and no
  /// probe is in flight (resumes first, so a paused backlog cannot
  /// deadlock the caller).
  void drain();

  /// Sets a tenant's fair-queuing weight (default 1.0; must be > 0).
  void set_tenant_weight(int tenant, double weight);

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  ///< dispatched jobs that reached a terminal status
    std::uint64_t rejected = 0;   ///< admission refusals (queue full + shed)
    std::uint64_t shed = 0;       ///< subset of rejected: deadline-unmeetable
    std::uint64_t failed = 0;     ///< completed with kFailed (subset of completed)
    std::uint64_t cancelled = 0;  ///< kCancelled futures (user cancel or deadline)
    std::uint64_t retries = 0;    ///< execution attempts beyond each job's first
    std::uint64_t faulted_attempts = 0;  ///< attempts killed by an injected fault
    std::uint64_t quarantines = 0;       ///< device quarantine transitions
    std::uint64_t probes = 0;            ///< probe jobs launched
    std::uint64_t reinstated = 0;        ///< quarantine exits (clean probe)
    int devices = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// One device's health as the scheduler sees it.
  struct DeviceHealth {
    bool quarantined = false;
    int consecutive_faults = 0;      ///< faulted attempts since the last success
    std::uint64_t faults = 0;        ///< faulted attempts attributed here, ever
    std::uint64_t quarantines = 0;   ///< times this device was quarantined
    std::uint64_t probes = 0;        ///< probe jobs sent here
  };
  [[nodiscard]] DeviceHealth device_health(int device) const;

  /// The resolved process config the server was built against.
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const sim::ArchSpec& arch() const { return *arch_; }
  [[nodiscard]] sim::DeviceGroup& group() { return *group_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending;
  struct Tenant;
  /// Deadline bookkeeping for a dispatched job (watchdog cancel target).
  struct RunningJob {
    std::shared_ptr<detail::JobState> state;
    Clock::time_point deadline;
  };
  /// Internal per-device health: the public view plus probe scheduling.
  struct Health : DeviceHealth {
    Clock::time_point next_probe{};
    bool probe_in_flight = false;
  };
  /// Tiny resident grids a quarantined device's probe jobs run over.
  struct ProbeRig;

  void pump();  // dispatch until stalled (lock taken inside)
  // Dispatch loop body; requires `lock` held on m_, returns with it held.
  // Single-owner: concurrent/re-entrant calls return immediately and the
  // owning thread re-examines the queue on its next lap.
  void pump_locked(std::unique_lock<std::mutex>& lock);
  void watchdog_main();
  // Moves due entries of retry_q_ back to their tenant queues. Lock held.
  bool promote_due_retries_locked(Clock::time_point now);
  void launch_probe(int device);  // called WITHOUT m_ held
  // Latency-model work units of a job (perfmodel/latency_model.hpp per-
  // element latency x cells x sweeps) — the shed predictor's x-axis.
  [[nodiscard]] double model_units(const SimJob& job) const;
  [[nodiscard]] bool idle_locked() const;

  ServerOptions opt_;
  SimConfig config_;
  const sim::ArchSpec* arch_;
  sim::DeviceGroup* group_;

  mutable std::mutex m_;
  std::condition_variable idle_cv_;
  bool paused_ = false;
  bool pumping_ = false;  // a thread owns the dispatch loop; drain() waits it out
  double vtime_ = 0.0;                    // fair-queuing virtual time
  std::map<int, Tenant> tenants_;
  std::size_t queued_ = 0;                // admitted, not dispatched (incl. retry_q_)
  std::vector<int> in_flight_;            // dispatched jobs per device
  std::vector<int> next_big_stream_;      // round-robin cursor per device
  std::vector<Health> health_;            // per-device quarantine state
  std::vector<Pending> retry_q_;          // attempts waiting out their backoff
  std::vector<RunningJob> running_;       // dispatched deadline jobs
  std::vector<std::unique_ptr<ProbeRig>> probe_rigs_;
  int probes_active_ = 0;
  double ewma_ms_per_unit_ = 0.0;         // learned shed calibration
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t faulted_attempts_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t reinstated_ = 0;
  std::shared_ptr<std::atomic<std::uint64_t>> completion_seq_;

  // Watchdog thread: deadline cancels, retry release, quarantine probes.
  // Started in the constructor, joined (after a first drain) in the
  // destructor; stopping_ is guarded by m_.
  bool stopping_ = false;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_;

  // Event streams that can storm under sustained fault injection report
  // through rate limiters — one line plus a suppressed count, not a flood.
  LogRateLimiter warn_deadline_{std::chrono::milliseconds(500)};
  LogRateLimiter warn_quarantine_{std::chrono::milliseconds(500)};
};

}  // namespace ssam::core
