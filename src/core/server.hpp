// Multi-tenant simulation service: a batched job scheduler over the
// virtual DeviceGroup.
//
// The engine layers below optimize ONE large resident workload; the
// ROADMAP's "millions of users" north star means thousands of *small
// independent* jobs in flight. `SimServer` is that front door: clients
// submit `SimJob`s (core/job.hpp) from any thread and get a `JobFuture`;
// the server schedules accepted jobs onto the devices of a DeviceGroup
// (gpusim/device.hpp).
//
// Scheduling, three layers:
//
//  * Admission control — at most `max_pending` queued jobs; beyond that a
//    submit is rejected immediately (the future reports kRejected) instead
//    of growing an unbounded backlog.
//  * Per-tenant weighted fair queuing (start-time fair queuing): each
//    tenant has a FIFO and a weight; a job's finish tag is
//    max(vtime, tenant_last) + cost / (weight * (1 + priority)), cost
//    being cells x sweeps. The dispatcher always starts the queued job
//    with the smallest tag and advances virtual time to that job's
//    *start* tag (classic SFQ), so a heavy tenant cannot starve a light
//    one beyond its weight share, and a tenant going active right after
//    a huge dispatch is not charged for work it never saw.
//  * Device packing — a dispatched job goes to the least-loaded device
//    with a free slot (`max_in_flight_per_device`); small grids
//    (< `small_job_cells`) go to the device's stream 0, the shared batch
//    lane, where consecutive small ops run back-to-back on one worker
//    without fork/join (PR 2's small-grid batching, now cross-job); large
//    jobs round-robin the remaining streams.
//
// Execution reuses the whole existing stack: each dispatch is one host op
// on a device stream, running `run_job` device-pinned with a workspace
// leased from the device's warm arena pool (no per-job arena carving
// after the first wave). Completion is callback-driven via
// `Event::on_ready` — no blocked waiter threads — and fulfils the job's
// future, frees the device slot, and pumps the queue again. Outputs are
// bit-identical to calling `run_job` directly (the determinism invariant
// the server tests pin with golden hashes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/job.hpp"
#include "gpusim/device.hpp"

namespace ssam::core {

struct ServerOptions {
  /// Simulated architecture jobs run on. Null: sim::tesla_v100().
  const sim::ArchSpec* arch = nullptr;
  /// Device count. 0: the resolved SimConfig's `devices`.
  int devices = 0;
  /// Explicit group (bench/test hook). Null: DeviceGroup::shared(devices).
  sim::DeviceGroup* group = nullptr;
  /// Streams per device: stream 0 is the shared small-job batch lane, the
  /// rest take large jobs round-robin. At 1 everything shares stream 0.
  int streams_per_device = 2;
  /// Job slots per device; dispatch stalls (jobs stay queued) when every
  /// device is full.
  int max_in_flight_per_device = 2;
  /// Admission control: queued-job cap beyond which submits are rejected.
  std::size_t max_pending = 1024;
  /// Jobs under this many cells ride the batch lane.
  Index small_job_cells = Index{1} << 14;
  /// Accept submissions but dispatch nothing until resume() — lets tests
  /// build a backlog and observe pure scheduling order.
  bool start_paused = false;
};

/// The multi-tenant simulation service. Thread-safe; destruction drains.
class SimServer {
 public:
  explicit SimServer(ServerOptions opt = {});
  ~SimServer();

  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Submits a job from any thread. Always returns a valid future: on
  /// admission it completes when the job does; on rejection it is already
  /// fulfilled with kRejected. The job's grids must stay alive (and
  /// unread) until the future reports.
  JobFuture submit(SimJob job);

  /// Starts dispatching (no-op unless start_paused or paused earlier).
  void resume();

  /// Blocks until every accepted job has completed (resumes first, so a
  /// paused backlog cannot deadlock the caller).
  void drain();

  /// Sets a tenant's fair-queuing weight (default 1.0; must be > 0).
  void set_tenant_weight(int tenant, double weight);

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t failed = 0;  ///< completed with kFailed (subset of completed)
    int devices = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// The resolved process config the server was built against.
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const sim::ArchSpec& arch() const { return *arch_; }
  [[nodiscard]] sim::DeviceGroup& group() { return *group_; }

 private:
  struct Pending;
  struct Tenant;

  void pump();  // dispatch until stalled (lock taken inside)
  // Dispatch loop body; requires `lock` held on m_, returns with it held.
  // Single-owner: concurrent/re-entrant calls return immediately and the
  // owning thread re-examines the queue on its next lap.
  void pump_locked(std::unique_lock<std::mutex>& lock);

  ServerOptions opt_;
  SimConfig config_;
  const sim::ArchSpec* arch_;
  sim::DeviceGroup* group_;

  mutable std::mutex m_;
  std::condition_variable idle_cv_;
  bool paused_ = false;
  bool pumping_ = false;  // a thread owns the dispatch loop; drain() waits it out
  double vtime_ = 0.0;                    // fair-queuing virtual time
  std::map<int, Tenant> tenants_;
  std::size_t queued_ = 0;                // jobs admitted, not yet dispatched
  std::vector<int> in_flight_;            // dispatched jobs per device
  std::vector<int> next_big_stream_;      // round-robin cursor per device
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t failed_ = 0;
  std::shared_ptr<std::atomic<std::uint64_t>> completion_seq_;
};

}  // namespace ssam::core
