// SSAM 3D convolution — the paper's stated future work (Section 9: "we plan
// to apply our model to 3D/4D convolution workload for accelerating deep
// learning training").
//
// A dense M x N x K filter is exactly a box stencil whose coefficients are
// the filter weights, so the 3D convolution rides the Section 4.9 machinery:
// per-plane systolic sweeps, shared memory only for the inter-warp z
// combination, overlapped blocking in all three dimensions. DNN-style
// filters (3^3, 5^3) are small enough to travel as immediates baked into
// the systolic plan, like stencil coefficients (Section 4.8).
#pragma once

#include <span>

#include "core/stencil3d.hpp"
#include "core/stencil3d_temporal.hpp"

namespace ssam::core {

/// Builds the tap set of a dense 3D filter: weights stored row-major as
/// w[(k*N + n)*M + m] with x fastest, centered like the 2D convention.
template <typename T>
[[nodiscard]] StencilShape<T> conv3d_shape(std::span<const T> weights, int filter_m,
                                           int filter_n, int filter_k) {
  SSAM_REQUIRE(static_cast<Index>(weights.size()) ==
                   static_cast<Index>(filter_m) * filter_n * filter_k,
               "conv3d weight count mismatch");
  const int cx = (filter_m - 1) / 2;
  const int cy = (filter_n - 1) / 2;
  const int cz = (filter_k - 1) / 2;
  StencilShape<T> s;
  s.name = "conv3d-" + std::to_string(filter_m) + "x" + std::to_string(filter_n) + "x" +
           std::to_string(filter_k);
  s.dims = 3;
  s.order = std::max({cx, cy, cz});
  for (int k = 0; k < filter_k; ++k) {
    for (int n = 0; n < filter_n; ++n) {
      for (int m = 0; m < filter_m; ++m) {
        s.taps.push_back({m - cx, n - cy, k - cz,
                          weights[static_cast<std::size_t>((k * filter_n + n) * filter_m + m)]});
      }
    }
  }
  return s;
}

/// 3D convolution with replicate borders on the SSAM 3D kernel.
template <typename T>
KernelStats conv3d_ssam(const sim::ArchSpec& arch, const GridView3D<const T>& in,
                        std::span<const T> weights, int filter_m, int filter_n,
                        int filter_k, GridView3D<T> out, const Stencil3DOptions& opt = {},
                        ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  const StencilShape<T> shape = conv3d_shape(weights, filter_m, filter_n, filter_k);
  return stencil3d_ssam(arch, in, build_plan(shape.taps), out, opt, mode, sample);
}

}  // namespace ssam::core
