// SSAM 2D convolution (paper Section 4.1–4.7, Listing 1).
//
// One warp computes a (WarpSize - M + 1) x P output tile:
//   1. filter weights -> shared memory (cooperative, broadcast-read later);
//   2. a WarpSize x C register-cache tile is loaded with coalesced reads
//      (C = P + N - 1, Equation 3);
//   3. for each sliding-window step i and each filter column m, every lane
//      computes an N-tap partial sum with MADs against the broadcast filter
//      column, shuffling the partial sum one lane to the right between
//      columns (Figure 2);
//   4. lanes M-1..31 hold finished outputs and store them coalesced.
// Borders replicate (NPP FilterBorder semantics).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/grid.hpp"
#include "core/kernel_common.hpp"
#include "gpusim/stream.hpp"
#include "rcache/blocking.hpp"
#include "rcache/register_cache.hpp"

namespace ssam::core {

/// Tunables of the SSAM convolution kernel. Paper defaults: P=4, B=128.
struct ConvOptions {
  int p = 4;              ///< sliding-window outputs per thread
  int block_threads = 128;
};

/// Registers/thread the kernel needs (drives simulated occupancy): the
/// register cache (C), the P accumulators, and bookkeeping.
[[nodiscard]] inline int conv2d_ssam_regs(int filter_n, int p) {
  return (p + filter_n - 1) + p + 12;
}

namespace detail {

/// Validated geometry + launch config shared by the sync and async entry
/// points.
struct Conv2dSetup {
  Blocking2D geom;
  sim::LaunchConfig cfg;
  int m = 0;
  int n = 0;
  int cx = 0;
  int cy = 0;
  Index width = 0;
  Index height = 0;
};

template <typename T>
[[nodiscard]] Conv2dSetup conv2d_setup(const GridView2D<const T>& in,
                                       std::size_t weight_count, int filter_m,
                                       int filter_n, const ConvOptions& opt) {
  SSAM_REQUIRE(filter_m >= 1 && filter_n >= 1, "filter extents must be positive");
  SSAM_REQUIRE(filter_m <= sim::kWarpSize, "filter wider than a warp");
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  SSAM_REQUIRE(static_cast<Index>(weight_count) ==
                   static_cast<Index>(filter_m) * filter_n,
               "weight count mismatch");
  Conv2dSetup s;
  s.m = filter_m;
  s.n = filter_n;
  s.cx = (filter_m - 1) / 2;
  s.cy = (filter_n - 1) / 2;
  s.width = in.width();
  s.height = in.height();
  s.geom.span = s.m - 1;
  s.geom.dx_min = -s.cx;
  s.geom.rows_halo = s.n - 1;
  s.geom.p = opt.p;
  s.geom.block_threads = opt.block_threads;
  s.cfg.grid = s.geom.grid(s.width, s.height);
  s.cfg.block_threads = opt.block_threads;
  s.cfg.regs_per_thread = conv2d_ssam_regs(s.n, opt.p);
  return s;
}

/// Mode-generic conv2d body. Every capture is by value (views, geometry, the
/// raw weight pointer) so the identical body serves synchronous launches and
/// stream ops that outlive the caller's frame.
template <typename T>
[[nodiscard]] auto make_conv2d_body(const Conv2dSetup& s, GridView2D<const T> in,
                                    const T* wgt, GridView2D<T> out) {
  const Blocking2D geom = s.geom;
  const int m = s.m;
  const int n = s.n;
  const int cx = s.cx;
  const int cy = s.cy;
  const Index width = s.width;
  const Index height = s.height;
  return [=](auto& blk) {
    // Step 1 (Listing 1 lines 9-12): weights to shared memory.
    Smem<T> smem = blk.template alloc_smem<T>(m * n);
    cooperative_load_to_smem(blk, wgt, smem, m * n);

    for (int w = 0; w < blk.warp_count(); ++w) {
      auto& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;  // fully out of range warp
      const Index row0 = geom.top_row(blk.id().y, cy);

      // Step 2 (lines 13-14): register cache fill.
      auto rc = make_register_cache<T>(wc, geom.c());
      rc.load_rows(in, col0, row0);

      // Step 3 (lines 16-29): sliding window of P partial-sum sweeps.
      InlineVec<Reg<T>, kMaxOutputsPerThread> result(geom.p);
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sum = wc.uniform(T{});
        for (int fm = 0; fm < m; ++fm) {
          if (fm > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
          for (int fn = 0; fn < n; ++fn) {
            sum = wc.mad_broadcast(rc.row(i + fn), smem, fn * m + fm, sum);
          }
        }
        result[i] = sum;
      }

      // Step 4 (lines 30-31): lanes >= M-1 store valid outputs.
      store_valid_rows(wc, out, col0 - (m - 1) + cx,
                       static_cast<Index>(blk.id().y) * geom.p, geom.p, m - 1,
                       [&](int i) -> const Reg<T>& { return result[i]; });
    }
  };
}

}  // namespace detail

/// Launches the SSAM convolution of `in` (W x H) with an M x N filter
/// stored row-major (w[n*M + m]). Functional mode fills `out` completely;
/// timing mode executes a sampled subset of blocks (outputs of unsampled
/// blocks are left untouched) and returns extrapolated statistics.
template <typename T>
KernelStats conv2d_ssam(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                        std::span<const T> weights, int filter_m, int filter_n,
                        GridView2D<T> out, const ConvOptions& opt = {},
                        ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  const detail::Conv2dSetup s =
      detail::conv2d_setup(in, weights.size(), filter_m, filter_n, opt);
  auto body = detail::make_conv2d_body<T>(s, in, weights.data(), out);
  return sim::launch(arch, s.cfg, body, mode, sample);
}

/// Enqueues the convolution on `stream` and returns immediately. The weights
/// are copied into the op; `in`/`out` storage (and `arch`) must stay alive
/// until the stream or returned event is synchronized.
template <typename T>
sim::Event conv2d_ssam_async(sim::Stream& stream, const sim::ArchSpec& arch,
                             const GridView2D<const T>& in, std::span<const T> weights,
                             int filter_m, int filter_n, GridView2D<T> out,
                             const ConvOptions& opt = {}) {
  const detail::Conv2dSetup s =
      detail::conv2d_setup(in, weights.size(), filter_m, filter_n, opt);
  auto owned = std::make_shared<std::vector<T>>(weights.begin(), weights.end());
  auto body = detail::make_conv2d_body<T>(s, in, owned->data(), out);
  return stream.launch(arch, s.cfg,
                       [owned, body](auto& blk) { body(blk); });
}

}  // namespace ssam::core
