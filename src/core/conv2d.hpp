// SSAM 2D convolution (paper Section 4.1–4.7, Listing 1).
//
// One warp computes a (WarpSize - M + 1) x P output tile:
//   1. filter weights -> shared memory (cooperative, broadcast-read later);
//   2. a WarpSize x C register-cache tile is loaded with coalesced reads
//      (C = P + N - 1, Equation 3);
//   3. for each sliding-window step i and each filter column m, every lane
//      computes an N-tap partial sum with MADs against the broadcast filter
//      column, shuffling the partial sum one lane to the right between
//      columns (Figure 2);
//   4. lanes M-1..31 hold finished outputs and store them coalesced.
// Borders replicate (NPP FilterBorder semantics).
#pragma once

#include <span>

#include "common/grid.hpp"
#include "core/kernel_common.hpp"
#include "rcache/blocking.hpp"
#include "rcache/register_cache.hpp"

namespace ssam::core {

/// Tunables of the SSAM convolution kernel. Paper defaults: P=4, B=128.
struct ConvOptions {
  int p = 4;              ///< sliding-window outputs per thread
  int block_threads = 128;
};

/// Registers/thread the kernel needs (drives simulated occupancy): the
/// register cache (C), the P accumulators, and bookkeeping.
[[nodiscard]] inline int conv2d_ssam_regs(int filter_n, int p) {
  return (p + filter_n - 1) + p + 12;
}

/// Launches the SSAM convolution of `in` (W x H) with an M x N filter
/// stored row-major (w[n*M + m]). Functional mode fills `out` completely;
/// timing mode executes a sampled subset of blocks (outputs of unsampled
/// blocks are left untouched) and returns extrapolated statistics.
template <typename T>
KernelStats conv2d_ssam(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                        std::span<const T> weights, int filter_m, int filter_n,
                        GridView2D<T> out, const ConvOptions& opt = {},
                        ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  SSAM_REQUIRE(filter_m >= 1 && filter_n >= 1, "filter extents must be positive");
  SSAM_REQUIRE(filter_m <= sim::kWarpSize, "filter wider than a warp");
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  SSAM_REQUIRE(static_cast<Index>(weights.size()) ==
                   static_cast<Index>(filter_m) * filter_n,
               "weight count mismatch");
  const int m = filter_m;
  const int n = filter_n;
  const int cx = (m - 1) / 2;
  const int cy = (n - 1) / 2;
  const Index width = in.width();
  const Index height = in.height();

  Blocking2D geom;
  geom.span = m - 1;
  geom.dx_min = -cx;
  geom.rows_halo = n - 1;
  geom.p = opt.p;
  geom.block_threads = opt.block_threads;

  sim::LaunchConfig cfg;
  cfg.grid = geom.grid(width, height);
  cfg.block_threads = opt.block_threads;
  cfg.regs_per_thread = conv2d_ssam_regs(n, opt.p);

  const T* wgt = weights.data();
  auto body = [&, m, n, cx, cy, width, height, geom, wgt](auto& blk) {
    // Step 1 (Listing 1 lines 9-12): weights to shared memory.
    Smem<T> smem = blk.template alloc_smem<T>(m * n);
    cooperative_load_to_smem(blk, wgt, smem, m * n);

    for (int w = 0; w < blk.warp_count(); ++w) {
      auto& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;  // fully out of range warp
      const Index row0 = geom.top_row(blk.id().y, cy);

      // Step 2 (lines 13-14): register cache fill.
      auto rc = make_register_cache<T>(wc, geom.c());
      rc.load_rows(in, col0, row0);

      // Step 3 (lines 16-29): sliding window of P partial-sum sweeps.
      InlineVec<Reg<T>, kMaxOutputsPerThread> result(geom.p);
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sum = wc.uniform(T{});
        for (int fm = 0; fm < m; ++fm) {
          if (fm > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
          for (int fn = 0; fn < n; ++fn) {
            sum = wc.mad_broadcast(rc.row(i + fn), smem, fn * m + fm, sum);
          }
        }
        result[i] = sum;
      }

      // Step 4 (lines 30-31): lanes >= M-1 store valid outputs.
      store_valid_rows(wc, out, col0 - (m - 1) + cx,
                       static_cast<Index>(blk.id().y) * geom.p, geom.p, m - 1,
                       [&](int i) -> const Reg<T>& { return result[i]; });
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::core
