// Stencil shapes of the paper's benchmark suite (Table 3) and factories for
// the standard star/box families.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "reference/stencil.hpp"

namespace ssam::core {

/// A named stencil: taps plus suite metadata.
template <typename T>
struct StencilShape {
  std::string name;
  int order = 1;       ///< k in Table 3
  int dims = 2;        ///< 2 or 3
  int fpp_paper = 0;   ///< FLOP-per-point as counted by the paper's Table 3
  std::vector<ref::Tap<T>> taps;

  /// FLOPs per point of our mul-per-tap implementation (2*taps - 1).
  [[nodiscard]] int fpp_measured() const { return 2 * static_cast<int>(taps.size()) - 1; }
};

namespace detail {
/// Deterministic, slightly asymmetric coefficients that sum to ~1 so that
/// iterated stencils stay bounded and symmetric indexing bugs are caught.
template <typename T>
void assign_coeffs(std::vector<ref::Tap<T>>& taps) {
  const double n = static_cast<double>(taps.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const double v = 1.0 + 0.01 * static_cast<double>(i + 1);
    taps[i].coeff = static_cast<T>(v);
    sum += v;
  }
  for (auto& t : taps) t.coeff = static_cast<T>(static_cast<double>(t.coeff) / sum);
}
}  // namespace detail

/// 2D star of radius k: 4k + 1 points.
template <typename T>
[[nodiscard]] StencilShape<T> star2d(int k) {
  StencilShape<T> s;
  s.name = "2d" + std::to_string(4 * k + 1) + "pt";
  s.order = k;
  s.dims = 2;
  s.taps.push_back({0, 0, 0, T{}});
  for (int r = 1; r <= k; ++r) {
    s.taps.push_back({r, 0, 0, T{}});
    s.taps.push_back({-r, 0, 0, T{}});
    s.taps.push_back({0, r, 0, T{}});
    s.taps.push_back({0, -r, 0, T{}});
  }
  detail::assign_coeffs(s.taps);
  return s;
}

/// 2D box of width x height points (odd or even extents; even extents get an
/// asymmetric radius split like an 8x8 "2d64pt").
template <typename T>
[[nodiscard]] StencilShape<T> box2d(int width, int height) {
  StencilShape<T> s;
  s.name = "2dbox" + std::to_string(width) + "x" + std::to_string(height);
  s.order = std::max(width, height) / 2;
  s.dims = 2;
  const int cx = (width - 1) / 2;
  const int cy = (height - 1) / 2;
  for (int dy = -cy; dy < height - cy; ++dy) {
    for (int dx = -cx; dx < width - cx; ++dx) {
      s.taps.push_back({dx, dy, 0, T{}});
    }
  }
  detail::assign_coeffs(s.taps);
  return s;
}

/// 3D star of radius k: 6k + 1 points.
template <typename T>
[[nodiscard]] StencilShape<T> star3d(int k) {
  StencilShape<T> s;
  s.name = "3d" + std::to_string(6 * k + 1) + "pt";
  s.order = k;
  s.dims = 3;
  s.taps.push_back({0, 0, 0, T{}});
  for (int r = 1; r <= k; ++r) {
    s.taps.push_back({r, 0, 0, T{}});
    s.taps.push_back({-r, 0, 0, T{}});
    s.taps.push_back({0, r, 0, T{}});
    s.taps.push_back({0, -r, 0, T{}});
    s.taps.push_back({0, 0, r, T{}});
    s.taps.push_back({0, 0, -r, T{}});
  }
  detail::assign_coeffs(s.taps);
  return s;
}

/// 3D box of extent (2k+1)^3.
template <typename T>
[[nodiscard]] StencilShape<T> box3d(int k) {
  StencilShape<T> s;
  const int e = 2 * k + 1;
  s.name = "3d" + std::to_string(e * e * e) + "pt";
  s.order = k;
  s.dims = 3;
  for (int dz = -k; dz <= k; ++dz) {
    for (int dy = -k; dy <= k; ++dy) {
      for (int dx = -k; dx <= k; ++dx) {
        s.taps.push_back({dx, dy, dz, T{}});
      }
    }
  }
  detail::assign_coeffs(s.taps);
  return s;
}

/// 3D 19-point Poisson stencil (k = 1): faces + edges + center, the classic
/// compact finite-difference Poisson operator of Rawat et al.'s suite.
template <typename T>
[[nodiscard]] StencilShape<T> poisson3d() {
  StencilShape<T> s;
  s.name = "poisson";
  s.order = 1;
  s.dims = 3;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (std::abs(dx) + std::abs(dy) + std::abs(dz) <= 2) {
          s.taps.push_back({dx, dy, dz, T{}});
        }
      }
    }
  }
  detail::assign_coeffs(s.taps);
  return s;
}

/// The classic 2D 5-point diffusion stencil with the paper's Section 2.2
/// naming (West/North/Current/South/East) and diffusion-like coefficients.
template <typename T>
[[nodiscard]] StencilShape<T> diffusion2d() {
  StencilShape<T> s = star2d<T>(1);
  s.name = "2d5pt-diffusion";
  return s;
}

}  // namespace ssam::core
