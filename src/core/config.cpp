#include "core/config.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "gpusim/simd/simd.hpp"

namespace ssam::core {

namespace {

/// The environment knob as a strictly parsed positive integer, or `fallback`
/// when the variable is unset or empty. Malformed values (`SSAM_THREADS=four`,
/// `SSAM_DEVICES=2x`, zero, negatives) throw PreconditionError — the same
/// contract the SSAM_FAULT_SPEC grammar follows — instead of the old
/// std::atoi behaviour of silently collapsing garbage to the fallback.
int env_positive_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int parsed = 0;
  const char* end = v + std::strlen(v);
  const auto [ptr, ec] = std::from_chars(v, end, parsed);
  SSAM_REQUIRE(ec == std::errc() && ptr == end,
               std::string(name) + "=\"" + v +
                   "\" is not an integer (expected a positive decimal count)");
  SSAM_REQUIRE(parsed > 0, std::string(name) + "=\"" + v +
                               "\" must be a positive integer");
  return parsed;
}

bool env_flag(const char* name) {
  if (const char* v = std::getenv(name)) return std::atoi(v) > 0;
  return false;
}

}  // namespace

SimConfig config_from_env() {
  SimConfig c;
  const unsigned hw = std::thread::hardware_concurrency();
  c.threads = env_positive_int("SSAM_THREADS", hw == 0 ? 1 : static_cast<int>(hw));
  c.devices = env_positive_int("SSAM_DEVICES", 2);
  c.device_pin = env_flag("SSAM_DEVICE_PIN");
  c.policy = IterationPolicy::kAuto;
  c.simd_backend = sim::simd::kBackendName;
  if (const char* v = std::getenv("SSAM_FAULT_SPEC")) c.fault_spec = v;
  if (const char* v = std::getenv("SSAM_TUNE_CACHE")) c.tune_cache = v;
  c.tune_topk = env_positive_int("SSAM_TUNE_TOPK", 0);
  return c;
}

const SimConfig& config() {
  static const SimConfig c = config_from_env();
  return c;
}

std::string SimConfig::describe() const {
  const char* pol = policy == IterationPolicy::kAuto        ? "auto"
                    : policy == IterationPolicy::kRelaunch  ? "relaunch"
                                                            : "persistent";
  std::string s = "threads=" + std::to_string(threads);
  s += " devices=" + std::to_string(devices);
  s += device_pin ? " pin=on" : " pin=off";
  s += " policy=";
  s += pol;
  s += " simd=";
  s += simd_backend;
  s += " faults=";
  s += fault_spec.empty() ? "off" : fault_spec;
  s += " tune_cache=";
  s += tune_cache.empty() ? "default" : tune_cache;
  if (tune_topk > 0) s += " tune_topk=" + std::to_string(tune_topk);
  return s;
}

}  // namespace ssam::core
