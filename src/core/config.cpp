#include "core/config.hpp"

#include <cstdlib>
#include <thread>

#include "gpusim/simd/simd.hpp"

namespace ssam::core {

namespace {

/// The environment knob as a positive integer, or `fallback` when unset,
/// unparsable, or non-positive.
int env_positive_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

bool env_flag(const char* name) {
  if (const char* v = std::getenv(name)) return std::atoi(v) > 0;
  return false;
}

}  // namespace

SimConfig config_from_env() {
  SimConfig c;
  const unsigned hw = std::thread::hardware_concurrency();
  c.threads = env_positive_int("SSAM_THREADS", hw == 0 ? 1 : static_cast<int>(hw));
  c.devices = env_positive_int("SSAM_DEVICES", 2);
  c.device_pin = env_flag("SSAM_DEVICE_PIN");
  c.policy = IterationPolicy::kAuto;
  c.simd_backend = sim::simd::kBackendName;
  if (const char* v = std::getenv("SSAM_FAULT_SPEC")) c.fault_spec = v;
  return c;
}

const SimConfig& config() {
  static const SimConfig c = config_from_env();
  return c;
}

std::string SimConfig::describe() const {
  const char* pol = policy == IterationPolicy::kAuto        ? "auto"
                    : policy == IterationPolicy::kRelaunch  ? "relaunch"
                                                            : "persistent";
  std::string s = "threads=" + std::to_string(threads);
  s += " devices=" + std::to_string(devices);
  s += device_pin ? " pin=on" : " pin=off";
  s += " policy=";
  s += pol;
  s += " simd=";
  s += simd_backend;
  s += " faults=";
  s += fault_spec.empty() ? "off" : fault_spec;
  return s;
}

}  // namespace ssam::core
