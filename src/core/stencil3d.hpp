// SSAM 3D stencil kernel (paper Section 4.9).
//
// A block of WZ warps covers WZ consecutive z-planes of a 3D sub-grid with
// overlapped blocking in z: the outer rz warps on each side are halo warps.
// Every warp caches its plane's rows in registers, runs one systolic column
// sweep per z-offset group of the plan, keeps the dz = 0 partial sums in
// registers, and publishes the dz != 0 partial sums to shared memory — the
// only inter-warp communication (shuffles stay intra-warp, as the paper
// requires). After __syncthreads, interior warps combine their own dz = 0
// sums with neighbours' published sums and store.
#pragma once

#include <vector>

#include "common/grid.hpp"
#include "core/dgraph.hpp"
#include "core/kernel_common.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/stream.hpp"
#include "rcache/blocking.hpp"
#include "rcache/register_cache.hpp"

namespace ssam::core {

struct Stencil3DOptions {
  int p = 2;      ///< sliding-window outputs per thread (rows)
  int warps = 8;  ///< planes per block
};

/// Bound on the flat per-block register state (warps x P partial sums) the
/// 3D kernels keep across barriers without heap allocation.
inline constexpr int kMaxBlockRegRows = 320;

[[nodiscard]] inline int stencil3d_ssam_regs(int rows_halo, int p, int passes) {
  return (p + rows_halo) + p * passes + 12;
}

namespace detail {

/// Validated geometry, launch config, and *owned* pass schedule shared by
/// the sync and async entry points. Owning copies of the passes (rather
/// than pointers into the caller's plan) is what makes the body
/// stream-safe.
template <typename T>
struct Stencil3dSetup {
  Blocking2D geom;
  Blocking3D geom3;
  sim::LaunchConfig cfg;
  int dy_min = 0;
  int anchor = 0;
  int n_off = 0;
  int vp = 0;
  Index nx = 0;
  Index ny = 0;
  Index nz = 0;
  /// Output z-window of the sweep. Full-grid entry points cover [0, nz);
  /// the persistent iteration engine (core/iterate_persistent.hpp) shifts
  /// the origin into a tile's residence buffer and stores only the band
  /// planes [z_store_lo, z_store_hi), shrinking `cfg.grid.z` to match.
  Index z_origin = 0;
  Index z_store_lo = 0;
  Index z_store_hi = 0;  ///< set to nz by stencil3d_setup
  /// Added to the store plane only — lets the engine's fused first/last
  /// sweeps read one array (global grid or residence buffer) and store into
  /// the other without an intermediate copy.
  Index z_store_offset = 0;
  bool has_center = false;
  ColumnPass<T> center_pass;
  std::vector<ColumnPass<T>> off_passes;  ///< dz != 0 passes, by value
};

template <typename T>
[[nodiscard]] Stencil3dSetup<T> stencil3d_setup(const GridView3D<const T>& in,
                                                const SystolicPlan<T>& plan,
                                                const Stencil3DOptions& opt) {
  const int rz = plan.rz();
  SSAM_REQUIRE(opt.warps > 2 * rz, "need more warps than z halo planes");
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  SSAM_REQUIRE(opt.warps * opt.p <= kMaxBlockRegRows,
               "per-block partial-sum state exceeds the inline bound");
  Stencil3dSetup<T> s;
  s.nx = in.nx();
  s.ny = in.ny();
  s.nz = in.nz();

  // In-plane geometry, anchored at the global dx extremes.
  s.geom.span = plan.span();
  s.geom.dx_min = plan.dx_min;
  s.geom.rows_halo = plan.rows_halo();
  s.geom.p = opt.p;
  s.geom.block_threads = opt.warps * sim::kWarpSize;

  s.geom3.plane = s.geom;
  s.geom3.rz = rz;
  s.geom3.warps = opt.warps;

  // Off-plane passes (dz != 0) publish P rows of 32 lanes each to smem.
  for (const auto& p : plan.passes) {
    if (p.dz == 0) {
      s.center_pass = p;
      s.has_center = true;
    } else {
      s.off_passes.push_back(p);
    }
  }
  s.n_off = static_cast<int>(s.off_passes.size());

  s.cfg.grid = s.geom3.grid(s.nx, s.ny, s.nz);
  s.cfg.block_threads = s.geom3.block_threads();
  s.cfg.regs_per_thread =
      stencil3d_ssam_regs(s.geom.rows_halo, opt.p, static_cast<int>(plan.passes.size()));

  s.dy_min = plan.dy_min;
  s.anchor = plan.anchor_dx;
  s.vp = s.geom3.valid_planes();
  s.z_store_hi = s.nz;
  return s;
}

/// Mode-generic 3D stencil body. The setup (including the owned passes) is
/// captured by value, so the body outlives the caller's plan.
template <typename T>
[[nodiscard]] auto make_stencil3d_body(Stencil3dSetup<T> setup, GridView3D<const T> in,
                                       GridView3D<T> out) {
  return [s = std::move(setup), in, out](auto& blk) {
    const Blocking2D& geom = s.geom;
    const Blocking3D& geom3 = s.geom3;
    const ColumnPass<T>* center_pass = s.has_center ? &s.center_pass : nullptr;
    const std::vector<ColumnPass<T>>& off_passes = s.off_passes;
    const int dy_min = s.dy_min;
    const int anchor = s.anchor;
    const int n_off = s.n_off;
    const int vp = s.vp;
    const Index nx = s.nx;
    const Index ny = s.ny;
    const Index nz = s.nz;
    const int warps = geom3.warps;
    const int p = geom.p;
    const int smem_elems = warps * std::max(1, n_off) * p * sim::kWarpSize;
    Smem<T> published = blk.template alloc_smem<T>(smem_elems);
    auto smem_base = [&](int warp, int slot, int i) {
      return ((warp * std::max(1, n_off) + slot) * p + i) * sim::kWarpSize;
    };

    const Index col0 = geom.lane0_col(blk.id().x);  // one warp stripe per block in x
    const Index row0 = static_cast<Index>(blk.id().y) * p + dy_min;
    const Index z_first =
        s.z_origin + static_cast<Index>(blk.id().z) * vp - geom3.rz;

    // Per-warp dz=0 partial sums kept across the barrier, flattened to
    // [warp * p + i] in a fixed inline buffer (registers, not heap).
    InlineVec<Reg<T>, kMaxBlockRegRows> center_sum(warps * p);

    // Phase 1: every warp computes all passes for its plane.
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      Index pz = z_first + w;
      pz = pz < 0 ? 0 : (pz >= nz ? nz - 1 : pz);  // replicate border in z
      const GridView2D<const T> plane = in.slice(pz);

      auto rc = make_register_cache<T>(wc, geom.c());
      rc.load_rows(plane, col0, row0);

      for (int i = 0; i < p; ++i) {
        // dz = 0 pass stays in registers.
        Reg<T> s0 = wc.uniform(T{});
        if (center_pass != nullptr) {
          for (std::size_t ci = 0; ci < center_pass->columns.size(); ++ci) {
            if (ci > 0) s0 = wc.shfl_up(sim::kFullMask, s0, 1);
            for (const ColumnTap<T>& tap : center_pass->columns[ci]) {
              s0 = wc.mad(rc.row(i + tap.dy - dy_min), tap.coeff, s0);
            }
          }
        }
        center_sum[w * p + i] = s0;

        // dz != 0 passes go to shared memory.
        for (int op = 0; op < n_off; ++op) {
          const ColumnPass<T>& pass = off_passes[static_cast<std::size_t>(op)];
          Reg<T> sum = wc.uniform(T{});
          for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
            if (ci > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
            for (const ColumnTap<T>& tap : pass.columns[ci]) {
              sum = wc.mad(rc.row(i + tap.dy - dy_min), tap.coeff, sum);
            }
          }
          const Reg<int> sidx = wc.template iota<int>(smem_base(w, op, i), 1);
          wc.store_shared(published, sidx, sum);
        }
      }
    }
    blk.sync();

    // Phase 2: interior warps accumulate neighbours' contributions and store.
    for (int w = geom3.rz; w < warps - geom3.rz; ++w) {
      auto& wc = blk.warp(w);
      const Index pz = z_first + w;
      if (pz < s.z_store_lo || pz >= s.z_store_hi) continue;

      const GridView2D<T> plane{out.data() + (pz + s.z_store_offset) * ny * nx, nx, ny,
                                nx};
      store_valid_rows(wc, plane, col0 - anchor, static_cast<Index>(blk.id().y) * p, p,
                       geom.span, [&](int i) {
                         Reg<T> sum = center_sum[w * p + i];
                         for (int op = 0; op < n_off; ++op) {
                           const ColumnPass<T>& pass = off_passes[static_cast<std::size_t>(op)];
                           const int producer = w + pass.dz;  // S_dz(z + dz) lives there
                           const int deficit = anchor - pass.dx_max;
                           Reg<int> sidx =
                               wc.add(wc.lane_id(), smem_base(producer, op, i) - deficit);
                           sidx = wc.clamp(sidx, smem_base(producer, op, i),
                                           smem_base(producer, op, i) + sim::kWarpSize - 1);
                           const Reg<T> v = wc.load_shared(published, sidx);
                           sum = wc.add(sum, v);
                         }
                         return sum;
                       });
    }
  };
}

}  // namespace detail

template <typename T>
KernelStats stencil3d_ssam(const sim::ArchSpec& arch, const GridView3D<const T>& in,
                           const SystolicPlan<T>& plan, GridView3D<T> out,
                           const Stencil3DOptions& opt = {},
                           ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  detail::Stencil3dSetup<T> s = detail::stencil3d_setup(in, plan, opt);
  const sim::LaunchConfig cfg = s.cfg;
  auto body = detail::make_stencil3d_body<T>(std::move(s), in, out);
  return sim::launch(arch, cfg, body, mode, sample);
}

template <typename T>
KernelStats stencil3d_ssam(const sim::ArchSpec& arch, const GridView3D<const T>& in,
                           const StencilShape<T>& shape, GridView3D<T> out,
                           const Stencil3DOptions& opt = {},
                           ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  return stencil3d_ssam(arch, in, build_plan(shape.taps), out, opt, mode, sample);
}

/// Enqueues the 3D stencil sweep on `stream`; the pass schedule is copied
/// into the op, `in`/`out` storage must outlive synchronization.
template <typename T>
sim::Event stencil3d_ssam_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                const GridView3D<const T>& in, const SystolicPlan<T>& plan,
                                GridView3D<T> out, const Stencil3DOptions& opt = {}) {
  detail::Stencil3dSetup<T> s = detail::stencil3d_setup(in, plan, opt);
  const sim::LaunchConfig cfg = s.cfg;
  return stream.launch(arch, cfg, detail::make_stencil3d_body<T>(std::move(s), in, out));
}

}  // namespace ssam::core
