// SSAM 3D stencil kernel (paper Section 4.9).
//
// A block of WZ warps covers WZ consecutive z-planes of a 3D sub-grid with
// overlapped blocking in z: the outer rz warps on each side are halo warps.
// Every warp caches its plane's rows in registers, runs one systolic column
// sweep per z-offset group of the plan, keeps the dz = 0 partial sums in
// registers, and publishes the dz != 0 partial sums to shared memory — the
// only inter-warp communication (shuffles stay intra-warp, as the paper
// requires). After __syncthreads, interior warps combine their own dz = 0
// sums with neighbours' published sums and store.
#pragma once

#include <vector>

#include "common/grid.hpp"
#include "core/dgraph.hpp"
#include "core/kernel_common.hpp"
#include "core/stencil_shape.hpp"
#include "rcache/blocking.hpp"
#include "rcache/register_cache.hpp"

namespace ssam::core {

struct Stencil3DOptions {
  int p = 2;      ///< sliding-window outputs per thread (rows)
  int warps = 8;  ///< planes per block
};

/// Bound on the flat per-block register state (warps x P partial sums) the
/// 3D kernels keep across barriers without heap allocation.
inline constexpr int kMaxBlockRegRows = 320;

[[nodiscard]] inline int stencil3d_ssam_regs(int rows_halo, int p, int passes) {
  return (p + rows_halo) + p * passes + 12;
}

template <typename T>
KernelStats stencil3d_ssam(const sim::ArchSpec& arch, const GridView3D<const T>& in,
                           const SystolicPlan<T>& plan, GridView3D<T> out,
                           const Stencil3DOptions& opt = {},
                           ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  const int rz = plan.rz();
  SSAM_REQUIRE(opt.warps > 2 * rz, "need more warps than z halo planes");
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  SSAM_REQUIRE(opt.warps * opt.p <= kMaxBlockRegRows,
               "per-block partial-sum state exceeds the inline bound");
  const Index nx = in.nx();
  const Index ny = in.ny();
  const Index nz = in.nz();

  Blocking2D geom;  // in-plane geometry, anchored at the global dx extremes
  geom.span = plan.span();
  geom.dx_min = plan.dx_min;
  geom.rows_halo = plan.rows_halo();
  geom.p = opt.p;
  geom.block_threads = opt.warps * sim::kWarpSize;

  Blocking3D geom3;
  geom3.plane = geom;
  geom3.rz = rz;
  geom3.warps = opt.warps;

  // Off-plane passes (dz != 0) publish P rows of 32 lanes each to smem.
  std::vector<const ColumnPass<T>*> off_passes;
  const ColumnPass<T>* center_pass = nullptr;
  for (const auto& p : plan.passes) {
    if (p.dz == 0) {
      center_pass = &p;
    } else {
      off_passes.push_back(&p);
    }
  }
  const int n_off = static_cast<int>(off_passes.size());

  sim::LaunchConfig cfg;
  cfg.grid = geom3.grid(nx, ny, nz);
  cfg.block_threads = geom3.block_threads();
  cfg.regs_per_thread =
      stencil3d_ssam_regs(geom.rows_halo, opt.p, static_cast<int>(plan.passes.size()));

  const int dy_min = plan.dy_min;
  const int anchor = plan.anchor_dx;
  const int vp = geom3.valid_planes();

  auto body = [&, geom, geom3, dy_min, anchor, nx, ny, nz, vp, n_off](auto& blk) {
    const int warps = geom3.warps;
    const int p = geom.p;
    const int smem_elems = warps * std::max(1, n_off) * p * sim::kWarpSize;
    Smem<T> published = blk.template alloc_smem<T>(smem_elems);
    auto smem_base = [&](int warp, int slot, int i) {
      return ((warp * std::max(1, n_off) + slot) * p + i) * sim::kWarpSize;
    };

    const Index col0 = geom.lane0_col(blk.id().x);  // one warp stripe per block in x
    const Index row0 = static_cast<Index>(blk.id().y) * p + dy_min;
    const Index z_first = static_cast<Index>(blk.id().z) * vp - geom3.rz;

    // Per-warp dz=0 partial sums kept across the barrier, flattened to
    // [warp * p + i] in a fixed inline buffer (registers, not heap).
    InlineVec<Reg<T>, kMaxBlockRegRows> center_sum(warps * p);

    // Phase 1: every warp computes all passes for its plane.
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      Index pz = z_first + w;
      pz = pz < 0 ? 0 : (pz >= nz ? nz - 1 : pz);  // replicate border in z
      const GridView2D<const T> plane = in.slice(pz);

      auto rc = make_register_cache<T>(wc, geom.c());
      rc.load_rows(plane, col0, row0);

      for (int i = 0; i < p; ++i) {
        // dz = 0 pass stays in registers.
        Reg<T> s0 = wc.uniform(T{});
        if (center_pass != nullptr) {
          for (std::size_t ci = 0; ci < center_pass->columns.size(); ++ci) {
            if (ci > 0) s0 = wc.shfl_up(sim::kFullMask, s0, 1);
            for (const ColumnTap<T>& tap : center_pass->columns[ci]) {
              s0 = wc.mad(rc.row(i + tap.dy - dy_min), tap.coeff, s0);
            }
          }
        }
        center_sum[w * p + i] = s0;

        // dz != 0 passes go to shared memory.
        for (int s = 0; s < n_off; ++s) {
          const ColumnPass<T>& pass = *off_passes[static_cast<std::size_t>(s)];
          Reg<T> sum = wc.uniform(T{});
          for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
            if (ci > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
            for (const ColumnTap<T>& tap : pass.columns[ci]) {
              sum = wc.mad(rc.row(i + tap.dy - dy_min), tap.coeff, sum);
            }
          }
          const Reg<int> sidx = wc.template iota<int>(smem_base(w, s, i), 1);
          wc.store_shared(published, sidx, sum);
        }
      }
    }
    blk.sync();

    // Phase 2: interior warps accumulate neighbours' contributions and store.
    for (int w = geom3.rz; w < warps - geom3.rz; ++w) {
      auto& wc = blk.warp(w);
      const Index pz = z_first + w;
      if (pz < 0 || pz >= nz) continue;

      const GridView2D<T> plane{out.data() + pz * ny * nx, nx, ny, nx};
      store_valid_rows(wc, plane, col0 - anchor, static_cast<Index>(blk.id().y) * p, p,
                       geom.span, [&](int i) {
                         Reg<T> sum = center_sum[w * p + i];
                         for (int s = 0; s < n_off; ++s) {
                           const ColumnPass<T>& pass = *off_passes[static_cast<std::size_t>(s)];
                           const int producer = w + pass.dz;  // S_dz(z + dz) lives there
                           const int deficit = anchor - pass.dx_max;
                           Reg<int> sidx =
                               wc.add(wc.lane_id(), smem_base(producer, s, i) - deficit);
                           sidx = wc.clamp(sidx, smem_base(producer, s, i),
                                           smem_base(producer, s, i) + sim::kWarpSize - 1);
                           const Reg<T> v = wc.load_shared(published, sidx);
                           sum = wc.add(sum, v);
                         }
                         return sum;
                       });
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

template <typename T>
KernelStats stencil3d_ssam(const sim::ArchSpec& arch, const GridView3D<const T>& in,
                           const StencilShape<T>& shape, GridView3D<T> out,
                           const Stencil3DOptions& opt = {},
                           ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  return stencil3d_ssam(arch, in, build_plan(shape.taps), out, opt, mode, sample);
}

}  // namespace ssam::core
