// SSAM temporal blocking (paper Section 6.4): t fused time steps entirely in
// the register cache.
//
// The register cache is loaded once with C0 = P + t*(dy span) rows; each
// fused step applies the systolic column sweep to every live row, producing
// the next level's rows in registers. Horizontal halo is paid in lanes
// (t * span lanes become invalid) and vertical halo in rows — no shared
// memory and no barriers at all, which is what makes temporal blocking "free"
// under SSAM (the paper's point in Section 6.4).
//
// Border cells within t*r of the domain edge follow the ghost-zone
// approximation (replicate applied at load time only), as in every
// overlapped temporal blocking scheme.
#pragma once

#include <utility>

#include "core/stencil2d.hpp"

namespace ssam::core {

struct TemporalSsamOptions {
  int t = 4;
  int p = 4;
  int block_threads = 128;
};

[[nodiscard]] inline int stencil2d_ssam_temporal_regs(int rows_halo, int t, int p) {
  const int c0 = p + t * rows_halo;
  return 2 * c0 + 12;  // two live levels during the in-register relaxation
}

namespace detail {

template <typename T>
[[nodiscard]] Stencil2dSetup stencil2d_temporal_setup(const GridView2D<const T>& in,
                                                      const SystolicPlan<T>& plan,
                                                      const TemporalSsamOptions& opt) {
  SSAM_REQUIRE(plan.passes.size() == 1 && plan.passes.front().dz == 0,
               "temporal SSAM kernel is 2D");
  const int t = opt.t;
  const int span = plan.span();
  const int dy_span = plan.rows_halo();
  SSAM_REQUIRE(t >= 1, "need at least one step");
  SSAM_REQUIRE(sim::kWarpSize - t * span >= 8, "too many fused steps for one warp");
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  SSAM_REQUIRE(opt.p + t * dy_span <= kMaxRegCacheRows,
               "fused steps exceed the register cache capacity");
  Stencil2dSetup s;
  s.width = in.width();
  s.height = in.height();
  s.geom.span = t * span;           // lanes consumed by t fused sweeps
  s.geom.dx_min = t * plan.dx_min;  // leftmost input column offset
  s.geom.rows_halo = t * dy_span;
  s.geom.p = opt.p;
  s.geom.block_threads = opt.block_threads;
  s.cfg.grid = s.geom.grid(s.width, s.height);
  s.cfg.block_threads = opt.block_threads;
  s.cfg.regs_per_thread = stencil2d_ssam_temporal_regs(dy_span, t, opt.p);
  s.dy_min = plan.dy_min;
  s.anchor = plan.anchor_dx;
  return s;
}

/// Mode-generic temporal body; all captures by value (pass owns its taps) so
/// the body is stream-safe.
template <typename T>
[[nodiscard]] auto make_stencil2d_temporal_body(const Stencil2dSetup& s,
                                                GridView2D<const T> in, ColumnPass<T> pass,
                                                int t, int dy_span, GridView2D<T> out) {
  const Blocking2D geom = s.geom;
  const int dy_min = s.dy_min;
  const int anchor = s.anchor;
  const Index width = s.width;
  const Index height = s.height;
  const Index oy_origin = s.row_origin;
  const Index store_off = s.store_row_offset;
  return [=, pass = std::move(pass)](auto& blk) {
    for (int w = 0; w < blk.warp_count(); ++w) {
      auto& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;
      // base_t = oy0 + t*dy_min  =>  base_0 = oy0 + t*dy_min.
      const Index row0 = oy_origin + static_cast<Index>(blk.id().y) * geom.p +
                         static_cast<Index>(t) * dy_min;

      auto rc = make_register_cache<T>(wc, geom.c());
      rc.load_rows(in, col0, row0);

      // Level 0 = cached input rows; the in-register relaxation ping-pongs
      // between two fixed buffers (the "two live levels" of the register
      // estimate), one level per fused step.
      InlineVec<Reg<T>, kMaxRegCacheRows> buf_a(geom.c());
      InlineVec<Reg<T>, kMaxRegCacheRows> buf_b;
      for (int r = 0; r < geom.c(); ++r) buf_a[r] = rc.row(r);
      auto* cur = &buf_a;
      auto* nxt = &buf_b;

      for (int s = 0; s < t; ++s) {
        const int next_rows = cur->size() - dy_span;
        nxt->resize(next_rows);
        for (int r = 0; r < next_rows; ++r) {
          Reg<T> sum = wc.uniform(T{});
          for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
            if (ci > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
            for (const ColumnTap<T>& tap : pass.columns[ci]) {
              sum = wc.mad((*cur)[r + tap.dy - dy_min], tap.coeff, sum);
            }
          }
          (*nxt)[r] = sum;
        }
        std::swap(cur, nxt);
      }

      // After t sweeps lane l's value sits at out_x = col(l) - t*anchor.
      store_valid_rows(wc, out, col0 - static_cast<Index>(t) * anchor,
                       oy_origin + store_off + static_cast<Index>(blk.id().y) * geom.p,
                       geom.p, geom.span,
                       [&](int i) -> const Reg<T>& { return (*cur)[i]; });
    }
  };
}

}  // namespace detail

template <typename T>
KernelStats stencil2d_ssam_temporal(const sim::ArchSpec& arch,
                                    const GridView2D<const T>& in,
                                    const SystolicPlan<T>& plan, GridView2D<T> out,
                                    const TemporalSsamOptions& opt = {},
                                    ExecMode mode = ExecMode::kFunctional,
                                    SampleSpec sample = {}) {
  const detail::Stencil2dSetup s = detail::stencil2d_temporal_setup(in, plan, opt);
  auto body = detail::make_stencil2d_temporal_body<T>(s, in, plan.passes.front(), opt.t,
                                                      plan.rows_halo(), out);
  return sim::launch(arch, s.cfg, body, mode, sample);
}

template <typename T>
KernelStats stencil2d_ssam_temporal(const sim::ArchSpec& arch,
                                    const GridView2D<const T>& in,
                                    const StencilShape<T>& shape, GridView2D<T> out,
                                    const TemporalSsamOptions& opt = {},
                                    ExecMode mode = ExecMode::kFunctional,
                                    SampleSpec sample = {}) {
  return stencil2d_ssam_temporal(arch, in, build_plan(shape.taps), out, opt, mode, sample);
}

/// Enqueues the temporally-blocked sweep (t fused steps) on `stream`.
template <typename T>
sim::Event stencil2d_ssam_temporal_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                         const GridView2D<const T>& in,
                                         const SystolicPlan<T>& plan, GridView2D<T> out,
                                         const TemporalSsamOptions& opt = {}) {
  const detail::Stencil2dSetup s = detail::stencil2d_temporal_setup(in, plan, opt);
  auto body = detail::make_stencil2d_temporal_body<T>(s, in, plan.passes.front(), opt.t,
                                                      plan.rows_halo(), out);
  return stream.launch(arch, s.cfg, std::move(body));
}

template <typename T>
sim::Event stencil2d_ssam_temporal_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                         const GridView2D<const T>& in,
                                         const StencilShape<T>& shape, GridView2D<T> out,
                                         const TemporalSsamOptions& opt = {}) {
  return stencil2d_ssam_temporal_async(stream, arch, in, build_plan(shape.taps), out, opt);
}

}  // namespace ssam::core
