#include "core/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <limits>
#include <utility>

#include "core/faultinject.hpp"
#include "gpusim/arch.hpp"
#include "perfmodel/latency_model.hpp"

namespace ssam::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

Clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// The JobError a cancelled job reports, keyed by the token's reason.
JobError cancel_error(int reason, const std::string& detail) {
  if (reason == static_cast<int>(ErrorCode::kDeadlineExceeded)) {
    return JobError{ErrorCode::kDeadlineExceeded, false, detail};
  }
  return JobError{ErrorCode::kCancelled, false, detail};
}

}  // namespace

/// One admitted, not-yet-dispatched job with its fair-queuing tag and the
/// fault-tolerance bookkeeping that survives across attempts.
struct SimServer::Pending {
  SimJob job;
  std::shared_ptr<detail::JobState> state;
  double start_tag = 0.0;   ///< SFQ start tag; vtime advances here on dispatch
  double finish_tag = 0.0;  ///< start + cost/effective-weight; dispatch order key
  double units = 0.0;       ///< latency-model work units (shed/EWMA x-axis)
  Clock::time_point submitted_at;
  Clock::time_point deadline{};  ///< valid when has_deadline
  bool has_deadline = false;
  int attempts = 0;                         ///< execution attempts so far
  std::vector<JobError> attempt_errors;     ///< errors of failed attempts
  /// Pristine inputs for retry, taken at submit only while the fault
  /// injector is armed — the non-faulting path never copies.
  std::shared_ptr<std::vector<float>> snapshot;
  double queue_ms = 0.0;  ///< submit -> first dispatch
  double exec_ms = 0.0;   ///< accumulated across attempts
  Clock::time_point retry_at{};  ///< in retry_q_: due time after backoff
};

struct SimServer::Tenant {
  double weight = 1.0;
  double last_finish = 0.0;  ///< finish tag of the tenant's latest submit
  std::deque<Pending> q;     ///< FIFO within the tenant
};

/// A probe job's resident grids: tiny (a few KB), owned by the server so a
/// quarantined device can be exercised without touching any client data.
struct SimServer::ProbeRig {
  Grid2D<float> a{32, 32, 1.0F};
  Grid2D<float> b{32, 32};
  StencilShape<float> shape = star2d<float>(1);
};

SimServer::SimServer(ServerOptions opt)
    : opt_(opt),
      // Qualified: plain `config()` here would name the SimServer::config
      // accessor of this not-yet-constructed object.
      config_(::ssam::core::config()),
      arch_(opt.arch != nullptr ? opt.arch : &sim::tesla_v100()),
      completion_seq_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
  SSAM_REQUIRE(opt_.streams_per_device >= 1, "a device needs at least one stream");
  SSAM_REQUIRE(opt_.max_in_flight_per_device >= 1, "device job slots must be positive");
  SSAM_REQUIRE(opt_.max_attempts >= 1, "a job needs at least one attempt");
  SSAM_REQUIRE(opt_.quarantine_after >= 1, "quarantine threshold must be positive");
  SSAM_REQUIRE(opt_.probe_interval_ms > 0.0 && opt_.watchdog_period_ms > 0.0,
               "watchdog periods must be positive");
  int n = opt_.devices > 0 ? opt_.devices : config_.devices;
  if (opt.group != nullptr) {
    group_ = opt.group;
    n = std::min(opt_.devices > 0 ? n : group_->size(), group_->size());
  } else {
    group_ = &sim::DeviceGroup::shared(n);
  }
  opt_.devices = n;
  in_flight_.assign(static_cast<std::size_t>(n), 0);
  next_big_stream_.assign(static_cast<std::size_t>(n), 0);
  health_.assign(static_cast<std::size_t>(n), Health{});
  probe_rigs_.resize(static_cast<std::size_t>(n));
  paused_ = opt_.start_paused;
  // Started last: the watchdog touches every member above.
  watchdog_ = std::thread([this] { watchdog_main(); });
}

SimServer::~SimServer() {
  // First drain: every accepted job reaches a terminal status (the
  // watchdog is still running — deadline cancels and retry release are
  // part of "terminal"). Then stop the watchdog, and drain once more for
  // any probe it launched before it observed stopping_.
  drain();
  {
    std::lock_guard<std::mutex> lock(m_);
    stopping_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  drain();
}

double SimServer::model_units(const SimJob& job) const {
  // Per-element SSAM latency (Equation 4, sparse-generalized): the kernels
  // execute exactly the taps the shape names, so the model charges those
  // taps — not the bounding-box product, which over-priced star stencils
  // 2-3x against dense filters and skewed the shared shed EWMA. The shuffle
  // term follows the HORIZONTAL extent (m in Eq. 4 / conv2d_setup terms):
  // the register-cache walk moves along x.
  int taps = 1;
  int mx = 1;
  if (job.kind == JobKind::kConv2D) {
    mx = std::max(1, job.filter_m);
    taps = mx * std::max(1, job.filter_n);
  } else if (!job.shape.taps.empty()) {
    int dx0 = 0, dx1 = 0;
    for (const auto& t : job.shape.taps) {
      dx0 = std::min(dx0, t.dx);
      dx1 = std::max(dx1, t.dx);
    }
    mx = dx1 - dx0 + 1;
    taps = static_cast<int>(job.shape.taps.size());
  }
  const double per_elem = perf::latency_ssam_taps(taps, mx, perf::from_arch(*arch_));
  return per_elem * static_cast<double>(job.cells()) *
         static_cast<double>(std::max(1, job.steps));
}

JobFuture SimServer::submit(SimJob job) {
  auto state = std::make_shared<detail::JobState>();
  // Every accepted job gets a live token (the future's cancel() handle);
  // a caller-provided token is adopted so one token can fan out over a
  // batch of jobs.
  if (!job.cancel.valid()) job.cancel = CancelToken::make();
  state->cancel = job.cancel;
  JobFuture fut(state);

  // Retry needs pristine inputs (a failed attempt may have half-written
  // the state grid). The copy exists only while faults are armed, so the
  // production path stays copy-free. Conv2d never mutates its input.
  std::shared_ptr<std::vector<float>> snap;
  if (opt_.max_attempts > 1 && FaultInjector::global().enabled()) {
    const float* src = nullptr;
    std::size_t count = 0;
    if (job.kind == JobKind::kStencil2D && job.a2 != nullptr) {
      src = job.a2->data();
      count = static_cast<std::size_t>(job.a2->size());
    } else if (job.kind == JobKind::kStencil3D && job.a3 != nullptr) {
      src = job.a3->data();
      count = static_cast<std::size_t>(job.a3->size());
    }
    if (src != nullptr) snap = std::make_shared<std::vector<float>>(src, src + count);
  }

  bool reject = false;
  JobError reject_err;
  {
    std::lock_guard<std::mutex> lock(m_);
    ++submitted_;
    if (queued_ >= opt_.max_pending) {
      ++rejected_;
      reject = true;
      reject_err = JobError{ErrorCode::kQueueFull, false,
                            "admission control: pending queue full"};
    } else if (opt_.shed_on_deadline && job.deadline_ms > 0.0) {
      // Deadline-aware shedding: predicted execution time is the job's
      // latency-model units times a ms-per-unit scale (pinned calibration
      // or learned EWMA). A job predicted to blow its deadline is refused
      // now, not cancelled later — the queue stays for jobs that can make
      // it. With no calibration and no history yet, everything is admitted.
      const double scale = opt_.shed_calibration_ms_per_unit > 0.0
                               ? opt_.shed_calibration_ms_per_unit
                               : ewma_ms_per_unit_;
      const double predicted = scale * model_units(job);
      if (scale > 0.0 && predicted > job.deadline_ms) {
        ++rejected_;
        ++shed_;
        reject = true;
        reject_err =
            JobError{ErrorCode::kDeadlineUnmeetable, false,
                     "admission shed: predicted " + std::to_string(predicted) +
                         " ms exceeds deadline " + std::to_string(job.deadline_ms) + " ms"};
      }
    }
    if (!reject) {
      Tenant& t = tenants_[job.tenant];
      // Start-time fair queuing: the job's virtual finish time advances
      // the tenant's clock by cost over effective weight; priority buys a
      // larger share of the tenant's own weight.
      const double w = t.weight * (1.0 + static_cast<double>(std::max(0, job.priority)));
      const double start = std::max(vtime_, t.last_finish);
      Pending p;
      p.start_tag = start;
      p.finish_tag = start + job.cost() / std::max(w, 1e-9);
      t.last_finish = p.finish_tag;
      p.units = model_units(job);
      p.submitted_at = Clock::now();
      if (job.deadline_ms > 0.0) {
        p.has_deadline = true;
        p.deadline = p.submitted_at + ms_duration(job.deadline_ms);
      }
      p.snapshot = std::move(snap);
      p.job = std::move(job);
      p.state = state;
      t.q.push_back(std::move(p));
      ++queued_;
    }
  }
  if (reject) {
    JobResult r;
    r.status = JobStatus::kRejected;
    r.error = std::move(reject_err);
    state->fulfill(std::move(r));
    return fut;
  }
  pump();
  return fut;
}

void SimServer::resume() {
  std::unique_lock<std::mutex> lock(m_);
  paused_ = false;
  pump_locked(lock);
}

void SimServer::set_tenant_weight(int tenant, double weight) {
  SSAM_REQUIRE(weight > 0.0, "tenant weight must be positive");
  std::lock_guard<std::mutex> lock(m_);
  tenants_[tenant].weight = weight;
}

SimServer::Stats SimServer::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  Stats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  s.shed = shed_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.retries = retries_;
  s.faulted_attempts = faulted_attempts_;
  s.quarantines = quarantines_;
  s.probes = probes_;
  s.reinstated = reinstated_;
  s.devices = opt_.devices;
  return s;
}

SimServer::DeviceHealth SimServer::device_health(int device) const {
  std::lock_guard<std::mutex> lock(m_);
  SSAM_REQUIRE(device >= 0 && device < opt_.devices, "device index out of range");
  // Slice off the internal probe-scheduling fields.
  return static_cast<const DeviceHealth&>(health_[static_cast<std::size_t>(device)]);
}

bool SimServer::idle_locked() const {
  if (pumping_ || queued_ != 0 || probes_active_ != 0) return false;
  for (int f : in_flight_) {
    if (f != 0) return false;
  }
  return true;
}

void SimServer::drain() {
  resume();
  std::unique_lock<std::mutex> lock(m_);
  // `!pumping_` is part of idle: a thread inside the dispatch loop (or a
  // completion callback that handed off to it) still holds `this`, so
  // drain must not return — and let the destructor run — underneath it.
  // Probes count too: a probe op also holds `this`.
  idle_cv_.wait(lock, [&] { return idle_locked(); });
}

void SimServer::pump() {
  std::unique_lock<std::mutex> lock(m_);
  pump_locked(lock);
}

bool SimServer::promote_due_retries_locked(Clock::time_point now) {
  bool any = false;
  for (auto it = retry_q_.begin(); it != retry_q_.end();) {
    if (it->retry_at <= now) {
      // Front of the tenant FIFO: the retried job predates everything
      // still queued there, and its original SFQ tags come back with it.
      tenants_[it->job.tenant].q.push_front(std::move(*it));
      it = retry_q_.erase(it);
      any = true;
    } else {
      ++it;
    }
  }
  return any;
}

// One thread owns the dispatch loop at a time (`pumping_`). Re-entrant and
// concurrent callers — a completion callback running inline inside the
// owner's enqueue below, or another thread's submit — return immediately;
// the owner re-selects on its next lap and observes whatever they changed,
// so the backlog still drains and pump depth stays bounded (no recursion
// through chains of instantly-finishing jobs).
//
// Shutdown safety: the owner's LAST touch of server state is clearing
// `pumping_` and notifying drain() under the lock; a completion callback's
// last touch is its slot decrement + hand-off to pump_locked, also in one
// critical section. Together with drain() requiring `!pumping_`, no thread
// can still be behind `this` once drain observes idle — the destructor
// cannot pull the server out from under a late pump() call.
void SimServer::pump_locked(std::unique_lock<std::mutex>& lock) {
  if (paused_ || pumping_) return;
  pumping_ = true;
  struct Launch {
    std::shared_ptr<Pending> p;
    int device = 0;
    int stream = 0;
  };
  for (;;) {
    promote_due_retries_locked(Clock::now());
    std::vector<Launch> batch;
    for (;;) {
      // Least-loaded healthy device with a free job slot. Quarantined
      // devices are simply not packing targets, which is the whole
      // migration story: queued jobs bind to a device here, at dispatch
      // time, never earlier.
      int dev = -1;
      int best = std::numeric_limits<int>::max();
      for (int i = 0; i < opt_.devices; ++i) {
        if (health_[static_cast<std::size_t>(i)].quarantined) continue;
        const int f = in_flight_[static_cast<std::size_t>(i)];
        if (f < opt_.max_in_flight_per_device && f < best) {
          best = f;
          dev = i;
        }
      }
      if (dev < 0) break;
      // Queued job with the smallest finish tag (tenant FIFOs keep each
      // tenant's own order).
      Tenant* pick = nullptr;
      for (auto& [id, t] : tenants_) {
        if (t.q.empty()) continue;
        if (pick == nullptr || t.q.front().finish_tag < pick->q.front().finish_tag) {
          pick = &t;
        }
      }
      if (pick == nullptr) break;
      Pending p = std::move(pick->q.front());
      pick->q.pop_front();
      --queued_;
      if (p.state->cancel.cancelled()) {
        // Cancelled while queued: fulfil right here without spending a
        // device slot on it.
        JobResult r;
        r.status = JobStatus::kCancelled;
        r.error = cancel_error(p.state->cancel.reason(), "cancelled while queued");
        r.attempts = p.attempts;
        r.attempt_errors = std::move(p.attempt_errors);
        r.queue_ms = ms_between(p.submitted_at, Clock::now());
        r.seq = completion_seq_->fetch_add(1, std::memory_order_relaxed) + 1;
        ++cancelled_;
        p.state->fulfill(std::move(r));
        continue;
      }
      // SFQ: virtual time advances to the start tag of the job entering
      // service, not its finish tag — a tenant going active now pays from
      // here, not for the full job it never competed with.
      vtime_ = std::max(vtime_, p.start_tag);
      ++in_flight_[static_cast<std::size_t>(dev)];
      Launch l;
      l.device = dev;
      // Small jobs share the batch lane (stream 0); large jobs round-robin
      // the remaining streams so they overlap instead of queuing.
      if (opt_.streams_per_device > 1 && p.job.cells() >= opt_.small_job_cells) {
        int& cursor = next_big_stream_[static_cast<std::size_t>(dev)];
        l.stream = 1 + cursor % (opt_.streams_per_device - 1);
        ++cursor;
      }
      l.p = std::make_shared<Pending>(std::move(p));
      if (l.p->has_deadline) running_.push_back({l.p->state, l.p->deadline});
      batch.push_back(std::move(l));
    }
    if (batch.empty()) break;
    // Enqueue outside the scheduler lock: stream enqueues take stream
    // locks, and an already-complete event runs its continuation (which
    // relocks m_) inline right here. `pumping_` keeps drain() parked
    // across this unlocked window.
    lock.unlock();
    for (Launch& l : batch) {
      sim::Device& dev = group_->device(l.device);
      dev.job_started();
      auto pj = l.p;
      const sim::ArchSpec* arch = arch_;
      sim::Device* devp = &dev;
      const int dev_index = l.device;
      const auto dispatched_at = Clock::now();
      if (pj->attempts == 0) pj->queue_ms = ms_between(pj->submitted_at, dispatched_at);
      // The attempt's outcome crosses from the stream op to the completion
      // callback through this shared record — the callback never reads the
      // JobState (keeping the lock order m_ -> state->m one-way).
      struct Outcome {
        JobError err;
        PersistentRunStats run;
        bool completed = false;
        bool cancelled = false;
        double ms = 0.0;
      };
      auto out = std::make_shared<Outcome>();
      sim::Event ev =
          dev.stream(static_cast<std::size_t>(l.stream))
              .host([pj, arch, devp, dev_index, out] {
                const auto t0 = Clock::now();
                try {
                  FaultInjector& fi = FaultInjector::global();
                  // Dispatch-site fault: the launch itself dies before any
                  // engine work (device hang at launch).
                  if (fi.enabled()) {
                    fi.maybe_throw(FaultSite::kDeviceDispatch, dev_index, "job dispatch");
                  }
                  if (pj->state->cancel.cancelled()) {
                    throw CancelledError("cancelled before start",
                                         pj->state->cancel.reason());
                  }
                  sim::WorkspaceLease lease = devp->lease_workspace();
                  // Lease-site fault: the workspace arena "allocation"
                  // fails. The lease above unwinds through RAII.
                  if (fi.enabled()) {
                    fi.maybe_throw(FaultSite::kWorkspaceLease, dev_index,
                                   "workspace lease");
                  }
                  if (pj->attempts > 0 && pj->snapshot != nullptr) {
                    // A previous attempt may have half-written the state
                    // grid; restore the pristine inputs so the retry is
                    // bit-identical to a fault-free run.
                    float* dst = pj->job.kind == JobKind::kStencil3D
                                     ? pj->job.a3->data()
                                     : pj->job.a2->data();
                    std::memcpy(dst, pj->snapshot->data(),
                                pj->snapshot->size() * sizeof(float));
                  }
                  out->run = run_job(*arch, pj->job, devp, lease.get());
                  out->completed = true;
                } catch (const FaultError& e) {
                  out->err = JobError{ErrorCode::kFaultInjected, e.transient(), e.what()};
                } catch (const CancelledError& e) {
                  out->cancelled = true;
                  out->err = cancel_error(e.reason(), e.what());
                } catch (const PreconditionError& e) {
                  out->err = JobError{ErrorCode::kInvalidJob, false, e.what()};
                } catch (const ResourceError& e) {
                  out->err = JobError{ErrorCode::kResource, false, e.what()};
                } catch (const std::exception& e) {
                  out->err = JobError{ErrorCode::kInternal, false, e.what()};
                }
                out->ms = ms_between(t0, Clock::now());
              });
      // Completion is callback-driven: free the device slot, settle the
      // attempt (fulfil / retry / quarantine), then pump so the next
      // queued job takes the slot. Runs on the stream's drain worker (or
      // inline above when the op already finished). Slot decrement and
      // pump hand-off share ONE critical section, and nothing after it
      // touches `this`: until the decrement the in-flight count keeps
      // drain() waiting, after it pump_locked's ownership protocol does.
      ev.on_ready([this, pj, out, dev_index] {
        group_->device(dev_index).job_finished();
        std::unique_lock<std::mutex> cb_lock(m_);
        --in_flight_[static_cast<std::size_t>(dev_index)];
        ++pj->attempts;
        pj->exec_ms += out->ms;
        if (pj->has_deadline) {
          std::erase_if(running_,
                        [&](const RunningJob& rj) { return rj.state == pj->state; });
        }
        Health& h = health_[static_cast<std::size_t>(dev_index)];
        bool requeued = false;
        if (out->completed) {
          h.consecutive_faults = 0;
          if (pj->units > 0.0 && out->ms > 0.0) {
            // Online shed calibration: EWMA of observed ms per model unit.
            const double sample = out->ms / pj->units;
            ewma_ms_per_unit_ =
                ewma_ms_per_unit_ <= 0.0 ? sample
                                         : 0.8 * ewma_ms_per_unit_ + 0.2 * sample;
          }
        } else if (out->err.code == ErrorCode::kFaultInjected) {
          ++faulted_attempts_;
          ++h.faults;
          ++h.consecutive_faults;
          if (!h.quarantined && h.consecutive_faults >= opt_.quarantine_after) {
            // Never quarantine the last healthy device: degraded service
            // beats refusing everything.
            int healthy = 0;
            for (const Health& other : health_) healthy += other.quarantined ? 0 : 1;
            if (healthy > 1) {
              h.quarantined = true;
              ++quarantines_;
              ++h.quarantines;
              h.next_probe = Clock::now() + ms_duration(opt_.probe_interval_ms);
              log_warn_limited(warn_quarantine_,
                               "server: quarantined device " + std::to_string(dev_index) +
                                   " after " + std::to_string(h.consecutive_faults) +
                                   " consecutive faults");
            }
          }
          const bool deadline_gone =
              pj->has_deadline && Clock::now() >= pj->deadline;
          if (out->err.transient && pj->attempts < opt_.max_attempts &&
              !pj->state->cancel.cancelled() && !deadline_gone) {
            // Transient fault with attempts left: back off and requeue.
            pj->attempt_errors.push_back(out->err);
            const double backoff =
                std::min(opt_.retry_backoff_ms * std::exp2(pj->attempts - 1),
                         opt_.retry_backoff_max_ms);
            pj->retry_at = Clock::now() + ms_duration(backoff);
            ++queued_;
            ++retries_;
            retry_q_.push_back(std::move(*pj));
            requeued = true;
          }
        }
        if (!requeued) {
          JobResult r;
          r.device = dev_index;
          r.queue_ms = pj->queue_ms;
          r.exec_ms = pj->exec_ms;
          r.attempts = pj->attempts;
          if (!out->completed) pj->attempt_errors.push_back(out->err);
          r.attempt_errors = std::move(pj->attempt_errors);
          r.seq = completion_seq_->fetch_add(1, std::memory_order_relaxed) + 1;
          ++completed_;
          if (out->completed) {
            r.status = JobStatus::kCompleted;
            r.run = out->run;
          } else if (out->cancelled) {
            r.status = JobStatus::kCancelled;
            r.error = out->err;
            ++cancelled_;
          } else {
            r.status = JobStatus::kFailed;
            r.error = out->err;
            ++failed_;
          }
          pj->state->fulfill(std::move(r));
        }
        pump_locked(cb_lock);
      });
    }
    lock.lock();
  }
  pumping_ = false;
  if (idle_locked()) {
    // Under the lock on purpose: after our unlock the waiter may destroy
    // the server, so the notify must not happen any later than this.
    idle_cv_.notify_all();
  }
}

// The watchdog serves the three time-driven duties: cancelling overdue
// work (queued jobs are fulfilled directly, running jobs get their token
// cancelled and unwind at the next sweep boundary), releasing retries
// whose backoff expired, and probing quarantined devices. One thread, one
// period — deadline resolution is opt_.watchdog_period_ms by design.
void SimServer::watchdog_main() {
  std::unique_lock<std::mutex> lock(m_);
  const auto period = ms_duration(opt_.watchdog_period_ms);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, period, [&] { return stopping_; });
    if (stopping_) break;
    const auto now = Clock::now();

    // Overdue queued work (tenant FIFOs and the retry queue): fulfil
    // kCancelled on the spot — these jobs never reached a device.
    std::uint64_t expired = 0;
    auto expire = [&](Pending& p) {
      p.state->cancel.cancel(static_cast<int>(ErrorCode::kDeadlineExceeded));
      JobResult r;
      r.status = JobStatus::kCancelled;
      r.error = JobError{ErrorCode::kDeadlineExceeded, false,
                         "deadline exceeded while queued"};
      r.attempts = p.attempts;
      r.attempt_errors = std::move(p.attempt_errors);
      r.queue_ms = ms_between(p.submitted_at, now);
      r.exec_ms = p.exec_ms;
      r.seq = completion_seq_->fetch_add(1, std::memory_order_relaxed) + 1;
      p.state->fulfill(std::move(r));
      --queued_;
      ++cancelled_;
      ++expired;
    };
    for (auto& [id, t] : tenants_) {
      for (auto it = t.q.begin(); it != t.q.end();) {
        if (it->has_deadline && it->deadline <= now) {
          expire(*it);
          it = t.q.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto it = retry_q_.begin(); it != retry_q_.end();) {
      if (it->has_deadline && it->deadline <= now) {
        expire(*it);
        it = retry_q_.erase(it);
      } else {
        ++it;
      }
    }
    // Overdue running work: cancel the token; the engine unwinds at its
    // next sweep boundary and the completion callback settles the job.
    for (const RunningJob& rj : running_) {
      if (rj.deadline <= now) {
        rj.state->cancel.cancel(static_cast<int>(ErrorCode::kDeadlineExceeded));
      }
    }
    if (expired > 0) {
      log_warn_limited(warn_deadline_, "server: watchdog cancelled overdue queued work");
    }

    const bool promoted = promote_due_retries_locked(now);

    // Quarantined devices due for a probe. The launch itself happens
    // outside m_ (stream enqueues take stream locks and may run
    // continuations inline).
    std::vector<int> to_probe;
    for (int i = 0; i < opt_.devices; ++i) {
      Health& h = health_[static_cast<std::size_t>(i)];
      if (h.quarantined && !h.probe_in_flight && now >= h.next_probe) {
        h.probe_in_flight = true;
        ++probes_active_;
        ++probes_;
        ++h.probes;
        to_probe.push_back(i);
      }
    }

    if (promoted || expired > 0) pump_locked(lock);
    if (idle_locked()) idle_cv_.notify_all();
    if (!to_probe.empty()) {
      lock.unlock();
      for (int i : to_probe) launch_probe(i);
      lock.lock();
    }
  }
}

void SimServer::launch_probe(int device) {
  // Only the watchdog thread calls this, so the lazily-created rig needs
  // no lock.
  auto& rig_slot = probe_rigs_[static_cast<std::size_t>(device)];
  if (rig_slot == nullptr) rig_slot = std::make_unique<ProbeRig>();
  ProbeRig* rig = rig_slot.get();
  sim::Device* devp = &group_->device(device);
  const sim::ArchSpec* arch = arch_;
  auto ok = std::make_shared<bool>(false);
  sim::Event ev = devp->stream(0).host([ok, arch, devp, device, rig] {
    // The probe walks the same fault sites a real job would — it succeeds
    // only when the device genuinely stopped faulting (or the plan moved
    // on), which is exactly the reinstatement condition.
    try {
      FaultInjector& fi = FaultInjector::global();
      if (fi.enabled()) fi.maybe_throw(FaultSite::kDeviceDispatch, device, "probe dispatch");
      sim::WorkspaceLease lease = devp->lease_workspace();
      if (fi.enabled()) {
        fi.maybe_throw(FaultSite::kWorkspaceLease, device, "probe workspace lease");
      }
      SimJob job = SimJob::stencil2d(rig->a, rig->b, rig->shape, 2);
      (void)run_job(*arch, job, devp, lease.get());
      *ok = true;
    } catch (const std::exception&) {
      *ok = false;
    }
  });
  ev.on_ready([this, ok, device] {
    std::unique_lock<std::mutex> cb_lock(m_);
    Health& h = health_[static_cast<std::size_t>(device)];
    h.probe_in_flight = false;
    --probes_active_;
    if (*ok) {
      if (h.quarantined) {
        h.quarantined = false;
        h.consecutive_faults = 0;
        ++reinstated_;
        log_warn_limited(warn_quarantine_,
                         "server: device " + std::to_string(device) +
                             " passed its probe, reinstated");
      }
      // The reinstated device is a packing target again.
      pump_locked(cb_lock);
    } else {
      h.next_probe = Clock::now() + ms_duration(opt_.probe_interval_ms);
    }
    if (idle_locked()) idle_cv_.notify_all();
  });
}

}  // namespace ssam::core
