#include "core/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <utility>

#include "gpusim/arch.hpp"

namespace ssam::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

/// One admitted, not-yet-dispatched job with its fair-queuing tag.
struct SimServer::Pending {
  SimJob job;
  std::shared_ptr<detail::JobState> state;
  double start_tag = 0.0;   ///< SFQ start tag; vtime advances here on dispatch
  double finish_tag = 0.0;  ///< start + cost/effective-weight; dispatch order key
  Clock::time_point submitted_at;
};

struct SimServer::Tenant {
  double weight = 1.0;
  double last_finish = 0.0;  ///< finish tag of the tenant's latest submit
  std::deque<Pending> q;     ///< FIFO within the tenant
};

SimServer::SimServer(ServerOptions opt)
    : opt_(opt),
      // Qualified: plain `config()` here would name the SimServer::config
      // accessor of this not-yet-constructed object.
      config_(::ssam::core::config()),
      arch_(opt.arch != nullptr ? opt.arch : &sim::tesla_v100()),
      completion_seq_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
  SSAM_REQUIRE(opt_.streams_per_device >= 1, "a device needs at least one stream");
  SSAM_REQUIRE(opt_.max_in_flight_per_device >= 1, "device job slots must be positive");
  int n = opt_.devices > 0 ? opt_.devices : config_.devices;
  if (opt.group != nullptr) {
    group_ = opt.group;
    n = std::min(opt_.devices > 0 ? n : group_->size(), group_->size());
  } else {
    group_ = &sim::DeviceGroup::shared(n);
  }
  opt_.devices = n;
  in_flight_.assign(static_cast<std::size_t>(n), 0);
  next_big_stream_.assign(static_cast<std::size_t>(n), 0);
  paused_ = opt_.start_paused;
}

SimServer::~SimServer() { drain(); }

JobFuture SimServer::submit(SimJob job) {
  auto state = std::make_shared<detail::JobState>();
  JobFuture fut(state);
  bool reject = false;
  {
    std::lock_guard<std::mutex> lock(m_);
    ++submitted_;
    if (queued_ >= opt_.max_pending) {
      ++rejected_;
      reject = true;
    } else {
      Tenant& t = tenants_[job.tenant];
      // Start-time fair queuing: the job's virtual finish time advances
      // the tenant's clock by cost over effective weight; priority buys a
      // larger share of the tenant's own weight.
      const double w = t.weight * (1.0 + static_cast<double>(std::max(0, job.priority)));
      const double start = std::max(vtime_, t.last_finish);
      Pending p;
      p.start_tag = start;
      p.finish_tag = start + job.cost() / std::max(w, 1e-9);
      t.last_finish = p.finish_tag;
      p.job = std::move(job);
      p.state = state;
      p.submitted_at = Clock::now();
      t.q.push_back(std::move(p));
      ++queued_;
    }
  }
  if (reject) {
    JobResult r;
    r.status = JobStatus::kRejected;
    r.error = "admission control: pending queue full";
    state->fulfill(std::move(r));
    return fut;
  }
  pump();
  return fut;
}

void SimServer::resume() {
  std::unique_lock<std::mutex> lock(m_);
  paused_ = false;
  pump_locked(lock);
}

void SimServer::set_tenant_weight(int tenant, double weight) {
  SSAM_REQUIRE(weight > 0.0, "tenant weight must be positive");
  std::lock_guard<std::mutex> lock(m_);
  tenants_[tenant].weight = weight;
}

SimServer::Stats SimServer::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  Stats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  s.failed = failed_;
  s.devices = opt_.devices;
  return s;
}

void SimServer::drain() {
  resume();
  std::unique_lock<std::mutex> lock(m_);
  // `!pumping_` is part of idle: a thread inside the dispatch loop (or a
  // completion callback that handed off to it) still holds `this`, so
  // drain must not return — and let the destructor run — underneath it.
  idle_cv_.wait(lock, [&] {
    if (pumping_ || queued_ != 0) return false;
    for (int f : in_flight_) {
      if (f != 0) return false;
    }
    return true;
  });
}

void SimServer::pump() {
  std::unique_lock<std::mutex> lock(m_);
  pump_locked(lock);
}

// One thread owns the dispatch loop at a time (`pumping_`). Re-entrant and
// concurrent callers — a completion callback running inline inside the
// owner's enqueue below, or another thread's submit — return immediately;
// the owner re-selects on its next lap and observes whatever they changed,
// so the backlog still drains and pump depth stays bounded (no recursion
// through chains of instantly-finishing jobs).
//
// Shutdown safety: the owner's LAST touch of server state is clearing
// `pumping_` and notifying drain() under the lock; a completion callback's
// last touch is its slot decrement + hand-off to pump_locked, also in one
// critical section. Together with drain() requiring `!pumping_`, no thread
// can still be behind `this` once drain observes idle — the destructor
// cannot pull the server out from under a late pump() call.
void SimServer::pump_locked(std::unique_lock<std::mutex>& lock) {
  if (paused_ || pumping_) return;
  pumping_ = true;
  struct Launch {
    Pending p;
    int device = 0;
    int stream = 0;
  };
  for (;;) {
    std::vector<Launch> batch;
    for (;;) {
      // Least-loaded device with a free job slot.
      int dev = -1;
      int best = std::numeric_limits<int>::max();
      for (int i = 0; i < opt_.devices; ++i) {
        const int f = in_flight_[static_cast<std::size_t>(i)];
        if (f < opt_.max_in_flight_per_device && f < best) {
          best = f;
          dev = i;
        }
      }
      if (dev < 0) break;
      // Queued job with the smallest finish tag (tenant FIFOs keep each
      // tenant's own order).
      Tenant* pick = nullptr;
      for (auto& [id, t] : tenants_) {
        if (t.q.empty()) continue;
        if (pick == nullptr || t.q.front().finish_tag < pick->q.front().finish_tag) {
          pick = &t;
        }
      }
      if (pick == nullptr) break;
      Launch l;
      l.p = std::move(pick->q.front());
      pick->q.pop_front();
      --queued_;
      // SFQ: virtual time advances to the start tag of the job entering
      // service, not its finish tag — a tenant going active now pays from
      // here, not for the full job it never competed with.
      vtime_ = std::max(vtime_, l.p.start_tag);
      ++in_flight_[static_cast<std::size_t>(dev)];
      l.device = dev;
      // Small jobs share the batch lane (stream 0); large jobs round-robin
      // the remaining streams so they overlap instead of queuing.
      if (opt_.streams_per_device > 1 && l.p.job.cells() >= opt_.small_job_cells) {
        int& cursor = next_big_stream_[static_cast<std::size_t>(dev)];
        l.stream = 1 + cursor % (opt_.streams_per_device - 1);
        ++cursor;
      }
      batch.push_back(std::move(l));
    }
    if (batch.empty()) break;
    // Enqueue outside the scheduler lock: stream enqueues take stream
    // locks, and an already-complete event runs its continuation (which
    // relocks m_) inline right here. `pumping_` keeps drain() parked
    // across this unlocked window.
    lock.unlock();
    for (Launch& l : batch) {
      sim::Device& dev = group_->device(l.device);
      dev.job_started();
      auto job = std::make_shared<SimJob>(std::move(l.p.job));
      auto state = l.p.state;
      const sim::ArchSpec* arch = arch_;
      auto seq = completion_seq_;
      sim::Device* devp = &dev;
      const int dev_index = l.device;
      const auto submitted_at = l.p.submitted_at;
      const auto dispatched_at = Clock::now();
      sim::Event ev =
          dev.stream(static_cast<std::size_t>(l.stream))
              .host([job, state, arch, seq, devp, dev_index, submitted_at,
                     dispatched_at] {
                JobResult r;
                r.device = dev_index;
                r.queue_ms = ms_between(submitted_at, dispatched_at);
                const auto t0 = Clock::now();
                try {
                  sim::WorkspaceLease lease = devp->lease_workspace();
                  r.run = run_job(*arch, *job, devp, lease.get());
                  r.status = JobStatus::kCompleted;
                } catch (const std::exception& e) {
                  r.status = JobStatus::kFailed;
                  r.error = e.what();
                }
                r.exec_ms = ms_between(t0, Clock::now());
                r.seq = seq->fetch_add(1, std::memory_order_relaxed) + 1;
                state->fulfill(std::move(r));
              });
      // Completion is callback-driven: free the device slot, then pump so
      // the next queued job takes it. Runs on the stream's drain worker
      // (or inline above when the op already finished). Slot decrement and
      // pump hand-off share ONE critical section, and nothing after it
      // touches `this`: until the decrement the in-flight count keeps
      // drain() waiting, after it pump_locked's ownership protocol does.
      ev.on_ready([this, state, dev_index] {
        bool job_failed = false;
        {
          std::lock_guard<std::mutex> slock(state->m);
          job_failed = state->result.status == JobStatus::kFailed;
        }
        group_->device(dev_index).job_finished();
        std::unique_lock<std::mutex> cb_lock(m_);
        --in_flight_[static_cast<std::size_t>(dev_index)];
        ++completed_;
        if (job_failed) ++failed_;
        pump_locked(cb_lock);
      });
    }
    lock.lock();
  }
  pumping_ = false;
  if (queued_ == 0 && std::all_of(in_flight_.begin(), in_flight_.end(),
                                  [](int f) { return f == 0; })) {
    // Under the lock on purpose: after our unlock the waiter may destroy
    // the server, so the notify must not happen any later than this.
    idle_cv_.notify_all();
  }
}

}  // namespace ssam::core
