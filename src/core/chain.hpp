// Stencil-chain compilation into the persistent engine: inter-*stage*
// systolic flow, the paper's execution model applied along the pipeline
// axis (ROADMAP item 1; the Halide stencil_chain workload shape).
//
// A chain is an ordered list of stage kernels S0..S(k-1): out = Sk-1(...
// S1(S0(in))). The staged reference runs one full-grid launch per stage and
// round-trips every intermediate through a global-sized array — exactly the
// traffic the systolic model exists to eliminate. `run_chain2d` instead
// *compiles* the chain into one persistent run: the domain is decomposed
// into resident band tiles (core/shard.hpp) and sweep s of every tile
// applies stage s, so stage N's tile output feeds stage N+1 in-resident.
// Inter-stage boundary flow rides the same zero-copy epoch-counted halo
// channels the engine uses for spatial halos — epoch s of a channel carries
// the stage-(s-1) output boundary, and the band layout's halo region is
// sized to the deepest stage (each side's depth is the max over the
// stages' t * dy reach, since the exchange refreshes halos between every
// pair of consecutive stages). A depth-k chain therefore needs ONE
// launch, not k, and the only global-array traffic is reading `in` once
// (fused first sweep) and writing `out` once (fused last sweep). Chains
// never alias input and output, so both boundary sweeps fuse at any depth
// — the iteration engine's sweeps >= 3 restriction exists only because
// iteration reads and writes the same array.
//
// Stage vocabulary (all lowered onto the unmodified SSAM kernel bodies):
//  * linear stencil — one tap set, optionally temporally blocked (t fused
//    applications of the same shape in registers count as one stage);
//  * dual stencil — two tap sets over the SAME input joined element-wise
//    (sobel_x/sobel_y -> magnitude). Both tap sets are padded with
//    zero-coefficient corner taps to their union extents so the two
//    partial sums ride one shuffle schedule over one register cache load;
//  * an optional element-wise `map` epilogue per stage (threshold, abs).
//
// `ChainGraph` is the DAG front end: it reuses the dependency-extraction
// idea of core/dgraph.hpp one level up — nodes are whole kernels instead
// of taps — and lowers linearizable DAGs (paths, map fusion, the
// two-branch combine diamond) onto the stage vector.
//
// Invariant (tests/test_chain.cpp, randomized differential suite): the
// fused run is bit-identical to the staged per-stage reference at every
// depth, pool size, tile count, and shard policy.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/iterate_persistent.hpp"

namespace ssam::core {

/// One stage of a chain. Build with the factories; `map` composes with
/// either kind. A dual stage joins two stencils of the same input and is
/// incompatible with temporal blocking (t must be 1).
template <typename T>
struct ChainStage {
  StencilShape<T> shape;    ///< primary tap set
  StencilShape<T> shape_b;  ///< dual: second tap set (empty taps = linear)
  std::function<T(T, T)> combine;  ///< dual: element-wise join of the two sums
  std::function<T(T)> map;  ///< optional element-wise epilogue
  int t = 1;                ///< fused applications per stage (linear only)

  [[nodiscard]] bool dual() const { return !shape_b.taps.empty(); }

  [[nodiscard]] static ChainStage stencil(StencilShape<T> shape, int t = 1) {
    ChainStage s;
    s.shape = std::move(shape);
    s.t = t;
    return s;
  }

  [[nodiscard]] static ChainStage dual_stencil(StencilShape<T> a, StencilShape<T> b,
                                               std::function<T(T, T)> join) {
    ChainStage s;
    s.shape = std::move(a);
    s.shape_b = std::move(b);
    s.combine = std::move(join);
    return s;
  }

  /// Returns a copy with `fn` appended to the stage's epilogue.
  [[nodiscard]] ChainStage with_map(std::function<T(T)> fn) const {
    ChainStage s = *this;
    if (s.map) {
      s.map = [f = std::move(s.map), g = std::move(fn)](T v) { return g(f(v)); };
    } else {
      s.map = std::move(fn);
    }
    return s;
  }
};

namespace detail {

/// Pads both tap sets of a dual stage with zero-coefficient corner taps at
/// their union extents, so build_plan gives the two passes identical
/// dx/dy ranges (same anchor, span, and register-cache footprint). A
/// zero-coefficient MAD is the identity on finite data, so padding never
/// changes results — it only aligns the shuffle schedules.
template <typename T>
[[nodiscard]] std::pair<SystolicPlan<T>, SystolicPlan<T>> dual_plans(
    const ChainStage<T>& st) {
  std::vector<ref::Tap<T>> a = st.shape.taps;
  std::vector<ref::Tap<T>> b = st.shape_b.taps;
  int dx0 = 0, dx1 = 0, dy0 = 0, dy1 = 0;
  for (const auto* taps : {&a, &b}) {
    for (const auto& t : *taps) {
      dx0 = std::min(dx0, t.dx);
      dx1 = std::max(dx1, t.dx);
      dy0 = std::min(dy0, t.dy);
      dy1 = std::max(dy1, t.dy);
    }
  }
  for (auto* taps : {&a, &b}) {
    taps->push_back({dx0, dy0, 0, T{}});
    taps->push_back({dx1, dy1, 0, T{}});
  }
  return {build_plan(a), build_plan(b)};
}

/// The plan governing a stage's geometry and halo reach (dual: the padded
/// primary — both padded plans share extents by construction).
template <typename T>
[[nodiscard]] SystolicPlan<T> chain_stage_plan(const ChainStage<T>& st) {
  if (st.dual()) return dual_plans(st).first;
  return build_plan(st.shape.taps);
}

template <typename T>
void validate_chain_stage(const ChainStage<T>& st) {
  SSAM_REQUIRE(!st.shape.taps.empty(), "chain stage needs a stencil shape");
  SSAM_REQUIRE(st.t >= 1, "chain stage needs t >= 1");
  if (st.dual()) {
    SSAM_REQUIRE(st.t == 1, "a dual chain stage cannot be temporally blocked");
    SSAM_REQUIRE(static_cast<bool>(st.combine), "a dual chain stage needs a combine");
  }
}

/// Dual-stencil body: one register cache load, two partial sums riding the
/// same column/shuffle schedule (the padded plans guarantee equal extents),
/// joined element-wise per lane. Mirrors make_stencil2d_body.
template <typename T>
[[nodiscard]] auto make_stencil2d_dual_body(const Stencil2dSetup& s,
                                            GridView2D<const T> in, ColumnPass<T> pa,
                                            ColumnPass<T> pb, std::function<T(T, T)> join,
                                            GridView2D<T> out) {
  const Blocking2D geom = s.geom;
  const int dy_min = s.dy_min;
  const int anchor = s.anchor;
  const Index width = s.width;
  const Index oy_origin = s.row_origin;
  const Index store_off = s.store_row_offset;
  return [=, pa = std::move(pa), pb = std::move(pb),
          join = std::move(join)](auto& blk) {
    for (int w = 0; w < blk.warp_count(); ++w) {
      auto& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;
      const Index row0 = oy_origin + static_cast<Index>(blk.id().y) * geom.p + dy_min;

      auto rc = make_register_cache<T>(wc, geom.c());
      rc.load_rows(in, col0, row0);

      InlineVec<Reg<T>, kMaxOutputsPerThread> result(geom.p);
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sa = wc.uniform(T{});
        Reg<T> sb = wc.uniform(T{});
        for (std::size_t ci = 0; ci < pa.columns.size(); ++ci) {
          if (ci > 0) {
            sa = wc.shfl_up(sim::kFullMask, sa, 1);
            sb = wc.shfl_up(sim::kFullMask, sb, 1);
          }
          for (const ColumnTap<T>& tap : pa.columns[ci]) {
            sa = wc.mad(rc.row(i + tap.dy - dy_min), tap.coeff, sa);
          }
          for (const ColumnTap<T>& tap : pb.columns[ci]) {
            sb = wc.mad(rc.row(i + tap.dy - dy_min), tap.coeff, sb);
          }
        }
        // The join is element-wise host code (functional mode never reads
        // Reg::ready); invalid halo lanes are joined too but never stored.
        Reg<T> r = sa;
        for (int l = 0; l < sim::kWarpSize; ++l) r.v[l] = join(sa.v[l], sb.v[l]);
        result[i] = r;
      }

      store_valid_rows(wc, out, col0 - anchor,
                       oy_origin + store_off + static_cast<Index>(blk.id().y) * geom.p,
                       geom.p, geom.span,
                       [&](int i) -> const Reg<T>& { return result[i]; });
    }
  };
}

/// A stage lowered against concrete input/output views: its launch config
/// plus the bound body. `band` >= 0 shrinks the launch to a band of rows
/// (`cfg.grid.y = ceil(band / p)`); -1 keeps the full-grid geometry.
struct Chain2dStageKernel {
  sim::LaunchConfig cfg;
  std::function<void(sim::FunctionalBlockContext&)> body;
};

template <typename T>
[[nodiscard]] Chain2dStageKernel make_chain2d_stage_kernel(
    const ChainStage<T>& st, GridView2D<const T> in, GridView2D<T> out, Index row_origin,
    Index store_off, Index band, int p, int block_threads) {
  Chain2dStageKernel k;
  auto place = [&](Stencil2dSetup& s) {
    s.row_origin = row_origin;
    s.store_row_offset = store_off;
    if (band >= 0) s.cfg.grid.y = static_cast<int>(ceil_div(band, static_cast<Index>(p)));
    k.cfg = s.cfg;
  };
  if (st.dual()) {
    auto [pa, pb] = dual_plans(st);
    const StencilOptions sopt{p, block_threads};
    Stencil2dSetup s = stencil2d_setup(in, pa, sopt);
    place(s);
    k.body = make_stencil2d_dual_body<T>(s, in, pa.passes.front(), pb.passes.front(),
                                         st.combine, out);
    return k;
  }
  const SystolicPlan<T> plan = build_plan(st.shape.taps);
  if (st.t == 1) {
    const StencilOptions sopt{p, block_threads};
    Stencil2dSetup s = stencil2d_setup(in, plan, sopt);
    place(s);
    k.body = make_stencil2d_body<T>(s, in, plan.passes.front(), out);
    return k;
  }
  const TemporalSsamOptions topt{st.t, p, block_threads};
  Stencil2dSetup s = stencil2d_temporal_setup(in, plan, topt);
  place(s);
  k.body = make_stencil2d_temporal_body<T>(s, in, plan.passes.front(), st.t,
                                           plan.rows_halo(), out);
  return k;
}

template <typename T>
void chain_apply_map(T* p, Index n, const std::function<T(T)>& fn) {
  for (Index i = 0; i < n; ++i) p[i] = fn(p[i]);
}

}  // namespace detail

/// Runs the chain `stages` over `in` into `out` (distinct grids; `in` is
/// never written). Policy kAuto/kPersistent compiles a depth >= 2 chain
/// into one persistent run (stats.persistent = true); kRelaunch — and any
/// depth-1 chain, where there is no inter-stage flow to fuse — runs the
/// staged per-stage reference, ping-ponging intermediates through the
/// workspace's scratch block (one warm allocation for the whole chain, not
/// one per stage). `opt.t` is ignored: temporal depth is per-stage
/// (ChainStage::t). Fused and staged paths are bit-identical; sharding
/// applies to the fused path (a staged run executes on `opt.device`'s pool
/// or the global pool).
template <typename T>
PersistentRunStats run_chain2d(const sim::ArchSpec& arch, const Grid2D<T>& in,
                               Grid2D<T>& out, const std::vector<ChainStage<T>>& stages,
                               const PersistentOptions& opt = {},
                               sim::PersistentWorkspace* ws = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>, "residence buffers hold raw elements");
  SSAM_REQUIRE(!stages.empty(), "empty chain");
  SSAM_REQUIRE(in.width() == out.width() && in.height() == out.height(),
               "chain input/output grids must match");
  SSAM_REQUIRE(in.data() != out.data(), "chain input and output must be distinct grids");
  SSAM_REQUIRE(opt.device == nullptr || opt.shard.mode == ShardMode::kSingle,
               "a device-pinned run cannot also be sharded");
  for (const ChainStage<T>& st : stages) detail::validate_chain_stage(st);
  const int k = static_cast<int>(stages.size());
  const Index w = in.width();
  const Index h = in.height();
  ThreadPool& lane = opt.device != nullptr ? opt.device->pool() : ThreadPool::global();

  PersistentRunStats r;
  r.sweeps = k;
  r.t = 1;

  // Uniform band-layout halo: the deepest reach on each side across the
  // stages. Every exchange carries the full depth; a shallower stage reads
  // its smaller window from the filled region.
  Index ht = 0;
  Index hb = 0;
  for (const ChainStage<T>& st : stages) {
    const SystolicPlan<T> plan = detail::chain_stage_plan(st);
    ht = std::max<Index>(ht, static_cast<Index>(-st.t * plan.dy_min));
    hb = std::max<Index>(hb, static_cast<Index>(st.t * plan.dy_max));
  }
  const Index min_band = std::max<Index>({ht, hb, 1});

  const bool fused = k >= 2 && detail::choose_persistent(opt.policy, k);
  if (!fused) {
    // Staged path: one launch per stage, intermediates ping-ponged through
    // the workspace scratch block. Also the depth-1 "chain": a single
    // launch straight from `in` to `out`.
    r.tiles = 1;
    detail::log_policy_decision("run_chain2d", opt.policy, r);
    const int dev = opt.device != nullptr ? opt.device->index() : -1;
    T* ping = nullptr;
    T* pong = nullptr;
    if (k >= 2) {
      sim::PersistentWorkspace& wsp = ws != nullptr ? *ws : detail::default_workspace();
      const std::size_t gbytes = static_cast<std::size_t>(w * h) * sizeof(T);
      const std::size_t stride = (gbytes + 63) / 64 * 64;
      std::byte* p = wsp.scratch(stride + gbytes);
      ping = reinterpret_cast<T*>(p);
      pong = reinterpret_cast<T*>(p + stride);
    }
    GridView2D<const T> cur = in.cview();
    for (int s = 0; s < k; ++s) {
      detail::relaunch_sweep_gate(opt.cancel, dev);
      T* dst = s == k - 1 ? out.data() : (s % 2 == 0 ? ping : pong);
      const GridView2D<T> out_v(dst, w, h, w);
      detail::Chain2dStageKernel kk = detail::make_chain2d_stage_kernel(
          stages[static_cast<std::size_t>(s)], cur, out_v, 0, 0, -1, opt.p,
          opt.block_threads);
      sim::detail::run_functional_grid_on(lane, arch, kk.cfg, kk.body);
      if (opt.device != nullptr) {
        opt.device->counters().sweeps.fetch_add(1, std::memory_order_relaxed);
      }
      if (stages[static_cast<std::size_t>(s)].map) {
        detail::chain_apply_map(dst, w * h, stages[static_cast<std::size_t>(s)].map);
      }
      cur = GridView2D<const T>(dst, w, h, w);
    }
    return r;
  }

  detail::BandLayoutRequest req;
  req.units = h;
  req.unit_elems = w;
  req.elem_bytes = sizeof(T);
  req.ht = ht;
  req.hb = hb;
  req.align = static_cast<Index>(opt.p);
  req.min_band = min_band;
  req.want_tiles = opt.tiles;
  req.lane_workers = opt.device != nullptr ? opt.device->pool().size() : 0;
  sim::PersistentWorkspace& wsp = ws != nullptr ? *ws : detail::default_workspace();
  const detail::BandLayout L = detail::build_band_layout(req, opt.shard, wsp);
  const int tiles = L.tiles();
  r.tiles = tiles;
  r.devices = L.sharded() ? static_cast<int>(L.devices.size()) : 1;
  r.sharded = L.sharded();
  r.persistent = true;
  detail::log_policy_decision("run_chain2d", opt.policy, r);

  detail::RunControl ctl;
  ctl.cancel = opt.cancel;
  ctl.device = opt.device != nullptr ? opt.device->index() : -1;
  ctl.faults = FaultInjector::global().enabled();

  std::vector<std::unique_ptr<detail::ResidentBandTile<T>>> tile_objs;
  tile_objs.reserve(static_cast<std::size_t>(tiles));
  for (int i = 0; i < tiles; ++i) {
    const Index y0 = L.starts[static_cast<std::size_t>(i)];
    const Index band = L.starts[static_cast<std::size_t>(i) + 1] - y0;
    const Index buf_rows = ht + band + hb;
    typename detail::ResidentBandTile<T>::Wiring wr;
    wr.arch = &arch;
    wr.src = in.data();
    wr.dst = out.data();
    wr.unit_elems = w;
    wr.band = band;
    wr.ht = ht;
    wr.hb = hb;
    wr.u0 = y0;
    wr.sweeps = k;
    T* ba = reinterpret_cast<T*>(L.buf_a[static_cast<std::size_t>(i)]);
    T* bb = reinterpret_cast<T*>(L.buf_b[static_cast<std::size_t>(i)]);
    wr.buf_a = ba;
    wr.buf_b = bb;
    if (i > 0) {
      wr.in_lo = &L.chans[static_cast<std::size_t>(2 * (i - 1))];
      wr.out_lo = &L.chans[static_cast<std::size_t>(2 * (i - 1) + 1)];
      wr.seam_lo = L.seam_after(i - 1);
    }
    if (i + 1 < tiles) {
      wr.out_hi = &L.chans[static_cast<std::size_t>(2 * i)];
      wr.in_hi = &L.chans[static_cast<std::size_t>(2 * i + 1)];
      wr.seam_hi = L.seam_after(i);
    }
    wr.counters = L.counters_of(i);
    if (wr.counters == nullptr && opt.device != nullptr) {
      wr.counters = &opt.device->counters();
    }
    wr.control = &ctl;

    // Sweep s reads epoch s (buffer s % 2) and writes epoch s + 1 (the
    // other buffer); the first sweep reads the global input and the last
    // stores to the global output, both fused (src != dst).
    const GridView2D<const T> in_a(ba, w, buf_rows, w);
    const GridView2D<const T> in_b(bb, w, buf_rows, w);
    const GridView2D<T> out_a(ba, w, ht + band, w);
    const GridView2D<T> out_b(bb, w, ht + band, w);
    const GridView2D<T> out_global(out.data(), w, y0 + band, w);
    wr.chain.reserve(static_cast<std::size_t>(k));
    for (int s = 0; s < k; ++s) {
      const bool first = s == 0;
      const bool last = s == k - 1;
      const GridView2D<const T> in_v = first ? in.cview() : (s % 2 == 0 ? in_a : in_b);
      const GridView2D<T> out_v =
          last ? out_global : ((s + 1) % 2 == 0 ? out_a : out_b);
      const Index origin = first ? y0 : ht;
      const Index soff = first ? ht - y0 : (last ? y0 - ht : 0);
      detail::Chain2dStageKernel kk = detail::make_chain2d_stage_kernel(
          stages[static_cast<std::size_t>(s)], in_v, out_v, origin, soff, band, opt.p,
          opt.block_threads);
      typename detail::ResidentBandTile<T>::ChainSweep cs;
      cs.cfg = kk.cfg;
      cs.body = std::move(kk.body);
      if (stages[static_cast<std::size_t>(s)].map) {
        T* base = last ? out.data() + y0 * w
                       : ((s + 1) % 2 == 0 ? ba : bb) + ht * w;
        cs.epilogue = [base, n = band * w,
                       fn = stages[static_cast<std::size_t>(s)].map] {
          detail::chain_apply_map(base, n, fn);
        };
      }
      wr.chain.push_back(std::move(cs));
    }
    tile_objs.push_back(std::make_unique<detail::ResidentBandTile<T>>(std::move(wr)));
  }

  std::vector<sim::PersistentTask*> tasks;
  tasks.reserve(tile_objs.size());
  for (auto& t : tile_objs) tasks.push_back(t.get());
  if (!L.sharded()) {
    sim::run_persistent_on(lane, tasks, &ctl.stop);
  } else {
    std::vector<std::span<sim::PersistentTask* const>> groups;
    groups.reserve(L.tile_range.size());
    for (const auto& [tb, te] : L.tile_range) {
      groups.emplace_back(tasks.data() + tb, static_cast<std::size_t>(te - tb));
    }
    sim::run_persistent_group(L.devices, groups, &ctl.stop);
  }
  ctl.throw_if_aborted();
  return r;
}

/// DAG front end for chain construction: nodes are whole kernels, edges
/// their data dependencies (core/dgraph.hpp one level up). `compile`
/// topologically orders the graph (creation order already is one — edges
/// only point backward) and lowers it onto a linear stage vector:
///  * a stencil node becomes a linear stage;
///  * a map node fuses into its producer stage's epilogue (a map straight
///    off the chain input becomes an identity stencil carrying the map);
///  * the two-branch diamond — two stencils reading the same producer,
///    joined by a combine that is their only consumer — becomes one dual
///    stage;
///  * anything else (fan-out > 2, cross-edges, multiple sinks) throws
///    PreconditionError: the graph is not linearizable onto the band
///    pipeline.
template <typename T>
class ChainGraph {
 public:
  /// The chain input node (id 0, created on first call).
  [[nodiscard]] int input() {
    if (nodes_.empty()) nodes_.push_back(Node{Kind::kInput, {-1, -1}, {}, {}, {}, 1});
    return 0;
  }

  [[nodiscard]] int stencil(int src, StencilShape<T> shape, int t = 1) {
    check_src(src);
    nodes_.push_back(Node{Kind::kStencil, {src, -1}, std::move(shape), {}, {}, t});
    return static_cast<int>(nodes_.size()) - 1;
  }

  [[nodiscard]] int map(int src, std::function<T(T)> fn) {
    check_src(src);
    nodes_.push_back(Node{Kind::kMap, {src, -1}, {}, {}, std::move(fn), 1});
    return static_cast<int>(nodes_.size()) - 1;
  }

  [[nodiscard]] int combine(int a, int b, std::function<T(T, T)> fn) {
    check_src(a);
    check_src(b);
    SSAM_REQUIRE(a != b, "combine needs two distinct inputs");
    nodes_.push_back(Node{Kind::kCombine, {a, b}, {}, std::move(fn), {}, 1});
    return static_cast<int>(nodes_.size()) - 1;
  }

  [[nodiscard]] std::vector<ChainStage<T>> compile() const {
    SSAM_REQUIRE(!nodes_.empty(), "empty chain graph");
    const int n = static_cast<int>(nodes_.size());
    std::vector<std::vector<int>> cons(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int s : nodes_[static_cast<std::size_t>(i)].src) {
        if (s >= 0) cons[static_cast<std::size_t>(s)].push_back(i);
      }
    }
    int sinks = 0;
    for (int i = 0; i < n; ++i) {
      if (cons[static_cast<std::size_t>(i)].empty()) ++sinks;
    }
    SSAM_REQUIRE(sinks == 1, "chain graph must have exactly one output");

    std::vector<ChainStage<T>> stages;
    int visited = 1;
    int cur = 0;  // the input node
    // Absorbs any run of single-consumer map nodes after `from` into
    // `stage`'s epilogue; returns the last absorbed node.
    auto absorb_maps = [&](int from, ChainStage<T>& stage) {
      while (cons[static_cast<std::size_t>(from)].size() == 1) {
        const int c = cons[static_cast<std::size_t>(from)].front();
        if (nodes_[static_cast<std::size_t>(c)].kind != Kind::kMap) break;
        stage = stage.with_map(nodes_[static_cast<std::size_t>(c)].map);
        from = c;
        ++visited;
      }
      return from;
    };
    while (!cons[static_cast<std::size_t>(cur)].empty()) {
      const auto& cc = cons[static_cast<std::size_t>(cur)];
      if (cc.size() == 1) {
        const Node& c = nodes_[static_cast<std::size_t>(cc.front())];
        ChainStage<T> stage;
        if (c.kind == Kind::kStencil) {
          stage = ChainStage<T>::stencil(c.shape, c.t);
        } else if (c.kind == Kind::kMap) {
          // A map with no stencil to ride: an identity stencil carries it.
          StencilShape<T> id;
          id.name = "identity";
          id.taps.push_back({0, 0, 0, T{1}});
          stage = ChainStage<T>::stencil(std::move(id)).with_map(c.map);
        } else {
          SSAM_REQUIRE(false,
                       "combine must join two stencil branches of one producer");
        }
        ++visited;
        cur = absorb_maps(cc.front(), stage);
        stages.push_back(std::move(stage));
        continue;
      }
      SSAM_REQUIRE(cc.size() == 2,
                   "chain graph fans out beyond the two-branch combine diamond");
      const Node& a = nodes_[static_cast<std::size_t>(cc[0])];
      const Node& b = nodes_[static_cast<std::size_t>(cc[1])];
      SSAM_REQUIRE(a.kind == Kind::kStencil && b.kind == Kind::kStencil &&
                       a.t == 1 && b.t == 1,
                   "a combine diamond needs two plain stencil branches");
      SSAM_REQUIRE(cons[static_cast<std::size_t>(cc[0])].size() == 1 &&
                       cons[static_cast<std::size_t>(cc[1])].size() == 1 &&
                       cons[static_cast<std::size_t>(cc[0])].front() ==
                           cons[static_cast<std::size_t>(cc[1])].front(),
                   "the two branches must join in one combine node");
      const int jid = cons[static_cast<std::size_t>(cc[0])].front();
      const Node& join = nodes_[static_cast<std::size_t>(jid)];
      SSAM_REQUIRE(join.kind == Kind::kCombine, "branches must join in a combine");
      // Branch order follows the combine's arguments, not creation order.
      const Node& lhs = nodes_[static_cast<std::size_t>(join.src[0])];
      const Node& rhs = nodes_[static_cast<std::size_t>(join.src[1])];
      ChainStage<T> stage = ChainStage<T>::dual_stencil(lhs.shape, rhs.shape, join.combine);
      visited += 3;
      cur = absorb_maps(jid, stage);
      stages.push_back(std::move(stage));
    }
    SSAM_REQUIRE(visited == n, "chain graph has disconnected nodes");
    SSAM_REQUIRE(!stages.empty(), "chain graph produces no stages");
    return stages;
  }

 private:
  enum class Kind { kInput, kStencil, kMap, kCombine };
  struct Node {
    Kind kind;
    int src[2];
    StencilShape<T> shape;
    std::function<T(T, T)> combine;
    std::function<T(T)> map;
    int t;
  };

  void check_src(int src) const {
    SSAM_REQUIRE(src >= 0 && src < static_cast<int>(nodes_.size()),
                 "chain graph edge references an unknown node");
  }

  std::vector<Node> nodes_;
};

}  // namespace ssam::core
