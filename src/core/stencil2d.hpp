// SSAM 2D stencil kernel (paper Section 4.8, Listing 2), generalized to any
// stencil shape through the SystolicPlan column schedule.
//
// Unlike the convolution kernel, stencil coefficients travel as kernel
// arguments (immediates), not through shared memory — stencils have few
// coefficients (Section 4.8). Structure per sliding-window step:
//   for each column (increasing dx): shuffle partial sum up one lane, then
//   MAD every (dy, coeff) tap of the column against the register cache.
#pragma once

#include "common/grid.hpp"
#include "core/dgraph.hpp"
#include "core/kernel_common.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/stream.hpp"
#include "rcache/blocking.hpp"
#include "rcache/register_cache.hpp"

namespace ssam::core {

struct StencilOptions {
  int p = 4;
  int block_threads = 128;
};

[[nodiscard]] inline int stencil2d_ssam_regs(const int rows_halo, int p) {
  return (p + rows_halo) + p + 10;
}

namespace detail {

/// Validated geometry + launch config shared by the sync and async entry
/// points.
struct Stencil2dSetup {
  Blocking2D geom;
  sim::LaunchConfig cfg;
  int dy_min = 0;
  int anchor = 0;
  Index width = 0;
  Index height = 0;
  /// Output-row origin of the sweep. The full-grid entry points leave this
  /// 0; the persistent iteration engine (core/iterate_persistent.hpp) runs
  /// the same body over a tile's residence buffer by shifting the origin to
  /// the first band row and shrinking `cfg.grid.y` to the band.
  Index row_origin = 0;
  /// Added to the store row only — lets the engine's fused first/last
  /// sweeps read one array (global grid or residence buffer) and store into
  /// the other without an intermediate copy.
  Index store_row_offset = 0;
};

template <typename T>
[[nodiscard]] Stencil2dSetup stencil2d_setup(const GridView2D<const T>& in,
                                             const SystolicPlan<T>& plan,
                                             const StencilOptions& opt) {
  SSAM_REQUIRE(plan.passes.size() == 1 && plan.passes.front().dz == 0,
               "stencil2d_ssam needs a single-plane plan");
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  Stencil2dSetup s;
  s.width = in.width();
  s.height = in.height();
  s.geom.span = plan.span();
  s.geom.dx_min = plan.dx_min;
  s.geom.rows_halo = plan.rows_halo();
  s.geom.p = opt.p;
  s.geom.block_threads = opt.block_threads;
  s.cfg.grid = s.geom.grid(s.width, s.height);
  s.cfg.block_threads = opt.block_threads;
  s.cfg.regs_per_thread = stencil2d_ssam_regs(s.geom.rows_halo, opt.p);
  s.dy_min = plan.dy_min;
  s.anchor = plan.anchor_dx;
  return s;
}

/// Mode-generic stencil body. The column pass is captured *by value* (it
/// owns its tap vectors) so the body is self-contained for stream ops.
template <typename T>
[[nodiscard]] auto make_stencil2d_body(const Stencil2dSetup& s, GridView2D<const T> in,
                                       ColumnPass<T> pass, GridView2D<T> out) {
  const Blocking2D geom = s.geom;
  const int dy_min = s.dy_min;
  const int anchor = s.anchor;
  const Index width = s.width;
  const Index height = s.height;
  const Index oy_origin = s.row_origin;
  const Index store_off = s.store_row_offset;
  return [=, pass = std::move(pass)](auto& blk) {
    for (int w = 0; w < blk.warp_count(); ++w) {
      auto& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;
      const Index row0 = oy_origin + static_cast<Index>(blk.id().y) * geom.p + dy_min;

      auto rc = make_register_cache<T>(wc, geom.c());
      rc.load_rows(in, col0, row0);

      InlineVec<Reg<T>, kMaxOutputsPerThread> result(geom.p);
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sum = wc.uniform(T{});
        for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
          if (ci > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
          for (const ColumnTap<T>& tap : pass.columns[ci]) {
            sum = wc.mad(rc.row(i + tap.dy - dy_min), tap.coeff, sum);
          }
        }
        result[i] = sum;
      }

      store_valid_rows(wc, out, col0 - anchor,
                       oy_origin + store_off + static_cast<Index>(blk.id().y) * geom.p,
                       geom.p, geom.span,
                       [&](int i) -> const Reg<T>& { return result[i]; });
    }
  };
}

}  // namespace detail

/// Runs one stencil sweep over `in` into `out` using the plan's shift
/// schedule. The plan must be 2D (single dz = 0 pass).
template <typename T>
KernelStats stencil2d_ssam(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                           const SystolicPlan<T>& plan, GridView2D<T> out,
                           const StencilOptions& opt = {},
                           ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  const detail::Stencil2dSetup s = detail::stencil2d_setup(in, plan, opt);
  auto body = detail::make_stencil2d_body<T>(s, in, plan.passes.front(), out);
  return sim::launch(arch, s.cfg, body, mode, sample);
}

/// Convenience overload building the minimal plan from a shape.
template <typename T>
KernelStats stencil2d_ssam(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                           const StencilShape<T>& shape, GridView2D<T> out,
                           const StencilOptions& opt = {},
                           ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  return stencil2d_ssam(arch, in, build_plan(shape.taps), out, opt, mode, sample);
}

/// Enqueues one stencil sweep on `stream` and returns immediately. The plan's
/// column pass is copied into the op; `in`/`out` storage (and `arch`) must
/// stay alive until the stream or returned event is synchronized.
template <typename T>
sim::Event stencil2d_ssam_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                const GridView2D<const T>& in, const SystolicPlan<T>& plan,
                                GridView2D<T> out, const StencilOptions& opt = {}) {
  const detail::Stencil2dSetup s = detail::stencil2d_setup(in, plan, opt);
  auto body = detail::make_stencil2d_body<T>(s, in, plan.passes.front(), out);
  return stream.launch(arch, s.cfg, std::move(body));
}

template <typename T>
sim::Event stencil2d_ssam_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                const GridView2D<const T>& in, const StencilShape<T>& shape,
                                GridView2D<T> out, const StencilOptions& opt = {}) {
  return stencil2d_ssam_async(stream, arch, in, build_plan(shape.taps), out, opt);
}

}  // namespace ssam::core
