// SSAM 2D stencil kernel (paper Section 4.8, Listing 2), generalized to any
// stencil shape through the SystolicPlan column schedule.
//
// Unlike the convolution kernel, stencil coefficients travel as kernel
// arguments (immediates), not through shared memory — stencils have few
// coefficients (Section 4.8). Structure per sliding-window step:
//   for each column (increasing dx): shuffle partial sum up one lane, then
//   MAD every (dy, coeff) tap of the column against the register cache.
#pragma once

#include "common/grid.hpp"
#include "core/dgraph.hpp"
#include "core/kernel_common.hpp"
#include "core/stencil_shape.hpp"
#include "rcache/blocking.hpp"
#include "rcache/register_cache.hpp"

namespace ssam::core {

struct StencilOptions {
  int p = 4;
  int block_threads = 128;
};

[[nodiscard]] inline int stencil2d_ssam_regs(const int rows_halo, int p) {
  return (p + rows_halo) + p + 10;
}

/// Runs one stencil sweep over `in` into `out` using the plan's shift
/// schedule. The plan must be 2D (single dz = 0 pass).
template <typename T>
KernelStats stencil2d_ssam(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                           const SystolicPlan<T>& plan, GridView2D<T> out,
                           const StencilOptions& opt = {},
                           ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  SSAM_REQUIRE(plan.passes.size() == 1 && plan.passes.front().dz == 0,
               "stencil2d_ssam needs a single-plane plan");
  const ColumnPass<T>& pass = plan.passes.front();
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  const Index width = in.width();
  const Index height = in.height();

  Blocking2D geom;
  geom.span = plan.span();
  geom.dx_min = plan.dx_min;
  geom.rows_halo = plan.rows_halo();
  geom.p = opt.p;
  geom.block_threads = opt.block_threads;

  sim::LaunchConfig cfg;
  cfg.grid = geom.grid(width, height);
  cfg.block_threads = opt.block_threads;
  cfg.regs_per_thread = stencil2d_ssam_regs(geom.rows_halo, opt.p);

  const int dy_min = plan.dy_min;
  const int anchor = plan.anchor_dx;

  auto body = [&, geom, dy_min, anchor, width, height](auto& blk) {
    for (int w = 0; w < blk.warp_count(); ++w) {
      auto& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;
      const Index row0 = static_cast<Index>(blk.id().y) * geom.p + dy_min;

      auto rc = make_register_cache<T>(wc, geom.c());
      rc.load_rows(in, col0, row0);

      InlineVec<Reg<T>, kMaxOutputsPerThread> result(geom.p);
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sum = wc.uniform(T{});
        for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
          if (ci > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
          for (const ColumnTap<T>& tap : pass.columns[ci]) {
            sum = wc.mad(rc.row(i + tap.dy - dy_min), tap.coeff, sum);
          }
        }
        result[i] = sum;
      }

      store_valid_rows(wc, out, col0 - anchor, static_cast<Index>(blk.id().y) * geom.p,
                       geom.p, geom.span,
                       [&](int i) -> const Reg<T>& { return result[i]; });
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

/// Convenience overload building the minimal plan from a shape.
template <typename T>
KernelStats stencil2d_ssam(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                           const StencilShape<T>& shape, GridView2D<T> out,
                           const StencilOptions& opt = {},
                           ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  return stencil2d_ssam(arch, in, build_plan(shape.taps), out, opt, mode, sample);
}

}  // namespace ssam::core
