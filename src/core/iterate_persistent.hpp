// Persistent iteration engine: cross-iteration tile residency for the
// iterative stencil drivers (the PERKS execution model of Zhang et al.,
// arXiv:2204.02064, emulated on the host pool — see gpusim/persistent.hpp
// for the scheduling substrate).
//
// The per-step relaunch drivers (core/iterate.hpp) re-read and re-write the
// full grids through global memory every time step. The persistent engine
// instead decomposes the domain into full-width bands (2D: row bands, 3D:
// z-plane bands), pins each band to one pool worker for the whole run, and
// keeps the band's working set *resident* in per-tile ping/pong buffers
// across steps. Between steps only the boundary rows/planes move, directly
// between neighbouring tiles through lock-free epoch-counted halo channels.
// The channels are zero-copy: a producer writes its boundary straight into
// the halo region of the consumer's residence buffer (every tile flips
// buffers once per sweep, so epoch e lives in buffer e % 2 everywhere), and
// the epoch counters are pure synchronization. The first sweep reads the
// source grid directly and the last sweep stores directly back to it, so a
// run touches the global arrays exactly once on each side with no staging
// copies at all.
//
// Each band sweep replays the unmodified SSAM kernel body (register cache +
// systolic shuffles) over the residence buffer through the owner's pooled
// BlockContext, shifted by a row/plane origin — so outputs are bit-identical
// to the relaunch path in functional mode, which the persistent-path tests
// pin with golden hashes. Temporal blocking composes: with t > 1 every
// exchange carries t*r halo units and each sweep advances t fused steps in
// registers, exactly like the temporal kernels the per-step path launches.
//
// An optional element-wise post hook runs over the band after each sweep
// (before the boundary is published), with an optional second resident
// field — enough for two-field updates like the acoustic wave equation
// (examples/acoustic_wave_3d.cpp). The post path keeps the staged
// load/drain (the hook must see every produced band in residence).
#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/cancel.hpp"
#include "common/log.hpp"
#include "core/config.hpp"
#include "core/faultinject.hpp"
#include "core/iterate.hpp"
#include "core/shard.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil3d_temporal.hpp"
#include "gpusim/device.hpp"
#include "gpusim/persistent.hpp"

namespace ssam::core {

// IterationPolicy (kAuto / kRelaunch / kPersistent) lives in
// core/config.hpp so SimConfig can carry the default without pulling in
// the engine; the name is unchanged (ssam::core::IterationPolicy).

struct PersistentOptions {
  IterationPolicy policy = IterationPolicy::kAuto;
  ShardPolicy shard;      ///< single pool, or sharded across virtual devices
  int tiles = 0;  ///< 0: auto (residence-sized bands, >= 2 per worker)
  int t = 1;      ///< fused time steps per sweep (temporal blocking)
  int p = 4;              ///< sliding-window outputs per thread
  int block_threads = 128;
  int warps3d = 8;        ///< planes per block for the 3D kernels
  /// Pin the whole (single-shard) run to this virtual device: sweeps fan
  /// out over the device's pool slice only and its counters record the
  /// traffic. This is how the SimServer packs independent jobs onto
  /// different devices; mutually exclusive with a sharded policy (a shard
  /// split already names its devices). Null: the global pool.
  sim::Device* device = nullptr;
  /// Cooperative cancellation, observed at every sweep boundary of both
  /// paths (persistent tiles and relaunch loops). A cancelled run unwinds
  /// by throwing CancelledError on the calling thread; an inert
  /// (default-constructed) token costs nothing.
  CancelToken cancel;
};

/// What a run actually did (the policy decision is runtime).
struct PersistentRunStats {
  int sweeps = 0;  ///< kernel sweeps executed; plain steps = sweeps * t
  int t = 1;
  int tiles = 1;
  int devices = 1;          ///< shards actually used (after domain clamping)
  bool sharded = false;     ///< true: ran across a virtual device group
  bool persistent = false;  ///< false: per-step relaunch path was used
};

namespace detail {

/// Sentinel for "no post hook".
struct NoPost {};

/// Shared abort state of one persistent run. An exception escaping a pool
/// worker's task would terminate the process, so resident tiles never
/// throw: they *record* a cancellation or injected fault here and park, the
/// cooperative scheduler polls `stop` and unwinds every participant, and
/// the engine rethrows on the calling thread once run_persistent_on
/// returns. The first recorded fault wins; an aborted run is torn at
/// tile/sweep boundaries only (some tiles may already have drained), so the
/// global arrays are in an unspecified-but-valid state — the server's retry
/// path restores inputs from a snapshot before re-running.
struct RunControl {
  CancelToken cancel;   ///< observed at every sweep boundary
  int device = -1;      ///< fault attribution (FaultPlan device filter)
  bool faults = false;  ///< injector armed at run start
  std::atomic<bool> stop{false};
  /// -1: no fault; else (site << 1) | transient — one atomic so the calling
  /// thread reads site and class consistently without extra ordering.
  std::atomic<int> fault_{-1};

  /// Tile-side gate, called only when the sweep would actually execute
  /// (after the readiness checks) so blocked-tile polling never inflates
  /// the fault draw stream. True: the run is aborting, park the tile.
  [[nodiscard]] bool sweep_gate(bool publishing) {
    if (stop.load(std::memory_order_acquire)) return true;
    if (cancel.cancelled()) {
      stop.store(true, std::memory_order_release);
      return true;
    }
    if (faults) {
      FaultInjector& fi = FaultInjector::global();
      if (fi.should_inject(FaultSite::kKernelSweep, device)) {
        record_fault(FaultSite::kKernelSweep);
        return true;
      }
      if (publishing && fi.should_inject(FaultSite::kHaloSend, device)) {
        record_fault(FaultSite::kHaloSend);
        return true;
      }
    }
    return false;
  }

  void record_fault(FaultSite site) {
    const bool transient = FaultInjector::global().plan().site(site).transient;
    int expected = -1;
    fault_.compare_exchange_strong(
        expected, (static_cast<int>(site) << 1) | (transient ? 1 : 0),
        std::memory_order_acq_rel);
    stop.store(true, std::memory_order_release);
  }

  /// Engine-side epilogue on the calling thread: rethrows what the run
  /// recorded (a fault beats a concurrent cancel — it is what actually
  /// stopped the work).
  void throw_if_aborted() const {
    const int f = fault_.load(std::memory_order_acquire);
    if (f >= 0) {
      const auto site = static_cast<FaultSite>(f >> 1);
      throw FaultError(site, (f & 1) != 0,
                       std::string("injected fault at ") + fault_site_name(site) +
                           " aborted the persistent run");
    }
    if (cancel.cancelled()) {
      throw CancelledError("persistent run cancelled", cancel.reason());
    }
  }
};

/// Relaunch-path gate, called on the driving thread between sweeps — that
/// thread owns the loop, so it may throw directly.
inline void relaunch_sweep_gate(const CancelToken& cancel, int device) {
  if (cancel.cancelled()) {
    throw CancelledError("iterative run cancelled", cancel.reason());
  }
  FaultInjector& fi = FaultInjector::global();
  if (fi.enabled()) fi.maybe_throw(FaultSite::kKernelSweep, device, "relaunch sweep");
}

/// One resident band tile: the dimension-agnostic state machine. A `unit`
/// is one contiguous row (2D) or plane (3D) of `unit_elems` elements; the
/// residence buffers hold ht + band + hb units, the band starting at unit
/// ht. The sweep bodies and the post hook are injected by the engine.
template <typename T>
class ResidentBandTile final : public sim::PersistentTask {
 public:
  /// One stage of a fused chain run (core/chain.hpp): its own launch
  /// geometry and body (stages differ in span/halo, so neither is shared),
  /// plus an optional fully-bound element-wise epilogue over the stage's
  /// output band. The epilogue runs before the boundary is published so
  /// consumers always see post-map state — the staged reference maps the
  /// whole intermediate grid before the next stage reads it.
  struct ChainSweep {
    sim::LaunchConfig cfg;
    std::function<void(sim::FunctionalBlockContext&)> body;
    std::function<void()> epilogue;
  };

  struct Wiring {
    const sim::ArchSpec* arch = nullptr;
    sim::LaunchConfig cfg;
    /// sweep[0] reads buf_a and writes buf_b; sweep[1] the reverse.
    std::function<void(sim::FunctionalBlockContext&)> sweep[2];
    /// Fused boundary sweeps: `first` reads the global array and writes
    /// buf_b (skips the staged load; engine sets it only when sweeps >= 3,
    /// which the channel backpressure needs to order the fused final store
    /// after every neighbour's fused global read); `last` reads
    /// buf_[(sweeps-1) % 2] and stores straight to the global array.
    /// Either may be empty: the staged kLoad/kDrain copies take over.
    std::function<void(sim::FunctionalBlockContext&)> sweep_first;
    std::function<void(sim::FunctionalBlockContext&)> sweep_last;
    /// Optional element-wise hook over the band (next, cur, aux pointers to
    /// the first band unit); null aux when no aux field is resident.
    std::function<void(T*, const T*, T*)> post;
    const T* src = nullptr;  ///< initial state (full array)
    T* dst = nullptr;        ///< final state target (full array)
    T* aux_global = nullptr; ///< optional aux field (full array)
    Index unit_elems = 0;
    Index band = 0;  ///< units owned by this tile
    Index ht = 0;    ///< halo units above (toward unit 0)
    Index hb = 0;    ///< halo units below
    Index u0 = 0;    ///< first band unit in the global arrays
    int sweeps = 0;
    T* buf_a = nullptr;
    T* buf_b = nullptr;
    T* aux_res = nullptr;
    sim::HaloChannel* in_lo = nullptr;   ///< from the tile above: ht units
    sim::HaloChannel* in_hi = nullptr;   ///< from the tile below: hb units
    sim::HaloChannel* out_lo = nullptr;  ///< to the tile above: my top hb units
    sim::HaloChannel* out_hi = nullptr;  ///< to the tile below: my bottom ht units
    /// Sharded runs: the owning device's counters, and which outgoing
    /// channels cross a device seam (diagnostics only — seam channels
    /// behave exactly like intra-shard ones).
    sim::DeviceCounters* counters = nullptr;
    bool seam_lo = false;
    bool seam_hi = false;
    /// The run's shared abort state (cancellation + fault injection); the
    /// engine wires every tile of a run to the same object.
    RunControl* control = nullptr;
    /// Chain mode (non-empty): sweep s runs chain[s] instead of the
    /// iteration bodies above — stage s's tile output feeds stage s + 1
    /// through the same epoch-counted channels (epoch s = stage s - 1
    /// output). Chain runs require src != dst, so the first sweep always
    /// reads the global input and the last always stores to the global
    /// output (both ends fused at ANY depth — the sweeps >= 3 restriction
    /// exists only because iteration aliases src and dst); the staged
    /// kLoad/kDrain copies and `sweep`/`sweep_first`/`sweep_last` are
    /// bypassed entirely. `sweeps` must equal chain.size().
    std::vector<ChainSweep> chain;
  };

  explicit ResidentBandTile(Wiring w) : w_(std::move(w)) {}

  [[nodiscard]] bool done() const override { return state_ == State::kDone; }

  [[nodiscard]] bool try_advance() override {
    switch (state_) {
      case State::kLoad: {
        if (!w_.chain.empty()) {
          // Chain mode: the first sweep reads the global input (epoch 0
          // needs no publication) and nothing else is resident yet.
          state_ = State::kStep;
          return true;
        }
        if (!w_.sweep_first) {
          // Staged load: copy the band into residence and publish the
          // initial boundary as epoch 0. (With a fused first sweep the
          // global array itself serves as epoch 0.)
          copy_units(w_.buf_a + w_.ht * w_.unit_elems, w_.src + w_.u0 * w_.unit_elems,
                     w_.band);
          publish_boundaries(w_.buf_a, 0);
        }
        if (w_.aux_res != nullptr) {
          copy_units(w_.aux_res, w_.aux_global + w_.u0 * w_.unit_elems, w_.band);
        }
        state_ = w_.sweeps > 0 ? State::kStep : State::kDrain;
        return true;
      }
      case State::kStep: {
        const bool chain = !w_.chain.empty();
        const bool fused_first =
            s_ == 0 && (chain || static_cast<bool>(w_.sweep_first));
        const bool fused_last =
            s_ == w_.sweeps - 1 && (chain || static_cast<bool>(w_.sweep_last));
        // All-or-nothing readiness: input epoch present (unless this sweep
        // reads the global array) and output halo slots free, otherwise
        // yield to another tile.
        if (!fused_first) {
          if (w_.in_lo != nullptr && !w_.in_lo->available(s_)) return false;
          if (w_.in_hi != nullptr && !w_.in_hi->available(s_)) return false;
        }
        const bool will_publish = s_ + 1 < w_.sweeps;  // the final boundary
                                                       // has no consumer
        if (will_publish) {
          if (w_.out_lo != nullptr && !w_.out_lo->can_publish(s_ + 1)) return false;
          if (w_.out_hi != nullptr && !w_.out_hi->can_publish(s_ + 1)) return false;
        }
        // Ready to execute: last chance to observe an abort or absorb an
        // injected fault. Parking here (not throwing — we are on a pool
        // worker) lets the scheduler unwind at a clean sweep boundary.
        if (w_.control != nullptr && w_.control->sweep_gate(will_publish)) return false;
        if (!fused_first) replicate_domain_edges();
        if (chain) {
          const ChainSweep& cs = w_.chain[static_cast<std::size_t>(s_)];
          sim::run_grid_on_caller(*w_.arch, cs.cfg, cs.body);
        } else {
          const auto& body = fused_first ? w_.sweep_first
                             : fused_last ? w_.sweep_last
                                          : w_.sweep[flip_];
          sim::run_grid_on_caller(*w_.arch, w_.cfg, body);
        }
        if (w_.counters != nullptr) {
          w_.counters->sweeps.fetch_add(1, std::memory_order_relaxed);
        }
        // The consumed halos (epoch s_) free up for epoch s_ + 2.
        if (w_.in_lo != nullptr) w_.in_lo->release(s_);
        if (w_.in_hi != nullptr) w_.in_hi->release(s_);
        if (chain) {
          const ChainSweep& cs = w_.chain[static_cast<std::size_t>(s_)];
          if (cs.epilogue) cs.epilogue();
        } else if (w_.post) {
          w_.post(next_buf() + w_.ht * w_.unit_elems, cur_buf() + w_.ht * w_.unit_elems,
                  w_.aux_res);
        }
        if (will_publish) publish_boundaries(next_buf(), s_ + 1);
        flip_ ^= 1;
        ++s_;
        if (s_ == w_.sweeps) state_ = State::kDrain;
        return true;
      }
      case State::kDrain: {
        if (!w_.chain.empty()) {
          // Chain mode: the fused last sweep already stored to the global
          // output; nothing is staged.
          state_ = State::kDone;
          return true;
        }
        if (!w_.sweep_last && w_.sweeps > 0) {
          copy_units(w_.dst + w_.u0 * w_.unit_elems, cur_buf() + w_.ht * w_.unit_elems,
                     w_.band);
        }
        if (w_.aux_res != nullptr) {
          copy_units(w_.aux_global + w_.u0 * w_.unit_elems, w_.aux_res, w_.band);
        }
        state_ = State::kDone;
        return true;
      }
      case State::kDone:
        return false;
    }
    return false;  // unreachable
  }

 private:
  enum class State { kLoad, kStep, kDrain, kDone };

  [[nodiscard]] T* cur_buf() const { return flip_ == 0 ? w_.buf_a : w_.buf_b; }
  [[nodiscard]] T* next_buf() const { return flip_ == 0 ? w_.buf_b : w_.buf_a; }

  void copy_units(T* dst, const T* src, Index units) const {
    std::memcpy(dst, src, static_cast<std::size_t>(units * w_.unit_elems) * sizeof(T));
  }

  /// Domain-boundary halos (no neighbour tile) replicate the band edge unit
  /// of the current state — exactly what the full-grid kernels' clamped
  /// loads would read. Channel-side halos need nothing here: the producer
  /// already wrote epoch s_ into this buffer's halo region.
  void replicate_domain_edges() {
    T* buf = cur_buf();
    const Index ue = w_.unit_elems;
    if (w_.in_lo == nullptr) {
      for (Index u = 0; u < w_.ht; ++u) copy_units(buf + u * ue, buf + w_.ht * ue, 1);
    }
    if (w_.in_hi == nullptr) {
      T* below = buf + (w_.ht + w_.band) * ue;
      const T* edge = buf + (w_.ht + w_.band - 1) * ue;
      for (Index u = 0; u < w_.hb; ++u) copy_units(below + u * ue, edge, 1);
    }
  }

  void note_publish(std::size_t bytes, bool seam) const {
    if (w_.counters == nullptr) return;
    w_.counters->halo_bytes_out.fetch_add(bytes, std::memory_order_relaxed);
    if (seam) {
      w_.counters->seam_bytes_out.fetch_add(bytes, std::memory_order_relaxed);
      w_.counters->seam_epochs_out.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Publishes the boundary of `buf`'s band as epoch `e` — written directly
  /// into the consumer's buffer-(e%2) halo region (zero-copy channels).
  void publish_boundaries(const T* buf, std::int64_t e) {
    const Index ue = w_.unit_elems;
    if (w_.out_lo != nullptr) {  // my top hb units feed the upper tile's lower halo
      const std::size_t bytes = static_cast<std::size_t>(w_.hb * ue) * sizeof(T);
      std::memcpy(w_.out_lo->publish_slot(e), buf + w_.ht * ue, bytes);
      w_.out_lo->publish(e);
      note_publish(bytes, w_.seam_lo);
    }
    if (w_.out_hi != nullptr) {  // my bottom ht units feed the lower tile's upper halo
      const std::size_t bytes = static_cast<std::size_t>(w_.ht * ue) * sizeof(T);
      std::memcpy(w_.out_hi->publish_slot(e), buf + w_.band * ue, bytes);
      w_.out_hi->publish(e);
      note_publish(bytes, w_.seam_hi);
    }
  }

  Wiring w_;
  State state_ = State::kLoad;
  int flip_ = 0;
  int s_ = 0;
};

[[nodiscard]] inline sim::PersistentWorkspace& default_workspace() {
  thread_local sim::PersistentWorkspace ws;
  return ws;
}

[[nodiscard]] inline bool choose_persistent(IterationPolicy policy, int sweeps) {
  switch (policy) {
    case IterationPolicy::kRelaunch:
      return false;
    case IterationPolicy::kPersistent:
      return true;
    case IterationPolicy::kAuto:
      return sweeps >= 2;  // one sweep cannot amortize tile setup
  }
  return false;
}

/// Deterministic one-line record of what the runtime policy knobs resolved
/// to (no addresses, no timings) — the auto-selection tests pin this shape.
inline void log_policy_decision(const char* engine, IterationPolicy policy,
                                const PersistentRunStats& r) {
  if (log_level() > LogLevel::kDebug) return;
  const char* requested = policy == IterationPolicy::kAuto        ? "auto"
                          : policy == IterationPolicy::kRelaunch  ? "relaunch"
                                                                  : "persistent";
  std::string m(engine);
  m += ": policy=";
  m += requested;
  m += " -> ";
  m += r.persistent ? "persistent" : "relaunch";
  m += r.sharded ? ", shard=sharded(" + std::to_string(r.devices) + ")"
                 : std::string(", shard=single");
  m += ", tiles=" + std::to_string(r.tiles);
  m += ", sweeps=" + std::to_string(r.sweeps);
  m += ", t=" + std::to_string(r.t);
  log_debug(m);
}

}  // namespace detail

/// Runs `sweeps` stencil sweeps (each advancing `opt.t` fused time steps)
/// over `a`; the final state ends in `a`. `b` is scratch used only by the
/// relaunch fallback. The optional `post` hook
/// `post(GridView2D<T> next, GridView2D<const T> cur, GridView2D<T> aux)`
/// runs element-wise over each band right after its sweep (requires
/// opt.t == 1); `aux` is an optional second field kept resident with the
/// tile. Outputs are bit-identical to the per-step relaunch path.
template <typename T, typename PostFn = detail::NoPost>
PersistentRunStats iterate_stencil2d_persistent(const sim::ArchSpec& arch, Grid2D<T>& a,
                                                Grid2D<T>& b, const StencilShape<T>& shape,
                                                int sweeps,
                                                const PersistentOptions& opt = {},
                                                PostFn post = {}, Grid2D<T>* aux = nullptr,
                                                sim::PersistentWorkspace* ws = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>, "residence buffers hold raw elements");
  constexpr bool kHasPost = !std::is_same_v<PostFn, detail::NoPost>;
  SSAM_REQUIRE(sweeps >= 0, "negative sweep count");
  SSAM_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "ping/pong grids must match");
  SSAM_REQUIRE(opt.device == nullptr || opt.shard.mode == ShardMode::kSingle,
               "a device-pinned run cannot also be sharded");
  ThreadPool& lane = opt.device != nullptr ? opt.device->pool() : ThreadPool::global();
  if constexpr (kHasPost) {
    SSAM_REQUIRE(opt.t == 1, "post hook requires t == 1 (halos carry post-processed state)");
  }
  if (aux != nullptr) {
    SSAM_REQUIRE(aux->width() == a.width() && aux->height() == a.height(),
                 "aux grid must match the state grid");
  }
  const SystolicPlan<T> plan = build_plan(shape.taps);
  const TemporalSsamOptions topt{opt.t, opt.p, opt.block_threads};
  const StencilOptions sopt{opt.p, opt.block_threads};
  const Index w = a.width();
  const Index h = a.height();
  const int dy_max = plan.dy_min + plan.rows_halo();
  const Index ht = static_cast<Index>(-opt.t * plan.dy_min);
  const Index hb = static_cast<Index>(opt.t * dy_max);
  const Index min_band = std::max<Index>({ht, hb, 1});
  PersistentRunStats r;
  r.sweeps = sweeps;
  r.t = opt.t;

  if (!detail::choose_persistent(opt.policy, sweeps)) {
    const detail::ShardSplit sp =
        detail::split_shards(h, opt.shard, static_cast<Index>(opt.p), min_band);
    r.devices = sp.sharded() ? sp.shards() : 1;
    r.sharded = sp.sharded();
    if (sweeps > 0 && sp.sharded()) {
      // Sharded relaunch: each device sweeps its shard's rows of the global
      // grids on its own pool, using the same origin-shifted bodies the
      // persistent engine uses for fused boundary sweeps, with the store
      // clipped at the shard seam (rows past the band belong to the next
      // device). One group barrier per sweep keeps the global arrays
      // consistent, so seam reads come straight from them and results are
      // bit-identical to the single-pool per-step path.
      const int shards = sp.shards();
      std::vector<sim::LaunchConfig> cfgs(static_cast<std::size_t>(shards));
      std::array<std::vector<std::function<void(sim::FunctionalBlockContext&)>>, 2>
          bodies;
      bodies[0].resize(static_cast<std::size_t>(shards));
      bodies[1].resize(static_cast<std::size_t>(shards));
      for (int s = 0; s < shards; ++s) {
        const Index y0 = sp.starts[static_cast<std::size_t>(s)];
        const Index band = sp.starts[static_cast<std::size_t>(s) + 1] - y0;
        const GridView2D<T> out_b(b.data(), w, y0 + band, w);
        const GridView2D<T> out_a(a.data(), w, y0 + band, w);
        auto make = [&](GridView2D<const T> in, GridView2D<T> out) {
          if (opt.t == 1) {
            detail::Stencil2dSetup st = detail::stencil2d_setup(in, plan, sopt);
            st.row_origin = y0;
            st.cfg.grid.y = static_cast<int>(ceil_div(band, static_cast<Index>(opt.p)));
            cfgs[static_cast<std::size_t>(s)] = st.cfg;
            return std::function<void(sim::FunctionalBlockContext&)>(
                detail::make_stencil2d_body<T>(st, in, plan.passes.front(), out));
          }
          detail::Stencil2dSetup st = detail::stencil2d_temporal_setup(in, plan, topt);
          st.row_origin = y0;
          st.cfg.grid.y = static_cast<int>(ceil_div(band, static_cast<Index>(opt.p)));
          cfgs[static_cast<std::size_t>(s)] = st.cfg;
          return std::function<void(sim::FunctionalBlockContext&)>(
              detail::make_stencil2d_temporal_body<T>(st, in, plan.passes.front(), opt.t,
                                                      plan.rows_halo(), out));
        };
        bodies[0][static_cast<std::size_t>(s)] = make(a.cview(), out_b);
        bodies[1][static_cast<std::size_t>(s)] = make(b.cview(), out_a);
      }
      for (int sw = 0; sw < sweeps; ++sw) {
        detail::relaunch_sweep_gate(opt.cancel, -1);
        const int parity = sw % 2;
        sim::for_each_device(sp.devices, [&](int s) {
          sim::detail::run_functional_grid_on(
              sp.devices[static_cast<std::size_t>(s)]->pool(), arch,
              cfgs[static_cast<std::size_t>(s)],
              bodies[static_cast<std::size_t>(parity)][static_cast<std::size_t>(s)]);
          if constexpr (kHasPost) {
            const Index y0 = sp.starts[static_cast<std::size_t>(s)];
            const Index band = sp.starts[static_cast<std::size_t>(s) + 1] - y0;
            Grid2D<T>& nxt = parity == 0 ? b : a;
            Grid2D<T>& cur = parity == 0 ? a : b;
            post(GridView2D<T>(nxt.data() + y0 * w, w, band, w),
                 GridView2D<const T>(cur.data() + y0 * w, w, band, w),
                 aux != nullptr ? GridView2D<T>(aux->data() + y0 * w, w, band, w)
                                : GridView2D<T>{});
          }
        });
      }
      if (sweeps % 2 == 1) std::swap(a, b);
    } else if (sweeps > 0) {
      // The functional fan-out goes through `lane` directly so a
      // device-pinned relaunch run (server dispatch) stays on its device's
      // slice; on the global pool this is exactly what sim::launch does in
      // functional mode.
      auto run_sweeps = [&](const sim::LaunchConfig& cfg, auto& ping, auto& pong) {
        const int dev = opt.device != nullptr ? opt.device->index() : -1;
        for (int sw = 0; sw < sweeps; ++sw) {
          detail::relaunch_sweep_gate(opt.cancel, dev);
          if (sw % 2 == 0) {
            sim::detail::run_functional_grid_on(lane, arch, cfg, ping);
          } else {
            sim::detail::run_functional_grid_on(lane, arch, cfg, pong);
          }
          if (opt.device != nullptr) {
            opt.device->counters().sweeps.fetch_add(1, std::memory_order_relaxed);
          }
          if constexpr (kHasPost) {
            Grid2D<T>& nxt = (sw % 2 == 0) ? b : a;
            Grid2D<T>& cur = (sw % 2 == 0) ? a : b;
            post(nxt.view(), cur.cview(),
                 aux != nullptr ? aux->view() : GridView2D<T>{});
          }
        }
        if (sweeps % 2 == 1) std::swap(a, b);
      };
      if (opt.t == 1) {
        const detail::Stencil2dSetup s = detail::stencil2d_setup(a.cview(), plan, sopt);
        auto ping = detail::make_stencil2d_body<T>(s, a.cview(), plan.passes.front(),
                                                   b.view());
        auto pong = detail::make_stencil2d_body<T>(s, b.cview(), plan.passes.front(),
                                                   a.view());
        run_sweeps(s.cfg, ping, pong);
      } else {
        const detail::Stencil2dSetup s =
            detail::stencil2d_temporal_setup(a.cview(), plan, topt);
        auto ping = detail::make_stencil2d_temporal_body<T>(
            s, a.cview(), plan.passes.front(), opt.t, plan.rows_halo(), b.view());
        auto pong = detail::make_stencil2d_temporal_body<T>(
            s, b.cview(), plan.passes.front(), opt.t, plan.rows_halo(), a.view());
        run_sweeps(s.cfg, ping, pong);
      }
    }
    detail::log_policy_decision("iterate_stencil2d", opt.policy, r);
    return r;
  }

  detail::BandLayoutRequest req;
  req.units = h;
  req.unit_elems = w;
  req.elem_bytes = sizeof(T);
  req.ht = ht;
  req.hb = hb;
  req.align = static_cast<Index>(opt.p);
  req.min_band = min_band;
  req.want_tiles = opt.tiles;
  req.has_aux = aux != nullptr;
  req.lane_workers = opt.device != nullptr ? opt.device->pool().size() : 0;
  sim::PersistentWorkspace& wsp = ws != nullptr ? *ws : detail::default_workspace();
  const detail::BandLayout L = detail::build_band_layout(req, opt.shard, wsp);
  const int tiles = L.tiles();
  r.tiles = tiles;
  r.devices = L.sharded() ? static_cast<int>(L.devices.size()) : 1;
  r.sharded = L.sharded();
  r.persistent = true;
  detail::log_policy_decision("iterate_stencil2d", opt.policy, r);
  if (sweeps == 0) return r;
  const std::vector<Index>& starts = L.starts;
  const std::span<sim::HaloChannel> chans = L.chans;

  detail::RunControl ctl;
  ctl.cancel = opt.cancel;
  ctl.device = opt.device != nullptr ? opt.device->index() : -1;
  ctl.faults = FaultInjector::global().enabled();

  std::vector<std::unique_ptr<detail::ResidentBandTile<T>>> tile_objs;
  tile_objs.reserve(static_cast<std::size_t>(tiles));
  for (int i = 0; i < tiles; ++i) {
    const Index y0 = starts[static_cast<std::size_t>(i)];
    const Index band = starts[static_cast<std::size_t>(i) + 1] - y0;
    const Index buf_rows = ht + band + hb;
    typename detail::ResidentBandTile<T>::Wiring wr;
    wr.arch = &arch;
    wr.src = a.data();
    wr.dst = a.data();
    wr.unit_elems = w;
    wr.band = band;
    wr.ht = ht;
    wr.hb = hb;
    wr.u0 = y0;
    wr.sweeps = sweeps;
    wr.buf_a = reinterpret_cast<T*>(L.buf_a[static_cast<std::size_t>(i)]);
    wr.buf_b = reinterpret_cast<T*>(L.buf_b[static_cast<std::size_t>(i)]);
    if (aux != nullptr) {
      wr.aux_global = aux->data();
      wr.aux_res = reinterpret_cast<T*>(L.aux[static_cast<std::size_t>(i)]);
    }
    if (i > 0) {
      wr.in_lo = &chans[static_cast<std::size_t>(2 * (i - 1))];
      wr.out_lo = &chans[static_cast<std::size_t>(2 * (i - 1) + 1)];
      wr.seam_lo = L.seam_after(i - 1);
    }
    if (i + 1 < tiles) {
      wr.out_hi = &chans[static_cast<std::size_t>(2 * i)];
      wr.in_hi = &chans[static_cast<std::size_t>(2 * i + 1)];
      wr.seam_hi = L.seam_after(i);
    }
    wr.counters = L.counters_of(i);
    if (wr.counters == nullptr && opt.device != nullptr) {
      wr.counters = &opt.device->counters();
    }
    wr.control = &ctl;

    const GridView2D<const T> in_a(wr.buf_a, w, buf_rows, w);
    const GridView2D<const T> in_b(wr.buf_b, w, buf_rows, w);
    // Store views end at the band so the halo rows of the target buffer are
    // never written by the sweep (the next exchange fills them).
    const GridView2D<T> out_a(wr.buf_a, w, ht + band, w);
    const GridView2D<T> out_b(wr.buf_b, w, ht + band, w);
    const GridView2D<T> out_global(a.data(), w, y0 + band, w);
    const int grid_y = static_cast<int>(ceil_div(band, static_cast<Index>(opt.p)));
    const int last_parity = (sweeps - 1) % 2;
    auto make_body = [&](Index origin, Index store_off, GridView2D<const T> in,
                         GridView2D<T> out) {
      if (opt.t == 1) {
        detail::Stencil2dSetup s = detail::stencil2d_setup(in, plan, sopt);
        s.row_origin = origin;
        s.store_row_offset = store_off;
        s.cfg.grid.y = grid_y;
        wr.cfg = s.cfg;
        return std::function<void(sim::FunctionalBlockContext&)>(
            detail::make_stencil2d_body<T>(s, in, plan.passes.front(), out));
      }
      detail::Stencil2dSetup s = detail::stencil2d_temporal_setup(in, plan, topt);
      s.row_origin = origin;
      s.store_row_offset = store_off;
      s.cfg.grid.y = grid_y;
      wr.cfg = s.cfg;
      return std::function<void(sim::FunctionalBlockContext&)>(
          detail::make_stencil2d_temporal_body<T>(s, in, plan.passes.front(), opt.t,
                                                  plan.rows_halo(), out));
    };
    wr.sweep[0] = make_body(ht, 0, in_a, out_b);
    wr.sweep[1] = make_body(ht, 0, in_b, out_a);
    if constexpr (!kHasPost) {
      // Fused boundary sweeps (see Wiring): first reads the global array,
      // last stores to it. The first fusion needs sweeps >= 3 so the
      // channel backpressure orders it against neighbours' final stores.
      if (sweeps >= 3) {
        wr.sweep_first = make_body(y0, ht - y0, a.cview(), out_b);
      }
      wr.sweep_last = make_body(ht, y0 - ht, last_parity == 0 ? in_a : in_b, out_global);
    }
    if constexpr (kHasPost) {
      wr.post = [post, w, band](T* nb, const T* cb, T* ab) {
        post(GridView2D<T>(nb, w, band, w), GridView2D<const T>(cb, w, band, w),
             GridView2D<T>(ab, w, ab != nullptr ? band : 0, w));
      };
    }
    tile_objs.push_back(std::make_unique<detail::ResidentBandTile<T>>(std::move(wr)));
  }

  std::vector<sim::PersistentTask*> tasks;
  tasks.reserve(tile_objs.size());
  for (auto& t : tile_objs) tasks.push_back(t.get());
  if (!L.sharded()) {
    sim::run_persistent_on(lane, tasks, &ctl.stop);
  } else {
    std::vector<std::span<sim::PersistentTask* const>> groups;
    groups.reserve(L.tile_range.size());
    for (const auto& [tb, te] : L.tile_range) {
      groups.emplace_back(tasks.data() + tb, static_cast<std::size_t>(te - tb));
    }
    sim::run_persistent_group(L.devices, groups, &ctl.stop);
  }
  ctl.throw_if_aborted();
  return r;
}

/// 3D variant: full-xy z-plane bands. Same contract as the 2D engine; the
/// post hook signature is
/// `post(GridView3D<T> next, GridView3D<const T> cur, GridView3D<T> aux)`
/// over each tile's band planes.
template <typename T, typename PostFn = detail::NoPost>
PersistentRunStats iterate_stencil3d_persistent(const sim::ArchSpec& arch, Grid3D<T>& a,
                                                Grid3D<T>& b, const StencilShape<T>& shape,
                                                int sweeps,
                                                const PersistentOptions& opt = {},
                                                PostFn post = {}, Grid3D<T>* aux = nullptr,
                                                sim::PersistentWorkspace* ws = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>, "residence buffers hold raw elements");
  constexpr bool kHasPost = !std::is_same_v<PostFn, detail::NoPost>;
  SSAM_REQUIRE(sweeps >= 0, "negative sweep count");
  SSAM_REQUIRE(a.nx() == b.nx() && a.ny() == b.ny() && a.nz() == b.nz(),
               "ping/pong grids must match");
  SSAM_REQUIRE(opt.device == nullptr || opt.shard.mode == ShardMode::kSingle,
               "a device-pinned run cannot also be sharded");
  ThreadPool& lane = opt.device != nullptr ? opt.device->pool() : ThreadPool::global();
  if constexpr (kHasPost) {
    SSAM_REQUIRE(opt.t == 1, "post hook requires t == 1 (halos carry post-processed state)");
  }
  if (aux != nullptr) {
    SSAM_REQUIRE(aux->nx() == a.nx() && aux->ny() == a.ny() && aux->nz() == a.nz(),
                 "aux grid must match the state grid");
  }
  const SystolicPlan<T> plan = build_plan(shape.taps);
  const Temporal3DOptions topt{opt.t, opt.p, opt.warps3d};
  const Stencil3DOptions sopt{opt.p, opt.warps3d};
  const Index nx = a.nx();
  const Index ny = a.ny();
  const Index nz = a.nz();
  const Index plane = nx * ny;
  const Index hz = static_cast<Index>(opt.t * plan.rz());
  const int vp = opt.warps3d - 2 * opt.t * plan.rz();
  const Index align3 = static_cast<Index>(std::max(vp, 1));
  PersistentRunStats r;
  r.sweeps = sweeps;
  r.t = opt.t;

  if (!detail::choose_persistent(opt.policy, sweeps)) {
    const detail::ShardSplit sp =
        detail::split_shards(nz, opt.shard, align3, std::max<Index>(hz, 1));
    r.devices = sp.sharded() ? sp.shards() : 1;
    r.sharded = sp.sharded();
    if (sweeps > 0 && sp.sharded()) {
      // Sharded relaunch in 3D: per-device z-band launches over the global
      // grids with the store window clipped at the shard seam, one group
      // barrier per sweep (see the 2D engine for the parity argument).
      SSAM_REQUIRE(vp > 0, "z block too shallow for t fused steps");
      const int shards = sp.shards();
      std::vector<sim::LaunchConfig> cfgs(static_cast<std::size_t>(shards));
      std::array<std::vector<std::function<void(sim::FunctionalBlockContext&)>>, 2>
          bodies;
      bodies[0].resize(static_cast<std::size_t>(shards));
      bodies[1].resize(static_cast<std::size_t>(shards));
      for (int s = 0; s < shards; ++s) {
        const Index z0 = sp.starts[static_cast<std::size_t>(s)];
        const Index band = sp.starts[static_cast<std::size_t>(s) + 1] - z0;
        auto make = [&](GridView3D<const T> in, GridView3D<T> out) {
          if (opt.t == 1) {
            detail::Stencil3dSetup<T> st = detail::stencil3d_setup(in, plan, sopt);
            st.z_origin = z0;
            st.z_store_lo = z0;
            st.z_store_hi = z0 + band;
            st.cfg.grid.z = static_cast<int>(ceil_div(band, static_cast<Index>(vp)));
            cfgs[static_cast<std::size_t>(s)] = st.cfg;
            return std::function<void(sim::FunctionalBlockContext&)>(
                detail::make_stencil3d_body<T>(std::move(st), in, out));
          }
          detail::Temporal3DSetup<T> st =
              detail::stencil3d_temporal_setup(in, plan, topt, {z0, band});
          cfgs[static_cast<std::size_t>(s)] = st.cfg;
          return std::function<void(sim::FunctionalBlockContext&)>(
              detail::make_stencil3d_temporal_body<T>(std::move(st), in, out));
        };
        bodies[0][static_cast<std::size_t>(s)] = make(a.cview(), b.view());
        bodies[1][static_cast<std::size_t>(s)] = make(b.cview(), a.view());
      }
      for (int sw = 0; sw < sweeps; ++sw) {
        detail::relaunch_sweep_gate(opt.cancel, -1);
        const int parity = sw % 2;
        sim::for_each_device(sp.devices, [&](int s) {
          sim::detail::run_functional_grid_on(
              sp.devices[static_cast<std::size_t>(s)]->pool(), arch,
              cfgs[static_cast<std::size_t>(s)],
              bodies[static_cast<std::size_t>(parity)][static_cast<std::size_t>(s)]);
          if constexpr (kHasPost) {
            const Index z0 = sp.starts[static_cast<std::size_t>(s)];
            const Index band = sp.starts[static_cast<std::size_t>(s) + 1] - z0;
            Grid3D<T>& nxt = parity == 0 ? b : a;
            Grid3D<T>& cur = parity == 0 ? a : b;
            post(GridView3D<T>(nxt.data() + z0 * plane, nx, ny, band),
                 GridView3D<const T>(cur.data() + z0 * plane, nx, ny, band),
                 aux != nullptr
                     ? GridView3D<T>(aux->data() + z0 * plane, nx, ny, band)
                     : GridView3D<T>{});
          }
        });
      }
      if (sweeps % 2 == 1) std::swap(a, b);
    } else if (sweeps > 0) {
      // Device-pinned relaunch runs fan out over `lane` (see the 2D engine).
      auto run_sweeps = [&](const sim::LaunchConfig& cfg, auto& ping, auto& pong) {
        const int dev = opt.device != nullptr ? opt.device->index() : -1;
        for (int sw = 0; sw < sweeps; ++sw) {
          detail::relaunch_sweep_gate(opt.cancel, dev);
          if (sw % 2 == 0) {
            sim::detail::run_functional_grid_on(lane, arch, cfg, ping);
          } else {
            sim::detail::run_functional_grid_on(lane, arch, cfg, pong);
          }
          if (opt.device != nullptr) {
            opt.device->counters().sweeps.fetch_add(1, std::memory_order_relaxed);
          }
          if constexpr (kHasPost) {
            Grid3D<T>& nxt = (sw % 2 == 0) ? b : a;
            Grid3D<T>& cur = (sw % 2 == 0) ? a : b;
            post(nxt.view(), cur.cview(),
                 aux != nullptr ? aux->view() : GridView3D<T>{});
          }
        }
        if (sweeps % 2 == 1) std::swap(a, b);
      };
      if (opt.t == 1) {
        detail::Stencil3dSetup<T> s = detail::stencil3d_setup(a.cview(), plan, sopt);
        const sim::LaunchConfig cfg = s.cfg;
        auto ping = detail::make_stencil3d_body<T>(s, a.cview(), b.view());
        auto pong = detail::make_stencil3d_body<T>(std::move(s), b.cview(), a.view());
        run_sweeps(cfg, ping, pong);
      } else {
        detail::Temporal3DSetup<T> s = detail::stencil3d_temporal_setup(a.cview(), plan, topt);
        const sim::LaunchConfig cfg = s.cfg;
        auto ping = detail::make_stencil3d_temporal_body<T>(s, a.cview(), b.view());
        auto pong = detail::make_stencil3d_temporal_body<T>(std::move(s), b.cview(), a.view());
        run_sweeps(cfg, ping, pong);
      }
    }
    detail::log_policy_decision("iterate_stencil3d", opt.policy, r);
    return r;
  }

  SSAM_REQUIRE(vp > 0, "z block too shallow for t fused steps");
  detail::BandLayoutRequest req;
  req.units = nz;
  req.unit_elems = plane;
  req.elem_bytes = sizeof(T);
  req.ht = hz;
  req.hb = hz;
  req.align = align3;
  req.min_band = std::max<Index>(hz, 1);
  req.want_tiles = opt.tiles;
  req.has_aux = aux != nullptr;
  req.lane_workers = opt.device != nullptr ? opt.device->pool().size() : 0;
  sim::PersistentWorkspace& wsp = ws != nullptr ? *ws : detail::default_workspace();
  const detail::BandLayout L = detail::build_band_layout(req, opt.shard, wsp);
  const int tiles = L.tiles();
  r.tiles = tiles;
  r.devices = L.sharded() ? static_cast<int>(L.devices.size()) : 1;
  r.sharded = L.sharded();
  r.persistent = true;
  detail::log_policy_decision("iterate_stencil3d", opt.policy, r);
  if (sweeps == 0) return r;
  const std::vector<Index>& starts = L.starts;
  const std::span<sim::HaloChannel> chans = L.chans;

  detail::RunControl ctl;
  ctl.cancel = opt.cancel;
  ctl.device = opt.device != nullptr ? opt.device->index() : -1;
  ctl.faults = FaultInjector::global().enabled();

  std::vector<std::unique_ptr<detail::ResidentBandTile<T>>> tile_objs;
  tile_objs.reserve(static_cast<std::size_t>(tiles));
  for (int i = 0; i < tiles; ++i) {
    const Index z0 = starts[static_cast<std::size_t>(i)];
    const Index band = starts[static_cast<std::size_t>(i) + 1] - z0;
    const Index buf_planes = band + 2 * hz;
    typename detail::ResidentBandTile<T>::Wiring wr;
    wr.arch = &arch;
    wr.src = a.data();
    wr.dst = a.data();
    wr.unit_elems = plane;
    wr.band = band;
    wr.ht = hz;
    wr.hb = hz;
    wr.u0 = z0;
    wr.sweeps = sweeps;
    wr.buf_a = reinterpret_cast<T*>(L.buf_a[static_cast<std::size_t>(i)]);
    wr.buf_b = reinterpret_cast<T*>(L.buf_b[static_cast<std::size_t>(i)]);
    if (aux != nullptr) {
      wr.aux_global = aux->data();
      wr.aux_res = reinterpret_cast<T*>(L.aux[static_cast<std::size_t>(i)]);
    }
    if (i > 0) {
      wr.in_lo = &chans[static_cast<std::size_t>(2 * (i - 1))];
      wr.out_lo = &chans[static_cast<std::size_t>(2 * (i - 1) + 1)];
      wr.seam_lo = L.seam_after(i - 1);
    }
    if (i + 1 < tiles) {
      wr.out_hi = &chans[static_cast<std::size_t>(2 * i)];
      wr.in_hi = &chans[static_cast<std::size_t>(2 * i + 1)];
      wr.seam_hi = L.seam_after(i);
    }
    wr.counters = L.counters_of(i);
    if (wr.counters == nullptr && opt.device != nullptr) {
      wr.counters = &opt.device->counters();
    }
    wr.control = &ctl;

    const GridView3D<const T> in_a(wr.buf_a, nx, ny, buf_planes);
    const GridView3D<const T> in_b(wr.buf_b, nx, ny, buf_planes);
    const GridView3D<T> out_a(wr.buf_a, nx, ny, buf_planes);
    const GridView3D<T> out_b(wr.buf_b, nx, ny, buf_planes);
    const GridView3D<T> out_global = a.view();
    const int last_parity = (sweeps - 1) % 2;
    // The z-window stores only the band planes; the target buffer's halo
    // planes are filled by the next exchange. `z0_load` positions the
    // window in the input array (buffer: hz, global: z0); `store_off`
    // relocates the store into the other array for the fused sweeps.
    auto make_body = [&](Index z0_load, Index store_off, GridView3D<const T> in,
                         GridView3D<T> out) {
      if (opt.t == 1) {
        detail::Stencil3dSetup<T> s = detail::stencil3d_setup(in, plan, sopt);
        s.z_origin = z0_load;
        s.z_store_lo = z0_load;
        s.z_store_hi = z0_load + band;
        s.z_store_offset = store_off;
        s.cfg.grid.z = static_cast<int>(ceil_div(band, static_cast<Index>(vp)));
        wr.cfg = s.cfg;
        return std::function<void(sim::FunctionalBlockContext&)>(
            detail::make_stencil3d_body<T>(std::move(s), in, out));
      }
      detail::Temporal3DSetup<T> s =
          detail::stencil3d_temporal_setup(in, plan, topt, {z0_load, band});
      s.z_store_offset = store_off;
      wr.cfg = s.cfg;
      return std::function<void(sim::FunctionalBlockContext&)>(
          detail::make_stencil3d_temporal_body<T>(std::move(s), in, out));
    };
    wr.sweep[0] = make_body(hz, 0, in_a, out_b);
    wr.sweep[1] = make_body(hz, 0, in_b, out_a);
    if constexpr (!kHasPost) {
      if (sweeps >= 3) {
        wr.sweep_first = make_body(z0, hz - z0, a.cview(), out_b);
      }
      wr.sweep_last = make_body(hz, z0 - hz, last_parity == 0 ? in_a : in_b, out_global);
    }
    if constexpr (kHasPost) {
      wr.post = [post, nx, ny, band](T* nb, const T* cb, T* ab) {
        post(GridView3D<T>(nb, nx, ny, band), GridView3D<const T>(cb, nx, ny, band),
             GridView3D<T>(ab, nx, ny, ab != nullptr ? band : 0));
      };
    }
    tile_objs.push_back(std::make_unique<detail::ResidentBandTile<T>>(std::move(wr)));
  }

  std::vector<sim::PersistentTask*> tasks;
  tasks.reserve(tile_objs.size());
  for (auto& t : tile_objs) tasks.push_back(t.get());
  if (!L.sharded()) {
    sim::run_persistent_on(lane, tasks, &ctl.stop);
  } else {
    std::vector<std::span<sim::PersistentTask* const>> groups;
    groups.reserve(L.tile_range.size());
    for (const auto& [tb, te] : L.tile_range) {
      groups.emplace_back(tasks.data() + tb, static_cast<std::size_t>(te - tb));
    }
    sim::run_persistent_group(L.devices, groups, &ctl.stop);
  }
  ctl.throw_if_aborted();
  return r;
}

/// Sharded variant of the per-step relaunch drivers (core/iterate.hpp):
/// the same double-buffered step schedule, with each sweep's band launches
/// distributed across the shard policy's virtual devices (seam-clipped
/// stores, one group barrier per sweep). One entry for both dimensions —
/// the grid type picks the engine (Grid3D exposes nz()) and the kernel
/// option struct contributes whichever knobs it has (StencilOptions:
/// block_threads; Stencil3DOptions: warps). Bit-identical to the
/// unsharded per-step drivers at every shard count; the final state ends
/// in `a`.
template <typename T, typename GridT, typename KernelOpt = StencilOptions>
PersistentRunStats iterate_stencil_sharded(const sim::ArchSpec& arch, GridT& a, GridT& b,
                                           const StencilShape<T>& shape, int steps,
                                           const ShardPolicy& shard,
                                           const KernelOpt& opt = {}) {
  PersistentOptions popt;
  popt.policy = IterationPolicy::kRelaunch;
  popt.shard = shard;
  popt.p = opt.p;
  if constexpr (requires { opt.block_threads; }) popt.block_threads = opt.block_threads;
  if constexpr (requires { opt.warps; }) popt.warps3d = opt.warps;
  if constexpr (requires(GridT& g) { g.nz(); }) {
    return iterate_stencil3d_persistent<T>(arch, a, b, shape, steps, popt);
  } else {
    return iterate_stencil2d_persistent<T>(arch, a, b, shape, steps, popt);
  }
}

}  // namespace ssam::core
