// Persistent iteration engine: cross-iteration tile residency for the
// iterative stencil drivers (the PERKS execution model of Zhang et al.,
// arXiv:2204.02064, emulated on the host pool — see gpusim/persistent.hpp
// for the scheduling substrate).
//
// The per-step relaunch drivers (core/iterate.hpp) re-read and re-write the
// full grids through global memory every time step. The persistent engine
// instead decomposes the domain into full-width bands (2D: row bands, 3D:
// z-plane bands), pins each band to one pool worker for the whole run, and
// keeps the band's working set *resident* in per-tile ping/pong buffers
// across steps. Between steps only the boundary rows/planes move, directly
// between neighbouring tiles through lock-free epoch-counted halo channels.
// The channels are zero-copy: a producer writes its boundary straight into
// the halo region of the consumer's residence buffer (every tile flips
// buffers once per sweep, so epoch e lives in buffer e % 2 everywhere), and
// the epoch counters are pure synchronization. The first sweep reads the
// source grid directly and the last sweep stores directly back to it, so a
// run touches the global arrays exactly once on each side with no staging
// copies at all.
//
// Each band sweep replays the unmodified SSAM kernel body (register cache +
// systolic shuffles) over the residence buffer through the owner's pooled
// BlockContext, shifted by a row/plane origin — so outputs are bit-identical
// to the relaunch path in functional mode, which the persistent-path tests
// pin with golden hashes. Temporal blocking composes: with t > 1 every
// exchange carries t*r halo units and each sweep advances t fused steps in
// registers, exactly like the temporal kernels the per-step path launches.
//
// An optional element-wise post hook runs over the band after each sweep
// (before the boundary is published), with an optional second resident
// field — enough for two-field updates like the acoustic wave equation
// (examples/acoustic_wave_3d.cpp). The post path keeps the staged
// load/drain (the hook must see every produced band in residence).
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/iterate.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil3d_temporal.hpp"
#include "gpusim/persistent.hpp"

namespace ssam::core {

/// How an iterative run executes. kRelaunch is the per-step path of
/// core/iterate.hpp; kPersistent is the resident-tile engine; kAuto picks
/// persistent for functional runs long enough to amortize tile setup.
enum class IterationPolicy { kAuto, kRelaunch, kPersistent };

struct PersistentOptions {
  IterationPolicy policy = IterationPolicy::kAuto;
  int tiles = 0;  ///< 0: auto (residence-sized bands, >= 2 per worker)
  int t = 1;      ///< fused time steps per sweep (temporal blocking)
  int p = 4;              ///< sliding-window outputs per thread
  int block_threads = 128;
  int warps3d = 8;        ///< planes per block for the 3D kernels
};

/// What a run actually did (the policy decision is runtime).
struct PersistentRunStats {
  int sweeps = 0;  ///< kernel sweeps executed; plain steps = sweeps * t
  int t = 1;
  int tiles = 1;
  bool persistent = false;  ///< false: per-step relaunch path was used
};

namespace detail {

/// Sentinel for "no post hook".
struct NoPost {};

/// One resident band tile: the dimension-agnostic state machine. A `unit`
/// is one contiguous row (2D) or plane (3D) of `unit_elems` elements; the
/// residence buffers hold ht + band + hb units, the band starting at unit
/// ht. The sweep bodies and the post hook are injected by the engine.
template <typename T>
class ResidentBandTile final : public sim::PersistentTask {
 public:
  struct Wiring {
    const sim::ArchSpec* arch = nullptr;
    sim::LaunchConfig cfg;
    /// sweep[0] reads buf_a and writes buf_b; sweep[1] the reverse.
    std::function<void(sim::FunctionalBlockContext&)> sweep[2];
    /// Fused boundary sweeps: `first` reads the global array and writes
    /// buf_b (skips the staged load; engine sets it only when sweeps >= 3,
    /// which the channel backpressure needs to order the fused final store
    /// after every neighbour's fused global read); `last` reads
    /// buf_[(sweeps-1) % 2] and stores straight to the global array.
    /// Either may be empty: the staged kLoad/kDrain copies take over.
    std::function<void(sim::FunctionalBlockContext&)> sweep_first;
    std::function<void(sim::FunctionalBlockContext&)> sweep_last;
    /// Optional element-wise hook over the band (next, cur, aux pointers to
    /// the first band unit); null aux when no aux field is resident.
    std::function<void(T*, const T*, T*)> post;
    const T* src = nullptr;  ///< initial state (full array)
    T* dst = nullptr;        ///< final state target (full array)
    T* aux_global = nullptr; ///< optional aux field (full array)
    Index unit_elems = 0;
    Index band = 0;  ///< units owned by this tile
    Index ht = 0;    ///< halo units above (toward unit 0)
    Index hb = 0;    ///< halo units below
    Index u0 = 0;    ///< first band unit in the global arrays
    int sweeps = 0;
    T* buf_a = nullptr;
    T* buf_b = nullptr;
    T* aux_res = nullptr;
    sim::HaloChannel* in_lo = nullptr;   ///< from the tile above: ht units
    sim::HaloChannel* in_hi = nullptr;   ///< from the tile below: hb units
    sim::HaloChannel* out_lo = nullptr;  ///< to the tile above: my top hb units
    sim::HaloChannel* out_hi = nullptr;  ///< to the tile below: my bottom ht units
  };

  explicit ResidentBandTile(Wiring w) : w_(std::move(w)) {}

  [[nodiscard]] bool done() const override { return state_ == State::kDone; }

  [[nodiscard]] bool try_advance() override {
    switch (state_) {
      case State::kLoad: {
        if (!w_.sweep_first) {
          // Staged load: copy the band into residence and publish the
          // initial boundary as epoch 0. (With a fused first sweep the
          // global array itself serves as epoch 0.)
          copy_units(w_.buf_a + w_.ht * w_.unit_elems, w_.src + w_.u0 * w_.unit_elems,
                     w_.band);
          publish_boundaries(w_.buf_a, 0);
        }
        if (w_.aux_res != nullptr) {
          copy_units(w_.aux_res, w_.aux_global + w_.u0 * w_.unit_elems, w_.band);
        }
        state_ = w_.sweeps > 0 ? State::kStep : State::kDrain;
        return true;
      }
      case State::kStep: {
        const bool fused_first = s_ == 0 && static_cast<bool>(w_.sweep_first);
        const bool fused_last =
            s_ == w_.sweeps - 1 && static_cast<bool>(w_.sweep_last);
        // All-or-nothing readiness: input epoch present (unless this sweep
        // reads the global array) and output halo slots free, otherwise
        // yield to another tile.
        if (!fused_first) {
          if (w_.in_lo != nullptr && !w_.in_lo->available(s_)) return false;
          if (w_.in_hi != nullptr && !w_.in_hi->available(s_)) return false;
        }
        const bool will_publish = s_ + 1 < w_.sweeps;  // the final boundary
                                                       // has no consumer
        if (will_publish) {
          if (w_.out_lo != nullptr && !w_.out_lo->can_publish(s_ + 1)) return false;
          if (w_.out_hi != nullptr && !w_.out_hi->can_publish(s_ + 1)) return false;
        }
        if (!fused_first) replicate_domain_edges();
        const auto& body = fused_first ? w_.sweep_first
                           : fused_last ? w_.sweep_last
                                        : w_.sweep[flip_];
        sim::run_grid_on_caller(*w_.arch, w_.cfg, body);
        // The consumed halos (epoch s_) free up for epoch s_ + 2.
        if (w_.in_lo != nullptr) w_.in_lo->release(s_);
        if (w_.in_hi != nullptr) w_.in_hi->release(s_);
        if (w_.post) {
          w_.post(next_buf() + w_.ht * w_.unit_elems, cur_buf() + w_.ht * w_.unit_elems,
                  w_.aux_res);
        }
        if (will_publish) publish_boundaries(next_buf(), s_ + 1);
        flip_ ^= 1;
        ++s_;
        if (s_ == w_.sweeps) state_ = State::kDrain;
        return true;
      }
      case State::kDrain: {
        if (!w_.sweep_last && w_.sweeps > 0) {
          copy_units(w_.dst + w_.u0 * w_.unit_elems, cur_buf() + w_.ht * w_.unit_elems,
                     w_.band);
        }
        if (w_.aux_res != nullptr) {
          copy_units(w_.aux_global + w_.u0 * w_.unit_elems, w_.aux_res, w_.band);
        }
        state_ = State::kDone;
        return true;
      }
      case State::kDone:
        return false;
    }
    return false;  // unreachable
  }

 private:
  enum class State { kLoad, kStep, kDrain, kDone };

  [[nodiscard]] T* cur_buf() const { return flip_ == 0 ? w_.buf_a : w_.buf_b; }
  [[nodiscard]] T* next_buf() const { return flip_ == 0 ? w_.buf_b : w_.buf_a; }

  void copy_units(T* dst, const T* src, Index units) const {
    std::memcpy(dst, src, static_cast<std::size_t>(units * w_.unit_elems) * sizeof(T));
  }

  /// Domain-boundary halos (no neighbour tile) replicate the band edge unit
  /// of the current state — exactly what the full-grid kernels' clamped
  /// loads would read. Channel-side halos need nothing here: the producer
  /// already wrote epoch s_ into this buffer's halo region.
  void replicate_domain_edges() {
    T* buf = cur_buf();
    const Index ue = w_.unit_elems;
    if (w_.in_lo == nullptr) {
      for (Index u = 0; u < w_.ht; ++u) copy_units(buf + u * ue, buf + w_.ht * ue, 1);
    }
    if (w_.in_hi == nullptr) {
      T* below = buf + (w_.ht + w_.band) * ue;
      const T* edge = buf + (w_.ht + w_.band - 1) * ue;
      for (Index u = 0; u < w_.hb; ++u) copy_units(below + u * ue, edge, 1);
    }
  }

  /// Publishes the boundary of `buf`'s band as epoch `e` — written directly
  /// into the consumer's buffer-(e%2) halo region (zero-copy channels).
  void publish_boundaries(const T* buf, std::int64_t e) {
    const Index ue = w_.unit_elems;
    if (w_.out_lo != nullptr) {  // my top hb units feed the upper tile's lower halo
      std::memcpy(w_.out_lo->publish_slot(e), buf + w_.ht * ue,
                  static_cast<std::size_t>(w_.hb * ue) * sizeof(T));
      w_.out_lo->publish(e);
    }
    if (w_.out_hi != nullptr) {  // my bottom ht units feed the lower tile's upper halo
      std::memcpy(w_.out_hi->publish_slot(e), buf + w_.band * ue,
                  static_cast<std::size_t>(w_.ht * ue) * sizeof(T));
      w_.out_hi->publish(e);
    }
  }

  Wiring w_;
  State state_ = State::kLoad;
  int flip_ = 0;
  int s_ = 0;
};

/// Band partition of `n` units into at most `want` tiles, each a multiple
/// of `align` units (except possibly the last) and at least `min_band`
/// units. Returns the first unit of each tile plus the end sentinel.
[[nodiscard]] inline std::vector<Index> partition_bands(Index n, int want, Index align,
                                                        Index min_band) {
  align = align < 1 ? 1 : align;
  min_band = std::max<Index>({min_band, align, 1});
  int tiles = std::max(1, want);
  tiles = static_cast<int>(std::min<Index>(tiles, std::max<Index>(1, n / min_band)));
  Index per = static_cast<Index>(ceil_div(n, static_cast<Index>(tiles)));
  per = static_cast<Index>(ceil_div(per, align)) * align;
  tiles = static_cast<int>(ceil_div(n, per));
  // A too-short trailing band cannot source its neighbour's halo: merge it.
  if (tiles > 1 && n - static_cast<Index>(tiles - 1) * per < min_band) --tiles;
  std::vector<Index> starts(static_cast<std::size_t>(tiles) + 1);
  for (int i = 0; i < tiles; ++i) starts[static_cast<std::size_t>(i)] = i * per;
  starts[static_cast<std::size_t>(tiles)] = n;
  return starts;
}

[[nodiscard]] inline sim::PersistentWorkspace& default_workspace() {
  thread_local sim::PersistentWorkspace ws;
  return ws;
}

/// Auto tile count: enough tiles that each residence buffer stays around
/// kTargetResidenceBytes (measured sweet spot: a ping/pong pair fits the
/// owner's private cache, so consecutive sweeps of a burst run out of L2),
/// but never fewer than two tiles per pool worker.
inline constexpr std::size_t kTargetResidenceBytes = std::size_t{512} << 10;

[[nodiscard]] inline int auto_tiles(Index units, std::size_t unit_bytes) {
  const Index desired_band = std::max<Index>(
      1, static_cast<Index>(kTargetResidenceBytes / std::max<std::size_t>(unit_bytes, 1)));
  const auto by_size = static_cast<int>(ceil_div(units, desired_band));
  return std::max(2 * ThreadPool::global().size(), by_size);
}

[[nodiscard]] inline bool choose_persistent(IterationPolicy policy, int sweeps) {
  switch (policy) {
    case IterationPolicy::kRelaunch:
      return false;
    case IterationPolicy::kPersistent:
      return true;
    case IterationPolicy::kAuto:
      return sweeps >= 2;  // one sweep cannot amortize tile setup
  }
  return false;
}

}  // namespace detail

/// Runs `sweeps` stencil sweeps (each advancing `opt.t` fused time steps)
/// over `a`; the final state ends in `a`. `b` is scratch used only by the
/// relaunch fallback. The optional `post` hook
/// `post(GridView2D<T> next, GridView2D<const T> cur, GridView2D<T> aux)`
/// runs element-wise over each band right after its sweep (requires
/// opt.t == 1); `aux` is an optional second field kept resident with the
/// tile. Outputs are bit-identical to the per-step relaunch path.
template <typename T, typename PostFn = detail::NoPost>
PersistentRunStats iterate_stencil2d_persistent(const sim::ArchSpec& arch, Grid2D<T>& a,
                                                Grid2D<T>& b, const StencilShape<T>& shape,
                                                int sweeps,
                                                const PersistentOptions& opt = {},
                                                PostFn post = {}, Grid2D<T>* aux = nullptr,
                                                sim::PersistentWorkspace* ws = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>, "residence buffers hold raw elements");
  constexpr bool kHasPost = !std::is_same_v<PostFn, detail::NoPost>;
  SSAM_REQUIRE(sweeps >= 0, "negative sweep count");
  SSAM_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "ping/pong grids must match");
  if constexpr (kHasPost) {
    SSAM_REQUIRE(opt.t == 1, "post hook requires t == 1 (halos carry post-processed state)");
  }
  if (aux != nullptr) {
    SSAM_REQUIRE(aux->width() == a.width() && aux->height() == a.height(),
                 "aux grid must match the state grid");
  }
  const SystolicPlan<T> plan = build_plan(shape.taps);
  const TemporalSsamOptions topt{opt.t, opt.p, opt.block_threads};
  const StencilOptions sopt{opt.p, opt.block_threads};
  PersistentRunStats r;
  r.sweeps = sweeps;
  r.t = opt.t;

  if (!detail::choose_persistent(opt.policy, sweeps)) {
    if (sweeps > 0) {
      auto run_sweeps = [&](const sim::LaunchConfig& cfg, auto& ping, auto& pong) {
        for (int sw = 0; sw < sweeps; ++sw) {
          if (sw % 2 == 0) {
            (void)sim::launch(arch, cfg, ping, ExecMode::kFunctional);
          } else {
            (void)sim::launch(arch, cfg, pong, ExecMode::kFunctional);
          }
          if constexpr (kHasPost) {
            Grid2D<T>& nxt = (sw % 2 == 0) ? b : a;
            Grid2D<T>& cur = (sw % 2 == 0) ? a : b;
            post(nxt.view(), cur.cview(),
                 aux != nullptr ? aux->view() : GridView2D<T>{});
          }
        }
        if (sweeps % 2 == 1) std::swap(a, b);
      };
      if (opt.t == 1) {
        const detail::Stencil2dSetup s = detail::stencil2d_setup(a.cview(), plan, sopt);
        auto ping = detail::make_stencil2d_body<T>(s, a.cview(), plan.passes.front(),
                                                   b.view());
        auto pong = detail::make_stencil2d_body<T>(s, b.cview(), plan.passes.front(),
                                                   a.view());
        run_sweeps(s.cfg, ping, pong);
      } else {
        const detail::Stencil2dSetup s =
            detail::stencil2d_temporal_setup(a.cview(), plan, topt);
        auto ping = detail::make_stencil2d_temporal_body<T>(
            s, a.cview(), plan.passes.front(), opt.t, plan.rows_halo(), b.view());
        auto pong = detail::make_stencil2d_temporal_body<T>(
            s, b.cview(), plan.passes.front(), opt.t, plan.rows_halo(), a.view());
        run_sweeps(s.cfg, ping, pong);
      }
    }
    return r;
  }

  const Index w = a.width();
  const Index h = a.height();
  const int dy_max = plan.dy_min + plan.rows_halo();
  const Index ht = static_cast<Index>(-opt.t * plan.dy_min);
  const Index hb = static_cast<Index>(opt.t * dy_max);
  const int want = opt.tiles > 0
                       ? opt.tiles
                       : detail::auto_tiles(h, static_cast<std::size_t>(w) * sizeof(T));
  const std::vector<Index> starts = detail::partition_bands(
      h, want, static_cast<Index>(opt.p), std::max<Index>({ht, hb, 1}));
  const int tiles = static_cast<int>(starts.size()) - 1;
  r.tiles = tiles;
  r.persistent = true;
  if (sweeps == 0) return r;

  sim::PersistentWorkspace& wsp = ws != nullptr ? *ws : detail::default_workspace();
  // Skew successive buffers by a quarter page + a cache line so the cur/next
  // read and write streams (page-multiple apart otherwise) do not collide in
  // the same L1/L2 sets.
  const Index skew = static_cast<Index>(1024 + 16);
  std::size_t elems = 0;
  for (int i = 0; i < tiles; ++i) {
    const Index band = starts[static_cast<std::size_t>(i) + 1] - starts[static_cast<std::size_t>(i)];
    elems += static_cast<std::size_t>((2 * (ht + band + hb + 1) + (aux != nullptr ? band : 0)) * w);
  }
  elems += static_cast<std::size_t>(skew) * static_cast<std::size_t>(3 * tiles + 3);
  T* base = reinterpret_cast<T*>(wsp.arena(elems * sizeof(T)));
  const std::span<sim::HaloChannel> chans =
      wsp.channels(tiles > 1 ? static_cast<std::size_t>(2 * (tiles - 1)) : 0);

  // Carve every tile's buffers first: the zero-copy channels point into the
  // *neighbour's* buffers, so all addresses must exist before wiring.
  std::vector<T*> buf_a(static_cast<std::size_t>(tiles));
  std::vector<T*> buf_b(static_cast<std::size_t>(tiles));
  std::vector<T*> aux_res(static_cast<std::size_t>(tiles), nullptr);
  {
    T* carve = base;
    for (int i = 0; i < tiles; ++i) {
      const Index band =
          starts[static_cast<std::size_t>(i) + 1] - starts[static_cast<std::size_t>(i)];
      const Index buf_rows = ht + band + hb;
      buf_a[static_cast<std::size_t>(i)] = carve;
      carve += buf_rows * w + skew;
      buf_b[static_cast<std::size_t>(i)] = carve;
      carve += buf_rows * w + skew;
      if (aux != nullptr) {
        aux_res[static_cast<std::size_t>(i)] = carve;
        carve += band * w + skew;
      }
    }
  }
  // Channel 2e   (down, tile e -> e+1): writes tile e+1's upper halo [0, ht).
  // Channel 2e+1 (up, tile e+1 -> e): writes tile e's lower halo rows.
  for (int e = 0; e + 1 < tiles; ++e) {
    const Index band_e =
        starts[static_cast<std::size_t>(e) + 1] - starts[static_cast<std::size_t>(e)];
    chans[static_cast<std::size_t>(2 * e)].configure_external(
        reinterpret_cast<std::byte*>(buf_a[static_cast<std::size_t>(e) + 1]),
        reinterpret_cast<std::byte*>(buf_b[static_cast<std::size_t>(e) + 1]));
    const Index lower_halo = (ht + band_e) * w;
    chans[static_cast<std::size_t>(2 * e) + 1].configure_external(
        reinterpret_cast<std::byte*>(buf_a[static_cast<std::size_t>(e)] + lower_halo),
        reinterpret_cast<std::byte*>(buf_b[static_cast<std::size_t>(e)] + lower_halo));
  }

  std::vector<std::unique_ptr<detail::ResidentBandTile<T>>> tile_objs;
  tile_objs.reserve(static_cast<std::size_t>(tiles));
  for (int i = 0; i < tiles; ++i) {
    const Index y0 = starts[static_cast<std::size_t>(i)];
    const Index band = starts[static_cast<std::size_t>(i) + 1] - y0;
    const Index buf_rows = ht + band + hb;
    typename detail::ResidentBandTile<T>::Wiring wr;
    wr.arch = &arch;
    wr.src = a.data();
    wr.dst = a.data();
    wr.unit_elems = w;
    wr.band = band;
    wr.ht = ht;
    wr.hb = hb;
    wr.u0 = y0;
    wr.sweeps = sweeps;
    wr.buf_a = buf_a[static_cast<std::size_t>(i)];
    wr.buf_b = buf_b[static_cast<std::size_t>(i)];
    if (aux != nullptr) {
      wr.aux_global = aux->data();
      wr.aux_res = aux_res[static_cast<std::size_t>(i)];
    }
    if (i > 0) {
      wr.in_lo = &chans[static_cast<std::size_t>(2 * (i - 1))];
      wr.out_lo = &chans[static_cast<std::size_t>(2 * (i - 1) + 1)];
    }
    if (i + 1 < tiles) {
      wr.out_hi = &chans[static_cast<std::size_t>(2 * i)];
      wr.in_hi = &chans[static_cast<std::size_t>(2 * i + 1)];
    }

    const GridView2D<const T> in_a(wr.buf_a, w, buf_rows, w);
    const GridView2D<const T> in_b(wr.buf_b, w, buf_rows, w);
    // Store views end at the band so the halo rows of the target buffer are
    // never written by the sweep (the next exchange fills them).
    const GridView2D<T> out_a(wr.buf_a, w, ht + band, w);
    const GridView2D<T> out_b(wr.buf_b, w, ht + band, w);
    const GridView2D<T> out_global(a.data(), w, y0 + band, w);
    const int grid_y = static_cast<int>(ceil_div(band, static_cast<Index>(opt.p)));
    const int last_parity = (sweeps - 1) % 2;
    auto make_body = [&](Index origin, Index store_off, GridView2D<const T> in,
                         GridView2D<T> out) {
      if (opt.t == 1) {
        detail::Stencil2dSetup s = detail::stencil2d_setup(in, plan, sopt);
        s.row_origin = origin;
        s.store_row_offset = store_off;
        s.cfg.grid.y = grid_y;
        wr.cfg = s.cfg;
        return std::function<void(sim::FunctionalBlockContext&)>(
            detail::make_stencil2d_body<T>(s, in, plan.passes.front(), out));
      }
      detail::Stencil2dSetup s = detail::stencil2d_temporal_setup(in, plan, topt);
      s.row_origin = origin;
      s.store_row_offset = store_off;
      s.cfg.grid.y = grid_y;
      wr.cfg = s.cfg;
      return std::function<void(sim::FunctionalBlockContext&)>(
          detail::make_stencil2d_temporal_body<T>(s, in, plan.passes.front(), opt.t,
                                                  plan.rows_halo(), out));
    };
    wr.sweep[0] = make_body(ht, 0, in_a, out_b);
    wr.sweep[1] = make_body(ht, 0, in_b, out_a);
    if constexpr (!kHasPost) {
      // Fused boundary sweeps (see Wiring): first reads the global array,
      // last stores to it. The first fusion needs sweeps >= 3 so the
      // channel backpressure orders it against neighbours' final stores.
      if (sweeps >= 3) {
        wr.sweep_first = make_body(y0, ht - y0, a.cview(), out_b);
      }
      wr.sweep_last = make_body(ht, y0 - ht, last_parity == 0 ? in_a : in_b, out_global);
    }
    if constexpr (kHasPost) {
      wr.post = [post, w, band](T* nb, const T* cb, T* ab) {
        post(GridView2D<T>(nb, w, band, w), GridView2D<const T>(cb, w, band, w),
             GridView2D<T>(ab, w, ab != nullptr ? band : 0, w));
      };
    }
    tile_objs.push_back(std::make_unique<detail::ResidentBandTile<T>>(std::move(wr)));
  }

  std::vector<sim::PersistentTask*> tasks;
  tasks.reserve(tile_objs.size());
  for (auto& t : tile_objs) tasks.push_back(t.get());
  sim::run_persistent(tasks);
  return r;
}

/// 3D variant: full-xy z-plane bands. Same contract as the 2D engine; the
/// post hook signature is
/// `post(GridView3D<T> next, GridView3D<const T> cur, GridView3D<T> aux)`
/// over each tile's band planes.
template <typename T, typename PostFn = detail::NoPost>
PersistentRunStats iterate_stencil3d_persistent(const sim::ArchSpec& arch, Grid3D<T>& a,
                                                Grid3D<T>& b, const StencilShape<T>& shape,
                                                int sweeps,
                                                const PersistentOptions& opt = {},
                                                PostFn post = {}, Grid3D<T>* aux = nullptr,
                                                sim::PersistentWorkspace* ws = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>, "residence buffers hold raw elements");
  constexpr bool kHasPost = !std::is_same_v<PostFn, detail::NoPost>;
  SSAM_REQUIRE(sweeps >= 0, "negative sweep count");
  SSAM_REQUIRE(a.nx() == b.nx() && a.ny() == b.ny() && a.nz() == b.nz(),
               "ping/pong grids must match");
  if constexpr (kHasPost) {
    SSAM_REQUIRE(opt.t == 1, "post hook requires t == 1 (halos carry post-processed state)");
  }
  if (aux != nullptr) {
    SSAM_REQUIRE(aux->nx() == a.nx() && aux->ny() == a.ny() && aux->nz() == a.nz(),
                 "aux grid must match the state grid");
  }
  const SystolicPlan<T> plan = build_plan(shape.taps);
  const Temporal3DOptions topt{opt.t, opt.p, opt.warps3d};
  const Stencil3DOptions sopt{opt.p, opt.warps3d};
  PersistentRunStats r;
  r.sweeps = sweeps;
  r.t = opt.t;

  if (!detail::choose_persistent(opt.policy, sweeps)) {
    if (sweeps > 0) {
      auto run_sweeps = [&](const sim::LaunchConfig& cfg, auto& ping, auto& pong) {
        for (int sw = 0; sw < sweeps; ++sw) {
          if (sw % 2 == 0) {
            (void)sim::launch(arch, cfg, ping, ExecMode::kFunctional);
          } else {
            (void)sim::launch(arch, cfg, pong, ExecMode::kFunctional);
          }
          if constexpr (kHasPost) {
            Grid3D<T>& nxt = (sw % 2 == 0) ? b : a;
            Grid3D<T>& cur = (sw % 2 == 0) ? a : b;
            post(nxt.view(), cur.cview(),
                 aux != nullptr ? aux->view() : GridView3D<T>{});
          }
        }
        if (sweeps % 2 == 1) std::swap(a, b);
      };
      if (opt.t == 1) {
        detail::Stencil3dSetup<T> s = detail::stencil3d_setup(a.cview(), plan, sopt);
        const sim::LaunchConfig cfg = s.cfg;
        auto ping = detail::make_stencil3d_body<T>(s, a.cview(), b.view());
        auto pong = detail::make_stencil3d_body<T>(std::move(s), b.cview(), a.view());
        run_sweeps(cfg, ping, pong);
      } else {
        detail::Temporal3DSetup<T> s = detail::stencil3d_temporal_setup(a.cview(), plan, topt);
        const sim::LaunchConfig cfg = s.cfg;
        auto ping = detail::make_stencil3d_temporal_body<T>(s, a.cview(), b.view());
        auto pong = detail::make_stencil3d_temporal_body<T>(std::move(s), b.cview(), a.view());
        run_sweeps(cfg, ping, pong);
      }
    }
    return r;
  }

  const Index nx = a.nx();
  const Index ny = a.ny();
  const Index nz = a.nz();
  const Index plane = nx * ny;
  const Index hz = static_cast<Index>(opt.t * plan.rz());
  const int vp = opt.warps3d - 2 * opt.t * plan.rz();
  SSAM_REQUIRE(vp > 0, "z block too shallow for t fused steps");
  const int want =
      opt.tiles > 0
          ? opt.tiles
          : detail::auto_tiles(nz, static_cast<std::size_t>(plane) * sizeof(T));
  const std::vector<Index> starts = detail::partition_bands(
      nz, want, static_cast<Index>(vp), std::max<Index>(hz, 1));
  const int tiles = static_cast<int>(starts.size()) - 1;
  r.tiles = tiles;
  r.persistent = true;
  if (sweeps == 0) return r;

  sim::PersistentWorkspace& wsp = ws != nullptr ? *ws : detail::default_workspace();
  const Index skew = static_cast<Index>(1024 + 16);  // break page-set aliasing
  std::size_t elems = 0;
  for (int i = 0; i < tiles; ++i) {
    const Index band = starts[static_cast<std::size_t>(i) + 1] - starts[static_cast<std::size_t>(i)];
    elems += static_cast<std::size_t>((2 * (band + 2 * hz) + (aux != nullptr ? band : 0)) * plane);
  }
  elems += static_cast<std::size_t>(skew) * static_cast<std::size_t>(3 * tiles + 3);
  T* base = reinterpret_cast<T*>(wsp.arena(elems * sizeof(T)));
  const std::span<sim::HaloChannel> chans =
      wsp.channels(tiles > 1 ? static_cast<std::size_t>(2 * (tiles - 1)) : 0);

  std::vector<T*> buf_a(static_cast<std::size_t>(tiles));
  std::vector<T*> buf_b(static_cast<std::size_t>(tiles));
  std::vector<T*> aux_res(static_cast<std::size_t>(tiles), nullptr);
  {
    T* carve = base;
    for (int i = 0; i < tiles; ++i) {
      const Index band =
          starts[static_cast<std::size_t>(i) + 1] - starts[static_cast<std::size_t>(i)];
      const Index buf_planes = band + 2 * hz;
      buf_a[static_cast<std::size_t>(i)] = carve;
      carve += buf_planes * plane + skew;
      buf_b[static_cast<std::size_t>(i)] = carve;
      carve += buf_planes * plane + skew;
      if (aux != nullptr) {
        aux_res[static_cast<std::size_t>(i)] = carve;
        carve += band * plane + skew;
      }
    }
  }
  for (int e = 0; e + 1 < tiles; ++e) {
    const Index band_e =
        starts[static_cast<std::size_t>(e) + 1] - starts[static_cast<std::size_t>(e)];
    chans[static_cast<std::size_t>(2 * e)].configure_external(
        reinterpret_cast<std::byte*>(buf_a[static_cast<std::size_t>(e) + 1]),
        reinterpret_cast<std::byte*>(buf_b[static_cast<std::size_t>(e) + 1]));
    const Index lower_halo = (hz + band_e) * plane;
    chans[static_cast<std::size_t>(2 * e) + 1].configure_external(
        reinterpret_cast<std::byte*>(buf_a[static_cast<std::size_t>(e)] + lower_halo),
        reinterpret_cast<std::byte*>(buf_b[static_cast<std::size_t>(e)] + lower_halo));
  }

  std::vector<std::unique_ptr<detail::ResidentBandTile<T>>> tile_objs;
  tile_objs.reserve(static_cast<std::size_t>(tiles));
  for (int i = 0; i < tiles; ++i) {
    const Index z0 = starts[static_cast<std::size_t>(i)];
    const Index band = starts[static_cast<std::size_t>(i) + 1] - z0;
    const Index buf_planes = band + 2 * hz;
    typename detail::ResidentBandTile<T>::Wiring wr;
    wr.arch = &arch;
    wr.src = a.data();
    wr.dst = a.data();
    wr.unit_elems = plane;
    wr.band = band;
    wr.ht = hz;
    wr.hb = hz;
    wr.u0 = z0;
    wr.sweeps = sweeps;
    wr.buf_a = buf_a[static_cast<std::size_t>(i)];
    wr.buf_b = buf_b[static_cast<std::size_t>(i)];
    if (aux != nullptr) {
      wr.aux_global = aux->data();
      wr.aux_res = aux_res[static_cast<std::size_t>(i)];
    }
    if (i > 0) {
      wr.in_lo = &chans[static_cast<std::size_t>(2 * (i - 1))];
      wr.out_lo = &chans[static_cast<std::size_t>(2 * (i - 1) + 1)];
    }
    if (i + 1 < tiles) {
      wr.out_hi = &chans[static_cast<std::size_t>(2 * i)];
      wr.in_hi = &chans[static_cast<std::size_t>(2 * i + 1)];
    }

    const GridView3D<const T> in_a(wr.buf_a, nx, ny, buf_planes);
    const GridView3D<const T> in_b(wr.buf_b, nx, ny, buf_planes);
    const GridView3D<T> out_a(wr.buf_a, nx, ny, buf_planes);
    const GridView3D<T> out_b(wr.buf_b, nx, ny, buf_planes);
    const GridView3D<T> out_global = a.view();
    const int last_parity = (sweeps - 1) % 2;
    // The z-window stores only the band planes; the target buffer's halo
    // planes are filled by the next exchange. `z0_load` positions the
    // window in the input array (buffer: hz, global: z0); `store_off`
    // relocates the store into the other array for the fused sweeps.
    auto make_body = [&](Index z0_load, Index store_off, GridView3D<const T> in,
                         GridView3D<T> out) {
      if (opt.t == 1) {
        detail::Stencil3dSetup<T> s = detail::stencil3d_setup(in, plan, sopt);
        s.z_origin = z0_load;
        s.z_store_lo = z0_load;
        s.z_store_hi = z0_load + band;
        s.z_store_offset = store_off;
        s.cfg.grid.z = static_cast<int>(ceil_div(band, static_cast<Index>(vp)));
        wr.cfg = s.cfg;
        return std::function<void(sim::FunctionalBlockContext&)>(
            detail::make_stencil3d_body<T>(std::move(s), in, out));
      }
      detail::Temporal3DSetup<T> s =
          detail::stencil3d_temporal_setup(in, plan, topt, {z0_load, band});
      s.z_store_offset = store_off;
      wr.cfg = s.cfg;
      return std::function<void(sim::FunctionalBlockContext&)>(
          detail::make_stencil3d_temporal_body<T>(std::move(s), in, out));
    };
    wr.sweep[0] = make_body(hz, 0, in_a, out_b);
    wr.sweep[1] = make_body(hz, 0, in_b, out_a);
    if constexpr (!kHasPost) {
      if (sweeps >= 3) {
        wr.sweep_first = make_body(z0, hz - z0, a.cview(), out_b);
      }
      wr.sweep_last = make_body(hz, z0 - hz, last_parity == 0 ? in_a : in_b, out_global);
    }
    if constexpr (kHasPost) {
      wr.post = [post, nx, ny, band](T* nb, const T* cb, T* ab) {
        post(GridView3D<T>(nb, nx, ny, band), GridView3D<const T>(cb, nx, ny, band),
             GridView3D<T>(ab, nx, ny, ab != nullptr ? band : 0));
      };
    }
    tile_objs.push_back(std::make_unique<detail::ResidentBandTile<T>>(std::move(wr)));
  }

  std::vector<sim::PersistentTask*> tasks;
  tasks.reserve(tile_objs.size());
  for (auto& t : tile_objs) tasks.push_back(t.get());
  sim::run_persistent(tasks);
  return r;
}

}  // namespace ssam::core
