#include "core/faultinject.hpp"

#include <cstdlib>

#include "core/config.hpp"

namespace ssam::core {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kWorkspaceLease: return "workspace-lease";
    case FaultSite::kKernelSweep: return "kernel-sweep";
    case FaultSite::kHaloSend: return "halo-send";
    case FaultSite::kDeviceDispatch: return "device-dispatch";
  }
  return "?";
}

namespace {

/// SplitMix64 finalizer: one scramble of a combined (seed, site, index)
/// state. Matches common/rng.hpp's generator quality without carrying
/// per-site generator state.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

FaultSite site_key(const std::string& key) {
  if (key == "lease") return FaultSite::kWorkspaceLease;
  if (key == "sweep") return FaultSite::kKernelSweep;
  if (key == "halo") return FaultSite::kHaloSend;
  if (key == "dispatch") return FaultSite::kDeviceDispatch;
  SSAM_REQUIRE(false, "unknown fault site key '" + key +
                          "' (expected lease|sweep|halo|dispatch)");
  return FaultSite::kWorkspaceLease;  // unreachable
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string field = spec.substr(pos, end - pos);
    pos = end + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    SSAM_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < field.size(),
                 "malformed fault spec field '" + field + "' (expected key=value)");
    const std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (key == "device") {
      plan.device = std::atoi(value.c_str());
      continue;
    }
    FaultPlan::Site& site = plan.site(site_key(key));
    site.transient = true;
    const char tail = value.back();
    if (tail == 't' || tail == 'p') {
      site.transient = tail == 't';
      value.pop_back();
    }
    char* parse_end = nullptr;
    site.rate = std::strtod(value.c_str(), &parse_end);
    SSAM_REQUIRE(parse_end != nullptr && *parse_end == '\0' && site.rate >= 0.0 &&
                     site.rate <= 1.0,
                 "fault rate in '" + field + "' must be a number in [0, 1]");
  }
  return plan;
}

std::string FaultPlan::describe() const {
  if (!any()) return "off";
  std::string s = "seed=" + std::to_string(seed);
  if (device >= 0) s += ",device=" + std::to_string(device);
  static const char* kKeys[kFaultSiteCount] = {"lease", "sweep", "halo", "dispatch"};
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const Site& site = sites[static_cast<std::size_t>(i)];
    if (site.rate <= 0.0) continue;
    s += ",";
    s += kKeys[i];
    s += "=" + std::to_string(site.rate) + (site.transient ? "t" : "p");
  }
  return s;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();  // immortal, like the global pools
    const std::string& spec = config().fault_spec;
    if (!spec.empty()) fi->set_plan(FaultPlan::parse(spec));
    return fi;
  }();
  return *injector;
}

void FaultInjector::set_plan(const FaultPlan& plan) {
  enabled_.store(false, std::memory_order_release);
  plan_ = plan;
  for (auto& d : draws_) d.store(0, std::memory_order_relaxed);
  for (auto& i : injected_) i.store(0, std::memory_order_relaxed);
  enabled_.store(plan_.any(), std::memory_order_release);
}

bool FaultInjector::should_inject(FaultSite site, int device) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  const FaultPlan::Site& s = plan_.site(site);
  if (s.rate <= 0.0) return false;
  if (plan_.device >= 0 && device != plan_.device) return false;
  const std::size_t idx = static_cast<std::size_t>(site);
  const std::uint64_t n = draws_[idx].fetch_add(1, std::memory_order_relaxed);
  // Decision n at site s: pure function of (seed, s, n) — the schedule is
  // pinned by the seed, independent of time and layout.
  const std::uint64_t h = mix(plan_.seed + 0x9E3779B97F4A7C15ull * (n + 1) +
                              0xD1B54A32D192ED03ull * (static_cast<std::uint64_t>(idx) + 1));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= s.rate) return false;
  injected_[idx].fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace ssam::core
