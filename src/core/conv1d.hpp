// SSAM 1D convolution — the paper's first motivating example (Section 3.5).
//
// J-tuple: X = 32 consecutive array elements (one per lane), O = (x, +) with
// ctrl == 1, D = the M-1 right-shift chain of Figure 2c, Y = the 32-M+1
// valid lanes. Consecutive warps overlap by M-1 lanes (1D overlapped
// blocking). Coefficients travel as kernel arguments.
#pragma once

#include <span>

#include "core/kernel_common.hpp"

namespace ssam::core {

[[nodiscard]] inline int conv1d_ssam_regs() { return 16; }

template <typename T>
KernelStats conv1d_ssam(const sim::ArchSpec& arch, std::span<const T> in,
                        std::span<const T> filter, std::span<T> out,
                        ExecMode mode = ExecMode::kFunctional, SampleSpec sample = {}) {
  SSAM_REQUIRE(in.size() == out.size(), "conv1d extent mismatch");
  const int m = static_cast<int>(filter.size());
  SSAM_REQUIRE(m >= 1 && m <= sim::kWarpSize - 1, "filter must fit one warp");
  const Index n = static_cast<Index>(in.size());
  const int cx = (m - 1) / 2;
  const int valid = sim::kWarpSize - m + 1;
  constexpr int kBlockThreads = 128;
  const int warps = kBlockThreads / sim::kWarpSize;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(n, static_cast<long long>(warps) * valid)), 1, 1};
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = conv1d_ssam_regs();

  const T* src = in.data();
  T* dst = out.data();
  const T* f = filter.data();
  auto body = [&, n, m, cx, valid, warps, src, dst, f](auto& blk) {
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      const long long warp_linear = static_cast<long long>(blk.id().x) * warps + w;
      const Index base = warp_linear * valid - cx;  // lane 0's input element
      if (base + cx >= n) continue;
      // X: one cached element per lane (register cache of depth 1).
      const Reg<Index> idx = wc.clamp(wc.template iota<Index>(base, 1), Index{0}, n - 1);
      const Reg<T> x = wc.load_global(src, idx);
      // O + D: M MADs with a shift between consecutive filter taps.
      Reg<T> sum = wc.uniform(T{});
      for (int fm = 0; fm < m; ++fm) {
        if (fm > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
        sum = wc.mad(x, f[fm], sum);
      }
      // Y: lanes >= M-1 hold outputs at out_x = base + lane - (M-1) + cx.
      const Reg<Index> out_x =
          wc.affine(wc.template iota<Index>(0, 1), 1, base - (m - 1) + cx);
      Pred ok = wc.pred_and(wc.cmp_ge(wc.lane_id(), m - 1), wc.cmp_lt(out_x, n));
      wc.store_global(dst, out_x, sum, &ok);
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

}  // namespace ssam::core
