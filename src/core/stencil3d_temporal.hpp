// SSAM 3D temporal blocking: t fused time steps with partial sums living in
// registers, using shared memory only for the per-step inter-warp z
// exchange (the same communication split as the single-step 3D kernel of
// Section 4.9).
//
// A block of WZ warps holds WZ consecutive z-planes in register caches.
// Each fused step:
//   1. every still-valid warp runs one systolic column sweep per z-offset
//      group over its current register rows, publishing the dz != 0 partial
//      sums to shared memory;
//   2. after the barrier, warps that still have valid z neighbours combine
//      their dz = 0 sums with neighbours' published sums, producing the next
//      level's register rows.
// Validity shrinks every step: rz planes per side (z), `span` lanes (x),
// dy-span rows (y) — the 3D generalization of the 2D ghost-zone scheme.
#pragma once

#include <vector>

#include "core/stencil3d.hpp"

namespace ssam::core {

struct Temporal3DOptions {
  int t = 2;
  int p = 2;
  int warps = 8;  ///< planes per block; must exceed 2*t*rz
};

[[nodiscard]] inline int stencil3d_ssam_temporal_regs(int rows_halo, int t, int p,
                                                      int passes) {
  const int c0 = p + t * rows_halo;
  return 2 * c0 + p * passes + 12;
}

template <typename T>
KernelStats stencil3d_ssam_temporal(const sim::ArchSpec& arch,
                                    const GridView3D<const T>& in,
                                    const SystolicPlan<T>& plan, GridView3D<T> out,
                                    const Temporal3DOptions& opt = {},
                                    ExecMode mode = ExecMode::kFunctional,
                                    SampleSpec sample = {}) {
  const int rz = plan.rz();
  const int t = opt.t;
  const int span = plan.span();
  const int dy_span = plan.rows_halo();
  SSAM_REQUIRE(t >= 1, "need at least one step");
  SSAM_REQUIRE(opt.warps > 2 * t * rz, "z block too shallow for t fused steps");
  SSAM_REQUIRE(sim::kWarpSize - t * span >= 8, "too many fused steps for one warp");
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  SSAM_REQUIRE(opt.warps * (opt.p + t * dy_span) <= kMaxBlockRegRows,
               "per-block register level state exceeds the inline bound");
  const Index nx = in.nx(), ny = in.ny(), nz = in.nz();

  Blocking2D geom;
  geom.span = t * span;
  geom.dx_min = t * plan.dx_min;
  geom.rows_halo = t * dy_span;
  geom.p = opt.p;
  geom.block_threads = opt.warps * sim::kWarpSize;

  std::vector<const ColumnPass<T>*> off_passes;
  const ColumnPass<T>* center_pass = nullptr;
  for (const auto& pass : plan.passes) {
    if (pass.dz == 0) {
      center_pass = &pass;
    } else {
      off_passes.push_back(&pass);
    }
  }
  const int n_off = static_cast<int>(off_passes.size());
  const int vp = opt.warps - 2 * t * rz;  // valid output planes per block

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(nx, geom.valid_cols())),
                  static_cast<int>(ceil_div(ny, opt.p)),
                  static_cast<int>(ceil_div(nz, vp))};
  cfg.block_threads = geom.block_threads;
  cfg.regs_per_thread = stencil3d_ssam_temporal_regs(
      dy_span, t, opt.p, static_cast<int>(plan.passes.size()));

  const int dy_min = plan.dy_min;
  const int anchor = plan.anchor_dx;

  auto body = [&, geom, dy_min, anchor, nx, ny, nz, vp, n_off, rz, t, span,
               dy_span](auto& blk) {
    const int warps = blk.warp_count();
    const int p = geom.p;
    // Largest published level: rows at level 1 = C0 - dy_span.
    const int c0 = p + t * dy_span;
    const int max_rows = std::max(1, c0 - dy_span);
    Smem<T> published = blk.template alloc_smem<T>(warps * std::max(1, n_off) * max_rows *
                                          sim::kWarpSize);
    auto smem_base = [&](int warp, int slot, int row) {
      return ((warp * std::max(1, n_off) + slot) * max_rows + row) * sim::kWarpSize;
    };

    const Index col0 = geom.lane0_col(blk.id().x);
    const Index row0 = static_cast<Index>(blk.id().y) * p +
                       static_cast<Index>(t) * dy_min;
    const Index z_first = static_cast<Index>(blk.id().z) * vp -
                          static_cast<Index>(t) * rz;

    // Per-warp register state across barriers: the current level's rows,
    // flattened to [warp * c0 + row] in fixed inline buffers. Rows per warp
    // shrink every fused step; the stride stays c0.
    InlineVec<Reg<T>, kMaxBlockRegRows> level(warps * c0);
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      Index pz = z_first + w;
      pz = pz < 0 ? 0 : (pz >= nz ? nz - 1 : pz);
      auto rc = make_register_cache<T>(wc, c0);
      rc.load_rows(in.slice(pz), col0, row0);
      for (int r = 0; r < c0; ++r) level[w * c0 + r] = rc.row(r);
    }

    InlineVec<Reg<T>, kMaxBlockRegRows> center_sums(warps * c0);
    for (int s = 0; s < t; ++s) {
      const int rows_next = c0 - (s + 1) * dy_span;
      // Producers this step: warps whose level-s rows are valid.
      const int w_lo = s * rz;
      const int w_hi = warps - 1 - s * rz;
      for (int w = w_lo; w <= w_hi; ++w) {
        auto& wc = blk.warp(w);
        for (int r = 0; r < rows_next; ++r) {
          Reg<T> s0 = wc.uniform(T{});
          if (center_pass != nullptr) {
            for (std::size_t ci = 0; ci < center_pass->columns.size(); ++ci) {
              if (ci > 0) s0 = wc.shfl_up(sim::kFullMask, s0, 1);
              for (const ColumnTap<T>& tap : center_pass->columns[ci]) {
                s0 = wc.mad(level[w * c0 + r + tap.dy - dy_min], tap.coeff, s0);
              }
            }
          }
          center_sums[w * c0 + r] = s0;
          for (int slot = 0; slot < n_off; ++slot) {
            const ColumnPass<T>& pass = *off_passes[static_cast<std::size_t>(slot)];
            Reg<T> sum = wc.uniform(T{});
            for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
              if (ci > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
              for (const ColumnTap<T>& tap : pass.columns[ci]) {
                sum = wc.mad(level[w * c0 + r + tap.dy - dy_min], tap.coeff, sum);
              }
            }
            wc.store_shared(published, wc.template iota<int>(smem_base(w, slot, r), 1), sum);
          }
        }
      }
      blk.sync();

      // Consumers: warps valid at level s+1 combine neighbours' sums.
      const int c_lo = (s + 1) * rz;
      const int c_hi = warps - 1 - (s + 1) * rz;
      for (int w = c_lo; w <= c_hi; ++w) {
        auto& wc = blk.warp(w);
        // The next level only reads center_sums and shared memory, never the
        // current rows, so it can overwrite level[w] in place.
        for (int r = 0; r < rows_next; ++r) {
          Reg<T> sum = center_sums[w * c0 + r];
          for (int slot = 0; slot < n_off; ++slot) {
            const ColumnPass<T>& pass = *off_passes[static_cast<std::size_t>(slot)];
            const int producer = w + pass.dz;
            const int deficit = anchor - pass.dx_max;
            Reg<int> sidx = wc.add(wc.lane_id(), smem_base(producer, slot, r) - deficit);
            sidx = wc.clamp(sidx, smem_base(producer, slot, r),
                            smem_base(producer, slot, r) + sim::kWarpSize - 1);
            sum = wc.add(sum, wc.load_shared(published, sidx));
          }
          level[w * c0 + r] = sum;
        }
      }
      if (s + 1 < t) blk.sync();  // published buffer is reused next step
    }

    // Store: interior warps, P rows each, lanes >= t*span.
    for (int w = t * rz; w < warps - t * rz; ++w) {
      auto& wc = blk.warp(w);
      const Index pz = z_first + w;
      if (pz < 0 || pz >= nz) continue;
      const GridView2D<T> plane{out.data() + pz * ny * nx, nx, ny, nx};
      store_valid_rows(wc, plane, col0 - static_cast<Index>(t) * anchor,
                       static_cast<Index>(blk.id().y) * p, p, geom.span,
                       [&](int i) -> const Reg<T>& { return level[w * c0 + i]; });
    }
  };

  return sim::launch(arch, cfg, body, mode, sample);
}

template <typename T>
KernelStats stencil3d_ssam_temporal(const sim::ArchSpec& arch,
                                    const GridView3D<const T>& in,
                                    const StencilShape<T>& shape, GridView3D<T> out,
                                    const Temporal3DOptions& opt = {},
                                    ExecMode mode = ExecMode::kFunctional,
                                    SampleSpec sample = {}) {
  return stencil3d_ssam_temporal(arch, in, build_plan(shape.taps), out, opt, mode, sample);
}

}  // namespace ssam::core
