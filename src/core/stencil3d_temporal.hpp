// SSAM 3D temporal blocking: t fused time steps with partial sums living in
// registers, using shared memory only for the per-step inter-warp z
// exchange (the same communication split as the single-step 3D kernel of
// Section 4.9).
//
// A block of WZ warps holds WZ consecutive z-planes in register caches.
// Each fused step:
//   1. every still-valid warp runs one systolic column sweep per z-offset
//      group over its current register rows, publishing the dz != 0 partial
//      sums to shared memory;
//   2. after the barrier, warps that still have valid z neighbours combine
//      their dz = 0 sums with neighbours' published sums, producing the next
//      level's register rows.
// Validity shrinks every step: rz planes per side (z), `span` lanes (x),
// dy-span rows (y) — the 3D generalization of the 2D ghost-zone scheme.
//
// Structured as setup + body maker (like stencil3d.hpp) so the persistent
// iteration engine (core/iterate_persistent.hpp) can build an owned body
// once per tile and replay it inline on the tile's owner worker.
#pragma once

#include <utility>
#include <vector>

#include "core/stencil3d.hpp"

namespace ssam::core {

struct Temporal3DOptions {
  int t = 2;
  int p = 2;
  int warps = 8;  ///< planes per block; must exceed 2*t*rz
};

[[nodiscard]] inline int stencil3d_ssam_temporal_regs(int rows_halo, int t, int p,
                                                      int passes) {
  const int c0 = p + t * rows_halo;
  return 2 * c0 + p * passes + 12;
}

namespace detail {

/// Output z-window of a temporal 3D sweep: planes [origin, origin + count)
/// are stored. The full-grid entry point covers the whole volume; the
/// persistent iteration engine shifts the origin into a tile's residence
/// buffer and stores only the band planes.
struct ZWindow3 {
  Index origin = 0;
  Index count = -1;  ///< -1: the input's full nz
};

/// Validated geometry, launch config, and owned pass schedule of a temporal
/// 3D sweep (owning the passes keeps the body self-contained).
template <typename T>
struct Temporal3DSetup {
  Blocking2D geom;
  sim::LaunchConfig cfg;
  int t = 1;
  int rz = 0;
  int vp = 0;  ///< valid output planes per block
  int n_off = 0;
  int dy_min = 0;
  int anchor = 0;
  int dy_span = 0;
  Index nx = 0;
  Index ny = 0;
  Index nz = 0;
  Index z_lo = 0;  ///< first stored plane
  Index z_hi = 0;  ///< one past the last stored plane
  /// Added to the store plane only (fused first/last sweeps of the
  /// persistent engine store across arrays).
  Index z_store_offset = 0;
  bool has_center = false;
  ColumnPass<T> center_pass;
  std::vector<ColumnPass<T>> off_passes;
};

template <typename T>
[[nodiscard]] Temporal3DSetup<T> stencil3d_temporal_setup(const GridView3D<const T>& in,
                                                          const SystolicPlan<T>& plan,
                                                          const Temporal3DOptions& opt,
                                                          ZWindow3 win = {}) {
  Temporal3DSetup<T> s;
  s.rz = plan.rz();
  s.t = opt.t;
  const int span = plan.span();
  s.dy_span = plan.rows_halo();
  SSAM_REQUIRE(s.t >= 1, "need at least one step");
  SSAM_REQUIRE(opt.warps > 2 * s.t * s.rz, "z block too shallow for t fused steps");
  SSAM_REQUIRE(sim::kWarpSize - s.t * span >= 8, "too many fused steps for one warp");
  SSAM_REQUIRE(opt.p >= 1 && opt.p <= kMaxOutputsPerThread,
               "sliding window length exceeds one warp");
  SSAM_REQUIRE(opt.warps * (opt.p + s.t * s.dy_span) <= kMaxBlockRegRows,
               "per-block register level state exceeds the inline bound");
  s.nx = in.nx();
  s.ny = in.ny();
  s.nz = in.nz();

  s.geom.span = s.t * span;
  s.geom.dx_min = s.t * plan.dx_min;
  s.geom.rows_halo = s.t * s.dy_span;
  s.geom.p = opt.p;
  s.geom.block_threads = opt.warps * sim::kWarpSize;

  for (const auto& pass : plan.passes) {
    if (pass.dz == 0) {
      s.center_pass = pass;
      s.has_center = true;
    } else {
      s.off_passes.push_back(pass);
    }
  }
  s.n_off = static_cast<int>(s.off_passes.size());
  s.vp = opt.warps - 2 * s.t * s.rz;  // valid output planes per block
  s.z_lo = win.origin;
  s.z_hi = win.origin + (win.count < 0 ? s.nz : win.count);

  s.cfg.grid = Dim3{static_cast<int>(ceil_div(s.nx, s.geom.valid_cols())),
                    static_cast<int>(ceil_div(s.ny, opt.p)),
                    static_cast<int>(ceil_div(s.z_hi - s.z_lo, s.vp))};
  s.cfg.block_threads = s.geom.block_threads;
  s.cfg.regs_per_thread = stencil3d_ssam_temporal_regs(
      s.dy_span, s.t, opt.p, static_cast<int>(plan.passes.size()));

  s.dy_min = plan.dy_min;
  s.anchor = plan.anchor_dx;
  return s;
}

/// Mode-generic temporal 3D body. The setup (including the owned passes) is
/// captured by value, so the body outlives the caller's plan.
template <typename T>
[[nodiscard]] auto make_stencil3d_temporal_body(Temporal3DSetup<T> setup,
                                                GridView3D<const T> in,
                                                GridView3D<T> out) {
  return [s = std::move(setup), in, out](auto& blk) {
    const Blocking2D& geom = s.geom;
    const ColumnPass<T>* center_pass = s.has_center ? &s.center_pass : nullptr;
    const std::vector<ColumnPass<T>>& off_passes = s.off_passes;
    const int t = s.t;
    const int rz = s.rz;
    const int vp = s.vp;
    const int n_off = s.n_off;
    const int dy_min = s.dy_min;
    const int anchor = s.anchor;
    const int dy_span = s.dy_span;
    const Index nx = s.nx;
    const Index ny = s.ny;
    const Index nz = s.nz;
    const int warps = blk.warp_count();
    const int p = geom.p;
    // Largest published level: rows at level 1 = C0 - dy_span.
    const int c0 = p + t * dy_span;
    const int max_rows = std::max(1, c0 - dy_span);
    Smem<T> published = blk.template alloc_smem<T>(warps * std::max(1, n_off) * max_rows *
                                                   sim::kWarpSize);
    auto smem_base = [&](int warp, int slot, int row) {
      return ((warp * std::max(1, n_off) + slot) * max_rows + row) * sim::kWarpSize;
    };

    const Index col0 = geom.lane0_col(blk.id().x);
    const Index row0 = static_cast<Index>(blk.id().y) * p +
                       static_cast<Index>(t) * dy_min;
    const Index z_first = s.z_lo + static_cast<Index>(blk.id().z) * vp -
                          static_cast<Index>(t) * rz;

    // Per-warp register state across barriers: the current level's rows,
    // flattened to [warp * c0 + row] in fixed inline buffers. Rows per warp
    // shrink every fused step; the stride stays c0.
    InlineVec<Reg<T>, kMaxBlockRegRows> level(warps * c0);
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      Index pz = z_first + w;
      pz = pz < 0 ? 0 : (pz >= nz ? nz - 1 : pz);
      auto rc = make_register_cache<T>(wc, c0);
      rc.load_rows(in.slice(pz), col0, row0);
      for (int r = 0; r < c0; ++r) level[w * c0 + r] = rc.row(r);
    }

    InlineVec<Reg<T>, kMaxBlockRegRows> center_sums(warps * c0);
    for (int step = 0; step < t; ++step) {
      const int rows_next = c0 - (step + 1) * dy_span;
      // Producers this step: warps whose level-`step` rows are valid.
      const int w_lo = step * rz;
      const int w_hi = warps - 1 - step * rz;
      for (int w = w_lo; w <= w_hi; ++w) {
        auto& wc = blk.warp(w);
        for (int r = 0; r < rows_next; ++r) {
          Reg<T> s0 = wc.uniform(T{});
          if (center_pass != nullptr) {
            for (std::size_t ci = 0; ci < center_pass->columns.size(); ++ci) {
              if (ci > 0) s0 = wc.shfl_up(sim::kFullMask, s0, 1);
              for (const ColumnTap<T>& tap : center_pass->columns[ci]) {
                s0 = wc.mad(level[w * c0 + r + tap.dy - dy_min], tap.coeff, s0);
              }
            }
          }
          center_sums[w * c0 + r] = s0;
          for (int slot = 0; slot < n_off; ++slot) {
            const ColumnPass<T>& pass = off_passes[static_cast<std::size_t>(slot)];
            Reg<T> sum = wc.uniform(T{});
            for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
              if (ci > 0) sum = wc.shfl_up(sim::kFullMask, sum, 1);
              for (const ColumnTap<T>& tap : pass.columns[ci]) {
                sum = wc.mad(level[w * c0 + r + tap.dy - dy_min], tap.coeff, sum);
              }
            }
            wc.store_shared(published, wc.template iota<int>(smem_base(w, slot, r), 1),
                            sum);
          }
        }
      }
      blk.sync();

      // Consumers: warps valid at level `step`+1 combine neighbours' sums.
      const int c_lo = (step + 1) * rz;
      const int c_hi = warps - 1 - (step + 1) * rz;
      for (int w = c_lo; w <= c_hi; ++w) {
        auto& wc = blk.warp(w);
        // The next level only reads center_sums and shared memory, never the
        // current rows, so it can overwrite level[w] in place.
        for (int r = 0; r < rows_next; ++r) {
          Reg<T> sum = center_sums[w * c0 + r];
          for (int slot = 0; slot < n_off; ++slot) {
            const ColumnPass<T>& pass = off_passes[static_cast<std::size_t>(slot)];
            const int producer = w + pass.dz;
            const int deficit = anchor - pass.dx_max;
            Reg<int> sidx = wc.add(wc.lane_id(), smem_base(producer, slot, r) - deficit);
            sidx = wc.clamp(sidx, smem_base(producer, slot, r),
                            smem_base(producer, slot, r) + sim::kWarpSize - 1);
            sum = wc.add(sum, wc.load_shared(published, sidx));
          }
          level[w * c0 + r] = sum;
        }
      }
      if (step + 1 < t) blk.sync();  // published buffer is reused next step
    }

    // Store: interior warps, P rows each, lanes >= t*span.
    for (int w = t * rz; w < warps - t * rz; ++w) {
      auto& wc = blk.warp(w);
      const Index pz = z_first + w;
      if (pz < s.z_lo || pz >= s.z_hi) continue;
      const GridView2D<T> plane{out.data() + (pz + s.z_store_offset) * ny * nx, nx, ny,
                                nx};
      store_valid_rows(wc, plane, col0 - static_cast<Index>(t) * anchor,
                       static_cast<Index>(blk.id().y) * p, p, geom.span,
                       [&](int i) -> const Reg<T>& { return level[w * c0 + i]; });
    }
  };
}

}  // namespace detail

template <typename T>
KernelStats stencil3d_ssam_temporal(const sim::ArchSpec& arch,
                                    const GridView3D<const T>& in,
                                    const SystolicPlan<T>& plan, GridView3D<T> out,
                                    const Temporal3DOptions& opt = {},
                                    ExecMode mode = ExecMode::kFunctional,
                                    SampleSpec sample = {}) {
  detail::Temporal3DSetup<T> s = detail::stencil3d_temporal_setup(in, plan, opt);
  const sim::LaunchConfig cfg = s.cfg;
  auto body = detail::make_stencil3d_temporal_body<T>(std::move(s), in, out);
  return sim::launch(arch, cfg, body, mode, sample);
}

template <typename T>
KernelStats stencil3d_ssam_temporal(const sim::ArchSpec& arch,
                                    const GridView3D<const T>& in,
                                    const StencilShape<T>& shape, GridView3D<T> out,
                                    const Temporal3DOptions& opt = {},
                                    ExecMode mode = ExecMode::kFunctional,
                                    SampleSpec sample = {}) {
  return stencil3d_ssam_temporal(arch, in, build_plan(shape.taps), out, opt, mode, sample);
}

}  // namespace ssam::core
