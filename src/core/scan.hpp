// Scan operator in SSAM (paper Section 3.6, Figure 1e).
//
// The Kogge–Stone dependency graph is the "D" of the scan's J-tuple: at
// stage d the partial sum shifts d lanes downstream and ctrl() gates the
// accumulation to lanes >= d (Equation 1's ctrl returning 0 for low lanes).
// The device-wide scan composes warp scans hierarchically: warp scan ->
// block scan via shared memory -> recursive scan of block sums -> offset add.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/kernel_common.hpp"
#include "gpusim/stream.hpp"

namespace ssam::core {

/// Warp-level inclusive Kogge–Stone scan (Figure 1e, 5 stages for 32 lanes).
template <typename T, typename Warp>
[[nodiscard]] Reg<T> warp_inclusive_scan(Warp& wc, Reg<T> v) {
  for (int d = 1; d < sim::kWarpSize; d <<= 1) {
    const Reg<T> shifted = wc.shfl_up(sim::kFullMask, v, d);
    const Pred gate = wc.cmp_ge(wc.lane_id(), d);  // ctrl() of Equation 1
    v = wc.select(gate, wc.add(v, shifted), v);
  }
  return v;
}

namespace detail {

inline constexpr int kScanBlockThreads = 256;

/// Top-level scan pass: per-block inclusive scan of `src` into `dst`, block
/// totals into `sums`. Captures raw pointers by value — callers own the
/// storage (the async wrapper parks shared_ptrs in the op alongside this
/// body).
template <typename T>
[[nodiscard]] auto make_scan_block_body(const T* src, T* dst, T* sums, Index n,
                                        int warps) {
  return [=](auto& blk) {
    Smem<T> warp_totals = blk.template alloc_smem<T>(warps);
    InlineVec<Reg<T>, kMaxWarpsPerBlock> scanned(warps);
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      const Index base = static_cast<Index>(blk.id().x) * kScanBlockThreads +
                         static_cast<Index>(w) * sim::kWarpSize;
      const Reg<Index> idx = wc.template iota<Index>(base, 1);
      Pred active = wc.cmp_lt(idx, n);
      Reg<T> v = wc.load_global(src, idx, &active);
      v = warp_inclusive_scan(wc, v);
      scanned[w] = v;
      // Publish the warp total (lane 31).
      const Reg<T> total = wc.shfl_idx(sim::kFullMask, v, sim::kWarpSize - 1);
      Pred lane0 = wc.cmp_lt(wc.lane_id(), 1);
      wc.store_shared(warp_totals, wc.uniform(w), total, &lane0);
    }
    blk.sync();
    for (int w = 0; w < warps; ++w) {
      auto& wc = blk.warp(w);
      // Accumulate preceding warps' totals (small serial loop, w <= 8).
      Reg<T> offset = wc.uniform(T{});
      for (int pw = 0; pw < w; ++pw) {
        const Reg<T> t = wc.load_shared_broadcast(warp_totals, pw);
        offset = wc.add(offset, t);
      }
      Reg<T> v = wc.add(scanned[w], offset);
      const Index base = static_cast<Index>(blk.id().x) * kScanBlockThreads +
                         static_cast<Index>(w) * sim::kWarpSize;
      const Reg<Index> idx = wc.template iota<Index>(base, 1);
      Pred active = wc.cmp_lt(idx, n);
      wc.store_global(dst, idx, v, &active);
      if (w == warps - 1) {
        // Lane 31 of the last warp writes the block total.
        Pred last = wc.cmp_ge(wc.lane_id(), sim::kWarpSize - 1);
        wc.store_global(sums, wc.template uniform<Index>(blk.id().x),
                        wc.shfl_idx(sim::kFullMask, v, sim::kWarpSize - 1), &last);
      }
    }
  };
}

/// Offset-add pass: block b adds the scanned sum of blocks [0, b).
template <typename T>
[[nodiscard]] auto make_scan_add_body(const T* offs, T* dst, Index n) {
  return [=](auto& blk) {
    if (blk.id().x == 0) return;  // block 0 needs no offset
    for (int w = 0; w < blk.warp_count(); ++w) {
      auto& wc = blk.warp(w);
      const Reg<T> off = wc.load_global(offs, wc.template uniform<Index>(blk.id().x - 1));
      const Index base = static_cast<Index>(blk.id().x) * kScanBlockThreads +
                         static_cast<Index>(w) * sim::kWarpSize;
      const Reg<Index> idx = wc.template iota<Index>(base, 1);
      Pred active = wc.cmp_lt(idx, n);
      Reg<T> v = wc.load_global(dst, idx, &active);
      v = wc.add(v, off);
      wc.store_global(dst, idx, v, &active);
    }
  };
}

[[nodiscard]] inline sim::LaunchConfig scan_config(long long blocks) {
  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(blocks), 1, 1};
  cfg.block_threads = kScanBlockThreads;
  cfg.regs_per_thread = 24;
  return cfg;
}

}  // namespace detail

/// Device-wide inclusive scan. Returns the stats of every launched kernel
/// (top-level pass, recursive block-sum scans, offset-add passes).
template <typename T>
std::vector<KernelStats> scan_inclusive(const sim::ArchSpec& arch, std::span<const T> in,
                                        std::span<T> out,
                                        ExecMode mode = ExecMode::kFunctional,
                                        SampleSpec sample = {}) {
  SSAM_REQUIRE(in.size() == out.size(), "scan extent mismatch");
  SSAM_REQUIRE(!in.empty(), "empty scan");
  const Index n = static_cast<Index>(in.size());
  constexpr int kBlockThreads = detail::kScanBlockThreads;
  const int warps = kBlockThreads / sim::kWarpSize;
  const long long blocks = ceil_div(n, kBlockThreads);

  std::vector<T> block_sums(static_cast<std::size_t>(blocks));
  std::vector<KernelStats> all;

  const sim::LaunchConfig cfg = detail::scan_config(blocks);
  auto body = detail::make_scan_block_body<T>(in.data(), out.data(), block_sums.data(),
                                              n, warps);
  all.push_back(sim::launch(arch, cfg, body, mode, sample));

  if (blocks > 1) {
    // Recursively scan the block sums, then add exclusive offsets.
    std::vector<T> scanned_sums(block_sums.size());
    auto sub = scan_inclusive<T>(arch, {block_sums.data(), block_sums.size()},
                                 {scanned_sums.data(), scanned_sums.size()}, mode, sample);
    all.insert(all.end(), sub.begin(), sub.end());

    auto add_body = detail::make_scan_add_body<T>(scanned_sums.data(), out.data(), n);
    all.push_back(sim::launch(arch, cfg, add_body, mode, sample));
  }
  return all;
}

/// Enqueues the device-wide scan (all passes, in order) on `stream` and
/// returns an event for the final pass. Intermediate block-sum buffers are
/// owned by the ops; `in`/`out` must stay alive until synchronization.
template <typename T>
sim::Event scan_inclusive_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                std::span<const T> in, std::span<T> out) {
  SSAM_REQUIRE(in.size() == out.size(), "scan extent mismatch");
  SSAM_REQUIRE(!in.empty(), "empty scan");
  const Index n = static_cast<Index>(in.size());
  constexpr int kBlockThreads = detail::kScanBlockThreads;
  const int warps = kBlockThreads / sim::kWarpSize;
  const long long blocks = ceil_div(n, kBlockThreads);

  auto block_sums = std::make_shared<std::vector<T>>(static_cast<std::size_t>(blocks));
  const sim::LaunchConfig cfg = detail::scan_config(blocks);
  auto body = detail::make_scan_block_body<T>(in.data(), out.data(), block_sums->data(),
                                              n, warps);
  sim::Event last = stream.launch(
      arch, cfg, [block_sums, body](auto& blk) { body(blk); });

  if (blocks > 1) {
    auto scanned_sums =
        std::make_shared<std::vector<T>>(static_cast<std::size_t>(blocks));
    // The recursive passes enqueue in stream order, so they see the block
    // sums the first pass wrote.
    scan_inclusive_async<T>(stream, arch, {block_sums->data(), block_sums->size()},
                            {scanned_sums->data(), scanned_sums->size()});
    auto add_body = detail::make_scan_add_body<T>(scanned_sums->data(), out.data(), n);
    last = stream.launch(arch, cfg, [block_sums, scanned_sums, add_body](auto& blk) {
      add_body(blk);
    });
  }
  return last;
}

}  // namespace ssam::core
