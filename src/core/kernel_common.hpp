// Shared device-code helpers for SSAM kernels and baselines.
//
// Kernel bodies are mode-generic: they take `auto& blk` (either the
// functional or the timing BlockContext specialization) and call the same
// warp API; `sim::launch` instantiates whichever specialization the caller
// requests. Per-warp register state (accumulators, cached rows) lives in
// fixed-capacity InlineVecs so the functional steady state never allocates.
#pragma once

#include <cstring>
#include <span>

#include "common/grid.hpp"
#include "common/inline_vec.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/timing.hpp"

namespace ssam::core {

using sim::BlockContext;
using sim::ExecMode;
using sim::FunctionalBlockContext;
using sim::KernelStats;
using sim::Pred;
using sim::Reg;
using sim::SampleSpec;
using sim::Smem;
using sim::WarpContext;

/// Upper bound on sliding-window outputs per thread (P); the window cannot
/// exceed one warp. Bounds the inline accumulator arrays of every kernel.
inline constexpr int kMaxOutputsPerThread = 32;

/// Upper bound on warps per block (1024 threads / 32 lanes).
inline constexpr int kMaxWarpsPerBlock = 32;

/// Cooperatively copies `n` elements from global memory into a shared array,
/// block-striped exactly like Listing 1 lines 9–12 (thread t copies elements
/// t, t+B, t+2B, ...).
template <typename T, typename Block>
void cooperative_load_to_smem(Block& blk, const T* src, const Smem<T>& dst, int n) {
  if constexpr (!Block::kTimed) {
    // Functional mode: the block-striped warp copies below reduce to a plain
    // n-element copy, so issue it as one wide block transfer (the staging
    // arena is 64-byte aligned; see SmemAllocator). Timing mode must issue
    // the real per-warp op sequence for the scoreboard and counters.
    std::memcpy(dst.data, src, static_cast<std::size_t>(n) * sizeof(T));
    blk.sync();
    return;
  }
  const int threads = blk.warp_count() * sim::kWarpSize;
  for (int w = 0; w < blk.warp_count(); ++w) {
    auto& wc = blk.warp(w);
    for (int base = w * sim::kWarpSize; base < n; base += threads) {
      const Reg<Index> gidx = wc.template iota<Index>(base, 1);
      const Reg<int> sidx = wc.template iota<int>(base, 1);
      if (base + sim::kWarpSize <= n) {
        const Reg<T> v = wc.load_global(src, gidx);
        wc.store_shared(dst, sidx, v);
      } else {
        Pred active = wc.cmp_lt(wc.template iota<int>(base, 1), n);
        const Reg<T> v = wc.load_global(src, gidx, &active);
        wc.store_shared(dst, sidx, v, &active);
      }
    }
  }
  blk.sync();
}

/// Stores the P valid output rows of a systolic sweep: lane l >= first_lane
/// holds the output for column x0 + l of rows oy0 .. oy0+p-1 (clipped to the
/// domain). In functional mode, a warp whose stored lanes are fully
/// in-domain writes each row as one contiguous block copy; border warps and
/// timing mode issue the kernels' documented op sequence (index affine,
/// halo/width predicates, predicated coalesced store) unchanged.
template <typename T, typename Warp, typename RowFn>
void store_valid_rows(Warp& wc, GridView2D<T> out, Index x0, Index oy0, int p,
                      int first_lane, RowFn&& row) {
  const Index width = out.width();
  const Index height = out.height();
  if constexpr (!Warp::kTimed) {
    if (x0 + first_lane >= 0 && x0 + sim::kWarpSize <= width) {
      for (int i = 0; i < p; ++i) {
        const Index oy = oy0 + i;
        if (oy >= height) break;
        std::memcpy(out.data() + oy * out.pitch() + x0 + first_lane,
                    row(i).v.lane.data() + first_lane,
                    static_cast<std::size_t>(sim::kWarpSize - first_lane) * sizeof(T));
      }
      return;
    }
  }
  const Reg<Index> out_x = wc.affine(wc.template iota<Index>(0, 1), 1, x0);
  Pred ok = wc.pred_and(wc.cmp_ge(wc.lane_id(), first_lane), wc.cmp_lt(out_x, width));
  for (int i = 0; i < p; ++i) {
    const Index oy = oy0 + i;
    if (oy >= height) break;
    decltype(auto) v = row(i);  // evaluate first: kernels compute the row's ops
                                // (if any) before the output index affine
    const Reg<Index> oidx = wc.affine(out_x, 1, oy * out.pitch());
    wc.store_global(out.data(), oidx, v, &ok);
  }
}

/// Result bundle benches use: sampled statistics plus the runtime estimate.
struct RunResult {
  KernelStats stats;
  sim::RuntimeEstimate estimate;

  [[nodiscard]] double ms() const { return estimate.total_ms; }
};

/// Runs a kernel in timing mode and estimates its runtime.
template <typename Launcher>
RunResult time_kernel(const sim::ArchSpec& arch, Launcher&& launcher,
                      SampleSpec sample = {}) {
  RunResult r;
  r.stats = launcher(ExecMode::kTiming, sample);
  r.estimate = sim::estimate_runtime(arch, r.stats);
  return r;
}

}  // namespace ssam::core
