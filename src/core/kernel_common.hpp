// Shared device-code helpers for SSAM kernels and baselines.
#pragma once

#include <span>

#include "common/grid.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/timing.hpp"

namespace ssam::core {

using sim::BlockContext;
using sim::ExecMode;
using sim::KernelStats;
using sim::Pred;
using sim::Reg;
using sim::SampleSpec;
using sim::Smem;
using sim::WarpContext;

/// Cooperatively copies `n` elements from global memory into a shared array,
/// block-striped exactly like Listing 1 lines 9–12 (thread t copies elements
/// t, t+B, t+2B, ...).
template <typename T>
void cooperative_load_to_smem(BlockContext& blk, const T* src, const Smem<T>& dst, int n) {
  const int threads = blk.warp_count() * sim::kWarpSize;
  for (int w = 0; w < blk.warp_count(); ++w) {
    WarpContext& wc = blk.warp(w);
    for (int base = w * sim::kWarpSize; base < n; base += threads) {
      const Reg<Index> gidx = wc.iota<Index>(base, 1);
      const Reg<int> sidx = wc.iota<int>(base, 1);
      if (base + sim::kWarpSize <= n) {
        const Reg<T> v = wc.load_global(src, gidx);
        wc.store_shared(dst, sidx, v);
      } else {
        Pred active = wc.cmp_lt(wc.iota<int>(base, 1), n);
        const Reg<T> v = wc.load_global(src, gidx, &active);
        wc.store_shared(dst, sidx, v, &active);
      }
    }
  }
  blk.sync();
}

/// Result bundle benches use: sampled statistics plus the runtime estimate.
struct RunResult {
  KernelStats stats;
  sim::RuntimeEstimate estimate;

  [[nodiscard]] double ms() const { return estimate.total_ms; }
};

/// Runs a kernel in timing mode and estimates its runtime.
template <typename Launcher>
RunResult time_kernel(const sim::ArchSpec& arch, Launcher&& launcher,
                      SampleSpec sample = {}) {
  RunResult r;
  r.stats = launcher(ExecMode::kTiming, sample);
  r.estimate = sim::estimate_runtime(arch, r.stats);
  return r;
}

}  // namespace ssam::core
