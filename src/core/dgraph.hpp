// Dependency extraction: the "D" of the SSAM four-tuple J = (O, D, X, Y)
// (paper Sections 3.4 and 5.4).
//
// For the regular kernels the paper targets, the dependency graph reduces to
// a schedule of systolic column passes: each pass sweeps filter columns
// left-to-right, shifting partial sums to the +x neighbour lane between
// columns (Figure 2c). Horizontal shifts cost a shuffle each, so Section 5.4
// prescribes minimizing them — SystolicPlan computes both the minimal
// schedule and a naive dense schedule so the ablation bench can quantify
// the difference.
#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "reference/stencil.hpp"

namespace ssam::core {

/// One (dy, coefficient) entry inside a filter column.
template <typename T>
struct ColumnTap {
  int dy = 0;
  T coeff{};
};

/// One systolic sweep: all taps sharing a z-offset, organized by x-offset
/// column. Columns are processed in increasing dx with one shuffle between
/// consecutive columns; empty interior columns still shift (the partial sum
/// must keep moving) but execute no MADs.
template <typename T>
struct ColumnPass {
  int dz = 0;
  int dx_min = 0;
  int dx_max = 0;
  int dy_min = 0;
  int dy_max = 0;
  /// columns[dx - dx_min] lists the taps of that column.
  std::vector<std::vector<ColumnTap<T>>> columns;

  /// Shuffles needed by this pass (the Section 5.4 cost metric).
  [[nodiscard]] int shifts() const { return dx_max - dx_min; }
  [[nodiscard]] int tap_count() const {
    int n = 0;
    for (const auto& c : columns) n += static_cast<int>(c.size());
    return n;
  }
};

/// The complete shift schedule for a stencil/convolution: one pass per
/// z-offset (2D kernels have exactly one pass, dz = 0).
template <typename T>
struct SystolicPlan {
  std::vector<ColumnPass<T>> passes;  ///< ordered by dz
  int anchor_dx = 0;   ///< global alignment: out_x = input_col(lane) - anchor
  int dx_min = 0;      ///< leftmost column offset across passes
  int dy_min = 0;
  int dy_max = 0;

  /// Lanes consumed by halo: valid output lanes are [span, WarpSize).
  [[nodiscard]] int span() const { return anchor_dx - dx_min; }

  /// Rows of register cache beyond the sliding window: C = P + rows_halo.
  [[nodiscard]] int rows_halo() const { return dy_max - dy_min; }

  /// Total horizontal shifts per sliding-window step (Section 5.4 metric).
  [[nodiscard]] int horizontal_shifts() const {
    int s = 0;
    for (const auto& p : passes) s += p.shifts();
    return s;
  }

  [[nodiscard]] const ColumnPass<T>* pass_for_dz(int dz) const {
    for (const auto& p : passes) {
      if (p.dz == dz) return &p;
    }
    return nullptr;
  }

  [[nodiscard]] int rz() const {
    int r = 0;
    for (const auto& p : passes) r = std::max(r, std::abs(p.dz));
    return r;
  }
};

namespace detail {
template <typename T>
ColumnPass<T> build_pass(int dz, std::vector<ref::Tap<T>> taps, bool dense, int dense_radius) {
  ColumnPass<T> pass;
  pass.dz = dz;
  SSAM_REQUIRE(!taps.empty(), "empty pass");
  pass.dx_min = taps.front().dx;
  pass.dx_max = taps.front().dx;
  pass.dy_min = taps.front().dy;
  pass.dy_max = taps.front().dy;
  for (const auto& t : taps) {
    pass.dx_min = std::min(pass.dx_min, t.dx);
    pass.dx_max = std::max(pass.dx_max, t.dx);
    pass.dy_min = std::min(pass.dy_min, t.dy);
    pass.dy_max = std::max(pass.dy_max, t.dy);
  }
  if (dense) {
    // Naive schedule: sweep the full [-r, r] column range regardless of
    // which columns hold taps (what a non-optimized mapping would emit).
    pass.dx_min = std::min(pass.dx_min, -dense_radius);
    pass.dx_max = std::max(pass.dx_max, dense_radius);
  }
  pass.columns.resize(static_cast<std::size_t>(pass.dx_max - pass.dx_min + 1));
  for (const auto& t : taps) {
    pass.columns[static_cast<std::size_t>(t.dx - pass.dx_min)].push_back(
        ColumnTap<T>{t.dy, t.coeff});
  }
  return pass;
}
}  // namespace detail

/// Builds the minimal-shift schedule for a tap set. If `dense` is set, every
/// pass sweeps the full square column range (the ablation's naive D).
template <typename T>
[[nodiscard]] SystolicPlan<T> build_plan(const std::vector<ref::Tap<T>>& taps,
                                         bool dense = false) {
  SSAM_REQUIRE(!taps.empty(), "cannot build a plan for an empty stencil");
  int rx = 0;
  for (const auto& t : taps) rx = std::max(rx, std::abs(t.dx));

  // Group taps by dz, ascending.
  std::vector<int> dzs;
  for (const auto& t : taps) {
    if (std::find(dzs.begin(), dzs.end(), t.dz) == dzs.end()) dzs.push_back(t.dz);
  }
  std::sort(dzs.begin(), dzs.end());

  SystolicPlan<T> plan;
  for (int dz : dzs) {
    std::vector<ref::Tap<T>> group;
    for (const auto& t : taps) {
      if (t.dz == dz) group.push_back(t);
    }
    plan.passes.push_back(detail::build_pass(dz, std::move(group), dense, rx));
  }
  plan.anchor_dx = plan.passes.front().dx_max;
  plan.dx_min = plan.passes.front().dx_min;
  plan.dy_min = plan.passes.front().dy_min;
  plan.dy_max = plan.passes.front().dy_max;
  for (const auto& p : plan.passes) {
    plan.anchor_dx = std::max(plan.anchor_dx, p.dx_max);
    plan.dx_min = std::min(plan.dx_min, p.dx_min);
    plan.dy_min = std::min(plan.dy_min, p.dy_min);
    plan.dy_max = std::max(plan.dy_max, p.dy_max);
  }
  return plan;
}

}  // namespace ssam::core
