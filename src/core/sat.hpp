// Summed Area Table in SSAM (paper Section 3.6; Chen et al. [8]).
//
// Two passes over the grid:
//   1. row pass — one warp per row marches in 32-wide chunks; each chunk is
//      Kogge–Stone-scanned in registers and a running carry (lane 31's
//      total) is broadcast into the next chunk: the 1D systolic schedule.
//   2. column pass — one thread per column accumulates serially downwards;
//      warp lanes cover adjacent columns so every load/store is coalesced.
#pragma once

#include <vector>

#include "core/scan.hpp"

namespace ssam::core {

/// Computes the inclusive SAT of `in` into `out` (may not alias).
/// Returns stats of the two launched kernels.
template <typename T>
std::vector<KernelStats> summed_area_table(const sim::ArchSpec& arch,
                                           const GridView2D<const T>& in, GridView2D<T> out,
                                           ExecMode mode = ExecMode::kFunctional,
                                           SampleSpec sample = {}) {
  SSAM_REQUIRE(in.width() == out.width() && in.height() == out.height(), "sat extents");
  const Index width = in.width();
  const Index height = in.height();
  std::vector<KernelStats> all;

  // Pass 1: row scans; block of 4 warps handles 4 rows.
  {
    sim::LaunchConfig cfg;
    cfg.block_threads = 128;
    const int warps = cfg.block_threads / sim::kWarpSize;
    cfg.grid = Dim3{static_cast<int>(ceil_div(height, warps)), 1, 1};
    cfg.regs_per_thread = 20;
    auto body = [&, width, height, warps](auto& blk) {
      for (int w = 0; w < blk.warp_count(); ++w) {
        auto& wc = blk.warp(w);
        const Index y = static_cast<Index>(blk.id().x) * warps + w;
        if (y >= height) continue;
        Reg<T> carry = wc.uniform(T{});
        for (Index x0 = 0; x0 < width; x0 += sim::kWarpSize) {
          const Reg<Index> idx = wc.template iota<Index>(y * in.pitch() + x0, 1);
          Pred active = wc.cmp_lt(wc.template iota<Index>(x0, 1), width);
          Reg<T> v = wc.load_global(in.data(), idx, &active);
          v = warp_inclusive_scan(wc, v);
          v = wc.add(v, carry);
          carry = wc.shfl_idx(sim::kFullMask, v, sim::kWarpSize - 1);
          const Reg<Index> oidx = wc.template iota<Index>(y * out.pitch() + x0, 1);
          wc.store_global(out.data(), oidx, v, &active);
        }
      }
    };
    all.push_back(sim::launch(arch, cfg, body, mode, sample));
  }

  // Pass 2: column accumulation, 128 adjacent columns per block.
  {
    sim::LaunchConfig cfg;
    cfg.block_threads = 128;
    cfg.grid = Dim3{static_cast<int>(ceil_div(width, cfg.block_threads)), 1, 1};
    cfg.regs_per_thread = 16;
    auto body = [&, width, height](auto& blk) {
      for (int w = 0; w < blk.warp_count(); ++w) {
        auto& wc = blk.warp(w);
        const Index x0 = static_cast<Index>(blk.id().x) * 128 + static_cast<Index>(w) * 32;
        if (x0 >= width) continue;
        Pred active = wc.cmp_lt(wc.template iota<Index>(x0, 1), width);
        Reg<T> acc = wc.uniform(T{});
        for (Index y = 0; y < height; ++y) {
          const Reg<Index> idx = wc.template iota<Index>(y * out.pitch() + x0, 1);
          Reg<T> v = wc.load_global(out.data(), idx, &active);
          acc = wc.add(acc, v);
          wc.store_global(out.data(), idx, acc, &active);
        }
      }
    };
    all.push_back(sim::launch(arch, cfg, body, mode, sample));
  }
  return all;
}

}  // namespace ssam::core
