// Iterative stencil driver (double-buffered time stepping).
//
// The per-step state (validated setup, column-pass schedule, kernel bodies)
// is hoisted out of the step loop: one ping body (a -> b) and one pong body
// (b -> a) are built per call and reused for every step, so a long run —
// or a benchmark calling the driver repeatedly — performs no per-step plan
// copies or allocator traffic. The async variants share one heap-allocated
// body per direction across all enqueued ops for the same reason.
//
// For runs long enough to amortize tile setup, the persistent engine
// (core/iterate_persistent.hpp) replaces the per-step relaunch entirely:
// tiles stay resident on their workers and exchange halos directly.
#pragma once

#include <memory>

#include "core/stencil2d.hpp"
#include "core/stencil3d.hpp"

namespace ssam::core {

/// Result of an iterative run: per-step stats (uniform across steps for the
/// non-temporally-blocked kernels) and the step count.
struct IterationStats {
  KernelStats per_step;
  int steps = 0;
};

/// Runs `steps` SSAM stencil sweeps A->B, swapping buffers; the final state
/// ends in `a`. In timing mode only the first step is timed (steps are
/// identical for out-of-place sweeps).
template <typename T>
IterationStats iterate_stencil2d(const sim::ArchSpec& arch, Grid2D<T>& a, Grid2D<T>& b,
                                 const StencilShape<T>& shape, int steps,
                                 const StencilOptions& opt = {},
                                 ExecMode mode = ExecMode::kFunctional,
                                 SampleSpec sample = {}) {
  IterationStats r;
  r.steps = steps;
  const SystolicPlan<T> plan = build_plan(shape.taps);
  if (mode == ExecMode::kTiming) {
    r.per_step = stencil2d_ssam<T>(arch, a.cview(), plan, b.view(), opt, mode, sample);
    return r;
  }
  const detail::Stencil2dSetup s = detail::stencil2d_setup(a.cview(), plan, opt);
  auto ping = detail::make_stencil2d_body<T>(s, a.cview(), plan.passes.front(), b.view());
  auto pong = detail::make_stencil2d_body<T>(s, b.cview(), plan.passes.front(), a.view());
  for (int step = 0; step < steps; ++step) {
    r.per_step = (step % 2 == 0) ? sim::launch(arch, s.cfg, ping, mode, sample)
                                 : sim::launch(arch, s.cfg, pong, mode, sample);
  }
  if (steps % 2 == 1) std::swap(a, b);  // final state ends in `a`, as before
  return r;
}

template <typename T>
IterationStats iterate_stencil3d(const sim::ArchSpec& arch, Grid3D<T>& a, Grid3D<T>& b,
                                 const StencilShape<T>& shape, int steps,
                                 const Stencil3DOptions& opt = {},
                                 ExecMode mode = ExecMode::kFunctional,
                                 SampleSpec sample = {}) {
  IterationStats r;
  r.steps = steps;
  const SystolicPlan<T> plan = build_plan(shape.taps);
  if (mode == ExecMode::kTiming) {
    r.per_step = stencil3d_ssam<T>(arch, a.cview(), plan, b.view(), opt, mode, sample);
    return r;
  }
  detail::Stencil3dSetup<T> s = detail::stencil3d_setup(a.cview(), plan, opt);
  const sim::LaunchConfig cfg = s.cfg;
  auto ping = detail::make_stencil3d_body<T>(s, a.cview(), b.view());
  auto pong = detail::make_stencil3d_body<T>(std::move(s), b.cview(), a.view());
  for (int step = 0; step < steps; ++step) {
    r.per_step = (step % 2 == 0) ? sim::launch(arch, cfg, ping, mode, sample)
                                 : sim::launch(arch, cfg, pong, mode, sample);
  }
  if (steps % 2 == 1) std::swap(a, b);
  return r;
}

namespace detail {
/// Wraps a kernel body behind a shared_ptr so per-op stream copies share
/// one heap-allocated body (and its pass schedule) instead of cloning the
/// tap vectors for every enqueued step.
template <typename Body>
[[nodiscard]] auto share_body(Body&& body) {
  return [sp = std::make_shared<Body>(std::forward<Body>(body))](auto& blk) {
    (*sp)(blk);
  };
}
}  // namespace detail

/// Enqueues all `steps` functional sweeps on `stream` without any host-side
/// join between steps (the stream's FIFO order replaces the per-step
/// fork/join of the synchronous driver). For odd step counts `a` and `b`
/// are swapped at enqueue time — their heap buffers exchange roles before
/// this returns — so after the returned event signals the final state is in
/// `a`, exactly as with the synchronous driver, and ops enqueued afterwards
/// on `a` chain correctly in FIFO order. Both grids must stay alive until
/// synchronization.
template <typename T>
sim::Event iterate_stencil2d_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                   Grid2D<T>& a, Grid2D<T>& b, const StencilShape<T>& shape,
                                   int steps, const StencilOptions& opt = {}) {
  const SystolicPlan<T> plan = build_plan(shape.taps);
  const detail::Stencil2dSetup s = detail::stencil2d_setup(a.cview(), plan, opt);
  auto ping = detail::share_body(
      detail::make_stencil2d_body<T>(s, a.cview(), plan.passes.front(), b.view()));
  auto pong = detail::share_body(
      detail::make_stencil2d_body<T>(s, b.cview(), plan.passes.front(), a.view()));
  sim::Event last;
  for (int step = 0; step < steps; ++step) {
    last = (step % 2 == 0) ? stream.launch(arch, s.cfg, ping)
                           : stream.launch(arch, s.cfg, pong);
  }
  // The bodies captured the raw buffers, so the enqueue-time swap only
  // renames the grids for the caller; the last enqueued sweep writes the
  // buffer `a` now owns.
  if (steps % 2 == 1) std::swap(a, b);
  return last;
}

template <typename T>
sim::Event iterate_stencil3d_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                   Grid3D<T>& a, Grid3D<T>& b, const StencilShape<T>& shape,
                                   int steps, const Stencil3DOptions& opt = {}) {
  const SystolicPlan<T> plan = build_plan(shape.taps);
  detail::Stencil3dSetup<T> s = detail::stencil3d_setup(a.cview(), plan, opt);
  const sim::LaunchConfig cfg = s.cfg;
  auto ping = detail::share_body(detail::make_stencil3d_body<T>(s, a.cview(), b.view()));
  auto pong =
      detail::share_body(detail::make_stencil3d_body<T>(std::move(s), b.cview(), a.view()));
  sim::Event last;
  for (int step = 0; step < steps; ++step) {
    last = (step % 2 == 0) ? stream.launch(arch, cfg, ping) : stream.launch(arch, cfg, pong);
  }
  if (steps % 2 == 1) std::swap(a, b);  // enqueue-time rename, as in 2D
  return last;
}

}  // namespace ssam::core
