// Iterative stencil driver (double-buffered time stepping).
#pragma once

#include "core/stencil2d.hpp"
#include "core/stencil3d.hpp"

namespace ssam::core {

/// Result of an iterative run: per-step stats (uniform across steps for the
/// non-temporally-blocked kernels) and the step count.
struct IterationStats {
  KernelStats per_step;
  int steps = 0;
};

/// Runs `steps` SSAM stencil sweeps A->B, swapping buffers; the final state
/// ends in `a`. In timing mode only the first step is timed (steps are
/// identical for out-of-place sweeps).
template <typename T>
IterationStats iterate_stencil2d(const sim::ArchSpec& arch, Grid2D<T>& a, Grid2D<T>& b,
                                 const StencilShape<T>& shape, int steps,
                                 const StencilOptions& opt = {},
                                 ExecMode mode = ExecMode::kFunctional,
                                 SampleSpec sample = {}) {
  IterationStats r;
  r.steps = steps;
  const SystolicPlan<T> plan = build_plan(shape.taps);
  if (mode == ExecMode::kTiming) {
    r.per_step = stencil2d_ssam<T>(arch, a.cview(), plan, b.view(), opt, mode, sample);
    return r;
  }
  for (int s = 0; s < steps; ++s) {
    r.per_step = stencil2d_ssam<T>(arch, a.cview(), plan, b.view(), opt, mode, sample);
    std::swap(a, b);
  }
  return r;
}

template <typename T>
IterationStats iterate_stencil3d(const sim::ArchSpec& arch, Grid3D<T>& a, Grid3D<T>& b,
                                 const StencilShape<T>& shape, int steps,
                                 const Stencil3DOptions& opt = {},
                                 ExecMode mode = ExecMode::kFunctional,
                                 SampleSpec sample = {}) {
  IterationStats r;
  r.steps = steps;
  const SystolicPlan<T> plan = build_plan(shape.taps);
  if (mode == ExecMode::kTiming) {
    r.per_step = stencil3d_ssam<T>(arch, a.cview(), plan, b.view(), opt, mode, sample);
    return r;
  }
  for (int s = 0; s < steps; ++s) {
    r.per_step = stencil3d_ssam<T>(arch, a.cview(), plan, b.view(), opt, mode, sample);
    std::swap(a, b);
  }
  return r;
}

/// Enqueues all `steps` functional sweeps on `stream` without any host-side
/// join between steps (the stream's FIFO order replaces the per-step
/// fork/join of the synchronous driver). `a` and `b` are swapped at enqueue
/// time — their heap buffers alternate roles per step — so after the
/// returned event signals, the final state is in `a`, exactly as with the
/// synchronous driver. Both grids must stay alive until synchronization.
template <typename T>
sim::Event iterate_stencil2d_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                   Grid2D<T>& a, Grid2D<T>& b, const StencilShape<T>& shape,
                                   int steps, const StencilOptions& opt = {}) {
  const SystolicPlan<T> plan = build_plan(shape.taps);
  sim::Event last;
  for (int s = 0; s < steps; ++s) {
    last = stencil2d_ssam_async<T>(stream, arch, a.cview(), plan, b.view(), opt);
    std::swap(a, b);
  }
  return last;
}

template <typename T>
sim::Event iterate_stencil3d_async(sim::Stream& stream, const sim::ArchSpec& arch,
                                   Grid3D<T>& a, Grid3D<T>& b, const StencilShape<T>& shape,
                                   int steps, const Stencil3DOptions& opt = {}) {
  const SystolicPlan<T> plan = build_plan(shape.taps);
  sim::Event last;
  for (int s = 0; s < steps; ++s) {
    last = stencil3d_ssam_async<T>(stream, arch, a.cview(), plan, b.view(), opt);
    std::swap(a, b);
  }
  return last;
}

}  // namespace ssam::core
