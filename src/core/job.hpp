// The unified job request API: one typed description of a simulation
// request, one dispatch path for everyone who runs it.
//
// The kernel layers grew nine `*_async` entry points plus two option
// structs (`PersistentOptions`, `ShardPolicy`) — fine for one caller
// driving one large workload, unusable as the request surface of a
// multi-tenant service. `SimJob` collapses a request into one value:
// kernel kind, grids, stencil shape or filter, step count, policy hints,
// and the tenant/priority fields the scheduler needs. `run_job` is the
// single dispatch path under both worlds: the free functions and examples
// call it directly on the global pool, the `SimServer` (core/server.hpp)
// calls it device-pinned with a leased workspace — so a job's output is
// bit-identical whichever door it entered through (the repo-wide
// determinism invariant extends to the service).
//
// Lifetime: a SimJob references caller-owned grids. They must stay alive
// and untouched until the job's `JobFuture` reports completion.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/grid.hpp"
#include "core/chain.hpp"
#include "core/config.hpp"
#include "core/conv2d.hpp"
#include "core/iterate_persistent.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/device.hpp"

namespace ssam::core {

enum class JobKind { kStencil2D, kStencil3D, kConv2D, kChain };

/// Per-job policy knobs (the subset of PersistentOptions a service client
/// may reasonably hint; sharding is the server's business, not the job's).
struct JobHints {
  IterationPolicy policy = IterationPolicy::kAuto;
  int tiles = 0;  ///< 0: auto
  int t = 1;      ///< fused time steps per sweep
  int p = 4;
  int block_threads = 128;
  int warps3d = 8;
  /// Resolve policy/tiles/sharding through the autotuner (core/autotune.hpp)
  /// instead of taking the fields above literally. A per-host cache hit
  /// costs zero measurements on the serving path; a miss runs the guided
  /// search once per (kernel, shape, host) and persists the winner. Only the
  /// bit-safe knobs are tuned — `t`, `p`, `block_threads` stay as hinted, so
  /// a tuned run is bit-identical to the default run of the same job.
  bool auto_tune = false;
};

/// One simulation request. Build with the factories; the service API is
/// fixed to float (the paper's precision), the underlying kernels stay
/// templated for direct callers.
struct SimJob {
  JobKind kind = JobKind::kStencil2D;

  // Stencil jobs: ping/pong grids, the final state ends in *a.
  Grid2D<float>* a2 = nullptr;
  Grid2D<float>* b2 = nullptr;
  Grid3D<float>* a3 = nullptr;
  Grid3D<float>* b3 = nullptr;
  StencilShape<float> shape;
  int steps = 1;  ///< sweeps (each advances hints.t fused time steps)

  // Convolution jobs: a2 = input, b2 = output, row-major M x N filter.
  std::vector<float> filter;
  int filter_m = 0;
  int filter_n = 0;

  // Chain jobs: a2 = input, b2 = output (distinct grids), one stage per
  // entry; `steps` mirrors the depth and `shape` the first stage's shape
  // (both feed the scheduler's cost/footprint estimates only).
  std::vector<ChainStage<float>> stages;

  JobHints hints;
  int tenant = 0;    ///< fair-queuing bucket (weight via SimServer)
  /// >= 0; boosts the tenant's effective weight for THIS job (its fair-
  /// queuing tag increment shrinks by 1/(1+priority), buying the tenant
  /// more share against other tenants). It does not reorder jobs within
  /// one tenant: each tenant's own queue drains strictly FIFO.
  int priority = 0;
  /// > 0: the job must finish within this many milliseconds of submission.
  /// The server's watchdog cancels overdue work (kCancelled with a
  /// deadline-exceeded error) and, with ServerOptions::shed_on_deadline,
  /// admission refuses jobs predicted to miss (kRejected, deadline-
  /// unmeetable). 0: no deadline.
  double deadline_ms = 0.0;
  /// Optional caller-provided cancellation handle. Normally left inert:
  /// `submit` gives every accepted job a live token reachable through
  /// JobFuture::cancel(). Set one explicitly to share a token across jobs
  /// (cancel a whole batch at once) or to cancel direct run_job calls.
  CancelToken cancel;

  [[nodiscard]] static SimJob stencil2d(Grid2D<float>& a, Grid2D<float>& b,
                                        StencilShape<float> shape, int steps,
                                        JobHints hints = {}) {
    SimJob j;
    j.kind = JobKind::kStencil2D;
    j.a2 = &a;
    j.b2 = &b;
    j.shape = std::move(shape);
    j.steps = steps;
    j.hints = hints;
    return j;
  }

  [[nodiscard]] static SimJob stencil3d(Grid3D<float>& a, Grid3D<float>& b,
                                        StencilShape<float> shape, int steps,
                                        JobHints hints = {}) {
    SimJob j;
    j.kind = JobKind::kStencil3D;
    j.a3 = &a;
    j.b3 = &b;
    j.shape = std::move(shape);
    j.steps = steps;
    j.hints = hints;
    return j;
  }

  [[nodiscard]] static SimJob conv2d(Grid2D<float>& in, Grid2D<float>& out,
                                     std::vector<float> filter, int filter_m,
                                     int filter_n, JobHints hints = {}) {
    SimJob j;
    j.kind = JobKind::kConv2D;
    j.a2 = &in;
    j.b2 = &out;
    j.filter = std::move(filter);
    j.filter_m = filter_m;
    j.filter_n = filter_n;
    j.steps = 1;
    j.hints = hints;
    return j;
  }

  /// A depth-k stage chain from `in` to `out` (one fused launch under
  /// kAuto/kPersistent; see core/chain.hpp). The grids must be distinct.
  [[nodiscard]] static SimJob chain2d(Grid2D<float>& in, Grid2D<float>& out,
                                      std::vector<ChainStage<float>> stages,
                                      JobHints hints = {}) {
    SSAM_REQUIRE(!stages.empty(), "chain2d job needs at least one stage");
    SimJob j;
    j.kind = JobKind::kChain;
    j.a2 = &in;
    j.b2 = &out;
    j.steps = static_cast<int>(stages.size());
    j.shape = stages.front().shape;
    j.stages = std::move(stages);
    j.hints = hints;
    return j;
  }

  /// Grid cells touched per sweep — the scheduler's work estimate.
  [[nodiscard]] Index cells() const {
    switch (kind) {
      case JobKind::kStencil2D:
      case JobKind::kConv2D:
      case JobKind::kChain:
        return a2 != nullptr ? a2->size() : 0;
      case JobKind::kStencil3D:
        return a3 != nullptr ? a3->size() : 0;
    }
    return 0;
  }

  /// Total work estimate (cells x sweeps), the fair-queuing cost unit.
  [[nodiscard]] double cost() const {
    const Index c = cells();
    const int s = steps < 1 ? 1 : steps;
    return static_cast<double>(c) * static_cast<double>(s);
  }
};

enum class JobStatus {
  kPending,    ///< not finished yet (never visible through a fulfilled future)
  kRejected,   ///< admission control refused it (queue full / shed / stopped)
  kFailed,     ///< validation or execution error; see `error`
  kCancelled,  ///< cancelled (user cancel or deadline) before completion
  kCompleted,  ///< ran; outputs are in the job's grids
};

struct JobResult {
  JobStatus status = JobStatus::kPending;
  PersistentRunStats run;   ///< what the engine actually did
  int device = -1;          ///< device index the job ran on (-1: none)
  std::uint64_t seq = 0;    ///< global completion sequence number
  double queue_ms = 0.0;    ///< submit -> dispatch
  double exec_ms = 0.0;     ///< dispatch -> done (all attempts)
  JobError error;           ///< non-kCompleted: what went wrong (final attempt)
  int attempts = 0;         ///< execution attempts (> 1: the server retried)
  /// Per-attempt errors of the attempts that failed, in order — a job that
  /// completed after two transient faults carries both here.
  std::vector<JobError> attempt_errors;
};

namespace detail {

/// Shared completion state behind a JobFuture (Event-style, but carrying a
/// typed result).
struct JobState {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  JobResult result;
  /// The job's live cancellation token (set by SimServer::submit); the
  /// future's cancel() and the server's deadline watchdog both act on it.
  CancelToken cancel;

  void fulfill(JobResult r) {
    {
      std::lock_guard<std::mutex> lock(m);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// Handle to an accepted (or rejected) job. Cheap to copy; `wait` blocks
/// until the server fulfils it.
class JobFuture {
 public:
  JobFuture() = default;
  explicit JobFuture(std::shared_ptr<detail::JobState> s) : state_(std::move(s)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  [[nodiscard]] bool ready() const {
    if (state_ == nullptr) return false;
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->done;
  }

  /// Blocks until the job finishes and returns its result. The returned
  /// reference stays valid as long as any copy of this future exists —
  /// which is why waiting on a temporary is deleted below: the reference
  /// would dangle the moment the full expression ends.
  const JobResult& wait() const& {
    SSAM_REQUIRE(state_ != nullptr, "waiting on an empty JobFuture");
    std::unique_lock<std::mutex> lock(state_->m);
    state_->cv.wait(lock, [&] { return state_->done; });
    return state_->result;
  }
  /// `submit(job).wait()` would return a reference into a future destroyed
  /// at the semicolon. Name the future, then wait on it.
  const JobResult& wait() const&& = delete;

  /// Blocks up to `timeout_ms`; true when the job reached a terminal
  /// status in time. The chaos suite's hang detector.
  [[nodiscard]] bool wait_for(double timeout_ms) const {
    SSAM_REQUIRE(state_ != nullptr, "waiting on an empty JobFuture");
    std::unique_lock<std::mutex> lock(state_->m);
    return state_->cv.wait_for(lock, std::chrono::duration<double, std::milli>(timeout_ms),
                               [&] { return state_->done; });
  }

  /// Requests cooperative cancellation: queued work is fulfilled kCancelled
  /// at the server's next pump, running work unwinds at its next sweep
  /// boundary. Idempotent; a no-op once the job is terminal (results are
  /// never retracted).
  void cancel() const {
    if (state_ != nullptr) state_->cancel.cancel(static_cast<int>(ErrorCode::kCancelled));
  }

 private:
  std::shared_ptr<detail::JobState> state_;
};

/// Defined in core/autotune.cpp: resolves `job` through the global AutoTuner
/// and applies the tuned schedule's bit-safe knobs (policy, tiles, sharding)
/// to `popt`. Declared here so run_job stays header-only without a cyclic
/// include (autotune.hpp includes this header for SimJob).
void autotune_apply(const sim::ArchSpec& arch, const SimJob& job,
                    sim::Device* device, PersistentOptions& popt);

/// THE dispatch path: runs `job` synchronously on `device`'s pool slice
/// (null: the global pool), using `ws` for tile residence (null: the
/// calling thread's default workspace). The SimServer calls this from its
/// per-device streams with a leased warm workspace; direct callers and the
/// examples call it bare — both produce bit-identical outputs. Throws
/// PreconditionError on an invalid job (the server catches and reports
/// kFailed instead of dying).
inline PersistentRunStats run_job(const sim::ArchSpec& arch, const SimJob& job,
                                  sim::Device* device = nullptr,
                                  sim::PersistentWorkspace* ws = nullptr) {
  PersistentOptions popt;
  popt.policy = job.hints.policy;
  popt.tiles = job.hints.tiles;
  popt.t = job.hints.t;
  popt.p = job.hints.p;
  popt.block_threads = job.hints.block_threads;
  popt.warps3d = job.hints.warps3d;
  popt.device = device;
  popt.cancel = job.cancel;
  // The SimServer reaches this line too (it dispatches every job through
  // run_job), so auto_tune jobs resolve through the tuner on both doors —
  // and a warm cache keeps the serving path measurement-free.
  if (job.hints.auto_tune) autotune_apply(arch, job, device, popt);
  switch (job.kind) {
    case JobKind::kStencil2D: {
      SSAM_REQUIRE(job.a2 != nullptr && job.b2 != nullptr, "stencil2d job needs grids");
      SSAM_REQUIRE(!job.shape.taps.empty(), "stencil2d job needs a stencil shape");
      return iterate_stencil2d_persistent<float>(arch, *job.a2, *job.b2, job.shape,
                                                 job.steps, popt, detail::NoPost{},
                                                 nullptr, ws);
    }
    case JobKind::kStencil3D: {
      SSAM_REQUIRE(job.a3 != nullptr && job.b3 != nullptr, "stencil3d job needs grids");
      SSAM_REQUIRE(!job.shape.taps.empty(), "stencil3d job needs a stencil shape");
      return iterate_stencil3d_persistent<float>(arch, *job.a3, *job.b3, job.shape,
                                                 job.steps, popt, detail::NoPost{},
                                                 nullptr, ws);
    }
    case JobKind::kConv2D: {
      SSAM_REQUIRE(job.a2 != nullptr && job.b2 != nullptr, "conv2d job needs grids");
      // One launch = one "sweep": same cancel/fault gate as the iterative
      // paths, on the calling thread.
      detail::relaunch_sweep_gate(popt.cancel, device != nullptr ? device->index() : -1);
      const ConvOptions copt{job.hints.p, job.hints.block_threads};
      const detail::Conv2dSetup s = detail::conv2d_setup<float>(
          job.a2->cview(), job.filter.size(), job.filter_m, job.filter_n, copt);
      auto body =
          detail::make_conv2d_body<float>(s, job.a2->cview(), job.filter.data(),
                                          job.b2->view());
      ThreadPool& lane = device != nullptr ? device->pool() : ThreadPool::global();
      sim::detail::run_functional_grid_on(lane, arch, s.cfg, body);
      if (device != nullptr) {
        device->counters().sweeps.fetch_add(1, std::memory_order_relaxed);
      }
      PersistentRunStats r;
      r.sweeps = 1;
      return r;
    }
    case JobKind::kChain: {
      SSAM_REQUIRE(job.a2 != nullptr && job.b2 != nullptr, "chain job needs grids");
      SSAM_REQUIRE(!job.stages.empty(), "chain job needs stages");
      return run_chain2d<float>(arch, *job.a2, *job.b2, job.stages, popt, ws);
    }
  }
  SSAM_REQUIRE(false, "unknown job kind");
  return {};
}

}  // namespace ssam::core
