// Host-side micro-benchmarks of the simulator substrate (google-benchmark).
//
// These measure the *simulator's own* throughput (lane-ops/s on the host),
// which bounds how large a timing sample the harness can afford — useful
// when extending the repo, orthogonal to the simulated-GPU results.
#include <benchmark/benchmark.h>

#include "core/conv2d.hpp"
#include "core/scan.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/launch.hpp"

namespace {

using namespace ssam;

void BM_WarpMadChain(benchmark::State& state) {
  const auto& arch = sim::tesla_v100();
  const sim::LaunchConfig cfg{.grid = Dim3{1, 1, 1}, .block_threads = 32,
                              .regs_per_thread = 32};
  sim::MemorySystem mem(arch);
  for (auto _ : state) {
    sim::BlockContext blk(arch, cfg, BlockId{}, &mem);
    sim::WarpContext& w = blk.warp(0);
    sim::Reg<float> v = w.uniform(1.0f);
    for (int i = 0; i < 1024; ++i) v = w.mad(v, 0.999f, v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * sim::kWarpSize);
}
BENCHMARK(BM_WarpMadChain);

void BM_WarpShuffle(benchmark::State& state) {
  const auto& arch = sim::tesla_v100();
  const sim::LaunchConfig cfg{.grid = Dim3{1, 1, 1}, .block_threads = 32,
                              .regs_per_thread = 32};
  sim::MemorySystem mem(arch);
  for (auto _ : state) {
    sim::BlockContext blk(arch, cfg, BlockId{}, &mem);
    sim::WarpContext& w = blk.warp(0);
    sim::Reg<float> v = w.iota(0.0f, 1.0f);
    for (int i = 0; i < 1024; ++i) v = w.shfl_up(sim::kFullMask, v, 1);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * sim::kWarpSize);
}
BENCHMARK(BM_WarpShuffle);

void BM_CacheAccess(benchmark::State& state) {
  sim::SetAssocCache l2(6 * 1024 * 1024, 128, 16);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l2.access(addr));
    addr += 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_SsamConvFunctional(benchmark::State& state) {
  const Index n = state.range(0);
  Grid2D<float> in(n, n, 1.0f), out(n, n);
  std::vector<float> w(25, 0.04f);
  for (auto _ : state) {
    core::conv2d_ssam<float>(sim::tesla_v100(), in.cview(), w, 5, 5, out.view());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SsamConvFunctional)->Arg(256)->Arg(512);

void BM_SsamConvTiming(benchmark::State& state) {
  const Index n = 2048;
  Grid2D<float> in(n, n, 1.0f), out(n, n);
  std::vector<float> w(81, 0.01f);
  for (auto _ : state) {
    auto stats = core::conv2d_ssam<float>(sim::tesla_v100(), in.cview(), w, 9, 9,
                                          out.view(), {}, sim::ExecMode::kTiming, {32, 4});
    benchmark::DoNotOptimize(stats.cycles_per_block);
  }
}
BENCHMARK(BM_SsamConvTiming);

void BM_DeviceScanFunctional(benchmark::State& state) {
  std::vector<float> in(1 << 16, 1.0f), out(1 << 16);
  for (auto _ : state) {
    core::scan_inclusive<float>(sim::tesla_v100(), in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(in.size()));
}
BENCHMARK(BM_DeviceScanFunctional);

}  // namespace

BENCHMARK_MAIN();
