// Section 7.1's unplotted claim: "SSAM performs as well [as on] Pascal in
// Maxwell and Kepler architectures. Due to the space limitation, we do not
// show the result." — we have the space. Runs the Fig. 4 comparison at a
// representative filter size on all four Table 1 GPUs.
#include <iostream>

#include "baselines/conv2d_direct.hpp"
#include "baselines/conv2d_smem.hpp"
#include "bench_common.hpp"
#include "core/conv2d.hpp"

int main() {
  using namespace ssam;
  bench::print_simulation_note();
  print_banner("Extra: SSAM vs baselines on K40 / M40 / P100 / V100 (9x9 conv, 4096^2)");
  bench::ShapeChecks checks;

  Grid2D<float> in(4096, 4096), out(4096, 4096);
  std::vector<float> w(81, 0.01f);

  ConsoleTable t({"GPU", "SSAM ms", "ArrayFire ms", "NPP ms", "SSAM vs NPP"});
  for (const sim::ArchSpec* arch : sim::all_archs()) {
    auto ssam = core::conv2d_ssam<float>(*arch, in.cview(), w, 9, 9, out.view(), {},
                                         sim::ExecMode::kTiming, {32, 4});
    auto smem = base::conv2d_smem<float>(*arch, in.cview(), w, 9, 9, out.view(), {},
                                         sim::ExecMode::kTiming, {32, 4});
    auto npp = base::conv2d_direct<float>(*arch, in.cview(), w, 9, 9, out.view(), {},
                                          sim::ExecMode::kTiming, {32, 4});
    const double ms_ssam = sim::estimate_runtime(*arch, ssam).total_ms;
    const double ms_smem = sim::estimate_runtime(*arch, smem).total_ms;
    const double ms_npp = sim::estimate_runtime(*arch, npp).total_ms;
    t.add_row({arch->name, ConsoleTable::num(ms_ssam, 2), ConsoleTable::num(ms_smem, 2),
               ConsoleTable::num(ms_npp, 2), ConsoleTable::num(ms_npp / ms_ssam, 2) + "x"});
    checks.check(arch->name + ": SSAM fastest (Section 7.1 claim)",
                 ms_ssam < ms_smem && ms_ssam < ms_npp);
  }
  std::cout << t.str();
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
