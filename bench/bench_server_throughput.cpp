// Multi-tenant service throughput: the SimServer (core/server.hpp) under
// two load shapes, written to BENCH_server_throughput.json so the service
// numbers are tracked across PRs alongside the kernel throughput bench.
//
//  * server_saturation_d4 — a closed batch of mixed jobs (stencil2d,
//    stencil3d, conv2d) submitted all at once to a 4-device group (one
//    worker each) and drained: jobs/sec with every scheduling layer hot
//    (admission, fair queuing, device packing, warm workspace leases,
//    small-job batch lane). The serial baseline is the same job list as
//    submit-and-wait — one job in flight at a time — so
//    `speedup_vs_serial` is the concurrency the service actually extracts
//    from the group. On a 1-core host the honest number is ~1.0x (four
//    1-worker devices time-slice one core); the CI gate asserts >= 2x on
//    its 4-vCPU runner. Every server output is memcmp'd against a direct
//    `run_job` golden; any mismatch sets bit_identical = false and the
//    bench exits nonzero (determinism is the gate, speed is the report).
//
//  * server_openloop_d4 — an open-loop arrival stream: exponential
//    interarrival gaps (fixed-seed Poisson process) submitted from one
//    client thread regardless of completion, i.e. the arrival rate does
//    not slow down when the server queues — the load shape that exposes
//    queueing delay. Reported: sustained jobs/sec and the p50/p99 of
//    per-job sojourn time (submit -> future fulfilled, = queue_ms +
//    exec_ms from the JobResult).
//
//  * server_overload_shed — a bimodal burst under deadline pressure with
//    `shed_on_deadline` on: jobs whose predicted execution time exceeds
//    their deadline are refused at admission, protecting the sojourn tail
//    of the jobs that can still make it. Reported: goodput, shed count,
//    admitted-but-missed count, completed-job sojourn p50/p99.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/grid.hpp"
#include "common/rng.hpp"
#include "core/job.hpp"
#include "core/server.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simd/simd.hpp"

namespace {

using namespace ssam;
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// ---------------------------------------------------------------------------
// Workload: one Case owns its grids (jobs run concurrently, nothing is
// shared) plus a golden copy produced by a direct run_job call on the
// global pool — the bit-identity reference for the server output.
// ---------------------------------------------------------------------------

struct Case {
  core::JobKind kind = core::JobKind::kStencil2D;
  Grid2D<float> a2{1, 1}, b2{1, 1}, ga2{1, 1}, gb2{1, 1};
  Grid3D<float> a3{1, 1, 1}, b3{1, 1, 1}, ga3{1, 1, 1}, gb3{1, 1, 1};
  core::StencilShape<float> shape;
  std::vector<float> filter;
  int filter_m = 0, filter_n = 0;
  int steps = 1;
  core::JobHints hints;

  [[nodiscard]] core::SimJob job(int tenant) {
    core::SimJob j;
    switch (kind) {
      case core::JobKind::kStencil2D:
        j = core::SimJob::stencil2d(a2, b2, shape, steps, hints);
        break;
      case core::JobKind::kStencil3D:
        j = core::SimJob::stencil3d(a3, b3, shape, steps, hints);
        break;
      case core::JobKind::kConv2D:
        j = core::SimJob::conv2d(a2, b2, filter, filter_m, filter_n, hints);
        break;
    }
    j.tenant = tenant;
    return j;
  }

  /// Direct-call golden on the ga*/gb* copies (same initial state).
  void run_golden(const sim::ArchSpec& arch) {
    core::SimJob j;
    switch (kind) {
      case core::JobKind::kStencil2D:
        j = core::SimJob::stencil2d(ga2, gb2, shape, steps, hints);
        break;
      case core::JobKind::kStencil3D:
        j = core::SimJob::stencil3d(ga3, gb3, shape, steps, hints);
        break;
      case core::JobKind::kConv2D:
        j = core::SimJob::conv2d(ga2, gb2, filter, filter_m, filter_n, hints);
        break;
    }
    (void)core::run_job(arch, j);
  }

  /// Rewinds both the served and the golden grids to the same fresh state.
  void reset(unsigned seed) {
    switch (kind) {
      case core::JobKind::kStencil2D:
        fill_random(a2, seed);
        ga2 = a2;
        break;
      case core::JobKind::kStencil3D:
        fill_random(a3, seed);
        ga3 = a3;
        break;
      case core::JobKind::kConv2D:
        fill_random(a2, seed);
        ga2 = a2;
        break;
    }
  }

  [[nodiscard]] bool matches_golden() const {
    if (kind == core::JobKind::kStencil3D) {
      return 0 == std::memcmp(a3.data(), ga3.data(),
                              static_cast<std::size_t>(a3.size()) * sizeof(float));
    }
    const Grid2D<float>& out = kind == core::JobKind::kConv2D ? b2 : a2;
    const Grid2D<float>& gold = kind == core::JobKind::kConv2D ? gb2 : ga2;
    return 0 == std::memcmp(out.data(), gold.data(),
                            static_cast<std::size_t>(out.size()) * sizeof(float));
  }
};

std::vector<Case> build_cases(int count, unsigned seed) {
  std::vector<Case> cases;
  cases.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Case c;
    const unsigned s = seed + static_cast<unsigned>(i) * 101u;
    switch (i % 4) {
      case 0: {  // mid-size 2D stencil
        c.kind = core::JobKind::kStencil2D;
        c.a2 = Grid2D<float>(512, 256);
        c.b2 = Grid2D<float>(512, 256);
        c.ga2 = c.a2;
        c.gb2 = c.b2;
        c.shape = core::star2d<float>(1);
        c.steps = 2;
        break;
      }
      case 1: {  // small conv2d — rides the batch lane
        c.kind = core::JobKind::kConv2D;
        c.a2 = Grid2D<float>(96, 96);
        c.b2 = Grid2D<float>(96, 96);
        c.ga2 = c.a2;
        c.gb2 = c.b2;
        c.filter_m = 5;
        c.filter_n = 5;
        c.filter.assign(25, 0.04f);
        break;
      }
      case 2: {  // 3D stencil
        c.kind = core::JobKind::kStencil3D;
        c.a3 = Grid3D<float>(96, 64, 32);
        c.b3 = Grid3D<float>(96, 64, 32);
        c.ga3 = c.a3;
        c.gb3 = c.b3;
        c.shape = core::star3d<float>(1);
        c.steps = 1;
        break;
      }
      default: {  // small 2D stencil, persistent engine forced
        c.kind = core::JobKind::kStencil2D;
        c.a2 = Grid2D<float>(128, 64);
        c.b2 = Grid2D<float>(128, 64);
        c.ga2 = c.a2;
        c.gb2 = c.b2;
        c.shape = core::star2d<float>(1);
        c.steps = 3;
        c.hints.policy = core::IterationPolicy::kPersistent;
        break;
      }
    }
    c.reset(s);
    cases.push_back(std::move(c));
  }
  return cases;
}

// ---------------------------------------------------------------------------
// Result rows, written under "kernels" so check_bench_regression.py reads
// this file with the same loader as the kernel bench.
// ---------------------------------------------------------------------------

struct ServerRow {
  std::string name;
  int devices = 0;
  int jobs = 0;
  double seconds = 0.0;
  double serial_seconds = 0.0;  ///< saturation row only
  double p50_ms = 0.0;          ///< open-loop / shed rows only
  double p99_ms = 0.0;
  double offered_jobs_per_sec = 0.0;
  int bit_identical = -1;
  int submitted = -1;  ///< shed row only: offered / refused / deadline-missed
  int shed = -1;
  int missed = -1;

  [[nodiscard]] double jobs_per_sec() const { return jobs / seconds; }
  [[nodiscard]] double speedup_vs_serial() const {
    return serial_seconds > 0.0 ? serial_seconds / seconds : 0.0;
  }
};

void write_json(const std::vector<ServerRow>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"server_throughput\",\n");
  std::fprintf(f, "  \"simd_backend\": \"%s\",\n", sim::simd::kBackendName);
  std::fprintf(f, "  \"host_threads\": %d,\n  \"kernels\": [\n",
               ThreadPool::global().size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServerRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"devices\": %d, \"jobs\": %d, "
                 "\"seconds\": %.6f, \"jobs_per_sec\": %.1f",
                 r.name.c_str(), r.devices, r.jobs, r.seconds, r.jobs_per_sec());
    if (r.serial_seconds > 0.0) {
      std::fprintf(f, ", \"serial_seconds\": %.6f, \"speedup_vs_serial\": %.2f",
                   r.serial_seconds, r.speedup_vs_serial());
    }
    if (r.p99_ms > 0.0) {
      std::fprintf(f,
                   ", \"offered_jobs_per_sec\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f",
                   r.offered_jobs_per_sec, r.p50_ms, r.p99_ms);
    }
    if (r.bit_identical >= 0) {
      std::fprintf(f, ", \"bit_identical\": %s", r.bit_identical != 0 ? "true" : "false");
    }
    if (r.submitted >= 0) {
      std::fprintf(f, ", \"submitted\": %d, \"shed\": %d, \"missed\": %d",
                   r.submitted, r.shed, r.missed);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

constexpr int kDevices = 4;

sim::DeviceGroup& bench_group() {
  // Explicit 4 x 1-worker group: stable shape regardless of host cores, so
  // the committed baseline and the CI runner measure the same schedule.
  static sim::DeviceGroup group({sim::DeviceOptions{1, {}, "srv0"},
                                 sim::DeviceOptions{1, {}, "srv1"},
                                 sim::DeviceOptions{1, {}, "srv2"},
                                 sim::DeviceOptions{1, {}, "srv3"}});
  return group;
}

ServerRow saturation(const sim::ArchSpec& arch) {
  const int kJobs = 48;
  std::vector<Case> cases = build_cases(kJobs, 7001);

  core::ServerOptions sopt;
  sopt.arch = &arch;
  sopt.group = &bench_group();
  core::SimServer server(sopt);

  // Warm pass: populates every device's workspace spare pool so the timed
  // passes measure steady-state service, not first-wave arena carving.
  auto batch_submit_all = [&] {
    std::vector<core::JobFuture> futs;
    futs.reserve(cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      futs.push_back(server.submit(cases[i].job(static_cast<int>(i % 3))));
    }
    for (core::JobFuture& f : futs) (void)f.wait();
  };
  batch_submit_all();

  // Timed concurrent pass (best of 3) from a fresh grid state each rep.
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      cases[i].reset(7001 + static_cast<unsigned>(i) * 101u);
    }
    const auto t0 = Clock::now();
    batch_submit_all();
    best = std::min(best, seconds_between(t0, Clock::now()));
  }

  // Bit-identity of the final rep: reset() rewound the golden grids to the
  // same fresh input the server just consumed, so run the direct-call
  // goldens now and compare.
  bool identical = true;
  for (Case& c : cases) {
    c.run_golden(arch);
    identical = identical && c.matches_golden();
  }

  // Serial baseline: same jobs, same server, one in flight at a time.
  double serial_best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      cases[i].reset(7001 + static_cast<unsigned>(i) * 101u);
    }
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < cases.size(); ++i) {
      // Named on purpose: wait() on a temporary future is deleted (the
      // result reference would dangle at the semicolon).
      core::JobFuture f = server.submit(cases[i].job(static_cast<int>(i % 3)));
      (void)f.wait();
    }
    serial_best = std::min(serial_best, seconds_between(t0, Clock::now()));
  }

  ServerRow r;
  r.name = "server_saturation_d4";
  r.devices = kDevices;
  r.jobs = kJobs;
  r.seconds = best;
  r.serial_seconds = serial_best;
  r.bit_identical = identical ? 1 : 0;
  std::printf(
      "%-24s %7.1f jobs/s  (serial %7.1f jobs/s, speedup %.2fx, "
      "bit-identical %s)\n",
      r.name.c_str(), r.jobs_per_sec(), kJobs / serial_best, r.speedup_vs_serial(),
      identical ? "yes" : "NO");
  return r;
}

ServerRow openloop(const sim::ArchSpec& arch) {
  const int kJobs = 64;
  std::vector<Case> cases = build_cases(kJobs, 9103);

  core::ServerOptions sopt;
  sopt.arch = &arch;
  sopt.group = &bench_group();
  core::SimServer server(sopt);

  // Fixed-seed Poisson process via inverse-CDF exponential gaps; target an
  // offered rate around half the saturation throughput so the queue stays
  // stable and p99 measures scheduling latency, not unbounded backlog.
  const double mean_gap_s = 0.004;
  SplitMix64 rng(424243);
  std::vector<double> gaps(static_cast<std::size_t>(kJobs));
  for (double& g : gaps) {
    g = -mean_gap_s * std::log(std::max(1e-9, 1.0 - rng.next_unit()));
  }

  std::vector<core::JobFuture> futs;
  futs.reserve(cases.size());
  const auto t0 = Clock::now();
  auto next_arrival = t0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gaps[i]));
    std::this_thread::sleep_until(next_arrival);
    futs.push_back(server.submit(cases[i].job(static_cast<int>(i % 3))));
  }
  std::vector<double> sojourn_ms;
  sojourn_ms.reserve(futs.size());
  for (core::JobFuture& f : futs) {
    const core::JobResult& jr = f.wait();
    sojourn_ms.push_back(jr.queue_ms + jr.exec_ms);
  }
  const double total_s = seconds_between(t0, Clock::now());

  std::sort(sojourn_ms.begin(), sojourn_ms.end());
  auto pct = [&](double p) {
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sojourn_ms.size() - 1) + 0.5);
    return sojourn_ms[std::min(idx, sojourn_ms.size() - 1)];
  };

  ServerRow r;
  r.name = "server_openloop_d4";
  r.devices = kDevices;
  r.jobs = kJobs;
  r.seconds = total_s;
  double offered_s = 0.0;
  for (double g : gaps) offered_s += g;
  r.offered_jobs_per_sec = kJobs / offered_s;
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  std::printf(
      "%-24s %7.1f jobs/s sustained (offered %7.1f/s; sojourn p50 %.2f ms, "
      "p99 %.2f ms)\n",
      r.name.c_str(), r.jobs_per_sec(), r.offered_jobs_per_sec, r.p50_ms, r.p99_ms);
  return r;
}

// Deadline-aware admission shedding under overload: a bimodal burst —
// small jobs that fit comfortably inside a mid-range deadline, big jobs
// whose *own execution time* already exceeds it — submitted all at once
// with `shed_on_deadline` on. The server first serves a deadline-free warm
// pass, which both fills the workspace pools and teaches the online
// ms-per-unit EWMA real timings for this host; the deadline is then set to
// the geometric mean of the observed small/big exec times (~10x margin to
// either mode), so the shed decision is robust to host speed. Reported:
// goodput (completed jobs/sec), how many were shed at the door, how many
// admitted jobs still missed (watchdog-cancelled), and the sojourn p50/p99
// of the completed jobs — the number shedding exists to protect.
ServerRow overload_shed(const sim::ArchSpec& arch) {
  constexpr int kSmall = 16;
  constexpr int kBig = 16;
  std::vector<Case> cases;
  cases.reserve(kSmall + kBig);
  for (int i = 0; i < kSmall + kBig; ++i) {
    Case c;
    c.kind = core::JobKind::kStencil2D;
    if (i < kSmall) {
      c.a2 = Grid2D<float>(128, 64);
      c.b2 = Grid2D<float>(128, 64);
      c.steps = 2;
    } else {
      c.a2 = Grid2D<float>(1024, 512);
      c.b2 = Grid2D<float>(1024, 512);
      c.steps = 4;
    }
    c.shape = core::star2d<float>(1);
    c.reset(11311 + static_cast<unsigned>(i) * 101u);
    cases.push_back(std::move(c));
  }

  core::ServerOptions sopt;
  sopt.arch = &arch;
  sopt.group = &bench_group();
  sopt.shed_on_deadline = true;  // calibration stays 0: learned online
  core::SimServer server(sopt);

  // Warm + calibrate: a few of each mode, no deadlines.
  double t_small_ms = 0.0, t_big_ms = 0.0;
  for (int i : {0, 1, kSmall, kSmall + 1}) {
    core::JobFuture f = server.submit(cases[static_cast<std::size_t>(i)].job(0));
    const core::JobResult& jr = f.wait();
    (i < kSmall ? t_small_ms : t_big_ms) =
        std::max(i < kSmall ? t_small_ms : t_big_ms, jr.exec_ms);
  }
  const double deadline_ms =
      std::sqrt(std::max(0.01, t_small_ms) * std::max(0.01, t_big_ms));

  // The burst: everything at once, everything on the same deadline.
  std::vector<core::JobFuture> futs;
  futs.reserve(cases.size());
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    core::SimJob j = cases[i].job(static_cast<int>(i % 3));
    j.deadline_ms = deadline_ms;
    futs.push_back(server.submit(std::move(j)));
  }
  int completed = 0, shed = 0, missed = 0;
  std::vector<double> sojourn_ms;
  for (core::JobFuture& f : futs) {
    const core::JobResult& jr = f.wait();
    switch (jr.status) {
      case core::JobStatus::kCompleted:
        ++completed;
        sojourn_ms.push_back(jr.queue_ms + jr.exec_ms);
        break;
      case core::JobStatus::kRejected:
        ++shed;
        break;
      default:
        ++missed;
        break;
    }
  }
  const double total_s = seconds_between(t0, Clock::now());

  std::sort(sojourn_ms.begin(), sojourn_ms.end());
  auto pct = [&](double p) {
    if (sojourn_ms.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sojourn_ms.size() - 1) + 0.5);
    return sojourn_ms[std::min(idx, sojourn_ms.size() - 1)];
  };

  ServerRow r;
  r.name = "server_overload_shed";
  r.devices = kDevices;
  r.jobs = completed;
  r.seconds = total_s;
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  r.submitted = kSmall + kBig;
  r.shed = shed;
  r.missed = missed;
  std::printf(
      "%-24s %7.1f jobs/s goodput (deadline %.2f ms: %d/%d shed at the door, "
      "%d admitted missed; sojourn p50 %.2f ms, p99 %.2f ms)\n",
      r.name.c_str(), r.jobs_per_sec(), deadline_ms, shed, kSmall + kBig, missed,
      r.p50_ms, r.p99_ms);
  return r;
}

}  // namespace

int main() {
  const sim::ArchSpec& arch = sim::tesla_v100();
  std::printf("SimServer throughput (4 x 1-worker devices, %s lanes, %d host threads)\n\n",
              sim::simd::kBackendName, ThreadPool::global().size());

  std::vector<ServerRow> rows;
  rows.push_back(saturation(arch));
  rows.push_back(openloop(arch));
  rows.push_back(overload_shed(arch));
  write_json(rows, "BENCH_server_throughput.json");

  // Exit code gates determinism only: throughput and latency vary with the
  // host; a server output differing from the direct call never may.
  for (const ServerRow& r : rows) {
    if (r.bit_identical == 0) {
      std::fprintf(stderr, "FAIL: %s served outputs differ from direct calls\n",
                   r.name.c_str());
      return 1;
    }
  }
  return 0;
}
