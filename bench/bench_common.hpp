// Shared utilities for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the simulated kernels in timing mode on the paper's domain sizes, prints
// the same rows/series the paper reports, and where the paper states
// explicit numbers or shape criteria, prints paper-vs-measured columns.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/grid.hpp"
#include "common/table.hpp"
#include "core/kernel_common.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/timing.hpp"

namespace ssam::bench {

/// Timing-mode sample: 96 blocks in 4 contiguous runs (see launch.hpp).
[[nodiscard]] inline sim::SampleSpec default_sample() { return sim::SampleSpec{96, 4}; }

/// Turns a KernelStats into a runtime estimate and GCells/s for a domain.
struct Measurement {
  double ms = 0.0;
  double gcells = 0.0;
  std::string bound;
};

[[nodiscard]] inline Measurement measure(const sim::ArchSpec& arch,
                                         const sim::KernelStats& stats, double cells,
                                         int fused_steps = 1) {
  const sim::RuntimeEstimate est = sim::estimate_runtime(arch, stats);
  Measurement m;
  m.ms = est.total_ms;
  m.gcells = cells * fused_steps / (est.total_ms * 1e-3) / 1e9;
  m.bound = est.bound;
  return m;
}

/// Shape-criterion bookkeeping: the bench prints PASS/FAIL lines mirroring
/// the qualitative claims of the paper (who wins, by roughly what factor).
class ShapeChecks {
 public:
  void check(const std::string& name, bool ok) {
    results_.push_back({name, ok});
    if (!ok) ++failures_;
  }

  void print() const {
    std::cout << "\nShape criteria (paper claims):\n";
    for (const auto& [name, ok] : results_) {
      std::cout << "  [" << (ok ? "PASS" : "FAIL") << "] " << name << '\n';
    }
  }

  [[nodiscard]] int failures() const { return failures_; }

 private:
  std::vector<std::pair<std::string, bool>> results_;
  int failures_ = 0;
};

inline void print_simulation_note() {
  std::cout << "(simulated GPUs: timings are estimates from the cycle-level SIMT\n"
               " simulator described in DESIGN.md, parameterized by the paper's\n"
               " Table 2 latencies; shapes, not absolute ms, are the target)\n";
}

}  // namespace ssam::bench
