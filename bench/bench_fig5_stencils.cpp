// Figure 5: stencil performance (GCells/s) on the Table 3 suite.
//
// Four panels: (a) P100 FP32, (b) V100 FP32, (c) P100 FP64, (d) V100 FP64.
// Implementations: original / reordered / unrolled (Rawat et al. [47,48]),
// ppcg-style smem tiling [53], Halide-like, and SSAM. Domains 8192^2 / 512^3.
#include <iostream>
#include <map>

#include "baselines/stencil_direct.hpp"
#include "baselines/stencil_tiled.hpp"
#include "bench_common.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil_suite.hpp"

namespace {

using namespace ssam;

const std::vector<std::string> kFig5Stencils = {
    "2d5pt", "2d9pt",  "2d13pt", "2d17pt", "2d21pt", "2ds25pt", "2d25pt",
    "2d64pt", "2d81pt", "2d121pt", "3d7pt",  "3d27pt", "3d125pt", "poisson"};

const std::vector<std::string> kImpls = {"original", "reordered", "unrolled",
                                         "ppcg",     "Halide",    "SSAM"};

template <typename T>
std::map<std::string, double> run_shape(const sim::ArchSpec& arch,
                                        const core::StencilShape<T>& shape,
                                        Grid2D<T>& in2, Grid2D<T>& out2, Grid3D<T>& in3,
                                        Grid3D<T>& out3) {
  const sim::SampleSpec sample{32, 4};
  std::map<std::string, double> gcells;
  auto add = [&](const std::string& name, const sim::KernelStats& st, double cells) {
    gcells[name] = bench::measure(arch, st, cells).gcells;
  };
  if (shape.dims == 2) {
    const double cells = static_cast<double>(in2.width()) * in2.height();
    add("original", base::stencil2d_direct<T>(arch, in2.cview(), shape, out2.view(),
                                              base::DirectStyle::kOriginal,
                                              sim::ExecMode::kTiming, sample),
        cells);
    add("reordered", base::stencil2d_direct<T>(arch, in2.cview(), shape, out2.view(),
                                               base::DirectStyle::kReordered,
                                               sim::ExecMode::kTiming, sample),
        cells);
    add("unrolled", base::stencil2d_direct<T>(arch, in2.cview(), shape, out2.view(),
                                              base::DirectStyle::kUnrolled,
                                              sim::ExecMode::kTiming, sample),
        cells);
    add("ppcg", base::stencil2d_smem_tiled<T>(arch, in2.cview(), shape, out2.view(),
                                              sim::ExecMode::kTiming, sample),
        cells);
    add("Halide", base::stencil2d_direct<T>(arch, in2.cview(), shape, out2.view(),
                                            base::DirectStyle::kHalide,
                                            sim::ExecMode::kTiming, sample),
        cells);
    add("SSAM", core::stencil2d_ssam<T>(arch, in2.cview(), shape, out2.view(), {},
                                        sim::ExecMode::kTiming, sample),
        cells);
  } else {
    const double cells = static_cast<double>(in3.nx()) * in3.ny() * in3.nz();
    add("original", base::stencil3d_direct<T>(arch, in3.cview(), shape, out3.view(),
                                              base::DirectStyle::kOriginal,
                                              sim::ExecMode::kTiming, sample),
        cells);
    add("reordered", base::stencil3d_direct<T>(arch, in3.cview(), shape, out3.view(),
                                               base::DirectStyle::kReordered,
                                               sim::ExecMode::kTiming, sample),
        cells);
    add("unrolled", base::stencil3d_direct<T>(arch, in3.cview(), shape, out3.view(),
                                              base::DirectStyle::kUnrolled,
                                              sim::ExecMode::kTiming, sample),
        cells);
    add("ppcg", base::stencil3d_smem_tiled<T>(arch, in3.cview(), shape, out3.view(),
                                              sim::ExecMode::kTiming, sample),
        cells);
    add("Halide", base::stencil3d_direct<T>(arch, in3.cview(), shape, out3.view(),
                                            base::DirectStyle::kHalide,
                                            sim::ExecMode::kTiming, sample),
        cells);
    add("SSAM", core::stencil3d_ssam<T>(arch, in3.cview(), shape, out3.view(), {},
                                        sim::ExecMode::kTiming, sample),
        cells);
  }
  return gcells;
}

template <typename T>
void run_panel(const sim::ArchSpec& arch, const char* panel, bench::ShapeChecks& checks) {
  print_banner(std::string("Figure 5") + panel + " (" + arch.name + ", " +
               (sizeof(T) == 4 ? "single" : "double") + " precision): GCells/s");

  Grid2D<T> in2(core::kSuiteDomain2D, core::kSuiteDomain2D);
  Grid2D<T> out2(core::kSuiteDomain2D, core::kSuiteDomain2D);
  Grid3D<T> in3(core::kSuiteDomain3D, core::kSuiteDomain3D, core::kSuiteDomain3D);
  Grid3D<T> out3(core::kSuiteDomain3D, core::kSuiteDomain3D, core::kSuiteDomain3D);

  ConsoleTable t({"benchmark", "original", "reordered", "unrolled", "ppcg", "Halide",
                  "SSAM", "winner"});
  int ssam_wins = 0;
  double ssam_advantage_sum = 0.0;
  for (const auto& name : kFig5Stencils) {
    const auto shape = core::suite_stencil<T>(name);
    auto g = run_shape<T>(arch, shape, in2, out2, in3, out3);
    std::string winner = "SSAM";
    double best_other = 0;
    for (const auto& impl : kImpls) {
      if (impl != "SSAM") best_other = std::max(best_other, g[impl]);
    }
    if (best_other > g["SSAM"]) {
      for (const auto& impl : kImpls) {
        if (g[impl] >= best_other) winner = impl;
      }
    } else {
      ++ssam_wins;
    }
    ssam_advantage_sum += g["SSAM"] / best_other;
    t.add_row({name, ConsoleTable::num(g["original"], 1),
               ConsoleTable::num(g["reordered"], 1), ConsoleTable::num(g["unrolled"], 1),
               ConsoleTable::num(g["ppcg"], 1), ConsoleTable::num(g["Halide"], 1),
               ConsoleTable::num(g["SSAM"], 1), winner});
  }
  std::cout << t.str();
  const double mean_adv = ssam_advantage_sum / kFig5Stencils.size();
  std::cout << "SSAM wins " << ssam_wins << "/" << kFig5Stencils.size()
            << "; mean advantage vs best competitor: " << ConsoleTable::num(mean_adv, 2)
            << "x\n";
  checks.check(std::string(arch.name) + " " + to_string(Precision(sizeof(T) == 8)) +
                   ": SSAM wins the large majority (>= 11/14)",
               ssam_wins >= 11);
}

}  // namespace

int main() {
  using namespace ssam;
  bench::print_simulation_note();
  bench::ShapeChecks checks;
  struct Panel {
    const sim::ArchSpec* arch;
    const char* tag;
    bool fp32;
  };
  const Panel panels[] = {{&sim::tesla_p100(), "a", true},
                          {&sim::tesla_v100(), "b", true},
                          {&sim::tesla_p100(), "c", false},
                          {&sim::tesla_v100(), "d", false}};
  // Track the P100-vs-V100 variance observation (Section 6.3): the spread
  // between implementations narrows on V100.
  for (const auto& p : panels) {
    if (p.fp32) {
      run_panel<float>(*p.arch, p.tag, checks);
    } else {
      run_panel<double>(*p.arch, p.tag, checks);
    }
  }
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
